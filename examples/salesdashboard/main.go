// Salesdashboard simulates the interactive decision-support scenario from
// the paper's introduction: an analyst explores a wide corporate sales star
// schema with a series of group-by queries, and the AQP middleware answers
// each one in milliseconds from pre-built samples instead of scanning the
// fact table. Every panel shows the approximate values with error bars and
// marks the groups that were answered exactly from small group tables.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
)

func main() {
	fmt.Println("building SALES star schema (6 dimensions, ~245 columns)...")
	db, err := datagen.Sales(datagen.SalesConfig{FactRows: 100000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	sys := core.NewSystem(db)
	start := time.Now()
	if err := sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.01, Seed: 8})); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-processing: %v\n\n", time.Since(start).Round(time.Millisecond))

	panels := []struct {
		title string
		query *engine.Query
	}{
		{
			"Revenue by region",
			&engine.Query{
				GroupBy: []string{"store_region"},
				Aggs:    []engine.Aggregate{{Kind: engine.Sum, Col: "sale_amount"}},
			},
		},
		{
			"Orders by product line (returned items only)",
			&engine.Query{
				GroupBy: []string{"product_line"},
				Aggs:    []engine.Aggregate{{Kind: engine.Count}},
				Where:   []engine.Predicate{engine.NewIn("returned", engine.StringVal("Y"))},
			},
		},
		{
			"Units by customer segment and channel type",
			&engine.Query{
				GroupBy: []string{"customer_segment", "channel_type"},
				Aggs:    []engine.Aggregate{{Kind: engine.Sum, Col: "units"}},
			},
		},
		{
			"Margin by state (top quarter orders)",
			&engine.Query{
				GroupBy: []string{"store_state"},
				Aggs:    []engine.Aggregate{{Kind: engine.Sum, Col: "margin"}},
				Where:   []engine.Predicate{engine.NewIn("cal_quarter", engine.StringVal("cal_quarter_000"))},
			},
		},
	}

	for _, p := range panels {
		ans, err := sys.Approx("smallgroup", p.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s  (answered in %v from %d sample rows)\n",
			p.title, ans.Elapsed.Round(time.Microsecond), ans.RowsRead)
		renderBars(ans)
		fmt.Println()
	}
}

// renderBars draws a tiny ASCII bar chart with confidence whiskers.
func renderBars(ans *core.Answer) {
	groups := ans.Result.Groups()
	sort.Slice(groups, func(i, j int) bool { return groups[i].Vals[0] > groups[j].Vals[0] })
	if len(groups) > 10 {
		groups = groups[:10]
	}
	max := groups[0].Vals[0]
	for _, g := range groups {
		key := engine.EncodeKey(g.Key)
		labels := make([]string, len(g.Key))
		for i, v := range g.Key {
			labels[i] = strings.Trim(v.String(), "'")
		}
		bar := int(40 * g.Vals[0] / max)
		tag := ""
		if g.Exact {
			tag = " *exact*"
		} else {
			iv := ans.Interval(key, 0)
			tag = fmt.Sprintf(" ±%.0f", iv.Width()/2)
		}
		fmt.Printf("  %-34s %12.0f |%s%s\n", strings.Join(labels, " / "), g.Vals[0], strings.Repeat("#", bar), tag)
	}
	if more := ans.Result.NumGroups() - len(groups); more > 0 {
		fmt.Printf("  ... and %d smaller groups\n", more)
	}
}
