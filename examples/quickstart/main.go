// Quickstart: build a small star-schema database, pre-process it with small
// group sampling, and answer a group-by query approximately — comparing the
// approximate answer (with confidence intervals and exactness flags) against
// the exact answer.
package main

import (
	"fmt"
	"log"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
)

func main() {
	// 1. A skewed TPC-H-like star schema: 100k fact rows, Zipf z=2.
	db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: 2.0, RowsPerSF: 100000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database %s: %d rows, %d columns\n\n", db.Name, db.NumRows(), len(db.Columns()))

	// 2. Pre-processing phase: a 1% overall sample plus one small group
	//    table per column (each at most 0.5% of the data), per the paper's
	//    recommended allocation ratio of 0.5.
	sys := core.NewSystem(db)
	if err := sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.01, Seed: 2})); err != nil {
		log.Fatal(err)
	}
	p, _ := sys.Prepared("smallgroup")
	fmt.Printf("pre-processing done in %v: %d sample rows (%.1f%% of the data)\n\n",
		sys.PreprocessTime("smallgroup").Round(1e6),
		p.SampleRows(), 100*float64(p.SampleRows())/float64(db.NumRows()))

	// 3. Runtime phase: a group-by COUNT query over a skewed column. Rare
	//    clerks fall into o_clerk's small group table and come back exact;
	//    common clerks are estimated from the overall sample.
	q := &engine.Query{
		GroupBy: []string{"p_category"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "l_extendedprice"}},
		Where:   []engine.Predicate{engine.NewIn("l_returnflag", engine.StringVal("A"), engine.StringVal("N"))},
	}
	fmt.Println("query:", q)

	ans, err := sys.Approx("smallgroup", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewritten against the sample tables:")
	fmt.Println(ans.Rewrite.SQL())

	fmt.Println("\napproximate answer:")
	for _, g := range ans.Result.Groups() {
		key := engine.EncodeKey(g.Key)
		iv := ans.Interval(key, 0)
		tag := fmt.Sprintf("± %.0f (95%% CI)", iv.Width()/2)
		if g.Exact {
			tag = "(exact — from a small group table)"
		}
		fmt.Printf("  %-24s count=%10.0f %s\n", g.Key[0], g.Vals[0], tag)
	}

	// 4. Compare against the exact answer.
	exact, exactTime, err := sys.Exact(q)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.Compare(exact, ans.Result, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact scan: %v; approximate: %v (%.0fx faster)\n",
		exactTime.Round(1e6), ans.Elapsed.Round(1e3),
		float64(exactTime)/float64(ans.Elapsed))
	fmt.Printf("accuracy: RelErr=%.4f, groups missed=%.1f%%\n", acc.RelErr, acc.PctGroups)
}
