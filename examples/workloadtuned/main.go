// Workloadtuned demonstrates the workload-aware features: a recorded query
// workload trims the small group candidate columns (§4.2.3), a
// workload-weighted sample (the §2 baseline of Chaudhuri-Das-Narasayya) is
// built from the same workload, and the tuned small group sample set is
// persisted to disk and restored, answering queries with no access to the
// base data.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/weighted"
	"dynsample/internal/workload"
)

func main() {
	db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: 2.0, RowsPerSF: 150000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// A recorded workload: the analyst mostly groups by a handful of columns.
	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: 2,
		Predicates:      1,
		Aggregate:       engine.Count,
		Columns: []string{"p_brand", "p_category", "s_region", "o_orderpriority",
			"l_returnflag", "l_shipmode", "o_clerk"},
		MassSelectivity: true,
		Seed:            22,
	})
	if err != nil {
		log.Fatal(err)
	}
	recorded := gen.Queries(30)

	// 1. Trim the candidate column set to what the workload actually groups by.
	cols := core.TrimColumns(recorded, 2)
	fmt.Printf("workload references %d columns at least twice: %v\n\n", len(cols), cols)

	// 2. Build a tuned small group sample over just those columns.
	tuned, err := core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate: 0.01,
		Columns:  cols,
		Seed:     23,
	}).Preprocess(db)
	if err != nil {
		log.Fatal(err)
	}
	full, err := core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.01, Seed: 23}).Preprocess(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned sample set: %6d rows\nfull sample set:  %6d rows (%.1fx larger)\n",
		tuned.SampleRows(), full.SampleRows(), float64(full.SampleRows())/float64(tuned.SampleRows()))
	fmt.Println("(on in-workload queries the tuned set matches the full set's accuracy")
	fmt.Println(" at a fraction of the storage — the §4.2.3 workload-trimming argument)")
	fmt.Println()

	// 3. The workload-weighted baseline trained on the same workload.
	wtd, err := weighted.New(weighted.Config{Rate: 0.015, Workload: recorded, Seed: 24}).Preprocess(db)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate all three on fresh queries from the same workload distribution.
	eval := gen.Queries(10)
	score := func(p core.Prepared) metrics.Accuracy {
		var accs []metrics.Accuracy
		for _, q := range eval {
			exact, err := engine.ExecuteExact(db, q)
			if err != nil {
				log.Fatal(err)
			}
			if exact.NumGroups() == 0 {
				continue
			}
			ans, err := p.Answer(q)
			if err != nil {
				log.Fatal(err)
			}
			a, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				log.Fatal(err)
			}
			accs = append(accs, a)
		}
		return metrics.Mean(accs)
	}
	fmt.Printf("%-28s%-12s%-12s\n", "strategy", "RelErr", "missed%")
	for _, s := range []struct {
		name string
		p    core.Prepared
	}{
		{"smallgroup (tuned columns)", tuned},
		{"smallgroup (all columns)", full},
		{"workload-weighted sample", wtd},
	} {
		m := score(s.p)
		fmt.Printf("%-28s%-12.4f%-12.1f\n", s.name, m.RelErr, m.PctGroups)
	}

	// 4. Persist the tuned sample set and answer from the restored copy.
	var buf bytes.Buffer
	if err := core.SaveSmallGroup(&buf, tuned); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := core.LoadSmallGroup(&buf)
	if err != nil {
		log.Fatal(err)
	}
	q := eval[0]
	a1, _ := tuned.Answer(q)
	a2, _ := restored.Answer(q)
	fmt.Printf("\nsaved sample set: %d bytes; restored answer matches: %v\n",
		size, a1.Result.NumGroups() == a2.Result.NumGroups())
}
