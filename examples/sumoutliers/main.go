// Sumoutliers demonstrates §5.3.3: SUM aggregation over a heavy-tailed
// revenue column, where a handful of giant orders dominate the total. Plain
// uniform sampling has huge variance (it occasionally catches an outlier and
// scales it up 100x); outlier indexing stores the extreme rows exactly; and
// small group sampling *enhanced* with an outlier-indexed overall sample
// combines that with exact answers for rare groups.
package main

import (
	"fmt"
	"log"
	"math"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/outlier"
	"dynsample/internal/uniform"
	"dynsample/internal/workload"
)

func main() {
	db, err := datagen.Sales(datagen.SalesConfig{FactRows: 60000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	const measure = "sale_amount"

	// How skewed is the measure?
	acc, _ := db.Accessor(measure)
	var sum, max float64
	for i := 0; i < db.NumRows(); i++ {
		v := acc.Float(i)
		sum += v
		if v > max {
			max = v
		}
	}
	fmt.Printf("measure %s: mean %.0f, max %.0f (%.0fx the mean)\n\n", measure, sum/float64(db.NumRows()), max, max*float64(db.NumRows())/sum)

	const rate = 0.015
	strategies := []struct {
		name string
		prep func() (core.Prepared, error)
	}{
		{"uniform", func() (core.Prepared, error) {
			return uniform.New(uniform.Config{Rate: rate * 2, Seed: 12}).Preprocess(db)
		}},
		{"outlier indexing", func() (core.Prepared, error) {
			return outlier.New(outlier.Config{Rate: rate * 2, Measure: measure, Seed: 12}).Preprocess(db)
		}},
		{"small group + outlier", func() (core.Prepared, error) {
			return core.NewSmallGroup(core.SmallGroupConfig{
				BaseRate: rate,
				Seed:     12,
				Overall:  outlier.OverallBuilder{Measure: measure},
			}).Preprocess(db)
		}},
	}

	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: 2,
		Predicates:      1,
		Aggregate:       engine.Sum,
		Measures:        []string{measure},
		MassSelectivity: true,
		Seed:            13,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries := gen.Queries(15)

	fmt.Printf("%-24s%-12s%-12s%-14s\n", "strategy", "RelErr", "missed%", "worst group")
	for _, s := range strategies {
		p, err := s.prep()
		if err != nil {
			log.Fatal(err)
		}
		var accs []metrics.Accuracy
		worst := 0.0
		for _, q := range queries {
			exact, err := engine.ExecuteExact(db, q)
			if err != nil {
				log.Fatal(err)
			}
			if exact.NumGroups() == 0 {
				continue
			}
			ans, err := p.Answer(q)
			if err != nil {
				log.Fatal(err)
			}
			a, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				log.Fatal(err)
			}
			accs = append(accs, a)
			for _, k := range exact.Keys() {
				if g := ans.Result.Group(k); g != nil {
					e := exact.Group(k).Vals[0]
					if e > 0 {
						if rel := math.Abs(g.Vals[0]-e) / e; rel > worst {
							worst = rel
						}
					}
				}
			}
		}
		m := metrics.Mean(accs)
		fmt.Printf("%-24s%-12.4f%-12.1f%-14.2f\n", s.name, m.RelErr, m.PctGroups, worst)
	}
	fmt.Println("\npaper (§5.3.3): small group sampling enhanced with outlier indexing beats")
	fmt.Println("outlier indexing alone (RelErr 0.79 vs 1.08; missed groups 37% vs 55%),")
	fmt.Println("and uniform sampling is comparable to plain outlier indexing.")
}
