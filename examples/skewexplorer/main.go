// Skewexplorer sweeps the data skew of a TPC-H-like database and shows where
// small group sampling beats plain uniform sampling — the paper's Figure 6
// narrative, runnable in under a minute. For each Zipf parameter it builds
// both sample sets with matched per-query space and reports the two error
// metrics over a shared random workload.
package main

import (
	"fmt"
	"log"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/uniform"
	"dynsample/internal/workload"
)

const (
	rows     = 120000
	baseRate = 0.01
	gamma    = 0.5
	groupBys = 3
	queries  = 12
)

func main() {
	fmt.Printf("TPCH-like data, %d rows, COUNT queries with %d grouping columns, r=%g\n\n", rows, groupBys, baseRate)
	fmt.Printf("%-8s%-14s%-14s%-16s%-16s\n", "skew", "SG RelErr", "Uni RelErr", "SG missed%", "Uni missed%")
	for _, z := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: z, RowsPerSF: rows, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}

		sg, err := core.NewSmallGroup(core.SmallGroupConfig{BaseRate: baseRate, Seed: 4}).Preprocess(db)
		if err != nil {
			log.Fatal(err)
		}
		// Matched sample space: uniform gets (1 + gamma*g) * r.
		uni, err := uniform.New(uniform.Config{Rate: baseRate * (1 + gamma*groupBys), Seed: 5}).Preprocess(db)
		if err != nil {
			log.Fatal(err)
		}

		gen, err := workload.NewGenerator(db, workload.Config{
			GroupingColumns: groupBys,
			Predicates:      1,
			Aggregate:       engine.Count,
			MassSelectivity: true,
			Seed:            6,
		})
		if err != nil {
			log.Fatal(err)
		}

		var sgAccs, uniAccs []metrics.Accuracy
		for _, q := range gen.Queries(queries) {
			exact, err := engine.ExecuteExact(db, q)
			if err != nil {
				log.Fatal(err)
			}
			if exact.NumGroups() == 0 {
				continue
			}
			for _, m := range []struct {
				p    core.Prepared
				accs *[]metrics.Accuracy
			}{{sg, &sgAccs}, {uni, &uniAccs}} {
				ans, err := m.p.Answer(q)
				if err != nil {
					log.Fatal(err)
				}
				acc, err := metrics.Compare(exact, ans.Result, 0)
				if err != nil {
					log.Fatal(err)
				}
				*m.accs = append(*m.accs, acc)
			}
		}
		sgM, uniM := metrics.Mean(sgAccs), metrics.Mean(uniAccs)
		marker := ""
		if sgM.RelErr < uniM.RelErr {
			marker = "  <- small group wins"
		}
		fmt.Printf("%-8.1f%-14.4f%-14.4f%-16.1f%-16.1f%s\n",
			z, sgM.RelErr, uniM.RelErr, sgM.PctGroups, uniM.PctGroups, marker)
	}
	fmt.Println("\npaper (Figure 6): uniform is slightly ahead on near-uniform data;")
	fmt.Println("small group sampling is clearly superior at moderate-to-high skew.")
}
