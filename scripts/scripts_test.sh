#!/usr/bin/env bash
# Fixture-driven tests for the shell tooling in scripts/: the bench output
# -> JSON converter (scientific notation, name escaping) and the benchdiff
# regression guard (including the required failure on a synthetic 2x
# ns_per_op regression). Run by `make check`. Needs only bash, awk, diff.
set -u
cd "$(dirname "$0")/.."

fails=0

# t <description> <expected-exit-code> <command...>
t() {
  local desc="$1" want="$2"
  shift 2
  "$@" >/tmp/scripts_test.out 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc (exit $got, want $want)"
    sed 's/^/    /' /tmp/scripts_test.out
    fails=$((fails + 1))
  else
    echo "ok:   $desc"
  fi
}

# --- bench_json.sh -------------------------------------------------------
# Golden test: scientific-notation values must be normalised to plain
# decimal and a `"` in a subtest name must be escaped.
bash scripts/bench_json.sh /tmp/scripts_test_bench.json scripts/testdata/bench_sci.txt
if diff -u scripts/testdata/bench_sci.golden.json /tmp/scripts_test_bench.json >/tmp/scripts_test.out 2>&1; then
  echo "ok:   bench_json golden (scientific notation + name escaping)"
else
  echo "FAIL: bench_json golden (scientific notation + name escaping)"
  sed 's/^/    /' /tmp/scripts_test.out
  fails=$((fails + 1))
fi

if command -v python3 >/dev/null 2>&1; then
  t "bench_json output is valid JSON" 0 python3 -m json.tool /tmp/scripts_test_bench.json
fi

t "bench_json rejects missing args" 2 bash scripts/bench_json.sh /tmp/only_one_arg.json

# --- benchdiff.sh --------------------------------------------------------
t "benchdiff passes on identical results" 0 \
  bash scripts/benchdiff.sh scripts/testdata/baseline.json scripts/testdata/baseline.json
t "benchdiff passes on regression within threshold" 0 \
  bash scripts/benchdiff.sh scripts/testdata/baseline.json scripts/testdata/within.json
t "benchdiff fails on synthetic 2x ns_per_op regression" 1 \
  bash scripts/benchdiff.sh scripts/testdata/baseline.json scripts/testdata/regress2x.json
t "benchdiff passes on improvement (new benchmark is informational)" 0 \
  bash scripts/benchdiff.sh scripts/testdata/baseline.json scripts/testdata/improved.json
t "benchdiff honours a custom threshold (2x allowed at 150%)" 0 \
  bash scripts/benchdiff.sh scripts/testdata/baseline.json scripts/testdata/regress2x.json 150
t "benchdiff rejects a missing file" 2 \
  bash scripts/benchdiff.sh scripts/testdata/baseline.json /tmp/does_not_exist_$$.json

if [ "$fails" -ne 0 ]; then
  echo "scripts_test: $fails failure(s)"
  exit 1
fi
echo "scripts_test: all tests passed"
