#!/usr/bin/env bash
# bench_json.sh <out.json> <go-bench-output.txt>
#
# Converts `go test -bench` output into a JSON document with one object per
# benchmark. Handles the standard ns/op pair plus any custom metrics
# (rows/sec, B/op, allocs/op). Hardened against the two ways raw bench
# output can break naive conversion:
#
#   - scientific-notation values (go prints e.g. "1.25e+03 ns/op" for fast
#     benchmarks): normalised to plain decimal via awk numeric coercion
#   - benchmark names containing `"` or `\` (possible via subtest names):
#     escaped so the output stays valid JSON
#
# Metric keys are derived from the unit ("ns/op" -> "ns_per_op") and
# sanitised to [A-Za-z0-9_]. Exactly one benchmark object per line, which
# scripts/benchdiff.sh relies on.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 <out.json> <go-bench-output.txt>" >&2
  exit 2
fi

awk '
  BEGIN { print "{\n  \"benchmarks\": [" ; first = 1 }
  /^Benchmark/ {
    name = $1; iters = $2 + 0
    sub(/-[0-9]+$/, "", name)
    gsub(/\\/, "\\\\", name)
    gsub(/"/, "\\\"", name)
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iters\": %d", name, iters
    for (i = 3; i + 1 <= NF; i += 2) {
      metric = $(i + 1)
      gsub(/\//, "_per_", metric)
      gsub(/[^A-Za-z0-9_]/, "_", metric)
      printf ", \"%s\": %.10g", metric, $i + 0
    }
    printf "}"
  }
  END { print "\n  ]\n}" }
' "$2" > "$1"
