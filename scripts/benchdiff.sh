#!/usr/bin/env bash
# benchdiff.sh <baseline.json> <fresh.json> [max_regression_pct]
#
# Compares two BENCH_*.json files (as produced by scripts/bench_json.sh)
# and fails if any benchmark's ns_per_op regressed by more than
# max_regression_pct (default 25) relative to the baseline. Benchmarks
# present in only one file are reported but never fail the diff, so adding
# or retiring a benchmark does not require touching the guard.
#
# Exit codes: 0 = no regression beyond threshold, 1 = regression, 2 = usage.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 <baseline.json> <fresh.json> [max_regression_pct]" >&2
  exit 2
fi
base="$1"
fresh="$2"
pct="${3:-25}"

for f in "$base" "$fresh"; do
  if [ ! -f "$f" ]; then
    echo "benchdiff: no such file: $f" >&2
    exit 2
  fi
done

awk -v pct="$pct" -v basefile="$base" -v freshfile="$fresh" '
  FNR == 1 { pass++ }
  # bench_json.sh emits exactly one benchmark object per line, so a
  # line-oriented extraction of "name" and "ns_per_op" is exact here.
  /"name":/ {
    i = index($0, "\"name\": \"")
    if (i == 0) next
    rest = substr($0, i + 9)
    name = substr(rest, 1, index(rest, "\"") - 1)
    j = index($0, "\"ns_per_op\": ")
    if (j == 0) next
    ns = substr($0, j + 13) + 0
    if (pass == 1) baseNs[name] = ns
    else freshNs[name] = ns
  }
  END {
    fail = 0
    for (name in freshNs) {
      if (!(name in baseNs)) {
        printf "benchdiff: NEW       %-50s %12.0f ns/op (no baseline)\n", name, freshNs[name]
        continue
      }
      b = baseNs[name]; f = freshNs[name]
      delta = (b > 0) ? (f - b) / b * 100 : 0
      if (b > 0 && f > b * (1 + pct / 100)) {
        printf "benchdiff: REGRESSED %-50s %12.0f -> %12.0f ns/op (%+.1f%%, limit +%g%%)\n", name, b, f, delta, pct
        fail = 1
      } else {
        printf "benchdiff: ok        %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n", name, b, f, delta
      }
    }
    for (name in baseNs)
      if (!(name in freshNs))
        printf "benchdiff: GONE      %-50s (in baseline only)\n", name
    exit fail
  }
' "$base" "$fresh"
