#!/usr/bin/env bash
# Fails on dead relative links in the repository's markdown files: every
# [text](relative/path) must point at a file or directory that exists
# (anchors are stripped; absolute URLs and mailto: are ignored). Run by
# `make check` so documentation reorganisations cannot silently orphan
# cross-references like README -> docs/API.md -> docs/ACCURACY.md.
set -uo pipefail

cd "$(dirname "$0")/.."

bad=0
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Pull out every inline link target. Reference-style links and bare URLs
  # are out of scope; this repo uses inline links throughout.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "doclinks: $md: dead link -> $target" >&2
      bad=1
    fi
  done < <(grep -o '\[[^][]*\]([^()[:space:]]*)' "$md" | sed 's/.*(\(.*\))/\1/')
done < <(git ls-files -co --exclude-standard '*.md')

if [ "$bad" -ne 0 ]; then
  echo "doclinks: FAIL" >&2
  exit 1
fi
echo "doclinks: OK"
