#!/usr/bin/env bash
# Benchmark harness: runs the ingest-path and query-path benchmarks and emits
# machine-readable JSON (BENCH_ingest.json, BENCH_query.json) so successive
# commits can be compared. Needs only bash, awk and the go toolchain.
#
#   scripts/bench.sh            # full run (benchtime 2s)
#   BENCHTIME=200ms scripts/bench.sh   # quick run
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUTDIR="${BENCH_OUTDIR:-.}"

# Converts `go test -bench` lines into a JSON array; see bench_json.sh for
# the format and the hardening it applies (scientific notation, escaping).
bench_json() {
  bash scripts/bench_json.sh "$1" "$2"
}

echo "bench: ingest path (WAL append + fsync + online maintenance)..." >&2
go test ./internal/ingest -run '^$' -bench 'BenchmarkIngest' \
  -benchtime "$BENCHTIME" -benchmem | tee /tmp/bench_ingest.txt
bench_json "$OUTDIR/BENCH_ingest.json" /tmp/bench_ingest.txt

echo "bench: query path (concurrent HTTP queries, with and without ingest load)..." >&2
go test ./internal/server -run '^$' -bench 'BenchmarkConcurrentQuery' \
  -benchtime "$BENCHTIME" | tee /tmp/bench_query.txt
bench_json "$OUTDIR/BENCH_query.json" /tmp/bench_query.txt

echo "bench: wrote $OUTDIR/BENCH_ingest.json and $OUTDIR/BENCH_query.json" >&2
