#!/usr/bin/env bash
# Benchmark harness: runs the ingest-path and query-path benchmarks and emits
# machine-readable JSON (BENCH_ingest.json, BENCH_query.json) so successive
# commits can be compared. Needs only bash, awk and the go toolchain.
#
#   scripts/bench.sh            # full run (benchtime 2s)
#   BENCHTIME=200ms scripts/bench.sh   # quick run
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUTDIR="${BENCH_OUTDIR:-.}"

# bench_json <output-file> <go-bench-output-file>
# Converts `go test -bench` lines into a JSON array. Handles the standard
# ns/op pair plus any custom metrics (rows/sec, B/op, allocs/op).
bench_json() {
  awk '
    BEGIN { print "{\n  \"benchmarks\": [" ; first = 1 }
    /^Benchmark/ {
      name = $1; iters = $2
      sub(/-[0-9]+$/, "", name)
      if (!first) printf ",\n"
      first = 0
      printf "    {\"name\": \"%s\", \"iters\": %s", name, iters
      for (i = 3; i + 1 <= NF; i += 2) {
        metric = $(i + 1)
        gsub(/\//, "_per_", metric)
        printf ", \"%s\": %s", metric, $i
      }
      printf "}"
    }
    END { print "\n  ]\n}" }
  ' "$2" > "$1"
}

echo "bench: ingest path (WAL append + fsync + online maintenance)..." >&2
go test ./internal/ingest -run '^$' -bench 'BenchmarkIngest' \
  -benchtime "$BENCHTIME" -benchmem | tee /tmp/bench_ingest.txt
bench_json "$OUTDIR/BENCH_ingest.json" /tmp/bench_ingest.txt

echo "bench: query path (concurrent HTTP queries, with and without ingest load)..." >&2
go test ./internal/server -run '^$' -bench 'BenchmarkConcurrentQuery' \
  -benchtime "$BENCHTIME" | tee /tmp/bench_query.txt
bench_json "$OUTDIR/BENCH_query.json" /tmp/bench_query.txt

echo "bench: wrote $OUTDIR/BENCH_ingest.json and $OUTDIR/BENCH_query.json" >&2
