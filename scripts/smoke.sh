#!/usr/bin/env bash
# End-to-end smoke test: boot aqpd on a small sales database, run an explain
# query through the /v1 surface, verify the observability endpoints
# (/metrics exposition, /debug/slowlog, X-Request-ID echo), then exercise
# live ingestion: stream rows in via `aqpcli ingest`, query them, kill the
# server hard, and check the restart replays the WAL. Used by CI after the
# unit suites; needs only bash, curl, awk and the go toolchain.
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
SQL='SELECT store_region, COUNT(*) FROM T GROUP BY store_region'
WALDIR=$(mktemp -d /tmp/smoke-wal.XXXXXX)

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building aqpd and aqpcli..."
go build -o /tmp/aqpd-smoke ./cmd/aqpd
go build -o /tmp/aqpcli-smoke ./cmd/aqpcli

start_server() {
  # -scan-rate pins the planner's latency model so the bounded-query
  # scenario below is deterministic across machines. Extra args (e.g.
  # -catalog-dir for the checkpoint scenario) pass through.
  /tmp/aqpd-smoke -db sales -rows 50000 -rate 0.02 -addr "$ADDR" -wal-dir "$WALDIR" \
    -scan-rate 25000000 "$@" &
  PID=$!
}
start_server
CATDIR=$(mktemp -d /tmp/smoke-cat.XXXXXX)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WALDIR" "$CATDIR"' EXIT

wait_ready() {
  for i in $(seq 1 50); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$PID" 2>/dev/null || fail "aqpd exited during startup"
    sleep 0.2
  done
  fail "server not ready after 10s"
}
echo "smoke: waiting for readiness..."
wait_ready

echo "smoke: explain query via /v1..."
RESP=$(curl -fsS -H 'X-Request-ID: smoke-run-1' -D /tmp/smoke-headers \
  "$BASE/v1/query" -d "{\"sql\":\"$SQL\",\"explain\":true}")
echo "$RESP" | grep -q '"groups"'            || fail "no groups in response: $RESP"
echo "$RESP" | grep -q '"trace"'             || fail "explain returned no trace: $RESP"
echo "$RESP" | grep -q '"samples"'           || fail "trace has no sample set: $RESP"
echo "$RESP" | grep -q '"name":"execute"'    || fail "trace has no execute stage: $RESP"
grep -qi 'x-request-id: smoke-run-1' /tmp/smoke-headers || fail "request id not echoed"

echo "smoke: legacy alias answers..."
curl -fsS "$BASE/query" -d "{\"sql\":\"$SQL\"}" | grep -q '"groups"' \
  || fail "legacy /query alias broken"

echo "smoke: error envelope..."
curl -sS "$BASE/v1/query" -d '{"sql":"NOT SQL"}' | grep -q '"error":{"code":"bad_request"' \
  || fail "400 does not carry the error envelope"

echo "smoke: bounded queries..."
# A loose error bound is met by a sample plan; a tight one forces the
# planner to escalate to the exact fallback; an impossible combination
# (near-zero error within 1ms at the pinned scan rate) must 422 with the
# best achievable bounds rather than answer out of bound.
RESP=$(curl -fsS "$BASE/v1/query" -d "{\"sql\":\"$SQL\",\"error_bound\":0.5}")
echo "$RESP" | grep -q '"plan":'            || fail "bounded answer has no plan: $RESP"
echo "$RESP" | grep -q '"plan":"exact"'     && fail "loose bound escalated to exact: $RESP"
echo "$RESP" | grep -q '"predicted":'       || fail "bounded answer has no predicted error: $RESP"
RESP=$(curl -fsS "$BASE/v1/query" -d "{\"sql\":\"$SQL\",\"error_bound\":0.0001}")
echo "$RESP" | grep -q '"plan":"exact"'     || fail "tight bound did not escalate to exact: $RESP"
RESP=$(curl -sS "$BASE/v1/query" -d "{\"sql\":\"$SQL\",\"error_bound\":0.000001,\"time_bound_ms\":1}")
echo "$RESP" | grep -q '"code":"bound_unsatisfiable"' || fail "impossible bound not rejected: $RESP"
echo "$RESP" | grep -q '"best_error_bound":'          || fail "422 lacks best achievable bound: $RESP"
curl -sS "$BASE/v1/query" -d "{\"sql\":\"$SQL\",\"timeout_ms\":0}" \
  | grep -q '"code":"bad_request"' || fail "timeout_ms 0 not rejected"

echo "smoke: scraping /metrics..."
METRICS=$(curl -fsS "$BASE/metrics")
SERIES=$(echo "$METRICS" | grep -c '^# TYPE ')
[ "$SERIES" -ge 12 ] || fail "only $SERIES metric families, want >= 12"
echo "$METRICS" | grep -q 'aqp_queries_total{endpoint="query",strategy="smallgroup",status="ok"}' \
  || fail "query counter missing from /metrics"
echo "$METRICS" | grep -q 'aqp_engine_rows_scanned_total' \
  || fail "engine rows counter missing from /metrics"

echo "smoke: /debug/slowlog..."
curl -fsS "$BASE/debug/slowlog" | grep -q '"entries":\[{' \
  || fail "slow log has no entries"

echo "smoke: ingesting sentinel rows via aqpcli..."
# Build one CSV row from the live schema: a sentinel region, fixed numbers
# for the numeric measures, a constant for every other dimension.
COLMETA=$(curl -fsS "$BASE/v1/columns")
CSVROW=$(echo "$COLMETA" | awk '
  {
    cols = $0; sub(/.*"columns":\[/, "", cols); sub(/\].*/, "", cols)
    n = split(cols, names, ",")
    row = ""
    for (i = 1; i <= n; i++) {
      name = names[i]; gsub(/"/, "", name)
      cell = "smoke-dim"
      if (index($0, "\"" name "\":\"INT\""))   cell = "7"
      if (index($0, "\"" name "\":\"FLOAT\"")) cell = "2.5"
      if (name == "store_region")              cell = "zz-smoke"
      row = row (i > 1 ? "," : "") cell
    }
    print row
  }')
[ -n "$CSVROW" ] || fail "could not build a CSV row from /v1/columns"
printf '%s\n%s\n%s\n%s\n%s\n' "$CSVROW" "$CSVROW" "$CSVROW" "$CSVROW" "$CSVROW" \
  | /tmp/aqpcli-smoke ingest -addr "$BASE" -file - -batch-size 5 -id-prefix smoke \
  || fail "aqpcli ingest failed"

INGEST_SQL="SELECT COUNT(*) FROM T WHERE store_region = 'zz-smoke'"
RESP=$(curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}")
echo "$RESP" | grep -q '"values":\[5\]'   || fail "ingested rows not queryable: $RESP"
echo "$RESP" | grep -q '"generation":1'   || fail "exact answer missing generation: $RESP"
# The approximate path serves new rare values from the online-maintained
# small group table — the GROUP BY answer must list the sentinel exactly.
RESP=$(curl -fsS "$BASE/v1/query" -d "{\"sql\":\"$SQL\"}")
echo "$RESP" | grep -q 'zz-smoke' || fail "approximate answer misses the new small group: $RESP"
INGMETRICS=$(curl -fsS "$BASE/metrics")
echo "$INGMETRICS" | grep -q 'aqp_ingest_rows_total 5' \
  || fail "ingest metrics missing from /metrics"

echo "smoke: kill -9 and WAL replay..."
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
start_server
wait_ready
RESP=$(curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}")
echo "$RESP" | grep -q '"values":\[5\]' || fail "rows lost across crash+restart: $RESP"
INGMETRICS=$(curl -fsS "$BASE/metrics")
echo "$INGMETRICS" | grep -q 'aqp_ingest_replayed_batches_total 1' \
  || fail "WAL replay counter not set after restart"
# Re-sending a pre-crash batch id must be deduplicated (idempotency window
# is rebuilt from the WAL on replay).
printf '%s\n' "$CSVROW" \
  | /tmp/aqpcli-smoke ingest -addr "$BASE" -file - -batch-size 1 -id-prefix smoke \
  || fail "pre-crash batch id retry failed"
curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}" | grep -q '"values":\[5\]' \
  || fail "batch id replayed twice after restart"

echo "smoke: checkpointed restart (bounded WAL replay)..."
# Restart with a catalog: the one durable batch replays once more, then a
# rebuild persists a checkpointed snapshot that covers it.
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
start_server -catalog-dir "$CATDIR"
wait_ready
curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}" | grep -q '"values":\[5\]' \
  || fail "rows lost when the catalog was attached"
RESP=$(curl -fsS -X POST "$BASE/v1/admin/rebuild")
echo "$RESP" | grep -q '"persisted":true' || fail "rebuild did not persist a checkpoint: $RESP"

# Kill -9 after the checkpoint: the restart must recover the rows from the
# snapshot delta and replay nothing — the checkpoint covers the whole log.
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
start_server -catalog-dir "$CATDIR"
wait_ready
curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}" | grep -q '"values":\[5\]' \
  || fail "rows lost across checkpointed restart"
CKMETRICS=$(curl -fsS "$BASE/metrics")
echo "$CKMETRICS" | grep -q '^aqp_ingest_replayed_batches_total 0$' \
  || fail "checkpoint-covered batch was replayed instead of skipped"
echo "$CKMETRICS" | grep -q '^aqp_ingest_replay_segments_total' \
  || fail "replay metrics missing from /metrics"
# The idempotency window rides in the checkpoint: a retry of the original
# pre-checkpoint batch id must dedupe even though the WAL no longer replays it.
printf '%s\n' "$CSVROW" \
  | /tmp/aqpcli-smoke ingest -addr "$BASE" -file - -batch-size 1 -id-prefix smoke \
  || fail "checkpoint-covered batch id retry failed"
curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}" | grep -q '"values":\[5\]' \
  || fail "checkpoint-covered batch id applied twice"

# Ingest one post-checkpoint row, kill -9 again: only that tail batch may
# replay, and the answers must include both the covered and the tail rows.
printf '%s\n' "$CSVROW" \
  | /tmp/aqpcli-smoke ingest -addr "$BASE" -file - -batch-size 1 -id-prefix smoke-post \
  || fail "post-checkpoint ingest failed"
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
start_server -catalog-dir "$CATDIR"
wait_ready
curl -fsS "$BASE/v1/exact" -d "{\"sql\":\"$INGEST_SQL\"}" | grep -q '"values":\[6\]' \
  || fail "post-checkpoint tail lost across restart"
curl -fsS "$BASE/metrics" | grep -q '^aqp_ingest_replayed_batches_total 1$' \
  || fail "restart replayed more than the post-checkpoint tail"

echo "smoke: OK ($SERIES metric families)"
