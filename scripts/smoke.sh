#!/usr/bin/env bash
# End-to-end smoke test: boot aqpd on a small sales database, run an explain
# query through the /v1 surface, and verify the observability endpoints
# (/metrics exposition, /debug/slowlog, X-Request-ID echo). Used by CI after
# the unit suites; needs only bash, curl and the go toolchain.
set -euo pipefail

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
SQL='SELECT store_region, COUNT(*) FROM T GROUP BY store_region'

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building aqpd..."
go build -o /tmp/aqpd-smoke ./cmd/aqpd

/tmp/aqpd-smoke -db sales -rows 50000 -rate 0.02 -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

echo "smoke: waiting for readiness..."
for i in $(seq 1 50); do
  if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then break; fi
  kill -0 "$PID" 2>/dev/null || fail "aqpd exited during startup"
  sleep 0.2
  [ "$i" = 50 ] && fail "server not ready after 10s"
done

echo "smoke: explain query via /v1..."
RESP=$(curl -fsS -H 'X-Request-ID: smoke-run-1' -D /tmp/smoke-headers \
  "$BASE/v1/query" -d "{\"sql\":\"$SQL\",\"explain\":true}")
echo "$RESP" | grep -q '"groups"'            || fail "no groups in response: $RESP"
echo "$RESP" | grep -q '"trace"'             || fail "explain returned no trace: $RESP"
echo "$RESP" | grep -q '"samples"'           || fail "trace has no sample set: $RESP"
echo "$RESP" | grep -q '"name":"execute"'    || fail "trace has no execute stage: $RESP"
grep -qi 'x-request-id: smoke-run-1' /tmp/smoke-headers || fail "request id not echoed"

echo "smoke: legacy alias answers..."
curl -fsS "$BASE/query" -d "{\"sql\":\"$SQL\"}" | grep -q '"groups"' \
  || fail "legacy /query alias broken"

echo "smoke: error envelope..."
curl -sS "$BASE/v1/query" -d '{"sql":"NOT SQL"}' | grep -q '"error":{"code":"bad_request"' \
  || fail "400 does not carry the error envelope"

echo "smoke: scraping /metrics..."
METRICS=$(curl -fsS "$BASE/metrics")
SERIES=$(echo "$METRICS" | grep -c '^# TYPE ')
[ "$SERIES" -ge 12 ] || fail "only $SERIES metric families, want >= 12"
echo "$METRICS" | grep -q 'aqp_queries_total{endpoint="query",strategy="smallgroup",status="ok"}' \
  || fail "query counter missing from /metrics"
echo "$METRICS" | grep -q 'aqp_engine_rows_scanned_total' \
  || fail "engine rows counter missing from /metrics"

echo "smoke: /debug/slowlog..."
curl -fsS "$BASE/debug/slowlog" | grep -q '"entries":\[{' \
  || fail "slow log has no entries"

echo "smoke: OK ($SERIES metric families)"
