module dynsample

go 1.22
