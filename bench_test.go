// Benchmarks regenerating every table and figure of the paper (one benchmark
// per experiment, at a reduced scale so `go test -bench=.` completes in
// minutes) plus micro-benchmarks for the hot paths. Run the full-scale
// experiments with cmd/experiments instead.
package dynsample

import (
	"sync"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/experiments"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
	"dynsample/internal/workload"
)

// benchRunner is shared across figure benchmarks so database generation and
// pre-processing are paid once; each iteration re-runs the experiment's
// query evaluation.
var (
	benchRunnerOnce sync.Once
	benchRunner     *experiments.Runner
)

func runner() *experiments.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.Scale{
			TPCHSF1Rows:      80000,
			TPCHSF5Rows:      120000,
			SalesRows:        12000,
			QueriesPerConfig: 6,
			BaseRate:         0.02,
			Seed:             42,
		})
	})
	return benchRunner
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aAllocationRatio regenerates Figure 3(a): analytical SqRelErr
// vs the sampling allocation ratio.
func BenchmarkFig3aAllocationRatio(b *testing.B) { benchFigure(b, "3a") }

// BenchmarkFig3bSkew regenerates Figure 3(b): analytical SqRelErr vs skew.
func BenchmarkFig3bSkew(b *testing.B) { benchFigure(b, "3b") }

// BenchmarkFig4GroupingColumns regenerates Figure 4: RelErr and PctGroups vs
// grouping columns, small group vs uniform on TPCH1G2.0z.
func BenchmarkFig4GroupingColumns(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig5Selectivity regenerates Figure 5: error vs per-group
// selectivity on SALES.
func BenchmarkFig5Selectivity(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig6Skew regenerates Figure 6: RelErr vs Zipf z on TPCH1Gyz.
func BenchmarkFig6Skew(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig7SamplingRate regenerates Figure 7: error vs base sampling
// rate on TPCH1G2.0z.
func BenchmarkFig7SamplingRate(b *testing.B) { benchFigure(b, "7") }

// BenchmarkFig8Congress regenerates Figure 8: small group vs basic congress
// vs uniform on the SALES column subset.
func BenchmarkFig8Congress(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig9Speedup regenerates Figure 9: runtime speedup vs grouping
// columns on the large database.
func BenchmarkFig9Speedup(b *testing.B) { benchFigure(b, "9") }

// BenchmarkSumOutlier regenerates the §5.3.3 SUM-query comparison (small
// group + outlier indexing vs outlier indexing vs uniform).
func BenchmarkSumOutlier(b *testing.B) { benchFigure(b, "sum") }

// BenchmarkPreprocess regenerates the §5.4.2 pre-processing time and space
// table.
func BenchmarkPreprocess(b *testing.B) { benchFigure(b, "prep") }

// BenchmarkGammaAblation regenerates the empirical allocation-ratio sweep.
func BenchmarkGammaAblation(b *testing.B) { benchFigure(b, "gamma") }

// BenchmarkTauAblation regenerates the distinct-value-cutoff sweep.
func BenchmarkTauAblation(b *testing.B) { benchFigure(b, "tau") }

// ---- Micro-benchmarks for the building blocks. ----

var (
	microOnce sync.Once
	microDB   *engine.Database
	microPrep core.Prepared
	microQ    *engine.Query
)

func microSetup(b *testing.B) {
	b.Helper()
	microOnce.Do(func() {
		db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: 2.0, RowsPerSF: 100000, Seed: 1})
		if err != nil {
			panic(err)
		}
		microDB = db
		p, err := core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.01, Seed: 2}).Preprocess(db)
		if err != nil {
			panic(err)
		}
		microPrep = p
		gen, err := workload.NewGenerator(db, workload.Config{
			GroupingColumns: 2, Predicates: 1, Aggregate: engine.Count,
			MassSelectivity: true, Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		microQ = gen.Query()
	})
}

// BenchmarkExactScan measures exact execution of a 2-column group-by over
// the 100k-row base table.
func BenchmarkExactScan(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExecuteExact(microDB, microQ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallGroupAnswer measures the runtime phase: sample selection,
// rewritten execution, combination and confidence intervals.
func BenchmarkSmallGroupAnswer(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microPrep.Answer(microQ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallGroupPreprocess measures the two-scan pre-processing phase.
func BenchmarkSmallGroupPreprocess(b *testing.B) {
	microSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.01, Seed: int64(i)}).Preprocess(microDB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReservoir measures reservoir sampling throughput.
func BenchmarkReservoir(b *testing.B) {
	rng := randx.New(1)
	res := sample.NewReservoir(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Offer(i)
	}
}

// BenchmarkZipfDraw measures the truncated-Zipf sampler.
func BenchmarkZipfDraw(b *testing.B) {
	z := randx.NewZipf(1.5, 2400)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw(rng)
	}
}

// BenchmarkBaselines regenerates the beyond-paper all-strategies comparison.
func BenchmarkBaselines(b *testing.B) { benchFigure(b, "baselines") }

// BenchmarkLevels regenerates the multi-level hierarchy / Bernoulli-overall
// variant ablation.
func BenchmarkLevels(b *testing.B) { benchFigure(b, "levels") }
