package experiments

import (
	"fmt"

	"dynsample/internal/congress"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/weighted"
	"dynsample/internal/workload"
)

// Baselines goes beyond the paper's pairwise comparisons: every implemented
// strategy head to head on one workload, on a narrow candidate column set so
// that even the full (exponential) congress algorithm — which the paper
// could not run on its 245-column schema — participates. The workload-
// weighted baseline is trained on half the workload and evaluated, like the
// others, on the other half.
func (r *Runner) Baselines() (*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	cols := []string{"p_brand", "p_category", "s_region", "o_orderpriority", "l_returnflag", "l_shipmode"}
	const g = 2
	rate := r.Scale.BaseRate
	matched := rate * (1 + AllocationRatio*g)

	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: g,
		Predicates:      1,
		Aggregate:       engine.Count,
		Columns:         cols,
		MassSelectivity: true,
		Seed:            r.Scale.Seed + 1300,
	})
	if err != nil {
		return nil, err
	}
	queries := gen.Queries(2 * r.Scale.QueriesPerConfig)
	train, eval := queries[:len(queries)/2], queries[len(queries)/2:]

	type entry struct {
		label string
		st    core.Strategy
	}
	entries := []entry{
		{"SmGroup", core.NewSmallGroup(core.SmallGroupConfig{
			BaseRate: rate, SmallGroupFraction: AllocationRatio * rate, Columns: cols, Seed: r.Scale.Seed + 1,
		})},
		{"Uniform", nil}, // via uniformMatched below (shares the cache)
		{"BasicCongress", congress.New(congress.Config{Rate: matched, Columns: cols, Seed: r.Scale.Seed + 2, Label: "bl-basic"})},
		{"FullCongress", congress.New(congress.Config{Rate: matched, Columns: cols, Variant: congress.Full, Seed: r.Scale.Seed + 3, Label: "bl-full"})},
		{"Weighted", weighted.New(weighted.Config{Rate: matched, Workload: train, Seed: r.Scale.Seed + 4, Label: "bl-weighted"})},
	}

	fig := &Figure{
		ID: "baselines", Title: fmt.Sprintf("All strategies head to head on %s (COUNT, g=%d, %d columns, matched space %.2f%%)", db.Name, g, len(cols), matched*100),
		XLabel: "strategy", YLabel: "RelErr / PctGroups",
		Notes: []string{
			"beyond the paper: full congress is feasible on this narrow column set; weighted is trained on a held-out half of the workload",
		},
	}
	var relY, pctY []float64
	for _, e := range entries {
		var p core.Prepared
		var err error
		if e.st == nil {
			p, err = r.uniformMatched(db, rate, g)
		} else {
			p, err = r.prepared(db, "bl/"+e.label, e.st)
		}
		if err != nil {
			return nil, err
		}
		var accs []metrics.Accuracy
		for _, q := range eval {
			exact, err := r.exact(db, q)
			if err != nil {
				return nil, err
			}
			if exact.NumGroups() == 0 {
				continue
			}
			ans, err := p.Answer(q)
			if err != nil {
				return nil, err
			}
			a, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				return nil, err
			}
			accs = append(accs, a)
		}
		m := metrics.Mean(accs)
		fig.Labels = append(fig.Labels, e.label)
		relY = append(relY, m.RelErr)
		pctY = append(pctY, m.PctGroups)
	}
	fig.Series = []Series{
		{Name: "RelErr", Y: relY},
		{Name: "PctGroups missed (%)", Y: pctY},
	}
	return fig, nil
}
