package experiments

import (
	"strings"
	"testing"
)

// testScale keeps every experiment fast enough for unit tests while
// preserving the qualitative shapes.
func testScale() Scale {
	return Scale{
		TPCHSF1Rows:      80000,
		TPCHSF5Rows:      120000,
		SalesRows:        12000,
		QueriesPerConfig: 6,
		BaseRate:         0.02,
		Seed:             42,
	}
}

func TestFig3aShape(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	sm, un := fig.Series[0].Y, fig.Series[1].Y
	// Uniform is flat; at ratio 0 the curves coincide; small group dips.
	for i := 1; i < len(un); i++ {
		if un[i] != un[0] {
			t.Errorf("uniform not flat: %v", un)
		}
	}
	if sm[0] != un[0] {
		t.Errorf("ratio 0: SmGroup %g != Uniform %g", sm[0], un[0])
	}
	min := sm[0]
	for _, v := range sm {
		if v < min {
			min = v
		}
	}
	if min >= sm[0] {
		t.Errorf("small group never improves over ratio 0: %v", sm)
	}
}

func TestFig3bShape(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	sm, un := fig.Series[0].Y, fig.Series[1].Y
	last := len(sm) - 1
	// At high skew small group sampling must win clearly.
	if sm[last] >= un[last] {
		t.Errorf("at z=2.5 SmGroup %g not better than Uniform %g", sm[last], un[last])
	}
	// The advantage grows with skew.
	if (un[0] - sm[0]) >= (un[last] - sm[last]) {
		t.Errorf("advantage did not grow with skew: %v vs %v", un, sm)
	}
}

func TestFig4Shape(t *testing.T) {
	r := NewRunner(testScale())
	figs, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figures = %d", len(figs))
	}
	rel, pct := figs[0], figs[1]
	series := func(f *Figure, name string) []float64 {
		for _, s := range f.Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("series %q missing", name)
		return nil
	}
	smP, unP := series(pct, "SmGroup"), series(pct, "Uniform")
	// Small group must miss clearly fewer groups than uniform at g=1 (its
	// headline advantage) and stay no worse across the sweep.
	if smP[0] >= unP[0] {
		t.Errorf("g=1: SmGroup misses %g%% vs Uniform %g%%", smP[0], unP[0])
	}
	var smTot, unTot float64
	for i := range smP {
		smTot += smP[i]
		unTot += unP[i]
		if smP[i] < 0 || smP[i] > 100 || unP[i] < 0 || unP[i] > 100 {
			t.Errorf("g=%d: PctGroups out of range (%g, %g)", i+1, smP[i], unP[i])
		}
	}
	if smTot >= unTot {
		t.Errorf("SmGroup misses more groups overall: %g vs %g", smTot, unTot)
	}
	smR, unR := series(rel, "SmGroup"), series(rel, "Uniform")
	var smRT, unRT float64
	for i := range smR {
		smRT += smR[i]
		unRT += unR[i]
	}
	if smRT >= unRT*1.2 {
		t.Errorf("SmGroup mean RelErr %g much worse than Uniform %g", smRT/4, unRT/4)
	}
}

func TestFig6Crossover(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	var sm, un []float64
	for _, s := range fig.Series {
		if s.Name == "SmGroup" {
			sm = s.Y
		} else {
			un = s.Y
		}
	}
	// At z=2.0 (index 2) small group must be clearly better.
	if sm[2] >= un[2] {
		t.Errorf("z=2.0: SmGroup %g not better than Uniform %g", sm[2], un[2])
	}
}

func TestFig9Speedup(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fig.Series[0].Y {
		if v <= 1 {
			t.Errorf("g=%d: speedup %.2f not > 1", i+1, v)
		}
	}
}

func TestPreprocessTable(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Labels) != 6 {
		t.Fatalf("labels = %v", fig.Labels)
	}
	space := fig.Series[1].Y
	// Small group needs more space than uniform; the 0.25% variant less than
	// the 1% variant; renormalized storage less than flat.
	if space[3] <= space[0] {
		t.Errorf("smallgroup space %g not above uniform %g", space[3], space[0])
	}
	if space[4] >= space[3] {
		t.Errorf("low-rate smallgroup space %g not below full %g", space[4], space[3])
	}
	if space[5] >= space[3] {
		t.Errorf("renormalized space %g not below flat %g", space[5], space[3])
	}
}

func TestRunRegistry(t *testing.T) {
	r := NewRunner(testScale())
	if _, err := r.Run("nope"); err == nil {
		t.Error("unknown id not rejected")
	}
	figs, err := r.Run("3a")
	if err != nil || len(figs) != 1 {
		t.Errorf("Run(3a) = %v, %v", figs, err)
	}
	for _, id := range IDs() {
		if id == "" {
			t.Error("empty id")
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "demo", XLabel: "k", YLabel: "v",
		Labels: []string{"1", "2"},
		Series: []Series{{Name: "a", Y: []float64{0.5, 1234567}}},
		Notes:  []string{"hello"},
	}
	out := f.String()
	for _, want := range []string{"Figure x: demo", "k", "a", "0.5000", "1.23e+06", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
