package experiments

import (
	"fmt"
	"time"

	"dynsample/internal/congress"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/outlier"
	"dynsample/internal/uniform"
)

// Fig9 reproduces Figure 9: the speedup of small group sampling over exact
// execution as a function of the number of grouping columns, on the larger
// TPCH5G1.5z database. Uniform sampling's overall speedup is reported as a
// note (the paper: ~9.5x small group, ~11.5x uniform).
func (r *Runner) Fig9() (*Figure, error) {
	db, err := r.TPCH5(1.5, r.Scale.TPCHSF5Rows)
	if err != nil {
		return nil, err
	}
	sg, err := r.smallGroup(db, r.Scale.BaseRate, nil)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID: "9", Title: fmt.Sprintf("Speedup of small group sampling vs exact execution on %s (r=%g)", db.Name, r.Scale.BaseRate),
		XLabel: "grouping columns", YLabel: "speedup (x)",
		Notes: []string{
			"paper: ~14x at 1 grouping column falling to ~8x at 4 (more small group tables per query)",
			"absolute speedups are larger here: the in-memory engine executes pre-joined sample synopses",
			"with no per-query DBMS overhead, so speedup tracks the data-volume ratio; the paper's server",
			"joined unreduced dimension tables at runtime, capping its speedup near 10x",
		},
	}
	var sgY []float64
	var totalExact, totalSG, totalUni time.Duration
	for g := 1; g <= 4; g++ {
		queries, err := r.countWorkload(db, g, 1000+g)
		if err != nil {
			return nil, err
		}
		u, err := r.uniformMatched(db, r.Scale.BaseRate, g)
		if err != nil {
			return nil, err
		}
		var exactT, sgT time.Duration
		for _, q := range queries {
			start := time.Now()
			if _, err := engine.ExecuteExact(db, q); err != nil {
				return nil, err
			}
			exactT += time.Since(start)

			ans, err := sg.Answer(q)
			if err != nil {
				return nil, err
			}
			sgT += ans.Elapsed

			uans, err := u.Answer(q)
			if err != nil {
				return nil, err
			}
			totalUni += uans.Elapsed
		}
		totalExact += exactT
		totalSG += sgT
		fig.Labels = append(fig.Labels, fmt.Sprintf("%d", g))
		sgY = append(sgY, float64(exactT)/float64(sgT))
	}
	fig.Series = []Series{{Name: "SmGroup speedup", Y: sgY}}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("measured overall: small group %.1fx, uniform %.1fx (paper: 9.49x and 11.53x)",
			float64(totalExact)/float64(totalSG), float64(totalExact)/float64(totalUni)))
	return fig, nil
}

// Preprocess reproduces the §5.4.2 comparison: pre-processing time and
// sample-table space for every strategy at the base rate, plus small group
// sampling at a 0.25% rate (the paper's space-reduction example).
func (r *Runner) Preprocess() (*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	rate := r.Scale.BaseRate
	baseBytes := db.TotalBytes()

	type entry struct {
		label string
		st    core.Strategy
	}
	entries := []entry{
		{"uniform", uniform.New(uniform.Config{Rate: rate, Seed: 1})},
		{"outlier", outlier.New(outlier.Config{Rate: rate, Measure: "l_extendedprice", Seed: 1})},
		{"congress-basic", congress.New(congress.Config{Rate: rate, Columns: []string{"l_returnflag", "l_shipmode", "s_region", "o_orderpriority", "p_brand"}, Seed: 1})},
		{"smallgroup", core.NewSmallGroup(core.SmallGroupConfig{BaseRate: rate, Seed: 1})},
		{"smallgroup@0.25%", core.NewSmallGroup(core.SmallGroupConfig{BaseRate: rate / 4, Seed: 1})},
		{"smallgroup-renorm", core.NewSmallGroup(core.SmallGroupConfig{BaseRate: rate, Seed: 1, Renormalize: true})},
	}
	fig := &Figure{
		ID: "prep", Title: fmt.Sprintf("Pre-processing cost on %s (base rate %g)", db.Name, rate),
		XLabel: "strategy", YLabel: "seconds / space",
		Notes: []string{
			"paper: uniform and outlier build within minutes; congress and small group are slower but not exorbitant",
			"paper: small group space overhead ~6% of the TPC-H database at r=1%, ~1.8% at r=0.25%",
			"smallgroup-renorm stores renormalized join synopses with shared reduced dimensions (§5.2.2)",
		},
	}
	var secs, space, rows []float64
	for _, e := range entries {
		start := time.Now()
		p, err := e.st.Preprocess(db)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.label, err)
		}
		el := time.Since(start)
		fig.Labels = append(fig.Labels, e.label)
		secs = append(secs, el.Seconds())
		space = append(space, 100*float64(p.SampleBytes())/float64(baseBytes))
		rows = append(rows, float64(p.SampleRows()))
	}
	fig.Series = []Series{
		{Name: "prep seconds", Y: secs},
		{Name: "space (% of db)", Y: space},
		{Name: "sample rows", Y: rows},
	}
	return fig, nil
}
