package experiments

import (
	"fmt"

	"dynsample/internal/core"
	"dynsample/internal/metrics"
)

// Levels is the ablation DESIGN.md commits to for the §4.2.3 multi-level
// hierarchy: the default two-level scheme against a three-level scheme
// (100% of small groups, 25% of medium groups) and against the Bernoulli
// overall-sample variant the analysis assumes, all at the same base rate.
func (r *Runner) Levels() (*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	rate := r.Scale.BaseRate
	queries, err := r.countWorkload(db, 2, 1400)
	if err != nil {
		return nil, err
	}

	type entry struct {
		label string
		cfg   core.SmallGroupConfig
	}
	entries := []entry{
		{"two-level (paper)", core.SmallGroupConfig{
			BaseRate: rate, SmallGroupFraction: AllocationRatio * rate, Seed: r.Scale.Seed + 1,
		}},
		{"three-level", core.SmallGroupConfig{
			BaseRate: rate, Seed: r.Scale.Seed + 1,
			Levels: []core.HierarchyLevel{
				{MaxFraction: AllocationRatio * rate, Rate: 1},
				{MaxFraction: 3 * AllocationRatio * rate, Rate: 0.25},
			},
		}},
		{"bernoulli overall", core.SmallGroupConfig{
			BaseRate: rate, SmallGroupFraction: AllocationRatio * rate, Seed: r.Scale.Seed + 1,
			Overall: core.BernoulliOverall{},
		}},
	}

	fig := &Figure{
		ID: "levels", Title: fmt.Sprintf("Small group sampling variants on %s (COUNT, g=2, r=%g)", db.Name, rate),
		XLabel: "variant", YLabel: "RelErr / PctGroups / rows",
		Notes: []string{
			"three-level adds a 25%-sampled medium band (§4.2.3 extension); its extra rows are reported",
			"bernoulli overall replaces the reservoir with the §4.4 analysis' sampling model",
		},
	}
	var relY, pctY, rowsY []float64
	for _, e := range entries {
		p, err := r.prepared(db, "lv/"+e.label, core.NewSmallGroup(e.cfg))
		if err != nil {
			return nil, err
		}
		var accs []metrics.Accuracy
		for _, q := range queries {
			exact, err := r.exact(db, q)
			if err != nil {
				return nil, err
			}
			if exact.NumGroups() == 0 {
				continue
			}
			ans, err := p.Answer(q)
			if err != nil {
				return nil, err
			}
			a, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				return nil, err
			}
			accs = append(accs, a)
		}
		m := metrics.Mean(accs)
		fig.Labels = append(fig.Labels, e.label)
		relY = append(relY, m.RelErr)
		pctY = append(pctY, m.PctGroups)
		rowsY = append(rowsY, float64(p.SampleRows()))
	}
	fig.Series = []Series{
		{Name: "RelErr", Y: relY},
		{Name: "PctGroups missed (%)", Y: pctY},
		{Name: "sample rows", Y: rowsY},
	}
	return fig, nil
}
