// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.4 analysis, §5 experiments). Each Fig* method of Runner
// returns Figures holding the same series the paper plots; cmd/experiments
// prints them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one curve of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure is one chart or table from the paper, rendered as ASCII.
type Figure struct {
	// ID is the paper's label, e.g. "3a", "4b", "9".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel names the x axis; Labels are the tick labels.
	XLabel string
	Labels []string
	// YLabel names the y axis (shared by all series).
	YLabel string
	// Series holds one curve per method.
	Series []Series
	// Notes are free-form annotations (measured context, paper reference
	// values).
	Notes []string
}

// Render writes the figure as a fixed-width table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "  (y = %s)\n", f.YLabel)

	colWidth := 18
	for _, s := range f.Series {
		if len(s.Name)+2 > colWidth {
			colWidth = len(s.Name) + 2
		}
	}
	fmt.Fprintf(w, "  %-22s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%*s", colWidth, s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", 22+colWidth*len(f.Series)))
	for i, lbl := range f.Labels {
		fmt.Fprintf(w, "  %-22s", lbl)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "%*s", colWidth, formatVal(s.Y[i]))
			} else {
				fmt.Fprintf(w, "%*s", colWidth, "-")
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var sb strings.Builder
	f.Render(&sb)
	return sb.String()
}

// WriteCSV writes the figure's series as CSV (x label in the first column,
// one column per series), ready for external plotting tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{f.XLabel}, seriesNames(f)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, lbl := range f.Labels {
		rec := []string{lbl}
		for _, s := range f.Series {
			if i < len(s.Y) {
				rec = append(rec, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func seriesNames(f *Figure) []string {
	names := make([]string, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
	}
	return names
}

// FileName returns a filesystem-friendly name for the figure's CSV.
func (f *Figure) FileName() string {
	return "figure_" + strings.ReplaceAll(f.ID, "/", "_") + ".csv"
}
