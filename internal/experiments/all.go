package experiments

import "fmt"

// Run executes the experiment with the given paper id. Valid ids: 3a, 3b, 4,
// 5, 6, 7, 8, 9, sum, prep, gamma, tau, baselines, levels, bounds.
func (r *Runner) Run(id string) ([]*Figure, error) {
	switch id {
	case "3a":
		f, err := r.Fig3a()
		return wrap(f, err)
	case "3b":
		f, err := r.Fig3b()
		return wrap(f, err)
	case "4":
		return r.Fig4()
	case "5":
		return r.Fig5()
	case "6":
		f, err := r.Fig6()
		return wrap(f, err)
	case "7":
		return r.Fig7()
	case "8":
		return r.Fig8()
	case "9":
		f, err := r.Fig9()
		return wrap(f, err)
	case "sum":
		f, err := r.SumOutlier()
		return wrap(f, err)
	case "prep":
		f, err := r.Preprocess()
		return wrap(f, err)
	case "gamma":
		f, err := r.GammaAblation()
		return wrap(f, err)
	case "tau":
		f, err := r.TauAblation()
		return wrap(f, err)
	case "baselines":
		f, err := r.Baselines()
		return wrap(f, err)
	case "levels":
		f, err := r.Levels()
		return wrap(f, err)
	case "bounds":
		return r.Bounds()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

func wrap(f *Figure, err error) ([]*Figure, error) {
	if err != nil {
		return nil, err
	}
	return []*Figure{f}, nil
}

// IDs lists every experiment id in paper order, followed by the ablations
// and the beyond-paper baseline comparison.
func IDs() []string {
	return []string{"3a", "3b", "4", "5", "6", "7", "8", "9", "sum", "prep", "gamma", "tau", "baselines", "levels", "bounds"}
}

// All runs every experiment.
func (r *Runner) All() ([]*Figure, error) {
	var out []*Figure
	for _, id := range IDs() {
		figs, err := r.Run(id)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, figs...)
	}
	return out, nil
}
