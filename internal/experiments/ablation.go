package experiments

import (
	"fmt"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/uniform"
)

// GammaAblation measures the empirical counterpart of Figure 3(a): RelErr of
// small group sampling as the allocation ratio γ varies, holding the total
// per-query sample space fixed (queries use 2 grouping columns, so a run at
// ratio γ gets an overall sample of R/(1+2γ) plus two small group tables).
func (r *Runner) GammaAblation() (*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	const g = 2
	totalRate := r.Scale.BaseRate * (1 + AllocationRatio*g) // match the Fig 4 budget at γ=0.5

	queries, err := r.countWorkload(db, g, 1100)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID: "gamma", Title: fmt.Sprintf("Empirical RelErr vs allocation ratio on %s (g=%d, total space %.2f%%)", db.Name, g, totalRate*100),
		XLabel: "allocation ratio", YLabel: "RelErr",
		Notes: []string{
			"empirical check of Figure 3(a): ratio 0 equals uniform; the optimum is flat around 0.25-1.0",
		},
	}
	var y []float64
	for _, gamma := range []float64{0.125, 0.25, 0.5, 1.0, 2.0} {
		rate := totalRate / (1 + gamma*g)
		p, err := r.prepared(db, fmt.Sprintf("sg/gamma=%g", gamma), core.NewSmallGroup(core.SmallGroupConfig{
			BaseRate:           rate,
			SmallGroupFraction: gamma * rate,
			Seed:               r.Scale.Seed + 6,
		}))
		if err != nil {
			return nil, err
		}
		accs, err := r.evalQueries(db, queries, []method{{
			name:   "SmGroup",
			answer: func(q *engine.Query, _ int) (*core.Answer, error) { return p.Answer(q) },
		}})
		if err != nil {
			return nil, err
		}
		fig.Labels = append(fig.Labels, fmt.Sprintf("%.3f", gamma))
		y = append(y, accs["SmGroup"].RelErr)
	}
	// γ=0 reference: a plain uniform sample of the whole budget.
	up, err := r.prepared(db, fmt.Sprintf("uni/r=%g", totalRate), uniform.New(uniform.Config{Rate: totalRate, Seed: r.Scale.Seed + 2}))
	if err != nil {
		return nil, err
	}
	accs, err := r.evalQueries(db, queries, []method{{
		name:   "Uniform",
		answer: func(q *engine.Query, _ int) (*core.Answer, error) { return up.Answer(q) },
	}})
	if err != nil {
		return nil, err
	}
	fig.Labels = append([]string{"0 (uniform)"}, fig.Labels...)
	fig.Series = []Series{{Name: "SmGroup", Y: append([]float64{accs["Uniform"].RelErr}, y...)}}
	return fig, nil
}

// TauAblation varies the distinct-value cutoff τ (5000 in the paper) and
// reports how many columns survive into S and the resulting accuracy.
func (r *Runner) TauAblation() (*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	queries, err := r.countWorkload(db, 2, 1200)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "tau", Title: fmt.Sprintf("Effect of the distinct-value cutoff tau on %s (r=%g, g=2)", db.Name, r.Scale.BaseRate),
		XLabel: "tau", YLabel: "RelErr / |S| / rows",
		Notes: []string{
			"tau trades pre-processing memory for coverage; the paper fixes tau=5000",
		},
	}
	var relY, sY, rowsY []float64
	for _, tau := range []int{20, 200, 5000} {
		p, err := r.prepared(db, fmt.Sprintf("sg/tau=%d", tau), core.NewSmallGroup(core.SmallGroupConfig{
			BaseRate:           r.Scale.BaseRate,
			SmallGroupFraction: AllocationRatio * r.Scale.BaseRate,
			DistinctLimit:      tau,
			Seed:               r.Scale.Seed + 7,
		}))
		if err != nil {
			return nil, err
		}
		accs, err := r.evalQueries(db, queries, []method{{
			name:   "SmGroup",
			answer: func(q *engine.Query, _ int) (*core.Answer, error) { return p.Answer(q) },
		}})
		if err != nil {
			return nil, err
		}
		fig.Labels = append(fig.Labels, fmt.Sprintf("%d", tau))
		relY = append(relY, accs["SmGroup"].RelErr)
		sp := p.(interface{ Meta() *core.Metadata })
		sY = append(sY, float64(sp.Meta().Width()))
		rowsY = append(rowsY, float64(p.SampleRows()))
	}
	fig.Series = []Series{
		{Name: "RelErr", Y: relY},
		{Name: "|S| (tables)", Y: sY},
		{Name: "sample rows", Y: rowsY},
	}
	return fig, nil
}
