package experiments

import (
	"fmt"

	"dynsample/internal/model"
)

// Model defaults reproducing the regime of Figure 3: a 100k-row idealised
// database with a 20% runtime sample budget. The paper does not report its
// N and s; these values are chosen so the curves show the paper's shape
// (U-curve with a flat optimum around γ≈0.5; skew crossover).
const (
	modelN      = 1e5
	modelBudget = 2e4
)

// Fig3a reproduces Figure 3(a): analytical SqRelErr vs sampling allocation
// ratio at g=2, σ=0.1, c=50, z=1.8.
func (r *Runner) Fig3a() (*Figure, error) {
	base := model.Params{G: 2, Sigma: 0.1, C: 50, Z: 1.8, N: modelN, TotalBudget: modelBudget}
	gammas := []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
	pts, err := model.SweepGamma(base, gammas)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "3a",
		Title:  "Analytical SqRelErr vs sampling allocation ratio (g=2, sigma=0.1, c=50, z=1.8)",
		XLabel: "allocation ratio",
		YLabel: "E[SqRelErr]",
		Notes: []string{
			"paper: SmGroup dips from ~0.30 to ~0.21 with a flat optimum in [0.25,1.0]; Uniform is flat",
			"uniform is equivalent to small group sampling at ratio 0",
		},
	}
	sm := Series{Name: "SmGroup"}
	un := Series{Name: "Uniform"}
	for i, g := range gammas {
		fig.Labels = append(fig.Labels, fmt.Sprintf("%.2f", g))
		sm.Y = append(sm.Y, pts[i].Esg)
		un.Y = append(un.Y, pts[i].Eu)
	}
	fig.Series = []Series{sm, un}
	return fig, nil
}

// Fig3b reproduces Figure 3(b): analytical SqRelErr vs skew at g=3, σ=0.3,
// c=50, γ=0.5.
func (r *Runner) Fig3b() (*Figure, error) {
	base := model.Params{G: 3, Sigma: 0.3, C: 50, N: modelN, TotalBudget: modelBudget, Gamma: 0.5}
	zs := []float64{1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5}
	pts, err := model.SweepZ(base, zs)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "3b",
		Title:  "Analytical SqRelErr vs skew (g=3, sigma=0.3, c=50, gamma=0.5)",
		XLabel: "skew parameter z",
		YLabel: "E[SqRelErr]",
		Notes: []string{
			"paper: uniform slightly preferable near-uniform data; small group clearly superior at moderate-high skew",
		},
	}
	sm := Series{Name: "SmGroup"}
	un := Series{Name: "Uniform"}
	for i, z := range zs {
		fig.Labels = append(fig.Labels, fmt.Sprintf("%.2f", z))
		sm.Y = append(sm.Y, pts[i].Esg)
		un.Y = append(un.Y, pts[i].Eu)
	}
	fig.Series = []Series{sm, un}
	return fig, nil
}
