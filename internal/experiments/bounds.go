package experiments

import (
	"context"
	"fmt"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/workload"
)

// boundLevels are the error bounds the calibration study sweeps; the
// tightest forces the planner into the exact fallback on most queries, the
// loosest is satisfied by trimmed sample plans.
var boundLevels = []float64{0.01, 0.05, 0.10}

// Bounds runs the predicted-vs-achieved calibration study behind
// docs/ACCURACY.md: answer a predicate-free GROUP BY workload on SALES and
// TPC-H under each error bound, and report the planner's mean predicted
// error, the mean achieved error measured against the exact answers, the
// fraction of queries whose achieved error stays within the requested
// bound, and the mean fraction of base rows scanned (how hard the planner
// had to escalate).
func (r *Runner) Bounds() ([]*Figure, error) {
	sales, err := r.Sales()
	if err != nil {
		return nil, err
	}
	tpch, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	var out []*Figure
	for _, db := range []*engine.Database{sales, tpch} {
		f, err := r.boundsOn(db)
		if err != nil {
			return nil, fmt.Errorf("bounds on %s: %w", db.Name, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func (r *Runner) boundsOn(db *engine.Database) (*Figure, error) {
	prep, err := r.smallGroup(db, r.Scale.BaseRate, nil)
	if err != nil {
		return nil, err
	}
	ba, ok := prep.(core.BoundedAnswerer)
	if !ok {
		return nil, fmt.Errorf("prepared state for %s does not answer bounded queries", db.Name)
	}
	// Predicate-free GROUP BY queries: the accuracy contract
	// (docs/ACCURACY.md) promises calibrated predictions only there, so the
	// calibration study measures exactly that regime.
	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: 1,
		Aggregate:       engine.Count,
		MaxDistinct:     core.DefaultDistinctLimit,
		Seed:            r.Scale.Seed + 31,
	})
	if err != nil {
		return nil, err
	}
	queries := gen.Queries(r.Scale.QueriesPerConfig)

	f := &Figure{
		ID:     "bounds/" + db.Name,
		Title:  fmt.Sprintf("Planner calibration on %s: predicted vs achieved error per requested bound", db.Name),
		XLabel: "error_bound",
		YLabel: "mean relative error (and ratios)",
	}
	baseRows := float64(db.NumRows())
	var predicted, achieved, within, rowsFrac Series
	predicted.Name, achieved.Name = "predicted", "achieved"
	within.Name, rowsFrac.Name = "within-bound", "rows-scanned-frac"
	for _, bound := range boundLevels {
		f.Labels = append(f.Labels, fmt.Sprintf("%.2f", bound))
		var sumPred, sumAch, sumRows float64
		var n, ok int
		for _, q := range queries {
			exact, err := r.exact(db, q)
			if err != nil {
				return nil, err
			}
			if exact.NumGroups() == 0 {
				continue
			}
			ans, err := ba.AnswerBounds(context.Background(), q, core.Bounds{ErrorBound: bound})
			if err != nil {
				return nil, err
			}
			acc, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				return nil, err
			}
			sumPred += ans.Plan.Chosen.PredictedError
			sumAch += acc.RelErr
			sumRows += float64(ans.RowsRead) / baseRows
			if acc.RelErr <= bound {
				ok++
			}
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("no queries with non-empty exact answers on %s", db.Name)
		}
		predicted.Y = append(predicted.Y, sumPred/float64(n))
		achieved.Y = append(achieved.Y, sumAch/float64(n))
		within.Y = append(within.Y, float64(ok)/float64(n))
		rowsFrac.Y = append(rowsFrac.Y, sumRows/float64(n))
	}
	f.Series = []Series{predicted, achieved, within, rowsFrac}
	f.Notes = append(f.Notes,
		fmt.Sprintf("%d predicate-free 1-column COUNT group-bys, r=%g, achieved = mean relative error vs the exact answer", len(queries), r.Scale.BaseRate),
		"the contract (docs/ACCURACY.md): achieved stays at or below predicted; predicted stays at or below the requested bound")
	return f, nil
}
