package experiments

import (
	"fmt"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/uniform"
	"dynsample/internal/workload"
)

// AllocationRatio is γ = t/r = 0.5 throughout §5, as recommended by §4.4.
const AllocationRatio = 0.5

// Scale controls the size of every experiment so the suite can run anywhere
// from unit-test speed to paper scale. The zero value is filled with the
// defaults below.
type Scale struct {
	// TPCHSF1Rows is the fact-row count standing in for the paper's 1 GB
	// TPC-H databases (default 100,000: the benchmark's 6M rows per SF,
	// scaled 60x down).
	TPCHSF1Rows int
	// TPCHSF5Rows stands in for the 5 GB databases used by the performance
	// experiments (default 500,000).
	TPCHSF5Rows int
	// SalesRows is the SALES fact size (default 80,000 for the paper's 800k).
	SalesRows int
	// QueriesPerConfig is the number of random queries per parameter setting
	// (default 20, as in §5.2.3).
	QueriesPerConfig int
	// BaseRate is r (default 0.01, the paper's headline setting).
	BaseRate float64
	// Seed drives data generation, pre-processing and workloads.
	Seed int64
}

func (s Scale) withDefaults() Scale {
	if s.TPCHSF1Rows == 0 {
		s.TPCHSF1Rows = 1200000
	}
	if s.TPCHSF5Rows == 0 {
		s.TPCHSF5Rows = 2400000
	}
	if s.SalesRows == 0 {
		s.SalesRows = 400000
	}
	if s.QueriesPerConfig == 0 {
		s.QueriesPerConfig = 20
	}
	if s.BaseRate == 0 {
		s.BaseRate = 0.01
	}
	return s
}

// Runner executes experiments, caching generated databases and pre-processed
// sample sets across figures.
type Runner struct {
	Scale Scale

	tpch   map[string]*engine.Database // key: fmt "z=%.1f/rows=%d"
	sales  *engine.Database
	preps  map[string]core.Prepared
	exacts map[string]*engine.Result // key: db name + query text
}

// NewRunner returns a runner at the given scale.
func NewRunner(sc Scale) *Runner {
	return &Runner{
		Scale:  sc.withDefaults(),
		tpch:   make(map[string]*engine.Database),
		preps:  make(map[string]core.Prepared),
		exacts: make(map[string]*engine.Result),
	}
}

// exact computes (and caches) the exact answer to q over db. Several figures
// replay the same workload against differently-parameterised samples; the
// ground truth is identical across them.
func (r *Runner) exact(db *engine.Database, q *engine.Query) (*engine.Result, error) {
	key := db.Name + "|" + q.String()
	if res, ok := r.exacts[key]; ok {
		return res, nil
	}
	res, err := engine.ExecuteExact(db, q)
	if err != nil {
		return nil, err
	}
	r.exacts[key] = res
	return res, nil
}

// TPCH returns (building if needed) the skewed TPC-H database with the given
// Zipf z and fact rows. sf only labels the database (TPCHxGyz).
func (r *Runner) TPCH(z float64, rows int) (*engine.Database, error) {
	return r.tpchSF(1, z, rows)
}

// TPCH5 returns the larger database standing in for the paper's 5 GB
// TPCH5Gyz, used by the performance experiments.
func (r *Runner) TPCH5(z float64, rows int) (*engine.Database, error) {
	return r.tpchSF(5, z, rows)
}

func (r *Runner) tpchSF(sf float64, z float64, rows int) (*engine.Database, error) {
	key := fmt.Sprintf("sf=%g/z=%.2f/rows=%d", sf, z, rows)
	if db, ok := r.tpch[key]; ok {
		return db, nil
	}
	db, err := datagen.TPCH(datagen.TPCHConfig{
		ScaleFactor: sf,
		Zipf:        z,
		RowsPerSF:   int(float64(rows) / sf),
		Seed:        r.Scale.Seed + int64(z*1000),
	})
	if err != nil {
		return nil, err
	}
	r.tpch[key] = db
	return db, nil
}

// Sales returns (building if needed) the SALES-like database.
func (r *Runner) Sales() (*engine.Database, error) {
	if r.sales != nil {
		return r.sales, nil
	}
	db, err := datagen.Sales(datagen.SalesConfig{FactRows: r.Scale.SalesRows, Seed: r.Scale.Seed + 77})
	if err != nil {
		return nil, err
	}
	r.sales = db
	return db, nil
}

// prepared runs (and caches) a strategy's pre-processing on a database.
func (r *Runner) prepared(db *engine.Database, key string, st core.Strategy) (core.Prepared, error) {
	full := db.Name + "/" + key
	if p, ok := r.preps[full]; ok {
		return p, nil
	}
	p, err := st.Preprocess(db)
	if err != nil {
		return nil, fmt.Errorf("preprocess %s on %s: %w", key, db.Name, err)
	}
	r.preps[full] = p
	return p, nil
}

// smallGroup returns the cached small group sampling state for db at rate.
func (r *Runner) smallGroup(db *engine.Database, rate float64, cols []string) (core.Prepared, error) {
	key := fmt.Sprintf("sg/r=%g/cols=%d", rate, len(cols))
	return r.prepared(db, key, core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate:           rate,
		SmallGroupFraction: AllocationRatio * rate,
		Columns:            cols,
		Seed:               r.Scale.Seed + 1,
	}))
}

// uniformMatched returns the uniform sample granting the same per-query
// sample space as small group sampling with g grouping columns: rate
// (1 + γ·g)·r (§5.3.1).
func (r *Runner) uniformMatched(db *engine.Database, rate float64, g int) (core.Prepared, error) {
	u := rate * (1 + AllocationRatio*float64(g))
	if u > 1 {
		u = 1
	}
	key := fmt.Sprintf("uni/r=%g", u)
	return r.prepared(db, key, uniform.New(uniform.Config{Rate: u, Seed: r.Scale.Seed + 2}))
}

// evalQueries answers each query with each named method and returns the mean
// accuracy per method, skipping queries whose exact answer is empty.
type method struct {
	name   string
	answer func(q *engine.Query, g int) (*core.Answer, error)
}

func (r *Runner) evalQueries(db *engine.Database, queries []*engine.Query, methods []method) (map[string]metrics.Accuracy, error) {
	accs := make(map[string][]metrics.Accuracy, len(methods))
	for _, q := range queries {
		exact, err := r.exact(db, q)
		if err != nil {
			return nil, err
		}
		if exact.NumGroups() == 0 {
			continue
		}
		for _, m := range methods {
			ans, err := m.answer(q, len(q.GroupBy))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			acc, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				return nil, err
			}
			accs[m.name] = append(accs[m.name], acc)
		}
	}
	out := make(map[string]metrics.Accuracy, len(methods))
	for name, list := range accs {
		out[name] = metrics.Mean(list)
	}
	return out, nil
}

// countWorkload builds the §5.2.3 COUNT workload with g grouping columns.
func (r *Runner) countWorkload(db *engine.Database, g, seedOffset int) ([]*engine.Query, error) {
	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: g,
		Predicates:      1 + (g % 2), // alternate 1 and 2 predicates
		Aggregate:       engine.Count,
		MaxDistinct:     core.DefaultDistinctLimit,
		MassSelectivity: true,
		Seed:            r.Scale.Seed + int64(seedOffset),
	})
	if err != nil {
		return nil, err
	}
	return gen.Queries(r.Scale.QueriesPerConfig), nil
}
