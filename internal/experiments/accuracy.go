package experiments

import (
	"fmt"

	"dynsample/internal/congress"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/outlier"
	"dynsample/internal/workload"
)

// methodsSmallGroupVsUniform builds the two standard competitors over db at
// the runner's base rate, with uniform's rate matched per query (§5.3.1).
func (r *Runner) methodsSmallGroupVsUniform(db *engine.Database, rate float64) ([]method, error) {
	sg, err := r.smallGroup(db, rate, nil)
	if err != nil {
		return nil, err
	}
	return []method{
		{name: "SmGroup", answer: func(q *engine.Query, g int) (*core.Answer, error) {
			return sg.Answer(q)
		}},
		{name: "Uniform", answer: func(q *engine.Query, g int) (*core.Answer, error) {
			u, err := r.uniformMatched(db, rate, g)
			if err != nil {
				return nil, err
			}
			return u.Answer(q)
		}},
	}, nil
}

// Fig4 reproduces Figure 4: RelErr (4a) and PctGroups (4b) vs the number of
// grouping columns for small group sampling vs uniform sampling on
// TPCH1G2.0z COUNT queries at a 1% base rate.
func (r *Runner) Fig4() ([]*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	methods, err := r.methodsSmallGroupVsUniform(db, r.Scale.BaseRate)
	if err != nil {
		return nil, err
	}
	return r.groupingColumnSweep(db, methods, "4",
		fmt.Sprintf("SmGroup vs Uniform on %s (COUNT, r=%g)", db.Name, r.Scale.BaseRate),
		[]string{
			"paper: both metrics rise with grouping columns, much faster for uniform",
			"paper: at 4 grouping columns uniform misses >75% of groups, small group <15%",
		})
}

// groupingColumnSweep runs the §5.2.3 COUNT workload for g=1..4 and emits a
// RelErr figure and a PctGroups figure.
func (r *Runner) groupingColumnSweep(db *engine.Database, methods []method, id, title string, notes []string) ([]*Figure, error) {
	rel := &Figure{
		ID: id + "a", Title: title,
		XLabel: "grouping columns", YLabel: "RelErr", Notes: notes,
	}
	pct := &Figure{
		ID: id + "b", Title: title,
		XLabel: "grouping columns", YLabel: "PctGroups missed (%)", Notes: notes,
	}
	series := make(map[string]*[2][]float64, len(methods))
	order := make([]string, 0, len(methods))
	for _, m := range methods {
		series[m.name] = &[2][]float64{}
		order = append(order, m.name)
	}
	for g := 1; g <= 4; g++ {
		queries, err := r.countWorkload(db, g, 100+g)
		if err != nil {
			return nil, err
		}
		accs, err := r.evalQueries(db, queries, methods)
		if err != nil {
			return nil, err
		}
		rel.Labels = append(rel.Labels, fmt.Sprintf("%d", g))
		pct.Labels = append(pct.Labels, fmt.Sprintf("%d", g))
		for name, acc := range accs {
			s := series[name]
			s[0] = append(s[0], acc.RelErr)
			s[1] = append(s[1], acc.PctGroups)
		}
	}
	for _, name := range order {
		rel.Series = append(rel.Series, Series{Name: name, Y: series[name][0]})
		pct.Series = append(pct.Series, Series{Name: name, Y: series[name][1]})
	}
	return []*Figure{rel, pct}, nil
}

// selectivityBins are the Figure 5 x-axis bucket upper bounds, as fractions
// of the database (.02% .. 1.28%, log scale).
var selectivityBins = []float64{0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128}

func selectivityLabel(i int) string {
	lo := 0.0
	if i > 0 {
		lo = selectivityBins[i-1]
	}
	return fmt.Sprintf("%.2f%%-%.2f%%", lo*100, selectivityBins[i]*100)
}

// Fig5 reproduces Figure 5: RelErr and PctGroups vs per-group selectivity on
// the SALES database.
func (r *Runner) Fig5() ([]*Figure, error) {
	db, err := r.Sales()
	if err != nil {
		return nil, err
	}
	methods, err := r.methodsSmallGroupVsUniform(db, r.Scale.BaseRate)
	if err != nil {
		return nil, err
	}

	type bucketAcc map[string][]metrics.Accuracy
	buckets := make([]bucketAcc, len(selectivityBins))
	for i := range buckets {
		buckets[i] = make(bucketAcc)
	}

	// Mixed workload across grouping-column counts to populate all buckets.
	for g := 1; g <= 4; g++ {
		queries, err := r.countWorkload(db, g, 500+g)
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			exact, err := r.exact(db, q)
			if err != nil {
				return nil, err
			}
			if exact.NumGroups() == 0 {
				continue
			}
			sel := metrics.PerGroupSelectivity(exact, db.NumRows())
			bi := -1
			for i, hi := range selectivityBins {
				if sel <= hi {
					bi = i
					break
				}
			}
			if bi < 0 {
				continue // larger than the plotted range
			}
			for _, m := range methods {
				ans, err := m.answer(q, len(q.GroupBy))
				if err != nil {
					return nil, err
				}
				acc, err := metrics.Compare(exact, ans.Result, 0)
				if err != nil {
					return nil, err
				}
				buckets[bi][m.name] = append(buckets[bi][m.name], acc)
			}
		}
	}

	rel := &Figure{
		ID: "5-relerr", Title: fmt.Sprintf("SmGroup vs Uniform on %s by per-group selectivity (COUNT, r=%g)", db.Name, r.Scale.BaseRate),
		XLabel: "per-group selectivity", YLabel: "RelErr",
		Notes: []string{"paper: small group sampling consistently better across the selectivity range"},
	}
	pct := &Figure{
		ID: "5-pctgroups", Title: rel.Title,
		XLabel: "per-group selectivity", YLabel: "PctGroups missed (%)",
	}
	names := []string{"SmGroup", "Uniform"}
	relY := map[string][]float64{}
	pctY := map[string][]float64{}
	for i := range buckets {
		empty := true
		for _, name := range names {
			if len(buckets[i][name]) > 0 {
				empty = false
			}
		}
		if empty {
			continue
		}
		rel.Labels = append(rel.Labels, selectivityLabel(i))
		pct.Labels = append(pct.Labels, selectivityLabel(i))
		for _, name := range names {
			m := metrics.Mean(buckets[i][name])
			relY[name] = append(relY[name], m.RelErr)
			pctY[name] = append(pctY[name], m.PctGroups)
		}
	}
	for _, name := range names {
		rel.Series = append(rel.Series, Series{Name: name, Y: relY[name]})
		pct.Series = append(pct.Series, Series{Name: name, Y: pctY[name]})
	}
	return []*Figure{rel, pct}, nil
}

// Fig6 reproduces Figure 6: RelErr vs the Zipf skew parameter on the
// TPCH1Gyz series.
func (r *Runner) Fig6() (*Figure, error) {
	fig := &Figure{
		ID: "6", Title: fmt.Sprintf("RelErr vs skew on TPCH1Gyz (COUNT, r=%g)", r.Scale.BaseRate),
		XLabel: "skew parameter z", YLabel: "RelErr",
		Notes: []string{
			"paper: uniform slightly ahead at z=1.0; small group clearly better at z>=1.5",
			"paper: uniform partially recovers at very high skew (predicates filter rare values out)",
		},
	}
	var smY, unY []float64
	for _, z := range []float64{1.0, 1.5, 2.0, 2.5} {
		db, err := r.TPCH(z, r.Scale.TPCHSF1Rows)
		if err != nil {
			return nil, err
		}
		methods, err := r.methodsSmallGroupVsUniform(db, r.Scale.BaseRate)
		if err != nil {
			return nil, err
		}
		var all map[string]metrics.Accuracy
		accs := map[string][]metrics.Accuracy{}
		for g := 2; g <= 3; g++ {
			queries, err := r.countWorkload(db, g, 600+g)
			if err != nil {
				return nil, err
			}
			batch, err := r.evalQueries(db, queries, methods)
			if err != nil {
				return nil, err
			}
			for name, a := range batch {
				accs[name] = append(accs[name], a)
			}
		}
		all = map[string]metrics.Accuracy{
			"SmGroup": metrics.Mean(accs["SmGroup"]),
			"Uniform": metrics.Mean(accs["Uniform"]),
		}
		fig.Labels = append(fig.Labels, fmt.Sprintf("%.1f", z))
		smY = append(smY, all["SmGroup"].RelErr)
		unY = append(unY, all["Uniform"].RelErr)
	}
	fig.Series = []Series{{Name: "SmGroup", Y: smY}, {Name: "Uniform", Y: unY}}
	return fig, nil
}

// Fig7 reproduces Figure 7: RelErr and PctGroups vs the base sampling rate
// on TPCH1G2.0z.
func (r *Runner) Fig7() ([]*Figure, error) {
	db, err := r.TPCH(2.0, r.Scale.TPCHSF1Rows)
	if err != nil {
		return nil, err
	}
	rates := []float64{0.0025, 0.005, 0.01, 0.02, 0.04}
	rel := &Figure{
		ID: "7-relerr", Title: fmt.Sprintf("Error vs base sampling rate on %s (COUNT)", db.Name),
		XLabel: "base sampling rate", YLabel: "RelErr",
		Notes: []string{"paper: both methods degrade smoothly as the rate falls; small group consistently better"},
	}
	pct := &Figure{
		ID: "7-pctgroups", Title: rel.Title,
		XLabel: "base sampling rate", YLabel: "PctGroups missed (%)",
	}
	var smRel, unRel, smPct, unPct []float64
	for _, rate := range rates {
		methods, err := r.methodsSmallGroupVsUniform(db, rate)
		if err != nil {
			return nil, err
		}
		accs := map[string][]metrics.Accuracy{}
		for g := 2; g <= 3; g++ {
			queries, err := r.countWorkload(db, g, 700+g)
			if err != nil {
				return nil, err
			}
			batch, err := r.evalQueries(db, queries, methods)
			if err != nil {
				return nil, err
			}
			for name, a := range batch {
				accs[name] = append(accs[name], a)
			}
		}
		sm, un := metrics.Mean(accs["SmGroup"]), metrics.Mean(accs["Uniform"])
		rel.Labels = append(rel.Labels, fmt.Sprintf("%.2f%%", rate*100))
		pct.Labels = append(pct.Labels, fmt.Sprintf("%.2f%%", rate*100))
		smRel = append(smRel, sm.RelErr)
		unRel = append(unRel, un.RelErr)
		smPct = append(smPct, sm.PctGroups)
		unPct = append(unPct, un.PctGroups)
	}
	rel.Series = []Series{{Name: "SmGroup", Y: smRel}, {Name: "Uniform", Y: unRel}}
	pct.Series = []Series{{Name: "SmGroup", Y: smPct}, {Name: "Uniform", Y: unPct}}
	return []*Figure{rel, pct}, nil
}

// salesRestrictedColumns picks the Figure 8 column subset: the fact table's
// direct columns plus four of the six dimensions (~120 columns), mirroring
// the paper's restriction ("we picked four dimension tables plus the fact
// table ... 120 columns in all").
func salesRestrictedColumns(db *engine.Database) []string {
	keep := map[string]bool{"product": true, "store": true, "customer": true, "promotion": true}
	dimOf := make(map[string]string)
	for _, d := range db.Dims {
		for _, c := range d.Table.Columns() {
			dimOf[c.Name] = d.Table.Name
		}
	}
	var cols []string
	for _, c := range db.Columns() {
		dim, isDim := dimOf[c]
		if !isDim || keep[dim] {
			cols = append(cols, c)
		}
	}
	return cols
}

// Fig8 reproduces Figure 8: RelErr and PctGroups vs grouping columns for
// small group sampling vs basic congress vs uniform on SALES restricted to
// ~120 columns.
func (r *Runner) Fig8() ([]*Figure, error) {
	db, err := r.Sales()
	if err != nil {
		return nil, err
	}
	cols := salesRestrictedColumns(db)
	measures := map[string]bool{}
	for _, m := range []string{"sale_amount", "units", "margin"} {
		measures[m] = true
	}
	var grpCols []string
	for _, c := range cols {
		if !measures[c] {
			grpCols = append(grpCols, c)
		}
	}

	sg, err := r.smallGroup(db, r.Scale.BaseRate, grpCols)
	if err != nil {
		return nil, err
	}
	bc, err := r.prepared(db, "congress-basic", congress.New(congress.Config{
		Rate:    r.Scale.BaseRate * (1 + AllocationRatio*2.5), // mid-g matched space
		Columns: grpCols,
		Seed:    r.Scale.Seed + 3,
	}))
	if err != nil {
		return nil, err
	}
	methods := []method{
		{name: "SmGroup", answer: func(q *engine.Query, g int) (*core.Answer, error) { return sg.Answer(q) }},
		{name: "BasicCongress", answer: func(q *engine.Query, g int) (*core.Answer, error) { return bc.Answer(q) }},
		{name: "Uniform", answer: func(q *engine.Query, g int) (*core.Answer, error) {
			u, err := r.uniformMatched(db, r.Scale.BaseRate, g)
			if err != nil {
				return nil, err
			}
			return u.Answer(q)
		}},
	}

	rel := &Figure{
		ID: "8a", Title: fmt.Sprintf("SmGroup vs BasicCongress vs Uniform on %s (%d columns, r=%g)", db.Name, len(grpCols), r.Scale.BaseRate),
		XLabel: "grouping columns", YLabel: "RelErr",
		Notes: []string{
			"paper: small group significantly more accurate; basic congress ~ uniform",
			"paper: congress degenerated into ~166,000 tiny strata on the 120-column SALES subset",
		},
	}
	if sc, ok := bc.(interface{ StrataCount() int }); ok {
		rel.Notes = append(rel.Notes, fmt.Sprintf("measured: basic congress stratified %d rows into %d strata", db.NumRows(), sc.StrataCount()))
	}
	pct := &Figure{ID: "8b", Title: rel.Title, XLabel: "grouping columns", YLabel: "PctGroups missed (%)"}

	names := []string{"SmGroup", "BasicCongress", "Uniform"}
	relY := map[string][]float64{}
	pctY := map[string][]float64{}
	for g := 1; g <= 4; g++ {
		gen, err := workload.NewGenerator(db, workload.Config{
			GroupingColumns: g,
			Predicates:      1 + (g % 2),
			Aggregate:       engine.Count,
			MaxDistinct:     core.DefaultDistinctLimit,
			MassSelectivity: true,
			Columns:         grpCols,
			Seed:            r.Scale.Seed + int64(800+g),
		})
		if err != nil {
			return nil, err
		}
		accs, err := r.evalQueries(db, gen.Queries(r.Scale.QueriesPerConfig), methods)
		if err != nil {
			return nil, err
		}
		rel.Labels = append(rel.Labels, fmt.Sprintf("%d", g))
		pct.Labels = append(pct.Labels, fmt.Sprintf("%d", g))
		for _, name := range names {
			relY[name] = append(relY[name], accs[name].RelErr)
			pctY[name] = append(pctY[name], accs[name].PctGroups)
		}
	}
	for _, name := range names {
		rel.Series = append(rel.Series, Series{Name: name, Y: relY[name]})
		pct.Series = append(pct.Series, Series{Name: name, Y: pctY[name]})
	}
	return []*Figure{rel, pct}, nil
}

// SumOutlier reproduces the §5.3.3 comparison on SUM queries over the skewed
// sale_amount measure: small group sampling enhanced with outlier indexing vs
// outlier indexing alone vs uniform sampling.
func (r *Runner) SumOutlier() (*Figure, error) {
	db, err := r.Sales()
	if err != nil {
		return nil, err
	}
	const measure = "sale_amount"

	sgo, err := r.prepared(db, "sg+outlier", core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate:           r.Scale.BaseRate,
		SmallGroupFraction: AllocationRatio * r.Scale.BaseRate,
		Seed:               r.Scale.Seed + 4,
		Overall:            outlier.OverallBuilder{Measure: measure},
	}))
	if err != nil {
		return nil, err
	}
	methods := []method{
		{name: "SmGroup+Outlier", answer: func(q *engine.Query, g int) (*core.Answer, error) { return sgo.Answer(q) }},
		{name: "Outlier", answer: func(q *engine.Query, g int) (*core.Answer, error) {
			rate := r.Scale.BaseRate * (1 + AllocationRatio*float64(g))
			p, err := r.prepared(db, fmt.Sprintf("outlier/r=%g", rate), outlier.New(outlier.Config{
				Rate: rate, Measure: measure, Seed: r.Scale.Seed + 5,
			}))
			if err != nil {
				return nil, err
			}
			return p.Answer(q)
		}},
		{name: "Uniform", answer: func(q *engine.Query, g int) (*core.Answer, error) {
			u, err := r.uniformMatched(db, r.Scale.BaseRate, g)
			if err != nil {
				return nil, err
			}
			return u.Answer(q)
		}},
	}

	names := []string{"SmGroup+Outlier", "Outlier", "Uniform"}
	accs := map[string][]metrics.Accuracy{}
	for g := 1; g <= 4; g++ {
		gen, err := workload.NewGenerator(db, workload.Config{
			GroupingColumns: g,
			Predicates:      1 + (g % 2),
			Aggregate:       engine.Sum,
			Measures:        []string{measure},
			MaxDistinct:     core.DefaultDistinctLimit,
			MassSelectivity: true,
			Seed:            r.Scale.Seed + int64(900+g),
		})
		if err != nil {
			return nil, err
		}
		batch, err := r.evalQueries(db, gen.Queries(r.Scale.QueriesPerConfig), methods)
		if err != nil {
			return nil, err
		}
		for name, a := range batch {
			accs[name] = append(accs[name], a)
		}
	}
	fig := &Figure{
		ID: "sum", Title: fmt.Sprintf("SUM(%s) queries on %s (r=%g)", measure, db.Name, r.Scale.BaseRate),
		XLabel: "metric", YLabel: "value",
		Labels: []string{"RelErr", "PctGroups missed (%)"},
		Notes: []string{
			"paper: RelErr 0.79 (SmGroup+Outlier) vs 1.08 (Outlier); missed groups 37% vs 55%; uniform ~ outlier",
		},
	}
	for _, name := range names {
		m := metrics.Mean(accs[name])
		fig.Series = append(fig.Series, Series{Name: name, Y: []float64{m.RelErr, m.PctGroups}})
	}
	return fig, nil
}
