package experiments

import (
	"math"
	"strings"
	"testing"
)

// These tests exercise every remaining experiment driver at the reduced test
// scale, asserting structural sanity (shapes, ranges, series presence); the
// paper-shape assertions live in experiments_test.go for the experiments
// whose shape is stable at small scale.

func checkFinite(t *testing.T, f *Figure) {
	t.Helper()
	if len(f.Series) == 0 || len(f.Labels) == 0 {
		t.Fatalf("figure %s empty: %d series, %d labels", f.ID, len(f.Series), len(f.Labels))
	}
	for _, s := range f.Series {
		if len(s.Y) != len(f.Labels) {
			t.Errorf("figure %s series %s has %d points for %d labels", f.ID, s.Name, len(s.Y), len(f.Labels))
		}
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("figure %s series %s point %d = %g", f.ID, s.Name, i, v)
			}
		}
	}
}

func TestFig5Structure(t *testing.T) {
	r := NewRunner(testScale())
	figs, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		checkFinite(t, f)
		if len(f.Series) != 2 {
			t.Errorf("figure %s series = %d, want 2", f.ID, len(f.Series))
		}
	}
	// PctGroups values are percentages.
	for _, s := range figs[1].Series {
		for _, v := range s.Y {
			if v > 100 {
				t.Errorf("PctGroups %g > 100", v)
			}
		}
	}
}

func TestFig7Structure(t *testing.T) {
	r := NewRunner(testScale())
	figs, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		checkFinite(t, f)
		if len(f.Labels) != 5 {
			t.Errorf("figure %s rates = %d, want 5", f.ID, len(f.Labels))
		}
	}
	// Error at the lowest rate must exceed error at the highest rate for
	// both methods (smooth degradation as the rate falls).
	for _, s := range figs[0].Series {
		if s.Y[0] <= s.Y[len(s.Y)-1] {
			t.Errorf("series %s: RelErr did not fall with rate: %v", s.Name, s.Y)
		}
	}
}

func TestFig8Structure(t *testing.T) {
	r := NewRunner(testScale())
	figs, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		checkFinite(t, f)
		if len(f.Series) != 3 {
			t.Errorf("figure %s series = %d, want 3 (SmGroup, BasicCongress, Uniform)", f.ID, len(f.Series))
		}
	}
}

func TestSumOutlierStructure(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.SumOutlier()
	if err != nil {
		t.Fatal(err)
	}
	checkFinite(t, fig)
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	if len(fig.Labels) != 2 {
		t.Fatalf("labels = %v", fig.Labels)
	}
}

func TestGammaAblationStructure(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.GammaAblation()
	if err != nil {
		t.Fatal(err)
	}
	checkFinite(t, fig)
	if fig.Labels[0] != "0 (uniform)" {
		t.Errorf("first label = %q", fig.Labels[0])
	}
}

func TestTauAblation(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.TauAblation()
	if err != nil {
		t.Fatal(err)
	}
	checkFinite(t, fig)
	// |S| must be non-decreasing in tau: a larger cutoff keeps more columns.
	s := fig.Series[1].Y
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Errorf("|S| decreased with tau: %v", s)
		}
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	r := NewRunner(testScale())
	figs, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) < 12 {
		t.Errorf("All produced %d figures, want >= 12", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestSalesRestrictedColumns(t *testing.T) {
	r := NewRunner(testScale())
	db, err := r.Sales()
	if err != nil {
		t.Fatal(err)
	}
	cols := salesRestrictedColumns(db)
	if len(cols) >= len(db.Columns()) {
		t.Errorf("restriction kept all %d columns", len(cols))
	}
	kept := map[string]bool{}
	for _, c := range cols {
		kept[c] = true
	}
	if !kept["product_line"] || !kept["sale_amount"] {
		t.Error("fact/kept-dimension columns missing from restriction")
	}
	if kept["cal_quarter"] || kept["channel_type"] {
		t.Error("excluded dimensions leaked into restriction")
	}
}

func TestSelectivityLabel(t *testing.T) {
	if got := selectivityLabel(0); got != "0.00%-0.02%" {
		t.Errorf("label 0 = %q", got)
	}
	if got := selectivityLabel(len(selectivityBins) - 1); got != "0.64%-1.28%" {
		t.Errorf("last label = %q", got)
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{
		ID: "x/1", XLabel: "k",
		Labels: []string{"1", "2"},
		Series: []Series{{Name: "a", Y: []float64{0.5, 2}}, {Name: "b", Y: []float64{1}}},
	}
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "k,a,b\n1,0.5,1\n2,2,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if f.FileName() != "figure_x_1.csv" {
		t.Errorf("FileName = %q", f.FileName())
	}
}

func TestBaselinesStructure(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	checkFinite(t, fig)
	if len(fig.Labels) != 5 {
		t.Fatalf("labels = %v", fig.Labels)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
}

func TestLevelsStructure(t *testing.T) {
	r := NewRunner(testScale())
	fig, err := r.Levels()
	if err != nil {
		t.Fatal(err)
	}
	checkFinite(t, fig)
	if len(fig.Labels) != 3 || len(fig.Series) != 3 {
		t.Fatalf("shape: %d labels, %d series", len(fig.Labels), len(fig.Series))
	}
	rows := fig.Series[2].Y
	// The three-level variant stores strictly more rows (the medium band).
	if rows[1] <= rows[0] {
		t.Errorf("three-level rows %g not above two-level %g", rows[1], rows[0])
	}
}
