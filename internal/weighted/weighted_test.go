package weighted

import (
	"math"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/randx"
	"dynsample/internal/uniform"
)

// regionsDB: column region with one huge region and several small ones, and
// a measure.
func regionsDB(n int) *engine.Database {
	region := engine.NewColumn("region", engine.String)
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", region, m)
	rng := randx.New(17)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.90:
			region.AppendString("big")
		case r < 0.96:
			region.AppendString("mid")
		default:
			region.AppendString("nw" + string(rune('0'+rng.Intn(4))))
		}
		m.AppendInt(int64(rng.Intn(50)) + 1)
		fact.EndRow()
	}
	return engine.MustNewDatabase("regions", fact)
}

// trainingWorkload focuses on the small north-west regions.
func trainingWorkload() []*engine.Query {
	var w []*engine.Query
	for i := 0; i < 4; i++ {
		w = append(w, &engine.Query{
			GroupBy: []string{"region"},
			Aggs:    []engine.Aggregate{{Kind: engine.Count}},
			Where: []engine.Predicate{engine.NewIn("region",
				engine.StringVal("nw0"), engine.StringVal("nw1"),
				engine.StringVal("nw2"), engine.StringVal("nw3"))},
		})
	}
	return w
}

func TestExpectedSampleSizeMatchesBudget(t *testing.T) {
	db := regionsDB(30000)
	p, err := New(Config{Rate: 0.02, Workload: trainingWorkload(), Seed: 1}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(p.SampleRows())
	want := 0.02 * 30000
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("sample rows %g, want ~%g", got, want)
	}
}

func TestWorkloadFootprintBeatsUniform(t *testing.T) {
	db := regionsDB(30000)
	workload := trainingWorkload()
	wp, err := New(Config{Rate: 0.01, Workload: workload, Seed: 2}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	up, err := uniform.New(uniform.Config{Rate: 0.01, Seed: 2}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on a query drawn from the workload distribution.
	q := workload[0]
	exact, _ := engine.ExecuteExact(db, q)
	var wErr, uErr float64
	const trials = 25
	for seed := int64(0); seed < trials; seed++ {
		wpS, err := New(Config{Rate: 0.01, Workload: workload, Seed: seed}).Preprocess(db)
		if err != nil {
			t.Fatal(err)
		}
		upS, err := uniform.New(uniform.Config{Rate: 0.01, Seed: seed}).Preprocess(db)
		if err != nil {
			t.Fatal(err)
		}
		wa, _ := wpS.Answer(q)
		ua, _ := upS.Answer(q)
		aw, _ := metrics.Compare(exact, wa.Result, 0)
		au, _ := metrics.Compare(exact, ua.Result, 0)
		wErr += aw.RelErr
		uErr += au.RelErr
	}
	if wErr >= uErr {
		t.Errorf("weighted RelErr %.4f not better than uniform %.4f on in-workload query", wErr/trials, uErr/trials)
	}
	_ = wp
	_ = up
}

func TestEstimatesUnbiasedOffWorkload(t *testing.T) {
	// Horvitz-Thompson weighting must stay unbiased even for queries the
	// workload never touches.
	db := regionsDB(20000)
	q := &engine.Query{GroupBy: []string{"region"}, Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "m"}}}
	exact, _ := engine.ExecuteExact(db, q)
	key := engine.EncodeKey([]engine.Value{engine.StringVal("big")})
	truth := exact.Group(key).Vals[0]
	var sum float64
	const trials = 50
	for seed := int64(0); seed < trials; seed++ {
		p, err := New(Config{Rate: 0.03, Workload: trainingWorkload(), Seed: seed}).Preprocess(db)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := ans.Result.Group(key); g != nil {
			sum += g.Vals[0]
		}
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.06 {
		t.Errorf("mean estimate %g vs truth %g", mean, truth)
	}
}

func TestValidation(t *testing.T) {
	db := regionsDB(100)
	if _, err := New(Config{Rate: 0, Workload: trainingWorkload()}).Preprocess(db); err == nil {
		t.Error("rate 0 not rejected")
	}
	if _, err := New(Config{Rate: 0.1}).Preprocess(db); err == nil {
		t.Error("empty workload not rejected")
	}
	bad := []*engine.Query{{GroupBy: []string{"zzz"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}}
	if _, err := New(Config{Rate: 0.1, Workload: bad}).Preprocess(db); err == nil {
		t.Error("invalid workload query not rejected")
	}
	empty := engine.MustNewDatabase("e", engine.NewTable("f", engine.NewColumn("region", engine.String)))
	if _, err := New(Config{Rate: 0.1, Workload: trainingWorkload()}).Preprocess(empty); err == nil {
		t.Error("empty database not rejected")
	}
}

func TestName(t *testing.T) {
	if New(Config{}).Name() != "weighted" {
		t.Error("Name wrong")
	}
	if New(Config{Label: "w2"}).Name() != "w2" {
		t.Error("labelled Name wrong")
	}
}
