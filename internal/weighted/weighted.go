// Package weighted implements workload-based weighted sampling in the style
// of [Chaudhuri, Das, Narasayya — SIGMOD 2001], the §2 related-work baseline
// that "uses workload information to construct biased samples to optimize
// performance on queries drawn from a known workload". The paper excludes it
// from its own comparisons only because its experiments assume no workload
// is available ("we do not present comparisons against other sampling-based
// AQP systems such as [10, 15] as these methods require the presence of
// workloads"); with the workload generator in this repository the method is
// directly usable.
//
// The scheme: replay the training workload over the base data and count, for
// every tuple, how many queries select it. Tuples are then drawn by Poisson
// sampling with inclusion probability proportional to (count + smoothing),
// capped at 1, with the proportionality constant solved so the expected
// sample size matches the budget. Stored weights are the inverse inclusion
// probabilities, so the Horvitz-Thompson estimate is unbiased for any query
// while variance concentrates on the workload's footprint.
package weighted

import (
	"fmt"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
)

// Config parameterises workload-weighted sampling.
type Config struct {
	// Rate is the expected sample size as a fraction of the database.
	Rate float64
	// Workload is the training query set whose footprint biases the sample.
	Workload []*engine.Query
	// Smoothing is added to every tuple's usage count so tuples outside the
	// workload footprint keep non-zero inclusion probability (zero means 0.1).
	Smoothing float64
	// ConfidenceLevel is the nominal CI coverage; zero means 0.95.
	ConfidenceLevel float64
	// Label overrides the strategy name.
	Label string
	// Seed drives the Poisson sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Smoothing == 0 {
		c.Smoothing = 0.1
	}
	return c
}

// Strategy is the workload-weighted sampling baseline.
type Strategy struct {
	cfg Config
}

// New returns the strategy.
func New(cfg Config) *Strategy { return &Strategy{cfg: cfg} }

// Name implements core.Strategy.
func (s *Strategy) Name() string {
	if s.cfg.Label != "" {
		return s.cfg.Label
	}
	return "weighted"
}

// Preprocess implements core.Strategy.
func (s *Strategy) Preprocess(db *engine.Database) (core.Prepared, error) {
	cfg := s.cfg.withDefaults()
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("weighted: rate %g out of (0,1]", cfg.Rate)
	}
	if db.NumRows() == 0 {
		return nil, fmt.Errorf("weighted: database %q is empty", db.Name)
	}
	if len(cfg.Workload) == 0 {
		return nil, fmt.Errorf("weighted: empty training workload")
	}
	n := db.NumRows()

	// Usage counts: how many workload queries select each tuple.
	usage := make([]float64, n)
	for qi, q := range cfg.Workload {
		if err := q.Validate(db); err != nil {
			return nil, fmt.Errorf("weighted: workload query %d: %w", qi, err)
		}
		type boundPred struct {
			acc engine.ColumnAccessor
			p   engine.Predicate
		}
		preds := make([]boundPred, len(q.Where))
		for i, p := range q.Where {
			acc, err := db.Accessor(p.Column())
			if err != nil {
				return nil, err
			}
			preds[i] = boundPred{acc, p}
		}
	rows:
		for row := 0; row < n; row++ {
			for _, bp := range preds {
				if !bp.p.Matches(bp.acc.Value(row)) {
					continue rows
				}
			}
			usage[row]++
		}
	}
	for i := range usage {
		usage[i] += cfg.Smoothing
	}

	// Poisson sampling with inclusion probability proportional to usage.
	rng := randx.New(cfg.Seed)
	rows, weights := sample.PoissonByWeight(rng, usage, cfg.Rate*float64(n))
	if len(rows) == 0 {
		// Degenerate budget: fall back to one uniform row.
		rows = []int{rng.Intn(n)}
		weights = []float64{float64(n)}
	}

	tbl := db.Flatten("weighted_sample", rows, nil, weights)
	return &prepared{table: tbl, level: cfg.ConfidenceLevel}, nil
}

type prepared struct {
	table *engine.Table
	level float64
}

// Answer implements core.Prepared.
func (p *prepared) Answer(q *engine.Query) (*core.Answer, error) {
	start := time.Now()
	plan := &core.RewritePlan{
		Query: q,
		Steps: []core.RewriteStep{core.StepFor(p.table, 1)},
	}
	res, rows, err := core.ExecutePlan(plan)
	if err != nil {
		return nil, err
	}
	return &core.Answer{
		Result:    res,
		Intervals: core.ConfidenceIntervals(res, p.level),
		RowsRead:  rows,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
	}, nil
}

// SampleRows implements core.Prepared.
func (p *prepared) SampleRows() int64 { return int64(p.table.NumRows()) }

// SampleBytes implements core.Prepared.
func (p *prepared) SampleBytes() int64 { return p.table.ApproxBytes() }
