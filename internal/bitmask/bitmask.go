// Package bitmask provides variable-length bit masks used to tag sample rows
// with the set of small group tables they belong to.
//
// The paper (§4.2.1) attaches to every sampled row "an extra bitmask field (of
// length |S|) indicating the set of small group tables to which that row was
// added", where S is the set of columns with small group tables. |S| routinely
// exceeds 64 (the SALES schema has 120–245 candidate columns), so a single
// machine word is not enough; masks here are backed by a []uint64.
package bitmask

import (
	"fmt"
	"strings"
)

const wordBits = 64

// Mask is a fixed-width bit mask. The zero value is an empty mask of width 0.
// Masks are value types; Clone before mutating a shared mask.
type Mask struct {
	words []uint64
	width int
}

// New returns an all-zero mask wide enough to hold width bits.
func New(width int) Mask {
	if width < 0 {
		panic(fmt.Sprintf("bitmask: negative width %d", width))
	}
	return Mask{words: make([]uint64, (width+wordBits-1)/wordBits), width: width}
}

// FromBits returns a mask of the given width with the listed bits set.
func FromBits(width int, bits ...int) Mask {
	m := New(width)
	for _, b := range bits {
		m.Set(b)
	}
	return m
}

// Width reports the number of addressable bits in the mask.
func (m Mask) Width() int { return m.width }

// Set sets bit i.
func (m Mask) Set(i int) {
	m.check(i)
	m.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (m Mask) Clear(i int) {
	m.check(i)
	m.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Bit reports whether bit i is set.
func (m Mask) Bit(i int) bool {
	m.check(i)
	return m.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (m Mask) check(i int) {
	if i < 0 || i >= m.width {
		panic(fmt.Sprintf("bitmask: bit %d out of range [0,%d)", i, m.width))
	}
}

// Clone returns an independent copy of the mask.
func (m Mask) Clone() Mask {
	w := make([]uint64, len(m.words))
	copy(w, m.words)
	return Mask{words: w, width: m.width}
}

// Or sets m to m | other, in place. The widths must match.
func (m Mask) Or(other Mask) {
	m.checkWidth(other)
	for i, w := range other.words {
		m.words[i] |= w
	}
}

// AndNot clears every bit of m that is set in other, in place.
func (m Mask) AndNot(other Mask) {
	m.checkWidth(other)
	for i, w := range other.words {
		m.words[i] &^= w
	}
}

// Intersects reports whether m and other share any set bit. This implements
// the rewritten-query filter "bitmask & mask = 0" from §4.2.2: a row passes
// the filter exactly when !row.Mask.Intersects(usedTables).
func (m Mask) Intersects(other Mask) bool {
	m.checkWidth(other)
	for i, w := range other.words {
		if m.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IsZero reports whether no bit is set.
func (m Mask) IsZero() bool {
	for _, w := range m.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (m Mask) OnesCount() int {
	n := 0
	for _, w := range m.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Equal reports whether the two masks have identical width and bits.
func (m Mask) Equal(other Mask) bool {
	if m.width != other.width {
		return false
	}
	for i := range m.words {
		if m.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Bits returns the indices of the set bits in ascending order.
func (m Mask) Bits() []int {
	var bits []int
	for i := 0; i < m.width; i++ {
		if m.Bit(i) {
			bits = append(bits, i)
		}
	}
	return bits
}

// Uint64 returns the low 64 bits of the mask. It is the decimal value printed
// in rewritten SQL when |S| <= 64, matching the paper's "bitmask & 5 = 0"
// example. It panics if any bit at position >= 64 is set.
func (m Mask) Uint64() uint64 {
	for i, w := range m.words {
		if i > 0 && w != 0 {
			panic("bitmask: mask wider than 64 bits has high bits set")
		}
	}
	if len(m.words) == 0 {
		return 0
	}
	return m.words[0]
}

// String renders the mask as its set-bit list, e.g. "{0,2}".
func (m Mask) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, b := range m.Bits() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	sb.WriteByte('}')
	return sb.String()
}

func (m Mask) checkWidth(other Mask) {
	if m.width != other.width {
		panic(fmt.Sprintf("bitmask: width mismatch %d vs %d", m.width, other.width))
	}
}
