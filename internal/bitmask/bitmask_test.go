package bitmask

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	for _, width := range []int{0, 1, 63, 64, 65, 128, 245} {
		m := New(width)
		if !m.IsZero() {
			t.Errorf("New(%d) not zero", width)
		}
		if m.Width() != width {
			t.Errorf("New(%d).Width() = %d", width, m.Width())
		}
		if m.OnesCount() != 0 {
			t.Errorf("New(%d).OnesCount() = %d", width, m.OnesCount())
		}
	}
}

func TestSetClearBit(t *testing.T) {
	m := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if m.Bit(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		m.Set(i)
		if !m.Bit(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if m.OnesCount() != 8 {
		t.Fatalf("OnesCount = %d, want 8", m.OnesCount())
	}
	m.Clear(64)
	if m.Bit(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if m.OnesCount() != 7 {
		t.Fatalf("OnesCount after clear = %d, want 7", m.OnesCount())
	}
}

func TestFromBitsAndBits(t *testing.T) {
	m := FromBits(200, 3, 77, 199)
	got := m.Bits()
	want := []int{3, 77, 199}
	if len(got) != len(want) {
		t.Fatalf("Bits() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits() = %v, want %v", got, want)
		}
	}
}

func TestIntersects(t *testing.T) {
	a := FromBits(100, 0, 70)
	b := FromBits(100, 70)
	c := FromBits(100, 1, 2)
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	if c.Intersects(New(100)) {
		t.Error("nothing intersects the zero mask")
	}
}

func TestOrAndNot(t *testing.T) {
	a := FromBits(130, 1, 65)
	b := FromBits(130, 2, 65, 129)
	a.Or(b)
	for _, i := range []int{1, 2, 65, 129} {
		if !a.Bit(i) {
			t.Errorf("bit %d missing after Or", i)
		}
	}
	a.AndNot(FromBits(130, 65, 129))
	if a.Bit(65) || a.Bit(129) {
		t.Error("AndNot did not clear bits")
	}
	if !a.Bit(1) || !a.Bit(2) {
		t.Error("AndNot cleared unrelated bits")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromBits(80, 5)
	b := a.Clone()
	b.Set(6)
	if a.Bit(6) {
		t.Error("mutating clone affected original")
	}
	if !b.Bit(5) {
		t.Error("clone lost original bit")
	}
}

func TestEqual(t *testing.T) {
	a := FromBits(70, 1, 69)
	b := FromBits(70, 1, 69)
	c := FromBits(70, 1)
	d := FromBits(71, 1, 69)
	if !a.Equal(b) {
		t.Error("identical masks not Equal")
	}
	if a.Equal(c) {
		t.Error("different bits Equal")
	}
	if a.Equal(d) {
		t.Error("different widths Equal")
	}
}

func TestUint64(t *testing.T) {
	// The paper's example: small group tables for columns A (index 0) and C
	// (index 2); the overall-sample filter uses mask 5 = 2^0 + 2^2.
	m := FromBits(3, 0, 2)
	if m.Uint64() != 5 {
		t.Fatalf("Uint64() = %d, want 5", m.Uint64())
	}
	wide := FromBits(100, 7)
	if wide.Uint64() != 128 {
		t.Fatalf("wide Uint64() = %d, want 128", wide.Uint64())
	}
}

func TestUint64PanicsOnHighBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for high bits")
		}
	}()
	FromBits(100, 64).Uint64()
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(10)
	for _, f := range []func(){
		func() { m.Set(10) },
		func() { m.Set(-1) },
		func() { m.Bit(10) },
		func() { m.Clear(12) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	New(10).Intersects(New(11))
}

func TestString(t *testing.T) {
	if s := FromBits(10, 0, 3).String(); s != "{0,3}" {
		t.Errorf("String() = %q", s)
	}
	if s := New(10).String(); s != "{}" {
		t.Errorf("zero String() = %q", s)
	}
}

// Property: Intersects is symmetric and agrees with a brute-force definition.
func TestIntersectsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seedA, seedB int64) bool {
		const width = 150
		a, b := New(width), New(width)
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		for i := 0; i < 20; i++ {
			a.Set(ra.Intn(width))
			b.Set(rb.Intn(width))
		}
		brute := false
		for i := 0; i < width; i++ {
			if a.Bit(i) && b.Bit(i) {
				brute = true
				break
			}
		}
		return a.Intersects(b) == brute && b.Intersects(a) == brute
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: OnesCount equals the length of Bits, and every listed bit is set.
func TestOnesCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		const width = 200
		m := New(width)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			m.Set(r.Intn(width))
		}
		bits := m.Bits()
		if len(bits) != m.OnesCount() {
			return false
		}
		for _, b := range bits {
			if !m.Bit(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
