// Package sample implements the random sampling primitives the AQP
// strategies are built from: Vitter's reservoir sampling (used by small group
// sampling's second pass to build the overall sample in one scan, §4.2.1),
// Bernoulli sampling (the model used in the paper's analysis, §4.4), and
// stratified allocation helpers used by the congressional baseline.
//
// Samplers are deliberately not safe for concurrent use: each one owns a
// seeded *rand.Rand, and reproducibility requires a single, fixed draw
// order. All sampling therefore happens on the single-threaded second scan
// of pre-processing; the parallel pre-processing paths (internal/parallel)
// fan out only the deterministic work around it.
package sample

import (
	"fmt"
	"math/rand"
)

// Reservoir maintains a uniform random sample of fixed capacity over a stream
// of ints (row indices), using Vitter's Algorithm R [Vitter 1985].
type Reservoir struct {
	capacity int
	seen     int64
	items    []int
	rng      *rand.Rand
}

// NewReservoir returns a reservoir holding at most capacity items.
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity < 0 {
		panic(fmt.Sprintf("sample: negative reservoir capacity %d", capacity))
	}
	return &Reservoir{capacity: capacity, items: make([]int, 0, capacity), rng: rng}
}

// Offer presents one stream element to the reservoir.
func (r *Reservoir) Offer(item int) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, item)
		return
	}
	// Replace a random slot with probability capacity/seen.
	if j := r.rng.Int63n(r.seen); j < int64(r.capacity) {
		r.items[j] = item
	}
}

// Seen returns the number of elements offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Items returns the current sample. The slice is owned by the reservoir.
func (r *Reservoir) Items() []int { return r.items }

// Bernoulli returns the indices in [0, n) that survive independent coin flips
// with probability p — the sampling model assumed by Theorem 4.1.
func Bernoulli(rng *rand.Rand, n int, p float64) []int {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sample: Bernoulli p=%g out of [0,1]", p))
	}
	var out []int
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			out = append(out, i)
		}
	}
	return out
}

// FixedSize draws exactly k of the n indices uniformly without replacement
// (k > n yields all n). The result is in increasing order.
func FixedSize(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Selection sampling (Knuth Algorithm S): one pass, sorted output.
	out := make([]int, 0, k)
	need := k
	for i := 0; i < n && need > 0; i++ {
		if rng.Float64()*float64(n-i) < float64(need) {
			out = append(out, i)
			need--
		}
	}
	return out
}

// Allocation distributes a total sample budget across strata.
type Allocation struct {
	// Rates[i] is the sampling rate for stratum i, in [0,1].
	Rates []float64
}

// ProportionalAllocation gives every stratum the same rate total/sum(sizes):
// the "house" of congressional sampling, equivalent to a uniform sample.
func ProportionalAllocation(sizes []int64, total float64) Allocation {
	var sum int64
	for _, s := range sizes {
		sum += s
	}
	rates := make([]float64, len(sizes))
	if sum == 0 {
		return Allocation{Rates: rates}
	}
	rate := total / float64(sum)
	for i := range rates {
		rates[i] = clampRate(rate)
	}
	return Allocation{Rates: rates}
}

// EqualAllocation divides the budget equally among non-empty strata: the
// "senate". Rates are capped at 1 and the slack is not redistributed, which
// matches the basic congress description.
func EqualAllocation(sizes []int64, total float64) Allocation {
	nonEmpty := 0
	for _, s := range sizes {
		if s > 0 {
			nonEmpty++
		}
	}
	rates := make([]float64, len(sizes))
	if nonEmpty == 0 {
		return Allocation{Rates: rates}
	}
	share := total / float64(nonEmpty)
	for i, s := range sizes {
		if s > 0 {
			rates[i] = clampRate(share / float64(s))
		}
	}
	return Allocation{Rates: rates}
}

// CongressAllocation takes, per stratum, the max of the house and senate
// rates and rescales so the expected sample size equals total. This is the
// basic congress hybrid allocation of [Acharya-Gibbons-Poosala 2000] that the
// paper benchmarks against (§5.3.2).
func CongressAllocation(sizes []int64, total float64) Allocation {
	house := ProportionalAllocation(sizes, total)
	senate := EqualAllocation(sizes, total)
	rates := make([]float64, len(sizes))
	expected := 0.0
	for i := range sizes {
		r := house.Rates[i]
		if senate.Rates[i] > r {
			r = senate.Rates[i]
		}
		rates[i] = r
		expected += r * float64(sizes[i])
	}
	if expected > 0 {
		scale := total / expected
		for i := range rates {
			rates[i] = clampRate(rates[i] * scale)
		}
	}
	return Allocation{Rates: rates}
}

// PoissonByWeight draws a Poisson (independent-inclusion) sample where
// tuple i is included with probability proportional to weights[i], capped at
// 1, with the proportionality constant solved by bisection so the expected
// sample size equals target. It returns the chosen indices (ascending) and
// their inverse inclusion probabilities — the Horvitz-Thompson weights that
// make any downstream aggregate unbiased.
func PoissonByWeight(rng *rand.Rand, weights []float64, target float64) (rows []int, invProb []float64) {
	if len(weights) == 0 || target <= 0 {
		return nil, nil
	}
	expected := func(c float64) float64 {
		var sum float64
		for _, w := range weights {
			p := c * w
			if p > 1 {
				p = 1
			}
			sum += p
		}
		return sum
	}
	lo, hi := 0.0, 1.0
	for expected(hi) < target && hi < 1e12 {
		hi *= 2
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if expected(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	c := hi
	for i, w := range weights {
		p := c * w
		if p > 1 {
			p = 1
		}
		if p > 0 && rng.Float64() < p {
			rows = append(rows, i)
			invProb = append(invProb, 1/p)
		}
	}
	return rows, invProb
}

func clampRate(r float64) float64 {
	if r > 1 {
		return 1
	}
	if r < 0 {
		return 0
	}
	return r
}
