package sample

import (
	"math"
	"testing"
	"testing/quick"

	"dynsample/internal/randx"
)

func TestReservoirUnderfill(t *testing.T) {
	r := NewReservoir(10, randx.New(1))
	for i := 0; i < 5; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 5 {
		t.Fatalf("items = %d, want 5", len(r.Items()))
	}
	if r.Seen() != 5 {
		t.Fatalf("seen = %d", r.Seen())
	}
	for i, v := range r.Items() {
		if v != i {
			t.Fatalf("underfilled reservoir should hold the stream prefix, got %v", r.Items())
		}
	}
}

func TestReservoirExactSize(t *testing.T) {
	r := NewReservoir(100, randx.New(2))
	for i := 0; i < 100000; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 100 {
		t.Fatalf("items = %d, want 100", len(r.Items()))
	}
	seen := make(map[int]bool)
	for _, v := range r.Items() {
		if v < 0 || v >= 100000 {
			t.Fatalf("out-of-range item %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate item %d", v)
		}
		seen[v] = true
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Every element of a 20-element stream should land in a 5-slot reservoir
	// with probability 1/4.
	const trials = 40000
	counts := make([]int, 20)
	rng := randx.New(3)
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir(5, rng)
		for i := 0; i < 20; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.25) > 0.015 {
			t.Errorf("element %d selected with frequency %.4f, want ~0.25", i, got)
		}
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	r := NewReservoir(0, randx.New(1))
	for i := 0; i < 10; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 0 {
		t.Fatal("zero-capacity reservoir holds items")
	}
}

func TestReservoirNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir(-1, randx.New(1))
}

func TestBernoulliRate(t *testing.T) {
	rng := randx.New(4)
	got := Bernoulli(rng, 100000, 0.1)
	rate := float64(len(got)) / 100000
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("empirical rate %g, want ~0.1", rate)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("Bernoulli output not strictly increasing")
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := randx.New(5)
	if got := Bernoulli(rng, 1000, 0); len(got) != 0 {
		t.Errorf("p=0 sampled %d", len(got))
	}
	if got := Bernoulli(rng, 1000, 1); len(got) != 1000 {
		t.Errorf("p=1 sampled %d", len(got))
	}
}

func TestBernoulliPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bernoulli(randx.New(1), 10, 1.5)
}

func TestFixedSize(t *testing.T) {
	rng := randx.New(6)
	got := FixedSize(rng, 1000, 100)
	if len(got) != 100 {
		t.Fatalf("size = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("FixedSize output not strictly increasing")
		}
	}
	if all := FixedSize(rng, 5, 10); len(all) != 5 {
		t.Errorf("k>n should return all, got %d", len(all))
	}
}

func TestFixedSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		n, k := 50, 13
		got := FixedSize(rng, n, k)
		if len(got) != k {
			return false
		}
		for i, v := range got {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && got[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFixedSizeUniformity(t *testing.T) {
	rng := randx.New(7)
	const trials = 30000
	counts := make([]int, 10)
	for tr := 0; tr < trials; tr++ {
		for _, v := range FixedSize(rng, 10, 3) {
			counts[v]++
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.3) > 0.015 {
			t.Errorf("index %d frequency %.4f, want ~0.3", i, got)
		}
	}
}

func TestProportionalAllocation(t *testing.T) {
	a := ProportionalAllocation([]int64{90, 10}, 10)
	if math.Abs(a.Rates[0]-0.1) > 1e-12 || math.Abs(a.Rates[1]-0.1) > 1e-12 {
		t.Errorf("rates = %v, want [0.1 0.1]", a.Rates)
	}
}

func TestEqualAllocation(t *testing.T) {
	a := EqualAllocation([]int64{90, 10}, 10)
	// Each stratum gets 5 expected rows: rates 5/90 and 5/10.
	if math.Abs(a.Rates[0]-5.0/90) > 1e-12 {
		t.Errorf("rate[0] = %g", a.Rates[0])
	}
	if math.Abs(a.Rates[1]-0.5) > 1e-12 {
		t.Errorf("rate[1] = %g", a.Rates[1])
	}
	// Empty strata get nothing and don't consume budget shares.
	b := EqualAllocation([]int64{0, 10}, 5)
	if b.Rates[0] != 0 {
		t.Errorf("empty stratum rate = %g", b.Rates[0])
	}
	if math.Abs(b.Rates[1]-0.5) > 1e-12 {
		t.Errorf("rate for lone stratum = %g", b.Rates[1])
	}
}

func TestEqualAllocationCapsAtOne(t *testing.T) {
	a := EqualAllocation([]int64{2, 1000}, 100)
	if a.Rates[0] != 1 {
		t.Errorf("tiny stratum rate = %g, want capped 1", a.Rates[0])
	}
}

func TestCongressAllocationExpectedSize(t *testing.T) {
	sizes := []int64{1000, 100, 10, 1}
	const total = 100
	a := CongressAllocation(sizes, total)
	expected := 0.0
	for i, s := range sizes {
		expected += a.Rates[i] * float64(s)
	}
	// Expected sample size should be close to the budget (clamping at rate 1
	// can leave it slightly under).
	if expected > total+1e-9 || expected < total*0.7 {
		t.Errorf("expected sample size %g for budget %d", expected, total)
	}
	// Small strata must get a larger rate than big strata.
	for i := 1; i < len(sizes); i++ {
		if a.Rates[i] < a.Rates[i-1]-1e-12 {
			t.Errorf("rates not increasing for smaller strata: %v", a.Rates)
		}
	}
}

func TestAllocationZeroSizes(t *testing.T) {
	a := ProportionalAllocation([]int64{0, 0}, 10)
	if a.Rates[0] != 0 || a.Rates[1] != 0 {
		t.Errorf("rates = %v", a.Rates)
	}
	b := CongressAllocation(nil, 10)
	if len(b.Rates) != 0 {
		t.Errorf("rates = %v", b.Rates)
	}
}
