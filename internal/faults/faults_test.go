package faults

import (
	"context"
	"testing"
	"time"
)

func TestFireNoHookIsNoop(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active() = true with no hooks")
	}
	Fire(context.Background(), PointScanShard, 0) // must not panic or block
}

func TestSetFireReset(t *testing.T) {
	t.Cleanup(Reset)
	var got []int
	Set(PointPlanStep, func(_ context.Context, i int) { got = append(got, i) })
	if !Active() {
		t.Fatal("Active() = false after Set")
	}
	Fire(context.Background(), PointPlanStep, 3)
	Fire(context.Background(), PointScanShard, 7) // different point: no hook
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("hook saw %v, want [3]", got)
	}
	Reset()
	Fire(context.Background(), PointPlanStep, 4)
	if len(got) != 1 {
		t.Fatalf("hook fired after Reset: %v", got)
	}
}

func TestSleepHookRespectsContext(t *testing.T) {
	t.Cleanup(Reset)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	SleepHook(10*time.Second)(ctx, 0)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("SleepHook ignored cancelled context (slept %v)", d)
	}
}

func TestBlockHookRelease(t *testing.T) {
	t.Cleanup(Reset)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		BlockHook(release)(context.Background(), 0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("BlockHook returned before release")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BlockHook did not return after release")
	}
}

func TestErrAndDataHooks(t *testing.T) {
	t.Cleanup(Reset)
	if err := FireErr(PointSnapshotWrite, 0); err != nil {
		t.Fatalf("FireErr with no hook = %v", err)
	}
	boom := context.DeadlineExceeded // any sentinel
	SetErr(PointSnapshotWrite, FailNth(2, boom))
	for i := 0; i < 2; i++ {
		if err := FireErr(PointSnapshotWrite, i); err != nil {
			t.Fatalf("FailNth fired early on call %d: %v", i, err)
		}
	}
	if err := FireErr(PointSnapshotWrite, 2); err != boom {
		t.Fatalf("FailNth(2) on 3rd call = %v, want %v", err, boom)
	}
	if err := FireErr(PointSnapshotSync, 0); err != nil {
		t.Fatalf("unhooked point returned %v", err)
	}

	b := []byte{0, 0, 0}
	FireData(PointSnapshotChunk, 0, b) // no hook: untouched
	SetData(PointSnapshotChunk, FlipBit(1, 1))
	c0, c1 := []byte{0, 0, 0}, []byte{0, 0, 0}
	FireData(PointSnapshotChunk, 0, c0)
	FireData(PointSnapshotChunk, 1, c1)
	if c0[1] != 0 {
		t.Fatalf("FlipBit(1, _) touched chunk 0: %v", c0)
	}
	if c1[1] != 1<<1 {
		t.Fatalf("FlipBit did not flip chunk 1 byte 1 bit 1: %v", c1)
	}
	Reset()
	if Active() {
		t.Fatal("Active() after Reset")
	}
}

func TestCutHooks(t *testing.T) {
	t.Cleanup(Reset)
	if n := FireCut(PointShardBody, 0, 100); n != 100 {
		t.Fatalf("FireCut with no hook = %d, want 100", n)
	}
	SetCut(PointShardBody, CutAfter(1, 7))
	if n := FireCut(PointShardBody, 0, 100); n != 100 {
		t.Fatalf("CutAfter(1) truncated write 0 to %d", n)
	}
	if n := FireCut(PointShardBody, 0, 100); n != 7 {
		t.Fatalf("CutAfter(1, 7) on write 1 = %d, want 7", n)
	}
	if n := FireCut(PointShardBody, 0, 100); n != 100 {
		t.Fatalf("CutAfter(1) truncated write 2 to %d", n)
	}
	// Out-of-range hook returns are clamped into [0, n].
	SetCut(PointShardBody, func(_, n int) int { return n + 50 })
	if n := FireCut(PointShardBody, 0, 10); n != 10 {
		t.Fatalf("over-long cut = %d, want clamp to 10", n)
	}
	SetCut(PointShardBody, func(_, _ int) int { return -3 })
	if n := FireCut(PointShardBody, 0, 10); n != 0 {
		t.Fatalf("negative cut = %d, want clamp to 0", n)
	}
}

func TestFailUntilNth(t *testing.T) {
	t.Cleanup(Reset)
	boom := context.DeadlineExceeded
	h := FailUntilNth(2, boom)
	for i := 0; i < 2; i++ {
		if err := h(i); err != boom {
			t.Fatalf("call %d = %v, want %v", i, err, boom)
		}
	}
	for i := 2; i < 5; i++ {
		if err := h(i); err != nil {
			t.Fatalf("call %d = %v, want success after n failures", i, err)
		}
	}
}

func TestPanicHook(t *testing.T) {
	t.Cleanup(Reset)
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	PanicHook("boom")(context.Background(), 0)
}
