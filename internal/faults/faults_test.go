package faults

import (
	"context"
	"testing"
	"time"
)

func TestFireNoHookIsNoop(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active() = true with no hooks")
	}
	Fire(context.Background(), PointScanShard, 0) // must not panic or block
}

func TestSetFireReset(t *testing.T) {
	t.Cleanup(Reset)
	var got []int
	Set(PointPlanStep, func(_ context.Context, i int) { got = append(got, i) })
	if !Active() {
		t.Fatal("Active() = false after Set")
	}
	Fire(context.Background(), PointPlanStep, 3)
	Fire(context.Background(), PointScanShard, 7) // different point: no hook
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("hook saw %v, want [3]", got)
	}
	Reset()
	Fire(context.Background(), PointPlanStep, 4)
	if len(got) != 1 {
		t.Fatalf("hook fired after Reset: %v", got)
	}
}

func TestSleepHookRespectsContext(t *testing.T) {
	t.Cleanup(Reset)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	SleepHook(10 * time.Second)(ctx, 0)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("SleepHook ignored cancelled context (slept %v)", d)
	}
}

func TestBlockHookRelease(t *testing.T) {
	t.Cleanup(Reset)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		BlockHook(release)(context.Background(), 0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("BlockHook returned before release")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BlockHook did not return after release")
	}
}

func TestPanicHook(t *testing.T) {
	t.Cleanup(Reset)
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	PanicHook("boom")(context.Background(), 0)
}
