// Package faults provides deterministic fault injection for robustness
// tests: slow shards, panicking rewrite steps, stuck workers. Production
// code calls Fire at a few fixed hook points; with no hooks registered the
// call is a single atomic load and returns immediately, so the hooks cost
// nothing outside tests.
//
// The registry is global (hook points are reached from deep inside the
// engine, far from any test-owned value), so tests that register hooks must
// not run in parallel with each other and must call Reset when done:
//
//	faults.Set(faults.PointScanShard, faults.SleepHook(time.Second))
//	t.Cleanup(faults.Reset)
package faults

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Point names a fault-injection hook site.
type Point string

const (
	// PointScanShard fires in the engine before each row-range shard of a
	// scan — on the scanning goroutine, so a blocking hook simulates a slow
	// or stuck shard worker.
	PointScanShard Point = "engine.scan-shard"
	// PointPlanStep fires in the middleware before each rewrite-plan step
	// (one branch of the rewritten UNION ALL).
	PointPlanStep Point = "core.plan-step"
	// PointHandler fires at the start of the HTTP /query handler, on the
	// request goroutine — a panicking hook exercises the server's
	// panic-recovery middleware.
	PointHandler Point = "server.handler"
)

// Hook is an injected fault. ctx is the execution context of the hook site
// (cancellable by the request deadline); i identifies the unit of work —
// the shard or step index, 0 where there is no natural index. Hooks may
// sleep, block, or panic; they must respect ctx to avoid leaking goroutines
// past a cancelled request.
type Hook func(ctx context.Context, i int)

var (
	active atomic.Bool
	mu     sync.Mutex
	hooks  map[Point]Hook
)

// Active reports whether any hook is registered. Hook sites use it (via
// Fire) as the fast path; it is safe to call from any goroutine.
func Active() bool { return active.Load() }

// Set registers the hook for a point, replacing any previous one.
func Set(p Point, h Hook) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[Point]Hook)
	}
	hooks[p] = h
	active.Store(true)
}

// Reset removes every registered hook, returning Fire to its no-op fast
// path. Call it from t.Cleanup in every test that uses Set.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	active.Store(false)
}

// Fire runs the hook registered for p, if any. With no hooks registered
// (the production state) it is a single atomic load.
func Fire(ctx context.Context, p Point, i int) {
	if !active.Load() {
		return
	}
	mu.Lock()
	h := hooks[p]
	mu.Unlock()
	if h != nil {
		h(ctx, i)
	}
}

// SleepHook returns a hook that sleeps for d or until ctx is cancelled,
// whichever comes first — a deterministic "slow shard".
func SleepHook(d time.Duration) Hook {
	return func(ctx context.Context, _ int) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}

// PanicHook returns a hook that panics with v.
func PanicHook(v any) Hook {
	return func(context.Context, int) { panic(v) }
}

// BlockHook returns a hook that blocks until release is closed or ctx is
// cancelled — a "stuck worker" that tests can unstick on demand.
func BlockHook(release <-chan struct{}) Hook {
	return func(ctx context.Context, _ int) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
}
