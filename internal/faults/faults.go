// Package faults provides deterministic fault injection for robustness
// tests: slow shards, panicking rewrite steps, stuck workers. Production
// code calls Fire at a few fixed hook points; with no hooks registered the
// call is a single atomic load and returns immediately, so the hooks cost
// nothing outside tests.
//
// The registry is global (hook points are reached from deep inside the
// engine, far from any test-owned value), so tests that register hooks must
// not run in parallel with each other and must call Reset when done:
//
//	faults.Set(faults.PointScanShard, faults.SleepHook(time.Second))
//	t.Cleanup(faults.Reset)
package faults

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Point names a fault-injection hook site.
type Point string

const (
	// PointScanShard fires in the engine before each row-range shard of a
	// scan — on the scanning goroutine, so a blocking hook simulates a slow
	// or stuck shard worker.
	PointScanShard Point = "engine.scan-shard"
	// PointPlanStep fires in the middleware before each rewrite-plan step
	// (one branch of the rewritten UNION ALL).
	PointPlanStep Point = "core.plan-step"
	// PointHandler fires at the start of the HTTP /query handler, on the
	// request goroutine — a panicking hook exercises the server's
	// panic-recovery middleware.
	PointHandler Point = "server.handler"

	// I/O fault points for the snapshot catalog. The write and sync points
	// take ErrHooks (a returned error is injected as the I/O failure); the
	// chunk point takes a DataHook that may corrupt the bytes about to hit
	// disk, simulating a flipped bit the checksums must catch.

	// PointSnapshotWrite fires before each chunk of a snapshot is written;
	// an injected error simulates a short write or full disk.
	PointSnapshotWrite Point = "catalog.snapshot-write"
	// PointSnapshotSync fires before an atomic file write fsyncs; an
	// injected error simulates a failed fsync (the write must not commit).
	PointSnapshotSync Point = "catalog.snapshot-sync"
	// PointSnapshotRead fires before each chunk of a snapshot is read; an
	// injected error simulates a failing disk on the read path.
	PointSnapshotRead Point = "catalog.snapshot-read"
	// PointSnapshotChunk fires with each encoded chunk frame (header +
	// checksum + data) just before it is written; a DataHook may flip bits
	// in place to plant on-disk corruption.
	PointSnapshotChunk Point = "catalog.snapshot-chunk"

	// I/O fault points for the ingestion write-ahead log, mirroring the
	// snapshot points: append and sync take ErrHooks, record takes a
	// DataHook that may corrupt the framed record before it hits disk.

	// PointWALAppend fires before each WAL record write; an injected error
	// simulates a short write or full disk mid-append.
	PointWALAppend Point = "ingest.wal-append"
	// PointWALSync fires before the per-append fsync; an injected error
	// simulates a failed fsync (the batch must not be acknowledged).
	PointWALSync Point = "ingest.wal-sync"
	// PointWALRecord fires with each framed record (length + checksum +
	// payload) just before it is written; a DataHook may flip bits to plant
	// corruption the replay checksums must catch.
	PointWALRecord Point = "ingest.wal-record"

	// Lifecycle fault points for the checkpointed WAL: each one sits in the
	// gap between two durability steps, so an injected error (followed by a
	// simulated restart) exercises exactly the interleaving a real crash
	// could produce there.

	// PointIngestApply fires after a batch is durable in the WAL but before
	// it is applied in memory; an injected error leaves the log and memory
	// divergent (the coordinator must poison itself until replay).
	PointIngestApply Point = "ingest.apply"
	// PointManifestWrite fires before the catalog rewrites its advisory
	// MANIFEST after a successful snapshot save; an injected error simulates
	// a crash between the save and the manifest update.
	PointManifestWrite Point = "catalog.manifest-write"
	// PointWALGC fires before each fully-checkpointed WAL segment is
	// deleted; an injected error aborts the garbage collection mid-way,
	// simulating a crash between the checkpoint and the segment deletions.
	PointWALGC Point = "ingest.wal-gc"

	// Network fault points for the scatter-gather cluster tier. The request
	// point takes a Hook (a sleeping hook makes a slow shard, a blocking one
	// a stuck shard); the transport point takes an ErrHook fired in the
	// coordinator's client before each attempt (a returned error is treated
	// as a connection failure, making a flaky or dead shard); the body point
	// takes a CutHook that may truncate a shard response mid-stream.

	// PointShardRequest fires in the shard server's query handler before the
	// query executes, on the request goroutine. i is the shard id.
	PointShardRequest Point = "cluster.shard-request"
	// PointShardTransport fires in the coordinator's shard client before
	// each HTTP attempt; a returned error is surfaced as a transport
	// failure without touching the network. i is the shard id.
	PointShardTransport Point = "cluster.shard-transport"
	// PointShardBody fires in the shard server with the length of the
	// response body about to be written; a CutHook returning m < n makes the
	// server write only the first m bytes — a byte-truncated response the
	// coordinator's decoder must reject. i is the shard id.
	PointShardBody Point = "cluster.shard-body"
)

// Hook is an injected fault. ctx is the execution context of the hook site
// (cancellable by the request deadline); i identifies the unit of work —
// the shard or step index, 0 where there is no natural index. Hooks may
// sleep, block, or panic; they must respect ctx to avoid leaking goroutines
// past a cancelled request.
type Hook func(ctx context.Context, i int)

// ErrHook is an injected I/O failure: a non-nil return value is surfaced by
// the hook site as if the underlying operation (write, fsync, read) had
// failed with that error. i is the chunk or attempt index.
type ErrHook func(i int) error

// DataHook may mutate b in place before it is written, planting corruption
// (e.g. a single flipped bit) that integrity checks must later detect. i is
// the chunk index.
type DataHook func(i int, b []byte)

// CutHook decides how many of the n bytes about to be written actually are:
// returning m in [0, n) truncates the write after m bytes, n (or more)
// leaves it intact. i is the shard or attempt index.
type CutHook func(i, n int) int

var (
	active    atomic.Bool
	mu        sync.Mutex
	hooks     map[Point]Hook
	errHooks  map[Point]ErrHook
	dataHooks map[Point]DataHook
	cutHooks  map[Point]CutHook
)

// Active reports whether any hook is registered. Hook sites use it (via
// Fire) as the fast path; it is safe to call from any goroutine.
func Active() bool { return active.Load() }

// Set registers the hook for a point, replacing any previous one.
func Set(p Point, h Hook) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[Point]Hook)
	}
	hooks[p] = h
	active.Store(true)
}

// SetErr registers the error hook for a point, replacing any previous one.
func SetErr(p Point, h ErrHook) {
	mu.Lock()
	defer mu.Unlock()
	if errHooks == nil {
		errHooks = make(map[Point]ErrHook)
	}
	errHooks[p] = h
	active.Store(true)
}

// SetData registers the data hook for a point, replacing any previous one.
func SetData(p Point, h DataHook) {
	mu.Lock()
	defer mu.Unlock()
	if dataHooks == nil {
		dataHooks = make(map[Point]DataHook)
	}
	dataHooks[p] = h
	active.Store(true)
}

// SetCut registers the cut hook for a point, replacing any previous one.
func SetCut(p Point, h CutHook) {
	mu.Lock()
	defer mu.Unlock()
	if cutHooks == nil {
		cutHooks = make(map[Point]CutHook)
	}
	cutHooks[p] = h
	active.Store(true)
}

// Reset removes every registered hook, returning Fire to its no-op fast
// path. Call it from t.Cleanup in every test that uses Set.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	errHooks = nil
	dataHooks = nil
	cutHooks = nil
	active.Store(false)
}

// Fire runs the hook registered for p, if any. With no hooks registered
// (the production state) it is a single atomic load.
func Fire(ctx context.Context, p Point, i int) {
	if !active.Load() {
		return
	}
	mu.Lock()
	h := hooks[p]
	mu.Unlock()
	if h != nil {
		h(ctx, i)
	}
}

// FireErr runs the error hook registered for p, if any, returning its
// injected error. With no hooks registered it is a single atomic load.
func FireErr(p Point, i int) error {
	if !active.Load() {
		return nil
	}
	mu.Lock()
	h := errHooks[p]
	mu.Unlock()
	if h != nil {
		return h(i)
	}
	return nil
}

// FireData runs the data hook registered for p, if any, over b. With no
// hooks registered it is a single atomic load.
func FireData(p Point, i int, b []byte) {
	if !active.Load() {
		return
	}
	mu.Lock()
	h := dataHooks[p]
	mu.Unlock()
	if h != nil {
		h(i, b)
	}
}

// FireCut runs the cut hook registered for p over a write of n bytes,
// returning how many bytes should actually be written (clamped to [0, n]).
// With no hooks registered it is a single atomic load and returns n.
func FireCut(p Point, i, n int) int {
	if !active.Load() {
		return n
	}
	mu.Lock()
	h := cutHooks[p]
	mu.Unlock()
	if h == nil {
		return n
	}
	m := h(i, n)
	if m < 0 {
		return 0
	}
	if m > n {
		return n
	}
	return m
}

// FailNth returns an error hook that succeeds until the n-th firing
// (0-based) and then returns err on that and every later call — a
// deterministic "disk fails partway through".
func FailNth(n int, err error) ErrHook {
	var calls atomic.Int64
	return func(int) error {
		if calls.Add(1)-1 >= int64(n) {
			return err
		}
		return nil
	}
}

// FailUntilNth returns an error hook that returns err for the first n
// firings (0-based) and succeeds from then on — a deterministic "flaky
// shard" whose first connections fail but whose retries succeed.
func FailUntilNth(n int, err error) ErrHook {
	var calls atomic.Int64
	return func(int) error {
		if calls.Add(1)-1 < int64(n) {
			return err
		}
		return nil
	}
}

// CutAfter returns a cut hook that truncates the n-th fired write (0-based)
// to keep bytes, leaving other writes intact.
func CutAfter(n, keep int) CutHook {
	var calls atomic.Int64
	return func(_, size int) int {
		if calls.Add(1)-1 != int64(n) {
			return size
		}
		return keep
	}
}

// FlipBit returns a data hook that flips one bit of the n-th fired chunk
// (0-based): bit (off*8+bit)%len(b*8) counted from byte off within that
// chunk, clamped into range. Later chunks pass through untouched.
func FlipBit(n int, off int) DataHook {
	var calls atomic.Int64
	return func(_ int, b []byte) {
		if calls.Add(1)-1 != int64(n) || len(b) == 0 {
			return
		}
		b[off%len(b)] ^= 1 << (off % 8)
	}
}

// SleepHook returns a hook that sleeps for d or until ctx is cancelled,
// whichever comes first — a deterministic "slow shard".
func SleepHook(d time.Duration) Hook {
	return func(ctx context.Context, _ int) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}

// PanicHook returns a hook that panics with v.
func PanicHook(v any) Hook {
	return func(context.Context, int) { panic(v) }
}

// BlockHook returns a hook that blocks until release is closed or ctx is
// cancelled — a "stuck worker" that tests can unstick on demand.
func BlockHook(release <-chan struct{}) Hook {
	return func(ctx context.Context, _ int) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
}
