// Package crashsim is a deterministic crash-point simulator for the ingest
// durability pipeline. A Harness drives the full lifecycle one process would
// — ingest → rebuild → checkpoint → segment GC → restart — against real
// on-disk state in a temp directory, while the scenarios (in the package's
// tests) inject crashes and I/O errors at the internal/faults hook points
// and at the interleavings between them: after the WAL append but before the
// in-memory apply, after the snapshot save but before the manifest write,
// after the checkpoint but before segment deletion, and partway through GC.
//
// Crash() abandons every in-memory handle, exactly as a kill -9 would leave
// things, and Start() re-runs the same recovery procedure cmd/aqpd uses
// (newest verifying snapshot, startup segment GC, idempotency seeding, WAL
// tail replay). The invariants every scenario checks:
//
//   - no acknowledged batch is lost (its rows count exactly once after
//     recovery),
//   - no batch is applied twice (never 2× the batch's row count),
//   - the restarted process converges to the same query answers as a
//     process that ran the same sequence and never crashed.
//
// The package is test support: it imports testing and is only consumed by
// its own test files.
package crashsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynsample/internal/catalog"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/ingest"
	"dynsample/internal/randx"
)

const (
	// baseRowsN is the regenerated base table size; "regenerated" the same
	// way every Start, like aqpd rebuilding its synthetic base from flags.
	baseRowsN = 3000
	// rowsPerBatch rows per ingested batch; every batch carries a unique
	// b-column tag so exact counts prove at-most/at-least-once application.
	rowsPerBatch = 30
	// segBytes keeps WAL segments tiny so scenarios span several and
	// checkpoint GC has real files to delete.
	segBytes = 2048
	// onlineSeed must be identical across restarts of the same WAL for
	// bit-identical replay.
	onlineSeed = 424242
)

var sgCfg = core.SmallGroupConfig{
	BaseRate: 0.05, SmallGroupFraction: 0.05, DistinctLimit: 100, Seed: 17,
}

// Harness owns one simulated process plus its durable state directories.
// Zero or one process is "running" at a time; Crash or Stop ends it and
// Start recovers a new one from disk.
type Harness struct {
	t      testing.TB
	walDir string
	catDir string

	sys   *core.System
	coord *ingest.Coordinator
	wal   *ingest.WAL
	cat   *catalog.Catalog

	// Acked batch numbers, in ingest order, across all incarnations.
	acked []int
}

// New creates a harness with fresh durable directories. Nothing runs until
// Start.
func New(t testing.TB) *Harness {
	t.Helper()
	h := &Harness{t: t, walDir: t.TempDir(), catDir: t.TempDir()}
	t.Cleanup(h.Crash)
	return h
}

// baseDB regenerates the deterministic skewed base: a is 80% "A0", 15%
// "A1", 5% tail; b is uniform over four base values (batch tags are
// disjoint from these); m is a measure.
func baseDB(t testing.TB) *engine.Database {
	t.Helper()
	a := engine.NewColumn("a", engine.String)
	b := engine.NewColumn("b", engine.String)
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", a, b, m)
	rng := randx.New(8484)
	for i := 0; i < baseRowsN; i++ {
		switch r := rng.Float64(); {
		case r < 0.80:
			a.AppendString("A0")
		case r < 0.95:
			a.AppendString("A1")
		default:
			a.AppendString("A" + string(rune('2'+rng.Intn(8))))
		}
		b.AppendString("B" + string(rune('0'+rng.Intn(4))))
		m.AppendInt(int64(i%31) + 1)
		fact.EndRow()
	}
	db, err := engine.NewDatabase("crashsim", fact)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// BatchTag is batch k's unique b-column value; exact-counting it measures
// how many times the batch has been applied.
func BatchTag(k int) string { return fmt.Sprintf("BK%04d", k) }

// BatchID is batch k's client idempotency id.
func BatchID(k int) string { return fmt.Sprintf("batch-%04d", k) }

// BatchRows builds batch k's rows deterministically: same k, same rows, in
// every incarnation and in every reference run.
func BatchRows(k int) [][]engine.Value {
	rng := randx.New(int64(9000 + k))
	rows := make([][]engine.Value, rowsPerBatch)
	for i := range rows {
		var a string
		switch r := rng.Float64(); {
		case r < 0.78:
			a = "A0"
		case r < 0.93:
			a = "A1"
		default:
			a = "A" + string(rune('2'+rng.Intn(8)))
		}
		rows[i] = []engine.Value{
			engine.StringVal(a),
			engine.StringVal(BatchTag(k)),
			engine.IntVal(int64(k*1000 + i)),
		}
	}
	return rows
}

// Start runs the recovery procedure cmd/aqpd uses and leaves the harness
// with a live coordinator: regenerate the base, restore the newest
// verifying catalog snapshot (checkpointed or legacy; preprocess from
// scratch when there is none), finish any interrupted segment GC below the
// checkpoint, seed the idempotency window, and replay the WAL tail. It
// fails the test on any recovery error and returns the replay stats so
// scenarios can assert recovery work was bounded.
func (h *Harness) Start() ingest.ReplayStats {
	h.t.Helper()
	if h.coord != nil {
		h.t.Fatal("crashsim: Start while a process is running (Crash first)")
	}
	sys := core.NewSystem(baseDB(h.t))
	cat, err := catalog.Open(h.catDir, catalog.Options{})
	if err != nil {
		h.t.Fatal(err)
	}
	var snap *ingest.Snapshot
	_, err = cat.LoadLatest(func(r io.Reader) error {
		s, derr := ingest.DecodeSnapshot(r)
		if derr != nil {
			return derr
		}
		if s.Checkpoint != nil && s.Checkpoint.BaseRows != uint64(baseRowsN) {
			return fmt.Errorf("checkpoint covers %d base rows, base has %d", s.Checkpoint.BaseRows, baseRowsN)
		}
		snap = s
		return nil
	})
	switch {
	case err == nil:
		if err := snap.Restore(sys, "smallgroup"); err != nil {
			h.t.Fatal(err)
		}
	case errors.Is(err, catalog.ErrNoSnapshot):
		if err := sys.AddStrategy(core.NewSmallGroup(sgCfg)); err != nil {
			h.t.Fatal(err)
		}
	default:
		h.t.Fatal(err)
	}
	w, err := ingest.OpenWALWith(h.walDir, ingest.WALOptions{SegmentBytes: segBytes})
	if err != nil {
		h.t.Fatal(err)
	}
	baseRows := 0
	if snap != nil && snap.Checkpoint != nil {
		baseRows = int(snap.Checkpoint.BaseRows)
		if _, err := w.RemoveSegmentsBelow(snap.Checkpoint.Seg); err != nil {
			h.t.Fatalf("crashsim: startup segment gc: %v", err)
		}
	}
	coord, err := ingest.New(sys, w, ingest.Config{
		Online: core.OnlineConfig{
			Seed: onlineSeed,
			// Snapshot-restored prepared state does not carry the
			// preprocessing config, so the fraction is supplied explicitly
			// (as cmd/aqpd does) and matches the fresh-preprocess value.
			SmallGroupFraction: sgCfg.SmallGroupFraction,
		},
		BaseRows: baseRows,
		// Scenarios drive recovery deterministically via ProbeNow; park the
		// background prober out of the way.
		ProbeBackoff: time.Hour,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	if snap != nil && len(snap.IDs) > 0 {
		coord.SeedIdempotency(snap.IDs)
	}
	rs, err := coord.ReplayWAL()
	if err != nil {
		h.t.Fatalf("crashsim: wal replay: %v", err)
	}
	h.sys, h.coord, h.wal, h.cat = sys, coord, w, cat
	return rs
}

// Crash ends the running process the way kill -9 would leave the disk: all
// in-memory state — samples, idempotency window, applied position — is
// gone; only the WAL and catalog directories remain. (File handles are
// closed so the next incarnation reopens cleanly; every acknowledged byte
// was already fsynced, so closing adds no durability a real crash would
// lack.) Safe to call when nothing runs.
func (h *Harness) Crash() {
	if h.coord != nil {
		h.coord.Close()
	}
	if h.wal != nil {
		h.wal.Close()
	}
	h.sys, h.coord, h.wal, h.cat = nil, nil, nil, nil
}

// Coordinator exposes the running coordinator for scenario-specific calls
// (ProbeNow, State, direct Ingest of duplicate ids).
func (h *Harness) Coordinator() *ingest.Coordinator { return h.coord }

// Catalog exposes the running incarnation's catalog handle.
func (h *Harness) Catalog() *catalog.Catalog { return h.cat }

// Ingest submits batch k and records it as acknowledged on success.
func (h *Harness) Ingest(k int) error {
	h.t.Helper()
	_, err := h.coord.Ingest(BatchID(k), BatchRows(k))
	if err == nil {
		h.acked = append(h.acked, k)
	}
	return err
}

// MustIngest ingests batches first..last inclusive, failing the test on any
// error.
func (h *Harness) MustIngest(first, last int) {
	h.t.Helper()
	for k := first; k <= last; k++ {
		if err := h.Ingest(k); err != nil {
			h.t.Fatalf("crashsim: ingest batch %d: %v", k, err)
		}
	}
}

// Rebuild runs the full rebuild handshake synchronously, as the server's
// background rebuild would: pin, preprocess outside the lock, publish.
func (h *Harness) Rebuild() {
	h.t.Helper()
	db, pinned, err := h.coord.BeginRebuild()
	if err != nil {
		h.t.Fatal(err)
	}
	p, err := core.NewSmallGroup(sgCfg).Preprocess(db)
	if err != nil {
		h.coord.AbortRebuild()
		h.t.Fatal(err)
	}
	if err := h.coord.CompleteRebuild(p, pinned); err != nil {
		h.t.Fatal(err)
	}
}

// Checkpoint persists the current state as a checkpointed snapshot and GCs
// covered WAL segments, returning the raw result for scenario assertions.
func (h *Harness) Checkpoint() (ingest.CheckpointResult, error) {
	return h.coord.SaveCheckpoint(h.cat)
}

// Applications exact-counts batch k's unique tag: 0 means the batch is
// absent, 1 means applied exactly once, 2 means double-applied.
func (h *Harness) Applications(k int) int {
	h.t.Helper()
	q := &engine.Query{
		GroupBy: []string{"b"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
	}
	res, _, err := h.sys.Exact(q)
	if err != nil {
		h.t.Fatal(err)
	}
	g := res.Group(engine.EncodeKey([]engine.Value{engine.StringVal(BatchTag(k))}))
	if g == nil {
		return 0
	}
	n := int(g.Vals[0])
	if n%rowsPerBatch != 0 {
		h.t.Fatalf("crashsim: batch %d has %d rows, not a multiple of %d", k, n, rowsPerBatch)
	}
	return n / rowsPerBatch
}

// CheckAcked asserts the core contract: every acknowledged batch is present
// exactly once — neither lost nor double-applied.
func (h *Harness) CheckAcked() {
	h.t.Helper()
	for _, k := range h.acked {
		if got := h.Applications(k); got != 1 {
			h.t.Errorf("crashsim: acked batch %d applied %d times, want exactly once", k, got)
		}
	}
}

// Answers snapshots the approximate grouped answer bit-exactly, for
// comparing a recovered process against an uncrashed reference.
func (h *Harness) Answers() string {
	h.t.Helper()
	q := &engine.Query{
		GroupBy: []string{"a", "b"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}},
	}
	ans, err := h.sys.Approx("smallgroup", q)
	if err != nil {
		h.t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, key := range ans.Result.Keys() {
		g := ans.Result.Group(key)
		fmt.Fprintf(&buf, "%v exact=%v", g.Key, g.Exact)
		for i, v := range g.Vals {
			iv := ans.Interval(key, i)
			fmt.Fprintf(&buf, " %016x[%016x,%016x]",
				math.Float64bits(v), math.Float64bits(iv.Lo), math.Float64bits(iv.Hi))
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

// WriteTornSegmentCreation plants a segment file holding only a partial
// header at index idx, the on-disk signature of a process that died between
// creating the rotation's next segment and making its magic durable.
func (h *Harness) WriteTornSegmentCreation(idx uint64) {
	h.t.Helper()
	path := filepath.Join(h.walDir, fmt.Sprintf("wal-%010d.seg", idx))
	if err := os.WriteFile(path, []byte("DSW"), 0o644); err != nil {
		h.t.Fatal(err)
	}
}

// WALSegments lists the WAL segment indexes on disk, ascending.
func (h *Harness) WALSegments() []uint64 {
	h.t.Helper()
	ents, err := os.ReadDir(h.walDir)
	if err != nil {
		h.t.Fatal(err)
	}
	var idx []uint64
	for _, e := range ents {
		var i uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%010d.seg", &i); err == nil {
			idx = append(idx, i)
		}
	}
	return idx
}
