package crashsim

import (
	"errors"
	"strings"
	"testing"

	"dynsample/internal/faults"
	"dynsample/internal/ingest"
)

// The scenarios share the global fault registry and real temp-dir state, so
// none of them may run in parallel; each resets the registry on the way out.

// reference runs the given uncrashed sequence on a fresh harness and
// returns its bit-exact answers. Same seeds + same batch numbers = the
// answers any crashed-and-recovered run must converge to.
func reference(t *testing.T, run func(h *Harness)) string {
	t.Helper()
	h := New(t)
	h.Start()
	run(h)
	return h.Answers()
}

// TestCrashBetweenWALAppendAndApply injects a failure at the hook between
// the WAL append (durable, fsynced) and the in-memory apply: the batch is
// on disk but not in memory, so the coordinator must poison itself with a
// diagnosable error, and a restart must apply the logged batch exactly once
// and remember its id for client retries.
func TestCrashBetweenWALAppendAndApply(t *testing.T) {
	t.Cleanup(faults.Reset)
	want := reference(t, func(h *Harness) { h.MustIngest(0, 3) })

	h := New(t)
	h.Start()
	h.MustIngest(0, 2)
	boom := errors.New("injected apply failure")
	faults.SetErr(faults.PointIngestApply, func(int) error { return boom })
	err := h.Ingest(3)
	if !errors.Is(err, boom) || !errors.Is(err, ingest.ErrUnavailable) {
		t.Fatalf("faulted ingest err = %v, want the injected failure wrapped in ErrUnavailable", err)
	}
	faults.Reset()

	// The poisoned refusal must name the stuck batch and say how to fix it.
	err = h.Ingest(4)
	var pe *ingest.PoisonedError
	if !errors.As(err, &pe) {
		t.Fatalf("ingest while poisoned: err = %v, want a PoisonedError", err)
	}
	if pe.Seq == 0 || pe.BatchID != BatchID(3) || !errors.Is(pe.Cause, boom) {
		t.Fatalf("PoisonedError = seq %d id %q cause %v, want the stuck batch's identity", pe.Seq, pe.BatchID, pe.Cause)
	}
	if msg := err.Error(); !strings.Contains(msg, "restart") {
		t.Fatalf("poisoned error gives no remediation hint: %q", msg)
	}

	h.Crash()
	rs := h.Start()
	if rs.Batches != 4 {
		t.Fatalf("replayed %d batches, want 4 (the divergent batch is durable)", rs.Batches)
	}
	h.CheckAcked()
	if got := h.Applications(3); got != 1 {
		t.Fatalf("divergent batch applied %d times after restart, want exactly once", got)
	}
	// The client's retry of the never-acknowledged batch dedupes instead of
	// double-applying.
	if err := h.Ingest(3); !errors.Is(err, ingest.ErrDuplicate) {
		t.Fatalf("retry of the divergent batch: err = %v, want ErrDuplicate", err)
	}
	if got := h.Answers(); got != want {
		t.Error("recovered answers differ from the uncrashed reference")
	}
}

// TestCrashBetweenSnapshotSaveAndManifestWrite kills the manifest update
// after the checkpoint snapshot committed: the manifest is advisory, so the
// restarted process must recover the new generation by scanning the
// directory, and the next successful checkpoint must heal the manifest.
func TestCrashBetweenSnapshotSaveAndManifestWrite(t *testing.T) {
	t.Cleanup(faults.Reset)
	want := reference(t, func(h *Harness) {
		h.MustIngest(0, 5)
		h.Rebuild()
	})

	h := New(t)
	h.Start()
	h.MustIngest(0, 5)
	h.Rebuild()
	boom := errors.New("injected manifest write failure")
	faults.SetErr(faults.PointManifestWrite, faults.FailNth(0, boom))
	res, err := h.Checkpoint()
	faults.Reset()
	if res.Generation != 1 || !errors.Is(err, boom) {
		t.Fatalf("Checkpoint = (gen %d, %v), want generation 1 plus the manifest failure", res.Generation, err)
	}

	h.Crash()
	rs := h.Start()
	if rs.Batches != 0 {
		t.Fatalf("replayed %d batches, want 0 (the checkpoint whose manifest update was lost covers them all)", rs.Batches)
	}
	h.CheckAcked()
	if got := h.Answers(); got != want {
		t.Error("recovered answers differ from the uncrashed reference")
	}
	// Self-heal: the next checkpoint writes a manifest naming both
	// generations.
	h.Rebuild()
	res, err = h.Checkpoint()
	if err != nil || res.Generation != 2 {
		t.Fatalf("second checkpoint = (gen %d, %v)", res.Generation, err)
	}
	m, err := h.Catalog().ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Current != 2 || len(m.Generations) != 2 {
		t.Fatalf("self-healed manifest = current %d with %d generations, want 2 and 2", m.Current, len(m.Generations))
	}
}

// TestCrashBetweenCheckpointAndSegmentGC commits the checkpoint but fails
// every segment deletion: the checkpoint itself must succeed (the snapshot
// is durable; leftover segments only cost disk), and the next startup's GC
// must finish the deletion.
func TestCrashBetweenCheckpointAndSegmentGC(t *testing.T) {
	t.Cleanup(faults.Reset)
	h := New(t)
	h.Start()
	h.MustIngest(0, 7)
	h.Rebuild()
	boom := errors.New("injected unlink failure")
	faults.SetErr(faults.PointWALGC, func(int) error { return boom })
	res, err := h.Checkpoint()
	faults.Reset()
	if err != nil {
		t.Fatalf("checkpoint failed outright on a GC fault: %v", err)
	}
	if res.Generation != 1 || res.Removed != 0 || !errors.Is(res.GCErr, boom) {
		t.Fatalf("Checkpoint = gen %d removed %d gcErr %v, want gen 1, nothing removed, the injected failure", res.Generation, res.Removed, res.GCErr)
	}
	before := h.WALSegments()
	if len(before) < 2 {
		t.Fatalf("only %d segments; nothing for the next startup to clean", len(before))
	}

	h.Crash()
	rs := h.Start() // Start fails the test if startup GC errors
	if rs.Batches != 0 {
		t.Fatalf("replayed %d batches, want 0 covered by the checkpoint", rs.Batches)
	}
	h.CheckAcked()
	if after := h.WALSegments(); len(after) >= len(before) {
		t.Fatalf("startup GC removed nothing: %v -> %v", before, after)
	}
}

// TestCrashMidSegmentGC dies after deleting only the first of several
// covered segments: deletion is oldest-first, so what's left is a
// contiguous suffix that must reopen cleanly, and the next startup finishes
// the job.
func TestCrashMidSegmentGC(t *testing.T) {
	t.Cleanup(faults.Reset)
	h := New(t)
	h.Start()
	h.MustIngest(0, 7)
	h.Rebuild()
	boom := errors.New("injected unlink failure")
	faults.SetErr(faults.PointWALGC, faults.FailNth(1, boom))
	res, err := h.Checkpoint()
	faults.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || !errors.Is(res.GCErr, boom) {
		t.Fatalf("Checkpoint = removed %d gcErr %v, want exactly 1 removed then the injected failure", res.Removed, res.GCErr)
	}
	before := h.WALSegments()

	h.Crash()
	rs := h.Start()
	if rs.Batches != 0 {
		t.Fatalf("replayed %d batches, want 0", rs.Batches)
	}
	h.CheckAcked()
	if after := h.WALSegments(); len(after) >= len(before) {
		t.Fatalf("startup GC removed nothing after the partial deletion: %v -> %v", before, after)
	}
}

// TestCrashMidSnapshotSave dies partway through writing the checkpoint
// snapshot itself: no generation commits, no WAL segment may be deleted,
// and the restarted process falls back to preprocess-from-scratch plus a
// full, idempotent replay.
func TestCrashMidSnapshotSave(t *testing.T) {
	t.Cleanup(faults.Reset)
	// The crashed run's rebuild dies with the process (its snapshot never
	// committed), so the comparable uncrashed run is ingest-only.
	want := reference(t, func(h *Harness) { h.MustIngest(0, 5) })

	h := New(t)
	h.Start()
	h.MustIngest(0, 5)
	h.Rebuild()
	segsBefore := h.WALSegments()
	boom := errors.New("injected short write")
	faults.SetErr(faults.PointSnapshotWrite, faults.FailNth(0, boom))
	res, err := h.Checkpoint()
	faults.Reset()
	if !errors.Is(err, boom) || res.Generation != 0 {
		t.Fatalf("Checkpoint = (gen %d, %v), want no generation and the injected failure", res.Generation, err)
	}
	if res.Removed != 0 {
		t.Fatalf("deleted %d segments though the snapshot never committed", res.Removed)
	}
	if got := h.WALSegments(); len(got) != len(segsBefore) {
		t.Fatalf("wal went from %v to %v despite the failed save", segsBefore, got)
	}

	h.Crash()
	rs := h.Start()
	if rs.Batches != 6 {
		t.Fatalf("replayed %d batches, want the full log (6)", rs.Batches)
	}
	h.CheckAcked()
	if got := h.Answers(); got != want {
		t.Error("recovered answers differ from the uncrashed reference")
	}
}

// TestDiskFaultDegradedMode is the ENOSPC scenario end to end: a persistent
// WAL fsync failure flips the coordinator into degraded read-only mode
// (queries keep serving, ingest refuses with ErrDegraded, nothing is
// acknowledged and lost), and once the fault clears a probe restores ingest
// without a restart. The eventual restart replays only real batches — the
// probe's no-op frame is skipped.
func TestDiskFaultDegradedMode(t *testing.T) {
	t.Cleanup(faults.Reset)
	want := reference(t, func(h *Harness) { h.MustIngest(0, 3) })

	h := New(t)
	h.Start()
	h.MustIngest(0, 2)
	boom := errors.New("injected enospc")
	faults.SetErr(faults.PointWALSync, func(int) error { return boom })
	if err := h.Ingest(3); !errors.Is(err, ingest.ErrDegraded) || !errors.Is(err, boom) {
		t.Fatalf("ingest on a failing disk: err = %v, want the injected failure wrapped in ErrDegraded", err)
	}
	if state, _ := h.Coordinator().State(); state != "degraded" {
		t.Fatalf("coordinator state = %q, want degraded", state)
	}
	// Read-only survival: queries answer while ingest is down.
	if h.Answers() == "" {
		t.Fatal("no query answers while degraded")
	}
	if err := h.Ingest(4); !errors.Is(err, ingest.ErrDegraded) {
		t.Fatalf("second ingest: err = %v, want a fast-fail ErrDegraded", err)
	}
	// Self-recovery once the disk heals, no restart involved.
	faults.Reset()
	if err := h.Coordinator().ProbeNow(); err != nil {
		t.Fatalf("probe after the fault cleared: %v", err)
	}
	if state, _ := h.Coordinator().State(); state != "ok" {
		t.Fatalf("coordinator state = %q after recovery, want ok", state)
	}
	if err := h.Ingest(3); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	h.CheckAcked()
	if got := h.Answers(); got != want {
		t.Error("answers after in-place recovery differ from the fault-free reference")
	}

	// Restart: the failed attempts left no torn frames and the probe's
	// no-op frame consumes no sequence number.
	h.Crash()
	rs := h.Start()
	if rs.Batches != 4 || rs.Torn {
		t.Fatalf("replayed %d batches (torn=%v), want 4 clean", rs.Batches, rs.Torn)
	}
	if rs.Noops < 1 {
		t.Fatalf("replay saw %d no-op frames, want the probe's", rs.Noops)
	}
	h.CheckAcked()
	if got := h.Answers(); got != want {
		t.Error("answers after restart differ from the fault-free reference")
	}
}

// TestBoundedRecovery is the checkpoint acceptance scenario: ingest N
// batches, rebuild + checkpoint, ingest M more, kill the process — the
// restart must replay only the M post-checkpoint batches, the
// pre-checkpoint segments must be gone from disk, and the answers must
// match a process that never crashed.
func TestBoundedRecovery(t *testing.T) {
	t.Cleanup(faults.Reset)
	const N, M = 6, 3
	want := reference(t, func(h *Harness) {
		h.MustIngest(0, N-1)
		h.Rebuild()
		h.MustIngest(N, N+M-1)
	})

	h := New(t)
	h.Start()
	h.MustIngest(0, N-1)
	h.Rebuild()
	res, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.Removed < 1 || res.GCErr != nil {
		t.Fatalf("Checkpoint = %+v, want generation 1 with at least one segment deleted", res)
	}
	segsAfterCk := h.WALSegments()
	h.MustIngest(N, N+M-1)

	h.Crash()
	rs := h.Start()
	if rs.Batches != M {
		t.Fatalf("replayed %d batches, want exactly the %d past the checkpoint", rs.Batches, M)
	}
	h.CheckAcked()
	// Bounded disk: recovery reads only what survived the checkpoint GC
	// (plus whatever the tail appended), never the deleted prefix.
	if min := segsAfterCk[0]; h.WALSegments()[0] < min {
		t.Fatalf("a pre-checkpoint segment reappeared below %d: %v", min, h.WALSegments())
	}
	if got := h.Answers(); got != want {
		t.Error("recovered answers differ from the uncrashed reference")
	}
	// Idempotency spans the checkpoint boundary after restart.
	if err := h.Ingest(1); !errors.Is(err, ingest.ErrDuplicate) {
		t.Fatalf("retry of a checkpoint-covered batch: err = %v, want ErrDuplicate", err)
	}
	if err := h.Ingest(N+1); !errors.Is(err, ingest.ErrDuplicate) {
		t.Fatalf("retry of a replayed batch: err = %v, want ErrDuplicate", err)
	}
}

// TestTornSegmentCreation crashes between creating the rotation's next
// segment file and making its header durable, then restarts: the husk must
// be repaired in place and ingest must continue into it.
func TestTornSegmentCreation(t *testing.T) {
	t.Cleanup(faults.Reset)
	h := New(t)
	h.Start()
	h.MustIngest(0, 2)
	h.Crash()

	// Simulate the torn creation: the next segment exists with a partial
	// header. (The WAL names segments contiguously, so the husk index is
	// one past the current top.)
	segs := h.WALSegments()
	top := segs[len(segs)-1]
	h.WriteTornSegmentCreation(top + 1)

	rs := h.Start()
	if rs.Batches != 3 {
		t.Fatalf("replayed %d batches, want 3", rs.Batches)
	}
	h.MustIngest(3, 3)
	h.CheckAcked()
}
