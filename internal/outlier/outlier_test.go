package outlier

import (
	"math"
	"testing"
	"testing/quick"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// heavyTailDB builds a table whose measure column is mostly small with a few
// huge outliers — the skewed-aggregate scenario outlier indexing targets.
func heavyTailDB(n int) *engine.Database {
	g := engine.NewColumn("g", engine.Int)
	rev := engine.NewColumn("rev", engine.Float)
	fact := engine.NewTable("fact", g, rev)
	rng := randx.New(11)
	for i := 0; i < n; i++ {
		g.AppendInt(int64(rng.Intn(5)))
		v := rng.Float64() * 10
		if rng.Float64() < 0.005 {
			v = 10000 + rng.Float64()*50000 // heavy tail
		}
		rev.AppendFloat(v)
		fact.EndRow()
	}
	return engine.MustNewDatabase("heavy", fact)
}

func varianceWithout(values []float64, removed map[int]bool) float64 {
	var sum, sumSq float64
	n := 0
	for i, v := range values {
		if removed[i] {
			continue
		}
		sum += v
		sumSq += v * v
		n++
	}
	if n == 0 {
		return 0
	}
	m := sum / float64(n)
	return sumSq/float64(n) - m*m
}

func TestSelectOutliersOptimalBruteForce(t *testing.T) {
	// Compare against exhaustive search over all k-subsets on tiny inputs.
	values := []float64{1, 2, 100, 3, 4, -50, 5}
	const k = 2
	got := SelectOutliers(values, k)
	if len(got) != k {
		t.Fatalf("selected %d outliers, want %d", len(got), k)
	}
	gotVar := varianceWithout(values, map[int]bool{got[0]: true, got[1]: true})
	best := math.Inf(1)
	for i := 0; i < len(values); i++ {
		for j := i + 1; j < len(values); j++ {
			v := varianceWithout(values, map[int]bool{i: true, j: true})
			if v < best {
				best = v
			}
		}
	}
	if gotVar > best+1e-9 {
		t.Errorf("selected outliers give variance %g, brute force best %g", gotVar, best)
	}
	// The obvious outliers are 100 and -50 (indices 2 and 5).
	if !(got[0] == 2 && got[1] == 5) {
		t.Errorf("outliers = %v, want [2 5]", got)
	}
}

func TestSelectOutliersWindowOptimalProperty(t *testing.T) {
	// For random inputs, the sliding-window choice must beat removing the k
	// largest values or the k smallest values (both are candidate windows).
	f := func(seed int64) bool {
		rng := randx.New(seed)
		values := make([]float64, 30)
		for i := range values {
			values[i] = rng.NormFloat64() * 100
		}
		const k = 4
		sel := SelectOutliers(values, k)
		removed := make(map[int]bool, k)
		for _, ix := range sel {
			removed[ix] = true
		}
		got := varianceWithout(values, removed)

		type pair struct {
			ix int
			v  float64
		}
		order := make([]pair, len(values))
		for i, v := range values {
			order[i] = pair{i, v}
		}
		for _, mode := range []string{"largest", "smallest"} {
			alt := make(map[int]bool, k)
			switch mode {
			case "largest":
				for i := 0; i < k; i++ {
					best := -1
					for j, p := range order {
						if alt[p.ix] {
							continue
						}
						if best == -1 || p.v > order[best].v {
							best = j
						}
					}
					alt[order[best].ix] = true
				}
			case "smallest":
				for i := 0; i < k; i++ {
					best := -1
					for j, p := range order {
						if alt[p.ix] {
							continue
						}
						if best == -1 || p.v < order[best].v {
							best = j
						}
					}
					alt[order[best].ix] = true
				}
			}
			if got > varianceWithout(values, alt)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelectOutliersEdges(t *testing.T) {
	if got := SelectOutliers([]float64{1, 2, 3}, 0); got != nil {
		t.Errorf("k=0 gave %v", got)
	}
	if got := SelectOutliers([]float64{1, 2, 3}, 5); len(got) != 3 {
		t.Errorf("k>n gave %v", got)
	}
	if got := SelectOutliers(nil, 2); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
}

func TestOutlierBeatsUniformOnSkewedSum(t *testing.T) {
	// §5.3.3's headline: for SUM over a skewed measure, outlier indexing is
	// far more accurate than scaling a plain uniform sample.
	db := heavyTailDB(20000)
	q := &engine.Query{Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "rev"}}}
	exact, _ := engine.ExecuteExact(db, q)
	truth := exact.Group(engine.EncodeKey(nil)).Vals[0]

	var outErr, uniErr float64
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		p, err := New(Config{Rate: 0.02, Measure: "rev", Seed: seed}).Preprocess(db)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		outErr += math.Abs(ans.Result.Group(engine.EncodeKey(nil)).Vals[0]-truth) / truth

		// A uniform sample of the same size, for comparison.
		rows := make([]int, 0)
		rng := randx.New(seed + 1000)
		for i := 0; i < db.NumRows(); i++ {
			if rng.Float64() < 0.02 {
				rows = append(rows, i)
			}
		}
		flat := db.Flatten("u", rows, nil, nil)
		res, err := engine.Execute(flat, q, engine.ExecOptions{Scale: float64(db.NumRows()) / float64(len(rows))})
		if err != nil {
			t.Fatal(err)
		}
		uniErr += math.Abs(res.Group(engine.EncodeKey(nil)).Vals[0]-truth) / truth
	}
	outErr /= trials
	uniErr /= trials
	if outErr >= uniErr {
		t.Errorf("outlier indexing rel err %.4f not better than uniform %.4f", outErr, uniErr)
	}
	if outErr > 0.05 {
		t.Errorf("outlier indexing rel err %.4f unexpectedly large", outErr)
	}
}

func TestOutlierCountsUnbiased(t *testing.T) {
	db := heavyTailDB(10000)
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	key := engine.EncodeKey([]engine.Value{engine.IntVal(2)})
	truth := exact.Group(key).Vals[0]
	var sum float64
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		p, err := New(Config{Rate: 0.05, Measure: "rev", Seed: seed}).Preprocess(db)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := ans.Result.Group(key); g != nil {
			sum += g.Vals[0]
		}
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.06 {
		t.Errorf("mean count estimate %g vs truth %g", mean, truth)
	}
}

func TestOverallBuilderPlugsIntoSmallGroup(t *testing.T) {
	db := heavyTailDB(10000)
	sg := core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate:      0.02,
		DistinctLimit: 100,
		Seed:          7,
		Overall:       OverallBuilder{Measure: "rev"},
	})
	p, err := sg.Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "rev"}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	// The enhanced overall sample should estimate skewed sums well.
	for _, k := range exact.Keys() {
		eg, ag := exact.Group(k), ans.Result.Group(k)
		if ag == nil {
			t.Fatalf("missing group %v", eg.Key)
		}
		rel := math.Abs(eg.Vals[0]-ag.Vals[0]) / eg.Vals[0]
		if rel > 0.5 {
			t.Errorf("group %v rel err %.3f", eg.Key, rel)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	db := heavyTailDB(100)
	if _, err := New(Config{Rate: 0, Measure: "rev"}).Preprocess(db); err == nil {
		t.Error("rate 0 not rejected")
	}
	if _, err := New(Config{Rate: 0.1, Measure: "nope"}).Preprocess(db); err == nil {
		t.Error("unknown measure not rejected")
	}
}

func TestName(t *testing.T) {
	if got := New(Config{}).Name(); got != "outlier" {
		t.Errorf("Name = %q", got)
	}
	if got := New(Config{Label: "oi"}).Name(); got != "oi" {
		t.Errorf("labelled Name = %q", got)
	}
}
