// Package outlier implements outlier indexing [Chaudhuri, Das, Datar,
// Motwani, Narasayya — ICDE 2001], the baseline of §5.3.3 for SUM queries
// over skewed measure attributes, and the OverallBuilder that plugs it into
// small group sampling ("small group sampling enhanced with outlier
// indexing", §4.2.1).
//
// The technique splits the database into an outlier set — the rows whose
// removal minimises the variance of the remaining measure values — stored
// completely (weight 1), plus a uniform sample of the remainder scaled by its
// inverse sampling rate. The optimal outlier set for variance minimisation is
// the complement of a contiguous window in the sorted order of the measure
// values, found here by sliding that window with prefix sums.
package outlier

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
)

// Config parameterises outlier indexing.
type Config struct {
	// Rate is the total sample budget as a fraction of the database,
	// covering both the outlier set and the remainder sample.
	Rate float64
	// Measure is the aggregate column the outlier index is built for.
	Measure string
	// OutlierShare is the fraction of the budget devoted to outlier rows
	// (zero means 0.5).
	OutlierShare float64
	// ConfidenceLevel is the nominal CI coverage; zero means 0.95.
	ConfidenceLevel float64
	// Label overrides the strategy name.
	Label string
	// Seed drives the remainder sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.OutlierShare == 0 {
		c.OutlierShare = 0.5
	}
	return c
}

// Strategy is the outlier indexing baseline.
type Strategy struct {
	cfg Config
}

// New returns the strategy.
func New(cfg Config) *Strategy { return &Strategy{cfg: cfg} }

// Name implements core.Strategy.
func (s *Strategy) Name() string {
	if s.cfg.Label != "" {
		return s.cfg.Label
	}
	return "outlier"
}

// SelectOutliers returns the indices (into values) of the k elements whose
// removal minimises the variance of the remaining values. The optimal set is
// the complement of a length-(n−k) window in sorted order; the window is
// found with prefix sums in O(n log n).
func SelectOutliers(values []float64, k int) []int {
	n := len(values)
	if k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })

	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, ix := range order {
		v := values[ix]
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}

	w := n - k // window length
	bestStart, bestVar := 0, math.Inf(1)
	for s := 0; s+w <= n; s++ {
		sum := prefix[s+w] - prefix[s]
		sumSq := prefixSq[s+w] - prefixSq[s]
		variance := sumSq/float64(w) - (sum/float64(w))*(sum/float64(w))
		if variance < bestVar {
			bestVar = variance
			bestStart = s
		}
	}
	out := make([]int, 0, k)
	out = append(out, order[:bestStart]...)
	out = append(out, order[bestStart+w:]...)
	sort.Ints(out)
	return out
}

// build selects outlier rows and a remainder sample over db, returning row
// indices with per-row weights. Shared by the standalone strategy and the
// OverallBuilder.
func build(db *engine.Database, cfg Config, target int, seed int64) ([]int, []float64, error) {
	acc, err := db.Accessor(cfg.Measure)
	if err != nil {
		return nil, nil, fmt.Errorf("outlier: %w", err)
	}
	n := db.NumRows()
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = acc.Float(i)
	}
	k := int(cfg.OutlierShare * float64(target))
	if k > target {
		k = target
	}
	outliers := SelectOutliers(values, k)
	isOutlier := make([]bool, n)
	for _, ix := range outliers {
		isOutlier[ix] = true
	}
	remainder := make([]int, 0, n-len(outliers))
	for i := 0; i < n; i++ {
		if !isOutlier[i] {
			remainder = append(remainder, i)
		}
	}
	sampleSize := target - len(outliers)
	if sampleSize < 1 && len(remainder) > 0 {
		sampleSize = 1
	}
	rng := randx.New(seed)
	var rows []int
	var weights []float64
	for _, ix := range outliers {
		rows = append(rows, ix)
		weights = append(weights, 1)
	}
	if len(remainder) > 0 && sampleSize > 0 {
		picked := sample.FixedSize(rng, len(remainder), sampleSize)
		w := float64(len(remainder)) / float64(len(picked))
		for _, p := range picked {
			rows = append(rows, remainder[p])
			weights = append(weights, w)
		}
	}
	// Restore base-row order for scan locality.
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rows[order[a]] < rows[order[b]] })
	sr := make([]int, len(rows))
	sw := make([]float64, len(rows))
	for i, o := range order {
		sr[i] = rows[o]
		sw[i] = weights[o]
	}
	return sr, sw, nil
}

// Preprocess implements core.Strategy.
func (s *Strategy) Preprocess(db *engine.Database) (core.Prepared, error) {
	cfg := s.cfg.withDefaults()
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("outlier: rate %g out of (0,1]", cfg.Rate)
	}
	if db.NumRows() == 0 {
		return nil, fmt.Errorf("outlier: database %q is empty", db.Name)
	}
	target := int(cfg.Rate * float64(db.NumRows()))
	if target < 1 {
		target = 1
	}
	rows, weights, err := build(db, cfg, target, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tbl := db.Flatten("outlier_sample", rows, nil, weights)
	return &prepared{table: tbl, level: cfg.ConfidenceLevel}, nil
}

type prepared struct {
	table *engine.Table
	level float64
}

// Answer implements core.Prepared. Outlier rows carry weight 1 and remainder
// rows their inverse sampling rate, so a single weighted execution yields the
// stratified estimate (exact outlier contribution + scaled sample estimate)
// for both COUNT and SUM.
func (p *prepared) Answer(q *engine.Query) (*core.Answer, error) {
	start := time.Now()
	plan := &core.RewritePlan{
		Query: q,
		Steps: []core.RewriteStep{core.StepFor(p.table, 1)},
	}
	res, rows, err := core.ExecutePlan(plan)
	if err != nil {
		return nil, err
	}
	return &core.Answer{
		Result:    res,
		Intervals: core.ConfidenceIntervals(res, p.level),
		RowsRead:  rows,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
	}, nil
}

// SampleRows implements core.Prepared.
func (p *prepared) SampleRows() int64 { return int64(p.table.NumRows()) }

// SampleBytes implements core.Prepared.
func (p *prepared) SampleBytes() int64 { return p.table.ApproxBytes() }

// OverallBuilder adapts outlier indexing as the overall sample of small
// group sampling (§4.2.1's "small group sampling enhanced with outlier
// indexing").
type OverallBuilder struct {
	// Measure is the aggregate column to build the index for.
	Measure string
	// OutlierShare is the budget fraction for outlier rows (zero means 0.5).
	OutlierShare float64
}

// BuildOverall implements core.OverallBuilder.
func (b OverallBuilder) BuildOverall(db *engine.Database, target int, seed int64) ([]int, []float64, error) {
	cfg := Config{Measure: b.Measure, OutlierShare: b.OutlierShare}.withDefaults()
	return build(db, cfg, target, seed)
}
