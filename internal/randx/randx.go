// Package randx provides the deterministic random-variate generators used by
// the data and workload generators and by the samplers.
//
// Everything is seeded explicitly so experiments are reproducible run to run.
// The returned generators wrap *rand.Rand and are not safe for concurrent
// use — code that fans out across workers must either confine a generator to
// one goroutine or derive one generator per worker from distinct seeds.
// The truncated Zipf distribution here follows the paper's analytical model
// (§4.4): "the frequency of the i-th most common value for an attribute is
// proportional to i^-z ... except that the frequency is 0 if i > c". Unlike
// math/rand.Zipf it supports any z >= 0 (including z <= 1) and a hard cutoff c.
package randx

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// New returns a deterministic *rand.Rand for the given seed.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Zipf draws values in [0, c) with P(i) proportional to (i+1)^-z.
// The zero value is not usable; construct with NewZipf.
type Zipf struct {
	cdf   []float64 // cdf[i] = P(value <= i)
	probs []float64
}

// NewZipf returns a truncated Zipf distribution over c values with skew z.
// z = 0 is the uniform distribution. It panics if c < 1 or z < 0.
func NewZipf(z float64, c int) *Zipf {
	if c < 1 {
		panic(fmt.Sprintf("randx: Zipf needs c >= 1, got %d", c))
	}
	if z < 0 {
		panic(fmt.Sprintf("randx: Zipf needs z >= 0, got %g", z))
	}
	probs := make([]float64, c)
	total := 0.0
	for i := 0; i < c; i++ {
		probs[i] = math.Pow(float64(i+1), -z)
		total += probs[i]
	}
	cdf := make([]float64, c)
	cum := 0.0
	for i := 0; i < c; i++ {
		probs[i] /= total
		cum += probs[i]
		cdf[i] = cum
	}
	cdf[c-1] = 1.0 // guard against float drift
	return &Zipf{cdf: cdf, probs: probs}
}

// N returns the number of distinct values.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns P(value = i).
func (z *Zipf) Prob(i int) float64 { return z.probs[i] }

// Probs returns the full probability vector, most common value first.
// The returned slice is shared; callers must not modify it.
func (z *Zipf) Probs() []float64 { return z.probs }

// Draw samples a value index in [0, N()) using rng.
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Categorical draws from an arbitrary finite distribution.
type Categorical struct {
	cdf []float64
}

// NewCategorical builds a categorical distribution from unnormalised,
// non-negative weights. It panics if weights is empty or sums to zero.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("randx: empty categorical")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("randx: invalid weight %g", w))
		}
		total += w
	}
	if total == 0 {
		panic("randx: zero-mass categorical")
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for i, w := range weights {
		cum += w / total
		cdf[i] = cum
	}
	cdf[len(cdf)-1] = 1.0
	return &Categorical{cdf: cdf}
}

// Draw samples an index using rng.
func (c *Categorical) Draw(rng *rand.Rand) int {
	return sort.SearchFloat64s(c.cdf, rng.Float64())
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.cdf) }

// Perm fills a deterministic pseudo-random permutation of [0,n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n) using Floyd's algorithm. It panics if k > n.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("randx: sample %d from %d", k, n))
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// LogNormal draws a log-normal variate with the given parameters of the
// underlying normal. Used for skewed measure columns (e.g. revenue).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
