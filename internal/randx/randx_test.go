package randx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestZipfProbsSumToOne(t *testing.T) {
	for _, tc := range []struct {
		z float64
		c int
	}{{0, 1}, {0, 10}, {1, 50}, {1.8, 50}, {2.5, 1000}} {
		z := NewZipf(tc.z, tc.c)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("z=%g c=%d: probs sum to %g", tc.z, tc.c, sum)
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z := NewZipf(1.5, 100)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1) {
			t.Fatalf("prob[%d]=%g > prob[%d]=%g", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfZeroSkewIsUniform(t *testing.T) {
	z := NewZipf(0, 20)
	for i := 0; i < 20; i++ {
		if math.Abs(z.Prob(i)-0.05) > 1e-12 {
			t.Fatalf("prob[%d] = %g, want 0.05", i, z.Prob(i))
		}
	}
}

func TestZipfRatios(t *testing.T) {
	// P(1)/P(2) should be 2^z for the top two values.
	z := NewZipf(2.0, 50)
	ratio := z.Prob(0) / z.Prob(1)
	if math.Abs(ratio-4.0) > 1e-9 {
		t.Fatalf("P(0)/P(1) = %g, want 4", ratio)
	}
}

func TestZipfDrawEmpirical(t *testing.T) {
	z := NewZipf(1.0, 10)
	rng := New(42)
	const n = 200000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[z.Draw(rng)]++
	}
	for i := 0; i < 10; i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("value %d: empirical %g, expected %g", i, got, want)
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	f := func(seed int64) bool {
		z := NewZipf(1.8, 7)
		rng := New(seed)
		for i := 0; i < 100; i++ {
			v := z.Draw(rng)
			if v < 0 || v >= 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(1, 0) },
		func() { NewZipf(-0.5, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCategoricalEmpirical(t *testing.T) {
	c := NewCategorical([]float64{1, 2, 7})
	rng := New(7)
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[c.Draw(rng)]++
	}
	wants := []float64{0.1, 0.2, 0.7}
	for i, w := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("cat %d: got %g want %g", i, got, w)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", weights)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := New(3)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 10}, {100, 17}} {
		got := SampleWithoutReplacement(rng, tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("n=%d k=%d: got %d items", tc.n, tc.k, len(got))
		}
		sort.Ints(got)
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("duplicate index %d", got[i])
			}
		}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("index %d out of range", v)
			}
		}
	}
}

func TestSampleWithoutReplacementUniformity(t *testing.T) {
	// Each of 10 indices should appear in a 5-of-10 sample about half the time.
	rng := New(11)
	const trials = 20000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(rng, 10, 5) {
			counts[v]++
		}
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.5) > 0.02 {
			t.Errorf("index %d appears with frequency %g, want ~0.5", i, got)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when k > n")
		}
	}()
	SampleWithoutReplacement(New(1), 3, 4)
}

func TestDeterminism(t *testing.T) {
	z := NewZipf(1.5, 30)
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if z.Draw(a) != z.Draw(b) {
			t.Fatal("same seed produced different draws")
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := New(5)
	for i := 0; i < 1000; i++ {
		if v := LogNormal(rng, 3, 1.5); v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("LogNormal produced %g", v)
		}
	}
}
