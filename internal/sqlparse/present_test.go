package sqlparse

import (
	"strings"
	"testing"

	"dynsample/internal/engine"
)

func TestParseHavingOrderLimit(t *testing.T) {
	stmt, err := Parse("SELECT region, COUNT(*) AS cnt FROM sales GROUP BY region HAVING cnt >= 10 AND SUM(price) > 2.5 ORDER BY SUM(price) DESC, region LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Having) != 2 {
		t.Fatalf("having = %d", len(stmt.Having))
	}
	if stmt.Having[0].Ref != "cnt" || stmt.Having[0].Op != ">=" {
		t.Errorf("having[0] = %+v", stmt.Having[0])
	}
	if stmt.Having[1].Agg == nil || stmt.Having[1].Agg.Func != "SUM" {
		t.Errorf("having[1] = %+v", stmt.Having[1])
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestHavingOrderLimitRoundTrip(t *testing.T) {
	in := "SELECT region, COUNT(*) AS cnt FROM sales GROUP BY region HAVING cnt >= 10 ORDER BY COUNT(*) DESC, region LIMIT 3"
	s1, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	out := s1.String()
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if s2.String() != out {
		t.Errorf("round trip unstable:\n%s\n%s", out, s2.String())
	}
	for _, want := range []string{"HAVING cnt >= 10", "ORDER BY COUNT(*) DESC, region", "LIMIT 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed form missing %q: %s", want, out)
		}
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	bad := []string{
		"SELECT COUNT(*) FROM T LIMIT",
		"SELECT COUNT(*) FROM T LIMIT 0",
		"SELECT COUNT(*) FROM T LIMIT -3",
		"SELECT COUNT(*) FROM T LIMIT x",
		"SELECT COUNT(*) FROM T ORDER COUNT(*)",
		"SELECT COUNT(*) FROM T ORDER BY",
		"SELECT COUNT(*) FROM T GROUP BY a HAVING",
		"SELECT COUNT(*) FROM T GROUP BY a HAVING cnt",
		"SELECT COUNT(*) FROM T GROUP BY a HAVING cnt IN (1)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("parse succeeded for %q", s)
		}
	}
}

func TestCompilePresent(t *testing.T) {
	db := compileDB(t)
	c, err := Compile(mustParse(t,
		"SELECT region, COUNT(*) AS cnt FROM sales GROUP BY region HAVING cnt > 30 ORDER BY cnt DESC LIMIT 2"), db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteExact(db, c.Query)
	if err != nil {
		t.Fatal(err)
	}
	groups := c.Present(res)
	// 100 rows over 3 regions: WA=34, OR=33, CA=33. HAVING cnt>30 keeps all,
	// ORDER BY cnt DESC LIMIT 2 keeps WA then one of OR/CA.
	if len(groups) != 2 {
		t.Fatalf("presented %d groups", len(groups))
	}
	if groups[0].Key[0].S != "WA" {
		t.Errorf("top group = %v", groups[0].Key)
	}
	if groups[0].Vals[0] < groups[1].Vals[0] {
		t.Error("not sorted descending")
	}
}

func TestPresentHavingHiddenAggregate(t *testing.T) {
	db := compileDB(t)
	// HAVING on an aggregate that is not in the SELECT list.
	c, err := Compile(mustParse(t,
		"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING SUM(price) > 2450"), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Query.Aggs) != 2 {
		t.Fatalf("hidden aggregate not added: %v", c.Query.Aggs)
	}
	res, _ := engine.ExecuteExact(db, c.Query)
	groups := c.Present(res)
	for _, g := range groups {
		if g.Vals[1] <= 2450 {
			t.Errorf("group %v fails HAVING: sum=%g", g.Key, g.Vals[1])
		}
	}
	if len(groups) == 0 || len(groups) == res.NumGroups() {
		t.Errorf("HAVING did not filter: %d of %d", len(groups), res.NumGroups())
	}
}

func TestPresentOrderByGroupColumn(t *testing.T) {
	db := compileDB(t)
	c, err := Compile(mustParse(t, "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region DESC"), db)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := engine.ExecuteExact(db, c.Query)
	groups := c.Present(res)
	if len(groups) != 3 || groups[0].Key[0].S != "WA" || groups[2].Key[0].S != "CA" {
		t.Errorf("order wrong: %v %v %v", groups[0].Key, groups[1].Key, groups[2].Key)
	}
}

func TestPresentOrderByAvg(t *testing.T) {
	db := compileDB(t)
	c, err := Compile(mustParse(t, "SELECT region, AVG(price) FROM sales GROUP BY region ORDER BY AVG(price)"), db)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := engine.ExecuteExact(db, c.Query)
	groups := c.Present(res)
	for i := 1; i < len(groups); i++ {
		prev := groups[i-1].Vals[c.Outputs[1].NumIndex] / groups[i-1].Vals[c.Outputs[1].DenIndex]
		cur := groups[i].Vals[c.Outputs[1].NumIndex] / groups[i].Vals[c.Outputs[1].DenIndex]
		if prev > cur {
			t.Errorf("not ascending by avg: %g then %g", prev, cur)
		}
	}
}

func TestCompileHavingErrors(t *testing.T) {
	db := compileDB(t)
	bad := []string{
		"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING region > 1",      // group col
		"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING nope > 1",        // unknown ref
		"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) = 'x'",  // string literal
		"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING SUM(region) > 1", // string agg
		"SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY nope",          // unknown order ref
	}
	for _, s := range bad {
		stmt, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if _, err := Compile(stmt, db); err == nil {
			t.Errorf("compile succeeded for %q", s)
		}
	}
}

func TestPresentNoModifiersIsKeySorted(t *testing.T) {
	db := compileDB(t)
	c, err := Compile(mustParse(t, "SELECT region, COUNT(*) FROM sales GROUP BY region"), db)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := engine.ExecuteExact(db, c.Query)
	groups := c.Present(res)
	if len(groups) != res.NumGroups() {
		t.Errorf("groups dropped without HAVING/LIMIT")
	}
}
