package sqlparse

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

func TestParseBasic(t *testing.T) {
	stmt, err := Parse("SELECT a, c, COUNT(*) AS cnt FROM T GROUP BY a, c")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 3 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.Items[0].Column != "a" || stmt.Items[1].Column != "c" {
		t.Errorf("columns = %+v", stmt.Items[:2])
	}
	if stmt.Items[2].Agg == nil || stmt.Items[2].Agg.Func != "COUNT" || stmt.Items[2].Agg.Arg != "" {
		t.Errorf("agg = %+v", stmt.Items[2].Agg)
	}
	if stmt.Items[2].Alias != "cnt" {
		t.Errorf("alias = %q", stmt.Items[2].Alias)
	}
	if stmt.From != "T" {
		t.Errorf("from = %q", stmt.From)
	}
	if len(stmt.GroupBy) != 2 || stmt.GroupBy[0] != "a" || stmt.GroupBy[1] != "c" {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestParseWhereForms(t *testing.T) {
	stmt, err := Parse(`select sum(price) from sales where region in ('WA','OR') and qty >= 5 and price between 1.5 and 9 group by region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Where) != 3 {
		t.Fatalf("conds = %d", len(stmt.Where))
	}
	in, ok := stmt.Where[0].(*InCond)
	if !ok || in.Column != "region" || len(in.Values) != 2 || in.Values[0].Str != "WA" {
		t.Errorf("in = %+v", stmt.Where[0])
	}
	cmp, ok := stmt.Where[1].(*CmpCond)
	if !ok || cmp.Op != ">=" || !cmp.Value.IsInt || cmp.Value.Int != 5 {
		t.Errorf("cmp = %+v", stmt.Where[1])
	}
	bt, ok := stmt.Where[2].(*BetweenCond)
	if !ok || bt.Lo.Num != 1.5 || !bt.Hi.IsInt || bt.Hi.Int != 9 {
		t.Errorf("between = %+v", stmt.Where[2])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("SeLeCt CoUnT(*) FrOm t GrOuP bY x"); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt, err := Parse("SELECT COUNT(*) FROM T WHERE a = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.Where[0].(*CmpCond)
	if cmp.Value.Str != "it's" {
		t.Errorf("string = %q", cmp.Value.Str)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT COUNT(* FROM T",
		"SELECT SUM(*) FROM T",
		"SELECT COUNT(*) T",
		"SELECT COUNT(*) FROM T WHERE",
		"SELECT COUNT(*) FROM T WHERE a ! 1",
		"SELECT COUNT(*) FROM T WHERE a IN ()",
		"SELECT COUNT(*) FROM T WHERE a BETWEEN 1",
		"SELECT COUNT(*) FROM T GROUP",
		"SELECT COUNT(*) FROM T GROUP BY",
		"SELECT COUNT(*) FROM T extra",
		"SELECT COUNT(*) FROM T WHERE a = 'unterminated",
		"SELECT COUNT(*) FROM T WHERE a = 1 AND",
		"SELECT SELECT FROM T",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("parse succeeded for %q", s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// print(parse(x)) must be a fixed point: parsing it again gives the same
	// string.
	inputs := []string{
		"SELECT a, COUNT(*) FROM T GROUP BY a",
		"SELECT SUM(x) AS s, COUNT(*) FROM tab WHERE a IN (1, 2, 3) AND b = 'v' GROUP BY q",
		"SELECT AVG(m) FROM T WHERE x BETWEEN -5 AND 7",
		"SELECT a FROM T WHERE z <> 'q''q' GROUP BY a",
	}
	for _, in := range inputs {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		out1 := s1.String()
		s2, err := Parse(out1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", out1, err)
		}
		if out2 := s2.String(); out1 != out2 {
			t.Errorf("round trip unstable:\n%s\n%s", out1, out2)
		}
	}
}

func TestRoundTripRandomised(t *testing.T) {
	cols := []string{"a", "b", "c", "price", "qty"}
	f := func(seed int64) bool {
		rng := randx.New(seed)
		stmt := &SelectStmt{From: "T"}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			stmt.GroupBy = append(stmt.GroupBy, cols[rng.Intn(len(cols))])
		}
		for _, g := range stmt.GroupBy {
			stmt.Items = append(stmt.Items, SelectItem{Column: g})
		}
		stmt.Items = append(stmt.Items, SelectItem{Agg: &AggExpr{Func: "COUNT"}})
		if rng.Intn(2) == 0 {
			stmt.Where = append(stmt.Where, &InCond{
				Column: cols[rng.Intn(len(cols))],
				Values: []Literal{{IsInt: true, Int: int64(rng.Intn(100))}, {IsString: true, Str: "x'y"}},
			})
		}
		out := stmt.String()
		re, err := Parse(out)
		if err != nil {
			return false
		}
		return re.String() == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func compileDB(t *testing.T) *engine.Database {
	t.Helper()
	region := engine.NewColumn("region", engine.String)
	qty := engine.NewColumn("qty", engine.Int)
	price := engine.NewColumn("price", engine.Float)
	fact := engine.NewTable("sales", region, qty, price)
	for i := 0; i < 100; i++ {
		region.AppendString([]string{"WA", "OR", "CA"}[i%3])
		qty.AppendInt(int64(i % 7))
		price.AppendFloat(float64(i) * 1.5)
		fact.EndRow()
	}
	return engine.MustNewDatabase("salesdb", fact)
}

func TestCompileBasic(t *testing.T) {
	db := compileDB(t)
	stmt, err := Parse("SELECT region, COUNT(*), SUM(price) FROM sales WHERE qty >= 2 GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(stmt, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Query.Aggs) != 2 {
		t.Fatalf("aggs = %v", c.Query.Aggs)
	}
	if len(c.Outputs) != 3 {
		t.Fatalf("outputs = %d", len(c.Outputs))
	}
	if c.Outputs[0].Kind != OutGroup || c.Outputs[1].Kind != OutAgg || c.Outputs[2].Kind != OutAgg {
		t.Errorf("output kinds = %+v", c.Outputs)
	}
	res, err := engine.ExecuteExact(db, c.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 3 {
		t.Errorf("groups = %d", res.NumGroups())
	}
}

func TestCompileAvgExpansion(t *testing.T) {
	db := compileDB(t)
	stmt, err := Parse("SELECT region, AVG(price), COUNT(*) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(stmt, db)
	if err != nil {
		t.Fatal(err)
	}
	// AVG expands into SUM + COUNT; the explicit COUNT(*) reuses the same
	// aggregate slot.
	if len(c.Query.Aggs) != 2 {
		t.Fatalf("aggs = %v", c.Query.Aggs)
	}
	avg := c.Outputs[1]
	if avg.Kind != OutAvg {
		t.Fatalf("output 1 kind = %v", avg.Kind)
	}
	res, err := engine.ExecuteExact(db, c.Query)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups() {
		got := g.Vals[avg.NumIndex] / g.Vals[avg.DenIndex]
		// Exact average of prices within the region.
		var want, n float64
		acc, _ := db.Accessor("region")
		pacc, _ := db.Accessor("price")
		for i := 0; i < db.NumRows(); i++ {
			if acc.Value(i) == g.Key[0] {
				want += pacc.Float(i)
				n++
			}
		}
		want /= n
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("group %v avg = %g, want %g", g.Key, got, want)
		}
	}
}

func TestCompileCoercion(t *testing.T) {
	db := compileDB(t)
	// Integer literal against float column is fine.
	if _, err := Compile(mustParse(t, "SELECT COUNT(*) FROM sales WHERE price > 3"), db); err != nil {
		t.Errorf("int literal vs float column: %v", err)
	}
	// Whole float literal against int column is fine.
	if _, err := Compile(mustParse(t, "SELECT COUNT(*) FROM sales WHERE qty = 3.0"), db); err != nil {
		t.Errorf("whole float vs int column: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	db := compileDB(t)
	bad := []string{
		"SELECT COUNT(*) FROM nope",
		"SELECT COUNT(*) FROM sales GROUP BY missing",
		"SELECT qty, COUNT(*) FROM sales GROUP BY region",      // qty not grouped
		"SELECT SUM(region) FROM sales",                        // string aggregate
		"SELECT AVG(region) FROM sales",                        // string aggregate
		"SELECT region FROM sales GROUP BY region",             // no aggregate
		"SELECT COUNT(*) FROM sales WHERE region = 5",          // type mismatch
		"SELECT COUNT(*) FROM sales WHERE qty = 'x'",           // type mismatch
		"SELECT COUNT(*) FROM sales WHERE qty = 2.5",           // fractional vs int
		"SELECT COUNT(*) FROM sales WHERE missing IN (1)",      // unknown column
		"SELECT SUM(missing) FROM sales",                       // unknown column
		"SELECT COUNT(*) FROM sales WHERE price IN ('a', 'b')", // string vs float
	}
	for _, s := range bad {
		stmt, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if _, err := Compile(stmt, db); err == nil {
			t.Errorf("compile succeeded for %q", s)
		}
	}
}

func TestCompileFromAliases(t *testing.T) {
	db := compileDB(t)
	for _, from := range []string{"salesdb", "sales", "T", "t"} {
		stmt := mustParse(t, "SELECT COUNT(*) FROM "+from)
		if _, err := Compile(stmt, db); err != nil {
			t.Errorf("FROM %s rejected: %v", from, err)
		}
	}
}

func TestCompiledQueryMatchesHandBuilt(t *testing.T) {
	db := compileDB(t)
	c, err := Compile(mustParse(t, "SELECT region, COUNT(*) FROM sales WHERE region IN ('WA','OR') GROUP BY region"), db)
	if err != nil {
		t.Fatal(err)
	}
	want := &engine.Query{
		GroupBy: []string{"region"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
		Where:   []engine.Predicate{engine.NewIn("region", engine.StringVal("WA"), engine.StringVal("OR"))},
	}
	gotRes, _ := engine.ExecuteExact(db, c.Query)
	wantRes, _ := engine.ExecuteExact(db, want)
	if gotRes.NumGroups() != wantRes.NumGroups() {
		t.Fatalf("group counts differ")
	}
	for _, k := range wantRes.Keys() {
		if gotRes.Group(k) == nil || gotRes.Group(k).Vals[0] != wantRes.Group(k).Vals[0] {
			t.Errorf("group %v differs", wantRes.Group(k).Key)
		}
	}
}

func TestQueryStringContainsPredicates(t *testing.T) {
	db := compileDB(t)
	c, err := Compile(mustParse(t, "SELECT COUNT(*) FROM sales WHERE qty BETWEEN 1 AND 3"), db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Query.String(), "BETWEEN 1 AND 3") {
		t.Errorf("query string %q", c.Query.String())
	}
}

func mustParse(t *testing.T, s string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return stmt
}
