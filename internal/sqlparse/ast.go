package sqlparse

import (
	"fmt"
	"strings"
)

// SelectStmt is the AST of one aggregation query.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Where   []Condition
	GroupBy []string
	Having  []HavingCond
	OrderBy []OrderItem
	// Limit caps the returned groups; 0 means no limit.
	Limit int
}

// HavingCond filters groups on an aggregate value: "HAVING SUM(x) > 5" or
// "HAVING cnt >= 10" (alias reference).
type HavingCond struct {
	// Agg, when non-nil, is the aggregate expression; otherwise Ref names a
	// select-list alias.
	Agg   *AggExpr
	Ref   string
	Op    string
	Value Literal
}

// OrderItem is one ORDER BY key: a column/alias reference or an aggregate
// expression, ascending by default.
type OrderItem struct {
	Agg  *AggExpr
	Ref  string
	Desc bool
}

// SelectItem is one SELECT-list entry: either a bare column reference or an
// aggregate expression, optionally aliased.
type SelectItem struct {
	Column string   // set for bare column references
	Agg    *AggExpr // set for aggregates
	Alias  string
}

// AggExpr is COUNT(*), COUNT(col), SUM(col) or AVG(col).
type AggExpr struct {
	Func string // upper-cased: COUNT, SUM, AVG
	Arg  string // empty for COUNT(*)
}

// Condition is a single WHERE conjunct.
type Condition interface {
	condString() string
}

// Literal is a parsed SQL literal.
type Literal struct {
	IsString bool
	Str      string
	Num      float64
	IsInt    bool
	Int      int64
}

// String renders the literal back to SQL.
func (l Literal) String() string {
	switch {
	case l.IsString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case l.IsInt:
		return fmt.Sprintf("%d", l.Int)
	default:
		return fmt.Sprintf("%g", l.Num)
	}
}

// InCond is "col IN (lit, ...)".
type InCond struct {
	Column string
	Values []Literal
}

func (c *InCond) condString() string {
	parts := make([]string, len(c.Values))
	for i, v := range c.Values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", c.Column, strings.Join(parts, ", "))
}

// CmpCond is "col <op> lit" with op in =, <>, <, <=, >, >=.
type CmpCond struct {
	Column string
	Op     string
	Value  Literal
}

func (c *CmpCond) condString() string {
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, c.Value)
}

// BetweenCond is "col BETWEEN lo AND hi".
type BetweenCond struct {
	Column string
	Lo, Hi Literal
}

func (c *BetweenCond) condString() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", c.Column, c.Lo, c.Hi)
}

// String renders the statement back to SQL. Parsing the output yields an
// equivalent AST (round-trip property).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Agg != nil && it.Agg.Arg == "":
			fmt.Fprintf(&sb, "%s(*)", it.Agg.Func)
		case it.Agg != nil:
			fmt.Fprintf(&sb, "%s(%s)", it.Agg.Func, it.Agg.Arg)
		default:
			sb.WriteString(it.Column)
		}
		if it.Alias != "" {
			fmt.Fprintf(&sb, " AS %s", it.Alias)
		}
	}
	fmt.Fprintf(&sb, " FROM %s", s.From)
	if len(s.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, c := range s.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(c.condString())
		}
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(s.GroupBy, ", "))
	}
	if len(s.Having) > 0 {
		sb.WriteString(" HAVING ")
		for i, h := range s.Having {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			if h.Agg != nil {
				sb.WriteString(aggString(h.Agg))
			} else {
				sb.WriteString(h.Ref)
			}
			fmt.Fprintf(&sb, " %s %s", h.Op, h.Value)
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			if o.Agg != nil {
				sb.WriteString(aggString(o.Agg))
			} else {
				sb.WriteString(o.Ref)
			}
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

func aggString(a *AggExpr) string {
	if a.Arg == "" {
		return a.Func + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}
