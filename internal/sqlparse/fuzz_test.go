package sqlparse

import "testing"

// FuzzParse asserts the parser is total: any input either parses into a
// statement whose printed form re-parses to the same string, or returns an
// error — never a panic.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a, COUNT(*) FROM T GROUP BY a",
		"SELECT SUM(x) FROM t WHERE a IN (1,2,'x') AND b BETWEEN -1 AND 2.5 GROUP BY q",
		"select avg(m) from sales where p >= 1e10",
		"SELECT COUNT(*) FROM T WHERE s = 'it''s'",
		"SELECT",
		"'",
		"SELECT COUNT(*) FROM T;",
		"SELECT a FROM",
		"\x00\xff",
		"SELECT COUNT(*) FROM T WHERE a IN ()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		out := stmt.String()
		re, err := Parse(out)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %q -> %q: %v", input, out, err)
		}
		if re.String() != out {
			t.Fatalf("print not a fixed point: %q -> %q -> %q", input, out, re.String())
		}
	})
}
