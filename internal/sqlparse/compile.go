package sqlparse

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dynsample/internal/engine"
)

// OutputKind tells how one SELECT item is produced from the compiled query.
type OutputKind int

// Output kinds.
const (
	// OutGroup is a group-by column; GroupIndex identifies it.
	OutGroup OutputKind = iota
	// OutAgg is a direct aggregate; AggIndex identifies it.
	OutAgg
	// OutAvg divides aggregate NumIndex by aggregate DenIndex (AVG support:
	// the engine computes COUNT and SUM, matching the paper's scope, and AVG
	// is derived by the middleware).
	OutAvg
)

// Output describes how to render one SELECT item from a query result.
type Output struct {
	Kind       OutputKind
	Name       string
	GroupIndex int
	AggIndex   int
	NumIndex   int
	DenIndex   int
}

// HavingFilter is a compiled HAVING conjunct: a numeric condition on an
// aggregate output, applied to each group after combination.
type HavingFilter struct {
	Output Output
	Op     engine.CmpOp
	Value  float64
}

// OrderKey is one compiled ORDER BY key.
type OrderKey struct {
	Output Output
	Desc   bool
}

// Compiled pairs an engine query with the mapping back to the SELECT list
// and the post-aggregation presentation (HAVING, ORDER BY, LIMIT).
type Compiled struct {
	Query   *engine.Query
	Outputs []Output
	Having  []HavingFilter
	Order   []OrderKey
	// Limit caps the presented groups; 0 means no limit.
	Limit int
}

// Compile type-checks the statement against db and lowers it to an engine
// query. AVG(col) is expanded into SUM(col) and COUNT(*) aggregates plus an
// OutAvg output.
func Compile(stmt *SelectStmt, db *engine.Database) (*Compiled, error) {
	if !validFrom(stmt.From, db) {
		return nil, fmt.Errorf("sqlparse: unknown table %q (expected %q)", stmt.From, db.Name)
	}

	q := &engine.Query{GroupBy: stmt.GroupBy}
	groupIx := make(map[string]int, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		if !db.HasColumn(g) {
			return nil, fmt.Errorf("sqlparse: unknown group-by column %q", g)
		}
		groupIx[g] = i
	}

	// ensureAgg appends the aggregate if not already present and returns its
	// index.
	ensureAgg := func(a engine.Aggregate) int {
		for i, e := range q.Aggs {
			if e == a {
				return i
			}
		}
		q.Aggs = append(q.Aggs, a)
		return len(q.Aggs) - 1
	}

	c := &Compiled{Query: q}
	for _, item := range stmt.Items {
		name := item.Alias
		switch {
		case item.Agg == nil:
			gi, ok := groupIx[item.Column]
			if !ok {
				return nil, fmt.Errorf("sqlparse: column %q must appear in GROUP BY", item.Column)
			}
			if name == "" {
				name = item.Column
			}
			c.Outputs = append(c.Outputs, Output{Kind: OutGroup, Name: name, GroupIndex: gi})
		case item.Agg.Func == "COUNT":
			// COUNT(col) == COUNT(*) in this engine (no NULLs).
			ix := ensureAgg(engine.Aggregate{Kind: engine.Count})
			if name == "" {
				name = "count"
			}
			c.Outputs = append(c.Outputs, Output{Kind: OutAgg, Name: name, AggIndex: ix})
		case item.Agg.Func == "SUM":
			if err := checkNumeric(db, item.Agg.Arg); err != nil {
				return nil, err
			}
			ix := ensureAgg(engine.Aggregate{Kind: engine.Sum, Col: item.Agg.Arg})
			if name == "" {
				name = "sum_" + item.Agg.Arg
			}
			c.Outputs = append(c.Outputs, Output{Kind: OutAgg, Name: name, AggIndex: ix})
		case item.Agg.Func == "AVG":
			if err := checkNumeric(db, item.Agg.Arg); err != nil {
				return nil, err
			}
			num := ensureAgg(engine.Aggregate{Kind: engine.Sum, Col: item.Agg.Arg})
			den := ensureAgg(engine.Aggregate{Kind: engine.Count})
			if name == "" {
				name = "avg_" + item.Agg.Arg
			}
			c.Outputs = append(c.Outputs, Output{Kind: OutAvg, Name: name, NumIndex: num, DenIndex: den})
		default:
			return nil, fmt.Errorf("sqlparse: unsupported aggregate %q", item.Agg.Func)
		}
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("sqlparse: query has no aggregate expression")
	}

	// Resolve a HAVING/ORDER BY reference to an output (possibly adding a
	// hidden aggregate to the query).
	resolve := func(agg *AggExpr, ref string) (Output, error) {
		if agg != nil {
			switch agg.Func {
			case "COUNT":
				return Output{Kind: OutAgg, AggIndex: ensureAgg(engine.Aggregate{Kind: engine.Count})}, nil
			case "SUM":
				if err := checkNumeric(db, agg.Arg); err != nil {
					return Output{}, err
				}
				return Output{Kind: OutAgg, AggIndex: ensureAgg(engine.Aggregate{Kind: engine.Sum, Col: agg.Arg})}, nil
			case "AVG":
				if err := checkNumeric(db, agg.Arg); err != nil {
					return Output{}, err
				}
				num := ensureAgg(engine.Aggregate{Kind: engine.Sum, Col: agg.Arg})
				den := ensureAgg(engine.Aggregate{Kind: engine.Count})
				return Output{Kind: OutAvg, NumIndex: num, DenIndex: den}, nil
			default:
				return Output{}, fmt.Errorf("sqlparse: unsupported aggregate %q", agg.Func)
			}
		}
		for _, o := range c.Outputs {
			if o.Name == ref {
				return o, nil
			}
		}
		if gi, ok := groupIx[ref]; ok {
			return Output{Kind: OutGroup, Name: ref, GroupIndex: gi}, nil
		}
		return Output{}, fmt.Errorf("sqlparse: unknown reference %q", ref)
	}

	for _, h := range stmt.Having {
		out, err := resolve(h.Agg, h.Ref)
		if err != nil {
			return nil, err
		}
		if out.Kind == OutGroup {
			return nil, fmt.Errorf("sqlparse: HAVING must reference an aggregate (use WHERE for column filters)")
		}
		if h.Value.IsString {
			return nil, fmt.Errorf("sqlparse: HAVING needs a numeric literal")
		}
		op, err := cmpOp(h.Op)
		if err != nil {
			return nil, err
		}
		c.Having = append(c.Having, HavingFilter{Output: out, Op: op, Value: h.Value.Num})
	}
	for _, o := range stmt.OrderBy {
		out, err := resolve(o.Agg, o.Ref)
		if err != nil {
			return nil, err
		}
		c.Order = append(c.Order, OrderKey{Output: out, Desc: o.Desc})
	}
	c.Limit = stmt.Limit

	for _, cond := range stmt.Where {
		pred, err := compileCondition(cond, db)
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, pred)
	}
	return c, nil
}

func cmpOp(op string) (engine.CmpOp, error) {
	switch op {
	case "=":
		return engine.Eq, nil
	case "<>":
		return engine.Ne, nil
	case "<":
		return engine.Lt, nil
	case "<=":
		return engine.Le, nil
	case ">":
		return engine.Gt, nil
	case ">=":
		return engine.Ge, nil
	default:
		return 0, fmt.Errorf("sqlparse: bad operator %q", op)
	}
}

// numericValue evaluates a numeric output for a group.
func numericValue(g *engine.Group, o Output) float64 {
	switch o.Kind {
	case OutAgg:
		return g.Vals[o.AggIndex]
	case OutAvg:
		if g.Vals[o.DenIndex] == 0 {
			return 0
		}
		return g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
	default:
		return 0
	}
}

// Present applies HAVING, ORDER BY and LIMIT to a combined result, returning
// the groups to display in order. With no ORDER BY, groups are sorted by key
// for determinism.
func (c *Compiled) Present(res *engine.Result) []*engine.Group {
	groups := res.Groups() // key-sorted
	if len(c.Having) > 0 {
		kept := groups[:0]
		for _, g := range groups {
			ok := true
			for _, h := range c.Having {
				v := numericValue(g, h.Output)
				if !matchCmp(v, h.Op, h.Value) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, g)
			}
		}
		groups = kept
	}
	if len(c.Order) > 0 {
		sort.SliceStable(groups, func(i, j int) bool {
			for _, k := range c.Order {
				var less, eq bool
				if k.Output.Kind == OutGroup {
					a, b := groups[i].Key[k.Output.GroupIndex], groups[j].Key[k.Output.GroupIndex]
					less, eq = a.Less(b), a == b
				} else {
					a, b := numericValue(groups[i], k.Output), numericValue(groups[j], k.Output)
					less, eq = a < b, a == b
				}
				if eq {
					continue
				}
				if k.Desc {
					return !less
				}
				return less
			}
			return false
		})
	}
	if c.Limit > 0 && len(groups) > c.Limit {
		groups = groups[:c.Limit]
	}
	return groups
}

func matchCmp(v float64, op engine.CmpOp, lit float64) bool {
	switch op {
	case engine.Eq:
		return v == lit
	case engine.Ne:
		return v != lit
	case engine.Lt:
		return v < lit
	case engine.Le:
		return v <= lit
	case engine.Gt:
		return v > lit
	case engine.Ge:
		return v >= lit
	default:
		return false
	}
}

func validFrom(from string, db *engine.Database) bool {
	return strings.EqualFold(from, db.Name) ||
		strings.EqualFold(from, db.Fact.Name) ||
		strings.EqualFold(from, "T")
}

func checkNumeric(db *engine.Database, col string) error {
	t, err := db.ColumnType(col)
	if err != nil {
		return fmt.Errorf("sqlparse: %w", err)
	}
	if t == engine.String {
		return fmt.Errorf("sqlparse: cannot aggregate string column %q", col)
	}
	return nil
}

func compileCondition(cond Condition, db *engine.Database) (engine.Predicate, error) {
	switch c := cond.(type) {
	case *InCond:
		vals := make([]engine.Value, len(c.Values))
		for i, lit := range c.Values {
			v, err := coerce(lit, db, c.Column)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return engine.NewIn(c.Column, vals...), nil
	case *BetweenCond:
		lo, err := coerce(c.Lo, db, c.Column)
		if err != nil {
			return nil, err
		}
		hi, err := coerce(c.Hi, db, c.Column)
		if err != nil {
			return nil, err
		}
		return engine.NewRange(c.Column, lo, hi), nil
	case *CmpCond:
		v, err := coerce(c.Value, db, c.Column)
		if err != nil {
			return nil, err
		}
		var op engine.CmpOp
		switch c.Op {
		case "=":
			op = engine.Eq
		case "<>":
			op = engine.Ne
		case "<":
			op = engine.Lt
		case "<=":
			op = engine.Le
		case ">":
			op = engine.Gt
		case ">=":
			op = engine.Ge
		default:
			return nil, fmt.Errorf("sqlparse: bad operator %q", c.Op)
		}
		return engine.NewCmp(c.Column, op, v), nil
	default:
		return nil, fmt.Errorf("sqlparse: unknown condition type %T", cond)
	}
}

// coerce converts a literal to the column's value type.
func coerce(lit Literal, db *engine.Database, col string) (engine.Value, error) {
	t, err := db.ColumnType(col)
	if err != nil {
		return engine.Value{}, fmt.Errorf("sqlparse: %w", err)
	}
	switch t {
	case engine.String:
		if !lit.IsString {
			return engine.Value{}, fmt.Errorf("sqlparse: column %q is a string, got numeric literal %s", col, lit)
		}
		return engine.StringVal(lit.Str), nil
	case engine.Int:
		if lit.IsString {
			return engine.Value{}, fmt.Errorf("sqlparse: column %q is numeric, got string literal %s", col, lit)
		}
		if lit.IsInt {
			return engine.IntVal(lit.Int), nil
		}
		if lit.Num == math.Trunc(lit.Num) {
			return engine.IntVal(int64(lit.Num)), nil
		}
		return engine.Value{}, fmt.Errorf("sqlparse: column %q is an integer, got fractional literal %s", col, lit)
	default: // Float
		if lit.IsString {
			return engine.Value{}, fmt.Errorf("sqlparse: column %q is numeric, got string literal %s", col, lit)
		}
		return engine.FloatVal(lit.Num), nil
	}
}
