package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword reports whether the current token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return nil
	}
	return p.errorf("expected %q, got %q", sym, t.text)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true}

// reserved keywords may not be used as bare column identifiers in the select
// list or group-by list.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AND": true, "IN": true, "BETWEEN": true, "AS": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "DESC": true, "ASC": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	if p.keyword("WHERE") {
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cond)
			if !p.keyword("AND") {
				break
			}
		}
	}

	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if reserved[strings.ToUpper(col)] {
				return nil, p.errorf("reserved word %q in GROUP BY", col)
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("HAVING") {
		for {
			h, err := p.parseHaving()
			if err != nil {
				return nil, err
			}
			stmt.Having = append(stmt.Having, h)
			if !p.keyword("AND") {
				break
			}
		}
	}

	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			o, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, o)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, got %q", t.text)
		}
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = int(n)
	}
	return stmt, nil
}

// parseRef parses an aggregate expression or a bare identifier reference.
func (p *parser) parseRef() (*AggExpr, string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, "", p.errorf("expected aggregate or identifier, got %q", t.text)
	}
	upper := strings.ToUpper(t.text)
	if aggFuncs[upper] {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, "", err
		}
		agg := &AggExpr{Func: upper}
		if p.peek().kind == tokSymbol && p.peek().text == "*" {
			if upper != "COUNT" {
				return nil, "", p.errorf("%s(*) is not valid", upper)
			}
			p.next()
		} else {
			arg, err := p.ident()
			if err != nil {
				return nil, "", err
			}
			agg.Arg = arg
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, "", err
		}
		return agg, "", nil
	}
	if reserved[upper] {
		return nil, "", p.errorf("reserved word %q where reference expected", t.text)
	}
	ref, err := p.ident()
	return nil, ref, err
}

func (p *parser) parseHaving() (HavingCond, error) {
	agg, ref, err := p.parseRef()
	if err != nil {
		return HavingCond{}, err
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return HavingCond{}, p.errorf("expected comparison in HAVING, got %q", t.text)
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
		p.next()
	default:
		return HavingCond{}, p.errorf("expected comparison in HAVING, got %q", t.text)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return HavingCond{}, err
	}
	return HavingCond{Agg: agg, Ref: ref, Op: t.text, Value: lit}, nil
}

func (p *parser) parseOrderItem() (OrderItem, error) {
	agg, ref, err := p.parseRef()
	if err != nil {
		return OrderItem{}, err
	}
	o := OrderItem{Agg: agg, Ref: ref}
	if p.keyword("DESC") {
		o.Desc = true
	} else {
		p.keyword("ASC") // optional, ascending is the default
	}
	return o, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return SelectItem{}, p.errorf("expected column or aggregate, got %q", t.text)
	}
	upper := strings.ToUpper(t.text)
	var item SelectItem
	if aggFuncs[upper] {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return SelectItem{}, err
		}
		agg := &AggExpr{Func: upper}
		if p.peek().kind == tokSymbol && p.peek().text == "*" {
			if upper != "COUNT" {
				return SelectItem{}, p.errorf("%s(*) is not valid", upper)
			}
			p.next()
		} else {
			arg, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			agg.Arg = arg
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		item.Agg = agg
	} else {
		if reserved[upper] {
			return SelectItem{}, p.errorf("reserved word %q in select list", t.text)
		}
		col, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Column = col
	}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseCondition() (Condition, error) {
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if reserved[strings.ToUpper(col)] {
		return nil, p.errorf("reserved word %q where column expected", col)
	}
	if p.keyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		cond := &InCond{Column: col}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			cond.Values = append(cond.Values, lit)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return cond, nil
	}
	if p.keyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &BetweenCond{Column: col, Lo: lo, Hi: hi}, nil
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			return &CmpCond{Column: col, Op: t.text, Value: lit}, nil
		}
	}
	return nil, p.errorf("expected IN, BETWEEN or comparison after %q", col)
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return Literal{IsString: true, Str: t.text}, nil
	case tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return Literal{IsInt: true, Int: i, Num: float64(i)}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, p.errorf("bad number %q", t.text)
		}
		return Literal{Num: f}, nil
	default:
		return Literal{}, p.errorf("expected literal, got %q", t.text)
	}
}
