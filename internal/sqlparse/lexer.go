// Package sqlparse provides the SQL front end of the AQP middleware: a lexer
// and recursive-descent parser for the aggregation-query subset the paper
// targets (SELECT with COUNT/SUM/AVG, conjunctive WHERE predicates, GROUP
// BY), plus a compiler from the AST to engine queries. The middleware accepts
// SQL text, compiles it, and rewrites it against sample tables exactly as the
// thin-middleware deployments described in §2 do.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexed unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits input into tokens. Identifiers and keywords are returned as
// tokIdent (keyword recognition happens in the parser, case-insensitively).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			i++
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case strings.ContainsRune("(),*=&;", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
