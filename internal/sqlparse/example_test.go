package sqlparse_test

import (
	"fmt"

	"dynsample/internal/engine"
	"dynsample/internal/sqlparse"
)

// ExampleParse shows the SQL front end round-tripping a query.
func ExampleParse() {
	stmt, err := sqlparse.Parse(`
		SELECT region, COUNT(*) AS cnt, AVG(amount)
		FROM sales
		WHERE state IN ('WA', 'OR') AND amount > 10
		GROUP BY region
		HAVING cnt >= 5
		ORDER BY cnt DESC
		LIMIT 10`)
	if err != nil {
		panic(err)
	}
	fmt.Println(stmt)
	// Output:
	// SELECT region, COUNT(*) AS cnt, AVG(amount) FROM sales WHERE state IN ('WA', 'OR') AND amount > 10 GROUP BY region HAVING cnt >= 5 ORDER BY cnt DESC LIMIT 10
}

// ExampleCompile lowers SQL onto a database and executes it exactly.
func ExampleCompile() {
	region := engine.NewColumn("region", engine.String)
	amount := engine.NewColumn("amount", engine.Int)
	fact := engine.NewTable("sales", region, amount)
	for _, r := range []struct {
		reg string
		amt int64
	}{{"west", 10}, {"west", 20}, {"east", 5}, {"east", 7}, {"north", 1}} {
		fact.AppendRow(engine.StringVal(r.reg), engine.IntVal(r.amt))
	}
	db := engine.MustNewDatabase("demo", fact)

	compiled, err := sqlparse.Compile(mustParse("SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY SUM(amount) DESC"), db)
	if err != nil {
		panic(err)
	}
	res, err := engine.ExecuteExact(db, compiled.Query)
	if err != nil {
		panic(err)
	}
	for _, g := range compiled.Present(res) {
		fmt.Printf("%s %v\n", g.Key[0].S, g.Vals[0])
	}
	// Output:
	// west 30
	// east 12
	// north 1
}

func mustParse(sql string) *sqlparse.SelectStmt {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		panic(err)
	}
	return stmt
}
