package icicles

import (
	"math"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/randx"
)

// hotColdDB: a region column with one dominant value and several small ones.
func hotColdDB(n int) *engine.Database {
	region := engine.NewColumn("region", engine.String)
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", region, m)
	rng := randx.New(41)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.92 {
			region.AppendString("hot")
		} else {
			region.AppendString("cold" + string(rune('0'+rng.Intn(5))))
		}
		m.AppendInt(int64(rng.Intn(30)) + 1)
		fact.EndRow()
	}
	return engine.MustNewDatabase("hotcold", fact)
}

func coldQuery() *engine.Query {
	return &engine.Query{
		GroupBy: []string{"region"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
		Where: []engine.Predicate{engine.NewIn("region",
			engine.StringVal("cold0"), engine.StringVal("cold1"),
			engine.StringVal("cold2"), engine.StringVal("cold3"),
			engine.StringVal("cold4"))},
	}
}

func TestSelfTuningImprovesOnObservedWorkload(t *testing.T) {
	db := hotColdDB(30000)
	exact, _ := engine.ExecuteExact(db, coldQuery())

	relErrOver := func(seedBase int64, tuned bool) float64 {
		var sum float64
		const trials = 20
		for s := int64(0); s < trials; s++ {
			ic, err := New(db, Config{Rate: 0.01, Seed: seedBase + s})
			if err != nil {
				t.Fatal(err)
			}
			if tuned {
				for i := 0; i < 3; i++ {
					if err := ic.Observe(coldQuery()); err != nil {
						t.Fatal(err)
					}
				}
				if err := ic.Retune(); err != nil {
					t.Fatal(err)
				}
			}
			ans, err := ic.Answer(coldQuery())
			if err != nil {
				t.Fatal(err)
			}
			a, err := metrics.Compare(exact, ans.Result, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += a.RelErr
		}
		return sum / trials
	}

	before := relErrOver(100, false)
	after := relErrOver(100, true)
	if after >= before {
		t.Errorf("self-tuning did not help: before %.4f, after %.4f", before, after)
	}
}

func TestUnbiasedAfterTuning(t *testing.T) {
	db := hotColdDB(20000)
	q := &engine.Query{GroupBy: []string{"region"}, Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "m"}}}
	exact, _ := engine.ExecuteExact(db, q)
	key := engine.EncodeKey([]engine.Value{engine.StringVal("hot")})
	truth := exact.Group(key).Vals[0]
	var sum float64
	const trials = 40
	for s := int64(0); s < trials; s++ {
		ic, err := New(db, Config{Rate: 0.03, Seed: 500 + s})
		if err != nil {
			t.Fatal(err)
		}
		// Tune toward the cold regions, then estimate the hot one: the HT
		// weights must keep it unbiased.
		ic.Observe(coldQuery())
		ic.Retune()
		ans, err := ic.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := ans.Result.Group(key); g != nil {
			sum += g.Vals[0]
		}
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.08 {
		t.Errorf("mean estimate %g vs truth %g", mean, truth)
	}
}

func TestDecayForgetsStaleWorkload(t *testing.T) {
	db := hotColdDB(5000)
	ic, err := New(db, Config{Rate: 0.02, Decay: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ic.Observe(coldQuery())
	// Many retunes with no fresh observations: usage decays toward zero, so
	// the sample drifts back toward uniform (smoothing dominates).
	for i := 0; i < 12; i++ {
		if err := ic.Retune(); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range ic.usage {
		if u > 0.01 {
			t.Fatalf("usage did not decay: %g", u)
		}
	}
	if ic.Tunes() != 13 { // 1 initial + 12
		t.Errorf("tunes = %d", ic.Tunes())
	}
}

func TestValidation(t *testing.T) {
	db := hotColdDB(100)
	for _, cfg := range []Config{{Rate: 0}, {Rate: 1.5}, {Rate: 0.1, Decay: 1.5}} {
		if _, err := New(db, cfg); err == nil {
			t.Errorf("config %+v not rejected", cfg)
		}
	}
	empty := engine.MustNewDatabase("e", engine.NewTable("f", engine.NewColumn("region", engine.String)))
	if _, err := New(empty, Config{Rate: 0.1}); err == nil {
		t.Error("empty database not rejected")
	}
	ic, err := New(db, Config{Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	bad := &engine.Query{GroupBy: []string{"zzz"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	if err := ic.Observe(bad); err == nil {
		t.Error("invalid observed query not rejected")
	}
}

func TestSampleSizeStable(t *testing.T) {
	db := hotColdDB(20000)
	ic, err := New(db, Config{Rate: 0.02, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.02 * 20000
	for i := 0; i < 4; i++ {
		got := float64(ic.SampleRows())
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("tune %d: sample rows %g, want ~%g", i, got, want)
		}
		ic.Observe(coldQuery())
		ic.Retune()
	}
	if ic.SampleBytes() <= 0 {
		t.Error("SampleBytes not positive")
	}
}
