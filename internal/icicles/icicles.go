// Package icicles implements self-tuning samples in the spirit of [Ganti,
// Lee, Ramakrishnan — VLDB 2000], the second workload-based baseline of §2:
// samples that "adapt to the query workload" as it arrives, instead of being
// fixed at pre-processing time.
//
// The icicle starts as a uniform sample. Each observed query increments a
// per-tuple usage count over the base data; Retune then redraws the sample
// by Poisson sampling with inclusion probability proportional to usage (plus
// smoothing), carrying Horvitz-Thompson weights so every answer stays
// unbiased. Usage counts decay on each retune, letting the sample follow a
// drifting workload — the property that distinguishes icicles from the
// one-shot weighted sample of internal/weighted.
//
// Unlike every other Prepared in this repository, an icicle mutates state
// after pre-processing: Observe updates usage counts and Retune swaps the
// sample table. A mutex guards that state — Answer snapshots the current
// table under the lock and then executes lock-free — so concurrent use is
// safe, with Observe/Retune as the serialisation points. ARCHITECTURE.md's
// concurrency model calls this out as the one exception to the
// immutable-after-preprocessing rule.
package icicles

import (
	"fmt"
	"sync"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
)

// Config parameterises the self-tuning sample.
type Config struct {
	// Rate is the expected sample size as a fraction of the database.
	Rate float64
	// Smoothing keeps unqueried tuples sampleable (zero means 0.25).
	Smoothing float64
	// Decay multiplies usage counts at each Retune, discounting stale
	// workload signal (zero means 0.5; 1 disables decay).
	Decay float64
	// ConfidenceLevel is the nominal CI coverage; zero means 0.95.
	ConfidenceLevel float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Smoothing == 0 {
		c.Smoothing = 0.25
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	return c
}

// Icicle is a self-tuning sample. It implements core.Prepared; Observe and
// Retune mutate it as the workload arrives. All methods are safe for
// concurrent use.
type Icicle struct {
	mu    sync.Mutex
	db    *engine.Database
	cfg   Config
	rng   interface{ Float64() float64 }
	usage []float64
	table *engine.Table
	tunes int
}

// New builds an icicle over db, initially a uniform sample (every tuple's
// usage starts equal).
func New(db *engine.Database, cfg Config) (*Icicle, error) {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("icicles: rate %g out of (0,1]", cfg.Rate)
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		return nil, fmt.Errorf("icicles: decay %g out of (0,1]", cfg.Decay)
	}
	if db.NumRows() == 0 {
		return nil, fmt.Errorf("icicles: database %q is empty", db.Name)
	}
	ic := &Icicle{db: db, cfg: cfg, usage: make([]float64, db.NumRows())}
	if err := ic.Retune(); err != nil {
		return nil, err
	}
	return ic, nil
}

// Observe folds one query's footprint into the usage counts. It does not
// redraw the sample; call Retune (typically after a batch) for that.
func (ic *Icicle) Observe(q *engine.Query) error {
	if err := q.Validate(ic.db); err != nil {
		return fmt.Errorf("icicles: %w", err)
	}
	type boundPred struct {
		acc engine.ColumnAccessor
		p   engine.Predicate
	}
	preds := make([]boundPred, len(q.Where))
	for i, p := range q.Where {
		acc, err := ic.db.Accessor(p.Column())
		if err != nil {
			return err
		}
		preds[i] = boundPred{acc, p}
	}
	ic.mu.Lock()
	defer ic.mu.Unlock()
	n := ic.db.NumRows()
rows:
	for row := 0; row < n; row++ {
		for _, bp := range preds {
			if !bp.p.Matches(bp.acc.Value(row)) {
				continue rows
			}
		}
		ic.usage[row]++
	}
	return nil
}

// Retune redraws the sample from the current usage counts and decays them.
func (ic *Icicle) Retune() error {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	n := ic.db.NumRows()
	weights := make([]float64, n)
	for i, u := range ic.usage {
		weights[i] = u + ic.cfg.Smoothing
	}
	rng := randx.New(ic.cfg.Seed + int64(ic.tunes))
	rows, invProb := sample.PoissonByWeight(rng, weights, ic.cfg.Rate*float64(n))
	if len(rows) == 0 {
		rows = []int{rng.Intn(n)}
		invProb = []float64{float64(n)}
	}
	ic.table = ic.db.Flatten(fmt.Sprintf("icicle_%d", ic.tunes), rows, nil, invProb)
	ic.tunes++
	for i := range ic.usage {
		ic.usage[i] *= ic.cfg.Decay
	}
	return nil
}

// Tunes reports how many times the sample has been redrawn.
func (ic *Icicle) Tunes() int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.tunes
}

// Answer implements core.Prepared.
func (ic *Icicle) Answer(q *engine.Query) (*core.Answer, error) {
	ic.mu.Lock()
	tbl := ic.table
	level := ic.cfg.ConfidenceLevel
	ic.mu.Unlock()

	start := time.Now()
	plan := &core.RewritePlan{Query: q, Steps: []core.RewriteStep{core.StepFor(tbl, 1)}}
	res, rows, err := core.ExecutePlan(plan)
	if err != nil {
		return nil, err
	}
	return &core.Answer{
		Result:    res,
		Intervals: core.ConfidenceIntervals(res, level),
		RowsRead:  rows,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
	}, nil
}

// SampleRows implements core.Prepared.
func (ic *Icicle) SampleRows() int64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return int64(ic.table.NumRows())
}

// SampleBytes implements core.Prepared.
func (ic *Icicle) SampleBytes() int64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.table.ApproxBytes()
}
