// Package uniform implements the plain uniform-random-sampling AQP baseline
// the paper compares against throughout §5: one reservoir sample of the
// database stored as a flat join synopsis, with aggregates scaled by the
// inverse sampling rate.
package uniform

import (
	"fmt"
	"sort"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
)

// Config parameterises the uniform baseline.
type Config struct {
	// Rate is the sampling rate as a fraction of the database. For matched
	// comparisons against small group sampling with g grouping columns and
	// allocation ratio γ, experiments use (1+γ·g)·r (§5.3.1).
	Rate float64
	// Seed drives the reservoir.
	Seed int64
	// ConfidenceLevel is the nominal CI coverage; zero means 0.95.
	ConfidenceLevel float64
	// Label overrides the strategy name (to register several rates at once).
	Label string
}

// Strategy is the uniform sampling baseline.
type Strategy struct {
	cfg Config
}

// New returns the strategy.
func New(cfg Config) *Strategy { return &Strategy{cfg: cfg} }

// Name implements core.Strategy.
func (s *Strategy) Name() string {
	if s.cfg.Label != "" {
		return s.cfg.Label
	}
	return "uniform"
}

// Preprocess implements core.Strategy.
func (s *Strategy) Preprocess(db *engine.Database) (core.Prepared, error) {
	if s.cfg.Rate <= 0 || s.cfg.Rate > 1 {
		return nil, fmt.Errorf("uniform: rate %g out of (0,1]", s.cfg.Rate)
	}
	if db.NumRows() == 0 {
		return nil, fmt.Errorf("uniform: database %q is empty", db.Name)
	}
	n := db.NumRows()
	target := int(s.cfg.Rate * float64(n))
	if target < 1 {
		target = 1
	}
	res := sample.NewReservoir(target, randx.New(s.cfg.Seed))
	for i := 0; i < n; i++ {
		res.Offer(i)
	}
	rows := append([]int(nil), res.Items()...)
	sort.Ints(rows)
	tbl := db.Flatten("u_sample", rows, nil, nil)
	return &prepared{
		table: tbl,
		scale: float64(n) / float64(len(rows)),
		level: s.cfg.ConfidenceLevel,
	}, nil
}

type prepared struct {
	table *engine.Table
	scale float64
	level float64
}

// Answer implements core.Prepared.
func (p *prepared) Answer(q *engine.Query) (*core.Answer, error) {
	start := time.Now()
	plan := &core.RewritePlan{
		Query: q,
		Steps: []core.RewriteStep{core.StepFor(p.table, p.scale)},
	}
	res, rows, err := core.ExecutePlan(plan)
	if err != nil {
		return nil, err
	}
	return &core.Answer{
		Result:    res,
		Intervals: core.ConfidenceIntervals(res, p.level),
		RowsRead:  rows,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
	}, nil
}

// SampleRows implements core.Prepared.
func (p *prepared) SampleRows() int64 { return int64(p.table.NumRows()) }

// SampleBytes implements core.Prepared.
func (p *prepared) SampleBytes() int64 { return p.table.ApproxBytes() }
