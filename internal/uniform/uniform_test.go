package uniform

import (
	"math"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// testDB returns a single-table database: column g uniform over 10 values,
// column m = 1 for every row (so SUM(m) == COUNT).
func testDB(n int) *engine.Database {
	g := engine.NewColumn("g", engine.Int)
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", g, m)
	rng := randx.New(99)
	for i := 0; i < n; i++ {
		g.AppendInt(int64(rng.Intn(10)))
		m.AppendInt(1)
		fact.EndRow()
	}
	return engine.MustNewDatabase("t", fact)
}

func TestPreprocessSizeAndScale(t *testing.T) {
	db := testDB(10000)
	p, err := New(Config{Rate: 0.02, Seed: 1}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	if p.SampleRows() != 200 {
		t.Errorf("sample rows = %d, want 200", p.SampleRows())
	}
	if p.SampleBytes() <= 0 {
		t.Error("sample bytes not positive")
	}
}

func TestAnswerUnbiased(t *testing.T) {
	db := testDB(20000)
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	key := engine.EncodeKey([]engine.Value{engine.IntVal(3)})
	truth := exact.Group(key).Vals[0]
	var sum float64
	const trials = 50
	for seed := int64(0); seed < trials; seed++ {
		p, err := New(Config{Rate: 0.05, Seed: seed}).Preprocess(db)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := ans.Result.Group(key); g != nil {
			sum += g.Vals[0]
		}
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.05 {
		t.Errorf("mean estimate %g vs truth %g", mean, truth)
	}
}

func TestRateOneIsExact(t *testing.T) {
	db := testDB(3000)
	p, err := New(Config{Rate: 1, Seed: 2}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range exact.Keys() {
		eg, ag := exact.Group(k), ans.Result.Group(k)
		if ag == nil {
			t.Fatalf("missing group %v", eg.Key)
		}
		for i := range eg.Vals {
			if math.Abs(eg.Vals[i]-ag.Vals[i]) > 1e-9 {
				t.Errorf("group %v agg %d: %g vs %g", eg.Key, i, eg.Vals[i], ag.Vals[i])
			}
		}
	}
}

func TestIntervalsPresent(t *testing.T) {
	db := testDB(10000)
	p, err := New(Config{Rate: 0.05, Seed: 3}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ans.Result.Keys() {
		iv := ans.Interval(k, 0)
		if iv.Width() <= 0 {
			t.Errorf("group %v has degenerate CI %+v", ans.Result.Group(k).Key, iv)
		}
		if iv.Lo < 0 {
			t.Errorf("COUNT CI lower bound negative: %+v", iv)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	db := testDB(100)
	for _, rate := range []float64{0, -0.5, 1.1} {
		if _, err := New(Config{Rate: rate}).Preprocess(db); err == nil {
			t.Errorf("rate %g not rejected", rate)
		}
	}
}

func TestNameAndLabel(t *testing.T) {
	if got := New(Config{}).Name(); got != "uniform" {
		t.Errorf("Name = %q", got)
	}
	if got := New(Config{Label: "uniform@2%"}).Name(); got != "uniform@2%" {
		t.Errorf("labelled Name = %q", got)
	}
}

func TestTinyRateStillSamples(t *testing.T) {
	db := testDB(100)
	p, err := New(Config{Rate: 0.001, Seed: 4}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	if p.SampleRows() < 1 {
		t.Error("sample is empty")
	}
}

func TestEmptyDatabaseRejected(t *testing.T) {
	db := engine.MustNewDatabase("empty", engine.NewTable("f", engine.NewColumn("g", engine.Int)))
	if _, err := New(Config{Rate: 0.1}).Preprocess(db); err == nil {
		t.Error("empty database not rejected")
	}
}
