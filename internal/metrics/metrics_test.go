package metrics

import (
	"math"
	"testing"

	"dynsample/internal/engine"
)

func mkResult(counts map[int64]float64) *engine.Result {
	r := engine.NewResult([]string{"g"}, []engine.Aggregate{{Kind: engine.Count}})
	for k, v := range counts {
		key := engine.EncodeKey([]engine.Value{engine.IntVal(k)})
		kv := k
		g := r.Upsert(key, func() []engine.Value { return []engine.Value{engine.IntVal(kv)} })
		g.Vals[0] = v
	}
	return r
}

func TestCompareExactMatch(t *testing.T) {
	exact := mkResult(map[int64]float64{1: 10, 2: 20})
	acc, err := Compare(exact, mkResult(map[int64]float64{1: 10, 2: 20}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.PctGroups != 0 || acc.RelErr != 0 || acc.SqRelErr != 0 {
		t.Errorf("perfect match scored %+v", acc)
	}
	if acc.Groups != 2 || acc.Missed != 0 {
		t.Errorf("counts wrong: %+v", acc)
	}
}

func TestCompareMissedGroupsScoreFullError(t *testing.T) {
	// Definition 4.2: each omitted group contributes relative error 1.
	exact := mkResult(map[int64]float64{1: 10, 2: 20, 3: 30, 4: 40})
	approx := mkResult(map[int64]float64{1: 10, 2: 20})
	acc, err := Compare(exact, approx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.PctGroups != 50 {
		t.Errorf("PctGroups = %g, want 50", acc.PctGroups)
	}
	if math.Abs(acc.RelErr-0.5) > 1e-12 { // (0+0+1+1)/4
		t.Errorf("RelErr = %g, want 0.5", acc.RelErr)
	}
	if math.Abs(acc.SqRelErr-0.5) > 1e-12 {
		t.Errorf("SqRelErr = %g, want 0.5", acc.SqRelErr)
	}
	if acc.Missed != 2 {
		t.Errorf("Missed = %d", acc.Missed)
	}
}

func TestCompareValueErrors(t *testing.T) {
	exact := mkResult(map[int64]float64{1: 100, 2: 200})
	approx := mkResult(map[int64]float64{1: 110, 2: 150}) // rel errs 0.1 and 0.25
	acc, err := Compare(exact, approx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.RelErr-0.175) > 1e-12 {
		t.Errorf("RelErr = %g, want 0.175", acc.RelErr)
	}
	want := (0.01 + 0.0625) / 2
	if math.Abs(acc.SqRelErr-want) > 1e-12 {
		t.Errorf("SqRelErr = %g, want %g", acc.SqRelErr, want)
	}
}

func TestCompareHandbookExample(t *testing.T) {
	// Example 3.1 from the paper: 90 Stereo + 10 TV tuples; a 10% uniform
	// sample that caught 0 TV tuples misses the TV group entirely.
	exact := mkResult(map[int64]float64{0: 90, 1: 10})
	approx := mkResult(map[int64]float64{0: 90}) // TV group absent
	acc, err := Compare(exact, approx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.PctGroups != 50 {
		t.Errorf("PctGroups = %g", acc.PctGroups)
	}
	if math.Abs(acc.RelErr-0.5) > 1e-12 {
		t.Errorf("RelErr = %g", acc.RelErr)
	}
}

func TestCompareZeroExactValue(t *testing.T) {
	exact := mkResult(map[int64]float64{1: 0, 2: 10})
	// Matching zero: no error. Non-zero estimate of zero group: full error.
	accOK, err := Compare(exact, mkResult(map[int64]float64{1: 0, 2: 10}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if accOK.RelErr != 0 {
		t.Errorf("zero-zero RelErr = %g", accOK.RelErr)
	}
	accBad, err := Compare(exact, mkResult(map[int64]float64{1: 5, 2: 10}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(accBad.RelErr-0.5) > 1e-12 {
		t.Errorf("zero-nonzero RelErr = %g, want 0.5", accBad.RelErr)
	}
}

func TestCompareEmptyExact(t *testing.T) {
	acc, err := Compare(mkResult(nil), mkResult(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Groups != 0 || acc.RelErr != 0 {
		t.Errorf("empty compare = %+v", acc)
	}
}

func TestCompareErrors(t *testing.T) {
	exact := mkResult(map[int64]float64{1: 1})
	if _, err := Compare(exact, exact, 1); err == nil {
		t.Error("agg index out of range not rejected")
	}
	other := engine.NewResult(nil, []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Count}})
	if _, err := Compare(exact, other, 0); err == nil {
		t.Error("shape mismatch not rejected")
	}
}

func TestMean(t *testing.T) {
	accs := []Accuracy{
		{PctGroups: 10, RelErr: 0.2, SqRelErr: 0.04, Groups: 5, Missed: 1},
		{PctGroups: 30, RelErr: 0.4, SqRelErr: 0.16, Groups: 10, Missed: 3},
	}
	m := Mean(accs)
	if m.PctGroups != 20 || math.Abs(m.RelErr-0.3) > 1e-12 || math.Abs(m.SqRelErr-0.1) > 1e-12 {
		t.Errorf("Mean = %+v", m)
	}
	if m.Groups != 15 || m.Missed != 4 {
		t.Errorf("Mean totals = %+v", m)
	}
	if z := Mean(nil); z.RelErr != 0 {
		t.Errorf("Mean(nil) = %+v", z)
	}
}

func TestPerGroupSelectivity(t *testing.T) {
	r := mkResult(map[int64]float64{1: 1, 2: 1})
	r.RowsMatched = 200
	// 200 matched rows over 2 groups in a 10000-row DB: avg group is 1%.
	if got := PerGroupSelectivity(r, 10000); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("PerGroupSelectivity = %g, want 0.01", got)
	}
	if got := PerGroupSelectivity(mkResult(nil), 10000); got != 0 {
		t.Errorf("empty selectivity = %g", got)
	}
}
