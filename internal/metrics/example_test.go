package metrics_test

import (
	"fmt"

	"dynsample/internal/engine"
	"dynsample/internal/metrics"
)

// ExampleCompare scores an approximate answer against the exact one using
// the paper's Definitions 4.1-4.2: the missed group counts as 100% relative
// error.
func ExampleCompare() {
	mk := func(counts map[string]float64) *engine.Result {
		r := engine.NewResult([]string{"g"}, []engine.Aggregate{{Kind: engine.Count}})
		for k, v := range counts {
			key := engine.EncodeKey([]engine.Value{engine.StringVal(k)})
			kv := k
			g := r.Upsert(key, func() []engine.Value { return []engine.Value{engine.StringVal(kv)} })
			g.Vals[0] = v
		}
		return r
	}
	exact := mk(map[string]float64{"a": 100, "b": 50, "c": 10})
	approx := mk(map[string]float64{"a": 110, "b": 50}) // c missed, a off by 10%

	acc, err := metrics.Compare(exact, approx, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("RelErr=%.4f PctGroups=%.1f%% missed=%d of %d\n",
		acc.RelErr, acc.PctGroups, acc.Missed, acc.Groups)
	// Output:
	// RelErr=0.3667 PctGroups=33.3% missed=1 of 3
}
