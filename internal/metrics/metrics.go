// Package metrics implements the accuracy metrics of §4.3: the percentage of
// groups missed by an approximate answer (Definition 4.1), the average
// relative error (Definition 4.2) and the average squared relative error
// (Definition 4.3). Groups of the exact answer that are missing from the
// approximate answer contribute 100% relative error; spurious groups cannot
// occur with sampling-based estimators (the paper assumes G' ⊆ G) but are
// counted defensively as extra misses if present.
package metrics

import (
	"fmt"
	"math"

	"dynsample/internal/engine"
)

// Accuracy summarises how well an approximate result matches the exact one
// for a single aggregate of a single query.
type Accuracy struct {
	// PctGroups is the percentage (0-100) of exact-answer groups absent from
	// the approximate answer (Definition 4.1).
	PctGroups float64
	// RelErr is the average relative error (Definition 4.2).
	RelErr float64
	// SqRelErr is the average squared relative error (Definition 4.3).
	SqRelErr float64
	// Groups is n, the number of groups in the exact answer.
	Groups int
	// Missed is n-m, the number of exact groups missing from the approximation.
	Missed int
}

// Compare evaluates an approximate result against the exact result for the
// aggregate at index agg. Groups whose exact aggregate value is zero are
// skipped in the relative-error averages when the estimate is also zero, and
// counted as 100% error otherwise (relative error against zero is undefined;
// COUNT and SUM over positive measures make this a non-issue in practice,
// matching the paper's setup).
func Compare(exact, approx *engine.Result, agg int) (Accuracy, error) {
	if agg < 0 || agg >= len(exact.Aggs) {
		return Accuracy{}, fmt.Errorf("metrics: aggregate index %d out of range", agg)
	}
	if len(exact.Aggs) != len(approx.Aggs) {
		return Accuracy{}, fmt.Errorf("metrics: result shapes differ (%d vs %d aggregates)", len(exact.Aggs), len(approx.Aggs))
	}
	n := exact.NumGroups()
	if n == 0 {
		return Accuracy{}, nil
	}
	var (
		missed     int
		sumRel     float64
		sumSqRel   float64
		comparable int
	)
	for _, k := range exact.Keys() {
		eg := exact.Group(k)
		ag := approx.Group(k)
		if ag == nil {
			missed++
			sumRel += 1
			sumSqRel += 1
			continue
		}
		x := eg.Vals[agg]
		xhat := ag.Vals[agg]
		if x == 0 {
			if xhat != 0 {
				sumRel += 1
				sumSqRel += 1
			}
			comparable++
			continue
		}
		rel := math.Abs(x-xhat) / math.Abs(x)
		sumRel += rel
		sumSqRel += rel * rel
		comparable++
	}
	return Accuracy{
		PctGroups: 100 * float64(missed) / float64(n),
		RelErr:    sumRel / float64(n),
		SqRelErr:  sumSqRel / float64(n),
		Groups:    n,
		Missed:    missed,
	}, nil
}

// Mean averages a set of per-query accuracies, as the experiments do over
// their generated workloads ("we ... averaged the running time as well as
// the accuracy", §5.2.3).
func Mean(accs []Accuracy) Accuracy {
	if len(accs) == 0 {
		return Accuracy{}
	}
	var out Accuracy
	for _, a := range accs {
		out.PctGroups += a.PctGroups
		out.RelErr += a.RelErr
		out.SqRelErr += a.SqRelErr
		out.Groups += a.Groups
		out.Missed += a.Missed
	}
	k := float64(len(accs))
	out.PctGroups /= k
	out.RelErr /= k
	out.SqRelErr /= k
	return out
}

// PerGroupSelectivity returns the average group size of the exact result as
// a fraction of the database size — the x-axis of Figure 5 ("the per group
// selectivity of a query is defined as the average group size ... in the
// query result").
func PerGroupSelectivity(exact *engine.Result, dbRows int) float64 {
	if exact.NumGroups() == 0 || dbRows == 0 {
		return 0
	}
	return float64(exact.RowsMatched) / float64(exact.NumGroups()) / float64(dbRows)
}
