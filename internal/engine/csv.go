package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV with a header row. String values are
// written verbatim; numeric values in their shortest decimal form.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns() {
			switch c.Type {
			case Int:
				rec[j] = strconv.FormatInt(c.Int(i), 10)
			case Float:
				rec[j] = strconv.FormatFloat(c.Float(i), 'g', -1, 64)
			default:
				rec[j] = c.Value(i).S
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a table from CSV with a header row, inferring each column's
// type: a column whose every value parses as an integer is Int, else Float
// if every value parses as a number, else String.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: reading CSV header: %w", err)
	}
	names := append([]string(nil), header...)

	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("engine: reading CSV: %w", err)
		}
		rows = append(rows, append([]string(nil), rec...))
	}

	types := make([]Type, len(names))
	for j := range names {
		types[j] = inferType(rows, j)
	}
	cols := make([]*Column, len(names))
	for j, n := range names {
		cols[j] = NewColumn(n, types[j])
	}
	tbl := NewTable(name, cols...)
	for _, rec := range rows {
		for j, s := range rec {
			switch types[j] {
			case Int:
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("engine: bad int %q in column %q", s, names[j])
				}
				cols[j].AppendInt(v)
			case Float:
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, fmt.Errorf("engine: bad float %q in column %q", s, names[j])
				}
				cols[j].AppendFloat(v)
			default:
				cols[j].AppendString(s)
			}
		}
		tbl.EndRow()
	}
	return tbl, nil
}

func inferType(rows [][]string, col int) Type {
	if len(rows) == 0 {
		return String
	}
	isInt, isFloat := true, true
	for _, rec := range rows {
		s := rec[col]
		if isInt {
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				isInt = false
			}
		}
		if !isInt && isFloat {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				isFloat = false
				break
			}
		}
	}
	switch {
	case isInt:
		return Int
	case isFloat:
		return Float
	default:
		return String
	}
}
