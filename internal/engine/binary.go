package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dynsample/internal/bitmask"
)

// Binary table serialization: sample tables are "stored in the database
// along with metadata" (§3.1); this package's stand-in for durable storage
// is a compact little-endian binary format, so pre-processed sample sets can
// be saved once and reloaded by later sessions (see core.SaveSmallGroup).

const tableMagic = "DSTB"

// WriteBinary writes the table in the binary sample-table format, including
// any bitmask and weight side arrays.
func WriteBinary(t *Table, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	writeString(bw, t.Name)
	writeU32(bw, uint32(t.NumRows()))
	writeU32(bw, uint32(t.NumCols()))
	for _, c := range t.Columns() {
		writeString(bw, c.Name)
		bw.WriteByte(byte(c.Type))
		switch c.Type {
		case Int:
			for _, v := range c.ints {
				writeU64(bw, uint64(v))
			}
		case Float:
			for _, v := range c.floats {
				writeU64(bw, math.Float64bits(v))
			}
		default:
			writeU32(bw, uint32(len(c.dict)))
			for _, s := range c.dict {
				writeString(bw, s)
			}
			for _, code := range c.codes {
				writeU32(bw, uint32(code))
			}
		}
	}
	if t.Masks != nil {
		bw.WriteByte(1)
		width := 0
		if len(t.Masks) > 0 {
			width = t.Masks[0].Width()
		}
		writeU32(bw, uint32(width))
		for _, m := range t.Masks {
			for _, b := range m.Bits() {
				writeU32(bw, uint32(b))
			}
			writeU32(bw, ^uint32(0)) // row terminator
		}
	} else {
		bw.WriteByte(0)
	}
	if t.Weights != nil {
		bw.WriteByte(1)
		for _, v := range t.Weights {
			writeU64(bw, math.Float64bits(v))
		}
	} else {
		bw.WriteByte(0)
	}
	return bw.Flush()
}

// ReadBinary reads a table written by WriteBinary. When r is already a
// *bufio.Reader it is used directly, so multiple tables can be read back to
// back from one stream without losing buffered bytes.
func ReadBinary(r io.Reader) (*Table, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("engine: reading table header: %w", err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("engine: bad table magic %q", magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	rows, err := readU32(br)
	if err != nil {
		return nil, err
	}
	ncols, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, fmt.Errorf("engine: unreasonable column count %d", ncols)
	}
	if ncols == 0 && rows > 0 {
		return nil, fmt.Errorf("engine: %d rows with no columns", rows)
	}
	// Never trust the header for allocation sizes: a corrupted or hostile
	// stream could claim billions of rows. Capacity starts bounded and the
	// slices grow only as data actually arrives.
	capHint := int(rows)
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	cols := make([]*Column, ncols)
	seen := make(map[string]bool, ncols)
	for j := range cols {
		cname, err := readString(br)
		if err != nil {
			return nil, err
		}
		if seen[cname] {
			return nil, fmt.Errorf("engine: duplicate column %q in stream", cname)
		}
		seen[cname] = true
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if tb > byte(String) {
			return nil, fmt.Errorf("engine: bad column type %d", tb)
		}
		c := NewColumn(cname, Type(tb))
		switch c.Type {
		case Int:
			c.ints = make([]int64, 0, capHint)
			for i := uint32(0); i < rows; i++ {
				v, err := readU64(br)
				if err != nil {
					return nil, err
				}
				c.ints = append(c.ints, int64(v))
			}
		case Float:
			c.floats = make([]float64, 0, capHint)
			for i := uint32(0); i < rows; i++ {
				v, err := readU64(br)
				if err != nil {
					return nil, err
				}
				c.floats = append(c.floats, math.Float64frombits(v))
			}
		default:
			dn, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if dn > rows && dn > 1<<16 {
				return nil, fmt.Errorf("engine: unreasonable dictionary size %d", dn)
			}
			for i := uint32(0); i < dn; i++ {
				s, err := readString(br)
				if err != nil {
					return nil, err
				}
				c.dict = append(c.dict, s)
				c.dictIx[s] = int32(i)
			}
			c.codes = make([]int32, 0, capHint)
			for i := uint32(0); i < rows; i++ {
				v, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if v >= dn {
					return nil, fmt.Errorf("engine: dictionary code %d out of range", v)
				}
				c.codes = append(c.codes, int32(v))
			}
		}
		cols[j] = c
	}
	t := NewTable(name, cols...)

	hasMasks, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasMasks == 1 {
		width, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if width > 1<<20 {
			return nil, fmt.Errorf("engine: unreasonable mask width %d", width)
		}
		t.Masks = make([]bitmask.Mask, 0, capHint)
		for i := uint32(0); i < rows; i++ {
			m := bitmask.New(int(width))
			for {
				b, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if b == ^uint32(0) {
					break
				}
				if b >= width {
					return nil, fmt.Errorf("engine: mask bit %d out of width %d", b, width)
				}
				m.Set(int(b))
			}
			t.Masks = append(t.Masks, m)
		}
	}
	hasWeights, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasWeights == 1 {
		t.Weights = make([]float64, 0, capHint)
		for i := uint32(0); i < rows; i++ {
			v, err := readU64(br)
			if err != nil {
				return nil, err
			}
			t.Weights = append(t.Weights, math.Float64frombits(v))
		}
	}
	return t, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("engine: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
