package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndFloat(t *testing.T) {
	if v := IntVal(7); v.T != Int || v.Float() != 7 {
		t.Errorf("IntVal: %+v", v)
	}
	if v := FloatVal(2.5); v.T != Float || v.Float() != 2.5 {
		t.Errorf("FloatVal: %+v", v)
	}
	if v := StringVal("x"); v.T != String || v.Float() != 0 {
		t.Errorf("StringVal: %+v", v)
	}
}

func TestValueLess(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(2), true},
		{IntVal(2), IntVal(1), false},
		{IntVal(1), IntVal(1), false},
		{FloatVal(1.5), FloatVal(2.5), true},
		{StringVal("a"), StringVal("b"), true},
		{StringVal("b"), StringVal("a"), false},
		{IntVal(99), FloatVal(-1), true}, // cross-type: Int < Float by Type order
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if s := IntVal(-3).String(); s != "-3" {
		t.Errorf("IntVal string %q", s)
	}
	if s := FloatVal(2.5).String(); s != "2.5" {
		t.Errorf("FloatVal string %q", s)
	}
	if s := StringVal("TV").String(); s != "'TV'" {
		t.Errorf("StringVal string %q", s)
	}
}

func TestEncodeDecodeKeyRoundTrip(t *testing.T) {
	vals := []Value{IntVal(-5), StringVal("hello"), FloatVal(3.25), StringVal(""), IntVal(0)}
	got := DecodeKey(EncodeKey(vals))
	if len(got) != len(vals) {
		t.Fatalf("round trip gave %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Tuples that could collide under naive string concatenation.
	a := EncodeKey([]Value{StringVal("ab"), StringVal("c")})
	b := EncodeKey([]Value{StringVal("a"), StringVal("bc")})
	if a == b {
		t.Fatal("EncodeKey not injective on string splits")
	}
	c := EncodeKey([]Value{IntVal(1), IntVal(2)})
	d := EncodeKey([]Value{IntVal(1), IntVal(2), IntVal(0)})
	if c == d {
		t.Fatal("EncodeKey not injective on arity")
	}
}

func TestEncodeKeyRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(i int64, fl float64, s string) bool {
		vals := []Value{IntVal(i), FloatVal(fl), StringVal(s)}
		got := DecodeKey(EncodeKey(vals))
		return len(got) == 3 && got[0] == vals[0] && got[1] == vals[1] && got[2] == vals[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
