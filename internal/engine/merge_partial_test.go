package engine

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"dynsample/internal/bitmask"
)

// This file is the partial-shard property suite for Result.Merge: the
// cluster coordinator merges whatever subset of shard partials survived a
// fan-out, in whatever order responses arrived, so Merge must be
// order-independent and must never over-count when a shard is absent. The
// measures are integer-valued so every float sum is exact and permutation
// merges can be compared bit-for-bit.

// partialFixture holds one striped dataset: per-stripe rewrite partials
// (small-group branch + bitmask-excluded overall branch, i.e. the same
// UNION ALL algebra the planner emits) plus the stripes' raw row sets so a
// subset can be re-executed exactly for comparison.
type partialFixture struct {
	db         *Database
	query      *Query
	stripeRows [][]int   // fact-row indices per stripe
	partials   []*Result // per-stripe merged rewrite answer at sampling rate 1
}

// buildPartialFixture synthesises a skewed category column (a few heavy
// hitters plus rare singletons, the regime small-group sampling exists for),
// stripes the fact rows into `stripes` contiguous ranges, and computes each
// stripe's partial answer the way a shard would: an exact small-group branch
// over the rare rows merged with an overall branch that excludes those rows
// via the bitmask, so a row can never be counted by both branches.
func buildPartialFixture(t *testing.T, stripes int) *partialFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cat := NewColumn("cat", String)
	qty := NewColumn("qty", Int)
	fact := NewTable("sales", cat, qty)
	const rows = 600
	for i := 0; i < rows; i++ {
		var c string
		switch r := rng.Intn(100); {
		case r < 55:
			c = "alpha"
		case r < 85:
			c = "beta"
		case r < 95:
			c = "gamma"
		default:
			c = fmt.Sprintf("rare-%d", rng.Intn(12))
		}
		fact.AppendRow(StringVal(c), IntVal(int64(1+rng.Intn(9))))
	}
	db := MustNewDatabase("sales", fact)
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs:    []Aggregate{{Kind: Count}, {Kind: Sum, Col: "qty"}},
	}

	// Rare rows (categories under 20 occurrences) belong to the small-group
	// family; they carry mask bit 0 in the overall table.
	counts := map[string]int{}
	catAcc, err := db.Accessor("cat")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		counts[catAcc.Value(i).S]++
	}
	rare := func(i int) bool { return counts[catAcc.Value(i).S] < 20 }

	fx := &partialFixture{db: db, query: q}
	for s := 0; s < stripes; s++ {
		lo, hi := s*rows/stripes, (s+1)*rows/stripes
		var all, rareRows []int
		var masks []bitmask.Mask
		for i := lo; i < hi; i++ {
			all = append(all, i)
			m := bitmask.New(1)
			if rare(i) {
				m.Set(0)
				rareRows = append(rareRows, i)
			}
			masks = append(masks, m)
		}
		fx.stripeRows = append(fx.stripeRows, all)

		overall := db.Flatten(fmt.Sprintf("overall_%d", s), all, masks, nil)
		small := db.Flatten(fmt.Sprintf("small_%d", s), rareRows, nil, nil)

		part, err := Execute(small, q, ExecOptions{MarkExact: true})
		if err != nil {
			t.Fatal(err)
		}
		rest, err := Execute(overall, q, ExecOptions{ExcludeMask: bitmask.FromBits(1, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Merge(rest); err != nil {
			t.Fatal(err)
		}
		fx.partials = append(fx.partials, part)
	}
	return fx
}

// exactOver runs the query exactly over just the given stripes' rows.
func (fx *partialFixture) exactOver(t *testing.T, subset []int) *Result {
	t.Helper()
	var rows []int
	for _, s := range subset {
		rows = append(rows, fx.stripeRows[s]...)
	}
	flat := fx.db.Flatten("subset", rows, nil, nil)
	res, err := Execute(flat, fx.query, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mergeSubset merges the partials of the given stripes, in the given order,
// round-tripping each through the JSON wire format first — the same path a
// coordinator takes with shard responses.
func (fx *partialFixture) mergeSubset(t *testing.T, order []int) *Result {
	t.Helper()
	acc := NewResult(fx.query.GroupBy, fx.query.Aggs)
	for _, s := range order {
		raw, err := json.Marshal(fx.partials[s].Wire())
		if err != nil {
			t.Fatal(err)
		}
		var w ResultWire
		if err := json.Unmarshal(raw, &w); err != nil {
			t.Fatal(err)
		}
		part, err := ResultFromWire(&w)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// sameResult compares two results for exact equality of groups, values and
// exactness flags (measures are integers, so no tolerance is needed).
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("%s: %d groups, want %d", label, got.NumGroups(), want.NumGroups())
	}
	for _, k := range want.Keys() {
		wg, gg := want.Group(k), got.Group(k)
		if gg == nil {
			t.Fatalf("%s: group %q missing", label, k)
		}
		for i := range wg.Vals {
			if gg.Vals[i] != wg.Vals[i] {
				t.Errorf("%s: group %q agg %d = %v, want %v", label, k, i, gg.Vals[i], wg.Vals[i])
			}
		}
		if gg.RawRows != wg.RawRows {
			t.Errorf("%s: group %q rawRows = %d, want %d", label, k, gg.RawRows, wg.RawRows)
		}
	}
}

// TestMergePartialSubsetsNeverOverCount checks, for every non-empty subset
// of stripes, that merging just those partials equals an exact scan over
// just those stripes' rows: an absent shard removes exactly its contribution
// and the bitmask algebra never counts a surviving row twice.
func TestMergePartialSubsetsNeverOverCount(t *testing.T) {
	const stripes = 5
	fx := buildPartialFixture(t, stripes)
	for bits := 1; bits < 1<<stripes; bits++ {
		var subset []int
		for s := 0; s < stripes; s++ {
			if bits&(1<<s) != 0 {
				subset = append(subset, s)
			}
		}
		got := fx.mergeSubset(t, subset)
		want := fx.exactOver(t, subset)
		sameResult(t, fmt.Sprintf("subset %b", bits), got, want)
	}
}

// TestMergePartialOrderIndependence merges one subset under many random
// permutations; since the measures are integer-valued every permutation must
// be bit-identical, including all raw accumulators.
func TestMergePartialOrderIndependence(t *testing.T) {
	const stripes = 6
	fx := buildPartialFixture(t, stripes)
	subset := []int{0, 2, 3, 5}
	ref := fx.mergeSubset(t, subset)
	refJSON, err := json.Marshal(ref.Wire())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		perm := append([]int(nil), subset...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := fx.mergeSubset(t, perm)
		gotJSON, err := json.Marshal(got.Wire())
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(refJSON) {
			t.Fatalf("merge order %v differs from %v:\n%s\nvs\n%s", perm, subset, gotJSON, refJSON)
		}
	}
}

// TestMergePartialExactFlagSurvivesAbsence: a group answered exactly by every
// present shard stays exact when a shard that never saw the group is absent,
// and a group fed by both branches is not exact.
func TestMergePartialExactFlagSurvivesAbsence(t *testing.T) {
	fx := buildPartialFixture(t, 4)
	full := fx.mergeSubset(t, []int{0, 1, 2, 3})
	sawExact, sawEstimated := false, false
	for _, k := range full.Keys() {
		if full.Group(k).Exact {
			sawExact = true
		} else {
			sawEstimated = true
		}
	}
	if !sawExact || !sawEstimated {
		t.Fatalf("fixture should produce both exact and estimated groups (exact=%v estimated=%v)",
			sawExact, sawEstimated)
	}
	partial := fx.mergeSubset(t, []int{1, 3})
	for _, k := range partial.Keys() {
		g := partial.Group(k)
		if !g.Exact {
			continue
		}
		for _, s := range []int{1, 3} {
			if pg := fx.partials[s].Group(k); pg != nil && !pg.Exact {
				t.Errorf("group %q exact after merge but estimated in stripe %d", k, s)
			}
		}
	}
}
