package engine

import (
	"bytes"
	"testing"
)

// FuzzReadBinary asserts the sample-table decoder never panics and never
// accepts a corrupted stream that then breaks invariants: a successfully
// decoded table must be internally consistent and queryable.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(binaryFixture(), &seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("DSTB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded tables must be consistent: every column has NumRows rows,
		// side arrays (if present) match, and a scan succeeds.
		for _, c := range tbl.Columns() {
			if c.Len() != tbl.NumRows() {
				t.Fatalf("column %q has %d rows, table %d", c.Name, c.Len(), tbl.NumRows())
			}
		}
		if tbl.Masks != nil && len(tbl.Masks) != tbl.NumRows() {
			t.Fatalf("masks %d vs rows %d", len(tbl.Masks), tbl.NumRows())
		}
		if tbl.Weights != nil && len(tbl.Weights) != tbl.NumRows() {
			t.Fatalf("weights %d vs rows %d", len(tbl.Weights), tbl.NumRows())
		}
		for i := 0; i < tbl.NumRows(); i++ {
			for _, c := range tbl.Columns() {
				_ = c.Value(i)
			}
		}
	})
}
