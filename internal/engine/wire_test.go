package engine

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// wireTestResult builds a small result with every accumulator populated and
// a mixed-type group key (string, int, float).
func wireTestResult(t *testing.T) *Result {
	t.Helper()
	res := NewResult([]string{"region", "tier", "rate"},
		[]Aggregate{{Kind: Count}, {Kind: Sum, Col: "amount"}})
	for i, row := range []struct {
		region string
		tier   int64
		rate   float64
		exact  bool
	}{
		{"west", 1, 0.25, false},
		{"east", 2, 0.5, true},
		{"", 0, -1.5, false}, // empty string and zero values must survive omitempty
	} {
		key := []Value{StringVal(row.region), IntVal(row.tier), FloatVal(row.rate)}
		g := res.Upsert(EncodeKey(key), func() []Value { return key })
		g.Vals = []float64{float64(10 * (i + 1)), float64(100 * (i + 1))}
		g.RawRows = int64(i + 1)
		g.RawSum = []float64{float64(i + 1), float64(7 * (i + 1))}
		g.RawSumSq = []float64{float64(i + 1), float64(49 * (i + 1))}
		g.VarAcc = []float64{0.5 * float64(i), 1.5 * float64(i)}
		g.Exact = row.exact
	}
	res.RowsScanned = 42
	res.RowsMatched = 17
	return res
}

func TestWireRoundTrip(t *testing.T) {
	res := wireTestResult(t)
	raw, err := json.Marshal(res.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w ResultWire
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	got, err := ResultFromWire(&w)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsScanned != res.RowsScanned || got.RowsMatched != res.RowsMatched {
		t.Errorf("row counts = %d/%d, want %d/%d",
			got.RowsScanned, got.RowsMatched, res.RowsScanned, res.RowsMatched)
	}
	if got.NumGroups() != res.NumGroups() {
		t.Fatalf("groups = %d, want %d", got.NumGroups(), res.NumGroups())
	}
	for _, k := range res.Keys() {
		want := res.Group(k)
		g := got.Group(k)
		if g == nil {
			t.Fatalf("group %q lost in round trip", k)
		}
		if g.RawRows != want.RawRows || g.Exact != want.Exact {
			t.Errorf("group %q: rawRows/exact = %d/%v, want %d/%v",
				k, g.RawRows, g.Exact, want.RawRows, want.Exact)
		}
		for i := range want.Vals {
			if g.Vals[i] != want.Vals[i] || g.RawSum[i] != want.RawSum[i] ||
				g.RawSumSq[i] != want.RawSumSq[i] || g.VarAcc[i] != want.VarAcc[i] {
				t.Errorf("group %q agg %d accumulators differ", k, i)
			}
		}
	}
	// A round-tripped partial must be mergeable with the original shape.
	if err := res.Merge(got); err != nil {
		t.Errorf("merging round-tripped result: %v", err)
	}
}

func TestWireDeterministicEncoding(t *testing.T) {
	a, _ := json.Marshal(wireTestResult(t).Wire())
	b, _ := json.Marshal(wireTestResult(t).Wire())
	if string(a) != string(b) {
		t.Error("wire encoding is not deterministic across equal results")
	}
}

// TestWireRejectsHostileInput feeds shape-violating payloads to
// ResultFromWire; each must error, never panic or yield a Result that Merge
// would mis-combine.
func TestWireRejectsHostileInput(t *testing.T) {
	base := func() *ResultWire { return wireTestResult(t).Wire() }
	cases := []struct {
		name string
		mut  func(*ResultWire)
		want string
	}{
		{"short key", func(w *ResultWire) { w.Groups[0].Key = w.Groups[0].Key[:1] }, "key values"},
		{"long key", func(w *ResultWire) {
			w.Groups[0].Key = append(w.Groups[0].Key, ValueWire{T: uint8(Int), I: 9})
		}, "key values"},
		{"short vals", func(w *ResultWire) { w.Groups[1].Vals = w.Groups[1].Vals[:1] }, "accumulator lengths"},
		{"short varacc", func(w *ResultWire) { w.Groups[1].VarAcc = nil }, "accumulator lengths"},
		{"bad value tag", func(w *ResultWire) { w.Groups[0].Key[0].T = 99 }, "unknown type tag"},
		{"bad agg kind", func(w *ResultWire) { w.Aggs[1].Kind = 200 }, "unknown kind"},
		{"negative raw rows", func(w *ResultWire) { w.Groups[0].RawRows = -5 }, "negative raw row"},
		{"negative scanned", func(w *ResultWire) { w.RowsScanned = -1 }, "negative row counts"},
		{"nan accumulator", func(w *ResultWire) { w.Groups[0].RawSumSq[0] = math.NaN() }, "NaN"},
		{"duplicate group", func(w *ResultWire) { w.Groups = append(w.Groups, w.Groups[0]) }, "repeats group"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := base()
			tc.mut(w)
			_, err := ResultFromWire(w)
			if err == nil {
				t.Fatal("hostile wire payload accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := ResultFromWire(nil); err == nil {
		t.Error("nil wire result accepted")
	}
}

func TestMergeRejectsMismatchedGroupBy(t *testing.T) {
	a := NewResult([]string{"region"}, []Aggregate{{Kind: Count}})
	b := NewResult([]string{"region", "tier"}, []Aggregate{{Kind: Count}})
	if err := a.Merge(b); err == nil {
		t.Error("merge across different group-by arity accepted")
	}
	c := NewResult([]string{"city"}, []Aggregate{{Kind: Count}})
	if err := a.Merge(c); err == nil {
		t.Error("merge across different group-by columns accepted")
	}
	d := NewResult([]string{"region"}, []Aggregate{{Kind: Count}})
	if err := a.Merge(d); err != nil {
		t.Errorf("merge of matching shapes rejected: %v", err)
	}
}
