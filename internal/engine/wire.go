package engine

import (
	"fmt"
	"math"
)

// This file defines the JSON wire form of a partial Result, so the
// scatter-gather cluster tier can move raw per-group accumulators — not just
// presented values — between a shard server and the coordinator. The
// coordinator re-merges decoded partials with Result.Merge, which requires
// every additive accumulator (Vals, RawSum, RawSumSq, VarAcc, RawRows) and
// the Exact flags, none of which survive the human-facing response shape.

// ValueWire is the JSON form of one typed Value. T is the Type; exactly one
// of I/F/S is meaningful, matching the type.
type ValueWire struct {
	T uint8   `json:"t"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

// wireValue converts a Value to its wire form.
func wireValue(v Value) ValueWire {
	return ValueWire{T: uint8(v.T), I: v.I, F: v.F, S: v.S}
}

// value converts back to a Value, validating the type tag.
func (w ValueWire) value() (Value, error) {
	switch Type(w.T) {
	case Int:
		return IntVal(w.I), nil
	case Float:
		return FloatVal(w.F), nil
	case String:
		return StringVal(w.S), nil
	default:
		return Value{}, fmt.Errorf("engine: wire value has unknown type tag %d", w.T)
	}
}

// AggWire is the JSON form of one Aggregate.
type AggWire struct {
	Kind uint8  `json:"kind"`
	Col  string `json:"col,omitempty"`
}

// GroupWire is the JSON form of one Group with all its additive
// accumulators.
type GroupWire struct {
	Key      []ValueWire `json:"key"`
	Vals     []float64   `json:"vals"`
	RawRows  int64       `json:"rawRows"`
	RawSum   []float64   `json:"rawSum"`
	RawSumSq []float64   `json:"rawSumSq"`
	VarAcc   []float64   `json:"varAcc"`
	Exact    bool        `json:"exact,omitempty"`
}

// ResultWire is the JSON form of a partial Result. Groups are emitted in
// deterministic key order so equal results serialize identically.
type ResultWire struct {
	GroupBy     []string    `json:"groupBy"`
	Aggs        []AggWire   `json:"aggs"`
	Groups      []GroupWire `json:"groups"`
	RowsScanned int64       `json:"rowsScanned"`
	RowsMatched int64       `json:"rowsMatched"`
}

// Wire converts the result to its wire form.
func (r *Result) Wire() *ResultWire {
	w := &ResultWire{
		GroupBy:     r.GroupBy,
		RowsScanned: r.RowsScanned,
		RowsMatched: r.RowsMatched,
	}
	for _, a := range r.Aggs {
		w.Aggs = append(w.Aggs, AggWire{Kind: uint8(a.Kind), Col: a.Col})
	}
	for _, g := range r.Groups() {
		gw := GroupWire{
			Vals:     g.Vals,
			RawRows:  g.RawRows,
			RawSum:   g.RawSum,
			RawSumSq: g.RawSumSq,
			VarAcc:   g.VarAcc,
			Exact:    g.Exact,
		}
		for _, v := range g.Key {
			gw.Key = append(gw.Key, wireValue(v))
		}
		w.Groups = append(w.Groups, gw)
	}
	return w
}

// maxWireGroups bounds how many groups one decoded partial may carry, so a
// corrupt or hostile length cannot make the coordinator allocate unboundedly.
const maxWireGroups = 1 << 22

// ResultFromWire validates and rebuilds a Result from its wire form. The
// bytes cross a network, so every shape invariant is checked: a truncated or
// corrupted payload must produce an error here, never a malformed Result
// that Merge would silently mis-combine.
func ResultFromWire(w *ResultWire) (*Result, error) {
	if w == nil {
		return nil, fmt.Errorf("engine: nil wire result")
	}
	if len(w.Groups) > maxWireGroups {
		return nil, fmt.Errorf("engine: wire result has %d groups (max %d)", len(w.Groups), maxWireGroups)
	}
	if w.RowsScanned < 0 || w.RowsMatched < 0 {
		return nil, fmt.Errorf("engine: wire result has negative row counts (%d scanned, %d matched)",
			w.RowsScanned, w.RowsMatched)
	}
	aggs := make([]Aggregate, len(w.Aggs))
	for i, a := range w.Aggs {
		if AggKind(a.Kind) != Count && AggKind(a.Kind) != Sum {
			return nil, fmt.Errorf("engine: wire aggregate %d has unknown kind %d", i, a.Kind)
		}
		aggs[i] = Aggregate{Kind: AggKind(a.Kind), Col: a.Col}
	}
	res := NewResult(append([]string(nil), w.GroupBy...), aggs)
	res.RowsScanned = w.RowsScanned
	res.RowsMatched = w.RowsMatched
	for gi, gw := range w.Groups {
		if len(gw.Key) != len(w.GroupBy) {
			return nil, fmt.Errorf("engine: wire group %d has %d key values, query groups by %d columns",
				gi, len(gw.Key), len(w.GroupBy))
		}
		if len(gw.Vals) != len(aggs) || len(gw.RawSum) != len(aggs) ||
			len(gw.RawSumSq) != len(aggs) || len(gw.VarAcc) != len(aggs) {
			return nil, fmt.Errorf("engine: wire group %d accumulator lengths (%d/%d/%d/%d) do not match %d aggregates",
				gi, len(gw.Vals), len(gw.RawSum), len(gw.RawSumSq), len(gw.VarAcc), len(aggs))
		}
		if gw.RawRows < 0 {
			return nil, fmt.Errorf("engine: wire group %d has negative raw row count %d", gi, gw.RawRows)
		}
		for _, vs := range [][]float64{gw.Vals, gw.RawSum, gw.RawSumSq, gw.VarAcc} {
			for _, v := range vs {
				if math.IsNaN(v) {
					return nil, fmt.Errorf("engine: wire group %d carries NaN accumulators", gi)
				}
			}
		}
		key := make([]Value, len(gw.Key))
		for i, vw := range gw.Key {
			v, err := vw.value()
			if err != nil {
				return nil, fmt.Errorf("engine: wire group %d: %w", gi, err)
			}
			key[i] = v
		}
		ek := EncodeKey(key)
		if res.Group(ek) != nil {
			return nil, fmt.Errorf("engine: wire result repeats group %v", key)
		}
		g := res.Upsert(ek, func() []Value { return key })
		copy(g.Vals, gw.Vals)
		copy(g.RawSum, gw.RawSum)
		copy(g.RawSumSq, gw.RawSumSq)
		copy(g.VarAcc, gw.VarAcc)
		g.RawRows = gw.RawRows
		g.Exact = gw.Exact
	}
	return res, nil
}
