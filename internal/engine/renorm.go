package engine

import (
	"fmt"

	"dynsample/internal/bitmask"
)

// Renormalized join synopses (§5.2.2): instead of storing each sample table
// fully flattened ("join synopses"), the fact rows are stored with their
// foreign keys remapped into reduced dimension tables that contain only the
// referenced rows — and those reduced dimensions are shared by every sample
// table built from the same Renormalizer, exactly as the paper describes:
// "we combined the resulting small dimension tables from all the small group
// sampling join synopses to create a single smaller dimension table for each
// of the original dimension tables."

// Renormalizer builds renormalized sample databases over one base star
// schema. Construct it with every row set that will become a sample table so
// the shared reduced dimensions cover all of them.
type Renormalizer struct {
	db *Database
	// remap[d][oldRow] is the reduced row id in dimension d, or -1.
	remap       [][]int32
	reducedDims []*Table
}

// NewRenormalizer computes the shared reduced dimension tables covering the
// union of the given fact-row sets.
func NewRenormalizer(db *Database, rowSets ...[]int) *Renormalizer {
	r := &Renormalizer{db: db}
	r.remap = make([][]int32, len(db.Dims))
	r.reducedDims = make([]*Table, len(db.Dims))
	for d, dj := range db.Dims {
		used := make([]bool, dj.Table.NumRows())
		fk := db.Fact.MustColumn(dj.FK)
		for _, rows := range rowSets {
			for _, row := range rows {
				used[fk.Int(row)] = true
			}
		}
		remap := make([]int32, dj.Table.NumRows())
		var keep []int
		for old, u := range used {
			if u {
				remap[old] = int32(len(keep))
				keep = append(keep, old)
			} else {
				remap[old] = -1
			}
		}
		r.remap[d] = remap
		r.reducedDims[d] = subsetTable(dj.Table, dj.Table.Name, keep)
	}
	return r
}

// ReducedDims returns the shared reduced dimension tables.
func (r *Renormalizer) ReducedDims() []*Table { return r.reducedDims }

// Build materialises one sample as a renormalized star schema: a fact slice
// with remapped foreign keys joined to the shared reduced dimensions. The
// returned Database is a Source whose rows carry the given masks and
// weights.
func (r *Renormalizer) Build(name string, rows []int, masks []bitmask.Mask, weights []float64) (*Database, error) {
	if masks != nil && len(masks) != len(rows) {
		return nil, fmt.Errorf("engine: renormalize masks length mismatch")
	}
	if weights != nil && len(weights) != len(rows) {
		return nil, fmt.Errorf("engine: renormalize weights length mismatch")
	}
	fact := subsetTable(r.db.Fact, name, rows)
	// Remap FK columns into the reduced dimensions.
	for d, dj := range r.db.Dims {
		fk := fact.MustColumn(dj.FK)
		for i := range fk.ints {
			nr := r.remap[d][fk.ints[i]]
			if nr < 0 {
				return nil, fmt.Errorf("engine: row set for %q not covered by renormalizer", name)
			}
			fk.ints[i] = int64(nr)
		}
	}
	fact.Masks = masks
	fact.Weights = weights
	dims := make([]DimJoin, len(r.db.Dims))
	for d, dj := range r.db.Dims {
		dims[d] = DimJoin{Table: r.reducedDims[d], FK: dj.FK}
	}
	return NewDatabase(name, fact, dims...)
}

// subsetTable copies the given rows of a table (all physical columns,
// including FK columns).
func subsetTable(t *Table, name string, rows []int) *Table {
	cols := make([]*Column, t.NumCols())
	for j, c := range t.Columns() {
		nc := NewColumn(c.Name, c.Type)
		switch c.Type {
		case Int:
			nc.ints = make([]int64, len(rows))
			for i, r := range rows {
				nc.ints[i] = c.ints[r]
			}
		case Float:
			nc.floats = make([]float64, len(rows))
			for i, r := range rows {
				nc.floats[i] = c.floats[r]
			}
		default:
			codeMap := make([]int32, len(c.dict))
			for k := range codeMap {
				codeMap[k] = -1
			}
			nc.codes = make([]int32, 0, len(rows))
			for _, r := range rows {
				code := c.codes[r]
				if codeMap[code] < 0 {
					codeMap[code] = int32(len(nc.dict))
					nc.dict = append(nc.dict, c.dict[code])
					nc.dictIx[c.dict[code]] = codeMap[code]
				}
				nc.codes = append(nc.codes, codeMap[code])
			}
		}
		cols[j] = nc
	}
	return NewTable(name, cols...)
}
