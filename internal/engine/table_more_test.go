package engine

import (
	"strings"
	"testing"
)

func TestAddColumnAndRowValues(t *testing.T) {
	a := NewColumn("a", Int)
	a.AppendInt(1)
	a.AppendInt(2)
	tbl := NewTable("t", a)
	b := NewColumn("b", String)
	b.AppendString("x")
	b.AppendString("y")
	tbl.AddColumn(b)
	if tbl.NumCols() != 2 {
		t.Fatalf("cols = %d", tbl.NumCols())
	}
	vals := tbl.RowValues(1)
	if vals[0].I != 2 || vals[1].S != "y" {
		t.Errorf("RowValues(1) = %v", vals)
	}
	// Mismatched length must panic.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched AddColumn")
		}
	}()
	short := NewColumn("c", Int)
	short.AppendInt(9)
	tbl.AddColumn(short)
}

func TestEndRowPanicsWhenOutOfStep(t *testing.T) {
	a := NewColumn("a", Int)
	b := NewColumn("b", Int)
	tbl := NewTable("t", a, b)
	a.AppendInt(1) // b not appended
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tbl.EndRow()
}

func TestMustColumnPanics(t *testing.T) {
	tbl := NewTable("t", NewColumn("a", Int))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tbl.MustColumn("nope")
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTable("t", NewColumn("a", Int), NewColumn("a", Int))
}

func TestColumnTypeLookup(t *testing.T) {
	db := testDB(t)
	for col, want := range map[string]Type{"product": String, "quantity": Int, "state": String} {
		got, err := db.ColumnType(col)
		if err != nil || got != want {
			t.Errorf("ColumnType(%s) = %v, %v", col, got, err)
		}
	}
	if _, err := db.ColumnType("nope"); err == nil {
		t.Error("unknown column not rejected")
	}
}

func TestDatabaseRowMaskAndWeight(t *testing.T) {
	db := testDB(t)
	if _, ok := db.RowMask(0); ok {
		t.Error("base database should carry no masks")
	}
	if w := db.RowWeight(0); w != 1 {
		t.Errorf("base row weight = %g", w)
	}
}

func TestFKAccessorFloatAndCode(t *testing.T) {
	db := testDB(t)
	acc, err := db.Accessor("city")
	if err != nil {
		t.Fatal(err)
	}
	ca, ok := acc.(CodeAccessor)
	if !ok {
		t.Fatal("string dimension column should expose codes")
	}
	if ca.DictSize() != 3 {
		t.Errorf("dict size = %d", ca.DictSize())
	}
	if got := ca.DictValue(ca.Code(2)); got != "Portland" {
		t.Errorf("code round trip = %q", got)
	}
	if f := acc.Float(0); f != 0 {
		t.Errorf("string Float = %g, want 0", f)
	}
}

func TestResultString(t *testing.T) {
	db := testDB(t)
	q := &Query{GroupBy: []string{"product"}, Aggs: []Aggregate{{Kind: Count}}}
	res, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"product", "COUNT(*)", "'Stereo'", "(exact)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Result.String missing %q:\n%s", want, out)
		}
	}
}

func TestQueryStringNoGroupByNoWhere(t *testing.T) {
	q := &Query{Aggs: []Aggregate{{Kind: Count}}}
	if got := q.String(); got != "SELECT COUNT(*) FROM T" {
		t.Errorf("String = %q", got)
	}
}

func TestAggregateAndTypeStrings(t *testing.T) {
	if Count.String() != "COUNT" || Sum.String() != "SUM" {
		t.Error("AggKind strings wrong")
	}
	if !strings.Contains(AggKind(9).String(), "9") {
		t.Error("unknown AggKind string")
	}
	if Int.String() != "INT" || Float.String() != "FLOAT" || String.String() != "VARCHAR" {
		t.Error("Type strings wrong")
	}
	if !strings.Contains(Type(9).String(), "9") {
		t.Error("unknown Type string")
	}
	if (Aggregate{Kind: Sum, Col: "x"}).String() != "SUM(x)" {
		t.Error("Aggregate string wrong")
	}
}

func TestCmpOpStrings(t *testing.T) {
	wants := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, w := range wants {
		if op.String() != w {
			t.Errorf("%v string = %q", op, op.String())
		}
	}
	if !strings.Contains(CmpOp(99).String(), "99") {
		t.Error("unknown CmpOp string")
	}
}

func TestApproxBytesWithMasksAndWeights(t *testing.T) {
	db := testDB(t)
	plain := db.Flatten("p", []int{0, 1}, nil, nil)
	weighted := db.Flatten("w", []int{0, 1}, nil, []float64{1, 2})
	if weighted.ApproxBytes() <= plain.ApproxBytes() {
		t.Error("weights not accounted in ApproxBytes")
	}
}
