package engine

import (
	"fmt"

	"dynsample/internal/bitmask"
)

// Live append support. The ingest subsystem extends a database while queries
// are being served from it, which the engine makes safe with copy-on-write
// structural sharing: an append never mutates storage visible to a published
// version. CloneForAppend copies a table's slice headers (sharing the backing
// arrays) and every subsequent append lands at indices at or beyond the old
// length — addresses no reader of the old version ever touches — so a single
// serial writer can grow the newest version while arbitrarily many readers
// scan older ones without locks or data races.
//
// Dictionary state is shared across versions on purpose: new strings get
// codes >= the old dictionary length, which only rows of the new version
// reference, and the code->string map (dictIx) is touched exclusively by the
// writer (the read path goes through dict/codes slices only).

// cloneForAppend returns a column copy sharing all row storage. Appends to
// the clone are invisible to the original.
func (c *Column) cloneForAppend() *Column {
	cc := *c
	return &cc
}

// setValue overwrites row i in place. It must only be called on columns whose
// row storage is private (see CopyForUpdate); overwriting shared storage
// would tear published versions.
func (c *Column) setValue(i int, v Value) {
	if v.T != c.Type {
		panic(fmt.Sprintf("engine: set %s value in %s column %q", v.T, c.Type, c.Name))
	}
	switch c.Type {
	case Int:
		c.ints[i] = v.I
	case Float:
		c.floats[i] = v.F
	default:
		code, ok := c.dictIx[v.S]
		if !ok {
			code = int32(len(c.dict))
			c.dict = append(c.dict, v.S)
			c.dictIx[v.S] = code
		}
		c.codes[i] = code
	}
}

// CloneForAppend returns a table copy sharing all row storage with the
// receiver. Appending rows (AppendRow, or direct column pushes plus EndRow)
// and appending to Masks/Weights is safe while readers scan the original:
// new data lands only at indices beyond the original's length. The clone and
// the original share dictionaries and the byName index; do not AddColumn to
// either afterwards, and keep all mutation on one goroutine.
func (t *Table) CloneForAppend() *Table {
	nt := *t
	nt.cols = make([]*Column, len(t.cols))
	for i, c := range t.cols {
		nt.cols[i] = c.cloneForAppend()
	}
	return &nt
}

// CopyForUpdate returns a table copy whose row storage (values, masks,
// weights) is private, so rows can be overwritten with SetRow without
// disturbing published versions. Dictionaries are still shared
// copy-on-write: replacement strings append new codes, never rewrite old
// entries.
func (t *Table) CopyForUpdate() *Table {
	nt := t.CloneForAppend()
	for _, c := range nt.cols {
		switch c.Type {
		case Int:
			c.ints = append([]int64(nil), c.ints...)
		case Float:
			c.floats = append([]float64(nil), c.floats...)
		default:
			c.codes = append([]int32(nil), c.codes...)
		}
	}
	if t.Masks != nil {
		nt.Masks = append([]bitmask.Mask(nil), t.Masks...)
	}
	if t.Weights != nil {
		nt.Weights = append([]float64(nil), t.Weights...)
	}
	return nt
}

// SetRow overwrites row i with vals (schema order). The table must have
// private row storage (CopyForUpdate).
func (t *Table) SetRow(i int, vals ...Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("engine: row has %d values, table %q has %d columns", len(vals), t.Name, len(t.cols)))
	}
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("engine: SetRow index %d out of range [0,%d)", i, t.rows))
	}
	for j, v := range vals {
		t.cols[j].setValue(i, v)
	}
}

// Appender grows a star-schema database with streamed row appends. Each
// Append produces a new immutable *Database version built by copy-on-write
// over the previous one; older versions (including any pinned by in-flight
// queries or a background rebuild) keep answering from the row count they
// were published with.
//
// Rows are given in the joined view's column order (Database.Columns()).
// Dimension values are resolved against an index of existing dimension rows:
// a row whose dimension tuple already exists reuses that row's id as the
// foreign key, otherwise a new dimension row is appended. An Appender is a
// single-writer object: calls must be serialised by the caller.
type Appender struct {
	db *Database

	// factSrc maps each physical fact column to its input: a view position
	// for regular columns, or the dimension whose resolved row id it holds.
	factSrc []factInput
	// dimPos holds, per dimension, the view positions of its columns in
	// dimension-table schema order.
	dimPos [][]int
	// dimIndex maps, per dimension, an encoded dimension tuple to its row id.
	dimIndex []map[string]int

	keyBuf []byte
	valBuf []Value
	fkBuf  []int64
}

type factInput struct {
	viewPos int
	dim     int // -1 for regular columns
}

// NewAppender returns an appender over db. Building it scans every dimension
// table once to index existing dimension tuples.
func NewAppender(db *Database) (*Appender, error) {
	a := &Appender{db: db}
	pos := make(map[string]int, len(db.colNames))
	for i, n := range db.colNames {
		pos[n] = i
	}
	fkDim := make(map[string]int, len(db.Dims))
	for di, d := range db.Dims {
		for dj, other := range db.Dims {
			if dj != di && other.Table == d.Table {
				return nil, fmt.Errorf("engine: appender does not support dimensions sharing a table (%q)", d.Table.Name)
			}
		}
		fkDim[d.FK] = di
	}
	for _, c := range db.Fact.Columns() {
		if di, ok := fkDim[c.Name]; ok {
			a.factSrc = append(a.factSrc, factInput{dim: di})
			continue
		}
		p, ok := pos[c.Name]
		if !ok {
			return nil, fmt.Errorf("engine: fact column %q missing from view", c.Name)
		}
		a.factSrc = append(a.factSrc, factInput{viewPos: p, dim: -1})
	}
	for _, d := range db.Dims {
		ps := make([]int, 0, d.Table.NumCols())
		for _, c := range d.Table.Columns() {
			p, ok := pos[c.Name]
			if !ok {
				return nil, fmt.Errorf("engine: dimension column %q missing from view", c.Name)
			}
			ps = append(ps, p)
		}
		a.dimPos = append(a.dimPos, ps)
		a.dimIndex = append(a.dimIndex, indexDimRows(d.Table))
	}
	a.fkBuf = make([]int64, len(db.Dims))
	return a, nil
}

// indexDimRows maps each dimension row's encoded value tuple to its row id.
// Duplicate tuples keep the first id, so appends reuse the earliest match.
func indexDimRows(t *Table) map[string]int {
	ix := make(map[string]int, t.NumRows())
	vals := make([]Value, t.NumCols())
	var buf []byte
	for r := 0; r < t.NumRows(); r++ {
		for j, c := range t.Columns() {
			vals[j] = c.Value(r)
		}
		buf = AppendKey(buf[:0], vals)
		if _, dup := ix[string(buf)]; !dup {
			ix[string(buf)] = r
		}
	}
	return ix
}

// DB returns the newest database version.
func (a *Appender) DB() *Database { return a.db }

// Validate checks that every row matches the view schema (arity and value
// types) without appending anything. The ingest pipeline calls it before
// acknowledging a batch to its write-ahead log, so a record that reaches
// disk is guaranteed to apply cleanly on replay.
func (a *Appender) Validate(rows [][]Value) error {
	for ri, row := range rows {
		if len(row) != len(a.db.colNames) {
			return fmt.Errorf("engine: append row %d has %d values, view has %d columns", ri, len(row), len(a.db.colNames))
		}
		for i, v := range row {
			want := a.db.bindings[a.db.colNames[i]].col.Type
			if v.T != want {
				return fmt.Errorf("engine: append row %d column %q: got %s, want %s", ri, a.db.colNames[i], v.T, want)
			}
		}
	}
	return nil
}

// Append validates and appends rows (view column order) and returns the new
// database version. The batch is atomic: on any validation error nothing is
// appended. The returned database shares all pre-existing row storage with
// prior versions.
func (a *Appender) Append(rows [][]Value) (*Database, error) {
	if len(rows) == 0 {
		return a.db, nil
	}
	if err := a.Validate(rows); err != nil {
		return nil, err
	}

	newFact := a.db.Fact.CloneForAppend()
	dimTables := make([]*Table, len(a.db.Dims))
	cloned := make([]bool, len(a.db.Dims))
	for i, d := range a.db.Dims {
		dimTables[i] = d.Table
	}
	for _, row := range rows {
		for di := range a.db.Dims {
			ps := a.dimPos[di]
			a.valBuf = a.valBuf[:0]
			for _, p := range ps {
				a.valBuf = append(a.valBuf, row[p])
			}
			a.keyBuf = AppendKey(a.keyBuf[:0], a.valBuf)
			id, ok := a.dimIndex[di][string(a.keyBuf)]
			if !ok {
				if !cloned[di] {
					dimTables[di] = dimTables[di].CloneForAppend()
					cloned[di] = true
				}
				id = dimTables[di].NumRows()
				dimTables[di].AppendRow(a.valBuf...)
				a.dimIndex[di][string(a.keyBuf)] = id
			}
			a.fkBuf[di] = int64(id)
		}
		for ci, src := range a.factSrc {
			col := newFact.cols[ci]
			if src.dim >= 0 {
				col.AppendInt(a.fkBuf[src.dim])
			} else {
				col.Append(row[src.viewPos])
			}
		}
		newFact.rows++
	}

	dims := make([]DimJoin, len(a.db.Dims))
	for i, d := range a.db.Dims {
		dims[i] = DimJoin{Table: dimTables[i], FK: d.FK}
	}
	ndb, err := NewDatabase(a.db.Name, newFact, dims...)
	if err != nil {
		return nil, fmt.Errorf("engine: rebuilding view after append: %w", err)
	}
	a.db = ndb
	return ndb, nil
}
