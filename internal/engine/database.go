package engine

import (
	"fmt"
	"sort"

	"dynsample/internal/bitmask"
)

// DimJoin links a fact-table foreign-key column to a dimension table whose
// primary key is the row index (0..NumRows-1). This models the star schemas
// with foreign-key joins that the paper restricts itself to (§4): "foreign-key
// joins represent the majority of joins in actual data analysis applications".
type DimJoin struct {
	Table *Table
	FK    string // name of the fact column holding row ids into Table
}

// Database is a single fact table optionally joined to dimension tables.
// Following §4.2.1, "the database" that sampling operates over is the view
// resulting from joining the fact table to the dimension tables; Database
// exposes that view's columns uniformly whether they live in the fact table
// or a dimension.
//
// Column names must be unique across the whole schema (the generators
// qualify them, e.g. "p_brand"), so queries reference columns by bare name.
type Database struct {
	Name string
	Fact *Table
	Dims []DimJoin

	bindings map[string]binding
	colNames []string // all view columns, schema order
}

type binding struct {
	col *Column
	fk  *Column // nil for fact columns
}

// NewDatabase assembles a star schema and validates it. FK columns are
// physical only: they do not appear among the view's logical columns.
func NewDatabase(name string, fact *Table, dims ...DimJoin) (*Database, error) {
	db := &Database{Name: name, Fact: fact, Dims: dims, bindings: make(map[string]binding)}
	fkCols := make(map[string]bool, len(dims))
	for _, d := range dims {
		fk := fact.Column(d.FK)
		if fk == nil {
			return nil, fmt.Errorf("engine: fact table %q has no FK column %q", fact.Name, d.FK)
		}
		if fk.Type != Int {
			return nil, fmt.Errorf("engine: FK column %q must be INT", d.FK)
		}
		fkCols[d.FK] = true
	}
	for _, c := range fact.Columns() {
		if fkCols[c.Name] {
			continue
		}
		if err := db.bind(c.Name, binding{col: c}); err != nil {
			return nil, err
		}
	}
	for _, d := range dims {
		fk := fact.MustColumn(d.FK)
		for _, c := range d.Table.Columns() {
			if err := db.bind(c.Name, binding{col: c, fk: fk}); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// MustNewDatabase is NewDatabase that panics on error, for tests and generators.
func MustNewDatabase(name string, fact *Table, dims ...DimJoin) *Database {
	db, err := NewDatabase(name, fact, dims...)
	if err != nil {
		panic(err)
	}
	return db
}

func (db *Database) bind(name string, b binding) error {
	if _, dup := db.bindings[name]; dup {
		return fmt.Errorf("engine: duplicate column name %q across star schema", name)
	}
	db.bindings[name] = b
	db.colNames = append(db.colNames, name)
	return nil
}

// NumRows returns the number of rows in the joined view (= fact rows).
func (db *Database) NumRows() int { return db.Fact.NumRows() }

// Columns returns the names of all view columns in schema order.
func (db *Database) Columns() []string {
	out := make([]string, len(db.colNames))
	copy(out, db.colNames)
	return out
}

// HasColumn reports whether the view exposes the named column.
func (db *Database) HasColumn(name string) bool {
	_, ok := db.bindings[name]
	return ok
}

// ColumnType returns the type of a view column.
func (db *Database) ColumnType(name string) (Type, error) {
	b, ok := db.bindings[name]
	if !ok {
		return 0, fmt.Errorf("engine: unknown column %q", name)
	}
	return b.col.Type, nil
}

// Accessor implements Source.
func (db *Database) Accessor(name string) (ColumnAccessor, error) {
	b, ok := db.bindings[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	if b.fk == nil {
		return b.col, nil
	}
	if b.col.Type == String {
		return &fkCodeAccessor{fkAccessor{fk: b.fk, col: b.col}}, nil
	}
	return &fkAccessor{fk: b.fk, col: b.col}, nil
}

// RowMask implements Source, delegating to the fact table (renormalized
// sample databases carry masks there; base databases have none).
func (db *Database) RowMask(row int) (bitmask.Mask, bool) { return db.Fact.RowMask(row) }

// RowWeight implements Source, delegating to the fact table.
func (db *Database) RowWeight(row int) float64 { return db.Fact.RowWeight(row) }

// fkAccessor reads a dimension column through a fact FK column.
type fkAccessor struct {
	fk  *Column
	col *Column
}

func (a *fkAccessor) Value(row int) Value   { return a.col.Value(int(a.fk.Int(row))) }
func (a *fkAccessor) Float(row int) float64 { return a.col.Float(int(a.fk.Int(row))) }
func (a *fkAccessor) Type() Type            { return a.col.Type }

// fkCodeAccessor adds dictionary-code access for string dimension columns.
type fkCodeAccessor struct{ fkAccessor }

func (a *fkCodeAccessor) Code(row int) int32          { return a.col.Code(int(a.fk.Int(row))) }
func (a *fkCodeAccessor) DictSize() int               { return a.col.DictSize() }
func (a *fkCodeAccessor) DictValue(code int32) string { return a.col.DictValue(code) }

// Flatten materialises the joined view for the given fact-row indices into a
// single flat table containing every view column. This is the "join synopsis"
// construction from [3] that the paper applies to sample tables (§5.2.2): each
// sample table is stored pre-joined so runtime queries scan it directly.
//
// masks and weights, when non-nil, are attached per emitted row and must have
// len(rows) entries.
func (db *Database) Flatten(name string, rows []int, masks []bitmask.Mask, weights []float64) *Table {
	if masks != nil && len(masks) != len(rows) {
		panic("engine: Flatten masks length mismatch")
	}
	if weights != nil && len(weights) != len(rows) {
		panic("engine: Flatten weights length mismatch")
	}
	cols := make([]*Column, len(db.colNames))
	copiers := make([]func(r int), len(db.colNames))
	for i, cn := range db.colNames {
		b := db.bindings[cn]
		col := NewColumn(cn, b.col.Type)
		cols[i] = col
		acc, err := db.Accessor(cn)
		if err != nil {
			panic(err)
		}
		switch b.col.Type {
		case String:
			// Translate dictionary codes directly; far cheaper than
			// re-hashing every string.
			ca := acc.(CodeAccessor)
			codeMap := make([]int32, ca.DictSize())
			for j := range codeMap {
				codeMap[j] = -1
			}
			copiers[i] = func(r int) {
				code := ca.Code(r)
				if codeMap[code] < 0 {
					codeMap[code] = int32(col.DictSize())
					col.AppendString(ca.DictValue(code))
					return
				}
				col.codes = append(col.codes, codeMap[code])
			}
		case Int:
			copiers[i] = func(r int) { col.AppendInt(acc.Value(r).I) }
		default:
			copiers[i] = func(r int) { col.AppendFloat(acc.Float(r)) }
		}
	}
	out := NewTable(name, cols...)
	for _, r := range rows {
		for i := range copiers {
			copiers[i](r)
		}
		out.rows++
	}
	out.Masks = masks
	out.Weights = weights
	return out
}

// TotalBytes estimates the size of the base data (fact + dimensions).
func (db *Database) TotalBytes() int64 {
	b := db.Fact.ApproxBytes()
	for _, d := range db.Dims {
		b += d.Table.ApproxBytes()
	}
	return b
}

// DistinctValues scans a view column and returns its distinct values with
// exact counts, most frequent first (ties broken by value order for
// determinism). Used by tests and by baseline strategies.
func (db *Database) DistinctValues(name string) ([]ValueCount, error) {
	acc, err := db.Accessor(name)
	if err != nil {
		return nil, err
	}
	counts := make(map[Value]int64)
	n := db.NumRows()
	for i := 0; i < n; i++ {
		counts[acc.Value(i)]++
	}
	return sortValueCounts(counts), nil
}

// ValueCount pairs a column value with its number of occurrences.
type ValueCount struct {
	Value Value
	Count int64
}

func sortValueCounts(counts map[Value]int64) []ValueCount {
	out := make([]ValueCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, ValueCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Less(out[j].Value)
	})
	return out
}
