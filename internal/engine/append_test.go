package engine

import (
	"testing"
)

func appendTestDB(t *testing.T) *Database {
	t.Helper()
	region := NewColumn("region", String)
	pop := NewColumn("population", Int)
	for _, r := range []struct {
		name string
		pop  int64
	}{{"east", 100}, {"west", 200}} {
		region.AppendString(r.name)
		pop.AppendInt(r.pop)
	}
	dim := NewTable("geo", region, pop)

	fk := NewColumn("geo_fk", Int)
	amount := NewColumn("amount", Float)
	tag := NewColumn("tag", String)
	for i := 0; i < 4; i++ {
		fk.AppendInt(int64(i % 2))
		amount.AppendFloat(float64(i))
		tag.AppendString("t0")
	}
	fact := NewTable("fact", fk, amount, tag)
	return MustNewDatabase("DB", fact, DimJoin{Table: dim, FK: "geo_fk"})
}

func viewRow(db *Database, r int) []Value {
	cols := db.Columns()
	out := make([]Value, len(cols))
	for i, cn := range cols {
		acc, err := db.Accessor(cn)
		if err != nil {
			panic(err)
		}
		out[i] = acc.Value(r)
	}
	return out
}

func TestAppenderReusesAndCreatesDimRows(t *testing.T) {
	db := appendTestDB(t)
	app, err := NewAppender(db)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1: existing dim tuple (east,100); row 2: brand-new dim tuple.
	rows := [][]Value{
		{FloatVal(9.5), StringVal("t1"), StringVal("east"), IntVal(100)},
		{FloatVal(2.5), StringVal("t0"), StringVal("north"), IntVal(300)},
	}
	// The view order is amount, tag, region, population.
	want := []string{"amount", "tag", "region", "population"}
	got := db.Columns()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("view columns = %v, want %v", got, want)
		}
	}
	ndb, err := app.Append(rows)
	if err != nil {
		t.Fatal(err)
	}
	if ndb.NumRows() != 6 {
		t.Fatalf("new version has %d rows, want 6", ndb.NumRows())
	}
	if db.NumRows() != 4 {
		t.Fatalf("old version mutated: %d rows, want 4", db.NumRows())
	}
	// Existing tuple reused: no new dim row for east.
	if n := ndb.Dims[0].Table.NumRows(); n != 3 {
		t.Fatalf("dim table has %d rows, want 3 (east/west/north)", n)
	}
	for i, wantRow := range rows {
		gotRow := viewRow(ndb, 4+i)
		for j := range wantRow {
			if gotRow[j] != wantRow[j] {
				t.Fatalf("appended row %d = %v, want %v", i, gotRow, wantRow)
			}
		}
	}
	// Old rows unchanged in the new version.
	for r := 0; r < 4; r++ {
		if viewRow(ndb, r)[0].F != float64(r) {
			t.Fatalf("old row %d changed in new version", r)
		}
	}
}

func TestAppenderValidatesAtomically(t *testing.T) {
	db := appendTestDB(t)
	app, err := NewAppender(db)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Value{
		{FloatVal(1), StringVal("t1"), StringVal("east"), IntVal(100)},
		{FloatVal(1), StringVal("t1"), IntVal(7), IntVal(100)}, // wrong type for region
	}
	if _, err := app.Append(bad); err == nil {
		t.Fatal("want type error")
	}
	if app.DB().NumRows() != 4 {
		t.Fatalf("failed batch mutated the database: %d rows", app.DB().NumRows())
	}
	short := [][]Value{{FloatVal(1)}}
	if _, err := app.Append(short); err == nil {
		t.Fatal("want width error")
	}
}

func TestCloneForAppendSharesPrefix(t *testing.T) {
	db := appendTestDB(t)
	fact := db.Fact
	clone := fact.CloneForAppend()
	clone.MustColumn("amount").AppendFloat(42)
	clone.MustColumn("geo_fk").AppendInt(0)
	clone.MustColumn("tag").AppendString("fresh")
	clone.EndRow()
	if fact.NumRows() != 4 || clone.NumRows() != 5 {
		t.Fatalf("rows: orig %d clone %d, want 4/5", fact.NumRows(), clone.NumRows())
	}
	// New dictionary entry is invisible to the original column header.
	if fact.MustColumn("tag").DictSize() != 1 {
		t.Fatalf("original dict grew: %d", fact.MustColumn("tag").DictSize())
	}
	if clone.MustColumn("tag").DictSize() != 2 {
		t.Fatalf("clone dict = %d, want 2", clone.MustColumn("tag").DictSize())
	}
}

func TestCopyForUpdateIsolatesOverwrites(t *testing.T) {
	db := appendTestDB(t)
	fact := db.Fact
	cp := fact.CopyForUpdate()
	cp.SetRow(0, IntVal(1), FloatVal(99), StringVal("replaced"))
	if fact.MustColumn("amount").Float(0) != 0 {
		t.Fatal("SetRow leaked into the original")
	}
	if cp.MustColumn("amount").Float(0) != 99 {
		t.Fatal("SetRow did not apply")
	}
	if cp.MustColumn("tag").Value(0).S != "replaced" {
		t.Fatal("string overwrite did not apply")
	}
}
