package engine

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	a := NewColumn("name", String)
	b := NewColumn("qty", Int)
	c := NewColumn("price", Float)
	tbl := NewTable("orig", a, b, c)
	tbl.AppendRow(StringVal("tv, big"), IntVal(-3), FloatVal(1.25))
	tbl.AppendRow(StringVal(`quoted "x"`), IntVal(0), FloatVal(1e-9))
	tbl.AppendRow(StringVal(""), IntVal(1<<40), FloatVal(-2.5))

	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.NumCols() != tbl.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.NumRows(), got.NumCols(), tbl.NumRows(), tbl.NumCols())
	}
	for j, col := range got.Columns() {
		want := tbl.Columns()[j]
		if col.Type != want.Type {
			t.Errorf("column %q type %v, want %v", col.Name, col.Type, want.Type)
		}
		for i := 0; i < tbl.NumRows(); i++ {
			if col.Value(i) != want.Value(i) {
				t.Errorf("cell [%d][%d] = %v, want %v", i, j, col.Value(i), want.Value(i))
			}
		}
	}
}

func TestReadCSVTypeInference(t *testing.T) {
	in := "a,b,c,d\n1,1.5,x,2\n2,2,y,3.5\n"
	tbl, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]Type{"a": Int, "b": Float, "c": String, "d": Float}
	for name, wt := range wants {
		if got := tbl.MustColumn(name).Type; got != wt {
			t.Errorf("column %s inferred %v, want %v", name, got, wt)
		}
	}
}

func TestReadCSVEmptyAndErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input not rejected")
	}
	tbl, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || tbl.NumCols() != 2 {
		t.Errorf("header-only CSV gave %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV not rejected")
	}
}

func TestCSVLoadedTableQueryable(t *testing.T) {
	in := "region,amount\nWA,10\nOR,5\nWA,7\n"
	tbl, err := ReadCSV("sales", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	db := MustNewDatabase("csvdb", tbl)
	q := &Query{GroupBy: []string{"region"}, Aggs: []Aggregate{{Kind: Sum, Col: "amount"}}}
	res, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if g := res.Group(EncodeKey([]Value{StringVal("WA")})); g == nil || g.Vals[0] != 17 {
		t.Errorf("WA sum wrong: %+v", g)
	}
}
