package engine

import "dynsample/internal/obs"

// Scan-level instrumentation. Counters are bumped once per ExecuteCtx call —
// never per row or per shard task — so the scan kernels stay untouched and
// the cost is a handful of atomic adds per query.
var (
	obsScans = obs.Default().Counter("aqp_engine_scans_total",
		"Source scans executed (one per rewrite step or exact query).")
	obsScanRows = obs.Default().Counter("aqp_engine_rows_scanned_total",
		"Rows scanned across all source scans.")
	obsScanShards = obs.Default().Counter("aqp_engine_scan_shards_total",
		"Partitioned-scan shards processed across all source scans.")
)

// observeScan records one completed scan.
func observeScan(rows int64, shards int) {
	obsScans.Inc()
	if rows > 0 {
		obsScanRows.Add(uint64(rows))
	}
	obsScanShards.Add(uint64(shards))
}

// ShardsFor reports how many partitioned-scan shards a source of n rows is
// split into — the trace's per-step shard accounting.
func ShardsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ScanShardRows - 1) / ScanShardRows
}
