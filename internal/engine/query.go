package engine

import (
	"fmt"
	"strings"

	"dynsample/internal/bitmask"
)

// Source is anything the executor can scan: the joined base view (*Database)
// or a flat (sample) table (*Table).
type Source interface {
	NumRows() int
	Accessor(col string) (ColumnAccessor, error)
	// RowMask returns the sample-membership mask for a row; ok is false when
	// the source carries no masks.
	RowMask(row int) (m bitmask.Mask, ok bool)
	// RowWeight returns the inverse-sampling-rate weight of a row (1 for
	// unweighted sources).
	RowWeight(row int) float64
}

// ColumnAccessor provides random access to one column of a Source.
type ColumnAccessor interface {
	Value(row int) Value
	Float(row int) float64
}

// CodeAccessor is the fast path for dictionary-encoded (string) columns:
// rows are identified by their int32 dictionary code, which turns hot-loop
// map-of-string lookups into array indexing. Accessors over string columns
// (direct or through a foreign key) implement it.
type CodeAccessor interface {
	ColumnAccessor
	// Code returns the row's dictionary code.
	Code(row int) int32
	// DictSize returns the dictionary size (codes are in [0, DictSize)).
	DictSize() int
	// DictValue maps a code back to its string.
	DictValue(code int32) string
}

// Accessor implements Source for flat tables.
func (t *Table) Accessor(col string) (ColumnAccessor, error) {
	c := t.Column(col)
	if c == nil {
		return nil, fmt.Errorf("engine: table %q has no column %q", t.Name, col)
	}
	return c, nil
}

// RowMask implements Source.
func (t *Table) RowMask(row int) (bitmask.Mask, bool) {
	if t.Masks == nil {
		return bitmask.Mask{}, false
	}
	return t.Masks[row], true
}

// RowWeight implements Source.
func (t *Table) RowWeight(row int) float64 {
	if t.Weights == nil {
		return 1
	}
	return t.Weights[row]
}

// AggKind identifies an aggregation function. Following the paper, the
// engine computes COUNT and SUM; AVG is derived by the middleware layer.
type AggKind uint8

// Supported aggregates.
const (
	Count AggKind = iota
	Sum
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// Aggregate is one aggregation expression in a query's SELECT list.
type Aggregate struct {
	Kind AggKind
	Col  string // aggregated column; empty for COUNT(*)
}

// String renders the aggregate as SQL.
func (a Aggregate) String() string {
	if a.Kind == Count {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Col)
}

// Query is a group-by aggregation query over a Source: the class of queries
// the paper targets (§4): single fact table or star schema, conjunctive
// selection predicates, group-by columns, COUNT/SUM aggregates.
type Query struct {
	GroupBy []string
	Aggs    []Aggregate
	Where   []Predicate // implicit conjunction
}

// Validate checks that the query references only columns known to db and has
// at least one aggregate.
func (q *Query) Validate(db *Database) error {
	if len(q.Aggs) == 0 {
		return fmt.Errorf("engine: query has no aggregates")
	}
	for _, g := range q.GroupBy {
		if !db.HasColumn(g) {
			return fmt.Errorf("engine: unknown group-by column %q", g)
		}
	}
	for _, a := range q.Aggs {
		if a.Kind == Sum && !db.HasColumn(a.Col) {
			return fmt.Errorf("engine: unknown aggregate column %q", a.Col)
		}
	}
	for _, p := range q.Where {
		if !db.HasColumn(p.Column()) {
			return fmt.Errorf("engine: unknown predicate column %q", p.Column())
		}
	}
	return nil
}

// String renders the query as SQL against the logical view "T".
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, g := range q.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g)
	}
	for i, a := range q.Aggs {
		if i > 0 || len(q.GroupBy) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(" FROM T")
	if len(q.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.GroupBy, ", "))
	}
	return sb.String()
}
