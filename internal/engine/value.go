// Package engine implements the in-memory columnar database engine that the
// AQP middleware runs against. It plays the role of the "standard commercial
// database management system running on a back-end server" from §5 of the
// paper: it stores base tables and sample tables as ordinary relations,
// executes aggregation queries with group-bys over single tables and over
// star schemas (fact table joined to dimension tables via foreign keys), and
// supports the per-row bitmask filters and scaling that rewritten sample
// queries require.
package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Type identifies the storage type of a column or value.
type Type uint8

// Supported column types.
const (
	Int Type = iota
	Float
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a dynamically typed scalar. Values are comparable with == when
// their types match, and are usable as map keys.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// IntVal returns an Int-typed value.
func IntVal(v int64) Value { return Value{T: Int, I: v} }

// FloatVal returns a Float-typed value.
func FloatVal(v float64) Value { return Value{T: Float, F: v} }

// StringVal returns a String-typed value.
func StringVal(v string) Value { return Value{T: String, S: v} }

// Float returns the value as a float64 for aggregation. String values are 0.
func (v Value) Float() float64 {
	switch v.T {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	default:
		return 0
	}
}

// Less orders values of the same type. Ordering across types follows the
// Type order so that sorting mixed slices is stable and deterministic.
func (v Value) Less(o Value) bool {
	if v.T != o.T {
		return v.T < o.T
	}
	switch v.T {
	case Int:
		return v.I < o.I
	case Float:
		return v.F < o.F
	default:
		return v.S < o.S
	}
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.T {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "'" + v.S + "'"
	}
}

// GroupKey is an encoded tuple of group-by values, usable as a map key.
type GroupKey string

// EncodeKey packs a tuple of values into a GroupKey. The encoding is
// injective: distinct tuples produce distinct keys.
func EncodeKey(vals []Value) GroupKey {
	return GroupKey(AppendKey(make([]byte, 0, len(vals)*9), vals))
}

// AppendKey appends the GroupKey encoding of vals to dst and returns the
// extended slice. The executor reuses one buffer per scan so the per-row map
// probe allocates nothing.
func AppendKey(dst []byte, vals []Value) []byte {
	var tmp [8]byte
	for _, v := range vals {
		dst = append(dst, byte(v.T))
		switch v.T {
		case Int:
			binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
			dst = append(dst, tmp[:]...)
		case Float:
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
			dst = append(dst, tmp[:]...)
		case String:
			binary.LittleEndian.PutUint64(tmp[:], uint64(len(v.S)))
			dst = append(dst, tmp[:]...)
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// DecodeKey unpacks a GroupKey produced by EncodeKey. It panics on a
// malformed key: engine-internal keys are always well-formed, so a failure
// here is a programming error. Keys read from external input must go
// through DecodeKeyChecked instead.
func DecodeKey(k GroupKey) []Value {
	vals, err := DecodeKeyChecked(k)
	if err != nil {
		panic(err.Error())
	}
	return vals
}

// DecodeKeyChecked unpacks a GroupKey, returning an error instead of
// panicking on malformed bytes — the variant for keys deserialised from
// untrusted input (e.g. a corrupted sample store).
func DecodeKeyChecked(k GroupKey) ([]Value, error) {
	b := []byte(k)
	var vals []Value
	for len(b) > 0 {
		t := Type(b[0])
		b = b[1:]
		switch t {
		case Int:
			if len(b) < 8 {
				return nil, fmt.Errorf("engine: corrupt group key: short int value")
			}
			vals = append(vals, IntVal(int64(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case Float:
			if len(b) < 8 {
				return nil, fmt.Errorf("engine: corrupt group key: short float value")
			}
			vals = append(vals, FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(b))))
			b = b[8:]
		case String:
			if len(b) < 8 {
				return nil, fmt.Errorf("engine: corrupt group key: short string header")
			}
			n := binary.LittleEndian.Uint64(b)
			b = b[8:]
			if n > uint64(len(b)) {
				return nil, fmt.Errorf("engine: corrupt group key: string length %d exceeds %d remaining bytes", n, len(b))
			}
			vals = append(vals, StringVal(string(b[:n])))
			b = b[n:]
		default:
			return nil, fmt.Errorf("engine: corrupt group key, type byte %d", t)
		}
	}
	return vals, nil
}
