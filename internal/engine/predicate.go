package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Predicate is a selection condition on a single column. Queries AND their
// predicates together, matching the workload of §5.2.3 ("the WHERE clause
// included the conjunction of all predicates").
type Predicate interface {
	// Column names the column the predicate tests.
	Column() string
	// Matches reports whether a value satisfies the predicate.
	Matches(v Value) bool
	// String renders the predicate as SQL.
	String() string
}

// InPredicate restricts a column to a set of values — the predicate form the
// paper's workload generator produces ("restricting to rows whose values for
// that column were from a randomly-chosen subset of the distinct values").
type InPredicate struct {
	Col string
	Set map[Value]struct{}
}

// NewIn builds an InPredicate over the given values.
func NewIn(col string, vals ...Value) *InPredicate {
	set := make(map[Value]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return &InPredicate{Col: col, Set: set}
}

// Column implements Predicate.
func (p *InPredicate) Column() string { return p.Col }

// Matches implements Predicate.
func (p *InPredicate) Matches(v Value) bool {
	_, ok := p.Set[v]
	return ok
}

// Values returns the predicate's value set in deterministic order.
func (p *InPredicate) Values() []Value {
	vals := make([]Value, 0, len(p.Set))
	for v := range p.Set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	return vals
}

// String implements Predicate.
func (p *InPredicate) String() string {
	var sb strings.Builder
	sb.WriteString(p.Col)
	sb.WriteString(" IN (")
	for i, v := range p.Values() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CmpOp is a scalar comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// CmpPredicate compares a column against a literal.
type CmpPredicate struct {
	Col string
	Op  CmpOp
	Val Value
}

// NewCmp builds a comparison predicate.
func NewCmp(col string, op CmpOp, val Value) *CmpPredicate {
	return &CmpPredicate{Col: col, Op: op, Val: val}
}

// Column implements Predicate.
func (p *CmpPredicate) Column() string { return p.Col }

// Matches implements Predicate.
func (p *CmpPredicate) Matches(v Value) bool {
	switch p.Op {
	case Eq:
		return v == p.Val
	case Ne:
		return v != p.Val
	case Lt:
		return v.Less(p.Val)
	case Le:
		return !p.Val.Less(v)
	case Gt:
		return p.Val.Less(v)
	case Ge:
		return !v.Less(p.Val)
	default:
		panic(fmt.Sprintf("engine: bad CmpOp %d", p.Op))
	}
}

// String implements Predicate.
func (p *CmpPredicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val)
}

// RangePredicate keeps values in [Lo, Hi] (BETWEEN semantics, inclusive).
type RangePredicate struct {
	Col    string
	Lo, Hi Value
}

// NewRange builds a BETWEEN predicate.
func NewRange(col string, lo, hi Value) *RangePredicate {
	return &RangePredicate{Col: col, Lo: lo, Hi: hi}
}

// Column implements Predicate.
func (p *RangePredicate) Column() string { return p.Col }

// Matches implements Predicate.
func (p *RangePredicate) Matches(v Value) bool {
	return !v.Less(p.Lo) && !p.Hi.Less(v)
}

// String implements Predicate.
func (p *RangePredicate) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", p.Col, p.Lo, p.Hi)
}
