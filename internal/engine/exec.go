package engine

import (
	"context"
	"fmt"

	"dynsample/internal/bitmask"
	"dynsample/internal/faults"
	"dynsample/internal/parallel"
)

// ExecOptions modify a query execution against a sample table, implementing
// the rewriting knobs of §4.2.2: scaling aggregate values by the inverse
// sampling rate and filtering out rows already counted by an earlier sample
// table via the bitmask field.
type ExecOptions struct {
	// Scale multiplies every aggregate contribution. Zero means 1 (no
	// scaling), so the zero value of ExecOptions is exact execution.
	Scale float64
	// ExcludeMask, when non-empty, skips any row whose membership mask
	// shares a bit with it — the "WHERE bitmask & m = 0" filter.
	ExcludeMask bitmask.Mask
	// MarkExact marks every produced group as exact (used for small group
	// tables, which are not downsampled).
	MarkExact bool
	// MaxRows, when > 0, scans only the first MaxRows rows of the source.
	// Over a reservoir sample — whose slots are exchangeable — the prefix is
	// itself a uniform sample, so this is the planner's sampling-fraction
	// knob; the caller compensates by raising Scale.
	MaxRows int
	// Workers selects the scan kernel. 0 (the zero value) runs the serial
	// single-pass kernel, unchanged from the original implementation. Any
	// value >= 1 runs the partitioned kernel: the source is split into
	// fixed row-range shards (ScanShardRows rows each), up to Workers
	// goroutines scan shards concurrently, and the per-shard partial
	// Results are merged in shard order. Because the shard boundaries and
	// the merge order depend only on the source size — never on Workers —
	// the partitioned kernel returns bit-identical answers for every
	// worker count (Workers=1 and Workers=N agree exactly; they may differ
	// from the serial kernel in the last float ulp, since float addition
	// is not associative).
	Workers int
}

// ScanShardRows is the row-range shard size of the partitioned scan kernel.
// It is a constant, not derived from the worker count, so that shard
// boundaries (and therefore floating-point summation order) are a pure
// function of the source — the determinism guarantee of ExecOptions.Workers.
const ScanShardRows = 16384

// boundQuery holds a query's columns resolved against one source: group-by
// and aggregate accessors plus predicate bindings. Accessors are read-only
// and therefore shared freely across scan workers.
type boundQuery struct {
	groupAccs []ColumnAccessor
	aggAccs   []ColumnAccessor
	preds     []boundPred
}

type boundPred struct {
	acc ColumnAccessor
	p   Predicate
}

func bindQuery(src Source, q *Query) (*boundQuery, error) {
	b := &boundQuery{
		groupAccs: make([]ColumnAccessor, len(q.GroupBy)),
		aggAccs:   make([]ColumnAccessor, len(q.Aggs)),
		preds:     make([]boundPred, len(q.Where)),
	}
	for i, g := range q.GroupBy {
		acc, err := src.Accessor(g)
		if err != nil {
			return nil, fmt.Errorf("group-by column: %w", err)
		}
		b.groupAccs[i] = acc
	}
	for i, a := range q.Aggs {
		if a.Kind == Sum {
			acc, err := src.Accessor(a.Col)
			if err != nil {
				return nil, fmt.Errorf("aggregate column: %w", err)
			}
			b.aggAccs[i] = acc
		}
	}
	for i, p := range q.Where {
		acc, err := src.Accessor(p.Column())
		if err != nil {
			return nil, fmt.Errorf("predicate column: %w", err)
		}
		b.preds[i] = boundPred{acc: acc, p: p}
	}
	return b, nil
}

// Execute runs a group-by aggregation query against a source. Per-row
// weights (for weighted samples) are always honoured; uniform sources have
// weight 1. The result's group values are sums of weight*Scale*x where x is
// 1 for COUNT and the measure value for SUM.
//
// With opt.Workers >= 1 the scan is partitioned into row-range shards
// evaluated concurrently (see ExecOptions.Workers); sources and predicates
// are only read, so a single source may serve many Execute calls at once.
//
// Execute is ExecuteCtx with a background context — it cannot be cancelled.
func Execute(src Source, q *Query, opt ExecOptions) (*Result, error) {
	return ExecuteCtx(context.Background(), src, q, opt)
}

// ExecuteCtx is Execute under a context. Cancellation is observed at shard
// boundaries — between ScanShardRows-row chunks on the serial path, between
// shard tasks on the partitioned path — never inside a shard, so an
// uncancelled ExecuteCtx returns answers bit-identical to Execute for every
// worker count. When ctx is cancelled or its deadline passes mid-scan,
// ExecuteCtx returns ctx.Err() promptly (in-flight shards finish first) and
// no partial result.
func ExecuteCtx(ctx context.Context, src Source, q *Query, opt ExecOptions) (*Result, error) {
	scale := opt.Scale
	if scale == 0 {
		scale = 1
	}
	bound, err := bindQuery(src, q)
	if err != nil {
		return nil, err
	}
	n := src.NumRows()
	if opt.MaxRows > 0 && opt.MaxRows < n {
		n = opt.MaxRows
	}
	shards := parallel.Shards(n, ScanShardRows)
	if opt.Workers <= 0 || len(shards) <= 1 {
		// Serial kernel: one Result accumulated in row order, scanned
		// chunk-by-chunk so long scans still observe cancellation. The
		// accumulation order is identical to a single [0, n) pass.
		res := NewResult(q.GroupBy, q.Aggs)
		for i, sh := range shards {
			faults.Fire(ctx, faults.PointScanShard, i)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			scanRange(res, src, q, bound, opt, scale, sh.Lo, sh.Hi)
		}
		observeScan(res.RowsScanned, len(shards))
		return res, nil
	}

	partials := make([]*Result, len(shards))
	err = parallel.ForEachCtx(ctx, opt.Workers, len(shards), func(i int) error {
		faults.Fire(ctx, faults.PointScanShard, i)
		if err := ctx.Err(); err != nil {
			return err
		}
		partials[i] = executeRange(src, q, bound, opt, scale, shards[i].Lo, shards[i].Hi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Merge in shard order: per-group accumulation order is then a pure
	// function of the shard boundaries, independent of the worker count.
	res := partials[0]
	for _, p := range partials[1:] {
		if err := res.Merge(p); err != nil {
			return nil, err
		}
	}
	observeScan(res.RowsScanned, len(shards))
	return res, nil
}

// executeRange is the scan kernel: it evaluates the query over source rows
// [lo, hi) into a fresh Result. It allocates its own key buffers, reads the
// source and predicates but mutates nothing shared, and is therefore safe to
// run concurrently with other ranges of the same source.
func executeRange(src Source, q *Query, bound *boundQuery, opt ExecOptions, scale float64, lo, hi int) *Result {
	res := NewResult(q.GroupBy, q.Aggs)
	scanRange(res, src, q, bound, opt, scale, lo, hi)
	return res
}

// scanRange evaluates source rows [lo, hi) into res, which must have been
// built for the same query shape.
func scanRange(res *Result, src Source, q *Query, bound *boundQuery, opt ExecOptions, scale float64, lo, hi int) {
	keyVals := make([]Value, len(q.GroupBy))
	keyBuf := make([]byte, 0, 64)
	filtering := opt.ExcludeMask.Width() > 0

rows:
	for row := lo; row < hi; row++ {
		if filtering {
			if m, ok := src.RowMask(row); ok && m.Intersects(opt.ExcludeMask) {
				continue
			}
		}
		res.RowsScanned++
		for _, bp := range bound.preds {
			if !bp.p.Matches(bp.acc.Value(row)) {
				continue rows
			}
		}
		res.RowsMatched++

		for i, acc := range bound.groupAccs {
			keyVals[i] = acc.Value(row)
		}
		keyBuf = AppendKey(keyBuf[:0], keyVals)
		g, ok := res.lookup(keyBuf)
		if !ok {
			g = res.insert(string(keyBuf), append([]Value(nil), keyVals...))
		}

		w := src.RowWeight(row) * scale
		for i := range q.Aggs {
			x := 1.0
			if q.Aggs[i].Kind == Sum {
				x = bound.aggAccs[i].Float(row)
			}
			g.Vals[i] += w * x
			g.RawSum[i] += x
			g.RawSumSq[i] += x * x
			g.VarAcc[i] += w * (w - 1) * x * x
		}
		g.RawRows++
		if opt.MarkExact {
			g.Exact = true
		}
	}
}

// ExecuteExact runs a query against the base database with no sampling; the
// ground truth for accuracy experiments. It is ExecuteExactCtx with a
// background context.
func ExecuteExact(db *Database, q *Query) (*Result, error) {
	return ExecuteExactCtx(context.Background(), db, q)
}

// ExecuteExactCtx is ExecuteExact under a context; see ExecuteCtx for the
// cancellation granularity.
func ExecuteExactCtx(ctx context.Context, db *Database, q *Query) (*Result, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	res, err := ExecuteCtx(ctx, db, q, ExecOptions{})
	if err != nil {
		return nil, err
	}
	for _, g := range res.Groups() {
		g.Exact = true
	}
	return res, nil
}
