package engine

import (
	"fmt"

	"dynsample/internal/bitmask"
)

// ExecOptions modify a query execution against a sample table, implementing
// the rewriting knobs of §4.2.2: scaling aggregate values by the inverse
// sampling rate and filtering out rows already counted by an earlier sample
// table via the bitmask field.
type ExecOptions struct {
	// Scale multiplies every aggregate contribution. Zero means 1 (no
	// scaling), so the zero value of ExecOptions is exact execution.
	Scale float64
	// ExcludeMask, when non-empty, skips any row whose membership mask
	// shares a bit with it — the "WHERE bitmask & m = 0" filter.
	ExcludeMask bitmask.Mask
	// MarkExact marks every produced group as exact (used for small group
	// tables, which are not downsampled).
	MarkExact bool
}

// Execute runs a group-by aggregation query against a source. Per-row
// weights (for weighted samples) are always honoured; uniform sources have
// weight 1. The result's group values are sums of weight*Scale*x where x is
// 1 for COUNT and the measure value for SUM.
func Execute(src Source, q *Query, opt ExecOptions) (*Result, error) {
	scale := opt.Scale
	if scale == 0 {
		scale = 1
	}

	groupAccs := make([]ColumnAccessor, len(q.GroupBy))
	for i, g := range q.GroupBy {
		acc, err := src.Accessor(g)
		if err != nil {
			return nil, fmt.Errorf("group-by column: %w", err)
		}
		groupAccs[i] = acc
	}

	aggAccs := make([]ColumnAccessor, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Kind == Sum {
			acc, err := src.Accessor(a.Col)
			if err != nil {
				return nil, fmt.Errorf("aggregate column: %w", err)
			}
			aggAccs[i] = acc
		}
	}

	type boundPred struct {
		acc ColumnAccessor
		p   Predicate
	}
	preds := make([]boundPred, len(q.Where))
	for i, p := range q.Where {
		acc, err := src.Accessor(p.Column())
		if err != nil {
			return nil, fmt.Errorf("predicate column: %w", err)
		}
		preds[i] = boundPred{acc: acc, p: p}
	}

	res := NewResult(q.GroupBy, q.Aggs)
	keyVals := make([]Value, len(q.GroupBy))
	keyBuf := make([]byte, 0, 64)
	filtering := opt.ExcludeMask.Width() > 0

	n := src.NumRows()
rows:
	for row := 0; row < n; row++ {
		if filtering {
			if m, ok := src.RowMask(row); ok && m.Intersects(opt.ExcludeMask) {
				continue
			}
		}
		res.RowsScanned++
		for _, bp := range preds {
			if !bp.p.Matches(bp.acc.Value(row)) {
				continue rows
			}
		}
		res.RowsMatched++

		for i, acc := range groupAccs {
			keyVals[i] = acc.Value(row)
		}
		keyBuf = AppendKey(keyBuf[:0], keyVals)
		g, ok := res.lookup(keyBuf)
		if !ok {
			g = res.insert(string(keyBuf), append([]Value(nil), keyVals...))
		}

		w := src.RowWeight(row) * scale
		for i := range q.Aggs {
			x := 1.0
			if q.Aggs[i].Kind == Sum {
				x = aggAccs[i].Float(row)
			}
			g.Vals[i] += w * x
			g.RawSum[i] += x
			g.RawSumSq[i] += x * x
			g.VarAcc[i] += w * (w - 1) * x * x
		}
		g.RawRows++
		if opt.MarkExact {
			g.Exact = true
		}
	}
	return res, nil
}

// ExecuteExact runs a query against the base database with no sampling; the
// ground truth for accuracy experiments.
func ExecuteExact(db *Database, q *Query) (*Result, error) {
	if err := q.Validate(db); err != nil {
		return nil, err
	}
	res, err := Execute(db, q, ExecOptions{})
	if err != nil {
		return nil, err
	}
	for _, g := range res.Groups() {
		g.Exact = true
	}
	return res, nil
}
