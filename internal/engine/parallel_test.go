package engine

import (
	"math"
	"math/rand"
	"testing"

	"dynsample/internal/bitmask"
)

// randomScanTable builds a weighted, masked table whose shape is derived
// from the seed: two group columns (string and int), a float measure, per-row
// weights in [1, 11) and a 2-bit membership mask.
func randomScanTable(seed int64, n int) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := NewColumn("g", String)
	h := NewColumn("h", Int)
	m := NewColumn("m", Float)
	t := NewTable("t", g, h, m)
	masks := make([]bitmask.Mask, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		g.AppendString("g" + string(rune('a'+rng.Intn(7))))
		h.AppendInt(int64(rng.Intn(5)))
		m.AppendFloat(rng.NormFloat64() * 100)
		t.EndRow()
		mk := bitmask.New(2)
		if rng.Intn(3) == 0 {
			mk.Set(rng.Intn(2))
		}
		masks[i] = mk
		weights[i] = 1 + rng.Float64()*10
	}
	t.Masks = masks
	t.Weights = weights
	return t
}

func scanQuery() *Query {
	return &Query{
		GroupBy: []string{"g", "h"},
		Aggs:    []Aggregate{{Kind: Count}, {Kind: Sum, Col: "m"}},
		Where:   []Predicate{NewCmp("h", Le, IntVal(3))},
	}
}

// resultsBitIdentical requires exact float equality on every accumulator of
// every group, plus matching scan counters and exactness flags.
func resultsBitIdentical(t *testing.T, want, got *Result) {
	t.Helper()
	if want.NumGroups() != got.NumGroups() {
		t.Fatalf("group count: want %d, got %d", want.NumGroups(), got.NumGroups())
	}
	if want.RowsScanned != got.RowsScanned || want.RowsMatched != got.RowsMatched {
		t.Fatalf("counters: want (%d,%d), got (%d,%d)",
			want.RowsScanned, want.RowsMatched, got.RowsScanned, got.RowsMatched)
	}
	for _, k := range want.Keys() {
		wg, gg := want.Group(k), got.Group(k)
		if gg == nil {
			t.Fatalf("group %q missing", k)
		}
		if wg.Exact != gg.Exact || wg.RawRows != gg.RawRows {
			t.Fatalf("group %q: Exact/RawRows mismatch", k)
		}
		for i := range wg.Vals {
			if wg.Vals[i] != gg.Vals[i] || wg.RawSum[i] != gg.RawSum[i] ||
				wg.RawSumSq[i] != gg.RawSumSq[i] || wg.VarAcc[i] != gg.VarAcc[i] {
				t.Fatalf("group %q agg %d: accumulators not bit-identical: %v vs %v",
					k, i, wg, gg)
			}
		}
	}
}

// The partitioned kernel must return bit-identical results for every worker
// count >= 1: shard boundaries and merge order depend only on the source.
func TestExecuteWorkerCountDeterminism(t *testing.T) {
	src := randomScanTable(7, 3*ScanShardRows+137) // 4 shards, last one ragged
	q := scanQuery()
	opt := ExecOptions{Scale: 17.5, ExcludeMask: func() bitmask.Mask {
		m := bitmask.New(2)
		m.Set(1)
		return m
	}()}

	opt.Workers = 1
	want, err := Execute(src, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		opt.Workers = workers
		got, err := Execute(src, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, want, got)
	}
}

// Property: merging per-shard partial results (including empty shards)
// reproduces the single-threaded result — exactly for the group structure
// and row counters, and within float tolerance for the weighted COUNT/SUM
// accumulators; AVG recombined from the merged (sum, count) pair agrees too.
func TestMergeShardPartialsProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		n := 2000 + rng.Intn(4000)
		src := randomScanTable(seed, n)
		q := scanQuery()
		opt := ExecOptions{Scale: 1 + rng.Float64()*20}

		serial, err := Execute(src, q, opt)
		if err != nil {
			t.Fatal(err)
		}

		// Random ragged shard boundaries, with deliberate empty shards.
		cuts := []int{0, 0, rng.Intn(n), rng.Intn(n), n, n}
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		bound, err := bindQuery(src, q)
		if err != nil {
			t.Fatal(err)
		}
		merged := NewResult(q.GroupBy, q.Aggs)
		for i := 1; i < len(cuts); i++ {
			part := executeRange(src, q, bound, opt, opt.Scale, cuts[i-1], cuts[i])
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}

		if merged.NumGroups() != serial.NumGroups() {
			t.Fatalf("seed %d: %d groups merged, %d serial", seed, merged.NumGroups(), serial.NumGroups())
		}
		if merged.RowsScanned != serial.RowsScanned || merged.RowsMatched != serial.RowsMatched {
			t.Fatalf("seed %d: counters diverge", seed)
		}
		for _, k := range serial.Keys() {
			sg, mg := serial.Group(k), merged.Group(k)
			if mg == nil {
				t.Fatalf("seed %d: group %q missing after merge", seed, k)
			}
			if sg.RawRows != mg.RawRows {
				t.Fatalf("seed %d group %q: RawRows %d vs %d", seed, k, sg.RawRows, mg.RawRows)
			}
			for i := range sg.Vals {
				if !closeEnough(sg.Vals[i], mg.Vals[i]) {
					t.Fatalf("seed %d group %q agg %d: %g vs %g", seed, k, i, sg.Vals[i], mg.Vals[i])
				}
				if !closeEnough(sg.VarAcc[i], mg.VarAcc[i]) {
					t.Fatalf("seed %d group %q agg %d: VarAcc %g vs %g", seed, k, i, sg.VarAcc[i], mg.VarAcc[i])
				}
			}
			// AVG = SUM/COUNT recombines from the merged pair.
			if sg.Vals[0] != 0 {
				avgS := sg.Vals[1] / sg.Vals[0]
				avgM := mg.Vals[1] / mg.Vals[0]
				if !closeEnough(avgS, avgM) {
					t.Fatalf("seed %d group %q: AVG %g vs %g", seed, k, avgS, avgM)
				}
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(math.Abs(a)+math.Abs(b))
}

// Merging an empty result is the identity; merging into an empty result
// copies, preserving exactness.
func TestMergeEmptyShards(t *testing.T) {
	src := randomScanTable(3, 500)
	q := scanQuery()
	full, err := Execute(src, q, ExecOptions{MarkExact: true})
	if err != nil {
		t.Fatal(err)
	}
	empty := NewResult(q.GroupBy, q.Aggs)
	if err := full.Merge(empty); err != nil {
		t.Fatal(err)
	}
	fresh := NewResult(q.GroupBy, q.Aggs)
	if err := fresh.Merge(full); err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, full, fresh)
	for _, g := range fresh.Groups() {
		if !g.Exact {
			t.Fatal("exactness lost when merging into an empty result")
		}
	}
}
