package engine

import (
	"bufio"
	"bytes"
	"testing"

	"dynsample/internal/bitmask"
)

func binaryFixture() *Table {
	a := NewColumn("a", String)
	b := NewColumn("b", Int)
	c := NewColumn("c", Float)
	t := NewTable("fix", a, b, c)
	t.AppendRow(StringVal("x"), IntVal(-7), FloatVal(1.5))
	t.AppendRow(StringVal("y"), IntVal(1<<50), FloatVal(-0.25))
	t.AppendRow(StringVal("x"), IntVal(0), FloatVal(0))
	t.Masks = []bitmask.Mask{
		bitmask.FromBits(70, 0, 69),
		bitmask.New(70),
		bitmask.FromBits(70, 33),
	}
	t.Weights = []float64{1, 2.5, 100}
	return t
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := binaryFixture()
	var buf bytes.Buffer
	if err := WriteBinary(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumRows() != orig.NumRows() || got.NumCols() != orig.NumCols() {
		t.Fatalf("shape mismatch: %s %dx%d", got.Name, got.NumRows(), got.NumCols())
	}
	for j, c := range got.Columns() {
		want := orig.Columns()[j]
		if c.Type != want.Type || c.Name != want.Name {
			t.Fatalf("column %d schema mismatch", j)
		}
		for i := 0; i < orig.NumRows(); i++ {
			if c.Value(i) != want.Value(i) {
				t.Errorf("cell [%d][%d]: %v vs %v", i, j, c.Value(i), want.Value(i))
			}
		}
	}
	for i := range orig.Masks {
		if !got.Masks[i].Equal(orig.Masks[i]) {
			t.Errorf("mask %d: %v vs %v", i, got.Masks[i], orig.Masks[i])
		}
	}
	for i, w := range orig.Weights {
		if got.Weights[i] != w {
			t.Errorf("weight %d: %g vs %g", i, got.Weights[i], w)
		}
	}
}

func TestBinaryRoundTripNoSideArrays(t *testing.T) {
	a := NewColumn("a", Int)
	tbl := NewTable("plain", a)
	tbl.AppendRow(IntVal(1))
	var buf bytes.Buffer
	if err := WriteBinary(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Masks != nil || got.Weights != nil {
		t.Error("side arrays materialised from nothing")
	}
}

func TestBinaryMultipleTablesOneStream(t *testing.T) {
	var buf bytes.Buffer
	t1, t2 := binaryFixture(), binaryFixture()
	t2.Name = "second"
	if err := WriteBinary(t1, &buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(t2, &buf); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	g1, err := ReadBinary(br)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(br)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Name != "fix" || g2.Name != "second" {
		t.Errorf("names %q, %q", g1.Name, g2.Name)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(binaryFixture(), &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{3, 8, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Loaded tables must be queryable.
	got, err := ReadBinary(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{GroupBy: []string{"a"}, Aggs: []Aggregate{{Kind: Sum, Col: "c"}}}
	res, err := Execute(got, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 2 {
		t.Errorf("groups = %d", res.NumGroups())
	}
}
