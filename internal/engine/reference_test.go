package engine

import (
	"math"
	"testing"
	"testing/quick"

	"dynsample/internal/bitmask"
	"dynsample/internal/randx"
)

// naiveExecute is an independent, obviously-correct evaluator used as a
// reference: it materialises every row as values and aggregates with plain
// maps, sharing no code with the production executor.
func naiveExecute(src Source, allCols []string, q *Query, opt ExecOptions) map[string][]float64 {
	scale := opt.Scale
	if scale == 0 {
		scale = 1
	}
	out := make(map[string][]float64)
	n := src.NumRows()
	for row := 0; row < n; row++ {
		if opt.ExcludeMask.Width() > 0 {
			if m, ok := src.RowMask(row); ok && m.Intersects(opt.ExcludeMask) {
				continue
			}
		}
		ok := true
		for _, p := range q.Where {
			acc, err := src.Accessor(p.Column())
			if err != nil {
				panic(err)
			}
			if !p.Matches(acc.Value(row)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		key := ""
		for _, g := range q.GroupBy {
			acc, _ := src.Accessor(g)
			key += "\x01" + acc.Value(row).String()
		}
		vals, exists := out[key]
		if !exists {
			vals = make([]float64, len(q.Aggs))
		}
		w := src.RowWeight(row) * scale
		for i, a := range q.Aggs {
			x := 1.0
			if a.Kind == Sum {
				acc, _ := src.Accessor(a.Col)
				x = acc.Float(row)
			}
			vals[i] += w * x
		}
		out[key] = vals
	}
	return out
}

// TestExecuteMatchesNaiveReference cross-checks the production executor
// against the naive evaluator over randomly generated databases, queries,
// masks and weights.
func TestExecuteMatchesNaiveReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		n := 200 + rng.Intn(800)

		a := NewColumn("a", String)
		b := NewColumn("b", Int)
		c := NewColumn("c", Float)
		tbl := NewTable("t", a, b, c)
		za := randx.NewZipf(0.5+rng.Float64()*2, 2+rng.Intn(20))
		for i := 0; i < n; i++ {
			a.AppendString("v" + string(rune('a'+za.Draw(rng)%26)))
			b.AppendInt(int64(rng.Intn(8)))
			c.AppendFloat(rng.NormFloat64() * 10)
			tbl.EndRow()
		}
		// Random side arrays.
		if rng.Intn(2) == 0 {
			tbl.Masks = make([]bitmask.Mask, n)
			for i := range tbl.Masks {
				m := bitmask.New(5)
				for bit := 0; bit < 5; bit++ {
					if rng.Intn(4) == 0 {
						m.Set(bit)
					}
				}
				tbl.Masks[i] = m
			}
		}
		if rng.Intn(2) == 0 {
			tbl.Weights = make([]float64, n)
			for i := range tbl.Weights {
				tbl.Weights[i] = 1 + rng.Float64()*9
			}
		}

		// Random query.
		q := &Query{Aggs: []Aggregate{{Kind: Count}, {Kind: Sum, Col: "c"}}}
		if rng.Intn(2) == 0 {
			q.GroupBy = append(q.GroupBy, "a")
		}
		if rng.Intn(2) == 0 {
			q.GroupBy = append(q.GroupBy, "b")
		}
		switch rng.Intn(3) {
		case 0:
			q.Where = append(q.Where, NewCmp("b", Ge, IntVal(int64(rng.Intn(8)))))
		case 1:
			q.Where = append(q.Where, NewIn("a", StringVal("va"), StringVal("vb"), StringVal("vc")))
		}
		opt := ExecOptions{}
		if rng.Intn(2) == 0 {
			opt.Scale = 1 + rng.Float64()*99
		}
		if tbl.Masks != nil && rng.Intn(2) == 0 {
			opt.ExcludeMask = bitmask.FromBits(5, rng.Intn(5), rng.Intn(5))
		}

		got, err := Execute(tbl, q, opt)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := naiveExecute(tbl, []string{"a", "b", "c"}, q, opt)
		if got.NumGroups() != len(want) {
			t.Logf("seed %d: %d groups vs naive %d", seed, got.NumGroups(), len(want))
			return false
		}
		for _, g := range got.Groups() {
			key := ""
			for _, v := range g.Key {
				key += "\x01" + v.String()
			}
			ref, ok := want[key]
			if !ok {
				t.Logf("seed %d: group %v absent from naive result", seed, g.Key)
				return false
			}
			for i := range g.Vals {
				if math.Abs(g.Vals[i]-ref[i]) > 1e-6*(1+math.Abs(ref[i])) {
					t.Logf("seed %d: group %v agg %d: %g vs naive %g", seed, g.Key, i, g.Vals[i], ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
