package engine

import (
	"math"
	"strings"
	"testing"

	"dynsample/internal/bitmask"
)

// testDB builds the running example from §3 scaled up: a fact table of sales
// with product and quantity plus a store dimension reached via FK.
//
// Fact rows: 6 rows.
//
//	product  quantity  store_fk
//	Stereo   10        0 (Seattle/WA)
//	Stereo   20        0
//	TV       5         1 (Portland/OR)
//	Stereo   30        1
//	TV       7         2 (Spokane/WA)
//	Radio    2         2
func testDB(t *testing.T) *Database {
	t.Helper()
	product := NewColumn("product", String)
	quantity := NewColumn("quantity", Int)
	storeFK := NewColumn("store_fk", Int)
	fact := NewTable("sales", product, quantity, storeFK)
	for _, r := range []struct {
		p  string
		q  int64
		fk int64
	}{
		{"Stereo", 10, 0}, {"Stereo", 20, 0}, {"TV", 5, 1},
		{"Stereo", 30, 1}, {"TV", 7, 2}, {"Radio", 2, 2},
	} {
		fact.AppendRow(StringVal(r.p), IntVal(r.q), IntVal(r.fk))
	}

	city := NewColumn("city", String)
	state := NewColumn("state", String)
	dim := NewTable("store", city, state)
	dim.AppendRow(StringVal("Seattle"), StringVal("WA"))
	dim.AppendRow(StringVal("Portland"), StringVal("OR"))
	dim.AppendRow(StringVal("Spokane"), StringVal("WA"))

	db, err := NewDatabase("test", fact, DimJoin{Table: dim, FK: "store_fk"})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDatabaseColumns(t *testing.T) {
	db := testDB(t)
	cols := db.Columns()
	want := []string{"product", "quantity", "city", "state"}
	if len(cols) != len(want) {
		t.Fatalf("Columns() = %v, want %v", cols, want)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("Columns() = %v, want %v", cols, want)
		}
	}
	if db.HasColumn("store_fk") {
		t.Error("FK column leaked into view columns")
	}
	if db.NumRows() != 6 {
		t.Errorf("NumRows = %d", db.NumRows())
	}
}

func TestDatabaseErrors(t *testing.T) {
	fact := NewTable("f", NewColumn("a", Int))
	if _, err := NewDatabase("x", fact, DimJoin{Table: NewTable("d"), FK: "nope"}); err == nil {
		t.Error("missing FK column not rejected")
	}
	fact2 := NewTable("f", NewColumn("a", String))
	if _, err := NewDatabase("x", fact2, DimJoin{Table: NewTable("d"), FK: "a"}); err == nil {
		t.Error("non-INT FK column not rejected")
	}
	// Duplicate column name across fact and dim.
	f3 := NewTable("f", NewColumn("a", Int), NewColumn("fk", Int))
	d3 := NewTable("d", NewColumn("a", Int))
	if _, err := NewDatabase("x", f3, DimJoin{Table: d3, FK: "fk"}); err == nil {
		t.Error("duplicate column name not rejected")
	}
}

func TestFKAccessor(t *testing.T) {
	db := testDB(t)
	acc, err := db.Accessor("state")
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"WA", "WA", "OR", "OR", "WA", "WA"}
	for i, w := range wants {
		if got := acc.Value(i); got.S != w {
			t.Errorf("row %d state = %v, want %s", i, got, w)
		}
	}
}

func TestExecuteExactGroupBySingleColumn(t *testing.T) {
	db := testDB(t)
	q := &Query{
		GroupBy: []string{"product"},
		Aggs:    []Aggregate{{Kind: Count}, {Kind: Sum, Col: "quantity"}},
	}
	res, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3", res.NumGroups())
	}
	checks := map[string][2]float64{
		"Stereo": {3, 60},
		"TV":     {2, 12},
		"Radio":  {1, 2},
	}
	for name, want := range checks {
		g := res.Group(EncodeKey([]Value{StringVal(name)}))
		if g == nil {
			t.Fatalf("missing group %s", name)
		}
		if g.Vals[0] != want[0] || g.Vals[1] != want[1] {
			t.Errorf("%s: got (%g,%g), want %v", name, g.Vals[0], g.Vals[1], want)
		}
		if !g.Exact {
			t.Errorf("%s: exact flag not set", name)
		}
	}
}

func TestExecuteGroupByDimensionColumn(t *testing.T) {
	db := testDB(t)
	q := &Query{
		GroupBy: []string{"state"},
		Aggs:    []Aggregate{{Kind: Sum, Col: "quantity"}},
	}
	res, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	wa := res.Group(EncodeKey([]Value{StringVal("WA")}))
	or := res.Group(EncodeKey([]Value{StringVal("OR")}))
	if wa == nil || or == nil {
		t.Fatal("missing state group")
	}
	if wa.Vals[0] != 39 { // 10+20+7+2
		t.Errorf("WA sum = %g, want 39", wa.Vals[0])
	}
	if or.Vals[0] != 35 { // 5+30
		t.Errorf("OR sum = %g, want 35", or.Vals[0])
	}
}

func TestExecuteWithPredicates(t *testing.T) {
	db := testDB(t)
	q := &Query{
		GroupBy: []string{"product"},
		Aggs:    []Aggregate{{Kind: Count}},
		Where: []Predicate{
			NewIn("state", StringVal("WA")),
			NewCmp("quantity", Ge, IntVal(7)),
		},
	}
	res, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	// WA rows with quantity>=7: Stereo(10), Stereo(20), TV(7).
	if res.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2", res.NumGroups())
	}
	if g := res.Group(EncodeKey([]Value{StringVal("Stereo")})); g == nil || g.Vals[0] != 2 {
		t.Errorf("Stereo count wrong: %+v", g)
	}
	if g := res.Group(EncodeKey([]Value{StringVal("TV")})); g == nil || g.Vals[0] != 1 {
		t.Errorf("TV count wrong: %+v", g)
	}
	if res.RowsMatched != 3 {
		t.Errorf("RowsMatched = %d, want 3", res.RowsMatched)
	}
	if res.RowsScanned != 6 {
		t.Errorf("RowsScanned = %d, want 6", res.RowsScanned)
	}
}

func TestExecuteNoGroupBy(t *testing.T) {
	db := testDB(t)
	q := &Query{Aggs: []Aggregate{{Kind: Count}, {Kind: Sum, Col: "quantity"}}}
	res, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() != 1 {
		t.Fatalf("groups = %d, want 1", res.NumGroups())
	}
	g := res.Group(EncodeKey(nil))
	if g.Vals[0] != 6 || g.Vals[1] != 74 {
		t.Errorf("totals = %v, want [6 74]", g.Vals)
	}
}

func TestExecuteScaleAndWeights(t *testing.T) {
	db := testDB(t)
	flat := db.Flatten("s", []int{0, 2}, nil, []float64{2, 3})
	q := &Query{Aggs: []Aggregate{{Kind: Count}, {Kind: Sum, Col: "quantity"}}}
	res, err := Execute(flat, q, ExecOptions{Scale: 10})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Group(EncodeKey(nil))
	// Count: 10*(2+3) = 50. Sum: 10*(2*10 + 3*5) = 350.
	if g.Vals[0] != 50 {
		t.Errorf("count = %g, want 50", g.Vals[0])
	}
	if g.Vals[1] != 350 {
		t.Errorf("sum = %g, want 350", g.Vals[1])
	}
	// Raw stats are unscaled.
	if g.RawRows != 2 || g.RawSum[0] != 2 || g.RawSum[1] != 15 {
		t.Errorf("raw stats wrong: %+v", g)
	}
	if g.RawSumSq[1] != 125 { // 100 + 25
		t.Errorf("RawSumSq = %g, want 125", g.RawSumSq[1])
	}
}

func TestExecuteMaskFilter(t *testing.T) {
	db := testDB(t)
	masks := []bitmask.Mask{
		bitmask.FromBits(3, 0),
		bitmask.FromBits(3, 1),
		bitmask.New(3),
	}
	flat := db.Flatten("s", []int{0, 1, 2}, masks, nil)
	q := &Query{Aggs: []Aggregate{{Kind: Count}}}
	res, err := Execute(flat, q, ExecOptions{ExcludeMask: bitmask.FromBits(3, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 has bit 0 -> excluded. Rows 1,2 pass.
	if g := res.Group(EncodeKey(nil)); g.Vals[0] != 2 {
		t.Errorf("count = %g, want 2", g.Vals[0])
	}
	if res.RowsScanned != 2 {
		t.Errorf("RowsScanned = %d, want 2", res.RowsScanned)
	}
}

func TestExecuteMarkExact(t *testing.T) {
	db := testDB(t)
	flat := db.Flatten("s", []int{0, 1}, nil, nil)
	q := &Query{GroupBy: []string{"product"}, Aggs: []Aggregate{{Kind: Count}}}
	res, err := Execute(flat, q, ExecOptions{MarkExact: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups() {
		if !g.Exact {
			t.Errorf("group %v not exact", g.Key)
		}
	}
}

func TestFlattenPreservesValues(t *testing.T) {
	db := testDB(t)
	flat := db.Flatten("s", []int{3, 4}, nil, nil)
	if flat.NumRows() != 2 {
		t.Fatalf("rows = %d", flat.NumRows())
	}
	if got := flat.MustColumn("product").Value(0).S; got != "Stereo" {
		t.Errorf("product[0] = %q", got)
	}
	if got := flat.MustColumn("city").Value(0).S; got != "Portland" {
		t.Errorf("city[0] = %q", got)
	}
	if got := flat.MustColumn("state").Value(1).S; got != "WA" {
		t.Errorf("state[1] = %q", got)
	}
	if got := flat.MustColumn("quantity").Value(1).I; got != 7 {
		t.Errorf("quantity[1] = %d", got)
	}
}

func TestQueryValidate(t *testing.T) {
	db := testDB(t)
	bad := []*Query{
		{GroupBy: []string{"nope"}, Aggs: []Aggregate{{Kind: Count}}},
		{Aggs: []Aggregate{{Kind: Sum, Col: "nope"}}},
		{Aggs: []Aggregate{{Kind: Count}}, Where: []Predicate{NewIn("nope", IntVal(1))}},
		{GroupBy: []string{"product"}},
	}
	for i, q := range bad {
		if err := q.Validate(db); err == nil {
			t.Errorf("query %d not rejected", i)
		}
	}
	good := &Query{GroupBy: []string{"product"}, Aggs: []Aggregate{{Kind: Count}}}
	if err := good.Validate(db); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		GroupBy: []string{"product", "state"},
		Aggs:    []Aggregate{{Kind: Count}, {Kind: Sum, Col: "quantity"}},
		Where:   []Predicate{NewIn("state", StringVal("WA"), StringVal("OR"))},
	}
	s := q.String()
	for _, want := range []string{"SELECT product, state, COUNT(*), SUM(quantity)", "WHERE state IN ('OR', 'WA')", "GROUP BY product, state"} {
		if !strings.Contains(s, want) {
			t.Errorf("query string %q missing %q", s, want)
		}
	}
}

func TestResultMerge(t *testing.T) {
	aggs := []Aggregate{{Kind: Count}}
	a := NewResult([]string{"g"}, aggs)
	b := NewResult([]string{"g"}, aggs)
	k1 := EncodeKey([]Value{IntVal(1)})
	k2 := EncodeKey([]Value{IntVal(2)})

	ga := a.Upsert(k1, func() []Value { return []Value{IntVal(1)} })
	ga.Vals[0] = 5
	ga.RawRows = 5
	ga.Exact = true

	gb := b.Upsert(k1, func() []Value { return []Value{IntVal(1)} })
	gb.Vals[0] = 3
	gb.RawRows = 3
	gb2 := b.Upsert(k2, func() []Value { return []Value{IntVal(2)} })
	gb2.Vals[0] = 7
	gb2.Exact = true

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.NumGroups() != 2 {
		t.Fatalf("groups = %d", a.NumGroups())
	}
	g1 := a.Group(k1)
	if g1.Vals[0] != 8 || g1.RawRows != 8 {
		t.Errorf("merged group: %+v", g1)
	}
	if g1.Exact {
		t.Error("merged group should lose exactness (one side inexact)")
	}
	if g2 := a.Group(k2); g2.Vals[0] != 7 || !g2.Exact {
		t.Errorf("copied group: %+v", g2)
	}
}

func TestResultMergeShapeMismatch(t *testing.T) {
	a := NewResult(nil, []Aggregate{{Kind: Count}})
	b := NewResult(nil, []Aggregate{{Kind: Count}, {Kind: Count}})
	if err := a.Merge(b); err == nil {
		t.Error("shape mismatch not rejected")
	}
}

func TestDistinctValues(t *testing.T) {
	db := testDB(t)
	vcs, err := db.DistinctValues("product")
	if err != nil {
		t.Fatal(err)
	}
	if len(vcs) != 3 {
		t.Fatalf("distinct = %d", len(vcs))
	}
	if vcs[0].Value.S != "Stereo" || vcs[0].Count != 3 {
		t.Errorf("top value %+v", vcs[0])
	}
	if vcs[2].Value.S != "Radio" || vcs[2].Count != 1 {
		t.Errorf("last value %+v", vcs[2])
	}
}

func TestPredicates(t *testing.T) {
	in := NewIn("c", IntVal(1), IntVal(3))
	if !in.Matches(IntVal(1)) || in.Matches(IntVal(2)) {
		t.Error("InPredicate wrong")
	}
	rg := NewRange("c", IntVal(2), IntVal(4))
	for v, want := range map[int64]bool{1: false, 2: true, 3: true, 4: true, 5: false} {
		if rg.Matches(IntVal(v)) != want {
			t.Errorf("range match %d != %v", v, want)
		}
	}
	cases := []struct {
		op   CmpOp
		v    int64
		want bool
	}{
		{Eq, 5, true}, {Eq, 4, false},
		{Ne, 4, true}, {Ne, 5, false},
		{Lt, 4, true}, {Lt, 5, false},
		{Le, 5, true}, {Le, 6, false},
		{Gt, 6, true}, {Gt, 5, false},
		{Ge, 5, true}, {Ge, 4, false},
	}
	for _, c := range cases {
		p := NewCmp("c", c.op, IntVal(5))
		if p.Matches(IntVal(c.v)) != c.want {
			t.Errorf("%v %v 5: want %v", c.v, c.op, c.want)
		}
	}
}

func TestPredicateStrings(t *testing.T) {
	if s := NewIn("a", IntVal(2), IntVal(1)).String(); s != "a IN (1, 2)" {
		t.Errorf("in string %q", s)
	}
	if s := NewCmp("a", Le, FloatVal(1.5)).String(); s != "a <= 1.5" {
		t.Errorf("cmp string %q", s)
	}
	if s := NewRange("a", IntVal(1), IntVal(9)).String(); s != "a BETWEEN 1 AND 9" {
		t.Errorf("range string %q", s)
	}
}

func TestColumnTypeMismatchPanics(t *testing.T) {
	c := NewColumn("x", Int)
	for _, f := range []func(){
		func() { c.Append(StringVal("no")) },
		func() { c.AppendFloat(1) },
		func() { c.AppendString("no") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTableApproxBytes(t *testing.T) {
	db := testDB(t)
	if b := db.Fact.ApproxBytes(); b <= 0 {
		t.Errorf("fact bytes = %d", b)
	}
	if b := db.TotalBytes(); b <= db.Fact.ApproxBytes() {
		t.Errorf("total bytes %d should exceed fact bytes", b)
	}
}

func TestDictionaryEncoding(t *testing.T) {
	c := NewColumn("s", String)
	for i := 0; i < 1000; i++ {
		c.AppendString("v" + string(rune('a'+i%3)))
	}
	if c.DistinctApprox() != 3 {
		t.Errorf("distinct = %d, want 3", c.DistinctApprox())
	}
	if c.Len() != 1000 {
		t.Errorf("len = %d", c.Len())
	}
	if got := c.Value(5).S; got != "vc" {
		t.Errorf("value[5] = %q", got)
	}
}

func TestExactEqualsScaledAtRateOne(t *testing.T) {
	// Sampling at rate 1 with scale 1 must reproduce the exact answer.
	db := testDB(t)
	all := make([]int, db.NumRows())
	for i := range all {
		all[i] = i
	}
	flat := db.Flatten("full", all, nil, nil)
	q := &Query{GroupBy: []string{"product"}, Aggs: []Aggregate{{Kind: Sum, Col: "quantity"}}}
	exact, err := ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Execute(flat, q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumGroups() != approx.NumGroups() {
		t.Fatalf("group counts differ: %d vs %d", exact.NumGroups(), approx.NumGroups())
	}
	for _, k := range exact.Keys() {
		e, a := exact.Group(k), approx.Group(k)
		if a == nil || math.Abs(e.Vals[0]-a.Vals[0]) > 1e-9 {
			t.Errorf("group %v: exact %v approx %+v", DecodeKey(k), e.Vals[0], a)
		}
	}
}
