package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"dynsample/internal/faults"
)

// TestExecuteCtxBackgroundBitIdentical: an uncancelled ExecuteCtx must agree
// exactly with Execute for serial, single-worker and multi-worker scans.
func TestExecuteCtxBackgroundBitIdentical(t *testing.T) {
	tbl := randomScanTable(11, 3*ScanShardRows+123)
	q := scanQuery()
	for _, workers := range []int{0, 1, 4} {
		opt := ExecOptions{Scale: 2.5, Workers: workers}
		want, err := Execute(tbl, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteCtx(context.Background(), tbl, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, want, got)
	}
}

// TestExecuteCtxSerialMatchesParallelAcrossWorkers: the ctx-aware serial
// kernel (chunked per shard) must still accumulate in pure row order, and
// every worker count >= 1 must agree bit-for-bit.
func TestExecuteCtxSerialMatchesAcrossWorkers(t *testing.T) {
	tbl := randomScanTable(7, 2*ScanShardRows+57)
	q := scanQuery()
	w1, err := ExecuteCtx(context.Background(), tbl, q, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		wn, err := ExecuteCtx(context.Background(), tbl, q, ExecOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, w1, wn)
	}
}

// TestExecuteCtxCancelled: an already-cancelled context aborts before any
// row is scanned.
func TestExecuteCtxCancelled(t *testing.T) {
	tbl := randomScanTable(3, ScanShardRows+10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{0, 4} {
		if _, err := ExecuteCtx(ctx, tbl, scanQuery(), ExecOptions{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestExecuteCtxDeadlineAbortsSlowScan: with a fault-injected slow shard, a
// deadline much shorter than the injected delays aborts the scan at a shard
// boundary, long before the full scan could have completed.
func TestExecuteCtxDeadlineAbortsSlowScan(t *testing.T) {
	t.Cleanup(faults.Reset)
	tbl := randomScanTable(5, 4*ScanShardRows) // 4 shards
	const perShard = 250 * time.Millisecond    // full scan would stall >= 1s
	faults.Set(faults.PointScanShard, faults.SleepHook(perShard))

	for _, workers := range []int{0, 1, 2} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		start := time.Now()
		_, err := ExecuteCtx(ctx, tbl, scanQuery(), ExecOptions{Workers: workers})
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want context.DeadlineExceeded", workers, err)
		}
		// All four shards stalled serially would take >= 4*perShard; prompt
		// cancellation must come back after roughly one shard's stall.
		if elapsed > 2*perShard {
			t.Fatalf("workers=%d: cancellation took %v, want well under %v", workers, elapsed, 4*perShard)
		}
	}
}

// TestExecuteExactCtxCancelled: the exact path observes cancellation too.
func TestExecuteExactCtxCancelled(t *testing.T) {
	tbl := randomScanTable(9, ScanShardRows*2)
	tbl.Masks, tbl.Weights = nil, nil
	db := MustNewDatabase("d", tbl)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteExactCtx(ctx, db, scanQuery()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
