package engine

import "fmt"

// Column is a typed, densely packed column of values. String columns are
// dictionary-encoded: distinct strings are stored once and rows hold int32
// codes, which keeps wide categorical schemas (like the 245-column SALES
// database in the paper) compact.
type Column struct {
	Name string
	Type Type

	ints   []int64
	floats []float64
	codes  []int32
	dict   []string
	dictIx map[string]int32
}

// NewColumn returns an empty column of the given type.
func NewColumn(name string, t Type) *Column {
	c := &Column{Name: name, Type: t}
	if t == String {
		c.dictIx = make(map[string]int32)
	}
	return c
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Int:
		return len(c.ints)
	case Float:
		return len(c.floats)
	default:
		return len(c.codes)
	}
}

// Append adds a value to the column. The value type must match.
func (c *Column) Append(v Value) {
	if v.T != c.Type {
		panic(fmt.Sprintf("engine: append %s value to %s column %q", v.T, c.Type, c.Name))
	}
	switch c.Type {
	case Int:
		c.ints = append(c.ints, v.I)
	case Float:
		c.floats = append(c.floats, v.F)
	default:
		c.appendString(v.S)
	}
}

// AppendInt adds an int64 without boxing. The column must be Int-typed.
func (c *Column) AppendInt(v int64) {
	if c.Type != Int {
		panic(fmt.Sprintf("engine: AppendInt on %s column %q", c.Type, c.Name))
	}
	c.ints = append(c.ints, v)
}

// AppendFloat adds a float64 without boxing. The column must be Float-typed.
func (c *Column) AppendFloat(v float64) {
	if c.Type != Float {
		panic(fmt.Sprintf("engine: AppendFloat on %s column %q", c.Type, c.Name))
	}
	c.floats = append(c.floats, v)
}

// AppendString adds a string without boxing. The column must be String-typed.
func (c *Column) AppendString(v string) {
	if c.Type != String {
		panic(fmt.Sprintf("engine: AppendString on %s column %q", c.Type, c.Name))
	}
	c.appendString(v)
}

func (c *Column) appendString(s string) {
	code, ok := c.dictIx[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.dictIx[s] = code
	}
	c.codes = append(c.codes, code)
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	switch c.Type {
	case Int:
		return IntVal(c.ints[i])
	case Float:
		return FloatVal(c.floats[i])
	default:
		return StringVal(c.dict[c.codes[i]])
	}
}

// Int returns the raw int64 at row i. The column must be Int-typed.
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Float returns the value at row i as a float64 for aggregation.
func (c *Column) Float(i int) float64 {
	switch c.Type {
	case Int:
		return float64(c.ints[i])
	case Float:
		return c.floats[i]
	default:
		return 0
	}
}

// DistinctApprox returns the number of distinct values seen so far for
// dictionary-encoded columns, or -1 for numeric columns (unknown without a
// scan).
func (c *Column) DistinctApprox() int {
	if c.Type == String {
		return len(c.dict)
	}
	return -1
}

// Code returns the dictionary code at row i. The column must be String-typed.
func (c *Column) Code(i int) int32 { return c.codes[i] }

// DictSize returns the dictionary size. The column must be String-typed.
func (c *Column) DictSize() int { return len(c.dict) }

// DictValue returns the string for a dictionary code.
func (c *Column) DictValue(code int32) string { return c.dict[code] }
