package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Group is one group of a query answer with its aggregate accumulators.
type Group struct {
	// Key holds the group-by values, in the query's GroupBy order.
	Key []Value
	// Vals holds the (scaled, weighted) aggregate values, one per query
	// aggregate. These are additive across partial results.
	Vals []float64
	// RawRows is the number of unweighted source rows that contributed.
	RawRows int64
	// RawSum and RawSumSq accumulate, per aggregate, the unscaled per-row
	// contributions and their squares (x=1 for COUNT, x=measure for SUM).
	RawSum   []float64
	RawSumSq []float64
	// VarAcc accumulates, per aggregate, the Horvitz-Thompson variance
	// estimate Σ w·(w−1)·x² where w is the row's total weight (per-row
	// weight × scale). Rows stored at rate 100% (w=1) contribute zero, so
	// exact groups automatically get zero-width confidence intervals.
	VarAcc []float64
	// Exact marks groups whose aggregate is known exactly (answered entirely
	// from small group tables); see §4.2.2: "Answers for groups that result
	// from querying small group tables are marked as being exact".
	Exact bool
}

// Result is the (exact or partial) answer to a Query over one Source.
type Result struct {
	GroupBy []string
	Aggs    []Aggregate

	groups map[string]*Group // keyed by GroupKey bytes; string-keyed for the
	// compiler's zero-copy []byte lookup optimisation

	// RowsScanned counts source rows that survived the bitmask filter;
	// RowsMatched additionally satisfied the predicates. RowsScanned is the
	// effective sample size used for confidence intervals.
	RowsScanned int64
	RowsMatched int64
}

// NewResult returns an empty result for the given query shape.
func NewResult(groupBy []string, aggs []Aggregate) *Result {
	return &Result{GroupBy: groupBy, Aggs: aggs, groups: make(map[string]*Group)}
}

// NumGroups returns the number of groups in the result.
func (r *Result) NumGroups() int { return len(r.groups) }

// Group returns the group with the given key, or nil.
func (r *Result) Group(key GroupKey) *Group { return r.groups[string(key)] }

// Upsert returns the group for key, creating it (with the given key values)
// if needed.
func (r *Result) Upsert(key GroupKey, keyVals func() []Value) *Group {
	g, ok := r.groups[string(key)]
	if !ok {
		g = r.insert(string(key), keyVals())
	}
	return g
}

// lookup is the allocation-free probe used by the executor: buf holds the
// encoded key bytes.
func (r *Result) lookup(buf []byte) (*Group, bool) {
	g, ok := r.groups[string(buf)]
	return g, ok
}

func (r *Result) insert(key string, keyVals []Value) *Group {
	g := &Group{
		Key:      keyVals,
		Vals:     make([]float64, len(r.Aggs)),
		RawSum:   make([]float64, len(r.Aggs)),
		RawSumSq: make([]float64, len(r.Aggs)),
		VarAcc:   make([]float64, len(r.Aggs)),
	}
	r.groups[key] = g
	return g
}

// Keys returns all group keys in deterministic (sorted) order.
func (r *Result) Keys() []GroupKey {
	keys := make([]GroupKey, 0, len(r.groups))
	for k := range r.groups {
		keys = append(keys, GroupKey(k))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Groups returns the groups ordered by key.
func (r *Result) Groups() []*Group {
	keys := r.Keys()
	out := make([]*Group, len(keys))
	for i, k := range keys {
		out[i] = r.groups[string(k)]
	}
	return out
}

// Merge adds all groups of other into r. The query shapes must match. A group
// present in both is summed; Exact is kept only if both parts are exact (a
// group fed by both a small group table and the overall sample is estimated,
// not exact).
//
// Merge is the combination step of every partitioned execution path: shard
// partials of one scan, the UNION ALL branches of a rewrite plan, and both at
// once. All accumulators (Vals, RawSum, RawSumSq, VarAcc, RawRows) are
// additive, so merging is exact for COUNT and SUM, and AVG — which the
// middleware derives as SUM/COUNT from two aggregates of the same query —
// recombines correctly because its (sum, count) pair is merged componentwise
// before the division happens. Merging partial results in a fixed order
// yields bit-identical floats regardless of which goroutines produced them.
//
// Merge mutates r only; callers parallelising execution must merge on a
// single goroutine (or otherwise serialise calls).
func (r *Result) Merge(other *Result) error {
	if len(r.Aggs) != len(other.Aggs) {
		return fmt.Errorf("engine: merging results with %d vs %d aggregates", len(r.Aggs), len(other.Aggs))
	}
	if len(r.GroupBy) != len(other.GroupBy) {
		return fmt.Errorf("engine: merging results grouped by %d vs %d columns", len(r.GroupBy), len(other.GroupBy))
	}
	for i := range r.GroupBy {
		if r.GroupBy[i] != other.GroupBy[i] {
			return fmt.Errorf("engine: merging results grouped by %v vs %v", r.GroupBy, other.GroupBy)
		}
	}
	for k, og := range other.groups {
		g, ok := r.groups[k]
		if !ok {
			cp := &Group{
				Key:      og.Key,
				Vals:     append([]float64(nil), og.Vals...),
				RawRows:  og.RawRows,
				RawSum:   append([]float64(nil), og.RawSum...),
				RawSumSq: append([]float64(nil), og.RawSumSq...),
				VarAcc:   append([]float64(nil), og.VarAcc...),
				Exact:    og.Exact,
			}
			r.groups[k] = cp
			continue
		}
		for i := range g.Vals {
			g.Vals[i] += og.Vals[i]
			g.RawSum[i] += og.RawSum[i]
			g.RawSumSq[i] += og.RawSumSq[i]
			g.VarAcc[i] += og.VarAcc[i]
		}
		g.RawRows += og.RawRows
		g.Exact = g.Exact && og.Exact
	}
	r.RowsScanned += other.RowsScanned
	r.RowsMatched += other.RowsMatched
	return nil
}

// String renders the result as a small fixed-width table, for examples and
// the CLI.
func (r *Result) String() string {
	var sb strings.Builder
	for _, g := range r.GroupBy {
		fmt.Fprintf(&sb, "%-18s", g)
	}
	for _, a := range r.Aggs {
		fmt.Fprintf(&sb, "%18s", a.String())
	}
	sb.WriteByte('\n')
	for _, g := range r.Groups() {
		for _, v := range g.Key {
			fmt.Fprintf(&sb, "%-18s", v.String())
		}
		for _, v := range g.Vals {
			fmt.Fprintf(&sb, "%18.2f", v)
		}
		if g.Exact {
			sb.WriteString("  (exact)")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
