package engine

import (
	"fmt"

	"dynsample/internal/bitmask"
)

// Table is a named relation of typed columns. Sample tables additionally
// carry a per-row membership bitmask (the paper's extra bitmask field,
// §4.2.1) and a per-row weight used by weighted sampling strategies.
type Table struct {
	Name string

	cols   []*Column
	byName map[string]int
	rows   int

	// Masks, when non-nil, holds one small-group membership mask per row.
	Masks []bitmask.Mask
	// Weights, when non-nil, holds one inverse-sampling-rate weight per row.
	Weights []float64
}

// NewTable returns an empty table with the given column definitions.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		t.addColumn(c)
	}
	return t
}

func (t *Table) addColumn(c *Column) {
	if _, dup := t.byName[c.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate column %q in table %q", c.Name, t.Name))
	}
	if c.Len() != t.rows && len(t.cols) > 0 {
		panic(fmt.Sprintf("engine: column %q has %d rows, table %q has %d", c.Name, c.Len(), t.Name, t.rows))
	}
	if len(t.cols) == 0 {
		t.rows = c.Len()
	}
	t.byName[c.Name] = len(t.cols)
	t.cols = append(t.cols, c)
}

// AddColumn appends a column definition; its length must match the table.
func (t *Table) AddColumn(c *Column) { t.addColumn(c) }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the table's columns in schema order.
// The returned slice is shared; callers must not modify it.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.cols[i]
	}
	return nil
}

// MustColumn returns the named column or panics.
func (t *Table) MustColumn(name string) *Column {
	c := t.Column(name)
	if c == nil {
		panic(fmt.Sprintf("engine: table %q has no column %q", t.Name, name))
	}
	return c
}

// AppendRow adds a full row of values in schema order.
func (t *Table) AppendRow(vals ...Value) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("engine: row has %d values, table %q has %d columns", len(vals), t.Name, len(t.cols)))
	}
	for i, v := range vals {
		t.cols[i].Append(v)
	}
	t.rows++
}

// EndRow records one appended row after values were pushed directly onto
// every column (the allocation-free bulk-load path used by the generators).
// It panics if any column is out of step.
func (t *Table) EndRow() {
	for _, c := range t.cols {
		if c.Len() != t.rows+1 {
			panic(fmt.Sprintf("engine: EndRow on table %q: column %q has %d rows, want %d", t.Name, c.Name, c.Len(), t.rows+1))
		}
	}
	t.rows++
}

// RowValues returns the values of row i in schema order.
func (t *Table) RowValues(i int) []Value {
	vals := make([]Value, len(t.cols))
	for j, c := range t.cols {
		vals[j] = c.Value(i)
	}
	return vals
}

// ColumnNames returns the column names in schema order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// ApproxBytes estimates the in-memory size of the table's data, used for the
// space-overhead experiment (§5.4.2).
func (t *Table) ApproxBytes() int64 {
	var b int64
	for _, c := range t.cols {
		switch c.Type {
		case Int:
			b += int64(len(c.ints)) * 8
		case Float:
			b += int64(len(c.floats)) * 8
		default:
			b += int64(len(c.codes)) * 4
			for _, s := range c.dict {
				b += int64(len(s))
			}
		}
	}
	if t.Masks != nil && t.rows > 0 {
		b += int64(t.rows) * int64(8*((t.Masks[0].Width()+63)/64))
	}
	if t.Weights != nil {
		b += int64(len(t.Weights)) * 8
	}
	return b
}
