package ingest

import (
	"bytes"
	"testing"

	"dynsample/internal/engine"
)

// FuzzWALDecode proves the batch decoder never panics and never
// over-allocates on arbitrary bytes — the payload it sees normally passed a
// CRC, but a hostile file dropped into the wal dir must still only produce
// an error. Seeds include valid encodings and targeted mutants so the
// fuzzer starts deep inside the format.
func FuzzWALDecode(f *testing.F) {
	mk := func(seq uint64, id string, rows [][]engine.Value) []byte {
		p, err := EncodeBatch(&Batch{Seq: seq, ID: id, Rows: rows})
		if err != nil {
			f.Fatal(err)
		}
		return p
	}
	valid := mk(7, "req-42", [][]engine.Value{
		{engine.StringVal("A0"), engine.IntVal(11), engine.FloatVal(2.5)},
		{engine.StringVal("rare"), engine.IntVal(-3), engine.FloatVal(0)},
	})
	f.Add(valid)
	f.Add(mk(1, "", [][]engine.Value{{engine.IntVal(1)}}))
	f.Add(valid[:len(valid)/2]) // truncated mid-row
	f.Add(valid[:11])           // dies inside the header
	for _, off := range []int{0, 1, 9, 13, 20, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 1 << (off % 8) // bit-flipped mutants
		f.Add(mut)
	}
	// Header lying about a huge row count (nrows sits after the 11-byte
	// fixed header plus the 6-byte id): must error, not allocate.
	lie := append([]byte(nil), valid...)
	lie[17], lie[18], lie[19], lie[20] = 0xff, 0xff, 0xff, 0x7f
	f.Add(lie)
	f.Add([]byte{})
	f.Add([]byte{batchVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if b == nil {
			t.Fatal("nil batch with nil error")
		}
		// The encoding is canonical: a successfully decoded payload must
		// re-encode to the identical bytes.
		re, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip changed bytes: %d in, %d out", len(data), len(re))
		}
	})
}
