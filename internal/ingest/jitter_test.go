package ingest

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitterBackoffRange is the satellite regression test for the degraded
// probe loop: every drawn wait must stay in [d/2, d] (never shorter than
// half the schedule, never longer than it), and the draws must actually
// vary — a constant would re-synchronize every degraded process sharing a
// disk, which is the failure mode the jitter exists to break.
func TestJitterBackoffRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []time.Duration{
		500 * time.Millisecond, time.Second, 30 * time.Second,
	} {
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			got := jitterBackoff(rng, d)
			if got < d/2 || got > d {
				t.Fatalf("jitterBackoff(%v) = %v, want in [%v, %v]", d, got, d/2, d)
			}
			seen[got] = true
		}
		if len(seen) < 2 {
			t.Errorf("jitterBackoff(%v) produced no variation over 200 draws", d)
		}
	}
}

func TestJitterBackoffDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []time.Duration{0, 1, -5} {
		if got := jitterBackoff(rng, d); got != d {
			t.Errorf("jitterBackoff(%v) = %v, want passthrough for degenerate input", d, got)
		}
	}
}
