package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dynsample/internal/faults"
)

func mustReplay(t *testing.T, dir string) (payloads [][]byte, torn bool) {
	t.Helper()
	_, torn, err := Replay(dir, func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return payloads, torn
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("first"), []byte("second"), []byte("third record, longer")}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn := mustReplay(t, dir)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWALRejectsOversizeRecord(t *testing.T) {
	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if err := w.Append(make([]byte, maxRecordSize+1)); err == nil {
		t.Error("oversize record accepted")
	}
}

// TestWALTornTailRecovery simulates a crash mid-append: a partial frame at
// the end of the final segment. Replay must surface the durable records and
// flag the torn tail; reopening must truncate it so new appends are clean.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("batch-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg := filepath.Join(dir, segName(w.segIndex))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A frame header promising 100 bytes followed by only 10: the shape a
	// power cut leaves behind.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	f.Write(hdr[:])
	f.Write([]byte("only10byts"))
	f.Close()

	got, torn := mustReplay(t, dir)
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want the 3 durable ones", len(got))
	}

	// Reopen: the torn tail must be cut, reported, and further appends
	// replayable.
	before, _ := os.Stat(seg)
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Torn() {
		t.Error("OpenWAL did not report the truncated torn tail")
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if err := w2.Append([]byte("batch-3")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	got, torn = mustReplay(t, dir)
	if torn || len(got) != 4 || string(got[3]) != "batch-3" {
		t.Fatalf("after recovery: %d records (torn=%v), want 4 clean", len(got), torn)
	}
	w3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Torn() {
		t.Error("clean reopen reported a torn tail")
	}
	w3.Close()
}

// TestWALMidSegmentCorruptionWithLaterRecordsIsFatal: an invalid frame with
// intact records behind it — even in the final segment — is bit rot, not a
// torn tail: a crash cannot manufacture valid records past the point the log
// stopped. Truncating there would silently delete acknowledged batches, so
// both Replay and OpenWAL must refuse with ErrCorrupt.
func TestWALMidSegmentCorruptionWithLaterRecordsIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("batch-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg := filepath.Join(dir, segName(w.segIndex))
	w.Close()

	// Flip one payload bit of the FIRST record, leaving two valid ones after.
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(segMagic)+8+2] ^= 0x04
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Replay(dir, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt for mid-segment corruption", err)
	}
	if _, err := OpenWAL(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open error = %v, want ErrCorrupt instead of truncating acknowledged records", err)
	}
}

// TestWALFailedAppendRollsBackFrame: an fsync failure happens after the frame
// bytes reached the file. Without a rollback a retried batch would append a
// second record with the same sequence number (ErrCorrupt at the next
// startup); the WAL must truncate the failed frame so the retry lands clean.
func TestWALFailedAppendRollsBackFrame(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	faults.SetErr(faults.PointWALSync, faults.FailNth(0, boom))
	t.Cleanup(faults.Reset)
	for i := 0; i < 2; i++ {
		if err := w.Append([]byte("doomed")); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want injected fsync failure", i, err)
		}
	}
	faults.Reset()
	if err := w.Append([]byte("retried")); err != nil {
		t.Fatalf("append after repaired failure: %v", err)
	}
	w.Close()
	got, torn := mustReplay(t, dir)
	if torn {
		t.Error("failed appends left a torn frame behind")
	}
	if len(got) != 2 || string(got[0]) != "durable" || string(got[1]) != "retried" {
		t.Fatalf("replayed %d records %q, want the durable and retried ones only", len(got), got)
	}
}

// TestWALFlippedBitDetected plants one flipped bit in a record on its way
// to disk; the checksum must reject it on replay.
func TestWALFlippedBitDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("good record")); err != nil {
		t.Fatal(err)
	}
	faults.SetData(faults.PointWALRecord, faults.FlipBit(0, 12))
	t.Cleanup(faults.Reset)
	if err := w.Append([]byte("silently corrupted")); err != nil {
		t.Fatal(err)
	}
	faults.Reset()
	w.Close()
	got, torn := mustReplay(t, dir)
	if !torn {
		t.Fatal("corrupt record not detected")
	}
	if len(got) != 1 || string(got[0]) != "good record" {
		t.Fatalf("replay returned %d records, want just the intact one", len(got))
	}
}

// TestWALSyncFailureNotAcknowledged injects an fsync failure: Append must
// return the error, so the coordinator never acknowledges the batch.
func TestWALSyncFailureNotAcknowledged(t *testing.T) {
	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	boom := errors.New("disk on fire")
	faults.SetErr(faults.PointWALSync, faults.FailNth(0, boom))
	t.Cleanup(faults.Reset)
	if err := w.Append([]byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("append error = %v, want injected fsync failure", err)
	}
}

// TestWALCorruptionInEarlierSegmentIsFatal: a bad record is only tolerable
// as the torn tail of the final segment; anywhere earlier it means an
// acknowledged batch is gone, and replay must refuse rather than silently
// skip it.
func TestWALCorruptionInEarlierSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.maxBytes = 1 // force rotation after every record
	if err := w.Append([]byte("in segment zero")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("in segment one")); err != nil {
		t.Fatal(err)
	}
	if w.segIndex < 1 {
		t.Fatal("rotation did not happen")
	}
	w.Close()

	// Flip one payload byte in segment 0.
	seg0 := filepath.Join(dir, segName(0))
	b, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	b[len(segMagic)+8+3] ^= 0x40
	if err := os.WriteFile(seg0, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(dir, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt", err)
	}
}

// TestWALSegmentGapIsFatal: a missing middle segment is data loss.
func TestWALSegmentGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.maxBytes = 1 // force rotation after every record
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(dir, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt for a segment gap", err)
	}
}

// TestWALRotationReplaysAcrossSegments writes enough records to rotate and
// checks replay order spans segments seamlessly.
func TestWALRotationReplaysAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.maxBytes = 128
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if w.segIndex == 0 {
		t.Fatal("expected at least one rotation")
	}
	w.Close()
	got, torn := mustReplay(t, dir)
	if torn || len(got) != n {
		t.Fatalf("replayed %d records (torn=%v), want %d clean", len(got), torn, n)
	}
	for i, p := range got {
		if want := fmt.Sprintf("record-%02d", i); string(p) != want {
			t.Fatalf("record %d = %q, want %q (order must span segments)", i, p, want)
		}
	}
}
