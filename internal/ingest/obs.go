package ingest

import "dynsample/internal/obs"

// The ingest metric family. Rates (rows, batches by outcome), the sample
// maintenance effects (reservoir swaps, small-group inserts), the drift
// gauge the rebuild policy acts on, and the WAL fsync latency histogram —
// fsync dominates ingest latency, so it gets its own distribution with
// sub-millisecond buckets.
var (
	obsRows = obs.Default().Counter("aqp_ingest_rows_total",
		"Rows appended to the base data by acknowledged ingest batches.")
	obsBatches = obs.Default().CounterVec("aqp_ingest_batches_total",
		"Ingest batches by outcome (ok, duplicate, invalid, error, overload).", "status")
	obsReservoirSwaps = obs.Default().Counter("aqp_ingest_reservoir_swaps_total",
		"Overall-sample reservoir slots replaced by ingested rows.")
	obsSmallGroupInserts = obs.Default().Counter("aqp_ingest_smallgroup_inserts_total",
		"Rows inserted into small group tables by ingest.")
	obsDrift = obs.Default().Gauge("aqp_ingest_drift",
		"Common-set drift: heaviest rare value count over the t*N threshold; crossing 1 triggers a rebuild.")
	obsDataGen = obs.Default().Gauge("aqp_ingest_data_generation",
		"Ingest batches applied to the serving database version.")
	obsReplayed = obs.Default().Counter("aqp_ingest_replayed_batches_total",
		"Batches re-applied from the WAL at startup.")
	obsWALFsync = obs.Default().Histogram("aqp_ingest_wal_fsync_seconds",
		"WAL fsync latency per acknowledged batch.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5})
	obsWALSegments = obs.Default().Gauge("aqp_ingest_wal_segments",
		"WAL segments created so far (the active segment included).")
)
