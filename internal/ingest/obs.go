package ingest

import "dynsample/internal/obs"

// The ingest metric family. Rates (rows, batches by outcome), the sample
// maintenance effects (reservoir swaps, small-group inserts), the drift
// gauge the rebuild policy acts on, and the WAL fsync latency histogram —
// fsync dominates ingest latency, so it gets its own distribution with
// sub-millisecond buckets.
var (
	obsRows = obs.Default().Counter("aqp_ingest_rows_total",
		"Rows appended to the base data by acknowledged ingest batches.")
	obsBatches = obs.Default().CounterVec("aqp_ingest_batches_total",
		"Ingest batches by outcome (ok, duplicate, invalid, error, overload).", "status")
	obsReservoirSwaps = obs.Default().Counter("aqp_ingest_reservoir_swaps_total",
		"Overall-sample reservoir slots replaced by ingested rows.")
	obsSmallGroupInserts = obs.Default().Counter("aqp_ingest_smallgroup_inserts_total",
		"Rows inserted into small group tables by ingest.")
	obsDrift = obs.Default().Gauge("aqp_ingest_drift",
		"Common-set drift: heaviest rare value count over the t*N threshold; crossing 1 triggers a rebuild.")
	obsDataGen = obs.Default().Gauge("aqp_ingest_data_generation",
		"Ingest batches applied to the serving database version.")
	obsReplayed = obs.Default().Counter("aqp_ingest_replayed_batches_total",
		"Batches re-applied from the WAL at startup.")
	obsWALFsync = obs.Default().Histogram("aqp_ingest_wal_fsync_seconds",
		"WAL fsync latency per acknowledged batch.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5})
	obsWALSegments = obs.Default().Gauge("aqp_ingest_wal_segments",
		"WAL segments created so far (the active segment included).")

	// Checkpoint lifecycle: how much work each startup replay did (bounded by
	// ingest-since-last-checkpoint once checkpoints run), how segment GC is
	// going, and whether ingest is currently degraded by a disk fault.
	obsReplayBytes = obs.Default().Counter("aqp_ingest_replay_bytes_total",
		"Valid WAL bytes scanned during startup replays.")
	obsReplaySegments = obs.Default().Counter("aqp_ingest_replay_segments_total",
		"WAL segments scanned during startup replays.")
	obsReplaySeconds = obs.Default().Gauge("aqp_ingest_replay_seconds",
		"Wall-clock duration of the most recent startup WAL replay.")
	obsReplaySkipped = obs.Default().Counter("aqp_ingest_replay_skipped_batches_total",
		"WAL batches skipped during replay because the loaded checkpoint already covers them.")
	obsWALGCRemoved = obs.Default().Counter("aqp_ingest_wal_gc_removed_total",
		"WAL segments deleted because a checkpoint fully covers them.")
	obsWALGCErrors = obs.Default().Counter("aqp_ingest_wal_gc_errors_total",
		"WAL segment deletions that failed; retried at the next checkpoint or startup.")
	obsCheckpoints = obs.Default().CounterVec("aqp_ingest_checkpoints_total",
		"Checkpointed snapshot saves by outcome (ok, error).", "status")
	obsDegraded = obs.Default().Gauge("aqp_ingest_degraded",
		"1 while ingest is degraded (WAL write failure; queries serve, ingest returns 503), else 0.")
	obsProbes = obs.Default().CounterVec("aqp_ingest_probes_total",
		"Degraded-mode WAL re-probe attempts by outcome (ok, error).", "status")
)
