package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/randx"
)

// ingestDB builds a deterministic skewed single-table database: column a is
// 80% "A0", 15% "A1", 5% tail; b is uniform; m is a measure.
func ingestDB(t testing.TB, n int) *engine.Database {
	t.Helper()
	a := engine.NewColumn("a", engine.String)
	b := engine.NewColumn("b", engine.String)
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", a, b, m)
	rng := randx.New(4242)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.80:
			a.AppendString("A0")
		case r < 0.95:
			a.AppendString("A1")
		default:
			a.AppendString("A" + string(rune('2'+rng.Intn(8))))
		}
		b.AppendString("B" + string(rune('0'+rng.Intn(4))))
		m.AppendInt(int64(i%31) + 1)
		fact.EndRow()
	}
	db, err := engine.NewDatabase("ingesttest", fact)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func ingestRows(rng *rand.Rand, count int) [][]engine.Value {
	rows := make([][]engine.Value, count)
	for i := range rows {
		var a string
		switch r := rng.Float64(); {
		case r < 0.78:
			a = "A0"
		case r < 0.93:
			a = "A1"
		default:
			a = "A" + string(rune('2'+rng.Intn(8)))
		}
		rows[i] = []engine.Value{
			engine.StringVal(a),
			engine.StringVal("B" + string(rune('0'+rng.Intn(4)))),
			engine.IntVal(int64(rng.Intn(31)) + 1),
		}
	}
	return rows
}

var ingestSGCfg = core.SmallGroupConfig{
	BaseRate: 0.05, SmallGroupFraction: 0.05, DistinctLimit: 100, Seed: 17,
}

// newIngestSystem builds base data, preprocesses it, and attaches a
// coordinator over a WAL in dir.
func newIngestSystem(t testing.TB, n int, dir string, cfg Config) (*core.System, *Coordinator, *WAL) {
	t.Helper()
	sys := core.NewSystem(ingestDB(t, n))
	if err := sys.AddStrategy(core.NewSmallGroup(ingestSGCfg)); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	c, err := New(sys, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, c, w
}

// answersOf snapshots the approximate answer for a grouped query in a
// deterministic comparable form: every float is rendered bit-exactly.
func answersOf(t testing.TB, sys *core.System) string {
	t.Helper()
	q := &engine.Query{
		GroupBy: []string{"a", "b"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}},
	}
	ans, err := sys.Approx("smallgroup", q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, key := range ans.Result.Keys() {
		g := ans.Result.Group(key)
		fmt.Fprintf(&buf, "%v exact=%v", g.Key, g.Exact)
		for i, v := range g.Vals {
			iv := ans.Interval(key, i)
			fmt.Fprintf(&buf, " %016x[%016x,%016x]",
				math.Float64bits(v), math.Float64bits(iv.Lo), math.Float64bits(iv.Hi))
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestCoordinatorCrashRecoveryBitIdentical is the crash-recovery acceptance
// test: ingest batches, tear the last WAL write mid-record, restart onto a
// regenerated base, and require (a) every durable batch replayed, (b) the
// torn tail rejected, and (c) answers bit-identical to a process that never
// crashed.
func TestCoordinatorCrashRecoveryBitIdentical(t *testing.T) {
	const n = 4000
	cfg := Config{Online: core.OnlineConfig{Seed: 33}}
	mkBatches := func() [][][]engine.Value {
		rng := randx.New(777)
		out := make([][][]engine.Value, 4)
		for i := range out {
			out[i] = ingestRows(rng, 200)
		}
		return out
	}

	// Reference: a run that never crashes.
	dirRef := t.TempDir()
	sysRef, cRef, _ := newIngestSystem(t, n, dirRef, cfg)
	for i, rows := range mkBatches() {
		if _, err := cRef.Ingest(fmt.Sprintf("ref-%d", i), rows); err != nil {
			t.Fatal(err)
		}
	}
	want := answersOf(t, sysRef)

	// Crashing run: same batches, then a torn record at the WAL tail.
	dir := t.TempDir()
	_, c1, w1 := newIngestSystem(t, n, dir, cfg)
	for i, rows := range mkBatches() {
		if _, err := c1.Ingest(fmt.Sprintf("batch-%d", i), rows); err != nil {
			t.Fatal(err)
		}
	}
	seg := filepath.Join(dir, segName(w1.segIndex))
	w1.Close()
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 5000)
	f.Write(hdr[:])
	f.Write([]byte("partial batch that never fsynced fu"))
	f.Close()

	// Restart: regenerated base + fresh preprocess + WAL replay.
	sys2, c2, _ := newIngestSystem(t, n, dir, cfg)
	rs, err := c2.ReplayWAL()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Batches != 4 {
		t.Fatalf("replayed %d batches, want 4 durable ones (torn tail rejected)", rs.Batches)
	}
	if g := c2.Generation(); g != 4 {
		t.Fatalf("generation after replay = %d, want 4", g)
	}
	if got := answersOf(t, sys2); got != want {
		t.Error("answers after crash recovery differ from the never-crashed run")
	}
	// A client retry of a pre-crash batch must be recognised across the
	// restart.
	if _, err := c2.Ingest("batch-2", mkBatches()[2]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("pre-crash batch id retried after restart: err = %v, want ErrDuplicate", err)
	}
}

// TestCoordinatorSnapshotRestoreReplay restarts from a mid-stream sample
// snapshot: covered batches must replay base-only, later ones in full, and
// answers must match the uninterrupted run bit-for-bit.
func TestCoordinatorSnapshotRestoreReplay(t *testing.T) {
	const n = 4000
	cfg := Config{Online: core.OnlineConfig{Seed: 91}}
	mkBatches := func() [][][]engine.Value {
		rng := randx.New(555)
		out := make([][][]engine.Value, 4)
		for i := range out {
			out[i] = ingestRows(rng, 150)
		}
		return out
	}

	dir := t.TempDir()
	sys1, c1, w1 := newIngestSystem(t, n, dir, cfg)
	batches := mkBatches()
	for i := 0; i < 2; i++ {
		if _, err := c1.Ingest("", batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the maintained samples at generation 2 (what aqpd persists).
	var snap bytes.Buffer
	p, _ := sys1.Prepared("smallgroup")
	if err := core.SaveSmallGroup(&snap, p); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := c1.Ingest("", batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := answersOf(t, sys1)
	w1.Close()

	// Restart path: regenerated base + restored snapshot + full WAL replay.
	sys2 := core.NewSystem(ingestDB(t, n))
	restored, err := core.LoadSmallGroup(&snap)
	if err != nil {
		t.Fatal(err)
	}
	sys2.AddPrepared("smallgroup", restored)
	if g := core.DataGenerationOf(restored); g != 2 {
		t.Fatalf("snapshot generation = %d, want 2", g)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Restored states don't carry the small-group fraction; supply it.
	cfg2 := cfg
	cfg2.Online.SmallGroupFraction = ingestSGCfg.SmallGroupFraction
	c2, err := New(sys2, w2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c2.ReplayWAL()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Torn || rs.Batches != 4 {
		t.Fatalf("replayed %d batches (torn=%v), want 4", rs.Batches, rs.Torn)
	}
	if got := answersOf(t, sys2); got != want {
		t.Error("answers after snapshot restore + replay differ from uninterrupted run")
	}
}

func TestCoordinatorIdempotency(t *testing.T) {
	sys, c, _ := newIngestSystem(t, 2000, t.TempDir(), Config{Online: core.OnlineConfig{Seed: 5}})
	rows := ingestRows(randx.New(1), 50)
	st1, err := c.Ingest("dup-1", rows)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Ingest("dup-1", rows)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("second ingest err = %v, want ErrDuplicate", err)
	}
	if st2 != st1 {
		t.Fatalf("duplicate returned %+v, want original stats %+v", st2, st1)
	}
	if g := c.Generation(); g != 1 {
		t.Fatalf("generation = %d after duplicate, want 1", g)
	}
	if got := sys.DB().NumRows(); got != 2050 {
		t.Fatalf("base rows = %d, want 2050 (no double append)", got)
	}
}

func TestCoordinatorIdempotencyWindowEvicts(t *testing.T) {
	_, c, _ := newIngestSystem(t, 2000, t.TempDir(),
		Config{Online: core.OnlineConfig{Seed: 6}, IdempotencyWindow: 2})
	rng := randx.New(2)
	for i := 0; i < 3; i++ {
		if _, err := c.Ingest(fmt.Sprintf("id-%d", i), ingestRows(rng, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// id-0 was evicted by id-2; replaying it appends again (at-least-once
	// beyond the window), while id-2 is still deduplicated.
	if _, err := c.Ingest("id-0", ingestRows(rng, 10)); err != nil {
		t.Fatalf("evicted id rejected: %v", err)
	}
	if _, err := c.Ingest("id-2", ingestRows(rng, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("recent id not deduplicated: %v", err)
	}
}

func TestCoordinatorInvalidBatchNotLogged(t *testing.T) {
	dir := t.TempDir()
	_, c, _ := newIngestSystem(t, 2000, dir, Config{Online: core.OnlineConfig{Seed: 7}})
	// Wrong arity and wrong type must both fail before touching the WAL.
	if _, err := c.Ingest("", [][]engine.Value{{engine.StringVal("A0")}}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := c.Ingest("", [][]engine.Value{{engine.IntVal(1), engine.StringVal("B0"), engine.IntVal(2)}}); err == nil {
		t.Fatal("mistyped row accepted")
	}
	if _, err := c.Ingest("", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	got, _ := mustReplay(t, dir)
	if len(got) != 0 {
		t.Fatalf("invalid batches reached the WAL: %d records", len(got))
	}
	if g := c.Generation(); g != 0 {
		t.Fatalf("generation advanced to %d on invalid input", g)
	}
}

// TestCoordinatorBackpressure holds the WAL fsync hostage so a first ingest
// occupies the pipeline, then checks an excess request fails fast with
// ErrOverloaded instead of queueing.
func TestCoordinatorBackpressure(t *testing.T) {
	_, c, _ := newIngestSystem(t, 2000, t.TempDir(),
		Config{Online: core.OnlineConfig{Seed: 8}, MaxPending: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	faults.SetErr(faults.PointWALSync, func(int) error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	t.Cleanup(faults.Reset)

	rng := randx.New(3)
	done := make(chan error, 1)
	go func() {
		_, err := c.Ingest("slow", ingestRows(rng, 10))
		done <- err
	}()
	<-entered
	if _, err := c.Ingest("rejected", ingestRows(randx.New(4), 10)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("excess ingest err = %v, want ErrOverloaded", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slow ingest failed: %v", err)
	}
	// Pipeline free again: the rejected id was never recorded, retry works.
	if _, err := c.Ingest("rejected", ingestRows(randx.New(4), 10)); err != nil {
		t.Fatalf("retry after overload failed: %v", err)
	}
}

// TestCoordinatorWALFailureNotApplied injects an fsync failure and checks
// the batch is neither acknowledged nor applied — the coordinator latches
// degraded read-only mode, and a probe after the fault clears brings ingest
// back without a restart.
func TestCoordinatorWALFailureNotApplied(t *testing.T) {
	sys, c, _ := newIngestSystem(t, 2000, t.TempDir(),
		Config{Online: core.OnlineConfig{Seed: 9}, ProbeBackoff: time.Hour})
	boom := errors.New("injected fsync failure")
	faults.SetErr(faults.PointWALSync, faults.FailNth(0, boom))
	t.Cleanup(faults.Reset)
	if _, err := c.Ingest("x", ingestRows(randx.New(5), 10)); !errors.Is(err, boom) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want injected failure wrapped in ErrDegraded", err)
	}
	if g := c.Generation(); g != 0 {
		t.Fatalf("generation = %d after failed append, want 0", g)
	}
	if got := sys.DB().NumRows(); got != 2000 {
		t.Fatalf("base grew to %d rows on a failed append", got)
	}
	// Degraded mode fast-fails further ingest without touching the disk.
	if _, err := c.Ingest("x", ingestRows(randx.New(5), 10)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest while degraded: err = %v, want ErrDegraded", err)
	}
	faults.Reset()
	if err := c.ProbeNow(); err != nil {
		t.Fatalf("probe after the fault cleared: %v", err)
	}
	if err := c.Degraded(); err != nil {
		t.Fatalf("still degraded after a successful probe: %v", err)
	}
	if _, err := c.Ingest("x", ingestRows(randx.New(5), 10)); err != nil {
		t.Fatalf("ingest after recovered fault: %v", err)
	}
}

// TestCoordinatorSyncFailureSurvivesRestart: a transient fsync failure midway
// through the stream must leave no trace in the log — not a torn frame that
// would silently swallow later acknowledged batches on replay, and not a
// duplicate sequence number that would make the next startup refuse with
// ErrCorrupt. The retried batch and a restart must both land bit-identically
// with a run that never saw the fault.
func TestCoordinatorSyncFailureSurvivesRestart(t *testing.T) {
	const n = 2000
	cfg := Config{Online: core.OnlineConfig{Seed: 41}, ProbeBackoff: time.Hour}
	mkBatches := func() [][][]engine.Value {
		rng := randx.New(999)
		out := make([][][]engine.Value, 2)
		for i := range out {
			out[i] = ingestRows(rng, 100)
		}
		return out
	}

	// Reference: both batches ingested with no faults.
	sysRef, cRef, _ := newIngestSystem(t, n, t.TempDir(), cfg)
	for i, rows := range mkBatches() {
		if _, err := cRef.Ingest(fmt.Sprintf("b-%d", i), rows); err != nil {
			t.Fatal(err)
		}
	}
	want := answersOf(t, sysRef)

	dir := t.TempDir()
	sys1, c1, w1 := newIngestSystem(t, n, dir, cfg)
	batches := mkBatches()
	if _, err := c1.Ingest("b-0", batches[0]); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("transient enospc")
	faults.SetErr(faults.PointWALSync, func(int) error { return boom })
	t.Cleanup(faults.Reset)
	// First attempt hits the disk and latches degraded mode; the second
	// fast-fails without touching the WAL. Both wrap ErrUnavailable (via
	// ErrDegraded) so existing callers keep matching.
	if _, err := c1.Ingest("b-1", batches[1]); !errors.Is(err, boom) || !errors.Is(err, ErrUnavailable) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("first attempt: err = %v, want the injected failure wrapped in ErrDegraded", err)
	}
	if _, err := c1.Ingest("b-1", batches[1]); !errors.Is(err, ErrDegraded) || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("second attempt: err = %v, want fast-fail ErrDegraded", err)
	}
	faults.Reset()
	if err := c1.ProbeNow(); err != nil {
		t.Fatalf("probe after the fault cleared: %v", err)
	}
	if _, err := c1.Ingest("b-1", batches[1]); err != nil {
		t.Fatalf("retry after the fault cleared: %v", err)
	}
	if got := answersOf(t, sys1); got != want {
		t.Error("answers after recovered sync failures differ from the fault-free run")
	}
	w1.Close()

	// Restart: the log must replay cleanly with exactly the two acknowledged
	// batches — the failed attempts left neither torn frames nor duplicates,
	// and the recovery probe's no-op frame is skipped without a sequence.
	sys2, c2, _ := newIngestSystem(t, n, dir, cfg)
	rs, err := c2.ReplayWAL()
	if err != nil {
		t.Fatalf("replay after failed appends: %v", err)
	}
	if rs.Torn || rs.Batches != 2 {
		t.Fatalf("replayed %d batches (torn=%v), want 2 clean", rs.Batches, rs.Torn)
	}
	if got := answersOf(t, sys2); got != want {
		t.Error("answers after restart differ from the fault-free run")
	}
}

// TestCoordinatorPoisonedRefusesIngest: once a batch is durable in the WAL
// but missing from memory, accepting another batch would reuse its sequence
// number and corrupt the log — every subsequent ingest must refuse with
// ErrUnavailable until a restart replays the divergence away. Duplicate
// detection for batches applied before the failure keeps answering.
func TestCoordinatorPoisonedRefusesIngest(t *testing.T) {
	_, c, _ := newIngestSystem(t, 2000, t.TempDir(), Config{Online: core.OnlineConfig{Seed: 43}})
	rows := ingestRows(randx.New(6), 10)
	st, err := c.Ingest("applied", rows)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.poisoned = errors.New("batch 2 logged but not applied")
	c.mu.Unlock()
	if _, err := c.Ingest("next", ingestRows(randx.New(7), 10)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ingest on poisoned coordinator: err = %v, want ErrUnavailable", err)
	}
	if st2, err := c.Ingest("applied", rows); !errors.Is(err, ErrDuplicate) || st2 != st {
		t.Fatalf("pre-failure duplicate = %+v, %v; want original stats with ErrDuplicate", st2, err)
	}
	if g := c.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1 (nothing accepted while poisoned)", g)
	}
}

// TestCoordinatorDriftTriggersOneRebuild streams a brand-new heavy value
// until drift crosses the bound and requires exactly one OnDrift firing,
// then completes the rebuild handshake (with a tail batch landing
// mid-rebuild) and checks drift resets and the trigger re-arms.
func TestCoordinatorDriftTriggersOneRebuild(t *testing.T) {
	const n = 3000
	fired := make(chan float64, 8)
	cfg := Config{
		Online:  core.OnlineConfig{Seed: 13},
		OnDrift: func(d float64) { fired <- d },
	}
	sys, c, _ := newIngestSystem(t, n, t.TempDir(), cfg)
	hot := func(count int) [][]engine.Value {
		rows := make([][]engine.Value, count)
		for i := range rows {
			rows[i] = []engine.Value{engine.StringVal("HOT"), engine.StringVal("B0"), engine.IntVal(1)}
		}
		return rows
	}
	var last core.BatchStats
	for i := 0; i < 20; i++ {
		st, err := c.Ingest("", hot(100))
		if err != nil {
			t.Fatal(err)
		}
		last = st
		if st.Drift >= 1 {
			break
		}
	}
	if last.Drift < 1 {
		t.Fatalf("drift never crossed 1 (at %g)", last.Drift)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDrift never fired")
	}
	// Keep ingesting past the bound: no second firing while un-rebuilt.
	for i := 0; i < 3; i++ {
		if _, err := c.Ingest("", hot(100)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-fired:
		t.Fatalf("OnDrift fired twice (second drift %g)", d)
	default:
	}

	// Rebuild handshake, with one batch arriving while the rebuild runs.
	db, gen, err := c.BeginRebuild()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := core.NewSmallGroup(ingestSGCfg).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest("", hot(50)); err != nil {
		t.Fatal(err)
	}
	if err := c.CompleteRebuild(rebuilt, gen); err != nil {
		t.Fatal(err)
	}
	if d := c.Drift(); d >= 1 {
		t.Fatalf("drift = %g after rebuild, want < 1 (HOT is common now)", d)
	}
	// HOT must now be answerable and the sample generation caught up.
	p, _ := sys.Prepared("smallgroup")
	if g := core.DataGenerationOf(p); g != c.Generation() {
		t.Fatalf("sample generation %d != data generation %d after rebase", g, c.Generation())
	}
	// The trigger is re-armed: drive drift up again with another new value.
	hot2 := func(count int) [][]engine.Value {
		rows := make([][]engine.Value, count)
		for i := range rows {
			rows[i] = []engine.Value{engine.StringVal("HOT2"), engine.StringVal("B1"), engine.IntVal(2)}
		}
		return rows
	}
	for i := 0; i < 40; i++ {
		st, err := c.Ingest("", hot2(100))
		if err != nil {
			t.Fatal(err)
		}
		if st.Drift >= 1 {
			break
		}
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDrift did not re-arm after rebuild")
	}
}

func BenchmarkIngest(b *testing.B) {
	dir := b.TempDir()
	_, c, _ := newIngestSystem(b, 20000, dir, Config{Online: core.OnlineConfig{Seed: 23}})
	rng := randx.New(29)
	const batchRows = 100
	batches := make([][][]engine.Value, 0, 64)
	for i := 0; i < 64; i++ {
		batches = append(batches, ingestRows(rng, batchRows))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Ingest("", batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batchRows)/b.Elapsed().Seconds(), "rows/sec")
}
