// Package ingest is the live ingestion subsystem: it accepts streamed row
// appends and keeps both the base data and the prepared sample family
// current without a full rebuild per batch.
//
// It has three layers:
//
//   - wal.go: a durable write-ahead log in the catalog's checksummed
//     container style. Every acknowledged batch is one CRC32C-framed record,
//     fsynced before the append is applied in memory; segments rotate at a
//     size bound. On startup the log is replayed in order: a torn tail (a
//     crash mid-append) in the final segment is detected by checksum and
//     truncated, while corruption in any earlier segment is a hard error —
//     an acknowledged batch that went missing is data loss, not a crash
//     artifact.
//   - codec.go: the batch record format — sequence number, client batch id,
//     and typed row values, with hostile-length caps on every count so a
//     corrupt record yields an error, not a multi-gigabyte allocation.
//   - coordinator.go: the single-writer pipeline gluing the WAL to
//     core.Online (WAL append → fsync → in-memory apply → publish), with
//     request-id idempotency, bounded backpressure, drift-triggered rebuild
//     hand-off, and startup replay.
//
// The WAL is the system of record for ingested rows: the sample catalog
// persists only the derived sample family, and the base data is regenerated
// at startup, so segments are never deleted once written.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dynsample/internal/faults"
)

// WAL format constants. Each segment is the 8-byte magic followed by framed
// records [len u32][crc32c over (len||payload) u32][payload]. The magic is
// versioned; a future format bump changes the trailing digits.
const (
	segMagic   = "DSWAL001"
	segPattern = "wal-%010d.seg"

	// maxRecordSize bounds both a legitimate encoded batch and what replay
	// will allocate on the word of an unverified length prefix.
	maxRecordSize = 16 << 20

	// defaultSegBytes rotates segments at 64 MiB so a torn tail is always
	// confined to a bounded final file.
	defaultSegBytes = 64 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt wraps every integrity failure found while reading the WAL that
// is not an ignorable torn tail: a bad magic, a checksum mismatch or
// truncation in a non-final segment.
var ErrCorrupt = errors.New("ingest: corrupt wal")

func walCorruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// WAL is a segmented, fsync-per-append write-ahead log. It is not
// internally synchronised: the coordinator serialises all appends.
type WAL struct {
	dir      string
	f        *os.File
	segIndex uint64
	segBytes int64
	maxBytes int64
	recIndex int // running record count, for fault-hook indexing
	torn     bool
	// broken is set when a failed append could not be rolled back (the
	// truncate or its fsync failed, or segment rotation died). From then on
	// every Append refuses: writing anything behind a frame in an unknown
	// state could tear acknowledged batches or duplicate a sequence number,
	// and only a restart (which replays the durable prefix) is safe.
	broken error
}

// OpenWAL opens (or creates) the log in dir and prepares it for appending.
// If the newest segment ends in a torn record — the signature of a crash
// mid-append — the tail is truncated to the last whole record before the
// segment is reopened for writing, so the damage cannot propagate under new
// appends. Call Replay before appending to rebuild in-memory state.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating wal dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, maxBytes: defaultSegBytes}
	if len(segs) == 0 {
		if err := w.openSegment(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	valid, _, err := scanSegment(filepath.Join(dir, segName(last)), nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > valid {
		// An invalid frame ends the valid prefix. A crash mid-append explains
		// it only if nothing parseable follows; a CRC-passing record behind
		// the bad frame proves mid-segment corruption (bit rot), and cutting
		// there would silently delete the acknowledged batches behind it.
		if later, lerr := validRecordAfter(filepath.Join(dir, segName(last)), valid); lerr != nil {
			f.Close()
			return nil, lerr
		} else if later {
			f.Close()
			return nil, walCorruptf("%s: intact records follow an invalid frame at offset %d (mid-segment corruption, not a torn tail)",
				segName(last), valid)
		}
		// Torn tail from a crashed append: cut it before new records land
		// behind it, and make the cut durable.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: fsync after tail truncation: %w", err)
		}
		w.torn = true
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w.f, w.segIndex, w.segBytes = f, last, valid
	if w.segBytes >= w.maxBytes {
		if err := w.rotate(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Dir returns the directory the log lives in.
func (w *WAL) Dir() string { return w.dir }

// Torn reports whether OpenWAL truncated a torn tail — the signature of a
// crash mid-append. aqpd surfaces it as a startup warning.
func (w *WAL) Torn() bool { return w.torn }

// Append frames payload as one record, writes it to the active segment and
// fsyncs before returning. A nil error means the record is durable: a crash
// after Append returns cannot lose the batch. On a write or fsync failure the
// frame is rolled back (the segment is truncated to its pre-append length) so
// a retry cannot land behind a torn frame or duplicate a sequence number; if
// that rollback itself fails the WAL refuses all further appends until
// restart. Fault points: PointWALRecord (DataHook) may corrupt the frame,
// PointWALAppend / PointWALSync (ErrHooks) inject write and fsync failures.
func (w *WAL) Append(payload []byte) error {
	if w.broken != nil {
		return fmt.Errorf("ingest: wal unusable after unrepaired write failure (restart to recover): %w", w.broken)
	}
	if w.f == nil {
		return errors.New("ingest: wal is closed")
	}
	if len(payload) == 0 || len(payload) > maxRecordSize {
		return fmt.Errorf("ingest: wal record size %d out of range (1..%d)", len(payload), maxRecordSize)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	copy(frame[8:], payload)
	crc := crc32.Update(0, walCRC, frame[0:4])
	crc = crc32.Update(crc, walCRC, payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	faults.FireData(faults.PointWALRecord, w.recIndex, frame)
	if err := faults.FireErr(faults.PointWALAppend, w.recIndex); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	if err := faults.FireErr(faults.PointWALSync, w.recIndex); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal fsync: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal fsync: %w", err)
	}
	obsWALFsync.Observe(time.Since(start).Seconds())
	w.recIndex++
	w.segBytes += int64(len(frame))
	if w.segBytes >= w.maxBytes {
		if err := w.rotate(); err != nil {
			// The record itself is durable; sealing the segment or creating
			// the next one failed. Refuse further appends — without a usable
			// active segment a retry would duplicate the record's sequence.
			w.broken = err
			return err
		}
	}
	return nil
}

// repairTail rolls the active segment back to its last known-good length
// after a failed append, discarding whatever portion of the frame reached the
// file. A failed fsync may have left a fully written record behind: without
// the rollback, retrying the batch would append a second record with the same
// sequence number (ErrCorrupt at the next startup), and a partial write would
// leave a torn frame that silently truncates every later acknowledged batch
// on replay. If the rollback cannot be completed the WAL marks itself broken.
func (w *WAL) repairTail() {
	if err := w.f.Truncate(w.segBytes); err != nil {
		w.broken = fmt.Errorf("ingest: truncating failed wal append: %w", err)
		return
	}
	if _, err := w.f.Seek(w.segBytes, io.SeekStart); err != nil {
		w.broken = fmt.Errorf("ingest: seeking after failed wal append: %w", err)
		return
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("ingest: fsync after failed wal append rollback: %w", err)
	}
}

// Close flushes and closes the active segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// rotate seals the active segment and starts the next one.
func (w *WAL) rotate() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: sealing wal segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("ingest: sealing wal segment: %w", err)
	}
	w.f = nil
	return w.openSegment(w.segIndex + 1)
}

// openSegment creates segment idx, writes its magic, fsyncs it and the
// directory (so the new file survives a crash), and makes it active.
func (w *WAL) openSegment(idx uint64) error {
	path := filepath.Join(w.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: creating wal segment: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("ingest: writing wal segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: fsync wal segment header: %w", err)
	}
	if d, derr := os.Open(w.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	w.f, w.segIndex, w.segBytes = f, idx, int64(len(segMagic))
	obsWALSegments.Set(float64(idx + 1))
	return nil
}

func segName(idx uint64) string { return fmt.Sprintf(segPattern, idx) }

// listSegments returns the segment indices present in dir, sorted
// ascending. Gaps in the sequence are a hard error: a missing middle
// segment means acknowledged batches are gone.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: listing wal dir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		var idx uint64
		if _, err := fmt.Sscanf(e.Name(), segPattern, &idx); err == nil && e.Name() == segName(idx) {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i, idx := range segs {
		if idx != segs[0]+uint64(i) {
			return nil, walCorruptf("segment sequence has a gap: missing %s", segName(segs[0]+uint64(i)))
		}
	}
	return segs, nil
}

// scanSegment reads one segment, calling fn (if non-nil) with each record
// payload that passes its checksum, and returns the byte offset just past
// the last valid record. A clean segment returns (size, true, nil); a torn
// or corrupt tail returns the valid prefix length with ok=false and no
// error — the caller decides whether a dirty tail is tolerable (final
// segment) or fatal (earlier segment). Only I/O failures and a bad magic
// return an error.
func scanSegment(path string, fn func(payload []byte) error) (valid int64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("ingest: opening wal segment: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		// A segment too short to hold its magic can only be a torn creation
		// of the newest segment; report it as an empty dirty segment.
		return 0, false, nil
	}
	if string(magic) != segMagic {
		return 0, false, walCorruptf("%s: bad segment magic %q", filepath.Base(path), magic)
	}
	valid = int64(len(segMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return valid, true, nil
			}
			return valid, false, nil // torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordSize {
			return valid, false, nil // corrupt length prefix
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, false, nil // torn body
		}
		want := crc32.Update(0, walCRC, hdr[0:4])
		want = crc32.Update(want, walCRC, payload)
		if crc != want {
			return valid, false, nil // flipped bits
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, false, err
			}
		}
		valid += int64(8 + length)
	}
}

// Replay reads every durable record in dir in append order and hands its
// payload to fn. A torn or corrupt tail is tolerated only in the final
// segment (the only place a crash mid-append can leave one) and reported
// via the returned torn flag; the same damage in an earlier segment returns
// an error wrapping ErrCorrupt. An error from fn aborts the replay.
func Replay(dir string, fn func(payload []byte) error) (records int, torn bool, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, false, err
	}
	for i, idx := range segs {
		path := filepath.Join(dir, segName(idx))
		valid, clean, err := scanSegment(path, func(p []byte) error {
			records++
			return fn(p)
		})
		if err != nil {
			return records, false, err
		}
		if !clean {
			if i != len(segs)-1 {
				return records, false, walCorruptf("%s: corrupt record in non-final segment", segName(idx))
			}
			// A torn tail is only believable if nothing valid follows the bad
			// frame; an intact record behind it means the frame is mid-segment
			// corruption and acknowledged batches would be lost.
			later, lerr := validRecordAfter(path, valid)
			if lerr != nil {
				return records, false, lerr
			}
			if later {
				return records, false, walCorruptf("%s: intact records follow an invalid frame at offset %d (mid-segment corruption, not a torn tail)",
					segName(idx), valid)
			}
			return records, true, nil
		}
	}
	return records, false, nil
}

// validRecordAfter reports whether any byte offset at or after off in the
// segment parses as a complete checksummed record. The frame at off itself
// failed validation, so a hit can only come from a record behind it — proof
// that the invalid frame is mid-segment damage rather than the torn tail of
// a crashed append (a crash cannot manufacture valid records past the point
// the log stopped). The scan tries every byte offset because frame lengths
// are untrusted once a frame is bad; a CRC32C match on arbitrary garbage is a
// ~2^-32 accident per offset, and a false hit only fails safe (refuse to
// start rather than silently drop batches).
func validRecordAfter(path string, off int64) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("ingest: reading wal segment: %w", err)
	}
	for i := off; i+8 <= int64(len(data)); i++ {
		length := int64(binary.LittleEndian.Uint32(data[i : i+4]))
		if length == 0 || length > maxRecordSize || i+8+length > int64(len(data)) {
			continue
		}
		crc := binary.LittleEndian.Uint32(data[i+4 : i+8])
		want := crc32.Update(0, walCRC, data[i:i+4])
		want = crc32.Update(want, walCRC, data[i+8:i+8+length])
		if crc == want {
			return true, nil
		}
	}
	return false, nil
}
