// Package ingest is the live ingestion subsystem: it accepts streamed row
// appends and keeps both the base data and the prepared sample family
// current without a full rebuild per batch.
//
// It has three layers:
//
//   - wal.go: a durable write-ahead log in the catalog's checksummed
//     container style. Every acknowledged batch is one CRC32C-framed record,
//     fsynced before the append is applied in memory; segments rotate at a
//     size bound. On startup the log is replayed in order: a torn tail (a
//     crash mid-append) in the final segment is detected by checksum and
//     truncated, while corruption in any earlier segment is a hard error —
//     an acknowledged batch that went missing is data loss, not a crash
//     artifact.
//   - codec.go: the batch record format — sequence number, client batch id,
//     and typed row values, with hostile-length caps on every count so a
//     corrupt record yields an error, not a multi-gigabyte allocation.
//   - coordinator.go: the single-writer pipeline gluing the WAL to
//     core.Online (WAL append → fsync → in-memory apply → publish), with
//     request-id idempotency, bounded backpressure, drift-triggered rebuild
//     hand-off, and startup replay.
//
// The WAL is the system of record for ingested rows between checkpoints:
// the base data is regenerated at startup and the durable log is replayed on
// top of it. Checkpointed snapshots bound that lifecycle — a snapshot that
// embeds the ingested rows and records the WAL position it covers lets
// RemoveSegmentsBelow delete every fully-covered segment, so disk usage and
// restart replay are proportional to ingest-since-last-checkpoint rather
// than ingest-since-birth (see checkpoint.go and Coordinator.SaveCheckpoint).
// Segments at or above the checkpointed position are never deleted.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dynsample/internal/faults"
)

// WAL format constants. Each segment is the 8-byte magic followed by framed
// records [len u32][crc32c over (len||payload) u32][payload]. The magic is
// versioned; a future format bump changes the trailing digits.
const (
	segMagic   = "DSWAL001"
	segPattern = "wal-%010d.seg"

	// maxRecordSize bounds both a legitimate encoded batch and what replay
	// will allocate on the word of an unverified length prefix.
	maxRecordSize = 16 << 20

	// defaultSegBytes rotates segments at 64 MiB so a torn tail is always
	// confined to a bounded final file.
	defaultSegBytes = 64 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt wraps every integrity failure found while reading the WAL that
// is not an ignorable torn tail: a bad magic, a checksum mismatch or
// truncation in a non-final segment.
var ErrCorrupt = errors.New("ingest: corrupt wal")

func walCorruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// WAL is a segmented, fsync-per-append write-ahead log. It is not
// internally synchronised: the coordinator serialises all appends.
type WAL struct {
	dir      string
	f        *os.File
	segIndex uint64
	segBytes int64
	maxBytes int64
	recIndex int // running record count, for fault-hook indexing
	torn     bool
	// broken is set when a failed append could not be rolled back (the
	// truncate or its fsync failed, or segment rotation died). From then on
	// every Append refuses: writing anything behind a frame in an unknown
	// state could tear acknowledged batches or duplicate a sequence number,
	// and only a restart (which replays the durable prefix) is safe.
	broken error
}

// WALOptions tunes OpenWALWith. The zero value matches OpenWAL.
type WALOptions struct {
	// SegmentBytes overrides the rotation threshold (default 64 MiB). Small
	// values let tests exercise multi-segment lifecycles with little data.
	SegmentBytes int64
}

// OpenWAL opens (or creates) the log in dir and prepares it for appending.
// If the newest segment ends in a torn record — the signature of a crash
// mid-append — the tail is truncated to the last whole record before the
// segment is reopened for writing, so the damage cannot propagate under new
// appends. Call Replay before appending to rebuild in-memory state.
func OpenWAL(dir string) (*WAL, error) { return OpenWALWith(dir, WALOptions{}) }

// OpenWALWith is OpenWAL with explicit options.
func OpenWALWith(dir string, opts WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating wal dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	maxBytes := opts.SegmentBytes
	if maxBytes <= 0 {
		maxBytes = defaultSegBytes
	}
	w := &WAL{dir: dir, maxBytes: maxBytes}
	if len(segs) == 0 {
		if err := w.openSegment(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	valid, _, err := scanSegment(filepath.Join(dir, segName(last)), nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > valid {
		// An invalid frame ends the valid prefix. A crash mid-append explains
		// it only if nothing parseable follows; a CRC-passing record behind
		// the bad frame proves mid-segment corruption (bit rot), and cutting
		// there would silently delete the acknowledged batches behind it.
		if later, lerr := validRecordAfter(filepath.Join(dir, segName(last)), valid); lerr != nil {
			f.Close()
			return nil, lerr
		} else if later {
			f.Close()
			return nil, walCorruptf("%s: intact records follow an invalid frame at offset %d (mid-segment corruption, not a torn tail)",
				segName(last), valid)
		}
		// Torn tail from a crashed append: cut it before new records land
		// behind it, and make the cut durable.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: fsync after tail truncation: %w", err)
		}
		w.torn = true
	}
	// A segment shorter than its magic is a torn creation: the process died
	// between creating the file and making the header durable, so it never
	// held a record. Rewrite the header in place rather than appending
	// records to a file replay will refuse.
	if valid < int64(len(segMagic)) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: repairing torn segment creation: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: rewriting wal segment header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: fsync rewritten wal segment header: %w", err)
		}
		valid = int64(len(segMagic))
		w.torn = true
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w.f, w.segIndex, w.segBytes = f, last, valid
	obsWALSegments.Set(float64(last + 1))
	if w.segBytes >= w.maxBytes {
		if err := w.rotate(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Dir returns the directory the log lives in.
func (w *WAL) Dir() string { return w.dir }

// Torn reports whether OpenWAL truncated a torn tail — the signature of a
// crash mid-append. aqpd surfaces it as a startup warning.
func (w *WAL) Torn() bool { return w.torn }

// Broken returns the error that made the WAL refuse appends (a rollback or
// rotation failure that could not be repaired in place), or nil while the
// log is writable. Probe attempts to clear it.
func (w *WAL) Broken() error { return w.broken }

// Position returns the write position: the active segment's index and the
// byte offset appends will land at. Immediately after a successful Append it
// is the position just past that record, so a snapshot taken while no append
// is in flight can record it as the point the snapshot covers.
func (w *WAL) Position() (seg uint64, off int64) { return w.segIndex, w.segBytes }

// Append frames payload as one record, writes it to the active segment and
// fsyncs before returning. A nil error means the record is durable: a crash
// after Append returns cannot lose the batch. On a write or fsync failure the
// frame is rolled back (the segment is truncated to its pre-append length) so
// a retry cannot land behind a torn frame or duplicate a sequence number; if
// that rollback itself fails the WAL refuses all further appends until
// restart. Fault points: PointWALRecord (DataHook) may corrupt the frame,
// PointWALAppend / PointWALSync (ErrHooks) inject write and fsync failures.
func (w *WAL) Append(payload []byte) error {
	if w.broken != nil {
		return fmt.Errorf("ingest: wal unusable after unrepaired write failure (restart to recover): %w", w.broken)
	}
	if w.f == nil {
		return errors.New("ingest: wal is closed")
	}
	if len(payload) == 0 || len(payload) > maxRecordSize {
		return fmt.Errorf("ingest: wal record size %d out of range (1..%d)", len(payload), maxRecordSize)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	copy(frame[8:], payload)
	crc := crc32.Update(0, walCRC, frame[0:4])
	crc = crc32.Update(crc, walCRC, payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	faults.FireData(faults.PointWALRecord, w.recIndex, frame)
	if err := faults.FireErr(faults.PointWALAppend, w.recIndex); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal append: %w", err)
	}
	if err := faults.FireErr(faults.PointWALSync, w.recIndex); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal fsync: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.repairTail()
		return fmt.Errorf("ingest: wal fsync: %w", err)
	}
	obsWALFsync.Observe(time.Since(start).Seconds())
	w.recIndex++
	w.segBytes += int64(len(frame))
	if w.segBytes >= w.maxBytes {
		if err := w.rotate(); err != nil {
			// The record itself is durable; sealing the segment or creating
			// the next one failed. Refuse further appends — without a usable
			// active segment a retry would duplicate the record's sequence.
			w.broken = err
			return err
		}
	}
	return nil
}

// repairTail rolls the active segment back to its last known-good length
// after a failed append, discarding whatever portion of the frame reached the
// file. A failed fsync may have left a fully written record behind: without
// the rollback, retrying the batch would append a second record with the same
// sequence number (ErrCorrupt at the next startup), and a partial write would
// leave a torn frame that silently truncates every later acknowledged batch
// on replay. If the rollback cannot be completed the WAL marks itself broken.
func (w *WAL) repairTail() {
	if err := w.f.Truncate(w.segBytes); err != nil {
		w.broken = fmt.Errorf("ingest: truncating failed wal append: %w", err)
		return
	}
	if _, err := w.f.Seek(w.segBytes, io.SeekStart); err != nil {
		w.broken = fmt.Errorf("ingest: seeking after failed wal append: %w", err)
		return
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("ingest: fsync after failed wal append rollback: %w", err)
	}
}

// Probe checks whether the log is writable again after a disk fault: it
// repairs a broken tail if one is latched (reopening the active segment,
// truncating it back to the last acknowledged byte, and finishing any
// interrupted rotation), then appends and fsyncs a no-op control frame that
// replay recognises and skips. A nil return proves a full append round-trip
// reached stable storage — the degraded coordinator uses it to decide the
// disk has healed. On failure the WAL stays (or becomes) broken and the next
// Probe retries from scratch.
func (w *WAL) Probe() error {
	if w.broken != nil || w.f == nil {
		if err := w.reopenTail(); err != nil {
			return err
		}
	}
	return w.Append(EncodeNoop())
}

// reopenTail re-establishes a writable active segment after a failure left
// it in an unknown state. Every acknowledged byte was fsynced, so truncating
// the segment file back to the acknowledged length (w.segBytes) discards
// exactly the garbage a failed append may have left — including a complete
// record whose fsync failed and was therefore never acknowledged; keeping it
// would let the next append duplicate its sequence number. If the segment
// was full, the interrupted rotation is finished.
func (w *WAL) reopenTail() error {
	if w.f != nil {
		w.f.Close() // may already be closed by a half-finished rotation
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(w.segIndex))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("ingest: reopening wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() < w.segBytes {
		// Acknowledged bytes are missing from the file — that is data loss,
		// not a repairable append failure.
		f.Close()
		return walCorruptf("%s: %d bytes on disk, %d acknowledged", segName(w.segIndex), st.Size(), w.segBytes)
	}
	if err := f.Truncate(w.segBytes); err != nil {
		f.Close()
		return fmt.Errorf("ingest: truncating wal segment to acknowledged length: %w", err)
	}
	if _, err := f.Seek(w.segBytes, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: fsync after wal tail repair: %w", err)
	}
	w.f = f
	w.broken = nil
	if w.segBytes >= w.maxBytes {
		if err := w.rotate(); err != nil {
			w.broken = err
			return err
		}
	}
	return nil
}

// RemoveSegmentsBelow deletes every sealed segment whose index is below seg —
// the segments a checkpoint fully covers. The active segment is never deleted
// regardless of seg. Deletion proceeds in ascending index order so a crash
// mid-GC leaves the surviving segments contiguous (listSegments treats a gap
// as data loss); an error aborts the sweep at the first failure, and a later
// call — or the startup GC after the next restart — finishes it. Returns the
// number of segments removed. Fault point: PointWALGC (ErrHook, fired with
// each segment index before its deletion).
func (w *WAL) RemoveSegmentsBelow(seg uint64) (removed int, err error) {
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	for _, idx := range segs {
		if idx >= seg || idx == w.segIndex {
			break
		}
		if err := faults.FireErr(faults.PointWALGC, int(idx)); err != nil {
			obsWALGCErrors.Inc()
			return removed, fmt.Errorf("ingest: wal gc: %w", err)
		}
		if err := os.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
			obsWALGCErrors.Inc()
			return removed, fmt.Errorf("ingest: wal gc: %w", err)
		}
		removed++
		obsWALGCRemoved.Inc()
	}
	if removed > 0 {
		// Make the deletions durable so a crash cannot resurrect a directory
		// entry in the middle of the sequence.
		if d, derr := os.Open(w.dir); derr == nil {
			d.Sync()
			d.Close()
		}
	}
	return removed, nil
}

// Close flushes and closes the active segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// rotate seals the active segment and starts the next one.
func (w *WAL) rotate() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: sealing wal segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("ingest: sealing wal segment: %w", err)
	}
	w.f = nil
	return w.openSegment(w.segIndex + 1)
}

// openSegment creates segment idx, writes its magic, fsyncs it and the
// directory (so the new file survives a crash), and makes it active.
func (w *WAL) openSegment(idx uint64) error {
	path := filepath.Join(w.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, os.ErrExist) {
		// A rotation that died between creating this file and making its
		// header durable left a husk behind; since openSegment never returned,
		// the file cannot hold acknowledged records, so if it is no longer
		// than a header it is safe to recreate. Anything longer is not ours
		// to delete.
		if st, serr := os.Stat(path); serr == nil && st.Size() <= int64(len(segMagic)) {
			if rerr := os.Remove(path); rerr != nil {
				return fmt.Errorf("ingest: removing torn wal segment: %w", rerr)
			}
			f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	if err != nil {
		return fmt.Errorf("ingest: creating wal segment: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("ingest: writing wal segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: fsync wal segment header: %w", err)
	}
	if d, derr := os.Open(w.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	w.f, w.segIndex, w.segBytes = f, idx, int64(len(segMagic))
	obsWALSegments.Set(float64(idx + 1))
	return nil
}

func segName(idx uint64) string { return fmt.Sprintf(segPattern, idx) }

// listSegments returns the segment indices present in dir, sorted
// ascending. Gaps in the sequence are a hard error: a missing middle
// segment means acknowledged batches are gone.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: listing wal dir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		var idx uint64
		if _, err := fmt.Sscanf(e.Name(), segPattern, &idx); err == nil && e.Name() == segName(idx) {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i, idx := range segs {
		if idx != segs[0]+uint64(i) {
			return nil, walCorruptf("segment sequence has a gap: missing %s", segName(segs[0]+uint64(i)))
		}
	}
	return segs, nil
}

// scanSegment reads one segment, calling fn (if non-nil) with each record
// payload that passes its checksum, and returns the byte offset just past
// the last valid record. A clean segment returns (size, true, nil); a torn
// or corrupt tail returns the valid prefix length with ok=false and no
// error — the caller decides whether a dirty tail is tolerable (final
// segment) or fatal (earlier segment). Only I/O failures and a bad magic
// return an error.
func scanSegment(path string, fn func(payload []byte) error) (valid int64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("ingest: opening wal segment: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		// A segment too short to hold its magic can only be a torn creation
		// of the newest segment; report it as an empty dirty segment.
		return 0, false, nil
	}
	if string(magic) != segMagic {
		return 0, false, walCorruptf("%s: bad segment magic %q", filepath.Base(path), magic)
	}
	valid = int64(len(segMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return valid, true, nil
			}
			return valid, false, nil // torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordSize {
			return valid, false, nil // corrupt length prefix
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, false, nil // torn body
		}
		want := crc32.Update(0, walCRC, hdr[0:4])
		want = crc32.Update(want, walCRC, payload)
		if crc != want {
			return valid, false, nil // flipped bits
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, false, err
			}
		}
		valid += int64(8 + length)
	}
}

// Replay reads every durable record in dir in append order and hands its
// payload to fn. A torn or corrupt tail is tolerated only in the final
// segment (the only place a crash mid-append can leave one) and reported
// via the returned torn flag; the same damage in an earlier segment returns
// an error wrapping ErrCorrupt. An error from fn aborts the replay.
func Replay(dir string, fn func(payload []byte) error) (records int, torn bool, err error) {
	records, _, _, torn, err = replayDetail(dir, fn)
	return records, torn, err
}

// replayDetail is Replay plus the physical dimensions of the scan: how many
// segments were read and how many valid bytes they held (the cost of this
// recovery, exported as replay metrics by the coordinator).
func replayDetail(dir string, fn func(payload []byte) error) (records, segments int, bytes int64, torn bool, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, 0, 0, false, err
	}
	for i, idx := range segs {
		path := filepath.Join(dir, segName(idx))
		valid, clean, err := scanSegment(path, func(p []byte) error {
			records++
			return fn(p)
		})
		segments++
		bytes += valid
		if err != nil {
			return records, segments, bytes, false, err
		}
		if !clean {
			if i != len(segs)-1 {
				return records, segments, bytes, false, walCorruptf("%s: corrupt record in non-final segment", segName(idx))
			}
			// A torn tail is only believable if nothing valid follows the bad
			// frame; an intact record behind it means the frame is mid-segment
			// corruption and acknowledged batches would be lost.
			later, lerr := validRecordAfter(path, valid)
			if lerr != nil {
				return records, segments, bytes, false, lerr
			}
			if later {
				return records, segments, bytes, false, walCorruptf("%s: intact records follow an invalid frame at offset %d (mid-segment corruption, not a torn tail)",
					segName(idx), valid)
			}
			return records, segments, bytes, true, nil
		}
	}
	return records, segments, bytes, false, nil
}

// validRecordAfter reports whether any byte offset at or after off in the
// segment parses as a complete checksummed record. The frame at off itself
// failed validation, so a hit can only come from a record behind it — proof
// that the invalid frame is mid-segment damage rather than the torn tail of
// a crashed append (a crash cannot manufacture valid records past the point
// the log stopped). The scan tries every byte offset because frame lengths
// are untrusted once a frame is bad; a CRC32C match on arbitrary garbage is a
// ~2^-32 accident per offset, and a false hit only fails safe (refuse to
// start rather than silently drop batches).
func validRecordAfter(path string, off int64) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("ingest: reading wal segment: %w", err)
	}
	for i := off; i+8 <= int64(len(data)); i++ {
		length := int64(binary.LittleEndian.Uint32(data[i : i+4]))
		if length == 0 || length > maxRecordSize || i+8+length > int64(len(data)) {
			continue
		}
		crc := binary.LittleEndian.Uint32(data[i+4 : i+8])
		want := crc32.Update(0, walCRC, data[i:i+4])
		want = crc32.Update(want, walCRC, data[i+8:i+8+length])
		if crc == want {
			return true, nil
		}
	}
	return false, nil
}
