package ingest

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dynsample/internal/catalog"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
)

// ErrOverloaded is returned when more ingest requests are in flight than the
// configured pending bound; callers should retry after backing off (the HTTP
// layer maps it to 503 + Retry-After).
var ErrOverloaded = errors.New("ingest: too many pending batches")

// ErrDuplicate reports that a batch id was already applied; the stats
// returned alongside it are the original application's. Retried requests
// (client timeout, at-least-once delivery) land here instead of appending
// rows twice.
var ErrDuplicate = errors.New("ingest: duplicate batch id")

// ErrUnavailable marks server-side ingest failures — a WAL write or fsync
// error, a batch that was logged durably but failed to apply in memory, or
// any request refused because an earlier such failure poisoned the
// coordinator. Unlike validation errors the request itself was fine, so the
// HTTP layer maps it to 500 rather than 400.
var ErrUnavailable = errors.New("ingest: ingestion unavailable")

// ErrDegraded marks ingest refused because a WAL write, fsync, or rotation
// failure put the coordinator into degraded read-only mode: queries keep
// serving, no acknowledged batch was lost, and a background probe retries
// the disk with bounded backoff — ingest resumes by itself once the fault
// clears. The HTTP layer maps it to 503 + Retry-After (the fault is
// transient by assumption), unlike the plain ErrUnavailable 500. It wraps
// ErrUnavailable so callers matching the broader class still catch it.
var ErrDegraded = fmt.Errorf("%w: degraded by a disk fault (read-only until the WAL heals)", ErrUnavailable)

// PoisonedError records the batch whose durable-but-unapplied write froze
// ingest: the WAL acknowledged the batch but the in-memory apply failed, so
// log and memory disagree and any further append would reuse the durable
// sequence number. It flows to clients inside the ErrUnavailable envelope.
type PoisonedError struct {
	// Seq is the sequence number of the durable-but-unapplied batch.
	Seq uint64
	// BatchID is its client idempotency id; empty if none was given.
	BatchID string
	// Cause is the apply failure.
	Cause error
}

func (e *PoisonedError) Error() string {
	id := e.BatchID
	if id == "" {
		id = "(none)"
	}
	return fmt.Sprintf("batch seq=%d id=%s is durable in the WAL but failed to apply in memory: %v; restart the server — startup replay applies the logged batch and clears the divergence",
		e.Seq, id, e.Cause)
}

func (e *PoisonedError) Unwrap() error { return e.Cause }

// Config tunes a Coordinator. The zero value is usable given a Strategy
// registered on the System.
type Config struct {
	// Strategy names the prepared state to maintain online. Empty means
	// "smallgroup".
	Strategy string
	// Online parameterises the core maintenance layer. Online.Seed must be
	// stable across restarts of the same WAL for bit-identical replay.
	Online core.OnlineConfig
	// MaxPending bounds ingest requests admitted concurrently (applying plus
	// waiting on the writer lock); excess requests fail fast with
	// ErrOverloaded. Zero means 64.
	MaxPending int
	// DriftBound is the drift-gauge level at which OnDrift fires (serve
	// slightly-stale-but-correct answers below it, rebuild above). Zero means
	// 1.0; negative disables the trigger.
	DriftBound float64
	// IdempotencyWindow is how many recent batch ids are remembered for
	// duplicate detection. Zero means 4096.
	IdempotencyWindow int
	// OnDrift, when non-nil, is called (on its own goroutine, at most once
	// per rebuild cycle) when the drift gauge crosses DriftBound. The server
	// wires it to a background rebuild.
	OnDrift func(drift float64)
	// BaseRows is the row count of the regenerated base data before any
	// ingested batch — the offset checkpoints cut their delta at. Zero means
	// the system database's row count at New, which is correct unless a
	// checkpoint delta was already restored onto the base (then the caller
	// must pass the pre-delta count).
	BaseRows int
	// ProbeBackoff and ProbeBackoffMax bound the degraded-mode re-probe
	// loop: the first probe runs after ProbeBackoff, doubling up to
	// ProbeBackoffMax. Zero means 500ms and 30s.
	ProbeBackoff    time.Duration
	ProbeBackoffMax time.Duration
}

// Coordinator is the single-writer ingest pipeline: validate → WAL append +
// fsync → in-memory apply → publish. One mutex serialises the write path;
// queries never take it — they read the atomically published versions in
// core.System. It also owns the rebuild handshake: batches ingested while a
// rebuild runs are buffered as the tail and re-applied onto the fresh state.
type Coordinator struct {
	sys *core.System
	wal *WAL
	cfg Config

	pending atomic.Int64

	mu     sync.Mutex
	online *core.Online

	// Idempotency LRU: ids in arrival order, evicting the oldest.
	ids    map[string]core.BatchStats
	order  []string
	oldest int

	rebuilding bool
	tail       []core.TailBatch
	driftFired bool

	// poisoned is set when a batch became durable in the WAL but failed to
	// apply in memory: the log and the in-memory state now disagree, and any
	// further append would reuse the durable batch's sequence number and
	// corrupt the WAL. Every subsequent Ingest refuses with ErrUnavailable;
	// restarting replays the log and clears the divergence.
	poisoned error

	// degraded is set when a WAL append/fsync/rotation failure made the log
	// unwritable. Unlike poisoned, nothing reached the log, so memory and
	// log still agree: queries keep serving, ingest fast-fails with
	// ErrDegraded, and the probe loop clears the latch once a no-op frame
	// round-trips to disk again.
	degraded error
	probing  bool // a probe goroutine is running

	// baseRows is the pre-ingest row count of the regenerated base data;
	// checkpoints cut their delta at this offset.
	baseRows uint64

	// appliedSeg/appliedOff is the WAL position covering every batch applied
	// in memory: each record physically before it is an applied batch, a
	// checkpoint-covered batch, or a no-op frame. It deliberately lags the
	// raw write position while poisoned (the durable-but-unapplied record
	// sits past it), which is exactly what makes it the safe GC bound — a
	// checkpoint cut at this position never lets RemoveSegmentsBelow delete
	// an unapplied batch.
	appliedSeg uint64
	appliedOff int64

	stop      chan struct{}
	closeOnce sync.Once
}

// New attaches a coordinator to the system's prepared state. Call after the
// strategy is registered (fresh Preprocess or snapshot restore) and the WAL
// is open, then ReplayWAL before serving ingest traffic.
func New(sys *core.System, wal *WAL, cfg Config) (*Coordinator, error) {
	if cfg.Strategy == "" {
		cfg.Strategy = "smallgroup"
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	if cfg.DriftBound == 0 {
		cfg.DriftBound = 1.0
	}
	if cfg.IdempotencyWindow <= 0 {
		cfg.IdempotencyWindow = 4096
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = 500 * time.Millisecond
	}
	if cfg.ProbeBackoffMax <= 0 {
		cfg.ProbeBackoffMax = 30 * time.Second
	}
	online, err := core.NewOnline(sys, cfg.Strategy, cfg.Online)
	if err != nil {
		return nil, err
	}
	if cfg.BaseRows <= 0 {
		cfg.BaseRows = sys.DB().NumRows()
	}
	c := &Coordinator{
		sys:      sys,
		wal:      wal,
		cfg:      cfg,
		online:   online,
		ids:      make(map[string]core.BatchStats, cfg.IdempotencyWindow),
		baseRows: uint64(cfg.BaseRows),
		stop:     make(chan struct{}),
	}
	obsDataGen.Set(float64(online.DataGeneration()))
	obsDrift.Set(online.Drift())
	return c, nil
}

// ReplayStats reports what one startup replay did and what it cost.
type ReplayStats struct {
	// Batches is the number of batches applied onto the in-memory state.
	Batches int
	// Covered is the number of batches skipped because the restored
	// checkpoint already reflects them (sequence at or below the restored
	// data generation).
	Covered int
	// Noops is the number of no-op probe frames skipped.
	Noops int
	// Segments and Bytes are the physical scan: segments read and valid WAL
	// bytes they held.
	Segments int
	Bytes    int64
	// Elapsed is the wall-clock replay duration.
	Elapsed time.Duration
	// Torn reports whether a torn tail (crash mid-append) was discarded.
	Torn bool
}

// ReplayWAL re-applies the durable WAL onto the restored state, in order.
// Batches the restored checkpoint already covers (sequence at or below the
// data generation the snapshot installed) are skipped — their rows arrived
// inside the snapshot's delta; without a checkpoint the whole log replays,
// matching the legacy snapshot format. Batch ids of replayed batches are fed
// into the idempotency window so client retries spanning a restart are still
// deduplicated (covered batches' ids come from the checkpoint instead, via
// SeedIdempotency). The first non-covered batch must continue the restored
// sequence exactly: a gap means an acknowledged batch is missing, which is
// data loss, not a crash artifact.
func (c *Coordinator) ReplayWAL() (ReplayStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rs ReplayStats
	start := time.Now()
	startGen := c.online.DataGeneration()
	_, segments, bytes, torn, err := replayDetail(c.wal.Dir(), func(payload []byte) error {
		if IsNoop(payload) {
			rs.Noops++
			return nil
		}
		b, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if b.Seq <= startGen {
			// Already inside the restored checkpoint. Do not touch the
			// idempotency window: the checkpoint's persisted entries seeded
			// it, and re-adding would duplicate LRU slots.
			rs.Covered++
			obsReplaySkipped.Inc()
			return nil
		}
		if want := c.online.DataGeneration() + 1; b.Seq != want {
			return fmt.Errorf("%w: batch sequence %d, want %d", ErrCorrupt, b.Seq, want)
		}
		st, err := c.online.Apply(b.Seq, b.Rows)
		if err != nil {
			return fmt.Errorf("ingest: replaying batch %d: %w", b.Seq, err)
		}
		if b.ID != "" {
			c.remember(b.ID, st)
		}
		rs.Batches++
		obsReplayed.Inc()
		return nil
	})
	rs.Segments, rs.Bytes, rs.Torn = segments, bytes, torn
	rs.Elapsed = time.Since(start)
	obsReplaySegments.Add(uint64(segments))
	obsReplayBytes.Add(uint64(bytes))
	obsReplaySeconds.Set(rs.Elapsed.Seconds())
	if err != nil {
		return rs, err
	}
	// End of the durable log: everything before the write position is now
	// applied (or covered, or a no-op), so it is the applied position too.
	c.appliedSeg, c.appliedOff = c.wal.Position()
	obsDataGen.Set(float64(c.online.DataGeneration()))
	obsDrift.Set(c.online.Drift())
	return rs, nil
}

// SeedIdempotency pre-populates the duplicate-detection window with entries
// persisted in a checkpoint (oldest first), so client retries of batches
// whose WAL records were garbage-collected still answer ErrDuplicate with
// the original stats. Call before ReplayWAL.
func (c *Coordinator) SeedIdempotency(ids []IdentEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range ids {
		if e.ID != "" {
			c.remember(e.ID, e.Stats)
		}
	}
}

// Ingest appends one batch of rows (view column order) with the given
// idempotency id (may be empty). On success the batch is durable in the WAL
// and visible to queries. A repeated id returns the original stats with
// ErrDuplicate; overload returns ErrOverloaded without touching anything.
func (c *Coordinator) Ingest(id string, rows [][]engine.Value) (core.BatchStats, error) {
	var zero core.BatchStats
	if n := c.pending.Add(1); n > int64(c.cfg.MaxPending) {
		c.pending.Add(-1)
		obsBatches.With("overload").Inc()
		return zero, ErrOverloaded
	}
	defer c.pending.Add(-1)
	if len(rows) == 0 {
		obsBatches.With("invalid").Inc()
		return zero, errors.New("ingest: empty batch")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if id != "" {
		if st, ok := c.ids[id]; ok {
			obsBatches.With("duplicate").Inc()
			return st, ErrDuplicate
		}
	}
	if c.poisoned != nil {
		obsBatches.With("poisoned").Inc()
		return zero, fmt.Errorf("%w: writes disabled after earlier failure: %w", ErrUnavailable, c.poisoned)
	}
	if c.degraded != nil {
		obsBatches.With("degraded").Inc()
		return zero, fmt.Errorf("%w: %v", ErrDegraded, c.degraded)
	}
	// Validate before the WAL append: a record acknowledged to disk must be
	// guaranteed to apply on replay.
	if err := c.online.Validate(rows); err != nil {
		obsBatches.With("invalid").Inc()
		return zero, err
	}
	seq := c.online.DataGeneration() + 1
	payload, err := EncodeBatch(&Batch{Seq: seq, ID: id, Rows: rows})
	if err != nil {
		obsBatches.With("invalid").Inc()
		return zero, err
	}
	if err := c.wal.Append(payload); err != nil {
		// Nothing was acknowledged: the WAL either rolled the failed frame
		// back or latched itself broken, so log and memory still agree. Go
		// read-only and let the probe loop bring ingest back when the disk
		// heals — a transient ENOSPC or fsync error must not require a
		// restart.
		c.enterDegraded(err)
		obsBatches.With("error").Inc()
		return zero, fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	st, err := c.apply(seq, rows)
	if err != nil {
		// The record is durable but the in-memory apply failed — state the
		// WAL considers acknowledged is missing from memory, and a retry
		// would log a second record with this sequence. Poison ingest until
		// a restart replays the log.
		c.poisoned = &PoisonedError{Seq: seq, BatchID: id, Cause: err}
		obsBatches.With("error").Inc()
		return zero, fmt.Errorf("%w: %w", ErrUnavailable, c.poisoned)
	}
	c.appliedSeg, c.appliedOff = c.wal.Position()
	if id != "" {
		c.remember(id, st)
	}
	if c.rebuilding {
		c.tail = append(c.tail, core.TailBatch{Seq: seq, Rows: rows})
	}
	obsBatches.With("ok").Inc()
	obsRows.Add(uint64(st.Rows))
	obsReservoirSwaps.Add(uint64(st.ReservoirSwaps))
	obsSmallGroupInserts.Add(uint64(st.SmallGroupInserts))
	obsDataGen.Set(float64(st.DataGeneration))
	obsDrift.Set(st.Drift)
	if c.cfg.OnDrift != nil && c.cfg.DriftBound > 0 &&
		st.Drift >= c.cfg.DriftBound && !c.driftFired && !c.rebuilding {
		c.driftFired = true
		go c.cfg.OnDrift(st.Drift)
	}
	return st, nil
}

// apply runs the in-memory application of a WAL-durable batch, with the
// PointIngestApply fault point in the gap a crash-point test targets: the
// batch is on disk but not yet in memory.
func (c *Coordinator) apply(seq uint64, rows [][]engine.Value) (core.BatchStats, error) {
	if err := faults.FireErr(faults.PointIngestApply, int(seq)); err != nil {
		return core.BatchStats{}, err
	}
	return c.online.Apply(seq, rows)
}

// enterDegraded latches read-only mode (idempotently) and starts the probe
// loop if one is not already running. Called with mu held.
func (c *Coordinator) enterDegraded(cause error) {
	if c.degraded == nil {
		c.degraded = cause
		obsDegraded.Set(1)
	}
	if !c.probing {
		c.probing = true
		go c.probeLoop()
	}
}

// probeLoop retries the WAL with bounded, jittered doubling backoff until a
// probe succeeds (ingest resumes) or the coordinator is closed.
func (c *Coordinator) probeLoop() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := c.cfg.ProbeBackoff
	for {
		t := time.NewTimer(jitterBackoff(rng, backoff))
		select {
		case <-c.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if err := c.ProbeNow(); err == nil {
			return
		}
		backoff *= 2
		if backoff > c.cfg.ProbeBackoffMax {
			backoff = c.cfg.ProbeBackoffMax
		}
	}
}

// jitterBackoff draws a wait uniformly from [d/2, d]. Pure doubling from a
// shared ProbeBackoff default synchronizes the probes of every degraded
// process sharing a disk (they all trip on the same fault at the same
// moment), so the recovered disk takes the whole herd's probes at once;
// the jitter decorrelates them while keeping the wait within a factor of
// two of the schedule.
func jitterBackoff(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}

// ProbeNow attempts to clear degraded mode immediately: it asks the WAL to
// repair its tail if needed and append a no-op frame through the normal
// fsync path. On success ingest is writable again. A nil return with no
// degraded state latched is a no-op. Safe to call from any goroutine; the
// probe loop calls it on its backoff schedule, and tests call it for
// determinism.
func (c *Coordinator) ProbeNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.degraded == nil {
		c.probing = false
		return nil
	}
	if err := c.wal.Probe(); err != nil {
		obsProbes.With("error").Inc()
		return err
	}
	obsProbes.With("ok").Inc()
	c.degraded = nil
	c.probing = false
	obsDegraded.Set(0)
	if c.poisoned == nil {
		// The probe's no-op frame advanced the log past positions that hold
		// only applied batches and no-ops, so the applied position may follow.
		c.appliedSeg, c.appliedOff = c.wal.Position()
	}
	return nil
}

// Degraded returns the disk fault that put ingest into read-only mode, or
// nil while ingest is writable.
func (c *Coordinator) Degraded() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Poisoned returns the durable-but-unapplied failure freezing ingest until a
// restart, or nil.
func (c *Coordinator) Poisoned() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisoned
}

// State summarises ingest availability for health endpoints: "ok",
// "degraded" (disk fault, self-recovering, ingest 503s), or "poisoned"
// (restart required). detail carries the underlying error, empty when ok.
func (c *Coordinator) State() (state, detail string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.poisoned != nil:
		return "poisoned", c.poisoned.Error()
	case c.degraded != nil:
		return "degraded", c.degraded.Error()
	}
	return "ok", ""
}

// Close stops the background probe loop. It does not close the WAL.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
}

// SetOnDrift installs (or replaces) the drift-trigger callback after
// construction. The server uses it to point the trigger at its own rebuild
// once both sides exist; call before serving ingest traffic.
func (c *Coordinator) SetOnDrift(fn func(drift float64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.OnDrift = fn
}

// remember records a batch id in the idempotency LRU, evicting the oldest
// once the window is full.
func (c *Coordinator) remember(id string, st core.BatchStats) {
	if len(c.order) < c.cfg.IdempotencyWindow {
		c.order = append(c.order, id)
	} else {
		delete(c.ids, c.order[c.oldest])
		c.order[c.oldest] = id
		c.oldest = (c.oldest + 1) % len(c.order)
	}
	c.ids[id] = st
}

// Generation returns the current data generation (ingest batches applied).
func (c *Coordinator) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.online.DataGeneration()
}

// Drift returns the current drift gauge (see core.Online.Drift).
func (c *Coordinator) Drift() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.online.Drift()
}

// BeginRebuild pins the current database version for a background rebuild
// and starts buffering subsequent batches as the tail. Exactly one rebuild
// may be in flight; a second call fails until CompleteRebuild or
// AbortRebuild.
func (c *Coordinator) BeginRebuild() (*engine.Database, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rebuilding {
		return nil, 0, errors.New("ingest: rebuild already in progress")
	}
	c.rebuilding = true
	c.tail = nil
	db, gen := c.sys.Data()
	return db, gen, nil
}

// CompleteRebuild installs the freshly pre-processed state (built from the
// database version BeginRebuild pinned at generation rebuiltAt), re-applies
// the buffered tail sample-side, publishes the result, and re-arms the
// drift trigger. Ingest is paused for the duration of the rebase only — the
// expensive Preprocess ran outside the lock.
func (c *Coordinator) CompleteRebuild(p core.Prepared, rebuiltAt uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rebuilding {
		return errors.New("ingest: no rebuild in progress")
	}
	err := c.online.Rebase(p, rebuiltAt, c.tail)
	c.rebuilding = false
	c.tail = nil
	c.driftFired = false
	if err != nil {
		return err
	}
	obsDrift.Set(c.online.Drift())
	return nil
}

// AbortRebuild abandons an in-flight rebuild, discarding the buffered tail
// and re-arming the drift trigger.
func (c *Coordinator) AbortRebuild() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rebuilding = false
	c.tail = nil
	c.driftFired = false
}

// identEntries returns the idempotency window oldest→newest. Called with mu
// held.
func (c *Coordinator) identEntries() []IdentEntry {
	n := len(c.order)
	out := make([]IdentEntry, 0, n)
	for i := 0; i < n; i++ {
		id := c.order[(c.oldest+i)%n]
		out = append(out, IdentEntry{ID: id, Stats: c.ids[id]})
	}
	return out
}

// CheckpointResult reports what SaveCheckpoint did.
type CheckpointResult struct {
	// Generation is the catalog generation the checkpoint was saved as.
	Generation uint64
	// Removed is how many fully-covered WAL segments were deleted.
	Removed int
	// GCErr is a non-fatal segment-deletion failure: the checkpoint itself
	// is durable and the leftover segments are retried at the next
	// checkpoint or the next startup.
	GCErr error
}

// SaveCheckpoint writes the current state as a checkpointed snapshot
// generation and then garbage-collects the WAL segments it fully covers.
// The cut is captured under the writer lock (samples, applied WAL position,
// ingested-row delta, and idempotency window all describe the same paused
// instant); the snapshot bytes are written outside the lock so ingest stalls
// only for the capture. Segments are deleted only after the snapshot file on
// disk re-reads and decodes — never on the strength of a write that merely
// returned nil. A manifest-update failure is reported in err with a non-zero
// Generation, mirroring catalog.Save: the snapshot is durable and GC has
// already run.
func (c *Coordinator) SaveCheckpoint(cat *catalog.Catalog) (CheckpointResult, error) {
	var res CheckpointResult
	c.mu.Lock()
	if c.rebuilding {
		c.mu.Unlock()
		return res, errors.New("ingest: cannot checkpoint during a rebuild")
	}
	db, gen := c.sys.Data()
	p, ok := c.sys.Prepared(c.cfg.Strategy)
	if !ok {
		c.mu.Unlock()
		return res, fmt.Errorf("ingest: no prepared state for strategy %q", c.cfg.Strategy)
	}
	if got := core.DataGenerationOf(p); got != gen {
		c.mu.Unlock()
		return res, fmt.Errorf("ingest: prepared samples are at generation %d but data is at %d", got, gen)
	}
	ck := Checkpoint{DataGen: gen, BaseRows: c.baseRows, Seg: c.appliedSeg, Off: c.appliedOff}
	ids := c.identEntries()
	c.mu.Unlock()

	// Both the database version and the prepared state are immutable
	// snapshots, so flattening the delta and writing the file race nothing.
	var delta *engine.Table
	if n := db.NumRows(); uint64(n) > ck.BaseRows {
		rows := make([]int, 0, uint64(n)-ck.BaseRows)
		for i := int(ck.BaseRows); i < n; i++ {
			rows = append(rows, i)
		}
		delta = db.Flatten("ingest-delta", rows, nil, nil)
	}
	cgen, err := cat.SaveWithCheckpoint(func(w io.Writer) error {
		return WriteCheckpoint(w, p, ck, delta, ids)
	}, &catalog.CheckpointInfo{DataGeneration: ck.DataGen, WALSegment: ck.Seg, WALOffset: ck.Off})
	if err != nil && cgen == 0 {
		obsCheckpoints.With("error").Inc()
		return res, err
	}
	res.Generation = cgen
	manifestErr := err // snapshot durable; only the advisory manifest failed

	if verr := verifyCheckpointFile(cat.Path(cgen)); verr != nil {
		obsCheckpoints.With("error").Inc()
		return res, fmt.Errorf("ingest: checkpoint generation %d failed read-back verification (wal retained): %w", cgen, verr)
	}
	obsCheckpoints.With("ok").Inc()

	c.mu.Lock()
	res.Removed, res.GCErr = c.wal.RemoveSegmentsBelow(ck.Seg)
	c.mu.Unlock()
	return res, manifestErr
}

// verifyCheckpointFile re-reads a just-written snapshot from disk and fully
// decodes it. WAL segments may only be deleted on the strength of bytes that
// verify on disk, not a write call that returned nil.
func verifyCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return catalog.ReadSnapshot(f, func(r io.Reader) error {
		_, derr := DecodeSnapshot(r)
		return derr
	})
}
