package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dynsample/internal/core"
	"dynsample/internal/engine"
)

// ErrOverloaded is returned when more ingest requests are in flight than the
// configured pending bound; callers should retry after backing off (the HTTP
// layer maps it to 503 + Retry-After).
var ErrOverloaded = errors.New("ingest: too many pending batches")

// ErrDuplicate reports that a batch id was already applied; the stats
// returned alongside it are the original application's. Retried requests
// (client timeout, at-least-once delivery) land here instead of appending
// rows twice.
var ErrDuplicate = errors.New("ingest: duplicate batch id")

// ErrUnavailable marks server-side ingest failures — a WAL write or fsync
// error, a batch that was logged durably but failed to apply in memory, or
// any request refused because an earlier such failure poisoned the
// coordinator. Unlike validation errors the request itself was fine, so the
// HTTP layer maps it to 500 rather than 400.
var ErrUnavailable = errors.New("ingest: ingestion unavailable")

// Config tunes a Coordinator. The zero value is usable given a Strategy
// registered on the System.
type Config struct {
	// Strategy names the prepared state to maintain online. Empty means
	// "smallgroup".
	Strategy string
	// Online parameterises the core maintenance layer. Online.Seed must be
	// stable across restarts of the same WAL for bit-identical replay.
	Online core.OnlineConfig
	// MaxPending bounds ingest requests admitted concurrently (applying plus
	// waiting on the writer lock); excess requests fail fast with
	// ErrOverloaded. Zero means 64.
	MaxPending int
	// DriftBound is the drift-gauge level at which OnDrift fires (serve
	// slightly-stale-but-correct answers below it, rebuild above). Zero means
	// 1.0; negative disables the trigger.
	DriftBound float64
	// IdempotencyWindow is how many recent batch ids are remembered for
	// duplicate detection. Zero means 4096.
	IdempotencyWindow int
	// OnDrift, when non-nil, is called (on its own goroutine, at most once
	// per rebuild cycle) when the drift gauge crosses DriftBound. The server
	// wires it to a background rebuild.
	OnDrift func(drift float64)
}

// Coordinator is the single-writer ingest pipeline: validate → WAL append +
// fsync → in-memory apply → publish. One mutex serialises the write path;
// queries never take it — they read the atomically published versions in
// core.System. It also owns the rebuild handshake: batches ingested while a
// rebuild runs are buffered as the tail and re-applied onto the fresh state.
type Coordinator struct {
	sys *core.System
	wal *WAL
	cfg Config

	pending atomic.Int64

	mu     sync.Mutex
	online *core.Online

	// Idempotency LRU: ids in arrival order, evicting the oldest.
	ids    map[string]core.BatchStats
	order  []string
	oldest int

	rebuilding bool
	tail       []core.TailBatch
	driftFired bool

	// poisoned is set when a batch became durable in the WAL but failed to
	// apply in memory: the log and the in-memory state now disagree, and any
	// further append would reuse the durable batch's sequence number and
	// corrupt the WAL. Every subsequent Ingest refuses with ErrUnavailable;
	// restarting replays the log and clears the divergence.
	poisoned error
}

// New attaches a coordinator to the system's prepared state. Call after the
// strategy is registered (fresh Preprocess or snapshot restore) and the WAL
// is open, then ReplayWAL before serving ingest traffic.
func New(sys *core.System, wal *WAL, cfg Config) (*Coordinator, error) {
	if cfg.Strategy == "" {
		cfg.Strategy = "smallgroup"
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	if cfg.DriftBound == 0 {
		cfg.DriftBound = 1.0
	}
	if cfg.IdempotencyWindow <= 0 {
		cfg.IdempotencyWindow = 4096
	}
	online, err := core.NewOnline(sys, cfg.Strategy, cfg.Online)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		sys:    sys,
		wal:    wal,
		cfg:    cfg,
		online: online,
		ids:    make(map[string]core.BatchStats, cfg.IdempotencyWindow),
	}
	obsDataGen.Set(float64(online.DataGeneration()))
	obsDrift.Set(online.Drift())
	return c, nil
}

// ReplayWAL re-applies every durable batch from the WAL, in order, onto the
// regenerated base data. Batches at or below the restored sample
// generation update the base only (their rows are already baked into the
// snapshot's samples); later batches replay in full. Batch ids are fed into
// the idempotency window so client retries spanning a restart are still
// deduplicated. Returns the number of batches applied and whether a torn
// tail was discarded.
func (c *Coordinator) ReplayWAL() (batches int, torn bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	records, torn, err := Replay(c.wal.Dir(), func(payload []byte) error {
		b, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if want := c.online.DataGeneration() + 1; b.Seq != want {
			return fmt.Errorf("%w: batch sequence %d, want %d", ErrCorrupt, b.Seq, want)
		}
		st, err := c.online.Apply(b.Seq, b.Rows)
		if err != nil {
			return fmt.Errorf("ingest: replaying batch %d: %w", b.Seq, err)
		}
		if b.ID != "" {
			c.remember(b.ID, st)
		}
		obsReplayed.Inc()
		return nil
	})
	if err != nil {
		return records, torn, err
	}
	obsDataGen.Set(float64(c.online.DataGeneration()))
	obsDrift.Set(c.online.Drift())
	return records, torn, nil
}

// Ingest appends one batch of rows (view column order) with the given
// idempotency id (may be empty). On success the batch is durable in the WAL
// and visible to queries. A repeated id returns the original stats with
// ErrDuplicate; overload returns ErrOverloaded without touching anything.
func (c *Coordinator) Ingest(id string, rows [][]engine.Value) (core.BatchStats, error) {
	var zero core.BatchStats
	if n := c.pending.Add(1); n > int64(c.cfg.MaxPending) {
		c.pending.Add(-1)
		obsBatches.With("overload").Inc()
		return zero, ErrOverloaded
	}
	defer c.pending.Add(-1)
	if len(rows) == 0 {
		obsBatches.With("invalid").Inc()
		return zero, errors.New("ingest: empty batch")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if id != "" {
		if st, ok := c.ids[id]; ok {
			obsBatches.With("duplicate").Inc()
			return st, ErrDuplicate
		}
	}
	if c.poisoned != nil {
		obsBatches.With("poisoned").Inc()
		return zero, fmt.Errorf("%w: writes disabled after earlier failure (restart to recover): %v", ErrUnavailable, c.poisoned)
	}
	// Validate before the WAL append: a record acknowledged to disk must be
	// guaranteed to apply on replay.
	if err := c.online.Validate(rows); err != nil {
		obsBatches.With("invalid").Inc()
		return zero, err
	}
	seq := c.online.DataGeneration() + 1
	payload, err := EncodeBatch(&Batch{Seq: seq, ID: id, Rows: rows})
	if err != nil {
		obsBatches.With("invalid").Inc()
		return zero, err
	}
	if err := c.wal.Append(payload); err != nil {
		// The WAL either rolled the failed frame back (retrying this
		// sequence is safe) or marked itself broken and will refuse every
		// further append itself — either way the log cannot accumulate a
		// torn frame or a duplicate sequence behind this failure.
		obsBatches.With("error").Inc()
		return zero, fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	st, err := c.online.Apply(seq, rows)
	if err != nil {
		// The record is durable but the in-memory apply failed — state the
		// WAL considers acknowledged is missing from memory, and a retry
		// would log a second record with this sequence. Poison ingest until
		// a restart replays the log.
		c.poisoned = fmt.Errorf("batch %d logged but not applied: %v", seq, err)
		obsBatches.With("error").Inc()
		return zero, fmt.Errorf("%w: batch %d logged but not applied (restart to replay): %w", ErrUnavailable, seq, err)
	}
	if id != "" {
		c.remember(id, st)
	}
	if c.rebuilding {
		c.tail = append(c.tail, core.TailBatch{Seq: seq, Rows: rows})
	}
	obsBatches.With("ok").Inc()
	obsRows.Add(uint64(st.Rows))
	obsReservoirSwaps.Add(uint64(st.ReservoirSwaps))
	obsSmallGroupInserts.Add(uint64(st.SmallGroupInserts))
	obsDataGen.Set(float64(st.DataGeneration))
	obsDrift.Set(st.Drift)
	if c.cfg.OnDrift != nil && c.cfg.DriftBound > 0 &&
		st.Drift >= c.cfg.DriftBound && !c.driftFired && !c.rebuilding {
		c.driftFired = true
		go c.cfg.OnDrift(st.Drift)
	}
	return st, nil
}

// SetOnDrift installs (or replaces) the drift-trigger callback after
// construction. The server uses it to point the trigger at its own rebuild
// once both sides exist; call before serving ingest traffic.
func (c *Coordinator) SetOnDrift(fn func(drift float64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.OnDrift = fn
}

// remember records a batch id in the idempotency LRU, evicting the oldest
// once the window is full.
func (c *Coordinator) remember(id string, st core.BatchStats) {
	if len(c.order) < c.cfg.IdempotencyWindow {
		c.order = append(c.order, id)
	} else {
		delete(c.ids, c.order[c.oldest])
		c.order[c.oldest] = id
		c.oldest = (c.oldest + 1) % len(c.order)
	}
	c.ids[id] = st
}

// Generation returns the current data generation (ingest batches applied).
func (c *Coordinator) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.online.DataGeneration()
}

// Drift returns the current drift gauge (see core.Online.Drift).
func (c *Coordinator) Drift() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.online.Drift()
}

// BeginRebuild pins the current database version for a background rebuild
// and starts buffering subsequent batches as the tail. Exactly one rebuild
// may be in flight; a second call fails until CompleteRebuild or
// AbortRebuild.
func (c *Coordinator) BeginRebuild() (*engine.Database, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rebuilding {
		return nil, 0, errors.New("ingest: rebuild already in progress")
	}
	c.rebuilding = true
	c.tail = nil
	db, gen := c.sys.Data()
	return db, gen, nil
}

// CompleteRebuild installs the freshly pre-processed state (built from the
// database version BeginRebuild pinned at generation rebuiltAt), re-applies
// the buffered tail sample-side, publishes the result, and re-arms the
// drift trigger. Ingest is paused for the duration of the rebase only — the
// expensive Preprocess ran outside the lock.
func (c *Coordinator) CompleteRebuild(p core.Prepared, rebuiltAt uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rebuilding {
		return errors.New("ingest: no rebuild in progress")
	}
	err := c.online.Rebase(p, rebuiltAt, c.tail)
	c.rebuilding = false
	c.tail = nil
	c.driftFired = false
	if err != nil {
		return err
	}
	obsDrift.Set(c.online.Drift())
	return nil
}

// AbortRebuild abandons an in-flight rebuild, discarding the buffered tail
// and re-arming the drift trigger.
func (c *Coordinator) AbortRebuild() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rebuilding = false
	c.tail = nil
	c.driftFired = false
}
