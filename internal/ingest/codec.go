package ingest

import (
	"encoding/binary"
	"fmt"
	"math"

	"dynsample/internal/engine"
)

// Batch record format (the payload inside one WAL record):
//
//	[version u8][seq u64][id len u16][id][nrows u32][ncols u32]
//	then nrows*ncols values, row-major, each
//	[type u8][int64 | float64 bits | len u32 + bytes]
//
// Values are in the database's view column order (engine.Database.Columns),
// the same order the Appender consumes. Every count is capped before it
// sizes an allocation: the decoder sees bytes that already passed the WAL
// checksum, but the caps keep a logic bug — or a hostile file dropped into
// the wal dir — from turning into a multi-gigabyte allocation.
const (
	batchVersion = 1

	// noopVersion tags a no-op control frame: a record that carries no batch
	// and exists only to prove the log is writable again (the degraded-mode
	// probe appends one after a disk fault clears). Replay skips it without
	// consuming a sequence number.
	noopVersion = 0xFF

	maxBatchRows = 1 << 18 // rows per batch
	maxBatchCols = 1 << 12 // columns per row
	maxBatchID   = 1 << 10 // client batch id bytes
	maxValueLen  = 1 << 20 // string value bytes
)

// EncodeNoop returns the payload of a no-op control frame (see noopVersion).
func EncodeNoop() []byte { return []byte{noopVersion} }

// IsNoop reports whether a WAL record payload is a no-op control frame.
func IsNoop(p []byte) bool { return len(p) == 1 && p[0] == noopVersion }

// Batch is one decoded ingest batch.
type Batch struct {
	// Seq is the coordinator-assigned sequence number (1-based, contiguous).
	Seq uint64
	// ID is the client's idempotency key; may be empty.
	ID string
	// Rows are the appended rows in view column order.
	Rows [][]engine.Value
}

// EncodeBatch serialises a batch into a WAL record payload.
func EncodeBatch(b *Batch) ([]byte, error) {
	if len(b.Rows) == 0 || len(b.Rows) > maxBatchRows {
		return nil, fmt.Errorf("ingest: batch has %d rows, want 1..%d", len(b.Rows), maxBatchRows)
	}
	ncols := len(b.Rows[0])
	if ncols == 0 || ncols > maxBatchCols {
		return nil, fmt.Errorf("ingest: batch has %d columns, want 1..%d", ncols, maxBatchCols)
	}
	if len(b.ID) > maxBatchID {
		return nil, fmt.Errorf("ingest: batch id is %d bytes, max %d", len(b.ID), maxBatchID)
	}
	out := make([]byte, 0, 32+len(b.Rows)*ncols*9)
	out = append(out, batchVersion)
	out = binary.LittleEndian.AppendUint64(out, b.Seq)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(b.ID)))
	out = append(out, b.ID...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Rows)))
	out = binary.LittleEndian.AppendUint32(out, uint32(ncols))
	for _, row := range b.Rows {
		if len(row) != ncols {
			return nil, fmt.Errorf("ingest: ragged batch: row has %d values, want %d", len(row), ncols)
		}
		for _, v := range row {
			out = append(out, byte(v.T))
			switch v.T {
			case engine.Int:
				out = binary.LittleEndian.AppendUint64(out, uint64(v.I))
			case engine.Float:
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v.F))
			case engine.String:
				if len(v.S) > maxValueLen {
					return nil, fmt.Errorf("ingest: string value is %d bytes, max %d", len(v.S), maxValueLen)
				}
				out = binary.LittleEndian.AppendUint32(out, uint32(len(v.S)))
				out = append(out, v.S...)
			default:
				return nil, fmt.Errorf("ingest: unsupported value type %d", v.T)
			}
		}
	}
	return out, nil
}

// DecodeBatch parses a WAL record payload. Every length is validated
// against both its cap and the remaining input before it is trusted.
func DecodeBatch(p []byte) (*Batch, error) {
	d := decoder{buf: p}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != batchVersion {
		return nil, fmt.Errorf("ingest: unsupported batch version %d", ver)
	}
	b := &Batch{}
	if b.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	idLen, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(idLen) > maxBatchID {
		return nil, fmt.Errorf("ingest: batch id length %d exceeds %d", idLen, maxBatchID)
	}
	id, err := d.bytes(int(idLen))
	if err != nil {
		return nil, err
	}
	b.ID = string(id)
	nrows, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nrows == 0 || nrows > maxBatchRows {
		return nil, fmt.Errorf("ingest: batch row count %d out of range (1..%d)", nrows, maxBatchRows)
	}
	ncols, err := d.u32()
	if err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > maxBatchCols {
		return nil, fmt.Errorf("ingest: batch column count %d out of range (1..%d)", ncols, maxBatchCols)
	}
	// Each value is at least 2 bytes on the wire; reject impossible counts
	// before allocating row storage proportional to them.
	if uint64(nrows)*uint64(ncols)*2 > uint64(len(d.buf)-d.off) {
		return nil, fmt.Errorf("ingest: batch declares %d values but only %d bytes remain", uint64(nrows)*uint64(ncols), len(d.buf)-d.off)
	}
	b.Rows = make([][]engine.Value, nrows)
	for r := range b.Rows {
		row := make([]engine.Value, ncols)
		for c := range row {
			t, err := d.u8()
			if err != nil {
				return nil, err
			}
			switch engine.Type(t) {
			case engine.Int:
				u, err := d.u64()
				if err != nil {
					return nil, err
				}
				row[c] = engine.IntVal(int64(u))
			case engine.Float:
				u, err := d.u64()
				if err != nil {
					return nil, err
				}
				f := math.Float64frombits(u)
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return nil, fmt.Errorf("ingest: non-finite float value in batch")
				}
				row[c] = engine.FloatVal(f)
			case engine.String:
				n, err := d.u32()
				if err != nil {
					return nil, err
				}
				if n > maxValueLen {
					return nil, fmt.Errorf("ingest: string value length %d exceeds %d", n, maxValueLen)
				}
				s, err := d.bytes(int(n))
				if err != nil {
					return nil, err
				}
				row[c] = engine.StringVal(string(s))
			default:
				return nil, fmt.Errorf("ingest: unsupported value type %d", t)
			}
		}
		b.Rows[r] = row
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("ingest: %d trailing bytes after batch", len(d.buf)-d.off)
	}
	return b, nil
}

// decoder is a bounds-checked cursor over a record payload.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) need(n int) error {
	if len(d.buf)-d.off < n {
		return fmt.Errorf("ingest: truncated batch record (need %d bytes, have %d)", n, len(d.buf)-d.off)
	}
	return nil
}

func (d *decoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v, nil
}
