package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dynsample/internal/core"
	"dynsample/internal/engine"
)

// A checkpointed snapshot ties a saved sample family to the WAL position it
// covers, which is what lets the WAL be garbage-collected and restart replay
// be bounded. The container is:
//
//	[magic "DSCP0001"]
//	[dataGen u64][baseRows u64][walSeg u64][walOff u64]
//	[nIDs u32] then per id (oldest first):
//	    [idlen u16][id][rows u32][swaps u32][sgInserts u32][drift f64][gen u64]
//	[hasDelta u8] [engine table binary, if 1]
//	[core.SaveSmallGroup stream]
//
// The delta table holds the ingested rows past baseRows in view column
// order: snapshots persist samples, not base data, and the base data is
// regenerated at startup — so once the covering WAL segments are deleted the
// snapshot itself must carry the ingested rows, or they would exist nowhere.
// The idempotency entries let a restart keep answering duplicate batch ids
// whose WAL records were garbage-collected.
//
// Legacy snapshots (a bare SaveSmallGroup stream, magic "DSSG") still decode:
// DecodeSnapshot sniffs the magic and returns them with a nil Checkpoint,
// which recovery treats as "covers nothing — replay the whole WAL".
const (
	ckMagic = "DSCP0001"

	// maxCheckpointIDs caps the persisted idempotency window; the in-memory
	// window default is 4096, so this is generous headroom, not a limit a
	// healthy system approaches.
	maxCheckpointIDs = 1 << 20
)

// Checkpoint is the WAL position a snapshot covers: the first DataGen ingest
// batches, physically everything before (Seg, Off). Segments with index
// below Seg hold only covered records and are deletable.
type Checkpoint struct {
	DataGen  uint64
	BaseRows uint64
	Seg      uint64
	Off      int64
}

// IdentEntry is one persisted idempotency-window entry: a client batch id
// and the stats its original ingest returned (replayed to duplicates).
type IdentEntry struct {
	ID    string
	Stats core.BatchStats
}

// Snapshot is a decoded catalog snapshot in either format.
type Snapshot struct {
	// Checkpoint is nil for legacy (pre-checkpoint) snapshots.
	Checkpoint *Checkpoint
	// Prepared is the sample family (always present).
	Prepared core.Prepared
	// Delta holds ingested rows past Checkpoint.BaseRows, or nil if the
	// checkpoint covered no ingest.
	Delta *engine.Table
	// IDs is the persisted idempotency window, oldest first.
	IDs []IdentEntry
}

// WriteCheckpoint serialises a checkpointed snapshot. delta may be nil when
// no rows were ingested since the base data was generated.
func WriteCheckpoint(w io.Writer, p core.Prepared, ck Checkpoint, delta *engine.Table, ids []IdentEntry) error {
	if len(ids) > maxCheckpointIDs {
		// Persist the newest entries; dropping the oldest only narrows the
		// duplicate-detection window, it cannot corrupt state.
		ids = ids[len(ids)-maxCheckpointIDs:]
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(ckMagic)
	var b8 [8]byte
	putCkU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		bw.Write(b8[:])
	}
	putCkU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		bw.Write(b8[:4])
	}
	putCkU64(ck.DataGen)
	putCkU64(ck.BaseRows)
	putCkU64(ck.Seg)
	putCkU64(uint64(ck.Off))
	putCkU32(uint32(len(ids)))
	for _, e := range ids {
		if len(e.ID) > maxBatchID {
			return fmt.Errorf("ingest: checkpoint id is %d bytes, max %d", len(e.ID), maxBatchID)
		}
		binary.LittleEndian.PutUint16(b8[:2], uint16(len(e.ID)))
		bw.Write(b8[:2])
		bw.WriteString(e.ID)
		putCkU32(uint32(e.Stats.Rows))
		putCkU32(uint32(e.Stats.ReservoirSwaps))
		putCkU32(uint32(e.Stats.SmallGroupInserts))
		putCkU64(math.Float64bits(e.Stats.Drift))
		putCkU64(e.Stats.DataGeneration)
	}
	if delta == nil {
		bw.WriteByte(0)
	} else {
		bw.WriteByte(1)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if delta != nil {
		if err := engine.WriteBinary(delta, w); err != nil {
			return fmt.Errorf("ingest: writing checkpoint delta: %w", err)
		}
	}
	return core.SaveSmallGroup(w, p)
}

// DecodeSnapshot reads a snapshot in either format, sniffing the magic. A
// legacy SaveSmallGroup stream decodes to a Snapshot with a nil Checkpoint.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("ingest: reading snapshot header: %w", err)
	}
	if string(head) != "DSCP" {
		p, err := core.LoadSmallGroupAny(br)
		if err != nil {
			return nil, err
		}
		return &Snapshot{Prepared: p}, nil
	}
	magic := make([]byte, len(ckMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ingest: reading checkpoint header: %w", err)
	}
	if string(magic) != ckMagic {
		return nil, fmt.Errorf("ingest: unsupported checkpoint version %q", magic)
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	ck := &Checkpoint{}
	if ck.DataGen, err = readU64(); err != nil {
		return nil, err
	}
	if ck.BaseRows, err = readU64(); err != nil {
		return nil, err
	}
	if ck.Seg, err = readU64(); err != nil {
		return nil, err
	}
	off, err := readU64()
	if err != nil {
		return nil, err
	}
	ck.Off = int64(off)
	nIDs, err := readU32()
	if err != nil {
		return nil, err
	}
	if nIDs > maxCheckpointIDs {
		return nil, fmt.Errorf("ingest: checkpoint id count %d exceeds %d", nIDs, maxCheckpointIDs)
	}
	s := &Snapshot{Checkpoint: ck}
	for i := uint32(0); i < nIDs; i++ {
		var b2 [2]byte
		if _, err := io.ReadFull(br, b2[:]); err != nil {
			return nil, err
		}
		idLen := binary.LittleEndian.Uint16(b2[:])
		if int(idLen) > maxBatchID {
			return nil, fmt.Errorf("ingest: checkpoint id length %d exceeds %d", idLen, maxBatchID)
		}
		idb := make([]byte, idLen)
		if _, err := io.ReadFull(br, idb); err != nil {
			return nil, err
		}
		var e IdentEntry
		e.ID = string(idb)
		rows, err := readU32()
		if err != nil {
			return nil, err
		}
		swaps, err := readU32()
		if err != nil {
			return nil, err
		}
		sg, err := readU32()
		if err != nil {
			return nil, err
		}
		driftBits, err := readU64()
		if err != nil {
			return nil, err
		}
		gen, err := readU64()
		if err != nil {
			return nil, err
		}
		e.Stats = core.BatchStats{
			Rows:              int(rows),
			ReservoirSwaps:    int(swaps),
			SmallGroupInserts: int(sg),
			Drift:             math.Float64frombits(driftBits),
			DataGeneration:    gen,
		}
		s.IDs = append(s.IDs, e)
	}
	hasDelta, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	switch hasDelta {
	case 0:
	case 1:
		if s.Delta, err = engine.ReadBinary(br); err != nil {
			return nil, fmt.Errorf("ingest: reading checkpoint delta: %w", err)
		}
	default:
		return nil, fmt.Errorf("ingest: bad checkpoint delta flag %d", hasDelta)
	}
	if s.Prepared, err = core.LoadSmallGroup(br); err != nil {
		return nil, err
	}
	return s, nil
}

// Restore installs a checkpointed snapshot into the system: it re-appends
// the delta rows onto the regenerated base data, publishes the resulting
// database at the checkpoint's data generation, and registers the prepared
// sample family under strategy. The caller (startup recovery) must verify
// sys currently holds exactly Checkpoint.BaseRows base rows — the delta was
// cut past that point, so a different base would splice it at the wrong
// offset. Legacy snapshots (nil Checkpoint) only register the Prepared.
func (s *Snapshot) Restore(sys *core.System, strategy string) error {
	ck := s.Checkpoint
	if ck == nil {
		sys.AddPrepared(strategy, s.Prepared)
		return nil
	}
	if got := sys.DB().NumRows(); uint64(got) != ck.BaseRows {
		return fmt.Errorf("ingest: checkpoint was cut over %d base rows but the regenerated base has %d (changed -rows?); discard the snapshot or regenerate the original base",
			ck.BaseRows, got)
	}
	if s.Delta != nil && s.Delta.NumRows() > 0 {
		app, err := engine.NewAppender(sys.DB())
		if err != nil {
			return fmt.Errorf("ingest: restoring checkpoint delta: %w", err)
		}
		rows := make([][]engine.Value, s.Delta.NumRows())
		for i := range rows {
			rows[i] = s.Delta.RowValues(i)
		}
		if err := app.Validate(rows); err != nil {
			return fmt.Errorf("ingest: restoring checkpoint delta: %w", err)
		}
		ndb, err := app.Append(rows)
		if err != nil {
			return fmt.Errorf("ingest: restoring checkpoint delta: %w", err)
		}
		sys.SwapData(ndb, ck.DataGen)
	} else {
		sys.SwapData(sys.DB(), ck.DataGen)
	}
	sys.AddPrepared(strategy, s.Prepared)
	return nil
}
