package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dynsample/internal/catalog"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/randx"
)

// ckSegBytes keeps segments tiny so a handful of batches spans several
// segments and checkpoint GC has something real to delete.
const ckSegBytes = 2048

// newCheckpointSystem is newIngestSystem with a small-segment WAL.
func newCheckpointSystem(t testing.TB, n int, dir string, cfg Config) (*core.System, *Coordinator, *WAL) {
	t.Helper()
	sys := core.NewSystem(ingestDB(t, n))
	if err := sys.AddStrategy(core.NewSmallGroup(ingestSGCfg)); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWALWith(dir, WALOptions{SegmentBytes: ckSegBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	c, err := New(sys, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, c, w
}

// rebuildNow runs the full rebuild handshake synchronously, as the server's
// background rebuild would: pin, preprocess outside the lock, publish.
func rebuildNow(t testing.TB, c *Coordinator) {
	t.Helper()
	db, pinned, err := c.BeginRebuild()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewSmallGroup(ingestSGCfg).Preprocess(db)
	if err != nil {
		c.AbortRebuild()
		t.Fatal(err)
	}
	if err := c.CompleteRebuild(p, pinned); err != nil {
		t.Fatal(err)
	}
}

// walSegIndexes lists the WAL segment indexes present in dir, ascending.
func walSegIndexes(t testing.TB, dir string) []uint64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var idx []uint64
	for _, e := range ents {
		var i uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%010d.seg", &i); err == nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// TestCheckpointBoundedRestart is the checkpoint acceptance test: ingest N
// batches, rebuild and checkpoint, ingest M more, restart — startup must
// replay only the M post-checkpoint batches, the pre-checkpoint segments
// must be gone from disk, the idempotency window must survive the restart,
// and the answers must equal an uncrashed run's bit for bit.
func TestCheckpointBoundedRestart(t *testing.T) {
	t.Cleanup(faults.Reset)
	const n = 3000
	const N, M = 6, 3
	cfg := Config{Online: core.OnlineConfig{Seed: 91}}
	mkBatches := func() [][][]engine.Value {
		rng := randx.New(77)
		out := make([][][]engine.Value, N+M)
		for i := range out {
			out[i] = ingestRows(rng, 40)
		}
		return out
	}

	// Reference: the same sequence in one uncrashed process (rebuild
	// included — it changes the sample family), no checkpoint, no restart.
	sysRef, cRef, _ := newCheckpointSystem(t, n, t.TempDir(), cfg)
	ref := mkBatches()
	for i := 0; i < N; i++ {
		if _, err := cRef.Ingest(fmt.Sprintf("b-%d", i), ref[i]); err != nil {
			t.Fatal(err)
		}
	}
	rebuildNow(t, cRef)
	for i := N; i < N+M; i++ {
		if _, err := cRef.Ingest(fmt.Sprintf("b-%d", i), ref[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := answersOf(t, sysRef)

	// Live run: same sequence, but the rebuild persists a checkpoint.
	walDir := t.TempDir()
	cat, err := catalog.Open(t.TempDir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys1, c1, w1 := newCheckpointSystem(t, n, walDir, cfg)
	batches := mkBatches()
	for i := 0; i < N; i++ {
		if _, err := c1.Ingest(fmt.Sprintf("b-%d", i), batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := len(walSegIndexes(t, walDir))
	rebuildNow(t, c1)
	res, err := c1.SaveCheckpoint(cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.GCErr != nil {
		t.Fatalf("SaveCheckpoint = %+v, want generation 1 with clean GC", res)
	}
	if res.Removed < 1 {
		t.Fatalf("checkpoint removed %d segments; the %d batches were meant to span several (shrink ckSegBytes?)", res.Removed, N)
	}
	if after := len(walSegIndexes(t, walDir)); after != before-res.Removed {
		t.Fatalf("wal dir has %d segments, want %d - %d removed", after, before, res.Removed)
	}
	for i := N; i < N+M; i++ {
		if _, err := c1.Ingest(fmt.Sprintf("b-%d", i), batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := answersOf(t, sys1); got != want {
		t.Error("checkpointed run answers differ from the uncrashed reference")
	}
	w1.Close()

	// Restart, mirroring cmd/aqpd recovery: regenerate the base, restore the
	// newest snapshot (samples + delta + idempotency window), finish any
	// interrupted GC, and replay only the tail past the checkpoint.
	sys2 := core.NewSystem(ingestDB(t, n))
	var snap *Snapshot
	lr, err := cat.LoadLatest(func(r io.Reader) error {
		s, derr := DecodeSnapshot(r)
		if derr != nil {
			return derr
		}
		snap = s
		return nil
	})
	if err != nil || lr.Generation != 1 {
		t.Fatalf("LoadLatest = gen %d err %v, want generation 1", lr.Generation, err)
	}
	ck := snap.Checkpoint
	if ck == nil {
		t.Fatal("restored snapshot has no checkpoint")
	}
	if ck.BaseRows != uint64(n) {
		t.Fatalf("checkpoint base rows = %d, want %d", ck.BaseRows, n)
	}
	if err := snap.Restore(sys2, "smallgroup"); err != nil {
		t.Fatal(err)
	}
	if got := sys2.DB().NumRows(); got != n+N*40 {
		t.Fatalf("restored base+delta has %d rows, want %d", got, n+N*40)
	}
	for _, idx := range walSegIndexes(t, walDir) {
		if idx < ck.Seg {
			t.Fatalf("segment %d survives below the checkpoint position %d", idx, ck.Seg)
		}
	}
	w2, err := OpenWALWith(walDir, WALOptions{SegmentBytes: ckSegBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w2.Close() })
	if removed, err := w2.RemoveSegmentsBelow(ck.Seg); err != nil || removed != 0 {
		t.Fatalf("startup GC = (%d, %v), want nothing left to do", removed, err)
	}
	// Snapshot-restored prepared state does not carry the preprocessing
	// config, so the small-group fraction must be supplied explicitly (as
	// cmd/aqpd does) and must match what the pre-restart run derived.
	online2 := cfg.Online
	online2.SmallGroupFraction = ingestSGCfg.SmallGroupFraction
	c2, err := New(sys2, w2, Config{
		Online:   online2,
		BaseRows: int(ck.BaseRows),
	})
	if err != nil {
		t.Fatal(err)
	}
	c2.SeedIdempotency(snap.IDs)
	rs, err := c2.ReplayWAL()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Batches != M || rs.Torn {
		t.Fatalf("replayed %d batches (torn=%v), want exactly the %d post-checkpoint batches", rs.Batches, rs.Torn, M)
	}
	if got := answersOf(t, sys2); got != want {
		t.Error("restarted answers differ from the uncrashed reference")
	}
	// The idempotency window survives the restart on both sides of the
	// checkpoint: a covered batch id comes from the snapshot, a replayed one
	// from the tail.
	if _, err := c2.Ingest("b-2", batches[2]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-ingesting a checkpoint-covered batch id: err = %v, want ErrDuplicate", err)
	}
	if _, err := c2.Ingest(fmt.Sprintf("b-%d", N+1), batches[N+1]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-ingesting a replayed batch id: err = %v, want ErrDuplicate", err)
	}
}

// TestCheckpointGCCrashMidwayRecovers: a failure partway through segment
// deletion must not fail the checkpoint (the snapshot is durable) and must
// leave a WAL that reopens cleanly; the next startup's GC finishes the job.
func TestCheckpointGCCrashMidwayRecovers(t *testing.T) {
	t.Cleanup(faults.Reset)
	const n = 3000
	cfg := Config{Online: core.OnlineConfig{Seed: 92}}
	walDir := t.TempDir()
	cat, err := catalog.Open(t.TempDir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c1, w1 := newCheckpointSystem(t, n, walDir, cfg)
	rng := randx.New(78)
	for i := 0; i < 8; i++ {
		if _, err := c1.Ingest(fmt.Sprintf("b-%d", i), ingestRows(rng, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if segs := walSegIndexes(t, walDir); len(segs) < 3 {
		t.Fatalf("only %d segments; the test needs at least 2 removable ones", len(segs))
	}
	rebuildNow(t, c1)

	boom := errors.New("injected unlink failure")
	faults.SetErr(faults.PointWALGC, faults.FailNth(1, boom)) // first removal lands, second dies
	res, err := c1.SaveCheckpoint(cat)
	faults.Reset()
	if err != nil {
		t.Fatalf("SaveCheckpoint failed outright on a GC error: %v", err)
	}
	if res.Generation != 1 || res.Removed != 1 || !errors.Is(res.GCErr, boom) {
		t.Fatalf("SaveCheckpoint = gen %d removed %d gcErr %v, want gen 1, 1 removed, the injected failure", res.Generation, res.Removed, res.GCErr)
	}
	w1.Close()

	// The partial deletion removed the lowest segment first, so what's on
	// disk is a contiguous suffix and reopen must succeed.
	w2, err := OpenWALWith(walDir, WALOptions{SegmentBytes: ckSegBytes})
	if err != nil {
		t.Fatalf("reopen after interrupted GC: %v", err)
	}
	t.Cleanup(func() { w2.Close() })

	var snap *Snapshot
	if _, err := cat.LoadLatest(func(r io.Reader) error {
		s, derr := DecodeSnapshot(r)
		if derr == nil {
			snap = s
		}
		return derr
	}); err != nil {
		t.Fatal(err)
	}
	removed, err := w2.RemoveSegmentsBelow(snap.Checkpoint.Seg)
	if err != nil || removed < 1 {
		t.Fatalf("startup GC = (%d, %v), want it to finish the interrupted deletion", removed, err)
	}
	for _, idx := range walSegIndexes(t, walDir) {
		if idx < snap.Checkpoint.Seg {
			t.Fatalf("segment %d survives below checkpoint position %d after startup GC", idx, snap.Checkpoint.Seg)
		}
	}
}

// TestCheckpointVerifyFailureRetainsWAL: if the just-written snapshot does
// not read back and decode from disk, no WAL segment may be deleted — replay
// from the full log is the only copy of the data at that point.
func TestCheckpointVerifyFailureRetainsWAL(t *testing.T) {
	t.Cleanup(faults.Reset)
	const n = 3000
	walDir := t.TempDir()
	cat, err := catalog.Open(t.TempDir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c1, _ := newCheckpointSystem(t, n, walDir, Config{Online: core.OnlineConfig{Seed: 93}})
	rng := randx.New(79)
	for i := 0; i < 6; i++ {
		if _, err := c1.Ingest(fmt.Sprintf("b-%d", i), ingestRows(rng, 40)); err != nil {
			t.Fatal(err)
		}
	}
	rebuildNow(t, c1)
	before := walSegIndexes(t, walDir)

	// Corrupt the snapshot as it lands: SaveWithCheckpoint sees a clean
	// write, but the read-back verification must catch the damage.
	faults.SetData(faults.PointSnapshotChunk, func(i int, b []byte) {
		if i == 0 && len(b) > 0 {
			b[0] ^= 0x40
		}
	})
	res, err := c1.SaveCheckpoint(cat)
	faults.Reset()
	if err == nil {
		t.Fatal("SaveCheckpoint accepted a snapshot that does not verify on disk")
	}
	if res.Removed != 0 {
		t.Fatalf("deleted %d wal segments on the strength of an unverified snapshot", res.Removed)
	}
	after := walSegIndexes(t, walDir)
	if len(after) != len(before) {
		t.Fatalf("wal went from %v to %v despite the failed checkpoint", before, after)
	}
}

// TestCheckpointRefusedDuringRebuild: the cut must describe a paused,
// self-consistent instant; mid-rebuild the tail buffer makes that
// impossible.
func TestCheckpointRefusedDuringRebuild(t *testing.T) {
	const n = 2000
	cat, err := catalog.Open(t.TempDir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := newCheckpointSystem(t, n, t.TempDir(), Config{Online: core.OnlineConfig{Seed: 94}})
	if _, _, err := c.BeginRebuild(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveCheckpoint(cat); err == nil {
		t.Fatal("SaveCheckpoint succeeded during a rebuild")
	}
	c.AbortRebuild()
}

// TestWALTornSegmentCreationRepaired: a crash between creating the next
// segment file and making its magic durable leaves a husk shorter than the
// header. Open must repair it in place (it cannot hold a record) and keep
// appending into it.
func TestWALTornSegmentCreationRepaired(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Simulate the crash: the rotation's target exists with half a magic.
	husk := filepath.Join(dir, fmt.Sprintf("wal-%010d.seg", 1))
	if err := os.WriteFile(husk, []byte(segMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("open with a torn segment creation: %v", err)
	}
	if !w2.Torn() {
		t.Error("torn segment creation not reported as a torn tail")
	}
	if err := w2.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	payloads, torn := mustReplay(t, dir)
	if torn || len(payloads) != 2 || string(payloads[0]) != "one" || string(payloads[1]) != "two" {
		t.Fatalf("replay = %d records (torn=%v), want [one two] clean", len(payloads), torn)
	}
}

// TestWALProbeAppendsNoopAndReplaySkipsIt: the degraded-mode probe writes a
// no-op frame to prove the disk heals; replay must skip it without consuming
// a sequence number.
func TestWALProbeAppendsNoopAndReplaySkipsIt(t *testing.T) {
	t.Cleanup(faults.Reset)
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected enospc")
	faults.SetErr(faults.PointWALSync, faults.FailNth(0, boom))
	if err := w.Append([]byte("lost")); !errors.Is(err, boom) {
		t.Fatalf("faulted append err = %v, want %v", err, boom)
	}
	faults.Reset()
	if err := w.Probe(); err != nil {
		t.Fatalf("probe after the fault cleared: %v", err)
	}
	if err := w.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	payloads, torn := mustReplay(t, dir)
	if torn || len(payloads) != 3 {
		t.Fatalf("replay = %d records (torn=%v), want 3 clean", len(payloads), torn)
	}
	if !IsNoop(payloads[1]) {
		t.Fatalf("middle record %q is not the probe's no-op frame", payloads[1])
	}
	if string(payloads[0]) != "payload" || string(payloads[2]) != "after" {
		t.Fatalf("payloads = %q", payloads)
	}
}
