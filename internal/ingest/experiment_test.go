package ingest

import (
	"fmt"
	"math/rand"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
)

// TestAccuracyVsIngestVolume is the EXPERIMENTS.md accuracy-vs-ingest-volume
// experiment: stream rows whose distribution has shifted from the base (a new
// hot value plus new rare values) and measure, at growing appended volume,
// the per-group error of the online-maintained sample set against the exact
// answer — and against a "frozen" baseline that appends the base rows but
// never maintains the samples. Online maintenance must keep every group
// present (new rare values are inserted into the small group tables
// directly) with bounded error; the frozen baseline must visibly miss the
// new groups. Run with -v for the measured table.
func TestAccuracyVsIngestVolume(t *testing.T) {
	const n = 20000
	dir := t.TempDir()
	sys, c, _ := newIngestSystem(t, n, dir, Config{
		Online:     core.OnlineConfig{Seed: 7},
		DriftBound: -1, // measure drift, never trigger a rebuild
	})
	frozen, _ := sys.Prepared("smallgroup")

	q := &engine.Query{
		GroupBy: []string{"a"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}},
	}
	// Shifted stream: "ZZ" is a brand-new hot value, "N0".."N7" are brand-new
	// rare values; the base's own values make up the rest.
	rng := rand.New(rand.NewSource(99))
	shifted := func(count int) [][]engine.Value {
		rows := make([][]engine.Value, count)
		for i := range rows {
			var a string
			switch r := rng.Float64(); {
			case r < 0.60:
				a = "A0"
			case r < 0.75:
				a = "A1"
			case r < 0.90:
				a = "ZZ"
			default:
				a = "N" + string(rune('0'+rng.Intn(8)))
			}
			rows[i] = []engine.Value{
				engine.StringVal(a),
				engine.StringVal("B" + string(rune('0'+rng.Intn(4)))),
				engine.IntVal(int64(rng.Intn(31)) + 1),
			}
		}
		return rows
	}

	checkpoints := []int{1000, 2000, 5000, 10000} // 5%..50% of the base
	appended, batchNo := 0, 0
	t.Logf("%8s %12s %12s %12s %12s %8s", "appended", "RelErr", "missed%", "frozenRelErr", "frozenMiss%", "drift")
	for _, target := range checkpoints {
		for appended < target {
			batch := shifted(500)
			if _, err := c.Ingest(fmt.Sprintf("exp-%d", batchNo), batch); err != nil {
				t.Fatal(err)
			}
			appended += len(batch)
			batchNo++
		}
		exact, _, err := sys.Exact(q)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := sys.Approx("smallgroup", q)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := metrics.Compare(exact, ans.Result, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Frozen baseline: same appended base, pre-ingest sample set.
		fsys := core.NewSystem(sys.DB())
		fsys.AddPrepared("smallgroup", frozen)
		fans, err := fsys.Approx("smallgroup", q)
		if err != nil {
			t.Fatal(err)
		}
		facc, err := metrics.Compare(exact, fans.Result, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%7d%% %12.4f %12.1f %12.4f %12.1f %8.3f",
			appended*100/n, acc.RelErr, acc.PctGroups, facc.RelErr, facc.PctGroups, c.Drift())

		if acc.PctGroups != 0 {
			t.Errorf("at %d appended rows the maintained answer misses %.1f%% of groups, want 0", appended, acc.PctGroups)
		}
		if acc.RelErr > 0.25 {
			t.Errorf("at %d appended rows maintained RelErr = %.4f, want bounded (<= 0.25)", appended, acc.RelErr)
		}
	}
	// After a 50% volume shift, the frozen baseline must be visibly worse:
	// it cannot know the new groups exist.
	exact, _, err := sys.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	fsys := core.NewSystem(sys.DB())
	fsys.AddPrepared("smallgroup", frozen)
	fans, err := fsys.Approx("smallgroup", q)
	if err != nil {
		t.Fatal(err)
	}
	facc, err := metrics.Compare(exact, fans.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	if facc.Missed == 0 {
		t.Error("frozen baseline misses no groups — the shifted stream should have introduced new ones")
	}
}
