package model

import (
	"math"
	"testing"
)

func TestEvaluateRawMatchesHandComputation(t *testing.T) {
	// Uniform distribution (z=0), 1 grouping column, c=2: every group has
	// p=1/2. Eq 1: Eu = (1/n)·Σ (1-p)/(s·σ·p) = (1/2)·2·((0.5)/(s·0.5)) = 1/s.
	p := Params{G: 1, Sigma: 1, C: 2, Z: 0, N: 1e6, TotalBudget: 100, Gamma: 0}
	pt, err := EvaluateRaw(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.Eu-0.01) > 1e-12 {
		t.Errorf("Eu = %g, want 0.01", pt.Eu)
	}
	// With gamma=0 no groups are captured, so Esg = Eu.
	if math.Abs(pt.Esg-pt.Eu) > 1e-12 {
		t.Errorf("Esg = %g != Eu = %g at gamma 0", pt.Esg, pt.Eu)
	}
}

func TestEvaluateRawTwoColumns(t *testing.T) {
	// z=0, c=2, g=2: four groups each p=1/4.
	// Eu = (1/4)·4·(0.75/(s·0.25)) = 3/s.
	p := Params{G: 2, Sigma: 1, C: 2, Z: 0, N: 1e6, TotalBudget: 300, Gamma: 0}
	pt, err := EvaluateRaw(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.Eu-0.01) > 1e-12 {
		t.Errorf("Eu = %g, want 0.01", pt.Eu)
	}
}

func TestEvaluateRawSelectivityScales(t *testing.T) {
	base := Params{G: 1, Sigma: 1, C: 10, Z: 1.5, N: 1e6, TotalBudget: 1000, Gamma: 0}
	full, err := EvaluateRaw(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Sigma = 0.5
	half, err := EvaluateRaw(base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Eu-2*full.Eu) > 1e-9*full.Eu {
		t.Errorf("sigma=0.5 Eu = %g, want 2x %g", half.Eu, full.Eu)
	}
}

func TestGammaZeroEqualsUniform(t *testing.T) {
	// "Uniform random sampling is equivalent to small group sampling with a
	// sampling allocation ratio of zero."
	for _, z := range []float64{0.5, 1.0, 1.8, 2.5} {
		p := Params{G: 2, Sigma: 0.1, C: 50, Z: z, N: 1e5, TotalBudget: 2e4, Gamma: 0}
		pt, err := Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pt.Eu-pt.Esg) > 1e-12 {
			t.Errorf("z=%g: Eu %g != Esg %g at gamma 0", z, pt.Eu, pt.Esg)
		}
	}
}

func TestCapturedGroupsReduceError(t *testing.T) {
	// At moderate skew, gamma=0.5 must beat gamma=0 (Figure 3a's dip).
	base := Params{G: 2, Sigma: 0.1, C: 50, Z: 1.8, N: 1e5, TotalBudget: 2e4}
	pts, err := SweepGamma(base, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Esg >= pts[0].Esg {
		t.Errorf("Esg(0.5)=%g not below Esg(0)=%g", pts[1].Esg, pts[0].Esg)
	}
	// Uniform's error must be flat in gamma.
	if pts[0].Eu != pts[1].Eu {
		t.Errorf("Eu varies with gamma: %g vs %g", pts[0].Eu, pts[1].Eu)
	}
}

func TestSkewCrossover(t *testing.T) {
	// Figure 3(b): at moderate-to-high skew small group sampling is clearly
	// superior; at low skew the gap closes (uniform slightly preferable).
	base := Params{G: 3, Sigma: 0.3, C: 50, N: 1e5, TotalBudget: 2e4, Gamma: 0.5}
	pts, err := SweepZ(base, []float64{0.2, 1.8})
	if err != nil {
		t.Fatal(err)
	}
	lowGap := pts[0].Eu - pts[0].Esg
	highGap := pts[1].Eu - pts[1].Esg
	if highGap <= lowGap {
		t.Errorf("small-group advantage did not grow with skew: low %g high %g", lowGap, highGap)
	}
	if pts[1].Esg >= pts[1].Eu {
		t.Errorf("at z=1.8 Esg %g should beat Eu %g", pts[1].Esg, pts[1].Eu)
	}
}

func TestMetricEvaluateBounded(t *testing.T) {
	// Metric-semantics errors are probabilities of relative error mass, so
	// they stay within [0, 1].
	for _, z := range []float64{0, 1, 2, 3} {
		p := Params{G: 2, Sigma: 0.5, C: 50, Z: z, N: 1e5, TotalBudget: 1e3, Gamma: 0.5}
		pt, err := Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []float64{pt.Eu, pt.Esg} {
			if v < 0 || v > 1 {
				t.Errorf("z=%g: value %g out of [0,1]", z, v)
			}
		}
	}
}

func TestRawUnboundedAtHighSkew(t *testing.T) {
	p := Params{G: 3, Sigma: 0.3, C: 50, Z: 2.5, N: 1e8, TotalBudget: 1e6, Gamma: 0.5}
	pt, err := EvaluateRaw(p)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Eu <= 1 {
		t.Errorf("raw Eu = %g, expected to exceed 1 at extreme skew", pt.Eu)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{G: 0, Sigma: 1, C: 2, N: 10, TotalBudget: 5},
		{G: 1, Sigma: 0, C: 2, N: 10, TotalBudget: 5},
		{G: 1, Sigma: 2, C: 2, N: 10, TotalBudget: 5},
		{G: 1, Sigma: 1, C: 0, N: 10, TotalBudget: 5},
		{G: 1, Sigma: 1, C: 2, Z: -1, N: 10, TotalBudget: 5},
		{G: 1, Sigma: 1, C: 2, N: 0, TotalBudget: 5},
		{G: 1, Sigma: 1, C: 2, N: 10, TotalBudget: 0},
		{G: 1, Sigma: 1, C: 2, N: 10, TotalBudget: 20},
		{G: 1, Sigma: 1, C: 2, N: 10, TotalBudget: 5, Gamma: -1},
	}
	for i, p := range bad {
		if _, err := Evaluate(p); err == nil {
			t.Errorf("params %d not rejected: %+v", i, p)
		}
	}
}

func TestSweepsPropagateErrors(t *testing.T) {
	if _, err := SweepGamma(Params{}, []float64{0}); err == nil {
		t.Error("SweepGamma did not propagate validation error")
	}
	if _, err := SweepZ(Params{}, []float64{0}); err == nil {
		t.Error("SweepZ did not propagate validation error")
	}
}
