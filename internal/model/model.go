// Package model evaluates the analytical error model of §4.4 (Theorem 4.1):
// the expected average squared relative error of uniform random sampling and
// of small group sampling on count queries over an idealised database whose
// attributes are i.i.d. truncated-Zipf.
//
// The model reproduces Figures 3(a) and 3(b). Group probabilities are the
// products of per-attribute marginals; a group escapes the small group tables
// (and therefore contributes estimation error) exactly when every one of its
// attribute values is in the common set L(C). Following the fair-comparison
// convention of §4.4/§5.3.1, both methods get the same runtime sample budget:
// if small group sampling uses an overall sample of s0 rows and g small group
// tables of γ·s0 rows each, uniform sampling gets s = s0·(1+γ·g) rows.
package model

import (
	"fmt"
	"math"

	"dynsample/internal/randx"
)

// Params describes one model evaluation point.
//
// Both methods share the same runtime budget of TotalBudget sample rows
// (§4.4: "we allow each system to use the same amount of sample space per
// query at runtime"). Uniform sampling spends it all on one sample; small
// group sampling splits it into an overall sample of s0 = TotalBudget/(1+γ·G)
// rows plus G small group tables of γ·s0 rows each. Uniform's error is
// therefore independent of γ — the flat line of Figure 3(a).
type Params struct {
	// G is the number of grouping columns.
	G int
	// Sigma is the selection predicate selectivity σ (each tuple passes
	// independently with probability σ); 1 means no predicate.
	Sigma float64
	// C is the number of distinct values per attribute (the truncation c).
	C int
	// Z is the Zipf skew parameter.
	Z float64
	// N is the database size in rows (an abstract model quantity; nothing is
	// materialised).
	N float64
	// TotalBudget is s, the shared runtime sample budget in rows.
	TotalBudget float64
	// Gamma is the sampling allocation ratio γ = t/r.
	Gamma float64
}

func (p Params) validate() error {
	switch {
	case p.G < 1:
		return fmt.Errorf("model: G %d < 1", p.G)
	case p.Sigma <= 0 || p.Sigma > 1:
		return fmt.Errorf("model: sigma %g out of (0,1]", p.Sigma)
	case p.C < 1:
		return fmt.Errorf("model: C %d < 1", p.C)
	case p.Z < 0:
		return fmt.Errorf("model: Z %g < 0", p.Z)
	case p.N <= 0:
		return fmt.Errorf("model: N %g <= 0", p.N)
	case p.TotalBudget <= 0 || p.TotalBudget > p.N:
		return fmt.Errorf("model: total budget %g out of (0, N]", p.TotalBudget)
	case p.Gamma < 0:
		return fmt.Errorf("model: gamma %g < 0", p.Gamma)
	}
	return nil
}

// Point holds the two expected errors at one parameter setting.
type Point struct {
	// Eu is E[SqRelErr] for uniform sampling (Equation 1).
	Eu float64
	// Esg is E[SqRelErr] for small group sampling (Equation 2).
	Esg float64
}

// EvaluateRaw computes Equations 1 and 2 of Theorem 4.1 literally, by
// enumerating the C^G cross-product groups. The effective per-group sample
// mass is reduced by σ (a selection predicate thins the sample of every group
// equally in expectation).
//
// The raw equations treat every one of the C^G groups as present and let the
// per-group squared relative error (1−p)/(s·σ·p) grow without bound as p→0,
// so their absolute values are dominated by vanishing groups at high skew.
// Use Evaluate for figure-faithful curves; use EvaluateRaw to study the
// equations themselves.
func EvaluateRaw(p Params) (Point, error) {
	return evaluate(p, false)
}

// Evaluate computes the expected SqRelErr of both methods under the
// semantics of the empirical metric (Definitions 4.1–4.3) rather than the
// unbounded raw equations:
//
//   - A group whose variance-based squared relative error exceeds 1 is
//     effectively missed, and the metric scores an omitted group as exactly
//     100% error, so the per-group term is capped at 1.
//   - On a finite database a group only appears in the exact answer if at
//     least one of its tuples survives the selection predicate; groups are
//     weighted by that existence probability 1−exp(−N·σ·p). This models the
//     §5.3.1 observation that at very high skew "selection predicates often
//     filter those values out altogether, leaving predominantly large
//     groups", which lets uniform sampling partially recover.
func Evaluate(p Params) (Point, error) {
	return evaluate(p, true)
}

func evaluate(p Params, metric bool) (Point, error) {
	if err := p.validate(); err != nil {
		return Point{}, err
	}
	zipf := randx.NewZipf(p.Z, p.C)
	probs := zipf.Probs() // descending

	// Split the shared budget: s0 for the overall sample, γ·s0 per table.
	su := p.TotalBudget
	s0 := p.TotalBudget / (1 + p.Gamma*float64(p.G))

	// Common-value prefix length k: L(C) is the minimal prefix of the
	// frequency-sorted values with mass >= 1 - t, where t = γ·r = γ·s0/N.
	t := p.Gamma * s0 / p.N
	k := 0
	cum := 0.0
	for k < p.C && cum < 1-t {
		cum += probs[k]
		k++
	}

	// Enumerate groups with an odometer over G digits in [0, C).
	digits := make([]int, p.G)
	var eu, esg, totalWeight float64
	for {
		pi := 1.0
		allCommon := true
		for _, d := range digits {
			pi *= probs[d]
			if d >= k {
				allCommon = false
			}
		}
		weight := 1.0
		term := func(s float64) float64 {
			e := (1 - pi) / (s * p.Sigma * pi)
			if metric && e > 1 {
				e = 1
			}
			return e
		}
		if metric {
			weight = 1 - math.Exp(-p.N*p.Sigma*pi)
		}
		totalWeight += weight
		eu += weight * term(su)
		if allCommon {
			esg += weight * term(s0)
		}

		// Advance odometer.
		i := 0
		for ; i < p.G; i++ {
			digits[i]++
			if digits[i] < p.C {
				break
			}
			digits[i] = 0
		}
		if i == p.G {
			break
		}
	}
	if totalWeight == 0 {
		return Point{}, nil
	}
	return Point{Eu: eu / totalWeight, Esg: esg / totalWeight}, nil
}

// SweepGamma evaluates the model across allocation ratios (Figure 3a).
func SweepGamma(base Params, gammas []float64) ([]Point, error) {
	out := make([]Point, len(gammas))
	for i, g := range gammas {
		p := base
		p.Gamma = g
		pt, err := Evaluate(p)
		if err != nil {
			return nil, err
		}
		out[i] = pt
	}
	return out, nil
}

// SweepZ evaluates the model across skew parameters (Figure 3b).
func SweepZ(base Params, zs []float64) ([]Point, error) {
	out := make([]Point, len(zs))
	for i, z := range zs {
		p := base
		p.Z = z
		pt, err := Evaluate(p)
		if err != nil {
			return nil, err
		}
		out[i] = pt
	}
	return out, nil
}
