package model_test

import (
	"fmt"

	"dynsample/internal/model"
)

// ExampleEvaluate reproduces one point of Figure 3(b): at high skew the
// expected error of small group sampling is far below uniform sampling's.
func ExampleEvaluate() {
	pt, err := model.Evaluate(model.Params{
		G:           3,
		Sigma:       0.3,
		C:           50,
		Z:           2.5,
		N:           1e5,
		TotalBudget: 2e4,
		Gamma:       0.5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("uniform %.3f, small group %.3f\n", pt.Eu, pt.Esg)
	// Output:
	// uniform 0.858, small group 0.087
}
