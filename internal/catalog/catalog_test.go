package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dynsample/internal/faults"
)

func save(t *testing.T, c *Catalog, payload string) uint64 {
	t.Helper()
	gen, err := c.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func load(t *testing.T, c *Catalog) (string, LoadResult, error) {
	t.Helper()
	var got bytes.Buffer
	res, err := c.LoadLatest(func(r io.Reader) error {
		got.Reset()
		_, err := got.ReadFrom(r)
		return err
	})
	return got.String(), res, err
}

func TestCatalogSaveLoadGenerations(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g != 0 {
		t.Fatalf("fresh catalog generation = %d", g)
	}
	if _, _, err := load(t, c); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty catalog load err = %v, want ErrNoSnapshot", err)
	}
	for i := 1; i <= 3; i++ {
		if gen := save(t, c, fmt.Sprintf("payload-%d", i)); gen != uint64(i) {
			t.Fatalf("save %d returned generation %d", i, gen)
		}
	}
	got, res, err := load(t, c)
	if err != nil || got != "payload-3" || res.Generation != 3 {
		t.Fatalf("load = %q gen %d err %v", got, res.Generation, err)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("healthy catalog skipped %v", res.Skipped)
	}

	// Reopen resumes the counter from disk.
	c2, err := Open(c.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Generation() != 3 {
		t.Fatalf("reopened generation = %d, want 3", c2.Generation())
	}
	if gen := save(t, c2, "payload-4"); gen != 4 {
		t.Fatalf("post-reopen save generation = %d, want 4", gen)
	}
}

func TestCatalogRetentionPruning(t *testing.T) {
	c, err := Open(t.TempDir(), Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		save(t, c, fmt.Sprintf("p%d", i))
	}
	gens := c.Generations()
	if len(gens) != 2 || gens[0] != 5 || gens[1] != 4 {
		t.Fatalf("retained generations = %v, want [5 4]", gens)
	}
	m, err := c.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Current != 5 || len(m.Generations) != 2 {
		t.Fatalf("manifest = %+v", m)
	}
}

// TestCatalogRecoveryFallsBackToOlderGeneration corrupts the newest
// snapshots and checks startup recovery walks back to the first valid one,
// reporting what it skipped.
func TestCatalogRecoveryFallsBackToOlderGeneration(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		save(t, c, fmt.Sprintf("p%d", i))
	}
	// Flip one bit in gen 3, truncate gen 2.
	corrupt(t, c.Path(3), func(b []byte) []byte { b[len(b)/2] ^= 4; return b })
	corrupt(t, c.Path(2), func(b []byte) []byte { return b[:len(b)-3] })

	got, res, err := load(t, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != "p1" || res.Generation != 1 {
		t.Fatalf("recovered %q from gen %d, want p1 from gen 1", got, res.Generation)
	}
	if len(res.Skipped) != 2 || res.Skipped[0].Generation != 3 || res.Skipped[1].Generation != 2 {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	for _, s := range res.Skipped {
		if !errors.Is(s.Err, ErrCorrupt) {
			t.Errorf("gen %d skip error %v does not wrap ErrCorrupt", s.Generation, s.Err)
		}
	}
}

// TestCatalogRecoveryAllCorrupt: when every generation fails verification,
// LoadLatest reports ErrNoSnapshot so the caller rebuilds from scratch.
func TestCatalogRecoveryAllCorrupt(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "p1")
	save(t, c, "p2")
	for _, g := range c.Generations() {
		corrupt(t, c.Path(g), func(b []byte) []byte { b[9] ^= 1; return b })
	}
	_, res, err := load(t, c)
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if len(res.Skipped) != 2 {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	// Self-heal: a fresh save starts a new generation and load works again.
	if gen := save(t, c, "rebuilt"); gen != 3 {
		t.Fatalf("rebuild saved generation %d, want 3", gen)
	}
	got, resAfter, err := load(t, c)
	if err != nil || got != "rebuilt" || resAfter.Generation != 3 {
		t.Fatalf("after rebuild: %q gen %d err %v", got, resAfter.Generation, err)
	}
}

// TestCatalogCrashMidSaveKeepsOldGeneration simulates dying partway through
// a save (injected write failure): the new generation must not appear and
// the previous one stays loadable.
func TestCatalogCrashMidSaveKeepsOldGeneration(t *testing.T) {
	t.Cleanup(faults.Reset)
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "stable")

	boom := errors.New("injected short write")
	faults.SetErr(faults.PointSnapshotWrite, faults.FailNth(1, boom))
	_, err = c.Save(func(w io.Writer) error {
		_, werr := w.Write(bytes.Repeat([]byte("x"), 3*chunkSize))
		return werr
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Save error = %v, want %v", err, boom)
	}
	faults.Reset()

	if g := c.Generation(); g != 1 {
		t.Fatalf("generation advanced to %d after failed save", g)
	}
	assertNoTempFiles(t, c.Dir())
	got, res, err := load(t, c)
	if err != nil || got != "stable" || res.Generation != 1 {
		t.Fatalf("load after failed save: %q gen %d err %v", got, res.Generation, err)
	}
}

// TestCatalogFsyncFailureAborts: an fsync error must abort the commit — the
// data may not be durable, so renaming it into place would be a lie.
func TestCatalogFsyncFailureAborts(t *testing.T) {
	t.Cleanup(faults.Reset)
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "stable")
	boom := errors.New("injected fsync failure")
	faults.SetErr(faults.PointSnapshotSync, faults.FailNth(0, boom))
	if _, err := c.Save(func(w io.Writer) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("Save error = %v, want %v", err, boom)
	}
	faults.Reset()
	if g := c.Generation(); g != 1 {
		t.Fatalf("generation advanced to %d after fsync failure", g)
	}
	assertNoTempFiles(t, c.Dir())
}

// TestCatalogOpenSweepsTempFiles: leftover temp files from a crashed writer
// are removed and never mistaken for snapshots.
func TestCatalogOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "p1")
	stray := filepath.Join(dir, tmpPrefix+"gen-0000000002.snap-123")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray temp file survived Open: %v", err)
	}
	if c2.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", c2.Generation())
	}
}

// TestCatalogConcurrentSaveLoad exercises Save racing LoadLatest under
// -race: readers always see a complete committed generation.
func TestCatalogConcurrentSaveLoad(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "seed")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := fmt.Sprintf("gen-payload-%d", i)
			if _, err := c.Save(func(w io.Writer) error {
				_, werr := io.WriteString(w, payload)
				return werr
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		got, _, err := load(t, c)
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		if got != "seed" && !strings.HasPrefix(got, "gen-payload-") {
			t.Fatalf("load %d saw torn payload %q", i, got)
		}
	}
	close(stop)
	wg.Wait()
}

func corrupt(t *testing.T, path string, mangle func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mangle(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestCatalogManifestFailureRecoversAndSelfHeals: Save's contract when the
// snapshot committed but the manifest update failed is "generation N saved
// but manifest update failed" with the new generation number. The manifest is
// advisory, so (a) a restart must still recover the new generation by
// scanning the directory, and (b) the next successful save must rewrite the
// manifest to include it.
func TestCatalogManifestFailureRecoversAndSelfHeals(t *testing.T) {
	t.Cleanup(faults.Reset)
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "p1")

	boom := errors.New("injected manifest write failure")
	faults.SetErr(faults.PointManifestWrite, faults.FailNth(0, boom))
	gen, err := c.SaveWithCheckpoint(func(w io.Writer) error {
		_, werr := io.WriteString(w, "p2")
		return werr
	}, &CheckpointInfo{DataGeneration: 7, WALSegment: 3, WALOffset: 99})
	if gen != 2 || !errors.Is(err, boom) {
		t.Fatalf("SaveWithCheckpoint = (%d, %v), want generation 2 and the injected failure", gen, err)
	}
	faults.Reset()
	if m, merr := c.ReadManifest(); merr == nil && m.Current != 1 {
		t.Fatalf("manifest current = %d after a failed manifest write, want 1", m.Current)
	}

	// Restart: recovery scans the directory, not the stale manifest — the
	// generation whose manifest update was lost must still be found.
	c2, err := Open(c.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := load(t, c2)
	if err != nil || got != "p2" || res.Generation != 2 {
		t.Fatalf("recovery after lost manifest update: %q gen %d err %v, want p2 gen 2", got, res.Generation, err)
	}

	// Self-heal: the next successful save rewrites the manifest with every
	// retained generation, including the one whose update was lost.
	save(t, c2, "p3")
	m, err := c2.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Current != 3 {
		t.Fatalf("manifest current = %d after self-heal, want 3", m.Current)
	}
	seen := false
	for _, e := range m.Generations {
		if e.Generation == 2 {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("self-healed manifest omits generation 2: %+v", m.Generations)
	}
}

// TestCatalogManifestCarriesCheckpoint: SaveWithCheckpoint records the WAL
// position in the manifest entry, and a reopened catalog keeps advertising it
// on subsequent manifest rewrites.
func TestCatalogManifestCarriesCheckpoint(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := CheckpointInfo{DataGeneration: 12, WALSegment: 4, WALOffset: 4096}
	gen, err := c.SaveWithCheckpoint(func(w io.Writer) error {
		_, werr := io.WriteString(w, "ck")
		return werr
	}, &want)
	if err != nil || gen != 1 {
		t.Fatalf("SaveWithCheckpoint = (%d, %v)", gen, err)
	}
	checkEntry := func(m Manifest) {
		t.Helper()
		for _, e := range m.Generations {
			if e.Generation == 1 {
				if e.Checkpoint == nil || *e.Checkpoint != want {
					t.Fatalf("generation 1 checkpoint = %+v, want %+v", e.Checkpoint, want)
				}
				return
			}
		}
		t.Fatalf("generation 1 missing from manifest: %+v", m.Generations)
	}
	m, err := c.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	checkEntry(m)

	// Reopen seeds checkpoint info from the manifest, so a later save still
	// advertises generation 1's position.
	c2, err := Open(c.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c2, "plain")
	m, err = c2.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	checkEntry(m)
}

// TestCatalogPruneFailureDoesNotFailSave: retention pruning is best-effort —
// an un-removable old snapshot must not fail the save that triggered it, and
// the orphan must not confuse later recovery.
func TestCatalogPruneFailureDoesNotFailSave(t *testing.T) {
	c, err := Open(t.TempDir(), Options{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	save(t, c, "p1")
	// Make generation 1 un-removable with plain os.Remove: swap the snapshot
	// file for a non-empty directory.
	p1 := c.Path(1)
	if err := os.Remove(p1); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(p1, "pin"), 0o755); err != nil {
		t.Fatal(err)
	}
	if gen := save(t, c, "p2"); gen != 2 { // save() fails the test on error
		t.Fatalf("save returned generation %d, want 2", gen)
	}
	if _, err := os.Stat(p1); err != nil {
		t.Fatalf("orphaned generation unexpectedly gone: %v", err)
	}
	got, res, err := load(t, c)
	if err != nil || got != "p2" || res.Generation != 2 {
		t.Fatalf("load after failed prune: %q gen %d err %v", got, res.Generation, err)
	}
}
