package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"dynsample/internal/faults"
)

// encodeSnapshot writes payload bytes through WriteSnapshot into memory.
func encodeSnapshot(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := WriteSnapshot(&buf, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeSnapshot reads a snapshot fully, returning the payload it carried.
func decodeSnapshot(enc []byte) ([]byte, error) {
	var got []byte
	err := ReadSnapshot(bytes.NewReader(enc), func(r io.Reader) error {
		var err error
		got, err = io.ReadAll(r)
		return err
	})
	return got, err
}

// testPayload is patterned (not constant) so corruption anywhere lands on
// meaningful bytes, and sized to span multiple chunks plus a partial one.
func testPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + i>>8)
	}
	return p
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, chunkSize, chunkSize + 1, 3*chunkSize + 777} {
		payload := testPayload(n)
		enc := encodeSnapshot(t, payload)
		got, err := decodeSnapshot(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
	}
}

func TestSnapshotPartialDecodeStillVerifiesTail(t *testing.T) {
	// A decoder that reads only a prefix must not mask corruption later in
	// the file: ReadSnapshot drains and verifies the trailer regardless.
	payload := testPayload(2*chunkSize + 100)
	enc := encodeSnapshot(t, payload)
	enc[len(enc)-30] ^= 0x10 // corrupt near the tail
	err := ReadSnapshot(bytes.NewReader(enc), func(r io.Reader) error {
		_, err := io.ReadFull(r, make([]byte, 10))
		return err
	})
	if err == nil {
		t.Fatal("corruption behind a partial decode went undetected")
	}
}

// TestSnapshotTruncationAnyOffset proves the acceptance criterion: a
// snapshot truncated at ANY byte offset is rejected with an error, never
// decoded as a shorter-but-plausible payload.
func TestSnapshotTruncationAnyOffset(t *testing.T) {
	payload := testPayload(chunkSize + 257) // two chunks, one partial
	enc := encodeSnapshot(t, payload)
	for cut := 0; cut < len(enc); cut++ {
		got, err := decodeSnapshot(enc[:cut])
		if err == nil {
			t.Fatalf("truncation at offset %d/%d accepted (decoded %d bytes)", cut, len(enc), len(got))
		}
	}
}

// TestSnapshotBitFlipAnyBit proves the other half of the criterion: any
// single flipped bit anywhere in the file is detected.
func TestSnapshotBitFlipAnyBit(t *testing.T) {
	payload := testPayload(300) // small enough to try all 8 flips per byte
	enc := encodeSnapshot(t, payload)
	mut := make([]byte, len(enc))
	for off := 0; off < len(enc); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, enc)
			mut[off] ^= 1 << bit
			got, err := decodeSnapshot(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted (decoded %d bytes)", off, bit, len(got))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d: error %v does not wrap ErrCorrupt", off, bit, err)
			}
		}
	}
}

// TestSnapshotBitFlipSampledLarge extends bit-flip coverage across a
// multi-chunk snapshot: every byte of the structural tail (end frame +
// trailer) plus a prime-strided sample of the chunked body, one flipped bit
// per sampled position.
func TestSnapshotBitFlipSampledLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled large-file corruption scan")
	}
	payload := testPayload(2*chunkSize + 100)
	enc := encodeSnapshot(t, payload)
	tail := len(enc) - 64 // covers end frame and trailer exhaustively
	var offsets []int
	for off := 0; off < tail; off += 131 {
		offsets = append(offsets, off)
	}
	for off := tail; off < len(enc); off++ {
		offsets = append(offsets, off)
	}
	mut := make([]byte, len(enc))
	for _, off := range offsets {
		copy(mut, enc)
		mut[off] ^= 1 << (off % 8)
		if _, err := decodeSnapshot(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", off)
		}
	}
}

func TestSnapshotTrailingGarbageRejected(t *testing.T) {
	enc := encodeSnapshot(t, testPayload(64))
	enc = append(enc, 0xAB)
	if _, err := decodeSnapshot(enc); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestSnapshotWriteFaultInjection(t *testing.T) {
	t.Cleanup(faults.Reset)
	boom := errors.New("disk full")
	faults.SetErr(faults.PointSnapshotWrite, faults.FailNth(1, boom))
	var buf bytes.Buffer
	err := WriteSnapshot(&buf, func(w io.Writer) error {
		_, err := w.Write(testPayload(3 * chunkSize))
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteSnapshot error = %v, want %v", err, boom)
	}
	// Whatever prefix made it out must itself be rejected on read — a
	// crashed writer cannot leave a loadable-looking file.
	if _, derr := decodeSnapshot(buf.Bytes()); derr == nil {
		t.Fatal("partial write decoded cleanly")
	}
}

func TestSnapshotReadFaultInjection(t *testing.T) {
	t.Cleanup(faults.Reset)
	enc := encodeSnapshot(t, testPayload(3*chunkSize))
	boom := errors.New("read error")
	faults.SetErr(faults.PointSnapshotRead, faults.FailNth(2, boom))
	if _, err := decodeSnapshot(enc); !errors.Is(err, boom) {
		t.Fatalf("decode error = %v, want %v", err, boom)
	}
	faults.Reset()
	if _, err := decodeSnapshot(enc); err != nil {
		t.Fatalf("decode after Reset: %v", err)
	}
}

func TestSnapshotChunkCorruptionHook(t *testing.T) {
	t.Cleanup(faults.Reset)
	faults.SetData(faults.PointSnapshotChunk, faults.FlipBit(1, 12))
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, func(w io.Writer) error {
		_, err := w.Write(testPayload(2*chunkSize + 5))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	faults.Reset()
	_, err := decodeSnapshot(buf.Bytes())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hook-planted corruption: err = %v, want ErrCorrupt", err)
	}
	if err == nil || len(err.Error()) == 0 {
		t.Fatal("expected a descriptive error")
	}
}

func TestSnapshotErrorsAreDescriptive(t *testing.T) {
	enc := encodeSnapshot(t, testPayload(128))
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"chunk checksum", func(b []byte) []byte { b[len(snapshotMagic)+9] ^= 1; return b }},
		{"trailer checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
	}
	for _, c := range cases {
		mut := c.mangle(append([]byte(nil), enc...))
		_, err := decodeSnapshot(mut)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if msg := err.Error(); len(msg) < len("catalog:") {
			t.Fatalf("%s: error %q not descriptive", c.name, msg)
		} else {
			t.Logf("%s → %v", c.name, fmt.Errorf("%w", err))
		}
	}
}
