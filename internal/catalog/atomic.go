package catalog

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dynsample/internal/faults"
)

// tmpPrefix marks in-progress writes. Files with this prefix are never
// considered snapshots; Open sweeps leftovers from crashed writers.
const tmpPrefix = ".tmp-"

// WriteFileAtomic writes a file crash-safely: the content goes to a
// temporary file in the target's directory, is fsynced, and is renamed over
// the final path only after the data is durable; the directory is then
// fsynced so the rename itself survives a crash. Every error — including
// the Close and Sync failures a plain os.Create sequence tends to ignore —
// aborts the write, removes the temporary file, and leaves any previous
// file at path untouched. A crash at any point leaves either the old
// complete file or the new complete file, never a torn mix.
//
// Fault point: faults.PointSnapshotSync (ErrHook) injects an fsync failure.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("catalog: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = faults.FireErr(faults.PointSnapshotSync, 0); err != nil {
		return fmt.Errorf("catalog: fsync %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("catalog: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("catalog: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("catalog: committing %s: %w", path, err)
	}
	// Fsync the directory so the rename is durable. Failure here is
	// reported — the data might not survive a power cut — but the rename
	// already happened, so nothing is removed.
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		cerr := d.Close()
		if serr != nil {
			return fmt.Errorf("catalog: fsync dir %s: %w", dir, serr)
		}
		if cerr != nil {
			return fmt.Errorf("catalog: close dir %s: %w", dir, cerr)
		}
	}
	return nil
}
