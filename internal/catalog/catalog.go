package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynsample/internal/faults"
	"dynsample/internal/obs"
)

// Catalog instrumentation: durability operations are rare (one per rebuild
// or startup), so counting them costs nothing and makes snapshot rot
// visible on /metrics long before an operator reads the logs.
var (
	obsSaves = obs.Default().CounterVec("aqp_catalog_saves_total",
		"Snapshot generations saved, by status.", "status")
	obsLoads = obs.Default().CounterVec("aqp_catalog_snapshot_loads_total",
		"Snapshot load attempts during recovery, by status (a skipped "+
			"generation counts one error).", "status")
)

const (
	manifestName = "MANIFEST"
	snapPrefix   = "gen-"
	snapSuffix   = ".snap"
	// DefaultRetain is how many snapshot generations Save keeps when
	// Options.Retain is zero. More than one, so a generation that passes its
	// write-time checksums but rots on disk later still has fallbacks.
	DefaultRetain = 3
)

// ErrNoSnapshot is returned by LoadLatest when the catalog holds no
// loadable snapshot — the directory is empty or every generation failed
// verification. Callers self-heal by rebuilding from the base data and
// saving a fresh generation.
var ErrNoSnapshot = errors.New("catalog: no valid snapshot")

// Options configures Open.
type Options struct {
	// Retain is how many newest generations Save keeps on disk; older
	// snapshots are pruned after each successful save. Zero means
	// DefaultRetain; negative disables pruning.
	Retain int
}

// Catalog manages a directory of snapshot generations. Save is serialised
// internally; LoadLatest and the accessors are safe to call concurrently
// with Save.
type Catalog struct {
	dir    string
	retain int

	mu  sync.Mutex    // serialises Save (and manifest/prune bookkeeping)
	gen atomic.Uint64 // newest committed generation, 0 = none

	// ckpts carries each retained generation's checkpoint info into manifest
	// rewrites. Seeded from the existing manifest at Open (best-effort — the
	// manifest is advisory) and updated by SaveWithCheckpoint. Guarded by mu.
	ckpts map[uint64]*CheckpointInfo

	pruneLogged bool // one log line per process for failing prunes
}

// Manifest is the advisory metadata Save maintains next to the snapshots.
// Recovery never trusts it — LoadLatest scans the directory and verifies
// checksums — but it gives operators and tooling a cheap view of what the
// catalog holds.
type Manifest struct {
	Current     uint64          `json:"current"`
	UpdatedAt   time.Time       `json:"updatedAt"`
	Generations []ManifestEntry `json:"generations"`
}

// ManifestEntry describes one retained snapshot generation.
type ManifestEntry struct {
	Generation uint64    `json:"generation"`
	File       string    `json:"file"`
	Bytes      int64     `json:"bytes"`
	SavedAt    time.Time `json:"savedAt"`
	// Checkpoint is the WAL position the snapshot covers, when the saver
	// recorded one (SaveWithCheckpoint). Advisory, like the rest of the
	// manifest: recovery reads the authoritative copy embedded in the
	// snapshot itself.
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`
}

// CheckpointInfo is the WAL position a snapshot generation covers: everything
// at or before (WALSegment, WALOffset) — equivalently, the first
// DataGeneration ingest batches — is reflected in the snapshot, so WAL
// segments strictly below WALSegment are deletable once the save commits.
type CheckpointInfo struct {
	DataGeneration uint64 `json:"dataGeneration"`
	WALSegment     uint64 `json:"walSegment"`
	WALOffset      int64  `json:"walOffset"`
}

// Open creates (if needed) and scans a catalog directory, resuming the
// generation counter from the newest snapshot present. Leftover temporary
// files from crashed writers are removed.
func Open(dir string, opts Options) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: creating %s: %w", dir, err)
	}
	c := &Catalog{dir: dir, retain: opts.Retain}
	if c.retain == 0 {
		c.retain = DefaultRetain
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: reading %s: %w", dir, err)
	}
	var newest uint64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if g, ok := parseGen(e.Name()); ok && g > newest {
			newest = g
		}
	}
	c.gen.Store(newest)
	c.ckpts = make(map[uint64]*CheckpointInfo)
	if m, err := c.ReadManifest(); err == nil {
		for _, e := range m.Generations {
			if e.Checkpoint != nil {
				c.ckpts[e.Generation] = e.Checkpoint
			}
		}
	}
	return c, nil
}

// Dir returns the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

// Generation returns the newest committed generation number (0 if none).
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Path returns the snapshot file path for a generation.
func (c *Catalog) Path(gen uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s%010d%s", snapPrefix, gen, snapSuffix))
}

// Generations lists the generation numbers present on disk, newest first.
// Presence does not imply validity; LoadLatest verifies.
func (c *Catalog) Generations() []uint64 {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		if g, ok := parseGen(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens
}

// Save writes the payload as the next snapshot generation: crash-safe
// (WriteFileAtomic) and self-verifying (WriteSnapshot). On success it
// advances the generation counter, rewrites the manifest, and prunes
// generations beyond the retention limit. On failure the catalog is
// unchanged — the previous generation remains current and loadable.
func (c *Catalog) Save(payload func(io.Writer) error) (uint64, error) {
	return c.SaveWithCheckpoint(payload, nil)
}

// SaveWithCheckpoint is Save, additionally recording the WAL position the
// snapshot covers in the manifest entry for the new generation. ck may be
// nil (plain Save).
func (c *Catalog) SaveWithCheckpoint(payload func(io.Writer) error, ck *CheckpointInfo) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.gen.Load() + 1
	path := c.Path(next)
	err := WriteFileAtomic(path, func(w io.Writer) error {
		return WriteSnapshot(w, payload)
	})
	if err != nil {
		obsSaves.With("error").Inc()
		return 0, fmt.Errorf("catalog: saving generation %d: %w", next, err)
	}
	obsSaves.With("ok").Inc()
	c.gen.Store(next)
	if ck != nil {
		c.ckpts[next] = ck
	}
	c.prune()
	if merr := c.writeManifest(); merr != nil {
		// The snapshot itself is durable; a stale manifest only degrades
		// operator visibility, and recovery never reads it.
		return next, fmt.Errorf("catalog: generation %d saved but manifest update failed: %w", next, merr)
	}
	return next, nil
}

// SkippedSnapshot records one generation LoadLatest could not use and why.
type SkippedSnapshot struct {
	Generation uint64
	Path       string
	Err        error
}

// LoadResult reports which generation LoadLatest loaded and which newer
// generations it had to skip as corrupt or unreadable.
type LoadResult struct {
	Generation uint64
	Skipped    []SkippedSnapshot
}

// LoadLatest walks the on-disk generations newest→oldest and decodes the
// first one that fully verifies, returning which generation loaded and what
// was skipped on the way. decode runs once per attempt and must produce a
// fresh value each time; its result is only valid when LoadLatest returns a
// nil error (see ReadSnapshot). When nothing loads it returns ErrNoSnapshot
// (wrapped, with the per-generation failures in LoadResult.Skipped) and the
// caller is expected to rebuild from scratch.
func (c *Catalog) LoadLatest(decode func(io.Reader) error) (LoadResult, error) {
	var res LoadResult
	for _, gen := range c.Generations() {
		path := c.Path(gen)
		err := readSnapshotFile(path, decode)
		if err == nil {
			obsLoads.With("ok").Inc()
			res.Generation = gen
			return res, nil
		}
		obsLoads.With("error").Inc()
		res.Skipped = append(res.Skipped, SkippedSnapshot{Generation: gen, Path: path, Err: err})
	}
	if len(res.Skipped) == 0 {
		return res, fmt.Errorf("%w in %s", ErrNoSnapshot, c.dir)
	}
	return res, fmt.Errorf("%w in %s: all %d generation(s) failed verification (newest: %v)",
		ErrNoSnapshot, c.dir, len(res.Skipped), res.Skipped[0].Err)
}

func readSnapshotFile(path string, decode func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ReadSnapshot(f, decode)
}

// prune removes generations beyond the retention limit (newest first is
// kept). Called with mu held after a successful save. A failed removal is
// counted in the snapshot error metric and logged once per process: the
// orphaned generation is harmless for correctness (recovery verifies
// checksums) but eats disk until an operator notices.
func (c *Catalog) prune() {
	if c.retain < 0 {
		return
	}
	gens := c.Generations()
	for _, g := range gens[min(c.retain, len(gens)):] {
		if err := os.Remove(c.Path(g)); err != nil {
			obsSaves.With("prune_error").Inc()
			if !c.pruneLogged {
				c.pruneLogged = true
				log.Printf("catalog: pruning generation %d failed (orphaned snapshot will use disk until removed): %v", g, err)
			}
			continue
		}
		delete(c.ckpts, g)
	}
}

// writeManifest rewrites MANIFEST (atomically) to describe the retained
// generations. Called with mu held. Fault point: PointManifestWrite (ErrHook)
// simulates a crash in the gap between a committed save and the manifest
// update — the snapshot must still be recovered without it.
func (c *Catalog) writeManifest() error {
	if err := faults.FireErr(faults.PointManifestWrite, 0); err != nil {
		return err
	}
	m := Manifest{Current: c.gen.Load(), UpdatedAt: time.Now().UTC()}
	for _, g := range c.Generations() {
		e := ManifestEntry{Generation: g, File: filepath.Base(c.Path(g)), Checkpoint: c.ckpts[g]}
		if fi, err := os.Stat(c.Path(g)); err == nil {
			e.Bytes = fi.Size()
			e.SavedAt = fi.ModTime().UTC()
		}
		m.Generations = append(m.Generations, e)
	}
	return WriteFileAtomic(filepath.Join(c.dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// ReadManifest returns the advisory manifest, or an error if it is missing
// or unreadable (recovery does not depend on it).
func (c *Catalog) ReadManifest() (Manifest, error) {
	var m Manifest
	b, err := os.ReadFile(filepath.Join(c.dir, manifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("catalog: parsing manifest: %w", err)
	}
	return m, nil
}

// parseGen extracts the generation number from a snapshot file name.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
	if err != nil || g == 0 {
		return 0, false
	}
	return g, true
}
