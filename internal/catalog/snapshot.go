// Package catalog makes the pre-built sample family a durable, managed
// artifact instead of a one-shot file. It has three layers:
//
//   - snapshot.go: a self-verifying container format — a magic header, the
//     payload split into CRC32-checksummed chunks, and a checksummed trailer
//     recording the total length and whole-payload checksum. Truncation at
//     any byte offset and any flipped bit are detected with a precise error
//     instead of being decoded into garbage sample tables.
//   - atomic.go: crash-safe file replacement (temp file in the same
//     directory, fsync, atomic rename, directory fsync), so a crash mid-save
//     leaves either the old file or the new one, never a torn mix.
//   - catalog.go: a generation directory (gen-NNN.snap files under a
//     manifest) with retention pruning and newest→oldest startup recovery.
//
// BlinkDB and VerdictDB both treat the sample store as a rebuildable catalog
// managed by the system; this package gives the reproduction the same
// property. The container is payload-agnostic: core.SaveSmallGroup writes
// through it unchanged (see core.SaveSmallGroupSnapshot).
package catalog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"dynsample/internal/faults"
)

// Snapshot container constants. The chunk size bounds both the memory a
// reader commits before verifying a checksum and the blast radius of a
// corrupt length prefix: a reader never allocates more than maxChunkSize on
// the word of an unverified header.
const (
	snapshotMagic  = "DSSNAP01" // 8 bytes; the version is part of the magic
	trailerMagic   = "DSTR"
	chunkSize      = 64 << 10
	maxChunkSize   = 1 << 20
	endFrameMarker = 0 // length of the frame that terminates the chunk stream
)

// castagnoli is the CRC32 polynomial used throughout (hardware-accelerated
// on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt wraps every integrity failure detected while reading a
// snapshot, so callers can distinguish "this file is damaged" (try an older
// generation) from I/O errors.
var ErrCorrupt = errors.New("catalog: corrupt snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// WriteSnapshot writes one snapshot to w: the magic header, the bytes
// produced by payload split into checksummed chunks, an end-of-chunks
// marker, and the checksummed trailer. payload receives a buffered writer;
// it must not retain it.
//
// Fault points: faults.PointSnapshotWrite (ErrHook, per chunk) injects write
// failures; faults.PointSnapshotChunk (DataHook, per encoded frame) may flip
// bits to plant corruption for recovery tests.
func WriteSnapshot(w io.Writer, payload func(io.Writer) error) error {
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return fmt.Errorf("catalog: writing snapshot header: %w", err)
	}
	cw := &chunkWriter{w: w}
	if err := payload(cw); err != nil {
		return err
	}
	return cw.finish()
}

// chunkWriter buffers payload bytes and emits one framed chunk per
// chunkSize: [len u32][crc32 of (len||data) u32][data]. finish flushes the
// final partial chunk, the end marker, and the trailer.
type chunkWriter struct {
	w          io.Writer
	buf        []byte
	chunkIndex int
	totalLen   uint64
	payloadCRC uint32
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		take := chunkSize - len(cw.buf)
		if take > len(p) {
			take = len(p)
		}
		cw.buf = append(cw.buf, p[:take]...)
		p = p[take:]
		if len(cw.buf) == chunkSize {
			if err := cw.flushChunk(); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

func (cw *chunkWriter) flushChunk() error {
	if err := faults.FireErr(faults.PointSnapshotWrite, cw.chunkIndex); err != nil {
		return fmt.Errorf("catalog: writing snapshot chunk %d: %w", cw.chunkIndex, err)
	}
	frame := make([]byte, 8+len(cw.buf))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(cw.buf)))
	copy(frame[8:], cw.buf)
	crc := crc32.Update(0, castagnoli, frame[0:4])
	crc = crc32.Update(crc, castagnoli, cw.buf)
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	cw.totalLen += uint64(len(cw.buf))
	cw.payloadCRC = crc32.Update(cw.payloadCRC, castagnoli, cw.buf)
	faults.FireData(faults.PointSnapshotChunk, cw.chunkIndex, frame)
	cw.chunkIndex++
	cw.buf = cw.buf[:0]
	if _, err := cw.w.Write(frame); err != nil {
		return fmt.Errorf("catalog: writing snapshot chunk: %w", err)
	}
	return nil
}

// finish writes any buffered partial chunk, the zero-length end frame, and
// the trailer: [magic][payload len u64][payload crc u32][chunk count
// u32][crc u32 over the preceding trailer bytes].
func (cw *chunkWriter) finish() error {
	if len(cw.buf) > 0 {
		if err := cw.flushChunk(); err != nil {
			return err
		}
	}
	if err := faults.FireErr(faults.PointSnapshotWrite, cw.chunkIndex); err != nil {
		return fmt.Errorf("catalog: writing snapshot end frame: %w", err)
	}
	var end [8]byte
	binary.LittleEndian.PutUint32(end[0:4], endFrameMarker)
	binary.LittleEndian.PutUint32(end[4:8], crc32.Checksum(end[0:4], castagnoli))
	trailer := make([]byte, 0, len(trailerMagic)+8+4+4+4)
	trailer = append(trailer, trailerMagic...)
	trailer = binary.LittleEndian.AppendUint64(trailer, cw.totalLen)
	trailer = binary.LittleEndian.AppendUint32(trailer, cw.payloadCRC)
	trailer = binary.LittleEndian.AppendUint32(trailer, uint32(cw.chunkIndex))
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.Checksum(trailer, castagnoli))
	frame := append(end[:], trailer...)
	faults.FireData(faults.PointSnapshotChunk, cw.chunkIndex, frame)
	if _, err := cw.w.Write(frame); err != nil {
		return fmt.Errorf("catalog: writing snapshot trailer: %w", err)
	}
	return nil
}

// ReadSnapshot verifies and decodes one snapshot from r. decode reads the
// payload through a verifying reader: every byte it sees has already passed
// its chunk checksum, so a decoder can never consume corrupt data. After
// decode returns, any unread payload is drained and the end marker and
// trailer are verified — so a nil return means the entire file was intact,
// not merely the prefix the decoder happened to read. Integrity failures
// are reported as errors wrapping ErrCorrupt.
//
// decode may be invoked on a snapshot whose tail later fails verification;
// callers must discard its result unless ReadSnapshot returns nil.
func ReadSnapshot(r io.Reader, decode func(io.Reader) error) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return corruptf("reading header: %v", err)
	}
	if string(magic) != snapshotMagic {
		return corruptf("bad snapshot magic %q", magic)
	}
	cr := &chunkReader{r: br}
	if err := decode(cr); err != nil {
		return err
	}
	// Drain whatever payload the decoder left unread, then verify the
	// trailer against the running totals.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return err
	}
	return cr.verifyTrailer()
}

// chunkReader yields the payload of a chunked stream, verifying each
// chunk's checksum before handing out its bytes.
type chunkReader struct {
	r          *bufio.Reader
	chunk      []byte // verified bytes not yet consumed
	chunkIndex int
	totalLen   uint64
	payloadCRC uint32
	atEnd      bool // end frame seen
}

func (cr *chunkReader) Read(p []byte) (int, error) {
	for len(cr.chunk) == 0 {
		if cr.atEnd {
			return 0, io.EOF
		}
		if err := cr.nextChunk(); err != nil {
			return 0, err
		}
	}
	n := copy(p, cr.chunk)
	cr.chunk = cr.chunk[n:]
	return n, nil
}

func (cr *chunkReader) nextChunk() error {
	if err := faults.FireErr(faults.PointSnapshotRead, cr.chunkIndex); err != nil {
		return fmt.Errorf("catalog: reading snapshot chunk %d: %w", cr.chunkIndex, err)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(cr.r, hdr[:]); err != nil {
		return corruptf("chunk %d header: %v", cr.chunkIndex, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if length == endFrameMarker {
		if want := crc32.Checksum(hdr[0:4], castagnoli); crc != want {
			return corruptf("end frame checksum %08x, want %08x", crc, want)
		}
		cr.atEnd = true
		return nil
	}
	if length > maxChunkSize {
		return corruptf("chunk %d length %d exceeds %d", cr.chunkIndex, length, maxChunkSize)
	}
	data := make([]byte, length)
	if _, err := io.ReadFull(cr.r, data); err != nil {
		return corruptf("chunk %d body: %v", cr.chunkIndex, err)
	}
	want := crc32.Update(0, castagnoli, hdr[0:4])
	want = crc32.Update(want, castagnoli, data)
	if crc != want {
		return corruptf("chunk %d checksum %08x, want %08x", cr.chunkIndex, crc, want)
	}
	cr.chunk = data
	cr.chunkIndex++
	cr.totalLen += uint64(length)
	cr.payloadCRC = crc32.Update(cr.payloadCRC, castagnoli, data)
	return nil
}

// verifyTrailer checks the trailer against the running payload totals and
// requires clean EOF after it — trailing garbage means the file is not what
// the writer produced.
func (cr *chunkReader) verifyTrailer() error {
	if !cr.atEnd {
		// Drained to EOF without seeing the end frame: nextChunk already
		// errored, but guard against misuse.
		return corruptf("missing end frame")
	}
	tlen := len(trailerMagic) + 8 + 4 + 4 + 4
	trailer := make([]byte, tlen)
	if _, err := io.ReadFull(cr.r, trailer); err != nil {
		return corruptf("reading trailer: %v", err)
	}
	body, sum := trailer[:tlen-4], binary.LittleEndian.Uint32(trailer[tlen-4:])
	if want := crc32.Checksum(body, castagnoli); sum != want {
		return corruptf("trailer checksum %08x, want %08x", sum, want)
	}
	if string(body[:len(trailerMagic)]) != trailerMagic {
		return corruptf("bad trailer magic %q", body[:len(trailerMagic)])
	}
	gotLen := binary.LittleEndian.Uint64(body[len(trailerMagic):])
	gotCRC := binary.LittleEndian.Uint32(body[len(trailerMagic)+8:])
	gotChunks := binary.LittleEndian.Uint32(body[len(trailerMagic)+12:])
	if gotLen != cr.totalLen {
		return corruptf("payload length %d, trailer says %d", cr.totalLen, gotLen)
	}
	if gotCRC != cr.payloadCRC {
		return corruptf("payload checksum %08x, trailer says %08x", cr.payloadCRC, gotCRC)
	}
	if int(gotChunks) != cr.chunkIndex {
		return corruptf("%d chunks read, trailer says %d", cr.chunkIndex, gotChunks)
	}
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return corruptf("trailing bytes after trailer")
	}
	return nil
}
