// Package congress implements congressional sampling [Acharya, Gibbons,
// Poosala — SIGMOD 2000], the stratified-sampling baseline of §5.3.2.
//
// Basic congress stratifies the database on the cross-product of all
// candidate grouping columns and allocates the sample budget to each stratum
// as the normalised maximum of the "house" (proportional) and "senate"
// (equal-per-group) allocations. The full congress algorithm additionally
// maximises over every subset of the grouping columns; its running time is
// exponential in the number of columns — the paper could not run it on the
// 245-column SALES schema and neither strategy scales past a handful of
// columns, so Full guards its column count.
package congress

import (
	"fmt"
	"sort"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
)

// Variant selects between the basic and full congress allocations.
type Variant int

// Congress variants.
const (
	// Basic stratifies on the single finest grouping (all candidate columns
	// at once): "we implemented a more tractable version of the algorithm
	// called basic congress" (§5.3.2).
	Basic Variant = iota
	// Full maximises the per-stratum rate over every non-empty subset of
	// candidate columns plus the house. Exponential; requires few columns.
	Full
)

// MaxFullColumns bounds the candidate set for the Full variant (2^m subsets).
const MaxFullColumns = 12

// Config parameterises congressional sampling.
type Config struct {
	// Rate is the total expected sample size as a fraction of the database.
	Rate float64
	// Columns is the candidate grouping-column set T. Nil means every view
	// column with at most DistinctLimit distinct values.
	Columns []string
	// DistinctLimit drops high-cardinality columns from the default
	// candidate set; zero means core.DefaultDistinctLimit.
	DistinctLimit int
	// Variant selects Basic (default) or Full congress.
	Variant Variant
	// ConfidenceLevel is the nominal CI coverage; zero means 0.95.
	ConfidenceLevel float64
	// Label overrides the strategy name.
	Label string
	// Seed drives stratum-level sampling.
	Seed int64
}

// Strategy is the congressional sampling baseline.
type Strategy struct {
	cfg Config
}

// New returns the strategy.
func New(cfg Config) *Strategy { return &Strategy{cfg: cfg} }

// Name implements core.Strategy.
func (s *Strategy) Name() string {
	if s.cfg.Label != "" {
		return s.cfg.Label
	}
	if s.cfg.Variant == Full {
		return "congress-full"
	}
	return "congress-basic"
}

// Preprocess implements core.Strategy.
func (s *Strategy) Preprocess(db *engine.Database) (core.Prepared, error) {
	cfg := s.cfg
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("congress: rate %g out of (0,1]", cfg.Rate)
	}
	if db.NumRows() == 0 {
		return nil, fmt.Errorf("congress: database %q is empty", db.Name)
	}
	if cfg.DistinctLimit == 0 {
		cfg.DistinctLimit = core.DefaultDistinctLimit
	}
	cols, err := candidateColumns(db, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Variant == Full && len(cols) > MaxFullColumns {
		return nil, fmt.Errorf("congress: full congress over %d columns needs 2^%d groupings; limit is %d columns", len(cols), len(cols), MaxFullColumns)
	}

	n := db.NumRows()
	budget := cfg.Rate * float64(n)

	accs := make([]engine.ColumnAccessor, len(cols))
	for i, c := range cols {
		acc, err := db.Accessor(c)
		if err != nil {
			return nil, err
		}
		accs[i] = acc
	}

	// Stratify on the finest grouping (all candidate columns at once).
	strata := make(map[engine.GroupKey]int)
	rowStratum := make([]int32, n)
	var sizes []int64
	keyVals := make([]engine.Value, len(cols))
	for row := 0; row < n; row++ {
		for i, acc := range accs {
			keyVals[i] = acc.Value(row)
		}
		k := engine.EncodeKey(keyVals)
		id, ok := strata[k]
		if !ok {
			id = len(sizes)
			strata[k] = id
			sizes = append(sizes, 0)
		}
		rowStratum[row] = int32(id)
		sizes[id]++
	}

	var rates []float64
	if cfg.Variant == Basic {
		rates = sample.CongressAllocation(sizes, budget).Rates
	} else {
		rates, err = fullCongressRates(db, cols, rowStratum, sizes, budget)
		if err != nil {
			return nil, err
		}
	}

	// Draw a fixed-size uniform sample inside every stratum.
	rng := randx.New(cfg.Seed)
	byStratum := make([][]int, len(sizes))
	for row := 0; row < n; row++ {
		id := rowStratum[row]
		byStratum[id] = append(byStratum[id], row)
	}
	var rows []int
	var weights []float64
	for id, members := range byStratum {
		// Randomised rounding keeps the expected sample size equal to the
		// budget even when the allocation degenerates into a huge number of
		// tiny strata (the paper observed ~166,000 strata on SALES, where
		// basic congress "almost resembled a sample from a uniform
		// distribution", §5.3.2). A deterministic at-least-one-row floor
		// would silently blow the budget by |strata| rows.
		expect := rates[id] * float64(len(members))
		k := int(expect)
		if rng.Float64() < expect-float64(k) {
			k++
		}
		if k > len(members) {
			k = len(members)
		}
		if k == 0 {
			continue
		}
		w := float64(len(members)) / float64(k)
		for _, ix := range sample.FixedSize(rng, len(members), k) {
			rows = append(rows, members[ix])
			weights = append(weights, w)
		}
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rows[order[a]] < rows[order[b]] })
	sortedRows := make([]int, len(rows))
	sortedWeights := make([]float64, len(rows))
	for i, o := range order {
		sortedRows[i] = rows[o]
		sortedWeights[i] = weights[o]
	}

	tbl := db.Flatten("congress_sample", sortedRows, nil, sortedWeights)
	return &prepared{table: tbl, level: cfg.ConfidenceLevel, strataCount: len(sizes)}, nil
}

func candidateColumns(db *engine.Database, cfg Config) ([]string, error) {
	if cfg.Columns != nil {
		for _, c := range cfg.Columns {
			if !db.HasColumn(c) {
				return nil, fmt.Errorf("congress: unknown column %q", c)
			}
		}
		return cfg.Columns, nil
	}
	var cols []string
	for _, c := range db.Columns() {
		vcs, err := db.DistinctValues(c)
		if err != nil {
			return nil, err
		}
		if len(vcs) <= cfg.DistinctLimit {
			cols = append(cols, c)
		}
	}
	return cols, nil
}

// fullCongressRates computes, per finest-grouping stratum, the maximum over
// every non-empty column subset g of the senate rate for the g-group the
// stratum falls into, plus the house rate, rescaled to the budget.
func fullCongressRates(db *engine.Database, cols []string, rowStratum []int32, sizes []int64, budget float64) ([]float64, error) {
	n := db.NumRows()
	rates := sample.ProportionalAllocation(sizes, budget).Rates // house

	accs := make([]engine.ColumnAccessor, len(cols))
	for i, c := range cols {
		acc, err := db.Accessor(c)
		if err != nil {
			return nil, err
		}
		accs[i] = acc
	}

	// One representative row per stratum lets us map a stratum to its group
	// under any column subset.
	repr := make([]int, len(sizes))
	for i := range repr {
		repr[i] = -1
	}
	for row := 0; row < n; row++ {
		if repr[rowStratum[row]] == -1 {
			repr[rowStratum[row]] = row
		}
	}

	for subset := 1; subset < 1<<len(cols); subset++ {
		// Group sizes under this subset's grouping.
		groupSize := make(map[engine.GroupKey]int64)
		var keyVals []engine.Value
		keyOf := func(row int) engine.GroupKey {
			keyVals = keyVals[:0]
			for i := range cols {
				if subset&(1<<i) != 0 {
					keyVals = append(keyVals, accs[i].Value(row))
				}
			}
			return engine.EncodeKey(keyVals)
		}
		for row := 0; row < n; row++ {
			groupSize[keyOf(row)]++
		}
		share := budget / float64(len(groupSize)) // senate: equal per group
		for id, r := range repr {
			g := groupSize[keyOf(r)]
			if g == 0 {
				continue
			}
			rate := share / float64(g)
			if rate > 1 {
				rate = 1
			}
			if rate > rates[id] {
				rates[id] = rate
			}
		}
	}

	// Rescale so the expected sample size matches the budget.
	expected := 0.0
	for id, r := range rates {
		expected += r * float64(sizes[id])
	}
	if expected > 0 {
		scale := budget / expected
		for id := range rates {
			rates[id] *= scale
			if rates[id] > 1 {
				rates[id] = 1
			}
		}
	}
	return rates, nil
}

type prepared struct {
	table       *engine.Table
	level       float64
	strataCount int
}

// Answer implements core.Prepared.
func (p *prepared) Answer(q *engine.Query) (*core.Answer, error) {
	start := time.Now()
	plan := &core.RewritePlan{
		Query: q,
		Steps: []core.RewriteStep{core.StepFor(p.table, 1)},
	}
	res, rows, err := core.ExecutePlan(plan)
	if err != nil {
		return nil, err
	}
	return &core.Answer{
		Result:    res,
		Intervals: core.ConfidenceIntervals(res, p.level),
		RowsRead:  rows,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
	}, nil
}

// SampleRows implements core.Prepared.
func (p *prepared) SampleRows() int64 { return int64(p.table.NumRows()) }

// SampleBytes implements core.Prepared.
func (p *prepared) SampleBytes() int64 { return p.table.ApproxBytes() }

// StrataCount reports how many strata the allocation produced (§5.3.2 notes
// basic congress built ~166,000 tiny strata on the SALES schema).
func (p *prepared) StrataCount() int { return p.strataCount }
