package congress

import (
	"math"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// skewDB builds a table with a heavily skewed grouping column: value 0 holds
// ~97% of rows, values 1..9 share the rest.
func skewDB(n int) *engine.Database {
	g := engine.NewColumn("g", engine.Int)
	h := engine.NewColumn("h", engine.Int)
	fact := engine.NewTable("fact", g, h)
	rng := randx.New(5)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.97 {
			g.AppendInt(0)
		} else {
			g.AppendInt(int64(1 + rng.Intn(9)))
		}
		h.AppendInt(int64(rng.Intn(3)))
		fact.EndRow()
	}
	return engine.MustNewDatabase("skew", fact)
}

func TestBasicCongressCoversSmallGroups(t *testing.T) {
	db := skewDB(20000)
	p, err := New(Config{Rate: 0.02, Columns: []string{"g"}, Seed: 1}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	// The senate share guarantees every stratum gets sampled, so no group of
	// the single-column grouping should be missed.
	for _, k := range exact.Keys() {
		if ans.Result.Group(k) == nil {
			t.Errorf("group %v missed by basic congress", exact.Group(k).Key)
		}
	}
}

func TestWeightsReconstructTotal(t *testing.T) {
	db := skewDB(20000)
	p, err := New(Config{Rate: 0.02, Columns: []string{"g"}, Seed: 2}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	total := ans.Result.Group(engine.EncodeKey(nil)).Vals[0]
	if math.Abs(total-20000)/20000 > 0.05 {
		t.Errorf("weighted total %g, want ~20000", total)
	}
}

func TestPerStratumEstimatesExactForFullySampledStrata(t *testing.T) {
	db := skewDB(20000)
	p, err := New(Config{Rate: 0.02, Columns: []string{"g"}, Seed: 3}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny strata get rate 1 (capped) and are therefore exact.
	for _, k := range exact.Keys() {
		eg := exact.Group(k)
		if eg.Key[0].I == 0 {
			continue // the huge stratum is estimated
		}
		ag := ans.Result.Group(k)
		if ag == nil {
			t.Fatalf("missing group %v", eg.Key)
		}
		rel := math.Abs(eg.Vals[0]-ag.Vals[0]) / eg.Vals[0]
		if rel > 0.5 {
			t.Errorf("group %v: rel err %.2f unexpectedly large", eg.Key, rel)
		}
	}
}

func TestRateOneIsExact(t *testing.T) {
	db := skewDB(2000)
	p, err := New(Config{Rate: 1, Columns: []string{"g", "h"}, Seed: 4}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g", "h"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range exact.Keys() {
		eg, ag := exact.Group(k), ans.Result.Group(k)
		if ag == nil || math.Abs(eg.Vals[0]-ag.Vals[0]) > 1e-9 {
			t.Errorf("group %v: exact %g approx %+v", eg.Key, eg.Vals[0], ag)
		}
	}
}

func TestFullCongressGuard(t *testing.T) {
	db := skewDB(100)
	cols := make([]string, 0, MaxFullColumns+1)
	for i := 0; i <= MaxFullColumns; i++ {
		cols = append(cols, "g")
	}
	if _, err := New(Config{Rate: 0.1, Columns: cols, Variant: Full}).Preprocess(db); err == nil {
		t.Error("full congress over too many columns not rejected")
	}
}

func TestFullCongressRuns(t *testing.T) {
	db := skewDB(5000)
	p, err := New(Config{Rate: 0.05, Columns: []string{"g", "h"}, Variant: Full, Seed: 5}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range exact.Keys() {
		if ans.Result.Group(k) == nil {
			t.Errorf("full congress missed group %v", exact.Group(k).Key)
		}
	}
}

func TestCandidateColumnDefaults(t *testing.T) {
	// u has too many distinct values and must be excluded from the default
	// candidate set.
	g := engine.NewColumn("g", engine.Int)
	u := engine.NewColumn("u", engine.Int)
	fact := engine.NewTable("fact", g, u)
	for i := 0; i < 500; i++ {
		g.AppendInt(int64(i % 3))
		u.AppendInt(int64(i))
		fact.EndRow()
	}
	db := engine.MustNewDatabase("d", fact)
	cols, err := candidateColumns(db, Config{DistinctLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "g" {
		t.Errorf("candidates = %v, want [g]", cols)
	}
}

func TestConfigValidation(t *testing.T) {
	db := skewDB(100)
	if _, err := New(Config{Rate: 0}).Preprocess(db); err == nil {
		t.Error("rate 0 not rejected")
	}
	if _, err := New(Config{Rate: 0.1, Columns: []string{"nope"}}).Preprocess(db); err == nil {
		t.Error("unknown column not rejected")
	}
}

func TestNames(t *testing.T) {
	if got := New(Config{}).Name(); got != "congress-basic" {
		t.Errorf("Name = %q", got)
	}
	if got := New(Config{Variant: Full}).Name(); got != "congress-full" {
		t.Errorf("full Name = %q", got)
	}
	if got := New(Config{Label: "bc"}).Name(); got != "bc" {
		t.Errorf("labelled Name = %q", got)
	}
}

func TestStrataCount(t *testing.T) {
	db := skewDB(5000)
	p, err := New(Config{Rate: 0.05, Columns: []string{"g", "h"}, Seed: 6}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	// 10 g-values x 3 h-values = up to 30 strata.
	sc := p.(*prepared).StrataCount()
	if sc < 10 || sc > 30 {
		t.Errorf("strata count = %d, want within (10,30]", sc)
	}
}
