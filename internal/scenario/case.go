package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dynsample/internal/engine"
)

// A Case is the declarative check half of a scenario directory: which
// strategy configuration to build over the generated data, what query
// workload to replay against the live server, and the pass/fail gates the
// measured accuracy, throughput and resource figures must clear. It lives in
// <dir>/case.json next to the data spec in <dir>/spec.json.
type Case struct {
	// Name identifies the case; the verdict file is SCENARIO_<name>.json.
	// Empty means the directory base name.
	Name string `json:"name,omitempty"`
	// Description is a one-line human summary carried into the verdict.
	Description string `json:"description,omitempty"`
	// Strategy configures the small-group build under test.
	Strategy StrategySpec `json:"strategy"`
	// Workload is the internal/workload recipe replayed over HTTP.
	Workload WorkloadSpec `json:"workload"`
	// Bounds, when non-nil, sends every workload query as a bounded request
	// (error_bound/confidence), exercising the §4.4 planner; the verdict then
	// compares the planner's predicted error against the true error per query.
	Bounds *BoundsSpec `json:"bounds,omitempty"`
	// Gates are the pass/fail thresholds.
	Gates GateSpec `json:"gates"`
}

// StrategySpec configures the strategy build for one case.
type StrategySpec struct {
	// BaseRate is the overall sampling rate r, in (0, 1].
	BaseRate float64 `json:"base_rate"`
	// Seed drives sample construction.
	Seed int64 `json:"seed"`
	// Workers is the runtime scan parallelism; zero means sequential.
	Workers int `json:"workers,omitempty"`
}

// WorkloadSpec is the JSON shape of a workload.Config plus the query count.
type WorkloadSpec struct {
	// Queries is how many random queries the case replays.
	Queries int `json:"queries"`
	// Seed drives query generation.
	Seed int64 `json:"seed"`
	// GroupingColumns per query (the paper varies 1-4).
	GroupingColumns int `json:"grouping_columns"`
	// Predicates is the number of conjunctive selection predicates.
	Predicates int `json:"predicates,omitempty"`
	// MassSelectivity calibrates predicates by row mass (see
	// workload.Config.MassSelectivity).
	MassSelectivity bool `json:"mass_selectivity,omitempty"`
	// Aggregate is "count" or "sum".
	Aggregate string `json:"aggregate"`
	// Measures lists SUM-able columns; required for "sum".
	Measures []string `json:"measures,omitempty"`
	// MaxDistinct excludes near-unique columns; zero means the workload
	// package default (1000).
	MaxDistinct int `json:"max_distinct,omitempty"`
	// Columns restricts the candidate column pool; empty means all.
	Columns []string `json:"columns,omitempty"`
}

// BoundsSpec is the per-query bound sent with each workload query.
type BoundsSpec struct {
	// ErrorBound is the requested maximum mean per-group relative error, in
	// (0, 1).
	ErrorBound float64 `json:"error_bound"`
	// Confidence is the level the bound is stated at; zero means the server
	// default (0.95).
	Confidence float64 `json:"confidence,omitempty"`
}

// GateSpec declares the pass/fail thresholds. Zero-valued gates are skipped
// except MaxRelErr, which every case must declare — a scenario that asserts
// nothing about accuracy is not a check.
type GateSpec struct {
	// MaxRelErr is the ceiling on the mean true relative error (Definition
	// 4.2, measured against /v1/exact) averaged over the workload. Required.
	MaxRelErr float64 `json:"max_rel_err"`
	// MinQPS is the floor on approximate-query throughput over HTTP.
	MinQPS float64 `json:"min_qps,omitempty"`
	// MaxSampleMB is the ceiling on sample memory (Prepared.SampleBytes).
	MaxSampleMB float64 `json:"max_sample_mb,omitempty"`
	// MaxBuildMS is the ceiling on data generation + pre-processing time.
	MaxBuildMS int64 `json:"max_build_ms,omitempty"`
	// MaxViolationRate is the ceiling on the fraction of measured queries
	// whose true error exceeded the planner's predicted error — the bound
	// honesty gate. Nil skips it; a pointer so honest-by-luck cases can pin
	// it to exactly 0.
	MaxViolationRate *float64 `json:"max_violation_rate,omitempty"`
	// MinViolationRate is the floor on that same fraction. The correlated
	// cases use it to assert that the documented §4.4 independence failure
	// actually reproduces — a study case that silently stops violating its
	// predictions should fail loudly, because EXPERIMENTS.md documents the
	// violation.
	MinViolationRate *float64 `json:"min_violation_rate,omitempty"`
}

// aggKind maps the JSON aggregate name to the engine kind.
func (w *WorkloadSpec) aggKind() (engine.AggKind, error) {
	switch w.Aggregate {
	case "count":
		return engine.Count, nil
	case "sum":
		return engine.Sum, nil
	default:
		return 0, fmt.Errorf("scenario: unknown aggregate %q (want \"count\" or \"sum\")", w.Aggregate)
	}
}

// ParseCase decodes a case declaration, rejecting unknown fields so typos in
// gate names fail loudly instead of silently gating nothing.
func ParseCase(r io.Reader) (*Case, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Case
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("scenario: parse case: %w", err)
	}
	return &c, nil
}

// Validate checks the case declaration in isolation (column references are
// checked later against the generated database).
func (c *Case) Validate() error {
	if c.Strategy.BaseRate <= 0 || c.Strategy.BaseRate > 1 {
		return fmt.Errorf("scenario: case %s: strategy base_rate %g outside (0, 1]", c.Name, c.Strategy.BaseRate)
	}
	if c.Workload.Queries < 1 {
		return fmt.Errorf("scenario: case %s: workload queries %d, want >= 1", c.Name, c.Workload.Queries)
	}
	if c.Workload.GroupingColumns < 1 {
		return fmt.Errorf("scenario: case %s: workload grouping_columns %d, want >= 1", c.Name, c.Workload.GroupingColumns)
	}
	kind, err := c.Workload.aggKind()
	if err != nil {
		return err
	}
	if kind == engine.Sum && len(c.Workload.Measures) == 0 {
		return fmt.Errorf("scenario: case %s: sum workload needs measures", c.Name)
	}
	if b := c.Bounds; b != nil {
		if b.ErrorBound <= 0 || b.ErrorBound >= 1 {
			return fmt.Errorf("scenario: case %s: bounds error_bound %g outside (0, 1)", c.Name, b.ErrorBound)
		}
		if b.Confidence < 0 || b.Confidence >= 1 {
			return fmt.Errorf("scenario: case %s: bounds confidence %g outside [0, 1)", c.Name, b.Confidence)
		}
	}
	g := c.Gates
	if g.MaxRelErr <= 0 {
		return fmt.Errorf("scenario: case %s: gates.max_rel_err is required and must be > 0", c.Name)
	}
	for name, p := range map[string]*float64{"max_violation_rate": g.MaxViolationRate, "min_violation_rate": g.MinViolationRate} {
		if p != nil && (*p < 0 || *p > 1) {
			return fmt.Errorf("scenario: case %s: gates.%s %g outside [0, 1]", c.Name, name, *p)
		}
	}
	if g.MinViolationRate != nil && g.MaxViolationRate != nil && *g.MinViolationRate > *g.MaxViolationRate {
		return fmt.Errorf("scenario: case %s: min_violation_rate %g > max_violation_rate %g", c.Name, *g.MinViolationRate, *g.MaxViolationRate)
	}
	return nil
}

// LoadCase reads a scenario directory: case.json (the check declaration) and
// spec.json (the data spec), both validated. The case name defaults to the
// directory base name.
func LoadCase(dir string) (*Case, *Spec, error) {
	f, err := os.Open(filepath.Join(dir, "case.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	c, err := ParseCase(f)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %s: %w", dir, err)
	}
	if c.Name == "" {
		c.Name = filepath.Base(dir)
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	spec, err := LoadSpec(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, nil, err
	}
	return c, spec, nil
}
