package scenario

import (
	"math"
	"testing"

	"dynsample/internal/engine"
)

// geoSpec is the canonical correlated-schema fixture: a snowflake
// (fact → city dim → inlined region) plus a joint-correlated pair and a
// functional dependency on the fact table.
func geoSpec(rows int) *Spec {
	return &Spec{
		Name: "GEO",
		Seed: 7,
		Tables: []TableSpec{
			{
				Name: "orders", Fact: true, Rows: rows,
				Columns: []ColumnSpec{
					{Name: "city", Type: TypeString, Dist: DistSpec{Kind: DistZipf, Card: 40, Z: 1.1}},
					{Name: "region", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 6}},
					{Name: "pay", Type: TypeString, Dist: DistSpec{Kind: DistWeighted,
						Values: []any{"card", "cash"}, Weights: []float64{1, 1}}},
					{Name: "chan", Type: TypeString, Dist: DistSpec{Kind: DistWeighted,
						Values: []any{"web", "store"}, Weights: []float64{1, 1}}},
					{Name: "amount", Type: TypeFloat, Dist: DistSpec{Kind: DistLogNormal, Mu: 3, Sigma: 1}},
				},
				Correlated: []CorrelatedSpec{
					{Columns: []string{"city", "region"}, Kind: CorrFD, Determinant: "city"},
					{Columns: []string{"pay", "chan"}, Kind: CorrJoint, States: []JointState{
						{Weight: 49, Values: []any{"card", "web"}},
						{Weight: 49, Values: []any{"cash", "store"}},
						{Weight: 1, Values: []any{"card", "store"}},
						{Weight: 1, Values: []any{"cash", "web"}},
					}},
				},
				FKs: []FKSpec{{Column: "store_fk", References: "stores"}},
			},
			{
				Name: "stores", Rows: 50,
				Columns: []ColumnSpec{
					{Name: "store_format", Type: TypeString, Dist: DistSpec{Kind: DistZipf, Card: 5, Z: 1, TailMass: 0.1}},
				},
				FKs: []FKSpec{{References: "districts"}},
			},
			{
				Name: "districts", Rows: 8,
				Columns: []ColumnSpec{
					{Name: "district_name", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 8}},
				},
			},
		},
	}
}

func TestGenerateStarSchemaShape(t *testing.T) {
	db, err := Generate(geoSpec(2000))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRows() != 2000 {
		t.Fatalf("fact rows = %d, want 2000", db.NumRows())
	}
	if len(db.Dims) != 1 || db.Dims[0].Table.Name != "stores" {
		t.Fatalf("dims = %+v, want one stores dim", db.Dims)
	}
	// The snowflake inline: districts' column rides inside the stores dim and
	// is visible in the view; no districts table survives as a dim.
	for _, col := range []string{"city", "region", "pay", "chan", "amount", "store_format", "district_name"} {
		if !db.HasColumn(col) {
			t.Errorf("view missing column %q", col)
		}
	}
	if db.HasColumn("store_fk") {
		t.Error("physical FK column leaked into the view")
	}
	if db.Dims[0].Table.NumRows() != 50 {
		t.Errorf("stores rows = %d, want 50", db.Dims[0].Table.NumRows())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(geoSpec(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(geoSpec(500))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range a.Columns() {
		accA, _ := a.Accessor(col)
		accB, _ := b.Accessor(col)
		for row := 0; row < a.NumRows(); row++ {
			if accA.Value(row) != accB.Value(row) {
				t.Fatalf("column %q row %d differs across identical runs: %v vs %v",
					col, row, accA.Value(row), accB.Value(row))
			}
		}
	}
}

func TestGenerateFunctionalDependencyHolds(t *testing.T) {
	db, err := Generate(geoSpec(3000))
	if err != nil {
		t.Fatal(err)
	}
	city, _ := db.Accessor("city")
	region, _ := db.Accessor("region")
	seen := map[engine.Value]engine.Value{}
	for row := 0; row < db.NumRows(); row++ {
		c, r := city.Value(row), region.Value(row)
		if prev, ok := seen[c]; ok {
			if prev != r {
				t.Fatalf("city %v maps to both %v and %v: functional dependency broken", c, prev, r)
			}
		} else {
			seen[c] = r
		}
	}
	// The dependency must not be trivial: multiple cities and more than one
	// region must actually occur.
	regions := map[engine.Value]bool{}
	for _, r := range seen {
		regions[r] = true
	}
	if len(seen) < 10 || len(regions) < 2 {
		t.Fatalf("degenerate fd: %d cities, %d regions", len(seen), len(regions))
	}
}

func TestGenerateFDNoiseBreaksDependency(t *testing.T) {
	s := geoSpec(3000)
	s.Tables[0].Correlated[0].Noise = 0.3
	db, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	city, _ := db.Accessor("city")
	region, _ := db.Accessor("region")
	pairs := map[engine.Value]map[engine.Value]bool{}
	for row := 0; row < db.NumRows(); row++ {
		c := city.Value(row)
		if pairs[c] == nil {
			pairs[c] = map[engine.Value]bool{}
		}
		pairs[c][region.Value(row)] = true
	}
	multi := 0
	for _, rs := range pairs {
		if len(rs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("noise 0.3 produced a perfect dependency; want some cities with several regions")
	}
}

func TestGenerateJointDistributionFrequencies(t *testing.T) {
	db, err := Generate(geoSpec(20000))
	if err != nil {
		t.Fatal(err)
	}
	pay, _ := db.Accessor("pay")
	ch, _ := db.Accessor("chan")
	counts := map[[2]string]int{}
	for row := 0; row < db.NumRows(); row++ {
		counts[[2]string{pay.Value(row).S, ch.Value(row).S}]++
	}
	n := float64(db.NumRows())
	want := map[[2]string]float64{
		{"card", "web"}: 0.49, {"cash", "store"}: 0.49,
		{"card", "store"}: 0.01, {"cash", "web"}: 0.01,
	}
	for k, p := range want {
		got := float64(counts[k]) / n
		if math.Abs(got-p) > 0.01+3*math.Sqrt(p*(1-p)/n) {
			t.Errorf("joint cell %v frequency %.4f, want ~%.2f", k, got, p)
		}
	}
	// The marginals look balanced even though the joint is concentrated —
	// the shape that defeats an independence assumption.
	cardFrac := float64(counts[[2]string{"card", "web"}]+counts[[2]string{"card", "store"}]) / n
	if math.Abs(cardFrac-0.5) > 0.02 {
		t.Errorf("card marginal %.3f, want ~0.5", cardFrac)
	}
}

func TestGeneratePaddingColumns(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Padding = &PaddingSpec{Count: 7, Z: 1.0, TailMass: 0.05}
	db, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		name := []string{"fact_attr00", "fact_attr01", "fact_attr02", "fact_attr03", "fact_attr04", "fact_attr05", "fact_attr06"}[i]
		if !db.HasColumn(name) {
			t.Errorf("missing padding column %q", name)
		}
	}
}

func TestGenerateNumericDistributions(t *testing.T) {
	s := &Spec{
		Name: "NUM",
		Seed: 3,
		Tables: []TableSpec{{
			Name: "f", Fact: true, Rows: 20000,
			Columns: []ColumnSpec{
				{Name: "g", Type: TypeInt, Dist: DistSpec{Kind: DistNormal, Mean: 50, Stddev: 10}},
				{Name: "v", Type: TypeFloat, Dist: DistSpec{Kind: DistNormal, Mean: -2, Stddev: 0.5}},
			},
		}},
	}
	db, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := db.Accessor("v")
	var sum float64
	for row := 0; row < db.NumRows(); row++ {
		sum += acc.Float(row)
	}
	mean := sum / float64(db.NumRows())
	if math.Abs(mean-(-2)) > 0.05 {
		t.Errorf("normal mean %.3f, want ~-2", mean)
	}
}
