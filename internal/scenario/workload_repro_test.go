package scenario

import (
	"strings"
	"testing"

	"dynsample/internal/workload"
)

// reproSpec is a spec with a near-unique column: order_id has one distinct
// value per ~1.2 rows, far above the workload generator's MaxDistinct
// default, so it must never appear as a grouping or predicate column.
func reproSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseSpec(strings.NewReader(`{
		"name": "REPRO",
		"seed": 99,
		"tables": [
			{
				"name": "events",
				"rows": 6000,
				"fact": true,
				"columns": [
					{"name": "kind", "type": "string", "dist": {"kind": "zipf", "card": 10, "z": 1.3}},
					{"name": "source", "type": "string", "dist": {"kind": "uniform", "card": 6}},
					{"name": "order_id", "type": "int", "dist": {"kind": "uniform", "card": 5000}},
					{"name": "bytes", "type": "float", "dist": {"kind": "lognormal", "mu": 5, "sigma": 1}}
				]
			}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Same spec + same workload seed must yield a byte-identical query sequence
// even when the database itself is regenerated from scratch — the property
// the scenario verdicts rely on for run-to-run comparability.
func TestWorkloadReproducibleAcrossRuns(t *testing.T) {
	render := func() []string {
		db, err := Generate(reproSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(db, workload.Config{
			GroupingColumns: 2,
			Predicates:      1,
			Seed:            31,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, q := range gen.Queries(25) {
			out = append(out, q.String())
		}
		return out
	}

	runA, runB := render(), render()
	if len(runA) != len(runB) {
		t.Fatalf("run lengths differ: %d vs %d", len(runA), len(runB))
	}
	for i := range runA {
		if runA[i] != runB[i] {
			t.Fatalf("query %d differs across runs:\n  run A: %s\n  run B: %s", i, runA[i], runB[i])
		}
	}
}

// The near-unique-column exclusion must survive the scenario-spec path: a
// generated high-cardinality column is ineligible for grouping, and no
// generated query ever touches it.
func TestWorkloadExcludesNearUniqueScenarioColumn(t *testing.T) {
	db, err := Generate(reproSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: 1,
		Predicates:      1,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range gen.EligibleColumns() {
		if c == "order_id" {
			t.Fatal("near-unique column order_id is eligible for grouping")
		}
	}
	for i, q := range gen.Queries(50) {
		if strings.Contains(q.String(), "order_id") {
			t.Fatalf("query %d references near-unique column order_id: %s", i, q)
		}
	}
}
