package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/server"
	"dynsample/internal/workload"
)

// This file is the runtime half of the scenario engine: it takes one loaded
// case, builds a real core.System + server.New over the generated database,
// replays the workload over HTTP (POST /v1/query vs POST /v1/exact), and
// reduces the measurements to a machine-readable Verdict with every gate
// evaluated. Nothing is mocked: the request path is the same one aqpd serves.

// GateResult is one evaluated threshold in a verdict.
type GateResult struct {
	// Name is the gate's JSON name in GateSpec, e.g. "max_rel_err".
	Name string `json:"name"`
	// Value is the measured figure the gate judged.
	Value float64 `json:"value"`
	// Limit is the declared threshold.
	Limit float64 `json:"limit"`
	// Pass reports whether Value is on the right side of Limit.
	Pass bool `json:"pass"`
}

// QueryStat records one replayed query, for the accuracy study.
type QueryStat struct {
	SQL string `json:"sql"`
	// RelErr is the true mean per-group relative error vs /v1/exact
	// (Definition 4.2: missing groups count 1, averaged over exact groups).
	RelErr float64 `json:"rel_err"`
	// Groups and Missed summarise the exact answer's group coverage.
	Groups int `json:"groups"`
	Missed int `json:"missed"`
	// Predicted is the planner's predicted mean per-group relative error for
	// the executed plan — from the bounded-query response when the case sets
	// bounds, otherwise the full default plan's prediction via PreviewPlans.
	Predicted float64 `json:"predicted"`
	// Achieved is the server's online achieved-error estimate (bounded
	// queries only).
	Achieved float64 `json:"achieved,omitempty"`
	// Plan names the executed plan (bounded queries only).
	Plan string `json:"plan,omitempty"`
	// Violated marks RelErr > Predicted: the §4.4 model promised more
	// accuracy than the data delivered.
	Violated bool `json:"violated,omitempty"`
	// Unsatisfiable marks a bounded query the planner refused (422); it is
	// excluded from the error and violation statistics.
	Unsatisfiable bool `json:"unsatisfiable,omitempty"`
}

// Verdict is the machine-readable outcome of one case, written to
// SCENARIO_<case>.json.
type Verdict struct {
	Case        string `json:"case"`
	Description string `json:"description,omitempty"`
	Spec        string `json:"spec"`
	// Rows is the generated fact-table size; Tables counts spec tables.
	Rows   int `json:"rows"`
	Tables int `json:"tables"`

	// BuildMS covers data generation plus strategy pre-processing.
	BuildMS int64 `json:"build_ms"`
	// SampleBytes/SampleRows are the built sample's footprint.
	SampleBytes int64 `json:"sample_bytes"`
	SampleRows  int64 `json:"sample_rows"`

	// Queries is the number of workload queries measured (excluding
	// unsatisfiable refusals, counted separately).
	Queries       int `json:"queries"`
	Unsatisfiable int `json:"unsatisfiable,omitempty"`

	// MeanRelErr / MaxRelErr summarise the true error across the workload.
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	// MeanPredicted is the mean planner-predicted error across the workload;
	// MeanPredictedGap is mean(RelErr − Predicted), positive when the
	// planner is optimistic on this data.
	MeanPredicted    float64 `json:"mean_predicted"`
	MeanPredictedGap float64 `json:"mean_predicted_gap"`
	// Violations counts queries whose true error exceeded the prediction;
	// MaxExcess is the worst RelErr − Predicted among them.
	Violations    int     `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
	MaxExcess     float64 `json:"max_excess,omitempty"`

	// QPS is approximate-query throughput over HTTP (wall time of the /query
	// requests only). SpeedupRows is exact rows scanned / sample rows
	// scanned, the paper's cost proxy.
	QPS         float64 `json:"qps"`
	SpeedupRows float64 `json:"speedup_rows"`

	Gates []GateResult `json:"gates"`
	Pass  bool         `json:"pass"`

	// QueryStats carries the per-query measurements behind the summary, so
	// EXPERIMENTS.md tables can be rebuilt from the verdict alone.
	QueryStats []QueryStat `json:"query_stats"`
}

// RunOptions tunes a run.
type RunOptions struct {
	// OutDir, when non-empty, receives SCENARIO_<case>.json.
	OutDir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o RunOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// RunDir loads the case in dir and runs it end-to-end.
func RunDir(dir string, opts RunOptions) (*Verdict, error) {
	c, spec, err := LoadCase(dir)
	if err != nil {
		return nil, err
	}
	return Run(c, spec, opts)
}

// Run executes one case: generate the database, build the strategy, start a
// live server, replay the workload, gate the measurements, and (when OutDir
// is set) write the verdict file.
func Run(c *Case, spec *Spec, opts RunOptions) (*Verdict, error) {
	opts.logf("case %s: generating %q", c.Name, spec.Name)
	buildStart := time.Now()
	db, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(db)
	err = sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate: c.Strategy.BaseRate,
		Seed:     c.Strategy.Seed,
		Workers:  c.Strategy.Workers,
	}))
	if err != nil {
		return nil, fmt.Errorf("scenario: case %s: %w", c.Name, err)
	}
	buildMS := time.Since(buildStart).Milliseconds()
	prepared, _ := sys.Prepared(server.DefaultStrategy)

	kind, err := c.Workload.aggKind()
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(db, workload.Config{
		GroupingColumns: c.Workload.GroupingColumns,
		Predicates:      c.Workload.Predicates,
		MassSelectivity: c.Workload.MassSelectivity,
		Aggregate:       kind,
		Measures:        c.Workload.Measures,
		MaxDistinct:     c.Workload.MaxDistinct,
		Columns:         nilIfEmpty(c.Workload.Columns),
		Seed:            c.Workload.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: case %s: %w", c.Name, err)
	}
	queries := gen.Queries(c.Workload.Queries)

	ts := httptest.NewServer(server.New(sys, server.Config{}).Handler())
	defer ts.Close()
	opts.logf("case %s: replaying %d queries against %s", c.Name, len(queries), ts.URL)

	v := &Verdict{
		Case:        c.Name,
		Description: c.Description,
		Spec:        spec.Name,
		Rows:        db.NumRows(),
		Tables:      len(spec.Tables),
		BuildMS:     buildMS,
		SampleBytes: prepared.SampleBytes(),
		SampleRows:  prepared.SampleRows(),
	}

	var approxWall time.Duration
	var approxRows, exactRows int64
	for _, q := range queries {
		sql := q.String()
		exact, _, err := postQuery(ts.URL+"/v1/exact", &server.QueryRequest{SQL: sql})
		if err != nil {
			return nil, fmt.Errorf("scenario: case %s: exact %q: %w", c.Name, sql, err)
		}
		req := &server.QueryRequest{SQL: sql}
		if c.Bounds != nil {
			req.ErrorBound = c.Bounds.ErrorBound
			req.Confidence = c.Bounds.Confidence
		}
		start := time.Now()
		approx, unsat, err := postQuery(ts.URL+"/v1/query", req)
		approxWall += time.Since(start)
		if unsat {
			v.Unsatisfiable++
			v.QueryStats = append(v.QueryStats, QueryStat{SQL: sql, Unsatisfiable: true})
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: case %s: query %q: %w", c.Name, sql, err)
		}
		st := QueryStat{SQL: sql}
		st.RelErr, st.Groups, st.Missed = relErr(exact.Groups, approx.Groups)
		switch {
		case approx.Predicted != nil:
			st.Predicted = *approx.Predicted
			st.Plan = approx.Plan
			if approx.Achieved != nil {
				st.Achieved = *approx.Achieved
			}
		default:
			// Unbounded: the server ran the full default rewrite, whose
			// prediction PreviewPlans exposes as the most expensive non-exact
			// candidate.
			st.Predicted, err = fullPlanPrediction(sys, q)
			if err != nil {
				return nil, fmt.Errorf("scenario: case %s: preview %q: %w", c.Name, sql, err)
			}
		}
		st.Violated = st.RelErr > st.Predicted
		v.QueryStats = append(v.QueryStats, st)
		approxRows += approx.RowsRead
		exactRows += exact.RowsRead

		v.Queries++
		v.MeanRelErr += st.RelErr
		v.MeanPredicted += st.Predicted
		if st.RelErr > v.MaxRelErr {
			v.MaxRelErr = st.RelErr
		}
		if st.Violated {
			v.Violations++
			if ex := st.RelErr - st.Predicted; ex > v.MaxExcess {
				v.MaxExcess = ex
			}
		}
	}
	if v.Queries > 0 {
		n := float64(v.Queries)
		v.MeanRelErr /= n
		v.MeanPredicted /= n
		v.MeanPredictedGap = v.MeanRelErr - v.MeanPredicted
		v.ViolationRate = float64(v.Violations) / n
	}
	if secs := approxWall.Seconds(); secs > 0 {
		v.QPS = float64(v.Queries+v.Unsatisfiable) / secs
	}
	if approxRows > 0 {
		v.SpeedupRows = float64(exactRows) / float64(approxRows)
	}

	v.evalGates(c.Gates)
	opts.logf("case %s: rel_err mean %.4f max %.4f, predicted mean %.4f, violations %d/%d, qps %.1f, pass=%v",
		c.Name, v.MeanRelErr, v.MaxRelErr, v.MeanPredicted, v.Violations, v.Queries, v.QPS, v.Pass)

	if opts.OutDir != "" {
		if err := v.Write(opts.OutDir); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// evalGates judges every declared gate and sets Pass.
func (v *Verdict) evalGates(g GateSpec) {
	max := func(name string, value, limit float64) {
		v.Gates = append(v.Gates, GateResult{Name: name, Value: value, Limit: limit, Pass: value <= limit})
	}
	min := func(name string, value, limit float64) {
		v.Gates = append(v.Gates, GateResult{Name: name, Value: value, Limit: limit, Pass: value >= limit})
	}
	max("max_rel_err", v.MeanRelErr, g.MaxRelErr)
	if g.MinQPS > 0 {
		min("min_qps", v.QPS, g.MinQPS)
	}
	if g.MaxSampleMB > 0 {
		max("max_sample_mb", float64(v.SampleBytes)/1e6, g.MaxSampleMB)
	}
	if g.MaxBuildMS > 0 {
		max("max_build_ms", float64(v.BuildMS), float64(g.MaxBuildMS))
	}
	if g.MaxViolationRate != nil {
		max("max_violation_rate", v.ViolationRate, *g.MaxViolationRate)
	}
	if g.MinViolationRate != nil {
		min("min_violation_rate", v.ViolationRate, *g.MinViolationRate)
	}
	v.Pass = true
	for _, gr := range v.Gates {
		v.Pass = v.Pass && gr.Pass
	}
}

// Write emits the verdict as SCENARIO_<case>.json under dir.
func (v *Verdict) Write(dir string) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "SCENARIO_"+v.Case+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// postQuery POSTs one query request and decodes the response. A 422
// bound_unsatisfiable response returns unsat=true with no error; any other
// non-200 is an error carrying the server's message.
func postQuery(url string, req *server.QueryRequest) (resp *server.QueryResponse, unsat bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	hr, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer hr.Body.Close()
	if hr.StatusCode == http.StatusUnprocessableEntity {
		return nil, true, nil
	}
	if hr.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		if json.NewDecoder(hr.Body).Decode(&er) == nil && er.Error.Message != "" {
			return nil, false, fmt.Errorf("HTTP %d: %s", hr.StatusCode, er.Error.Message)
		}
		return nil, false, fmt.Errorf("HTTP %d", hr.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(hr.Body).Decode(&qr); err != nil {
		return nil, false, err
	}
	return &qr, false, nil
}

// relErr computes the Definition 4.2 mean per-group relative error of the
// approximate groups against the exact groups, mirroring metrics.Compare:
// missing groups contribute 1, zero-exact groups contribute 1 only when the
// estimate is nonzero, and the sum is averaged over the exact group count.
// Group identity is the full key tuple; the compared value is the first
// aggregate output.
func relErr(exact, approx []server.GroupJSON) (rel float64, groups, missed int) {
	if len(exact) == 0 {
		return 0, 0, 0
	}
	am := make(map[string][]float64, len(approx))
	for _, g := range approx {
		am[groupKey(g)] = g.Values
	}
	var sum float64
	for _, g := range exact {
		vals, ok := am[groupKey(g)]
		if !ok || len(vals) == 0 {
			missed++
			sum += 1
			continue
		}
		x, xhat := g.Values[0], vals[0]
		switch {
		case x == 0 && xhat != 0:
			sum += 1
		case x != 0:
			d := (x - xhat) / x
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum / float64(len(exact)), len(exact), missed
}

// groupKey joins a group's key tuple with a separator no generated value
// contains.
func groupKey(g server.GroupJSON) string {
	return strings.Join(g.Key, "\x1f")
}

// fullPlanPrediction returns the §4.4 predicted error of the full default
// plan (every relevant small group table plus the whole overall sample) —
// the plan an unbounded query executes.
func fullPlanPrediction(sys *core.System, q *engine.Query) (float64, error) {
	cands, _, err := sys.PreviewPlans(server.DefaultStrategy, q, core.Bounds{})
	if err != nil {
		return 0, err
	}
	full := -1.0
	var rows int64 = -1
	for _, cand := range cands {
		if cand.Exact {
			continue
		}
		if cand.Rows > rows {
			rows, full = cand.Rows, cand.PredictedError
		}
	}
	if full < 0 {
		return 0, fmt.Errorf("no non-exact candidate in preview")
	}
	return full, nil
}

// nilIfEmpty maps an empty JSON list to the workload package's "all columns".
func nilIfEmpty(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return s
}

// RunAll runs every case directory under root (each immediate subdirectory
// containing a case.json), in name order, and returns the verdicts. A case
// that errors aborts the sweep; a case that merely fails its gates does not.
func RunAll(root string, opts RunOptions) ([]*Verdict, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, e.Name(), "case.json")); err == nil {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("scenario: no case directories under %s", root)
	}
	verdicts := make([]*Verdict, 0, len(dirs))
	for _, dir := range dirs {
		v, err := RunDir(dir, opts)
		if err != nil {
			return nil, err
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}
