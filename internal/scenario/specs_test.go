package scenario

import "testing"

func TestBuiltinSpecsListAndParse(t *testing.T) {
	names := BuiltinSpecs()
	want := map[string]bool{"sales": false, "tpch": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("builtin spec %q missing from %v", n, names)
		}
	}
	for _, n := range names {
		s, err := BuiltinSpec(n)
		if err != nil {
			t.Fatalf("BuiltinSpec(%q): %v", n, err)
		}
		if s.FactTable() == nil {
			t.Fatalf("builtin spec %q has no fact table", n)
		}
	}
}

func TestBuiltinSpecUnknown(t *testing.T) {
	if _, err := BuiltinSpec("nope"); err == nil {
		t.Fatal("expected error for unknown builtin spec")
	}
}

// The builtin specs must keep the column names the hand-coded generators
// used, so downstream CSV consumers and examples see a familiar schema.
func TestBuiltinSpecSchemaShape(t *testing.T) {
	sales, err := BuiltinSpec("sales")
	if err != nil {
		t.Fatal(err)
	}
	if ft := sales.FactTable(); ft == nil || ft.Name != "sales_fact" {
		t.Fatalf("sales fact table = %+v, want sales_fact", ft)
	}
	if got := len(sales.Tables); got != 7 {
		t.Fatalf("sales tables = %d, want 7 (fact + 6 dims)", got)
	}

	tpch, err := BuiltinSpec("tpch")
	if err != nil {
		t.Fatal(err)
	}
	ft := tpch.FactTable()
	if ft == nil || ft.Name != "lineitem" {
		t.Fatalf("tpch fact table = %+v, want lineitem", ft)
	}
	if ft.Rows != 100000 {
		t.Fatalf("tpch lineitem rows = %d, want 100000 (SF1)", ft.Rows)
	}
	cols := map[string]bool{}
	for _, c := range ft.Columns {
		cols[c.Name] = true
	}
	for _, name := range []string{"l_quantity", "l_extendedprice", "l_returnflag", "l_shipdate"} {
		if !cols[name] {
			t.Fatalf("tpch lineitem missing column %s", name)
		}
	}
}

// A small builtin-spec generation sanity check: the spec path must produce
// a database whose dims line up with their FK columns.
func TestBuiltinSpecGenerates(t *testing.T) {
	s, err := BuiltinSpec("sales")
	if err != nil {
		t.Fatal(err)
	}
	s.FactTable().Rows = 500
	for i := range s.Tables {
		if !s.Tables[i].Fact && s.Tables[i].Rows > 200 {
			s.Tables[i].Rows = 200
		}
	}
	db, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if db.Fact.NumRows() != 500 {
		t.Fatalf("fact rows = %d, want 500", db.Fact.NumRows())
	}
	if len(db.Dims) != 6 {
		t.Fatalf("dims = %d, want 6", len(db.Dims))
	}
}
