package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// Generate materialises the spec into an engine star schema. Tables are
// seeded in topological FK order (referenced tables first), all randomness
// flows from one generator seeded with Spec.Seed, and the same spec+seed
// yields a bit-identical database on every run.
func Generate(s *Spec) (*engine.Database, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	order, err := s.topoOrder()
	if err != nil {
		return nil, err
	}
	rng := randx.New(s.Seed)
	built := make(map[string]*engine.Table, len(order))
	var fact *engine.Table
	var dims []engine.DimJoin
	for _, t := range order {
		tbl, joins, err := generateTable(t, built, rng)
		if err != nil {
			return nil, err
		}
		built[t.Name] = tbl
		if t.Fact {
			fact = tbl
			dims = joins
		}
	}
	return engine.NewDatabase(s.Name, fact, dims...)
}

// generateTable builds one table. For the fact table it also returns the
// dimension joins its FKs induce; dimension FKs instead inline the
// referenced table's columns.
func generateTable(t *TableSpec, built map[string]*engine.Table, rng *rand.Rand) (*engine.Table, []engine.DimJoin, error) {
	cols, groups, err := newDrawers(t, rng)
	if err != nil {
		return nil, nil, err
	}

	// Inlined parents (dimension FKs): each row draws a parent row and copies
	// the parent's columns, so the parent's columns ride along correlated.
	type inline struct {
		parent *engine.Table
		cols   []*engine.Column // destination columns, aligned with parent's
	}
	var inlines []inline
	// Fact FKs: a physical int column of row ids into the dimension.
	type factFK struct {
		col *engine.Column
		dim *engine.Table
	}
	var factFKs []factFK
	var joins []engine.DimJoin
	for _, fk := range t.FKs {
		parent := built[fk.References]
		if parent == nil {
			return nil, nil, fmt.Errorf("scenario: internal: table %q generated before its reference %q", t.Name, fk.References)
		}
		if t.Fact {
			c := engine.NewColumn(fk.Column, engine.Int)
			factFKs = append(factFKs, factFK{col: c, dim: parent})
			joins = append(joins, engine.DimJoin{Table: parent, FK: fk.Column})
			continue
		}
		in := inline{parent: parent}
		for _, pc := range parent.Columns() {
			in.cols = append(in.cols, engine.NewColumn(pc.Name, pc.Type))
		}
		inlines = append(inlines, in)
	}

	for row := 0; row < t.Rows; row++ {
		// Correlated groups first (declaration order), then every column in
		// declared order — grouped columns take their resolved value,
		// independent columns draw inline. One rng, fixed order: the stream
		// is reproducible.
		for _, g := range groups {
			g.drawRow(rng)
		}
		for _, c := range cols {
			c.appendRow(rng)
		}
		for _, in := range inlines {
			pr := rng.Intn(in.parent.NumRows())
			for i, pc := range in.parent.Columns() {
				in.cols[i].Append(pc.Value(pr))
			}
		}
		for _, f := range factFKs {
			f.col.AppendInt(int64(rng.Intn(f.dim.NumRows())))
		}
	}

	var all []*engine.Column
	for _, c := range cols {
		all = append(all, c.col)
	}
	for _, in := range inlines {
		all = append(all, in.cols...)
	}
	for _, f := range factFKs {
		all = append(all, f.col)
	}
	// NewTable adopts the row count from the pre-filled columns.
	return engine.NewTable(t.Name, all...), joins, nil
}

// drawer generates one column's values. Grouped columns read the value their
// correlated group resolved for the current row.
type drawer struct {
	col   *engine.Column
	draw  func(rng *rand.Rand) engine.Value // independent columns
	group *groupDrawer                      // non-nil for grouped columns
	slot  int                               // index into group.current
}

func (d *drawer) appendRow(rng *rand.Rand) {
	if d.group != nil {
		d.col.Append(d.group.current[d.slot])
		return
	}
	d.col.Append(d.draw(rng))
}

// groupDrawer resolves one correlated group per row into current (aligned
// with the group's column order).
type groupDrawer struct {
	current []engine.Value
	drawRow func(rng *rand.Rand)
}

// newDrawers compiles the table's columns (declared + padding) and
// correlated groups into drawers.
func newDrawers(t *TableSpec, setupRng *rand.Rand) ([]*drawer, []*groupDrawer, error) {
	specs := append([]ColumnSpec(nil), t.Columns...)
	if p := t.Padding; p != nil {
		cards := p.Cards
		if len(cards) == 0 {
			cards = defaultPaddingCards
		}
		for i := 0; i < p.Count; i++ {
			specs = append(specs, ColumnSpec{
				Name: fmt.Sprintf("%s_attr%02d", t.Name, i),
				Type: TypeString,
				Dist: DistSpec{Kind: DistZipf, Card: cards[i%len(cards)], Z: p.Z, TailMass: p.TailMass},
			})
		}
	}
	byName := make(map[string]*ColumnSpec, len(specs))
	drawers := make([]*drawer, len(specs))
	index := make(map[string]int, len(specs))
	for i := range specs {
		c := &specs[i]
		byName[c.Name] = c
		index[c.Name] = i
		draw, err := newDraw(c)
		if err != nil {
			return nil, nil, err
		}
		drawers[i] = &drawer{col: engine.NewColumn(c.Name, colType(c.Type)), draw: draw}
	}

	var groups []*groupDrawer
	for gi := range t.Correlated {
		g := &t.Correlated[gi]
		gd := &groupDrawer{current: make([]engine.Value, len(g.Columns))}
		for slot, cn := range g.Columns {
			d := drawers[index[cn]]
			d.group = gd
			d.slot = slot
		}
		switch g.Kind {
		case CorrFD:
			fd, err := newFDDraw(g, byName, gd, setupRng)
			if err != nil {
				return nil, nil, err
			}
			gd.drawRow = fd
		case CorrJoint:
			joint, err := newJointDraw(g, byName, gd)
			if err != nil {
				return nil, nil, err
			}
			gd.drawRow = joint
		}
		groups = append(groups, gd)
	}
	return drawers, groups, nil
}

// newDraw compiles an independent column distribution into a sampler.
func newDraw(c *ColumnSpec) (func(*rand.Rand) engine.Value, error) {
	d := &c.Dist
	switch d.Kind {
	case DistZipf, DistUniform:
		domain := categoricalDomain(c)
		idx := newIndexDraw(d)
		return func(rng *rand.Rand) engine.Value { return domain[idx(rng)] }, nil
	case DistWeighted:
		domain := categoricalDomain(c)
		cat := randx.NewCategorical(d.Weights)
		return func(rng *rand.Rand) engine.Value { return domain[cat.Draw(rng)] }, nil
	case DistNormal:
		mean, sd := d.Mean, d.Stddev
		if c.Type == TypeInt {
			return func(rng *rand.Rand) engine.Value {
				return engine.IntVal(int64(math.Round(mean + sd*rng.NormFloat64())))
			}, nil
		}
		return func(rng *rand.Rand) engine.Value {
			return engine.FloatVal(mean + sd*rng.NormFloat64())
		}, nil
	case DistLogNormal:
		mu, sigma := d.Mu, d.Sigma
		if c.Type == TypeInt {
			return func(rng *rand.Rand) engine.Value {
				return engine.IntVal(int64(math.Round(randx.LogNormal(rng, mu, sigma))))
			}, nil
		}
		return func(rng *rand.Rand) engine.Value {
			return engine.FloatVal(randx.LogNormal(rng, mu, sigma))
		}, nil
	}
	return nil, fmt.Errorf("scenario: column %q: unknown distribution %q", c.Name, d.Kind)
}

// newIndexDraw compiles a zipf/uniform spec into an index sampler over
// [0, card). TailMass switches zipf to the head-and-tail mixture shape of
// real operational categoricals.
func newIndexDraw(d *DistSpec) func(*rand.Rand) int {
	card := d.Card
	z := d.Z
	if d.Kind == DistUniform {
		z = 0
	}
	if d.Kind == DistZipf && d.TailMass > 0 {
		head := card / 6
		if head < 2 {
			head = 2
		}
		if head > 8 {
			head = 8
		}
		if head < card {
			weights := make([]float64, card)
			headZ := randx.NewZipf(z, head)
			for i := 0; i < head; i++ {
				weights[i] = (1 - d.TailMass) * headZ.Prob(i)
			}
			tailZ := randx.NewZipf(1.5, card-head)
			for i := head; i < card; i++ {
				weights[i] = d.TailMass * tailZ.Prob(i-head)
			}
			cat := randx.NewCategorical(weights)
			return cat.Draw
		}
	}
	zipf := randx.NewZipf(z, card)
	return zipf.Draw
}

// categoricalDomain materialises a categorical column's value domain: the
// weighted spec's literal values, or "<col>_<i>" / i for zipf and uniform.
func categoricalDomain(c *ColumnSpec) []engine.Value {
	if c.Dist.Kind == DistWeighted {
		out := make([]engine.Value, len(c.Dist.Values))
		for i, v := range c.Dist.Values {
			out[i], _ = coerce(v, c.Type) // validated earlier
		}
		return out
	}
	out := make([]engine.Value, c.Dist.Card)
	for i := range out {
		if c.Type == TypeInt {
			out[i] = engine.IntVal(int64(i))
		} else {
			out[i] = engine.StringVal(fmt.Sprintf("%s_%03d", c.Name, i))
		}
	}
	return out
}

// newFDDraw compiles a functional-dependency group: the determinant draws
// from its own distribution and every dependent column's value is a fixed
// seeded mapping of the determinant's value index (softened by Noise).
func newFDDraw(g *CorrelatedSpec, byName map[string]*ColumnSpec, gd *groupDrawer, setupRng *rand.Rand) (func(*rand.Rand), error) {
	det := byName[g.Determinant]
	detCard := det.Dist.cardinality()
	detDomain := categoricalDomain(det)
	var detIdx func(*rand.Rand) int
	if det.Dist.Kind == DistWeighted {
		detIdx = randx.NewCategorical(det.Dist.Weights).Draw
	} else {
		detIdx = newIndexDraw(&det.Dist)
	}

	type dep struct {
		slot    int
		domain  []engine.Value
		mapping []int // determinant index -> dependent index
		indep   func(*rand.Rand) int
	}
	var detSlot int
	var deps []dep
	for slot, cn := range g.Columns {
		if cn == g.Determinant {
			detSlot = slot
			continue
		}
		c := byName[cn]
		dp := dep{slot: slot, domain: categoricalDomain(c), mapping: make([]int, detCard)}
		if c.Dist.Kind == DistWeighted {
			dp.indep = randx.NewCategorical(c.Dist.Weights).Draw
		} else {
			dp.indep = newIndexDraw(&c.Dist)
		}
		// The dependency mapping is fixed up front from the setup stream:
		// dependent values are assigned round-robin over a shuffled domain so
		// every dependent value is reachable, then the map never changes —
		// that is what makes it a functional dependency.
		perm := setupRng.Perm(len(dp.domain))
		for i := 0; i < detCard; i++ {
			dp.mapping[i] = perm[i%len(perm)]
		}
		deps = append(deps, dp)
	}
	noise := g.Noise
	return func(rng *rand.Rand) {
		i := detIdx(rng)
		gd.current[detSlot] = detDomain[i]
		for _, dp := range deps {
			if noise > 0 && rng.Float64() < noise {
				gd.current[dp.slot] = dp.domain[dp.indep(rng)]
				continue
			}
			gd.current[dp.slot] = dp.domain[dp.mapping[i]]
		}
	}, nil
}

// newJointDraw compiles an explicit joint distribution: each row draws a
// state and every grouped column takes that state's value.
func newJointDraw(g *CorrelatedSpec, byName map[string]*ColumnSpec, gd *groupDrawer) (func(*rand.Rand), error) {
	weights := make([]float64, len(g.States))
	vals := make([][]engine.Value, len(g.States))
	for si, st := range g.States {
		weights[si] = st.Weight
		vals[si] = make([]engine.Value, len(st.Values))
		for vi, v := range st.Values {
			cv, err := coerce(v, byName[g.Columns[vi]].Type)
			if err != nil {
				return nil, fmt.Errorf("scenario: joint state %d: %v", si, err)
			}
			vals[si][vi] = cv
		}
	}
	cat := randx.NewCategorical(weights)
	return func(rng *rand.Rand) {
		copy(gd.current, vals[cat.Draw(rng)])
	}, nil
}

// colType maps a spec type name to the engine type. Specs are validated
// before generation, so unknown names cannot reach this.
func colType(t string) engine.Type {
	switch t {
	case TypeInt:
		return engine.Int
	case TypeFloat:
		return engine.Float
	default:
		return engine.String
	}
}

// coerce converts a decoded JSON scalar to an engine value of the column's
// type. JSON numbers arrive as float64; int columns require an integral
// value.
func coerce(v any, typ string) (engine.Value, error) {
	switch typ {
	case TypeString:
		s, ok := v.(string)
		if !ok {
			return engine.Value{}, fmt.Errorf("want a string, got %T (%v)", v, v)
		}
		return engine.StringVal(s), nil
	case TypeInt:
		f, ok := v.(float64)
		if !ok {
			if i, isInt := v.(int); isInt {
				return engine.IntVal(int64(i)), nil
			}
			return engine.Value{}, fmt.Errorf("want an integer, got %T (%v)", v, v)
		}
		if f != math.Trunc(f) {
			return engine.Value{}, fmt.Errorf("want an integer, got %g", f)
		}
		return engine.IntVal(int64(f)), nil
	case TypeFloat:
		switch n := v.(type) {
		case float64:
			return engine.FloatVal(n), nil
		case int:
			return engine.FloatVal(float64(n)), nil
		}
		return engine.Value{}, fmt.Errorf("want a number, got %T (%v)", v, v)
	}
	return engine.Value{}, fmt.Errorf("unknown type %q", typ)
}
