package scenario

import (
	"bytes"
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed specs/*.json
var builtinFS embed.FS

// BuiltinSpecs lists the names of the specs shipped with the binary, in
// sorted order. Each name can be passed to BuiltinSpec.
func BuiltinSpecs() []string {
	entries, err := builtinFS.ReadDir("specs")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// BuiltinSpec parses one of the embedded spec files by base name
// (e.g. "sales", "tpch"). The returned spec is freshly parsed on every
// call, so callers may mutate it (row overrides, reseeding).
func BuiltinSpec(name string) (*Spec, error) {
	data, err := builtinFS.ReadFile("specs/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("unknown builtin spec %q (have %s)", name, strings.Join(BuiltinSpecs(), ", "))
	}
	s, err := ParseSpec(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("builtin spec %q: %w", name, err)
	}
	return s, nil
}
