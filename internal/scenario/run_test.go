package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// harnessCase is a small end-to-end case over the geo fixture.
func harnessCase() *Case {
	return &Case{
		Name:        "t",
		Description: "harness test",
		Strategy:    StrategySpec{BaseRate: 0.1, Seed: 5},
		Workload: WorkloadSpec{
			Queries:         6,
			Seed:            9,
			GroupingColumns: 1,
			Aggregate:       "count",
			Columns:         []string{"city", "region", "pay"},
		},
		Gates: GateSpec{MaxRelErr: 0.9, MinQPS: 1},
	}
}

func TestRunEndToEndEmitsVerdict(t *testing.T) {
	out := t.TempDir()
	v, err := Run(harnessCase(), geoSpec(4000), RunOptions{OutDir: out, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if v.Queries != 6 {
		t.Fatalf("measured %d queries, want 6", v.Queries)
	}
	if v.MeanRelErr < 0 || v.MeanRelErr > 1 {
		t.Fatalf("mean rel err %g out of range", v.MeanRelErr)
	}
	if v.QPS <= 0 || v.SampleRows <= 0 || v.SampleBytes <= 0 {
		t.Fatalf("degenerate measurements: qps %g sample rows %d bytes %d", v.QPS, v.SampleRows, v.SampleBytes)
	}
	if !v.Pass {
		t.Fatalf("loose gates failed: %+v", v.Gates)
	}
	for _, st := range v.QueryStats {
		if st.Predicted <= 0 && st.RelErr > 0 {
			t.Fatalf("query %q has no prediction despite error %g", st.SQL, st.RelErr)
		}
	}

	// The verdict file round-trips.
	b, err := os.ReadFile(filepath.Join(out, "SCENARIO_t.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Verdict
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Case != "t" || back.Queries != v.Queries || back.Pass != v.Pass {
		t.Fatalf("verdict file does not match in-memory verdict: %+v", back)
	}
}

func TestRunGateFailure(t *testing.T) {
	c := harnessCase()
	c.Gates = GateSpec{MaxRelErr: 1e-9} // unmeetable: sampling always errs a little
	v, err := Run(c, geoSpec(4000), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("impossible accuracy gate passed")
	}
	var found bool
	for _, g := range v.Gates {
		if g.Name == "max_rel_err" {
			found = true
			if g.Pass {
				t.Fatalf("max_rel_err gate passed with value %g limit %g", g.Value, g.Limit)
			}
		}
	}
	if !found {
		t.Fatal("max_rel_err gate missing from verdict")
	}
}

func TestRunBoundedQueriesRecordPlannerPredictions(t *testing.T) {
	c := harnessCase()
	c.Bounds = &BoundsSpec{ErrorBound: 0.5, Confidence: 0.95}
	v, err := Run(c, geoSpec(4000), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, st := range v.QueryStats {
		if st.Unsatisfiable {
			continue
		}
		measured++
		if st.Plan == "" {
			t.Fatalf("bounded query %q has no plan name", st.SQL)
		}
		if st.Predicted < 0 || st.Predicted > 0.5 {
			t.Fatalf("bounded query %q predicted %g, want in [0, bound]", st.SQL, st.Predicted)
		}
		if st.Plan == "exact" && st.RelErr != 0 {
			t.Fatalf("exact plan for %q measured error %g, want 0", st.SQL, st.RelErr)
		}
	}
	if measured == 0 {
		t.Fatal("every bounded query was refused; bound too tight for the fixture")
	}
}

func TestLoadCaseFromDirectory(t *testing.T) {
	dir := t.TempDir()
	spec, _ := json.Marshal(geoSpec(1000))
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), spec, 0o644); err != nil {
		t.Fatal(err)
	}
	caseJSON := `{
	  "strategy": {"base_rate": 0.1, "seed": 1},
	  "workload": {"queries": 2, "seed": 1, "grouping_columns": 1, "aggregate": "count"},
	  "gates": {"max_rel_err": 0.9}
	}`
	if err := os.WriteFile(filepath.Join(dir, "case.json"), []byte(caseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	c, s, err := LoadCase(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != filepath.Base(dir) {
		t.Fatalf("case name %q, want directory name default", c.Name)
	}
	if s.Name != "GEO" {
		t.Fatalf("spec name %q", s.Name)
	}

	// Unknown gate names must fail loudly.
	bad := `{"strategy":{"base_rate":0.1},"workload":{"queries":1,"grouping_columns":1,"aggregate":"count"},"gates":{"max_rel_err":0.5,"max_relerr_typo":0.5}}`
	if err := os.WriteFile(filepath.Join(dir, "case.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCase(dir); err == nil {
		t.Fatal("typoed gate name loaded without error")
	}
}

func TestCaseValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Case)
		want   string
	}{
		{"base rate", func(c *Case) { c.Strategy.BaseRate = 0 }, "base_rate"},
		{"queries", func(c *Case) { c.Workload.Queries = 0 }, "queries"},
		{"aggregate", func(c *Case) { c.Workload.Aggregate = "median" }, "unknown aggregate"},
		{"sum measures", func(c *Case) { c.Workload.Aggregate = "sum" }, "needs measures"},
		{"bound range", func(c *Case) { c.Bounds = &BoundsSpec{ErrorBound: 1.5} }, "error_bound"},
		{"missing gate", func(c *Case) { c.Gates.MaxRelErr = 0 }, "max_rel_err"},
	} {
		c := harnessCase()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid case validated", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
