// Package scenario is the config-driven workload laboratory: declarative
// schema specs (tables, typed columns, per-column value distributions, FK
// references seeded in topological order, and correlated column groups) are
// compiled into engine star schemas, and case directories pair a spec with a
// query-workload recipe, resource budgets, and pass/fail gates that a runner
// executes end-to-end against a real server instance.
//
// The spec layer exists because the paper's evidence base — and this
// reproduction's until now — was two hand-coded generators (SALES, TPC-H).
// A declarative spec makes new schemas a JSON file instead of a Go change,
// and, crucially, makes *correlated* columns expressible: the §4.4 error
// model the planner runs online assumes grouping columns are independent,
// and the only way to measure what that assumption costs is to generate data
// where it fails on purpose. See ARCHITECTURE.md §11 and
// scenarios/README.md.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Spec is a declarative database schema: one fact table plus any number of
// dimension tables, each with typed columns drawn from configured
// distributions. Tables may reference each other with FKs; referenced tables
// are seeded first (topological order). The fact table's FKs become the star
// schema's dimension joins; a dimension's FKs inline the referenced table's
// columns into the dimension (snowflake flattening), which is also a natural
// source of cross-column correlation.
type Spec struct {
	// Name names the generated database (engine.Database.Name).
	Name string `json:"name"`
	// Seed drives every random draw. The same spec and seed produce an
	// identical database on every run.
	Seed int64 `json:"seed,omitempty"`
	// Tables lists the schema's tables in any order; generation order is
	// derived from the FK graph.
	Tables []TableSpec `json:"tables"`
}

// TableSpec is one table of the schema.
type TableSpec struct {
	// Name names the table. Unique across the spec.
	Name string `json:"name"`
	// Rows is the number of rows to generate; must be >= 1.
	Rows int `json:"rows"`
	// Fact marks the fact table. Exactly one table must set it.
	Fact bool `json:"fact,omitempty"`
	// Columns are the table's generated columns. Column names must be unique
	// across the whole spec (the engine's star-schema view requires it).
	Columns []ColumnSpec `json:"columns"`
	// FKs reference other tables. On the fact table each FK becomes a
	// dimension join (the FK column holds row ids into the dimension). On a
	// dimension table each FK inlines the referenced table: every row draws a
	// parent row uniformly and copies the parent's columns, so the referenced
	// table's columns appear — correlated — in this table.
	FKs []FKSpec `json:"fks,omitempty"`
	// Correlated declares groups of this table's columns that are generated
	// jointly instead of independently. Each column may appear in at most one
	// group.
	Correlated []CorrelatedSpec `json:"correlated,omitempty"`
	// Padding appends machine-generated filler categoricals, for wide
	// operational schemas (the paper's SALES database had 245 columns) where
	// writing every column out by hand would drown the spec.
	Padding *PaddingSpec `json:"padding,omitempty"`
}

// FKSpec is one foreign-key reference.
type FKSpec struct {
	// Column names the generated FK column (fact tables only; inlined
	// dimension FKs do not materialise a column). Must not collide with any
	// declared column.
	Column string `json:"column,omitempty"`
	// References names the referenced table.
	References string `json:"references"`
}

// Column value types.
const (
	TypeString = "string"
	TypeInt    = "int"
	TypeFloat  = "float"
)

// ColumnSpec is one generated column.
type ColumnSpec struct {
	Name string `json:"name"`
	// Type is "string", "int" or "float".
	Type string `json:"type"`
	// Dist is the column's marginal distribution. Columns captured by a
	// correlated group still declare a Dist: it defines the column's value
	// domain, and for "fd" groups the determinant's Dist drives the draw.
	Dist DistSpec `json:"dist"`
}

// Distribution kinds.
const (
	DistZipf      = "zipf"
	DistUniform   = "uniform"
	DistWeighted  = "weighted"
	DistNormal    = "normal"
	DistLogNormal = "lognormal"
)

// DistSpec configures a column distribution. Which fields apply depends on
// Kind:
//
//   - "zipf": Card distinct values with P(i) ∝ (i+1)^-Z. Optional TailMass
//     switches to the head-and-tail mixture real operational categoricals
//     have (a Zipf head carrying 1-TailMass of the mass, a thin geometric
//     tail over the rest). String and int columns.
//   - "uniform": Card distinct values, equal mass. String and int columns.
//   - "weighted": explicit Values with Weights (unnormalised). Any type.
//   - "normal": mean Mean, standard deviation Stddev. Int and float columns
//     (ints round).
//   - "lognormal": exp(Normal(Mu, Sigma)). Int and float columns.
type DistSpec struct {
	Kind string `json:"kind"`
	// Card is the number of distinct values for zipf/uniform. Values are
	// named "<column>_<i>" for string columns and are the integer i for int
	// columns, i in [0, Card).
	Card int `json:"card,omitempty"`
	// Z is the zipf skew; 0 is uniform.
	Z float64 `json:"z,omitempty"`
	// TailMass, when > 0, spreads that probability mass thinly across the
	// non-head values (zipf only).
	TailMass float64 `json:"tail_mass,omitempty"`
	// Values/Weights define a weighted distribution. Values are JSON
	// scalars matching the column type.
	Values  []any     `json:"values,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	// Mean/Stddev parameterise normal.
	Mean   float64 `json:"mean,omitempty"`
	Stddev float64 `json:"stddev,omitempty"`
	// Mu/Sigma parameterise lognormal.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// Correlated group kinds.
const (
	CorrFD    = "fd"
	CorrJoint = "joint"
)

// CorrelatedSpec declares columns generated jointly. Two kinds:
//
//   - "fd" (functional dependency): Determinant is drawn from its own Dist;
//     every other column's value is a fixed function of the determinant's
//     value (a deterministic seeded mapping from determinant domain to
//     dependent domain), e.g. city → region. Noise in [0, 1) makes the
//     dependency soft: with that probability a dependent column draws
//     independently instead.
//   - "joint": rows draw one of States (weighted); each state assigns every
//     column in the group a literal value. This expresses arbitrary joint
//     distributions, including ones whose marginals look independent while
//     the joint mass is concentrated — exactly the shape that breaks the
//     §4.4 independence assumption.
type CorrelatedSpec struct {
	Columns []string `json:"columns"`
	Kind    string   `json:"kind"`
	// Determinant is the driving column for "fd".
	Determinant string `json:"determinant,omitempty"`
	// Noise is the probability an "fd" dependent value breaks the dependency.
	Noise float64 `json:"noise,omitempty"`
	// States is the joint distribution for "joint": each state's Values align
	// with Columns.
	States []JointState `json:"states,omitempty"`
}

// JointState is one cell of a joint distribution.
type JointState struct {
	Weight float64 `json:"weight"`
	Values []any   `json:"values"`
}

// PaddingSpec appends Count generated string categoricals named
// "<table>_attr<NN>" with cardinalities cycled from Cards (a default palette
// when empty), drawn zipf(Z) with TailMass tail.
type PaddingSpec struct {
	Count    int     `json:"count"`
	Cards    []int   `json:"cards,omitempty"`
	Z        float64 `json:"z,omitempty"`
	TailMass float64 `json:"tail_mass,omitempty"`
}

// defaultPaddingCards is the cardinality palette padding cycles through,
// mirroring the hand-built SALES generator's mix.
var defaultPaddingCards = []int{2, 3, 5, 8, 12, 20, 35, 50, 80, 120, 300, 800, 2000}

// ParseSpec decodes and validates a spec from JSON. Unknown fields are
// rejected so a typo fails fast instead of silently generating the wrong
// database.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: bad spec JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the whole spec and returns the first problem found. It is
// called by ParseSpec; call it directly on specs built in code.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if len(s.Tables) == 0 {
		return fmt.Errorf("scenario: spec %q has no tables", s.Name)
	}
	tables := make(map[string]*TableSpec, len(s.Tables))
	factCount := 0
	for i := range s.Tables {
		t := &s.Tables[i]
		if t.Name == "" {
			return fmt.Errorf("scenario: table %d has no name", i)
		}
		if _, dup := tables[t.Name]; dup {
			return fmt.Errorf("scenario: duplicate table %q", t.Name)
		}
		tables[t.Name] = t
		if t.Fact {
			factCount++
		}
		if t.Rows < 1 {
			return fmt.Errorf("scenario: table %q: rows %d must be >= 1", t.Name, t.Rows)
		}
	}
	if factCount != 1 {
		return fmt.Errorf("scenario: spec %q needs exactly one fact table, has %d", s.Name, factCount)
	}

	// Column names must be unique across the spec: the engine's joined view
	// exposes every column by bare name.
	seenCols := map[string]string{}
	for i := range s.Tables {
		t := &s.Tables[i]
		if len(t.Columns) == 0 && t.Padding == nil {
			return fmt.Errorf("scenario: table %q has no columns", t.Name)
		}
		for j := range t.Columns {
			c := &t.Columns[j]
			if c.Name == "" {
				return fmt.Errorf("scenario: table %q column %d has no name", t.Name, j)
			}
			if prev, dup := seenCols[c.Name]; dup {
				return fmt.Errorf("scenario: column %q declared in both %q and %q (names must be unique across the spec)", c.Name, prev, t.Name)
			}
			seenCols[c.Name] = t.Name
			if err := c.validate(t.Name); err != nil {
				return err
			}
		}
		if p := t.Padding; p != nil {
			if p.Count < 0 {
				return fmt.Errorf("scenario: table %q: negative padding count %d", t.Name, p.Count)
			}
			for _, card := range p.Cards {
				if card < 1 {
					return fmt.Errorf("scenario: table %q: padding cardinality %d must be >= 1", t.Name, card)
				}
			}
			if p.Z < 0 || p.TailMass < 0 || p.TailMass >= 1 {
				return fmt.Errorf("scenario: table %q: bad padding z/tail_mass", t.Name)
			}
		}
		if err := t.validateCorrelated(); err != nil {
			return err
		}
	}

	// FK references resolve, fact FK columns don't collide, and the graph is
	// acyclic (generation needs a topological order).
	for i := range s.Tables {
		t := &s.Tables[i]
		for _, fk := range t.FKs {
			ref, ok := tables[fk.References]
			if !ok {
				return fmt.Errorf("scenario: table %q references unknown table %q", t.Name, fk.References)
			}
			if fk.References == t.Name {
				return fmt.Errorf("scenario: table %q references itself", t.Name)
			}
			if ref.Fact {
				return fmt.Errorf("scenario: table %q references the fact table %q", t.Name, fk.References)
			}
			if t.Fact {
				if fk.Column == "" {
					return fmt.Errorf("scenario: fact table %q FK to %q needs a column name", t.Name, fk.References)
				}
				if prev, dup := seenCols[fk.Column]; dup {
					return fmt.Errorf("scenario: FK column %q collides with column of %q", fk.Column, prev)
				}
				seenCols[fk.Column] = t.Name
			} else if fk.Column != "" {
				return fmt.Errorf("scenario: table %q: only fact-table FKs name a column (dimension FKs inline the referenced table)", t.Name)
			}
		}
	}
	if _, err := s.topoOrder(); err != nil {
		return err
	}

	// A table inlined into a dimension must not also be a direct dimension of
	// the fact table: its columns would appear twice in the view.
	var fact *TableSpec
	for i := range s.Tables {
		if s.Tables[i].Fact {
			fact = &s.Tables[i]
		}
	}
	factRefs := map[string]bool{}
	for _, fk := range fact.FKs {
		if factRefs[fk.References] {
			return fmt.Errorf("scenario: fact table references %q twice", fk.References)
		}
		factRefs[fk.References] = true
	}
	referenced := map[string]bool{}
	for i := range s.Tables {
		t := &s.Tables[i]
		for _, fk := range t.FKs {
			if !t.Fact && factRefs[fk.References] {
				return fmt.Errorf("scenario: table %q is both a fact dimension and inlined into %q; its columns would appear twice", fk.References, t.Name)
			}
			referenced[fk.References] = true
		}
	}
	// Every non-fact table must be referenced by something: with an acyclic
	// graph that guarantees its columns reach the fact view (directly as a
	// dimension or transitively inlined) instead of silently vanishing.
	for i := range s.Tables {
		t := &s.Tables[i]
		if !t.Fact && !referenced[t.Name] {
			return fmt.Errorf("scenario: table %q is referenced by nothing; its columns would never reach the database", t.Name)
		}
	}
	return nil
}

// validate checks one column spec.
func (c *ColumnSpec) validate(table string) error {
	where := fmt.Sprintf("scenario: table %q column %q", table, c.Name)
	switch c.Type {
	case TypeString, TypeInt, TypeFloat:
	default:
		return fmt.Errorf("%s: unknown type %q (want string, int or float)", where, c.Type)
	}
	d := &c.Dist
	switch d.Kind {
	case DistZipf:
		if c.Type == TypeFloat {
			return fmt.Errorf("%s: zipf needs a string or int column", where)
		}
		if d.Card < 1 {
			return fmt.Errorf("%s: zipf needs card >= 1, got %d", where, d.Card)
		}
		if d.Z < 0 {
			return fmt.Errorf("%s: zipf z %g must be >= 0", where, d.Z)
		}
		if d.TailMass < 0 || d.TailMass >= 1 {
			return fmt.Errorf("%s: tail_mass %g must be in [0, 1)", where, d.TailMass)
		}
	case DistUniform:
		if c.Type == TypeFloat {
			return fmt.Errorf("%s: uniform needs a string or int column", where)
		}
		if d.Card < 1 {
			return fmt.Errorf("%s: uniform needs card >= 1, got %d", where, d.Card)
		}
	case DistWeighted:
		if len(d.Values) == 0 {
			return fmt.Errorf("%s: weighted needs values", where)
		}
		if len(d.Weights) != len(d.Values) {
			return fmt.Errorf("%s: weighted has %d values but %d weights", where, len(d.Values), len(d.Weights))
		}
		for _, w := range d.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("%s: bad weight %g", where, w)
			}
		}
		for i, v := range d.Values {
			if _, err := coerce(v, c.Type); err != nil {
				return fmt.Errorf("%s: value %d: %v", where, i, err)
			}
		}
	case DistNormal:
		if c.Type == TypeString {
			return fmt.Errorf("%s: normal needs an int or float column", where)
		}
		if d.Stddev < 0 {
			return fmt.Errorf("%s: normal stddev %g must be >= 0", where, d.Stddev)
		}
	case DistLogNormal:
		if c.Type == TypeString {
			return fmt.Errorf("%s: lognormal needs an int or float column", where)
		}
		if d.Sigma < 0 {
			return fmt.Errorf("%s: lognormal sigma %g must be >= 0", where, d.Sigma)
		}
	case "":
		return fmt.Errorf("%s: missing distribution kind", where)
	default:
		return fmt.Errorf("%s: unknown distribution %q (want zipf, uniform, weighted, normal or lognormal)", where, d.Kind)
	}
	return nil
}

// cardinality returns the size of a categorical distribution's value domain,
// or 0 for continuous distributions.
func (d *DistSpec) cardinality() int {
	switch d.Kind {
	case DistZipf, DistUniform:
		return d.Card
	case DistWeighted:
		return len(d.Values)
	}
	return 0
}

// validateCorrelated checks the table's correlated groups against its
// declared columns.
func (t *TableSpec) validateCorrelated() error {
	cols := make(map[string]*ColumnSpec, len(t.Columns))
	for i := range t.Columns {
		cols[t.Columns[i].Name] = &t.Columns[i]
	}
	grouped := map[string]bool{}
	for gi := range t.Correlated {
		g := &t.Correlated[gi]
		where := fmt.Sprintf("scenario: table %q correlated group %d", t.Name, gi)
		if len(g.Columns) < 2 {
			return fmt.Errorf("%s: needs at least 2 columns", where)
		}
		for _, cn := range g.Columns {
			if _, ok := cols[cn]; !ok {
				return fmt.Errorf("%s: references missing column %q", where, cn)
			}
			if grouped[cn] {
				return fmt.Errorf("%s: column %q already belongs to another correlated group", where, cn)
			}
			grouped[cn] = true
		}
		switch g.Kind {
		case CorrFD:
			if g.Determinant == "" {
				return fmt.Errorf("%s: fd group needs a determinant", where)
			}
			found := false
			for _, cn := range g.Columns {
				if cn == g.Determinant {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("%s: determinant %q is not in the group", where, g.Determinant)
			}
			if g.Noise < 0 || g.Noise >= 1 {
				return fmt.Errorf("%s: noise %g must be in [0, 1)", where, g.Noise)
			}
			for _, cn := range g.Columns {
				if cols[cn].Dist.cardinality() < 1 {
					return fmt.Errorf("%s: column %q needs a categorical distribution (zipf, uniform or weighted) to participate in an fd group", where, cn)
				}
			}
			if len(g.States) > 0 {
				return fmt.Errorf("%s: fd group does not take states", where)
			}
		case CorrJoint:
			if len(g.States) == 0 {
				return fmt.Errorf("%s: joint group needs states", where)
			}
			if g.Determinant != "" || g.Noise != 0 {
				return fmt.Errorf("%s: joint group does not take determinant/noise", where)
			}
			total := 0.0
			for si, st := range g.States {
				if st.Weight <= 0 || math.IsNaN(st.Weight) || math.IsInf(st.Weight, 0) {
					return fmt.Errorf("%s: state %d weight %g must be positive", where, si, st.Weight)
				}
				total += st.Weight
				if len(st.Values) != len(g.Columns) {
					return fmt.Errorf("%s: state %d has %d values for %d columns", where, si, len(st.Values), len(g.Columns))
				}
				for vi, v := range st.Values {
					if _, err := coerce(v, cols[g.Columns[vi]].Type); err != nil {
						return fmt.Errorf("%s: state %d column %q: %v", where, si, g.Columns[vi], err)
					}
				}
			}
			if total <= 0 {
				return fmt.Errorf("%s: zero total state weight", where)
			}
		case "":
			return fmt.Errorf("%s: missing kind", where)
		default:
			return fmt.Errorf("%s: unknown kind %q (want fd or joint)", where, g.Kind)
		}
	}
	return nil
}

// topoOrder returns the spec's tables in generation order: every table after
// the tables it references. A cycle in the FK graph is an error.
func (s *Spec) topoOrder() ([]*TableSpec, error) {
	byName := make(map[string]*TableSpec, len(s.Tables))
	indeg := make(map[string]int, len(s.Tables))
	dependents := make(map[string][]string, len(s.Tables))
	for i := range s.Tables {
		t := &s.Tables[i]
		byName[t.Name] = t
		indeg[t.Name] = 0
	}
	for i := range s.Tables {
		t := &s.Tables[i]
		for _, fk := range t.FKs {
			if _, ok := byName[fk.References]; !ok {
				return nil, fmt.Errorf("scenario: table %q references unknown table %q", t.Name, fk.References)
			}
			indeg[t.Name]++
			dependents[fk.References] = append(dependents[fk.References], t.Name)
		}
	}
	// Deterministic Kahn: ready tables processed in name order.
	var ready []string
	for name, d := range indeg {
		if d == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	var order []*TableSpec
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		order = append(order, byName[name])
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
				sort.Strings(ready)
			}
		}
	}
	if len(order) != len(s.Tables) {
		var stuck []string
		for name, d := range indeg {
			if d > 0 {
				stuck = append(stuck, name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("scenario: FK cycle among tables %s", strings.Join(stuck, ", "))
	}
	return order, nil
}

// factTable returns the spec's fact table. Valid specs have exactly one.
func (s *Spec) factTable() *TableSpec {
	for i := range s.Tables {
		if s.Tables[i].Fact {
			return &s.Tables[i]
		}
	}
	return nil
}

// FactTable returns a pointer to the spec's fact table, or nil if the spec
// does not declare one. Callers may mutate it (e.g. row-count overrides)
// before Generate.
func (s *Spec) FactTable() *TableSpec { return s.factTable() }
