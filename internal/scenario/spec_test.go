package scenario

import (
	"strings"
	"testing"
)

// minimalSpec returns a small valid spec the error tests mutate.
func minimalSpec() *Spec {
	return &Spec{
		Name: "T",
		Tables: []TableSpec{
			{
				Name: "fact",
				Fact: true,
				Rows: 100,
				Columns: []ColumnSpec{
					{Name: "cat", Type: TypeString, Dist: DistSpec{Kind: DistZipf, Card: 10, Z: 1}},
					{Name: "amount", Type: TypeFloat, Dist: DistSpec{Kind: DistLogNormal, Mu: 3, Sigma: 1}},
				},
			},
		},
	}
}

func TestValidateAcceptsMinimalSpec(t *testing.T) {
	if err := minimalSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

// expectErr validates the spec and requires an error mentioning want.
func expectErr(t *testing.T, s *Spec, want string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("spec validated; want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestValidateUnknownDistribution(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Columns[0].Dist = DistSpec{Kind: "pareto", Card: 10}
	expectErr(t, s, "unknown distribution")
}

func TestValidateMissingDistribution(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Columns[0].Dist = DistSpec{}
	expectErr(t, s, "missing distribution kind")
}

func TestValidateFKCycle(t *testing.T) {
	s := minimalSpec()
	s.Tables = append(s.Tables,
		TableSpec{Name: "a", Rows: 10,
			Columns: []ColumnSpec{{Name: "ac", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 3}}},
			FKs:     []FKSpec{{References: "b"}}},
		TableSpec{Name: "b", Rows: 10,
			Columns: []ColumnSpec{{Name: "bc", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 3}}},
			FKs:     []FKSpec{{References: "a"}}},
	)
	s.Tables[0].FKs = []FKSpec{{Column: "a_fk", References: "a"}}
	expectErr(t, s, "FK cycle")
}

func TestValidateUnknownFKReference(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].FKs = []FKSpec{{Column: "x_fk", References: "nope"}}
	expectErr(t, s, "unknown table")
}

func TestValidateCorrelatedMissingColumn(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Correlated = []CorrelatedSpec{
		{Columns: []string{"cat", "ghost"}, Kind: CorrFD, Determinant: "cat"},
	}
	expectErr(t, s, "missing column")
}

func TestValidateCorrelatedDeterminantOutsideGroup(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Columns = append(s.Tables[0].Columns,
		ColumnSpec{Name: "cat2", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 4}},
		ColumnSpec{Name: "cat3", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 4}})
	s.Tables[0].Correlated = []CorrelatedSpec{
		{Columns: []string{"cat2", "cat3"}, Kind: CorrFD, Determinant: "cat"},
	}
	expectErr(t, s, "not in the group")
}

func TestValidateJointStateArity(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Columns = append(s.Tables[0].Columns,
		ColumnSpec{Name: "pay", Type: TypeString, Dist: DistSpec{Kind: DistWeighted, Values: []any{"a", "b"}, Weights: []float64{1, 1}}},
		ColumnSpec{Name: "chan", Type: TypeString, Dist: DistSpec{Kind: DistWeighted, Values: []any{"x", "y"}, Weights: []float64{1, 1}}})
	s.Tables[0].Correlated = []CorrelatedSpec{
		{Columns: []string{"pay", "chan"}, Kind: CorrJoint, States: []JointState{{Weight: 1, Values: []any{"a"}}}},
	}
	expectErr(t, s, "has 1 values for 2 columns")
}

func TestValidateJointStateTypeMismatch(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Columns = append(s.Tables[0].Columns,
		ColumnSpec{Name: "pay", Type: TypeString, Dist: DistSpec{Kind: DistWeighted, Values: []any{"a"}, Weights: []float64{1}}},
		ColumnSpec{Name: "n", Type: TypeInt, Dist: DistSpec{Kind: DistUniform, Card: 3}})
	s.Tables[0].Correlated = []CorrelatedSpec{
		{Columns: []string{"pay", "n"}, Kind: CorrJoint, States: []JointState{{Weight: 1, Values: []any{"a", "not-an-int"}}}},
	}
	expectErr(t, s, "want an integer")
}

func TestValidateColumnInTwoGroups(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].Columns = append(s.Tables[0].Columns,
		ColumnSpec{Name: "a", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 3}},
		ColumnSpec{Name: "b", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 3}})
	s.Tables[0].Correlated = []CorrelatedSpec{
		{Columns: []string{"a", "b"}, Kind: CorrFD, Determinant: "a"},
		{Columns: []string{"b", "cat"}, Kind: CorrFD, Determinant: "cat"},
	}
	expectErr(t, s, "already belongs")
}

func TestValidateTwoFactTables(t *testing.T) {
	s := minimalSpec()
	s.Tables = append(s.Tables, TableSpec{Name: "fact2", Fact: true, Rows: 10,
		Columns: []ColumnSpec{{Name: "z", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 2}}}})
	expectErr(t, s, "exactly one fact table")
}

func TestValidateDuplicateColumnAcrossTables(t *testing.T) {
	s := minimalSpec()
	s.Tables[0].FKs = []FKSpec{{Column: "d_fk", References: "dim"}}
	s.Tables = append(s.Tables, TableSpec{Name: "dim", Rows: 10,
		Columns: []ColumnSpec{{Name: "cat", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 2}}}})
	expectErr(t, s, "declared in both")
}

func TestValidateUnreferencedTable(t *testing.T) {
	s := minimalSpec()
	s.Tables = append(s.Tables, TableSpec{Name: "orphan", Rows: 10,
		Columns: []ColumnSpec{{Name: "oc", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 2}}}})
	expectErr(t, s, "referenced by nothing")
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"name":"x","tables":[],"bogus":1}`))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v; want unknown-field rejection", err)
	}
}

func TestTopoOrderSnowflake(t *testing.T) {
	s := &Spec{
		Name: "SNOW",
		Tables: []TableSpec{
			{Name: "fact", Fact: true, Rows: 10,
				Columns: []ColumnSpec{{Name: "m", Type: TypeFloat, Dist: DistSpec{Kind: DistNormal, Mean: 1, Stddev: 0.1}}},
				FKs:     []FKSpec{{Column: "city_fk", References: "city"}}},
			{Name: "city", Rows: 10,
				Columns: []ColumnSpec{{Name: "city_name", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 5}}},
				FKs:     []FKSpec{{References: "region"}}},
			{Name: "region", Rows: 4,
				Columns: []ColumnSpec{{Name: "region_name", Type: TypeString, Dist: DistSpec{Kind: DistUniform, Card: 4}}}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := s.topoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, tt := range order {
		pos[tt.Name] = i
	}
	if !(pos["region"] < pos["city"] && pos["city"] < pos["fact"]) {
		var names []string
		for _, tt := range order {
			names = append(names, tt.Name)
		}
		t.Fatalf("topo order %v; want region before city before fact", names)
	}
}
