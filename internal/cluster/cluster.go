// Package cluster is the scatter-gather tier over shard-mode aqpd servers.
//
// A shard is an ordinary aqpd process serving one contiguous stripe of the
// fact table (see Stripe) with Config.Shards set, which makes its /v1
// surface additionally answer raw (merge-ready accumulator) queries and
// expose GET /shard, a join summary. The coordinator speaks only that public
// wire surface: it partitions nothing itself, fans each query out to every
// shard whose summary cannot prove irrelevance, and re-merges the partial
// per-group accumulators with engine.Result.Merge — the same combination
// step a single process uses across its UNION ALL plan, so the merged
// estimates and confidence intervals are identical to the single-node answer
// when every shard contributes.
//
// The robustness model, in order of escalation:
//
//   - per-shard deadlines derived from the request's time bound and the
//     shard's registered scan rate;
//   - hedged requests: a duplicate attempt after the shard's recent p95
//     latency, first success wins;
//   - bounded retries with jittered doubling backoff on transient failures
//     (transport errors, 5xx, truncated bodies);
//   - a per-shard circuit breaker that trips after consecutive attempt
//     failures and re-admits via half-open probes of the join endpoint, so a
//     restarted shard rejoins — with fresh summary statistics — without a
//     coordinator restart;
//   - graceful degradation: when shards are down, /query answers from the
//     survivors with "partial": true, the missing shard ids, and error
//     bounds widened by the missing data fraction (core.WidenError). /exact
//     refuses to degrade — an exact answer with holes would be a lie — and
//     returns 503 instead.
//
// The import direction is strictly cluster → server/core/engine: the server
// knows nothing of the topology, and a shard cannot accidentally depend on
// its coordinator.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynsample/internal/engine"
)

// CodeShardUnavailable is the error envelope code for answers the cluster
// cannot give because too many shards are unreachable. It rides the standard
// ErrorResponse envelope with a Retry-After, like single-node overload.
const CodeShardUnavailable = "shard_unavailable"

// Config tunes the coordinator. The zero value is completed by New with the
// defaults documented per field.
type Config struct {
	// ShardAddrs are the shard base URLs, in shard-id order: ShardAddrs[i]
	// must be the server started with -shard-id i. Required.
	ShardAddrs []string
	// DefaultTimeout bounds a whole coordinator request (all retries and
	// hedges included) unless the request carries its own timeout_ms. Zero
	// means no default deadline.
	DefaultTimeout time.Duration
	// PerTryTimeout caps one attempt against one shard (default 10s); the
	// effective deadline is usually tighter, derived from the shard's scan
	// rate and the request's time bound (see shard.perTryTimeout).
	PerTryTimeout time.Duration
	// PerTryFloor is the minimum per-attempt deadline (default 100ms), so an
	// aggressive time bound cannot starve attempts into false failures.
	PerTryFloor time.Duration
	// Retries is how many times a failed shard sub-request is retried
	// (default 2, i.e. up to 3 attempts).
	Retries int
	// RetryBackoff is the initial retry backoff, jittered over [d/2, d] and
	// doubled per retry (default 25ms).
	RetryBackoff time.Duration
	// HedgeAfterMin floors the hedge delay (default 10ms) so a consistently
	// fast shard is not duplicated on scheduling noise.
	HedgeAfterMin time.Duration
	// BreakerThreshold is how many consecutive failed attempts trip a
	// shard's breaker (default 3).
	BreakerThreshold int
	// ProbeBackoff and ProbeBackoffMax shape the tripped breaker's re-probe
	// schedule: jittered doubling from the first to the second (defaults
	// 500ms and 30s).
	ProbeBackoff    time.Duration
	ProbeBackoffMax time.Duration
	// ProbeTimeout bounds one half-open probe (default 2s).
	ProbeTimeout time.Duration
	// RetryAfter is the Retry-After hint on shard_unavailable 503s; zero
	// means 1s. Jittered like the single-node server's.
	RetryAfter time.Duration
	// Client is the HTTP client for shard traffic; nil means a dedicated
	// client with sane connection pooling.
	Client *http.Client
}

func (cfg *Config) applyDefaults() {
	if cfg.PerTryTimeout <= 0 {
		cfg.PerTryTimeout = 10 * time.Second
	}
	if cfg.PerTryFloor <= 0 {
		cfg.PerTryFloor = 100 * time.Millisecond
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.HedgeAfterMin <= 0 {
		cfg.HedgeAfterMin = 10 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = 500 * time.Millisecond
	}
	if cfg.ProbeBackoffMax <= 0 {
		cfg.ProbeBackoffMax = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
		}}
	}
}

// Coordinator fans queries out to the cluster's shards and merges their raw
// partial results. Construct with New, admit shards with Join, serve
// Handler. Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	client *http.Client
	shards []*shard
	// schema is the zero-row database compiled queries are validated and
	// pruned against, built from the first joined shard's GET /columns
	// (every shard serves the same view schema, only different rows).
	schema atomic.Pointer[engine.Database]
}

// New builds a coordinator over the configured shard addresses. No network
// traffic happens yet; call Join.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.ShardAddrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses configured")
	}
	cfg.applyDefaults()
	c := &Coordinator{cfg: cfg, client: cfg.Client}
	for i, addr := range cfg.ShardAddrs {
		c.shards = append(c.shards, newShard(c, i, addr))
	}
	return c, nil
}

// Join registers every reachable shard: fetches its summary statistics and,
// from the first success, the cluster schema. Shards that fail to join have
// their breakers force-opened so the normal half-open probe loop keeps
// trying to admit them — the coordinator starts degraded rather than not at
// all. Returns how many shards joined; zero is not an error (the cluster
// self-heals), but the caller may want to log loudly.
func (c *Coordinator) Join(ctx context.Context) int {
	var wg sync.WaitGroup
	var joinedCount atomic.Int32
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			st, err := sh.fetchSummary(ctx)
			if err == nil {
				sh.setSummary(st)
				err = c.ensureSchema(ctx, sh)
			}
			if err != nil {
				sh.noteErr(err)
				sh.br.Open()
				return
			}
			joinedCount.Add(1)
		}(sh)
	}
	wg.Wait()
	return int(joinedCount.Load())
}

// ensureSchema builds the coordinator's zero-row schema database from a
// joined shard's GET /columns, once.
func (c *Coordinator) ensureSchema(ctx context.Context, sh *shard) error {
	if c.schema.Load() != nil {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.addr+"/v1/columns", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %d: GET /columns: HTTP %d", sh.id, resp.StatusCode)
	}
	var cols struct {
		Database string            `json:"database"`
		Columns  []string          `json:"columns"`
		Types    map[string]string `json:"types"`
	}
	if err := json.Unmarshal(data, &cols); err != nil {
		return fmt.Errorf("shard %d: bad columns response: %w", sh.id, err)
	}
	if cols.Database == "" || len(cols.Columns) == 0 {
		return fmt.Errorf("shard %d: empty schema", sh.id)
	}
	var ecols []*engine.Column
	for _, name := range cols.Columns {
		t, err := parseType(cols.Types[name])
		if err != nil {
			return fmt.Errorf("shard %d: column %q: %w", sh.id, name, err)
		}
		ecols = append(ecols, engine.NewColumn(name, t))
	}
	db, err := engine.NewDatabase(cols.Database, engine.NewTable(cols.Database+"_schema", ecols...))
	if err != nil {
		return err
	}
	c.schema.CompareAndSwap(nil, db)
	return nil
}

func parseType(s string) (engine.Type, error) {
	switch s {
	case engine.Int.String():
		return engine.Int, nil
	case engine.Float.String():
		return engine.Float, nil
	case engine.String.String():
		return engine.String, nil
	default:
		return 0, fmt.Errorf("unknown column type %q", s)
	}
}

// ProbeAll probes every non-closed breaker now, concurrently, and returns
// the resulting state per shard id. This is the deterministic re-admission
// path (POST /admin/probe): an operator who just restarted a shard need not
// wait out the probe backoff.
func (c *Coordinator) ProbeAll() map[int]string {
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		if sh.br.State() == breakerClosed {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.br.ProbeNow()
		}(sh)
	}
	wg.Wait()
	out := make(map[int]string, len(c.shards))
	for _, sh := range c.shards {
		out[sh.id] = sh.br.State().String()
	}
	return out
}

// Close stops the breakers' probe loops. In-flight requests finish.
func (c *Coordinator) Close() {
	for _, sh := range c.shards {
		sh.br.Shutdown()
	}
}

// missingFraction estimates what fraction of the cluster's rows the missing
// shards hold, from the summaries registered at join. A missing shard that
// never joined has no summary; stripes are near-equal by construction, so it
// is charged the mean of the known partitions (or an equal 1/n share when
// nothing is known). The fraction feeds core.WidenError, so overestimating
// is safe (looser bound), underestimating is not.
func missingFraction(contributing, missing []*shard) float64 {
	if len(missing) == 0 {
		return 0
	}
	var knownRows int64
	known := 0
	for _, sh := range append(append([]*shard{}, contributing...), missing...) {
		if st := sh.summary(); st != nil {
			knownRows += st.Rows
			known++
		}
	}
	mean := 1.0
	if known > 0 {
		mean = float64(knownRows) / float64(known)
	}
	rows := func(sh *shard) float64 {
		if st := sh.summary(); st != nil {
			return float64(st.Rows)
		}
		return mean
	}
	var miss, total float64
	for _, sh := range contributing {
		total += rows(sh)
	}
	for _, sh := range missing {
		miss += rows(sh)
		total += rows(sh)
	}
	if total <= 0 {
		return 1
	}
	return miss / total
}

// shardIDs lists the ids of shs, ascending.
func shardIDs(shs []*shard) []int {
	ids := make([]int, 0, len(shs))
	for _, sh := range shs {
		ids = append(ids, sh.id)
	}
	sort.Ints(ids)
	return ids
}
