package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestBreaker builds a breaker with a controllable probe and fast timing.
func newTestBreaker(probe func() error) *breaker {
	if probe == nil {
		probe = func() error { return errors.New("probe not expected") }
	}
	return newBreaker(3, 5*time.Millisecond, 20*time.Millisecond, probe, nil)
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := newTestBreaker(func() error { return errors.New("still down") })
	defer b.Shutdown()
	if !b.Allow() {
		t.Fatal("new breaker must start closed")
	}
	b.OnFailure()
	b.OnFailure()
	if !b.Allow() {
		t.Fatal("breaker tripped before the threshold")
	}
	b.OnFailure()
	if b.Allow() {
		t.Fatal("breaker did not trip at the threshold")
	}
	if s := b.State(); s != breakerOpen && s != breakerHalfOpen {
		t.Fatalf("state after trip = %v", s)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := newTestBreaker(nil)
	defer b.Shutdown()
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if !b.Allow() {
		t.Fatal("non-consecutive failures must not trip the breaker")
	}
	b.OnFailure()
	if b.Allow() {
		t.Fatal("third consecutive failure must trip")
	}
}

func TestBreakerProbeNowRecovers(t *testing.T) {
	var healthy atomic.Bool
	b := newTestBreaker(func() error {
		if healthy.Load() {
			return nil
		}
		return errors.New("still down")
	})
	defer b.Shutdown()
	b.Open()
	if err := b.ProbeNow(); err == nil {
		t.Fatal("probe of a down shard must fail")
	}
	if b.Allow() {
		t.Fatal("failed probe must leave the breaker open")
	}
	healthy.Store(true)
	if err := b.ProbeNow(); err != nil {
		t.Fatalf("probe of a healthy shard failed: %v", err)
	}
	if !b.Allow() || b.State() != breakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestBreakerHalfOpenDuringProbe(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	b := newTestBreaker(func() error {
		close(started)
		<-release
		return nil
	})
	defer b.Shutdown()
	// Open without starting the background loop racing our manual probe:
	// trip via failures, then immediately shut the loop down before its
	// first (5ms-jittered) probe can fire... simpler: use a long backoff.
	b.backoff, b.backoffMax = time.Hour, time.Hour
	b.Open()
	done := make(chan error, 1)
	go func() { done <- b.ProbeNow() }()
	<-started
	if s := b.State(); s != breakerHalfOpen {
		t.Errorf("state during probe = %v, want half-open", s)
	}
	if b.Allow() {
		t.Error("half-open breaker must not admit regular traffic")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if b.State() != breakerClosed {
		t.Fatal("breaker did not close after the released probe")
	}
}

// TestBreakerProbeLoopReadmits proves the background loop re-closes a
// tripped breaker on its own once the probe starts succeeding — the
// self-healing path that needs no operator and no coordinator restart.
func TestBreakerProbeLoopReadmits(t *testing.T) {
	var calls atomic.Int64
	b := newTestBreaker(func() error {
		if calls.Add(1) < 3 {
			return errors.New("still down")
		}
		return nil
	})
	defer b.Shutdown()
	b.Open()
	deadline := time.Now().Add(5 * time.Second)
	for b.State() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed; %d probes ran", calls.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if calls.Load() < 3 {
		t.Errorf("closed after %d probes, want at least 3", calls.Load())
	}
}

func TestBreakerStateCallbacks(t *testing.T) {
	var mu sync.Mutex
	var seen []breakerState
	b := newBreaker(1, time.Hour, time.Hour, func() error { return nil },
		func(s breakerState) {
			mu.Lock()
			seen = append(seen, s)
			mu.Unlock()
		})
	defer b.Shutdown()
	b.OnFailure() // threshold 1: trips
	b.ProbeNow()  // half-open then closed
	mu.Lock()
	defer mu.Unlock()
	want := []breakerState{breakerClosed, breakerOpen, breakerHalfOpen, breakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("state sequence = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("state sequence = %v, want %v", seen, want)
		}
	}
}

func TestBreakerShutdownIsIdempotent(t *testing.T) {
	b := newTestBreaker(func() error { return errors.New("down") })
	b.Open()
	b.Shutdown()
	b.Shutdown() // must not panic on double close
}

func TestJitterEnvelope(t *testing.T) {
	for _, d := range []time.Duration{10 * time.Millisecond, time.Second} {
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			got := jitter(d)
			if got < d/2 || got > d {
				t.Fatalf("jitter(%v) = %v, want in [%v, %v]", d, got, d/2, d)
			}
			seen[got] = true
		}
		if len(seen) < 2 {
			t.Errorf("jitter(%v) produced no variation over 200 draws", d)
		}
	}
	for _, d := range []time.Duration{0, 1, -3} {
		if got := jitter(d); got != d {
			t.Errorf("jitter(%v) = %v, want passthrough", d, got)
		}
	}
}
