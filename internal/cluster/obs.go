package cluster

import "dynsample/internal/obs"

// Cluster-tier metrics, served by the coordinator's GET /metrics. The shard
// label is the shard's numeric id, so a dashboard can tell which member of
// the fan-out is retrying, hedging, or tripped.
var (
	obsShardReqs = obs.Default().CounterVec("aqp_cluster_shard_requests_total",
		"Shard sub-requests by terminal status (ok, transient, fatal).",
		"shard", "status")
	obsShardRetries = obs.Default().CounterVec("aqp_cluster_shard_retries_total",
		"Bounded retries of shard sub-requests after transient failures.",
		"shard")
	obsShardHedges = obs.Default().CounterVec("aqp_cluster_shard_hedges_total",
		"Hedged (duplicate) shard sub-requests launched after the latency percentile.",
		"shard")
	obsShardLatency = obs.Default().HistogramVec("aqp_cluster_shard_latency_seconds",
		"Latency of completed shard sub-requests.",
		nil, "shard")
	obsBreakerState = obs.Default().GaugeVec("aqp_cluster_breaker_state",
		"Per-shard circuit breaker position: 0 closed, 1 open, 2 half-open.",
		"shard")
	obsProbes = obs.Default().CounterVec("aqp_cluster_probes_total",
		"Half-open breaker probes by outcome (ok, error).",
		"shard", "status")
	obsPartial = obs.Default().Counter("aqp_cluster_partial_answers_total",
		"Answers served from a strict subset of shards (partial: true).")
	obsPruned = obs.Default().Counter("aqp_cluster_shards_pruned_total",
		"Shards skipped because their summary value sets excluded the query's predicate.")
	obsQueries = obs.Default().CounterVec("aqp_cluster_queries_total",
		"Coordinator requests by endpoint and terminal status.",
		"endpoint", "status")
)
