package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/obs"
	"dynsample/internal/server"
	"dynsample/internal/sqlparse"
	"dynsample/internal/stats"
)

// Handler returns the coordinator's routes: the same /v1 + legacy client
// surface as a single-node server for /query, /exact and /columns (a client
// should not need to know it is talking to a cluster), plus the
// cluster-specific GET /shards and POST /admin/probe. Wrapped in the
// server's request-ID and panic-recovery middleware so both tiers share one
// envelope discipline.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	versioned := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
	}
	versioned("POST /query", c.handleQuery)
	versioned("POST /exact", c.handleExact)
	versioned("GET /columns", c.handleColumns)
	versioned("GET /shards", c.handleShards)
	versioned("POST /admin/probe", c.handleProbe)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		server.WriteError(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Errorf("no route for %s %s", r.Method, r.URL.Path))
	})
	return server.Wrap(mux)
}

// compileRequest decodes and validates one client request against the
// cluster schema. Numeric bound validation is left to the shards (their
// envelopes are relayed verbatim on fatal errors), but parse/compile errors
// fail here, before any fan-out. Returns nil compiled after writing the
// error; label is the metrics status in that case.
func (c *Coordinator) compileRequest(w http.ResponseWriter, r *http.Request) (*sqlparse.Compiled, *server.QueryRequest, string) {
	schema := c.schema.Load()
	if schema == nil {
		c.unavailable(w, fmt.Errorf("no shard has joined yet; cluster schema unknown"))
		return nil, nil, "unavailable"
	}
	var req server.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Errorf("bad request body: %w", err))
		return nil, nil, "bad_request"
	}
	if req.Raw {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Errorf("raw responses are shard-internal; the coordinator returns presented groups"))
		return nil, nil, "bad_request"
	}
	if strings.TrimSpace(req.SQL) == "" {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Errorf("empty sql"))
		return nil, nil, "bad_request"
	}
	stmt, err := sqlparse.Parse(strings.TrimSuffix(strings.TrimSpace(req.SQL), ";"))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err)
		return nil, nil, "bad_request"
	}
	compiled, err := sqlparse.Compile(stmt, schema)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, err)
		return nil, nil, "bad_request"
	}
	return compiled, &req, ""
}

// unavailable writes the 503 + jittered Retry-After the cluster emits when
// it cannot answer at all.
func (c *Coordinator) unavailable(w http.ResponseWriter, err error) {
	secs := server.RetryAfterSecs(c.cfg.RetryAfter, time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	server.WriteErrorRetry(w, http.StatusServiceUnavailable, CodeShardUnavailable,
		int64(secs)*1000, err)
}

// relayShardError forwards a fatal shard envelope verbatim: the shard
// already said precisely what is wrong with the request (bad SQL, unknown
// column, unsatisfiable bounds with the best achievable figures), and every
// shard would say the same.
func relayShardError(w http.ResponseWriter, e *shardError) {
	if len(e.body) > 0 && json.Valid(e.body) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(e.status)
		w.Write(e.body)
		return
	}
	server.WriteError(w, e.status, server.CodeInternal, e)
}

// partition splits the cluster for one query: shards provably irrelevant to
// its predicates (pruned), shards whose breaker is open (skipped — they
// count as missing), and the fan-out targets.
func (c *Coordinator) partition(q *engine.Query) (targets, pruned, skipped []*shard) {
	for _, sh := range c.shards {
		switch {
		case prunable(q, sh.summary()):
			pruned = append(pruned, sh)
		case !sh.br.Allow():
			skipped = append(skipped, sh)
		default:
			targets = append(targets, sh)
		}
	}
	obsPruned.Add(uint64(len(pruned)))
	return targets, pruned, skipped
}

// prunable reports whether the shard's summary proves it holds no row
// matching q: some equality/IN predicate over a string column whose complete
// value set excludes every predicate value. MayContain errs toward true
// (truncated or absent summaries prove nothing), so pruning can only skip
// provably-empty work — pruned is never missing.
func prunable(q *engine.Query, st *core.ShardStats) bool {
	if st == nil {
		return false
	}
	for _, p := range q.Where {
		col, vals := equalityStrings(p)
		if len(vals) == 0 {
			continue
		}
		possible := false
		for _, v := range vals {
			if st.MayContain(col, v) {
				possible = true
				break
			}
		}
		if !possible {
			return true
		}
	}
	return false
}

// equalityStrings extracts the string value set of an equality or IN
// predicate; other predicate forms return nothing and are not pruned on.
func equalityStrings(p engine.Predicate) (string, []string) {
	switch t := p.(type) {
	case *engine.InPredicate:
		var out []string
		for _, v := range t.Values() {
			if v.T != engine.String {
				return "", nil
			}
			out = append(out, v.S)
		}
		return t.Col, out
	case *engine.CmpPredicate:
		if t.Op == engine.Eq && t.Val.T == engine.String {
			return t.Col, []string{t.Val.S}
		}
	}
	return "", nil
}

// fanOut runs one query against every target concurrently and returns the
// per-shard outcomes indexed by shard id.
func (c *Coordinator) fanOut(r *http.Request, path string, req *server.QueryRequest, targets []*shard, exact bool) ([]*rawAnswer, []error) {
	ctx := r.Context()
	timeout := c.cfg.DefaultTimeout
	if req.TimeoutMS != nil && *req.TimeoutMS > 0 {
		timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	answers := make([]*rawAnswer, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for _, sh := range targets {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			perTry := sh.perTryTimeout(req, exact)
			answers[sh.id], errs[sh.id] = sh.do(ctx, path, shardBody(req, perTry), perTry)
		}(sh)
	}
	wg.Wait()
	return answers, errs
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := "error"
	defer func() { obsQueries.With("query", status).Inc() }()
	compiled, req, label := c.compileRequest(w, r)
	if compiled == nil {
		status = label
		return
	}
	targets, pruned, skipped := c.partition(compiled.Query)
	answers, errs := c.fanOut(r, "/v1/query", req, targets, false)

	// A fatal error is a property of the request; relay the first one.
	for _, sh := range targets {
		if se, ok := errs[sh.id].(*shardError); ok && se.fatal() {
			status = "fatal"
			relayShardError(w, se)
			return
		}
	}
	var contributing, missing []*shard
	missing = append(missing, skipped...)
	for _, sh := range targets {
		if answers[sh.id] != nil {
			contributing = append(contributing, sh)
		} else {
			missing = append(missing, sh)
		}
	}
	if len(contributing) == 0 {
		status = "unavailable"
		c.unavailable(w, unavailableErr(missing, len(pruned)))
		return
	}
	merged, meta, err := mergeAnswers(contributing, answers)
	if err != nil {
		status = "error"
		server.WriteError(w, http.StatusInternalServerError, server.CodeInternal, err)
		return
	}
	partial := len(missing) > 0
	if partial {
		obsPartial.Inc()
		demoteExact(merged, compiled.Query.GroupBy, missing)
	}

	ivs := core.ConfidenceIntervals(merged, req.Confidence)
	achieved := core.AchievedError(merged, ivs)
	resp := server.QueryResponse{
		Columns:    outputNames(compiled),
		RowsRead:   meta.rowsRead,
		ElapsedUS:  time.Since(start).Microseconds(),
		Generation: meta.generation,
		Degraded:   meta.degraded,
		Plan:       meta.plan,
		Partial:    partial,
	}
	if partial {
		f := missingFraction(contributing, missing)
		achieved = core.WidenError(achieved, f)
		if meta.predicted != nil {
			p := core.WidenError(*meta.predicted, f)
			meta.predicted = &p
		}
		resp.MissingShards = shardIDs(missing)
		// A partial answer always states its (widened) realized error, even
		// on unbounded queries — the client must be able to see what the
		// holes cost.
		resp.Achieved = &achieved
	} else if meta.predicted != nil {
		resp.Achieved = &achieved
	}
	resp.Predicted = meta.predicted
	presentInto(&resp, compiled, merged, ivs, false)
	if partial {
		status = "partial"
	} else {
		status = "ok"
	}
	server.WriteJSON(w, resp)
}

func (c *Coordinator) handleExact(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := "error"
	defer func() { obsQueries.With("exact", status).Inc() }()
	compiled, req, label := c.compileRequest(w, r)
	if compiled == nil {
		status = label
		return
	}
	if req.ErrorBound != 0 || req.TimeBoundMS != 0 || req.Confidence != 0 {
		status = "bad_request"
		server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest,
			fmt.Errorf("error_bound/time_bound_ms/confidence apply to /query only; /exact always scans the base table"))
		return
	}
	targets, _, skipped := c.partition(compiled.Query)
	// Exact refuses to degrade: an exact answer computed over a subset of
	// the data would be silently wrong, which is worse than no answer.
	if len(skipped) > 0 {
		status = "unavailable"
		c.unavailable(w, fmt.Errorf("exact query needs every shard; shards %v are unavailable (circuit open)",
			shardIDs(skipped)))
		return
	}
	answers, errs := c.fanOut(r, "/v1/exact", req, targets, true)
	var failed []*shard
	for _, sh := range targets {
		if se, ok := errs[sh.id].(*shardError); ok && se.fatal() {
			status = "fatal"
			relayShardError(w, se)
			return
		}
		if answers[sh.id] == nil {
			failed = append(failed, sh)
		}
	}
	if len(failed) > 0 {
		status = "unavailable"
		c.unavailable(w, unavailableErr(failed, 0))
		return
	}
	merged, meta, err := mergeAnswers(targets, answers)
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, server.CodeInternal, err)
		return
	}
	resp := server.QueryResponse{
		Columns:    outputNames(compiled),
		RowsRead:   meta.rowsRead,
		ElapsedUS:  time.Since(start).Microseconds(),
		Generation: meta.generation,
	}
	presentInto(&resp, compiled, merged, nil, true)
	status = "ok"
	server.WriteJSON(w, resp)
}

// mergedMeta aggregates the scalar answer metadata across contributions.
type mergedMeta struct {
	rowsRead   int64
	generation uint64
	degraded   bool
	plan       string
	predicted  *float64
}

// mergeAnswers merges the contributing shards' results in ascending shard-id
// order (deterministic output) and folds their metadata: rows sum,
// generation is the minimum (the answer includes at least every batch up to
// it on every shard), degraded ORs, predicted error takes the conservative
// maximum, and plan is the shared name or "mixed".
func mergeAnswers(contributing []*shard, answers []*rawAnswer) (*engine.Result, mergedMeta, error) {
	var meta mergedMeta
	var merged *engine.Result
	maxPred := math.Inf(-1)
	for _, sh := range contributing {
		ans := answers[sh.id]
		if merged == nil {
			merged = ans.res
		} else if err := merged.Merge(ans.res); err != nil {
			return nil, meta, fmt.Errorf("merging shard %d: %w", sh.id, err)
		}
		meta.rowsRead += ans.raw.RowsRead
		meta.degraded = meta.degraded || ans.raw.Degraded
		if meta.generation == 0 || ans.raw.Generation < meta.generation {
			meta.generation = ans.raw.Generation
		}
		if ans.raw.Plan != "" {
			switch meta.plan {
			case "", ans.raw.Plan:
				meta.plan = ans.raw.Plan
			default:
				meta.plan = "mixed"
			}
		}
		if ans.raw.Predicted != nil && *ans.raw.Predicted > maxPred {
			maxPred = *ans.raw.Predicted
		}
	}
	if !math.IsInf(maxPred, -1) {
		meta.predicted = &maxPred
	}
	return merged, meta, nil
}

// demoteExact clears the Exact flag of any merged group a missing shard may
// still hold rows for: the surviving shards' exact small-group answer is no
// longer the whole truth. Only a missing shard whose complete value sets
// exclude the group's key values provably cannot contribute.
func demoteExact(res *engine.Result, groupBy []string, missing []*shard) {
	for _, g := range res.Groups() {
		if !g.Exact {
			continue
		}
		for _, sh := range missing {
			if shardMayHoldGroup(sh.summary(), groupBy, g.Key) {
				g.Exact = false
				break
			}
		}
	}
}

func shardMayHoldGroup(st *core.ShardStats, groupBy []string, key []engine.Value) bool {
	if st == nil {
		return true
	}
	for i, col := range groupBy {
		if i >= len(key) || key[i].T != engine.String {
			continue
		}
		if !st.MayContain(col, key[i].S) {
			return false
		}
	}
	return true
}

// presentInto renders the merged result into the client response exactly
// like a single-node server would, with intervals recomputed from the merged
// accumulators (intervals are not additive; accumulators are).
func presentInto(resp *server.QueryResponse, compiled *sqlparse.Compiled, merged *engine.Result,
	ivs map[engine.GroupKey][]stats.Interval, exact bool) {
	for _, g := range compiled.Present(merged) {
		key := engine.EncodeKey(g.Key)
		gj := server.GroupJSON{Exact: exact || g.Exact}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				v := g.Vals[o.AggIndex]
				gj.Values = append(gj.Values, v)
				if !exact {
					gj.CI = append(gj.CI, groupInterval(ivs, key, o.AggIndex, v))
				}
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
				if !exact {
					gj.CI = append(gj.CI, [2]float64{avg, avg})
				}
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
}

func groupInterval(ivs map[engine.GroupKey][]stats.Interval, key engine.GroupKey, agg int, v float64) [2]float64 {
	if group, ok := ivs[key]; ok && agg < len(group) {
		return [2]float64{group[agg].Lo, group[agg].Hi}
	}
	return [2]float64{v, v}
}

func unavailableErr(missing []*shard, pruned int) error {
	parts := make([]string, 0, len(missing))
	for _, sh := range missing {
		sh.mu.Lock()
		last := sh.lastErr
		sh.mu.Unlock()
		if last != nil {
			parts = append(parts, fmt.Sprintf("shard %d: %v", sh.id, last))
		} else {
			parts = append(parts, fmt.Sprintf("shard %d: circuit open", sh.id))
		}
	}
	if pruned > 0 {
		return fmt.Errorf("no shard available to answer (%d pruned as irrelevant): %s",
			pruned, strings.Join(parts, "; "))
	}
	return fmt.Errorf("no shard available to answer: %s", strings.Join(parts, "; "))
}

func outputNames(c *sqlparse.Compiled) []string {
	var names []string
	for _, o := range c.Outputs {
		names = append(names, o.Name)
	}
	return names
}

// ShardStatus is one entry of GET /shards and /healthz: the operator's view
// of a cluster member.
type ShardStatus struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Joined is true once the shard has ever registered a summary.
	Joined     bool   `json:"joined"`
	Rows       int64  `json:"rows,omitempty"`
	SampleRows int64  `json:"sample_rows,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	LastError  string `json:"last_error,omitempty"`
}

func (c *Coordinator) shardStatuses() []ShardStatus {
	out := make([]ShardStatus, 0, len(c.shards))
	for _, sh := range c.shards {
		sh.mu.Lock()
		st, lastErr := sh.stats, sh.lastErr
		sh.mu.Unlock()
		s := ShardStatus{
			ID:     sh.id,
			Addr:   sh.addr,
			State:  sh.br.State().String(),
			Joined: st != nil,
		}
		if st != nil {
			s.Rows, s.SampleRows, s.Generation = st.Rows, st.SampleRows, st.Generation
		}
		if lastErr != nil {
			s.LastError = lastErr.Error()
		}
		out = append(out, s)
	}
	return out
}

func (c *Coordinator) handleShards(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, map[string]any{"shards": c.shardStatuses()})
}

func (c *Coordinator) handleProbe(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, map[string]any{"shards": c.ProbeAll()})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	statuses := c.shardStatuses()
	health := "ok"
	for _, s := range statuses {
		if s.State != breakerClosed.String() {
			health = "degraded"
			break
		}
	}
	server.WriteJSON(w, map[string]any{"status": health, "shards": statuses})
}

// handleReadyz reports ready once the cluster can answer anything at all:
// the schema is known and at least one breaker is closed.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := c.schema.Load() != nil
	if ready {
		ready = false
		for _, sh := range c.shards {
			if sh.br.Allow() {
				ready = true
				break
			}
		}
	}
	if !ready {
		server.WriteError(w, http.StatusServiceUnavailable, CodeShardUnavailable,
			fmt.Errorf("no shard joined and available yet"))
		return
	}
	server.WriteJSON(w, map[string]any{"status": "ready"})
}

func (c *Coordinator) handleColumns(w http.ResponseWriter, _ *http.Request) {
	schema := c.schema.Load()
	if schema == nil {
		c.unavailable(w, fmt.Errorf("no shard has joined yet; cluster schema unknown"))
		return
	}
	types := map[string]string{}
	for _, name := range schema.Columns() {
		if t, err := schema.ColumnType(name); err == nil {
			types[name] = t.String()
		}
	}
	var rows int64
	for _, sh := range c.shards {
		if st := sh.summary(); st != nil {
			rows += st.Rows
		}
	}
	server.WriteJSON(w, map[string]any{
		"database": schema.Name,
		"rows":     rows,
		"columns":  schema.Columns(),
		"types":    types,
	})
}
