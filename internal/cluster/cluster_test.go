package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/randx"
	"dynsample/internal/server"
)

// buildClusterDB is the shared fixture: a skewed sales table with an
// integer measure (so exact cross-shard merges are bit-identical) and one
// region, "westonly", that lives entirely in shard 0's stripe of a 4-way
// split — the pruning test relies on that locality.
func buildClusterDB(t testing.TB) *engine.Database {
	t.Helper()
	region := engine.NewColumn("region", engine.String)
	amount := engine.NewColumn("amount", engine.Int)
	fact := engine.NewTable("sales", region, amount)
	rng := randx.New(17)
	zi := randx.NewZipf(1.3, 10)
	for i := 0; i < 6000; i++ {
		r := "r" + string(rune('a'+zi.Draw(rng)))
		if i < 1500 && rng.Intn(20) == 0 {
			r = "westonly"
		}
		region.AppendString(r)
		amount.AppendInt(int64(rng.Intn(100) + 1))
		fact.EndRow()
	}
	return engine.MustNewDatabase("salesdb", fact)
}

func newSystem(t testing.TB, db *engine.Database) *core.System {
	t.Helper()
	sys := core.NewSystem(db)
	if err := sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate: 0.1,
		Seed:     1,
		Workers:  2,
	})); err != nil {
		t.Fatal(err)
	}
	return sys
}

// gate fronts one shard server so tests can kill it mid-connection: while
// down, every request's TCP connection is hijacked and closed without a
// response — exactly what a crashed process looks like to the coordinator.
type gate struct {
	h    http.Handler
	down atomic.Bool
	hits atomic.Int64
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.hits.Add(1)
	if g.down.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("gate: response writer cannot hijack")
		}
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
		return
	}
	g.h.ServeHTTP(w, r)
}

type testCluster struct {
	t     *testing.T
	db    *engine.Database
	co    *Coordinator
	srv   *httptest.Server
	gates []*gate
}

// newTestCluster boots n in-process shard servers over disjoint stripes of
// one dataset plus a coordinator joined to all of them, with fast fault
// timings so tripping and re-probing resolve in milliseconds.
func newTestCluster(t *testing.T, n int, mut func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, db: buildClusterDB(t)}
	var addrs []string
	for id := 0; id < n; id++ {
		striped, err := Stripe(tc.db, id, n)
		if err != nil {
			t.Fatal(err)
		}
		g := &gate{h: server.New(newSystem(t, striped), server.Config{Shards: n, ShardID: id}).Handler()}
		srv := httptest.NewServer(g)
		t.Cleanup(srv.Close)
		tc.gates = append(tc.gates, g)
		addrs = append(addrs, srv.URL)
	}
	cfg := Config{
		ShardAddrs:       addrs,
		PerTryTimeout:    5 * time.Second,
		RetryBackoff:     5 * time.Millisecond,
		HedgeAfterMin:    5 * time.Millisecond,
		BreakerThreshold: 3,
		ProbeBackoff:     20 * time.Millisecond,
		ProbeBackoffMax:  100 * time.Millisecond,
		ProbeTimeout:     time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	if joined := co.Join(context.Background()); joined != n {
		t.Fatalf("joined %d of %d shards", joined, n)
	}
	tc.co = co
	tc.srv = httptest.NewServer(co.Handler())
	t.Cleanup(tc.srv.Close)
	return tc
}

func (tc *testCluster) post(path string, body any) (*http.Response, []byte) {
	tc.t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(tc.srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func (tc *testCluster) query(req server.QueryRequest) (int, server.QueryResponse) {
	tc.t.Helper()
	resp, body := tc.post("/v1/query", req)
	var qr server.QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &qr); err != nil {
			tc.t.Fatalf("bad query response: %v: %s", err, body)
		}
	}
	return resp.StatusCode, qr
}

func groupTotals(qr server.QueryResponse) map[string]float64 {
	out := make(map[string]float64, len(qr.Groups))
	for _, g := range qr.Groups {
		if len(g.Key) > 0 && len(g.Values) > 0 {
			out[g.Key[0]] = g.Values[0]
		}
	}
	return out
}

// TestClusterExactMatchesSingleNode: scattering /exact over 4 shards and
// re-merging must reproduce the single-process exact answer bit-for-bit
// (integer measures, disjoint stripes).
func TestClusterExactMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	single := httptest.NewServer(server.New(newSystem(t, tc.db), server.Config{}).Handler())
	defer single.Close()

	const sql = "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region"
	resp, body := tc.post("/v1/exact", server.QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster exact: status %d: %s", resp.StatusCode, body)
	}
	var got server.QueryResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	b, _ := json.Marshal(server.QueryRequest{SQL: sql})
	sresp, err := http.Post(single.URL+"/v1/exact", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var want server.QueryResponse
	if err := json.NewDecoder(sresp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}

	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("cluster exact has %d groups, single-node has %d", len(got.Groups), len(want.Groups))
	}
	wantByKey := map[string][]float64{}
	for _, g := range want.Groups {
		wantByKey[g.Key[0]] = g.Values
	}
	for _, g := range got.Groups {
		w, ok := wantByKey[g.Key[0]]
		if !ok {
			t.Fatalf("cluster invented group %v", g.Key)
		}
		for i := range w {
			if g.Values[i] != w[i] {
				t.Errorf("group %v value %d: cluster %v != single-node %v", g.Key, i, g.Values[i], w[i])
			}
		}
		if !g.Exact {
			t.Errorf("group %v of /exact not marked exact", g.Key)
		}
	}
	if got.Partial {
		t.Error("healthy cluster answered partial")
	}
}

// TestClusterApproximateQuery: the estimated fan-out path returns sane
// merged estimates with recomputed intervals.
func TestClusterApproximateQuery(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	code, qr := tc.query(server.QueryRequest{
		SQL: "SELECT region, COUNT(*) FROM T GROUP BY region",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.Partial || len(qr.MissingShards) != 0 {
		t.Fatalf("healthy cluster answered partial: %+v", qr.MissingShards)
	}
	var total float64
	sawCI := false
	for _, g := range qr.Groups {
		total += g.Values[0]
		if len(g.CI) == 0 {
			t.Fatalf("group %v has no confidence interval", g.Key)
		}
		if ci := g.CI[0]; ci[0] > g.Values[0] || ci[1] < g.Values[0] {
			t.Errorf("group %v: value %v outside its CI %v", g.Key, g.Values[0], ci)
		}
		if g.CI[0][1] > g.CI[0][0] {
			sawCI = true
		}
	}
	if total < 5000 || total > 7000 {
		t.Errorf("estimated total count %v, want near 6000", total)
	}
	if !sawCI {
		t.Error("no group carries a non-degenerate interval; accumulators lost on the wire?")
	}
}

// TestClusterShardDeathPartialAndReadmission is the headline robustness
// scenario end to end: kill a shard mid-cluster, prove the next answer is
// partial-with-widened-bounds (never a silent hole, never a 5xx), prove the
// breaker tripped within that one request and stops subsequent fan-out,
// then restart the shard and re-admit it through half-open probes without
// touching the coordinator.
func TestClusterShardDeathPartialAndReadmission(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	req := server.QueryRequest{
		SQL:        "SELECT region, COUNT(*) FROM T GROUP BY region",
		ErrorBound: 0.8, // trivially satisfiable: forces the planner path so achieved is reported
	}
	code, baseline := tc.query(req)
	if code != http.StatusOK || baseline.Partial {
		t.Fatalf("baseline: status %d partial %v", code, baseline.Partial)
	}
	if baseline.Achieved == nil {
		t.Fatal("baseline bounded query reports no achieved error")
	}
	var baselineTotal float64
	for _, g := range baseline.Groups {
		baselineTotal += g.Values[0]
	}

	// Kill shard 2. The very next query must degrade gracefully.
	tc.gates[2].down.Store(true)
	code, partial := tc.query(req)
	if code != http.StatusOK {
		t.Fatalf("query with a dead shard: status %d, want 200 (degrade, don't fail)", code)
	}
	if !partial.Partial {
		t.Fatal("answer over 3 of 4 shards not flagged partial — a silent hole")
	}
	if len(partial.MissingShards) != 1 || partial.MissingShards[0] != 2 {
		t.Fatalf("missing_shards = %v, want [2]", partial.MissingShards)
	}
	if partial.Achieved == nil {
		t.Fatal("partial answer carries no achieved error bound")
	}
	if *partial.Achieved <= *baseline.Achieved {
		t.Errorf("partial achieved %v not widened over baseline %v",
			*partial.Achieved, *baseline.Achieved)
	}
	var partialTotal float64
	for _, g := range partial.Groups {
		partialTotal += g.Values[0]
	}
	if partialTotal >= baselineTotal {
		t.Errorf("partial total %v >= full total %v; missing shard's rows were fabricated",
			partialTotal, baselineTotal)
	}

	// The dead shard's breaker must have tripped within that single request
	// (attempt-level failure counting), so the next fan-out skips it without
	// a network attempt.
	if st := tc.co.shards[2].br.State(); st != breakerOpen && st != breakerHalfOpen {
		t.Fatalf("shard 2 breaker = %v after one failing request, want open", st)
	}
	hitsBefore := tc.gates[2].hits.Load()
	code, again := tc.query(req)
	if code != http.StatusOK || !again.Partial {
		t.Fatalf("second query with tripped breaker: status %d partial %v", code, again.Partial)
	}
	// Allow background probes (which do hit the gate) but no query traffic:
	// probes GET /shard; query fan-out POSTs. The cheap check is that the
	// query returned partial instantly; the strict one is that the breaker
	// still gates it.
	if tc.co.shards[2].br.Allow() {
		t.Fatal("tripped breaker re-admitted a still-dead shard")
	}
	_ = hitsBefore

	// Restart the shard and re-admit it via the operator probe — no
	// coordinator restart, no backoff wait.
	tc.gates[2].down.Store(false)
	resp, body := tc.post("/v1/admin/probe", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin probe: status %d: %s", resp.StatusCode, body)
	}
	var probe struct {
		Shards map[string]string `json:"shards"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Shards["2"] != "closed" {
		t.Fatalf("shard 2 state after probe = %q, want closed (probe result: %v)",
			probe.Shards["2"], probe.Shards)
	}
	code, healed := tc.query(req)
	if code != http.StatusOK {
		t.Fatalf("post-readmission query: status %d", code)
	}
	if healed.Partial {
		t.Fatalf("re-admitted cluster still answering partial: missing %v", healed.MissingShards)
	}
}

// TestClusterBreakerAutoReprobe: without any operator action, the jittered
// half-open probe loop alone re-admits a restarted shard.
func TestClusterBreakerAutoReprobe(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	req := server.QueryRequest{SQL: "SELECT region, COUNT(*) FROM T GROUP BY region"}
	tc.gates[1].down.Store(true)
	if code, qr := tc.query(req); code != http.StatusOK || !qr.Partial {
		t.Fatalf("status %d partial %v, want 200 partial", code, qr.Partial)
	}
	tc.gates[1].down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, qr := tc.query(req)
		if code == http.StatusOK && !qr.Partial {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never re-admitted the shard (status %d partial %v)", code, qr.Partial)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterFlakyShardRecoversViaRetries: transient transport faults on
// one shard are absorbed by bounded retries — the answer is complete and
// the breaker stays closed (2 failures < threshold 3, then reset).
func TestClusterFlakyShardRecoversViaRetries(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	t.Cleanup(faults.Reset)
	flaky := faults.FailUntilNth(2, errors.New("injected transport fault"))
	faults.SetErr(faults.PointShardTransport, func(i int) error {
		if i != 1 {
			return nil
		}
		return flaky(i)
	})
	code, qr := tc.query(server.QueryRequest{
		SQL: "SELECT region, COUNT(*) FROM T GROUP BY region",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.Partial {
		t.Fatalf("retries did not absorb a transient fault: missing %v", qr.MissingShards)
	}
	if st := tc.co.shards[1].br.State(); st != breakerClosed {
		t.Errorf("shard 1 breaker = %v after recovered flake, want closed", st)
	}
}

// TestClusterTruncatedBodyIsTransient: a shard response cut mid-body (the
// connection died under the reply) must decode-fail client-side and be
// retried like any transient fault, not poison the merge.
func TestClusterTruncatedBodyIsTransient(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	t.Cleanup(faults.Reset)
	// Exactly one raw response (whichever shard writes first) is truncated
	// to 10 bytes; the retry sees the full body.
	faults.SetCut(faults.PointShardBody, faults.CutAfter(0, 10))
	code, qr := tc.query(server.QueryRequest{
		SQL: "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.Partial {
		t.Fatalf("truncated body escalated to a missing shard: %v", qr.MissingShards)
	}
}

// TestClusterHedgeBeatsSlowShard: one shard stalls on one request; the
// hedged duplicate (launched after the shard's recent p95 latency) answers
// long before the stall resolves.
func TestClusterHedgeBeatsSlowShard(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	req := server.QueryRequest{SQL: "SELECT region, COUNT(*) FROM T GROUP BY region"}
	// Prime the latency windows so the hedge delay is the (fast) p95, not
	// the cold-start half-deadline.
	for i := 0; i < 3; i++ {
		if code, _ := tc.query(req); code != http.StatusOK {
			t.Fatalf("prime query %d failed", i)
		}
	}
	t.Cleanup(faults.Reset)
	var stalled atomic.Bool
	faults.Set(faults.PointShardRequest, func(ctx context.Context, i int) {
		if i == 3 && stalled.CompareAndSwap(false, true) {
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
			}
		}
	})
	hedgesBefore := obsShardHedges.With("3").Value()
	start := time.Now()
	code, qr := tc.query(req)
	elapsed := time.Since(start)
	if code != http.StatusOK || qr.Partial {
		t.Fatalf("status %d partial %v", code, qr.Partial)
	}
	if !stalled.Load() {
		t.Fatal("stall hook never fired; test exercised nothing")
	}
	if elapsed >= 1500*time.Millisecond {
		t.Errorf("query took %v; the 2s stall was on the answer path", elapsed)
	}
	if obsShardHedges.With("3").Value() == hedgesBefore {
		t.Error("no hedge launched against the stalled shard")
	}
}

// TestClusterPrunesIrrelevantShards: a predicate whose value provably lives
// only on shard 0 (complete value sets from the join summaries) must not
// generate traffic to the other shards, and the answer — served entirely
// from shard 0's small-group table — is exact, not partial.
func TestClusterPrunesIrrelevantShards(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	// Expected exact count from the base table.
	var want float64
	acc, err := tc.db.Accessor("region")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tc.db.NumRows(); i++ {
		if acc.Value(i) == engine.StringVal("westonly") {
			want++
		}
	}
	if want == 0 {
		t.Fatal("fixture has no westonly rows")
	}
	var before []int64
	for _, g := range tc.gates {
		before = append(before, g.hits.Load())
	}
	const sql = "SELECT region, COUNT(*) FROM T WHERE region = 'westonly' GROUP BY region"
	// /exact also prunes: only the one shard that can hold the value runs
	// the full scan, and the merged answer is still the true count.
	resp, body := tc.post("/v1/exact", server.QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact: status %d: %s", resp.StatusCode, body)
	}
	var ex server.QueryResponse
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if got := groupTotals(ex)["westonly"]; got != want {
		t.Errorf("exact westonly count = %v, want %v", got, want)
	}
	if len(ex.Groups) != 1 || !ex.Groups[0].Exact {
		t.Errorf("exact groups = %+v, want the one exact westonly group", ex.Groups)
	}
	// The estimated path prunes the same way and must not call the three
	// pruned shards missing.
	code, qr := tc.query(server.QueryRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.Partial {
		t.Fatal("pruned shards were misreported as missing")
	}
	if est := groupTotals(qr)["westonly"]; est <= 0 {
		t.Errorf("estimated westonly count = %v, want positive", est)
	}
	for id := 1; id < 4; id++ {
		if delta := tc.gates[id].hits.Load() - before[id]; delta != 0 {
			t.Errorf("shard %d saw %d requests for a query its summary excludes", id, delta)
		}
	}
	if tc.gates[0].hits.Load() == before[0] {
		t.Error("shard 0 saw no traffic; who answered?")
	}
}

// TestClusterExactRefusesPartial: /exact over a cluster with a dead shard
// is a retryable 503 — an exact answer computed over a subset would be
// silently wrong, which is the one thing this tier must never do.
func TestClusterExactRefusesPartial(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	tc.gates[1].down.Store(true)
	req := server.QueryRequest{SQL: "SELECT region, COUNT(*) FROM T GROUP BY region"}
	resp, body := tc.post("/v1/exact", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exact with dead shard: status %d, want 503: %s", resp.StatusCode, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeShardUnavailable {
		t.Errorf("error code = %q, want %q", er.Error.Code, CodeShardUnavailable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shard_unavailable 503 carries no Retry-After")
	}
	// With the breaker now open, the refusal is immediate (no fan-out).
	resp2, _ := tc.post("/v1/exact", req)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("second exact: status %d, want 503", resp2.StatusCode)
	}
}

// TestClusterFatalErrorsRelayVerbatim: request-shape errors (bad bounds,
// unknown columns) are the client's fault on every shard equally — they are
// relayed with the shard's envelope, never retried, and never trip
// breakers.
func TestClusterFatalErrorsRelayVerbatim(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	// error_bound >= 1 passes the coordinator (which leaves numeric bound
	// validation to the shards) and is rejected 400 by every shard.
	code, _ := tc.query(server.QueryRequest{
		SQL:        "SELECT region, COUNT(*) FROM T GROUP BY region",
		ErrorBound: 1.5,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want relayed 400", code)
	}
	for id, sh := range tc.co.shards {
		if st := sh.br.State(); st != breakerClosed {
			t.Errorf("shard %d breaker = %v after a fatal error, want closed (fatal must not count)", id, st)
		}
	}
	// Locally detectable garbage never reaches the shards.
	var before []int64
	for _, g := range tc.gates {
		before = append(before, g.hits.Load())
	}
	if code, _ := tc.query(server.QueryRequest{SQL: "SELECT nosuch, COUNT(*) FROM T GROUP BY nosuch"}); code != http.StatusBadRequest {
		t.Fatalf("unknown column: status %d, want 400", code)
	}
	for id, g := range tc.gates {
		if g.hits.Load() != before[id] {
			t.Errorf("shard %d saw traffic for a locally-invalid query", id)
		}
	}
}

// TestClusterMetadataEndpoints covers the operator surface: /columns
// proxies the schema with cluster-wide row counts, /healthz and /readyz
// reflect membership, /shards lists summaries.
func TestClusterMetadataEndpoints(t *testing.T) {
	tc := newTestCluster(t, 4, nil)
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(tc.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	resp, body := get("/v1/columns")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columns: status %d", resp.StatusCode)
	}
	var cols struct {
		Database string            `json:"database"`
		Rows     int64             `json:"rows"`
		Columns  []string          `json:"columns"`
		Types    map[string]string `json:"types"`
	}
	if err := json.Unmarshal(body, &cols); err != nil {
		t.Fatal(err)
	}
	if cols.Database != "salesdb" || cols.Rows != 6000 {
		t.Errorf("columns = %+v, want salesdb with 6000 cluster-wide rows", cols)
	}
	if cols.Types["region"] != "VARCHAR" || cols.Types["amount"] != "INT" {
		t.Errorf("types = %v", cols.Types)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var hz struct {
		Status string        `json:"status"`
		Shards []ShardStatus `json:"shards"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || len(hz.Shards) != 4 {
		t.Errorf("healthz = %+v", hz)
	}
	for _, s := range hz.Shards {
		if !s.Joined || s.State != "closed" || s.Rows != 1500 {
			t.Errorf("shard status %+v, want joined/closed with 1500 rows", s)
		}
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz: status %d", resp.StatusCode)
	}
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("aqp_cluster_shard_requests_total")) {
		t.Errorf("metrics: status %d, cluster families missing", resp.StatusCode)
	}
}

// TestClusterAllShardsDown: with every shard dead the coordinator still
// answers structurally — a retryable 503, not a hang or a panic.
func TestClusterAllShardsDown(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	tc.gates[0].down.Store(true)
	tc.gates[1].down.Store(true)
	resp, body := tc.post("/v1/query", server.QueryRequest{
		SQL: "SELECT region, COUNT(*) FROM T GROUP BY region",
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeShardUnavailable || er.Error.RetryAfterMS <= 0 {
		t.Errorf("envelope = %+v, want shard_unavailable with retry hint", er.Error)
	}
}
