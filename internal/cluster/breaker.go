package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// breakerState is the circuit breaker's position. The zero value is closed
// (traffic flows).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String returns the conventional spelling used in /healthz and metrics.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-shard circuit breaker. Closed, it admits requests and
// counts consecutive attempt-level failures; at threshold it trips open and
// starts a background probe loop with jittered doubling backoff (mirroring
// the ingest coordinator's degraded-disk probe loop). Each probe moves the
// breaker half-open for its duration: a successful probe closes it, a failed
// one re-opens it and doubles the wait. ProbeNow is exposed so an operator
// action (POST /admin/probe) or a test can re-admit a recovered shard
// deterministically instead of waiting out the backoff.
type breaker struct {
	threshold  int
	backoff    time.Duration
	backoffMax time.Duration
	probe      func() error
	onState    func(breakerState)

	mu      sync.Mutex
	state   breakerState
	fails   int
	probing bool // a probe loop goroutine is live

	stopOnce sync.Once
	stop     chan struct{}
}

func newBreaker(threshold int, backoff, backoffMax time.Duration, probe func() error, onState func(breakerState)) *breaker {
	b := &breaker{
		threshold:  threshold,
		backoff:    backoff,
		backoffMax: backoffMax,
		probe:      probe,
		onState:    onState,
		stop:       make(chan struct{}),
	}
	b.notify(breakerClosed)
	return b
}

// Allow reports whether a request may be sent through this breaker. Half-open
// does not admit regular traffic — only the probe itself goes through.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// State returns the current position.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// OnSuccess resets the consecutive-failure count.
func (b *breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
}

// OnFailure counts one failed attempt. Attempts, not requests: a request
// that exhausts its retries counts each attempt, so a dead shard trips the
// breaker within a single fan-out instead of needing threshold requests.
func (b *breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.trip()
	}
}

// Open force-trips the breaker (used for shards that fail to join at
// startup: the probe loop then keeps trying to admit them).
func (b *breaker) Open() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trip()
}

// trip moves to open and ensures a probe loop is running. Caller holds mu.
func (b *breaker) trip() {
	if b.state != breakerOpen {
		b.state = breakerOpen
		b.notify(breakerOpen)
	}
	if !b.probing {
		b.probing = true
		go b.probeLoop()
	}
}

// ProbeNow runs one probe synchronously: half-open for the probe's duration,
// closed on success, open again on failure. Calling it on a closed breaker
// is a no-op. Deterministic entry point for operators and tests.
func (b *breaker) ProbeNow() error {
	b.mu.Lock()
	if b.state == breakerClosed {
		b.probing = false
		b.mu.Unlock()
		return nil
	}
	b.state = breakerHalfOpen
	b.notify(breakerHalfOpen)
	b.mu.Unlock()

	err := b.probe()

	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		b.state = breakerOpen
		b.notify(breakerOpen)
		return err
	}
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.notify(breakerClosed)
	return nil
}

// probeLoop waits out a jittered doubling backoff between probes until one
// succeeds or the breaker is shut down. The jitter prevents every
// coordinator that lost the same shard from re-probing it in lockstep when
// it comes back.
func (b *breaker) probeLoop() {
	backoff := b.backoff
	for {
		t := time.NewTimer(jitter(backoff))
		select {
		case <-b.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if b.ProbeNow() == nil {
			return
		}
		backoff *= 2
		if backoff > b.backoffMax {
			backoff = b.backoffMax
		}
	}
}

// Shutdown stops any probe loop. The breaker stays usable (Allow etc.) but
// will no longer self-heal; used when the coordinator is closing.
func (b *breaker) Shutdown() {
	b.stopOnce.Do(func() { close(b.stop) })
}

func (b *breaker) notify(s breakerState) {
	if b.onState != nil {
		b.onState(s)
	}
}

// jitter spreads d over [d/2, d], the same envelope the ingest probe loop
// and Retry-After jitter use. Degenerate durations pass through.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}
