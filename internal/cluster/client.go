package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/obs"
	"dynsample/internal/server"
)

// maxShardBody bounds one shard response body read by the coordinator, so a
// corrupted Content-Length or a hostile shard cannot balloon coordinator
// memory.
const maxShardBody = 64 << 20

// latencyWindowSize is how many recent shard latencies feed the hedging
// percentile.
const latencyWindowSize = 128

// hedgeQuantile is the latency percentile after which a second (hedged)
// attempt is launched against the shard.
const hedgeQuantile = 0.95

// shard is the coordinator's client for one cluster member: its address, its
// circuit breaker, its sliding latency window (for hedging), and the summary
// statistics it registered at join.
type shard struct {
	c     *Coordinator
	id    int
	addr  string // base URL, e.g. http://host:port
	label string // metric label (the id as a string)
	br    *breaker
	lat   *obs.Window

	mu      sync.Mutex
	stats   *core.ShardStats
	lastErr error
}

func (sh *shard) summary() *core.ShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stats
}

func (sh *shard) setSummary(st *core.ShardStats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats, sh.lastErr = st, nil
}

func (sh *shard) noteErr(err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.lastErr = err
}

// joined reports whether this shard has ever registered a summary.
func (sh *shard) joined() bool { return sh.summary() != nil }

// shardError classifies one failed shard sub-request. status 0 means the
// failure happened below HTTP (dial, timeout, truncated body); otherwise
// body holds the shard's error envelope for verbatim relay.
type shardError struct {
	shard  int
	status int
	body   []byte
	err    error
}

func (e *shardError) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("shard %d: HTTP %d: %s", e.shard, e.status, strings.TrimSpace(string(e.body)))
	}
	return fmt.Sprintf("shard %d: %v", e.shard, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// fatal reports whether the error is a property of the request rather than
// the shard: every shard would answer the same way, so retrying or failing
// over cannot help and the envelope is relayed to the client as-is.
func (e *shardError) fatal() bool {
	switch e.status {
	case http.StatusBadRequest, http.StatusNotFound, http.StatusMethodNotAllowed,
		http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity,
		http.StatusNotImplemented:
		return true
	}
	return false
}

// rawAnswer is one shard's decoded contribution to a fan-out.
type rawAnswer struct {
	shard int
	raw   *server.RawQueryResponse
	res   *engine.Result
}

// fetchSummary GETs the shard's join summary (GET /v1/shard).
func (sh *shard) fetchSummary(ctx context.Context) (*core.ShardStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.addr+"/v1/shard", nil)
	if err != nil {
		return nil, err
	}
	resp, err := sh.c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &shardError{shard: sh.id, status: resp.StatusCode, body: data,
			err: fmt.Errorf("shard summary: HTTP %d", resp.StatusCode)}
	}
	var st core.ShardStats
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("shard %d: bad summary: %w", sh.id, err)
	}
	return &st, nil
}

// probe is the breaker's half-open check: re-fetch the join summary (and the
// schema, if the coordinator has none yet). A shard that answers GET /shard
// is serving queries again, and probing through the join path means a
// restarted shard re-registers fresh statistics before it re-admits.
func (sh *shard) probe() error {
	ctx, cancel := context.WithTimeout(context.Background(), sh.c.cfg.ProbeTimeout)
	defer cancel()
	st, err := sh.fetchSummary(ctx)
	if err != nil {
		obsProbes.With(sh.label, "error").Inc()
		sh.noteErr(err)
		return err
	}
	sh.setSummary(st)
	if err := sh.c.ensureSchema(ctx, sh); err != nil {
		obsProbes.With(sh.label, "error").Inc()
		sh.noteErr(err)
		return err
	}
	obsProbes.With(sh.label, "ok").Inc()
	return nil
}

// attempt runs one HTTP round trip against the shard with its own deadline,
// decoding the raw accumulator response. Any failure below a 200-with-valid-
// body — dial error, timeout, 5xx, truncated or undecodable body — comes
// back as a *shardError for the retry layer to classify.
func (sh *shard) attempt(ctx context.Context, path string, body []byte, perTry time.Duration) (*rawAnswer, error) {
	if err := faults.FireErr(faults.PointShardTransport, sh.id); err != nil {
		return nil, &shardError{shard: sh.id, err: err}
	}
	actx, cancel := context.WithTimeout(ctx, perTry)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, sh.addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, &shardError{shard: sh.id, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := sh.c.client.Do(req)
	if err != nil {
		return nil, &shardError{shard: sh.id, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody+1))
	if err != nil {
		// Includes the killed-mid-response case: Content-Length promised more
		// bytes than arrived (unexpected EOF).
		return nil, &shardError{shard: sh.id, err: err}
	}
	elapsed := time.Since(start).Seconds()
	sh.lat.Observe(elapsed)
	obsShardLatency.With(sh.label).Observe(elapsed)
	if len(data) > maxShardBody {
		return nil, &shardError{shard: sh.id, err: fmt.Errorf("response exceeds %d bytes", maxShardBody)}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &shardError{shard: sh.id, status: resp.StatusCode, body: data,
			err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	var raw server.RawQueryResponse
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, &shardError{shard: sh.id, err: fmt.Errorf("bad response body: %w", err)}
	}
	res, err := engine.ResultFromWire(raw.Result)
	if err != nil {
		return nil, &shardError{shard: sh.id, err: err}
	}
	return &rawAnswer{shard: sh.id, raw: &raw, res: res}, nil
}

// hedgeDelay is how long to wait on the primary attempt before launching a
// hedge: the shard's recent p95 latency (floored by config so a fast shard
// is not double-queried on noise), or half the per-try budget when the
// window has no history yet. Past the per-try deadline a hedge is pointless.
func (sh *shard) hedgeDelay(perTry time.Duration) time.Duration {
	d := perTry / 2
	if p, ok := sh.lat.Quantile(hedgeQuantile); ok {
		d = time.Duration(p * float64(time.Second))
	}
	if d < sh.c.cfg.HedgeAfterMin {
		d = sh.c.cfg.HedgeAfterMin
	}
	if d > perTry {
		d = perTry
	}
	return d
}

// attemptHedged races up to two attempts against the shard: the primary,
// and — if it has not resolved after hedgeDelay — a duplicate. First success
// wins and cancels the other; both failing returns the last error. Hedging
// targets the same shard (each shard owns its partition exclusively), so it
// defends against transient slowness — a GC pause, a cold cache, one slow
// scan — not against shard death; the retry/breaker layers own that.
func (sh *shard) attemptHedged(ctx context.Context, path string, body []byte, perTry time.Duration) (*rawAnswer, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		ans *rawAnswer
		err error
	}
	ch := make(chan outcome, 2)
	launch := func() {
		go func() {
			ans, err := sh.attempt(hctx, path, body, perTry)
			ch <- outcome{ans, err}
		}()
	}
	launch()
	launched, received := 1, 0
	timer := time.NewTimer(sh.hedgeDelay(perTry))
	defer timer.Stop()
	for {
		select {
		case out := <-ch:
			received++
			if out.err == nil {
				return out.ans, nil
			}
			if received == launched {
				return nil, out.err
			}
			// One attempt failed but the other is still in flight; it may yet
			// succeed.
		case <-timer.C:
			if launched == 1 {
				launched++
				obsShardHedges.With(sh.label).Inc()
				launch()
			}
		}
	}
}

// do is the full per-shard pipeline for one fan-out: bounded retries with
// jittered doubling backoff around hedged attempts. Fatal errors (the
// request itself is bad) propagate immediately; attempt-level failures feed
// the breaker, and a breaker that trips mid-request stops further retries —
// so a dead shard is cut off within a single fan-out.
func (sh *shard) do(ctx context.Context, path string, body []byte, perTry time.Duration) (*rawAnswer, error) {
	backoff := sh.c.cfg.RetryBackoff
	var lastErr error
	for try := 0; try <= sh.c.cfg.Retries; try++ {
		if try > 0 {
			obsShardRetries.With(sh.label).Inc()
			t := time.NewTimer(jitter(backoff))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, &shardError{shard: sh.id, err: ctx.Err()}
			case <-t.C:
			}
			backoff *= 2
		}
		ans, err := sh.attemptHedged(ctx, path, body, perTry)
		if err == nil {
			sh.br.OnSuccess()
			obsShardReqs.With(sh.label, "ok").Inc()
			return ans, nil
		}
		lastErr = err
		if se, ok := err.(*shardError); ok && se.fatal() {
			obsShardReqs.With(sh.label, "fatal").Inc()
			return nil, err
		}
		sh.br.OnFailure()
		sh.noteErr(err)
		if ctx.Err() != nil {
			break
		}
		if !sh.br.Allow() {
			// Tripped while we were retrying: stop hammering it.
			break
		}
	}
	obsShardReqs.With(sh.label, "transient").Inc()
	return nil, lastErr
}

// perTryTimeout derives one attempt's deadline: the configured ceiling,
// tightened by what the shard's summary predicts a full-fraction scan costs
// (generous 4x slack — the deadline exists to catch stuck shards, not to
// race healthy ones) and by the request's own time bound and timeout. exact
// queries scan the partition, not the samples, so they budget on Rows.
func (sh *shard) perTryTimeout(req *server.QueryRequest, exact bool) time.Duration {
	d := sh.c.cfg.PerTryTimeout
	tighten := func(t time.Duration) {
		if t > 0 && t < d {
			d = t
		}
	}
	if st := sh.summary(); st != nil && st.ScanRowsPerSecond > 0 {
		rows := st.SampleRows
		if exact {
			rows = st.Rows
		}
		if rows > 0 {
			scan := time.Duration(float64(rows) / st.ScanRowsPerSecond * float64(time.Second))
			tighten(4*scan + 250*time.Millisecond)
		}
	}
	if req.TimeBoundMS > 0 {
		tighten(4*time.Duration(req.TimeBoundMS)*time.Millisecond + 250*time.Millisecond)
	}
	if req.TimeoutMS != nil && *req.TimeoutMS > 0 {
		tighten(time.Duration(*req.TimeoutMS) * time.Millisecond)
	}
	if d < sh.c.cfg.PerTryFloor {
		d = sh.c.cfg.PerTryFloor
	}
	return d
}

// shardBody marshals the request one shard receives: same SQL and bounds,
// raw accumulators instead of presented groups, the per-try deadline as the
// shard-side timeout (so an abandoned attempt also cancels server-side), and
// no explain (traces stay a single-node feature).
func shardBody(req *server.QueryRequest, perTry time.Duration) []byte {
	ms := perTry.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	sreq := server.QueryRequest{
		SQL:         req.SQL,
		TimeoutMS:   &ms,
		ErrorBound:  req.ErrorBound,
		TimeBoundMS: req.TimeBoundMS,
		Confidence:  req.Confidence,
		Raw:         true,
	}
	b, err := json.Marshal(sreq)
	if err != nil {
		// QueryRequest marshals from plain fields; this cannot fail.
		panic(err)
	}
	return b
}

// newShard wires one member: breaker (probing through the join path) and
// latency window.
func newShard(c *Coordinator, id int, addr string) *shard {
	sh := &shard{
		c:     c,
		id:    id,
		addr:  strings.TrimSuffix(addr, "/"),
		label: strconv.Itoa(id),
		lat:   obs.NewWindow(latencyWindowSize),
	}
	sh.br = newBreaker(c.cfg.BreakerThreshold, c.cfg.ProbeBackoff, c.cfg.ProbeBackoffMax,
		sh.probe, func(s breakerState) {
			obsBreakerState.With(sh.label).Set(float64(s))
		})
	return sh
}
