package cluster

import (
	"fmt"

	"dynsample/internal/engine"
)

// Stripe materializes shard id's partition of db: the contiguous row range
// [id·N/M, (id+1)·N/M) of the joined view, flattened into a standalone fact
// table. Contiguous striping keeps the partitions disjoint and exhaustive —
// the property that makes cross-shard Result.Merge purely additive — and the
// returned database keeps db's name so the same SQL compiles unchanged on
// every shard.
func Stripe(db *engine.Database, id, shards int) (*engine.Database, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: shards must be positive, got %d", shards)
	}
	if id < 0 || id >= shards {
		return nil, fmt.Errorf("cluster: shard id %d out of range [0, %d)", id, shards)
	}
	n := db.NumRows()
	lo, hi := id*n/shards, (id+1)*n/shards
	rows := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		rows = append(rows, r)
	}
	fact := db.Flatten(fmt.Sprintf("%s_shard%d", db.Name, id), rows, nil, nil)
	return engine.NewDatabase(db.Name, fact)
}
