package cluster

import (
	"testing"

	"dynsample/internal/engine"
)

// stripeDB builds an intentionally awkward row count (not divisible by the
// shard counts under test) with integer measures, so partition sums must
// reproduce the single-table answer bit-for-bit.
func stripeDB(t *testing.T, rows int) *engine.Database {
	t.Helper()
	cat := engine.NewColumn("cat", engine.String)
	qty := engine.NewColumn("qty", engine.Int)
	fact := engine.NewTable("orders", cat, qty)
	for i := 0; i < rows; i++ {
		cat.AppendString(string(rune('a' + i%5)))
		qty.AppendInt(int64(i%13 + 1))
		fact.EndRow()
	}
	return engine.MustNewDatabase("ordersdb", fact)
}

func TestStripePartitionsDisjointAndExhaustive(t *testing.T) {
	const rows = 103
	db := stripeDB(t, rows)
	q := &engine.Query{
		GroupBy: []string{"cat"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "qty"}},
	}
	whole, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		total := 0
		merged := engine.NewResult(q.GroupBy, q.Aggs)
		for id := 0; id < shards; id++ {
			striped, err := Stripe(db, id, shards)
			if err != nil {
				t.Fatal(err)
			}
			if striped.Name != db.Name {
				t.Fatalf("stripe renamed the database: %q", striped.Name)
			}
			n := striped.NumRows()
			if lo, hi := rows/shards, rows/shards+1; n < lo || n > hi {
				t.Errorf("shards=%d id=%d: %d rows, want %d or %d (near-equal stripes)",
					shards, id, n, lo, hi)
			}
			total += n
			part, err := engine.ExecuteExact(striped, q)
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if total != rows {
			t.Errorf("shards=%d: stripes cover %d rows, want %d", shards, total, rows)
		}
		// Integer measures: the merged partition answers must equal the
		// whole-table answers exactly, per group and per aggregate.
		if merged.NumGroups() != whole.NumGroups() {
			t.Fatalf("shards=%d: merged has %d groups, whole has %d",
				shards, merged.NumGroups(), whole.NumGroups())
		}
		for _, k := range whole.Keys() {
			wg, mg := whole.Group(k), merged.Group(k)
			if mg == nil {
				t.Fatalf("shards=%d: group %v missing after merge", shards, wg.Key)
			}
			for a := range wg.Vals {
				if wg.Vals[a] != mg.Vals[a] {
					t.Errorf("shards=%d group %v agg %d: merged %v != whole %v",
						shards, wg.Key, a, mg.Vals[a], wg.Vals[a])
				}
			}
		}
	}
}

func TestStripeRejectsBadSlots(t *testing.T) {
	db := stripeDB(t, 10)
	for _, tc := range []struct{ id, shards int }{
		{-1, 4}, {4, 4}, {0, 0}, {0, -2},
	} {
		if _, err := Stripe(db, tc.id, tc.shards); err == nil {
			t.Errorf("Stripe(id=%d, shards=%d) succeeded, want error", tc.id, tc.shards)
		}
	}
}

func TestStripeSingleShardIsIdentity(t *testing.T) {
	db := stripeDB(t, 50)
	striped, err := Stripe(db, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if striped.NumRows() != db.NumRows() {
		t.Fatalf("1-way stripe has %d rows, want %d", striped.NumRows(), db.NumRows())
	}
}
