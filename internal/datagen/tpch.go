// Package datagen generates the synthetic databases of §5.2.1.
//
// TPCH builds a skewed TPC-H-like star schema in the spirit of the
// Chaudhuri–Narasayya dbgen patch the paper used: the benchmark's schema
// shape with every categorical column drawn from a truncated Zipf
// distribution of configurable skew z ("TPCHxGyz refers to a database
// generated with scaling factor x and Zipf parameter z = y").
//
// Sales builds a stand-in for the paper's proprietary corporate SALES
// database: a star schema with six dimension tables and a wide set of
// mixed-cardinality categorical columns at moderate skew. The paper's
// findings on SALES depend only on this shape (less skew than TPCH2.0z, many
// candidate grouping columns), which the generator preserves.
//
// Row counts are scaled down from the paper's 1-5 GB databases so the whole
// suite runs on one machine; sampling rates are fractions, so accuracy
// trends are preserved. See DESIGN.md §3 for the substitution rationale.
package datagen

import (
	"fmt"
	"math/rand"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// DefaultRowsPerSF is the number of fact rows per unit of scale factor
// (the real benchmark's 6M lineitems per SF scaled down 60x).
const DefaultRowsPerSF = 100000

// TPCHConfig parameterises the skewed TPC-H-like generator.
type TPCHConfig struct {
	// ScaleFactor is x in TPCHxGyz. Fact rows = ScaleFactor * RowsPerSF.
	ScaleFactor float64
	// Zipf is z in TPCHxGyz, the skew of every categorical column.
	Zipf float64
	// RowsPerSF overrides DefaultRowsPerSF.
	RowsPerSF int
	// Seed drives all randomness.
	Seed int64
}

// TPCHMeasures lists the fact measure columns suitable for SUM aggregates.
var TPCHMeasures = []string{"l_quantity", "l_extendedprice"}

// TPCH generates the database. Dimension sizes scale with the fact table.
func TPCH(cfg TPCHConfig) (*engine.Database, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("datagen: scale factor %g must be positive", cfg.ScaleFactor)
	}
	if cfg.Zipf < 0 {
		return nil, fmt.Errorf("datagen: zipf %g must be >= 0", cfg.Zipf)
	}
	rowsPerSF := cfg.RowsPerSF
	if rowsPerSF == 0 {
		rowsPerSF = DefaultRowsPerSF
	}
	factRows := int(cfg.ScaleFactor * float64(rowsPerSF))
	if factRows < 1 {
		return nil, fmt.Errorf("datagen: configuration yields %d fact rows", factRows)
	}
	rng := randx.New(cfg.Seed)
	z := cfg.Zipf

	dimScale := factRows / 50
	if dimScale < 20 {
		dimScale = 20
	}

	part := newDimBuilder("part", dimScale, rng, z)
	part.categorical("p_mfgr", 5)
	part.categorical("p_brand", 25)
	part.categorical("p_category", 25)
	part.categorical("p_container", 40)
	part.categorical("p_size", 50)
	part.categorical("p_type", 150)
	part.categorical("p_color", 20)
	part.categoricalInt("p_retail_bucket", 30)
	partTable := part.build()

	supplier := newDimBuilder("supplier", dimScale/4+10, rng, z)
	supplier.categorical("s_nation", 25)
	supplier.categorical("s_region", 5)
	supplier.categorical("s_city", 250)
	supplier.categoricalInt("s_acctbal_bucket", 10)
	supplierTable := supplier.build()

	customer := newDimBuilder("customer", dimScale/2+10, rng, z)
	customer.categorical("c_nation", 25)
	customer.categorical("c_region", 5)
	customer.categorical("c_mktsegment", 5)
	customer.categorical("c_city", 250)
	customer.categoricalInt("c_age_bucket", 8)
	customerTable := customer.build()

	// High-cardinality attributes (dates, clerks) are where small groups
	// live: a Zipf tail of mass <= t only exists once the number of distinct
	// values is large enough. Real TPC-H has ~2,400 distinct dates and ~1,000
	// clerks per GB.
	orders := newDimBuilder("orders", factRows/4+10, rng, z)
	orders.categorical("o_orderpriority", 5)
	orders.categorical("o_orderstatus", 3)
	orders.categorical("o_clerk", 1000)
	orders.categoricalInt("o_orderdate", 2400)
	orders.categoricalInt("o_ordermonth", 12)
	orders.categoricalInt("o_orderyear", 7)
	ordersTable := orders.build()

	// Fact table: lineitem.
	quantity := engine.NewColumn("l_quantity", engine.Int)
	price := engine.NewColumn("l_extendedprice", engine.Float)
	discount := engine.NewColumn("l_discount", engine.Int)
	tax := engine.NewColumn("l_tax", engine.Int)
	returnflag := engine.NewColumn("l_returnflag", engine.String)
	linestatus := engine.NewColumn("l_linestatus", engine.String)
	shipmode := engine.NewColumn("l_shipmode", engine.String)
	shipinstruct := engine.NewColumn("l_shipinstruct", engine.String)
	shipdate := engine.NewColumn("l_shipdate", engine.Int)
	partFK := engine.NewColumn("part_fk", engine.Int)
	suppFK := engine.NewColumn("supp_fk", engine.Int)
	custFK := engine.NewColumn("cust_fk", engine.Int)
	ordFK := engine.NewColumn("ord_fk", engine.Int)
	fact := engine.NewTable("lineitem", quantity, price, discount, tax,
		returnflag, linestatus, shipmode, shipinstruct, shipdate,
		partFK, suppFK, custFK, ordFK)

	zq := randx.NewZipf(z, 50)
	zdisc := randx.NewZipf(z, 11)
	ztax := randx.NewZipf(z, 9)
	zrf := randx.NewZipf(z, 3)
	zls := randx.NewZipf(z, 2)
	zsm := randx.NewZipf(z, 7)
	zsi := randx.NewZipf(z, 4)
	zsd := randx.NewZipf(z, 2400)

	for i := 0; i < factRows; i++ {
		q := int64(zq.Draw(rng) + 1)
		quantity.AppendInt(q)
		price.AppendFloat(float64(q) * (900 + 100*rng.Float64()) * float64(1+zdisc.Draw(rng)))
		discount.AppendInt(int64(zdisc.Draw(rng)))
		tax.AppendInt(int64(ztax.Draw(rng)))
		returnflag.AppendString([]string{"A", "N", "R"}[zrf.Draw(rng)])
		linestatus.AppendString([]string{"O", "F"}[zls.Draw(rng)])
		shipmode.AppendString([]string{"AIR", "TRUCK", "MAIL", "SHIP", "RAIL", "REG AIR", "FOB"}[zsm.Draw(rng)])
		shipinstruct.AppendString([]string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}[zsi.Draw(rng)])
		shipdate.AppendInt(int64(zsd.Draw(rng)))
		// Foreign keys reference dimension rows uniformly, as in the real
		// benchmark; the skew lives in the attribute values. (Skewing the FK
		// draws too would compound with attribute skew and collapse the
		// dimensions' realised cardinality.)
		partFK.AppendInt(int64(rng.Intn(partTable.NumRows())))
		suppFK.AppendInt(int64(rng.Intn(supplierTable.NumRows())))
		custFK.AppendInt(int64(rng.Intn(customerTable.NumRows())))
		ordFK.AppendInt(int64(rng.Intn(ordersTable.NumRows())))
		fact.EndRow()
	}

	name := fmt.Sprintf("TPCH%gG%.1fz", cfg.ScaleFactor, cfg.Zipf)
	return engine.NewDatabase(name, fact,
		engine.DimJoin{Table: partTable, FK: "part_fk"},
		engine.DimJoin{Table: supplierTable, FK: "supp_fk"},
		engine.DimJoin{Table: customerTable, FK: "cust_fk"},
		engine.DimJoin{Table: ordersTable, FK: "ord_fk"},
	)
}

// dimBuilder assembles a dimension table of categorical columns.
type dimBuilder struct {
	name string
	rows int
	rng  *rand.Rand
	z    float64
	cols []*engine.Column
}

func newDimBuilder(name string, rows int, rng *rand.Rand, z float64) *dimBuilder {
	return &dimBuilder{name: name, rows: rows, rng: rng, z: z}
}

// categorical adds a string column with the given number of distinct values,
// drawn Zipf(z).
func (b *dimBuilder) categorical(col string, card int) {
	c := engine.NewColumn(col, engine.String)
	zipf := randx.NewZipf(b.z, card)
	for i := 0; i < b.rows; i++ {
		c.AppendString(fmt.Sprintf("%s_%03d", col, zipf.Draw(b.rng)))
	}
	b.cols = append(b.cols, c)
}

// categoricalInt adds an integer column with the given number of distinct
// values, drawn Zipf(z). Used for date-like attributes.
func (b *dimBuilder) categoricalInt(col string, card int) {
	c := engine.NewColumn(col, engine.Int)
	zipf := randx.NewZipf(b.z, card)
	for i := 0; i < b.rows; i++ {
		c.AppendInt(int64(zipf.Draw(b.rng)))
	}
	b.cols = append(b.cols, c)
}

// categoricalTailed adds a string column with a head-and-tail mixture
// distribution: a few dominant values share most of the mass (Zipf z over
// the head) while the remaining values split tailMass thinly. This matches
// real operational categoricals (a handful of big categories plus a long
// thin tail) better than a truncated Zipf, whose rarest value still carries
// c^-z/H of the mass.
func (b *dimBuilder) categoricalTailed(col string, card int, tailMass float64) {
	head := card / 6
	if head < 2 {
		head = 2
	}
	if head > 8 {
		head = 8
	}
	if head >= card {
		b.categorical(col, card)
		return
	}
	weights := make([]float64, card)
	headZ := randx.NewZipf(b.z, head)
	for i := 0; i < head; i++ {
		weights[i] = (1 - tailMass) * headZ.Prob(i)
	}
	// The tail decays geometrically (Zipf 1.5) regardless of the head skew:
	// deep-tail values carry vanishing mass, as in real categoricals.
	tailZ := randx.NewZipf(1.5, card-head)
	for i := head; i < card; i++ {
		weights[i] = tailMass * tailZ.Prob(i-head)
	}
	dist := randx.NewCategorical(weights)
	c := engine.NewColumn(col, engine.String)
	for i := 0; i < b.rows; i++ {
		c.AppendString(fmt.Sprintf("%s_%03d", col, dist.Draw(b.rng)))
	}
	b.cols = append(b.cols, c)
}

func (b *dimBuilder) build() *engine.Table {
	t := engine.NewTable(b.name, b.cols...)
	return t
}
