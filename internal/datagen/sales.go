package datagen

import (
	"fmt"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// SalesConfig parameterises the SALES-like generator. The paper's real SALES
// database had a star schema with an ~800k-row fact table, 6 dimension
// tables (largest ~200k rows), 245 columns total, and moderate skew.
type SalesConfig struct {
	// FactRows is the fact-table size; zero means 80,000 (the paper's 800k
	// scaled 10x down).
	FactRows int
	// Zipf is the categorical skew; zero means 1.2 (moderate: the paper
	// observes SALES is "relatively less skewed than ... TPCH1G2.0z").
	Zipf float64
	// TotalColumns is the approximate total column budget across fact and
	// dimensions; zero means 245 to match the paper.
	TotalColumns int
	// Seed drives all randomness.
	Seed int64
}

func (c SalesConfig) withDefaults() SalesConfig {
	if c.FactRows == 0 {
		c.FactRows = 80000
	}
	if c.Zipf == 0 {
		c.Zipf = 1.2
	}
	if c.TotalColumns == 0 {
		c.TotalColumns = 245
	}
	return c
}

// SalesMeasures lists the fact measure columns suitable for SUM aggregates.
var SalesMeasures = []string{"sale_amount", "units", "margin"}

// salesDims describes the six dimensions: name, size divisor relative to the
// fact table, and hand-named lead columns (the rest is generic padding).
var salesDims = []struct {
	name    string
	divisor int
	lead    []struct {
		col  string
		card int
	}
}{
	{"product", 4, []struct {
		col  string
		card int
	}{{"product_line", 12}, {"product_brand", 60}, {"product_family", 30}}},
	{"store", 40, []struct {
		col  string
		card int
	}{{"store_region", 8}, {"store_state", 50}, {"store_format", 6}}},
	{"customer", 2, []struct {
		col  string
		card int
	}{{"customer_segment", 7}, {"customer_industry", 24}}},
	{"promotion", 200, []struct {
		col  string
		card int
	}{{"promo_type", 10}, {"promo_channel", 5}}},
	{"calendar", 400, []struct {
		col  string
		card int
	}{{"cal_quarter", 8}, {"cal_month", 24}, {"cal_weekday", 7}}},
	{"channel", 800, []struct {
		col  string
		card int
	}{{"channel_type", 5}, {"channel_partner", 40}}},
}

// cardPalette is cycled through for padding columns, giving the wide mix of
// cardinalities a real operational schema has.
var cardPalette = []int{2, 3, 5, 8, 12, 20, 35, 50, 80, 120, 300, 800, 2000}

// salesTailMass is the probability mass spread thinly across a categorical
// column's non-head values: real operational columns have long thin tails
// (consistent with the 80-20 rule the paper cites for SALES-like data).
const salesTailMass = 0.08

// Sales generates the SALES-like database.
func Sales(cfg SalesConfig) (*engine.Database, error) {
	cfg = cfg.withDefaults()
	if cfg.FactRows < 100 {
		return nil, fmt.Errorf("datagen: FactRows %d too small", cfg.FactRows)
	}
	rng := randx.New(cfg.Seed)
	z := cfg.Zipf

	// Fact gets a fixed set of direct columns; the remaining column budget is
	// split evenly across dimensions as padding.
	const factDirectCols = 8 // 3 measures + 5 categoricals below
	leadCols := 0
	for _, d := range salesDims {
		leadCols += len(d.lead)
	}
	padding := cfg.TotalColumns - factDirectCols - leadCols - len(salesDims) // minus FK columns
	if padding < 0 {
		padding = 0
	}
	padPerDim := padding / len(salesDims)

	var dims []engine.DimJoin
	fkCols := make([]*engine.Column, len(salesDims))
	for di, d := range salesDims {
		rows := cfg.FactRows / d.divisor
		if rows < 10 {
			rows = 10
		}
		b := newDimBuilder(d.name, rows, rng, z)
		for _, lc := range d.lead {
			b.categoricalTailed(lc.col, lc.card, salesTailMass)
		}
		for p := 0; p < padPerDim; p++ {
			card := cardPalette[(di*padPerDim+p)%len(cardPalette)]
			b.categoricalTailed(fmt.Sprintf("%s_attr%02d", d.name, p), card, salesTailMass)
		}
		tbl := b.build()
		fk := engine.NewColumn(d.name+"_fk", engine.Int)
		fkCols[di] = fk
		dims = append(dims, engine.DimJoin{Table: tbl, FK: d.name + "_fk"})
	}

	// Fact table.
	saleAmount := engine.NewColumn("sale_amount", engine.Float)
	units := engine.NewColumn("units", engine.Int)
	margin := engine.NewColumn("margin", engine.Float)
	orderType := engine.NewColumn("order_type", engine.String)
	paymentMethod := engine.NewColumn("payment_method", engine.String)
	shipMethod := engine.NewColumn("ship_method", engine.String)
	priority := engine.NewColumn("priority", engine.String)
	returned := engine.NewColumn("returned", engine.String)

	cols := []*engine.Column{saleAmount, units, margin, orderType, paymentMethod, shipMethod, priority, returned}
	cols = append(cols, fkCols...)
	fact := engine.NewTable("sales_fact", cols...)

	zUnits := randx.NewZipf(z, 30)
	zOrder := randx.NewZipf(z, 6)
	zPay := randx.NewZipf(z, 8)
	zShip := randx.NewZipf(z, 5)
	zPrio := randx.NewZipf(z, 4)
	zRet := randx.NewZipf(z*1.5, 2) // returns are rare

	for i := 0; i < cfg.FactRows; i++ {
		u := int64(zUnits.Draw(rng) + 1)
		amt := randx.LogNormal(rng, 4, 1.1) * float64(u)
		saleAmount.AppendFloat(amt)
		units.AppendInt(u)
		margin.AppendFloat(amt * (0.05 + 0.3*rng.Float64()))
		orderType.AppendString(fmt.Sprintf("order_%d", zOrder.Draw(rng)))
		paymentMethod.AppendString(fmt.Sprintf("pay_%d", zPay.Draw(rng)))
		shipMethod.AppendString(fmt.Sprintf("ship_%d", zShip.Draw(rng)))
		priority.AppendString(fmt.Sprintf("prio_%d", zPrio.Draw(rng)))
		returned.AppendString([]string{"N", "Y"}[zRet.Draw(rng)])
		// Uniform FK references: the skew lives in the attribute values.
		for di := range fkCols {
			fkCols[di].AppendInt(int64(rng.Intn(dims[di].Table.NumRows())))
		}
		fact.EndRow()
	}

	return engine.NewDatabase("SALES", fact, dims...)
}
