package datagen

import (
	"math"
	"testing"

	"dynsample/internal/engine"
)

func TestTPCHShape(t *testing.T) {
	db, err := TPCH(TPCHConfig{ScaleFactor: 0.1, Zipf: 1.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.NumRows(); got != 10000 {
		t.Errorf("fact rows = %d, want 10000", got)
	}
	if len(db.Dims) != 4 {
		t.Errorf("dims = %d, want 4", len(db.Dims))
	}
	for _, col := range []string{"l_quantity", "l_extendedprice", "l_shipmode",
		"p_brand", "s_nation", "c_mktsegment", "o_orderpriority"} {
		if !db.HasColumn(col) {
			t.Errorf("missing column %q", col)
		}
	}
	for _, fk := range []string{"part_fk", "supp_fk", "cust_fk", "ord_fk"} {
		if db.HasColumn(fk) {
			t.Errorf("FK column %q leaked into view", fk)
		}
	}
	for _, m := range TPCHMeasures {
		if !db.HasColumn(m) {
			t.Errorf("measure %q missing", m)
		}
	}
}

func TestTPCHSkewIncreasesTopValueShare(t *testing.T) {
	top := func(z float64) float64 {
		db, err := TPCH(TPCHConfig{ScaleFactor: 0.05, Zipf: z, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		vcs, err := db.DistinctValues("l_shipmode")
		if err != nil {
			t.Fatal(err)
		}
		return float64(vcs[0].Count) / float64(db.NumRows())
	}
	low, high := top(0.5), top(2.5)
	if high <= low {
		t.Errorf("top-value share did not grow with skew: z=0.5 %.3f vs z=2.5 %.3f", low, high)
	}
	if high < 0.7 {
		t.Errorf("z=2.5 top share %.3f unexpectedly small", high)
	}
}

func TestTPCHDeterministic(t *testing.T) {
	a, err := TPCH(TPCHConfig{ScaleFactor: 0.02, Zipf: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TPCH(TPCHConfig{ScaleFactor: 0.02, Zipf: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Accessor("l_quantity")
	qb, _ := b.Accessor("l_quantity")
	for i := 0; i < a.NumRows(); i++ {
		if qa.Value(i) != qb.Value(i) {
			t.Fatalf("row %d differs across same-seed generations", i)
		}
	}
}

func TestTPCHValidation(t *testing.T) {
	if _, err := TPCH(TPCHConfig{ScaleFactor: 0}); err == nil {
		t.Error("zero scale factor not rejected")
	}
	if _, err := TPCH(TPCHConfig{ScaleFactor: 1, Zipf: -1}); err == nil {
		t.Error("negative zipf not rejected")
	}
}

func TestTPCHQueriesRun(t *testing.T) {
	db, err := TPCH(TPCHConfig{ScaleFactor: 0.05, Zipf: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{
		GroupBy: []string{"s_region", "l_returnflag"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "l_extendedprice"}},
	}
	res, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumGroups() == 0 {
		t.Error("no groups")
	}
	var total float64
	for _, g := range res.Groups() {
		total += g.Vals[0]
	}
	if int(total) != db.NumRows() {
		t.Errorf("counts sum to %d, want %d", int(total), db.NumRows())
	}
}

func TestSalesShape(t *testing.T) {
	db, err := Sales(SalesConfig{FactRows: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRows() != 5000 {
		t.Errorf("fact rows = %d", db.NumRows())
	}
	if len(db.Dims) != 6 {
		t.Errorf("dims = %d, want 6", len(db.Dims))
	}
	// Column budget: roughly 245 logical columns (FKs excluded from view).
	got := len(db.Columns())
	if got < 200 || got > 245 {
		t.Errorf("view columns = %d, want ~200-245", got)
	}
	for _, col := range []string{"product_line", "store_region", "customer_segment", "sale_amount"} {
		if !db.HasColumn(col) {
			t.Errorf("missing column %q", col)
		}
	}
	for _, m := range SalesMeasures {
		if !db.HasColumn(m) {
			t.Errorf("measure %q missing", m)
		}
	}
}

func TestSalesMeasureSkew(t *testing.T) {
	db, err := Sales(SalesConfig{FactRows: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := db.Accessor("sale_amount")
	if err != nil {
		t.Fatal(err)
	}
	var sum, max float64
	n := db.NumRows()
	for i := 0; i < n; i++ {
		v := acc.Float(i)
		if v <= 0 {
			t.Fatalf("non-positive sale_amount %g", v)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(n)
	// Log-normal tail: the max should dwarf the mean.
	if max < 10*mean {
		t.Errorf("sale_amount not heavy-tailed: max %g mean %g", max, mean)
	}
}

func TestSalesDeterministic(t *testing.T) {
	a, _ := Sales(SalesConfig{FactRows: 1000, Seed: 9})
	b, _ := Sales(SalesConfig{FactRows: 1000, Seed: 9})
	accA, _ := a.Accessor("sale_amount")
	accB, _ := b.Accessor("sale_amount")
	for i := 0; i < 1000; i++ {
		if math.Abs(accA.Float(i)-accB.Float(i)) > 0 {
			t.Fatalf("row %d differs across same-seed generations", i)
		}
	}
}

func TestSalesValidation(t *testing.T) {
	if _, err := Sales(SalesConfig{FactRows: 10}); err == nil {
		t.Error("tiny FactRows not rejected")
	}
}

func TestSalesDimensionJoins(t *testing.T) {
	db, err := Sales(SalesConfig{FactRows: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{
		GroupBy: []string{"store_region"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
	}
	res, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, g := range res.Groups() {
		total += g.Vals[0]
	}
	if int(total) != 2000 {
		t.Errorf("counts sum to %d", int(total))
	}
}
