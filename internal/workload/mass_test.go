package workload

import (
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// skewedTestDB builds a table whose column values are heavily skewed, where
// value-count predicate construction and mass-calibrated construction
// diverge sharply.
func skewedTestDB(t *testing.T) *engine.Database {
	t.Helper()
	g := engine.NewColumn("g", engine.Int)
	h := engine.NewColumn("h", engine.String)
	fact := engine.NewTable("fact", g, h)
	rng := randx.New(9)
	zi := randx.NewZipf(2.0, 200)
	zs := randx.NewZipf(1.8, 80)
	for i := 0; i < 30000; i++ {
		g.AppendInt(int64(zi.Draw(rng)))
		h.AppendString("h" + itoa(zs.Draw(rng)))
		fact.EndRow()
	}
	return engine.MustNewDatabase("skew", fact)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestMassSelectivityHitsTarget(t *testing.T) {
	db := skewedTestDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 1,
		Predicates:      1,
		Aggregate:       engine.Count,
		PredFracLo:      0.1,
		PredFracHi:      0.3,
		MassSelectivity: true,
		MaxDistinct:     1000,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range g.Queries(30) {
		res, err := engine.ExecuteExact(db, q)
		if err != nil {
			t.Fatal(err)
		}
		sel := float64(res.RowsMatched) / float64(db.NumRows())
		// Value accumulation overshoots by at most one value's mass; the
		// dominant value can carry ~60% on this data, so allow [0.1, 0.95].
		if sel < 0.1 || sel > 0.95 {
			t.Errorf("query %d selectivity %.4f outside calibrated band", i, sel)
		}
	}
}

func TestMassSelectivitySplitsAcrossPredicates(t *testing.T) {
	db := skewedTestDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 1,
		Predicates:      2,
		Aggregate:       engine.Count,
		PredFracLo:      0.2,
		PredFracHi:      0.2, // fixed total target
		MassSelectivity: true,
		MaxDistinct:     1000,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, ok := 0, 0
	for _, q := range g.Queries(30) {
		if len(q.Where) != 2 {
			t.Fatalf("predicates = %d", len(q.Where))
		}
		res, err := engine.ExecuteExact(db, q)
		if err != nil {
			t.Fatal(err)
		}
		sel := float64(res.RowsMatched) / float64(db.NumRows())
		// Independent columns: the two sqrt(0.2) predicates compound to
		// roughly 0.2, give or take correlation noise and per-value
		// granularity.
		if sel >= 0.02 {
			ok++
		} else {
			low++
		}
	}
	if ok < low {
		t.Errorf("most queries far below the calibrated selectivity: %d ok vs %d low", ok, low)
	}
}

func TestLiteralConstructionStillAvailable(t *testing.T) {
	// With MassSelectivity false (the paper's literal construction) the
	// predicate size in VALUES must respect the fraction bounds even though
	// the effective selectivity may be tiny.
	db := skewedTestDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 1,
		Predicates:      1,
		Aggregate:       engine.Count,
		PredFracLo:      0.1,
		PredFracHi:      0.1,
		MaxDistinct:     1000,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := g.Query()
		in := q.Where[0].(*engine.InPredicate)
		d := 0
		for _, c := range g.cols {
			if c.name == in.Col {
				d = len(c.values)
			}
		}
		want := int(0.1 * float64(d))
		if want < 1 {
			want = 1
		}
		if len(in.Values()) != want {
			t.Errorf("query %d: predicate keeps %d of %d values, want %d", i, len(in.Values()), d, want)
		}
	}
}
