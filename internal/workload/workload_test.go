package workload

import (
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

func testDB(t *testing.T) *engine.Database {
	t.Helper()
	a := engine.NewColumn("a", engine.String)
	b := engine.NewColumn("b", engine.Int)
	c := engine.NewColumn("c", engine.String)
	u := engine.NewColumn("u", engine.Int) // near-unique: excluded
	m := engine.NewColumn("m", engine.Float)
	fact := engine.NewTable("fact", a, b, c, u, m)
	rng := randx.New(21)
	for i := 0; i < 2000; i++ {
		a.AppendString("a" + string(rune('0'+rng.Intn(8))))
		b.AppendInt(int64(rng.Intn(20)))
		c.AppendString("c" + string(rune('0'+rng.Intn(5))))
		u.AppendInt(int64(i))
		m.AppendFloat(rng.Float64() * 100)
		fact.EndRow()
	}
	return engine.MustNewDatabase("w", fact)
}

func TestEligibleColumnsExcludeUniqueAndMeasures(t *testing.T) {
	db := testDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 2, Predicates: 1, Aggregate: engine.Sum,
		Measures: []string{"m"}, MaxDistinct: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := g.EligibleColumns()
	for _, c := range cols {
		if c == "u" {
			t.Error("near-unique column u eligible")
		}
		if c == "m" {
			t.Error("measure column m eligible for grouping")
		}
	}
	if len(cols) != 3 {
		t.Errorf("eligible = %v, want [a b c]", cols)
	}
}

func TestQueryShape(t *testing.T) {
	db := testDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 2, Predicates: 2, Aggregate: engine.Count, MaxDistinct: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		q := g.Query()
		if len(q.GroupBy) != 2 {
			t.Fatalf("query %d: %d grouping columns", i, len(q.GroupBy))
		}
		if q.GroupBy[0] == q.GroupBy[1] {
			t.Fatalf("query %d: duplicate grouping column %q", i, q.GroupBy[0])
		}
		if len(q.Where) != 2 {
			t.Fatalf("query %d: %d predicates", i, len(q.Where))
		}
		if len(q.Aggs) != 1 || q.Aggs[0].Kind != engine.Count {
			t.Fatalf("query %d: aggs %v", i, q.Aggs)
		}
		if err := q.Validate(db); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
	}
}

func TestSumQueriesUseMeasures(t *testing.T) {
	db := testDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 1, Aggregate: engine.Sum, Measures: []string{"m"}, MaxDistinct: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := g.Query()
	if q.Aggs[0].Kind != engine.Sum || q.Aggs[0].Col != "m" {
		t.Errorf("agg = %+v", q.Aggs[0])
	}
}

func TestPredicateSubsetSize(t *testing.T) {
	db := testDB(t)
	g, err := NewGenerator(db, Config{
		GroupingColumns: 1, Predicates: 1, Aggregate: engine.Count,
		PredFracLo: 0.2, PredFracHi: 0.5, MaxDistinct: 100, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]int{"a": 8, "b": 20, "c": 5}
	for i := 0; i < 100; i++ {
		q := g.Query()
		in := q.Where[0].(*engine.InPredicate)
		d := distinct[in.Col]
		k := len(in.Values())
		lo := int(0.2 * float64(d))
		if lo < 1 {
			lo = 1
		}
		hi := int(0.5*float64(d)) + 1
		if k < lo || k > hi {
			t.Errorf("query %d: predicate on %s keeps %d of %d values, want within [%d,%d]", i, in.Col, k, d, lo, hi)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	db := testDB(t)
	mk := func() []*engine.Query {
		g, err := NewGenerator(db, Config{GroupingColumns: 2, Predicates: 1, Aggregate: engine.Count, MaxDistinct: 100, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return g.Queries(10)
	}
	qa, qb := mk(), mk()
	for i := range qa {
		if qa[i].String() != qb[i].String() {
			t.Fatalf("query %d differs:\n%s\n%s", i, qa[i], qb[i])
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	db := testDB(t)
	cases := []Config{
		{GroupingColumns: -1},
		{GroupingColumns: 1, Aggregate: engine.Sum}, // no measures
		{GroupingColumns: 1, PredFracLo: 0.5, PredFracHi: 0.1},
		{GroupingColumns: 10, MaxDistinct: 100},                                 // not enough columns
		{GroupingColumns: 1, Measures: []string{"nope"}, Aggregate: engine.Sum}, // unknown measure
	}
	for i, cfg := range cases {
		if _, err := NewGenerator(db, cfg); err == nil {
			t.Errorf("config %d not rejected: %+v", i, cfg)
		}
	}
}

func TestQueriesExecutable(t *testing.T) {
	db := testDB(t)
	g, err := NewGenerator(db, Config{GroupingColumns: 2, Predicates: 2, Aggregate: engine.Count, MaxDistinct: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, q := range g.Queries(20) {
		res, err := engine.ExecuteExact(db, q)
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		if res.NumGroups() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 15 {
		t.Errorf("only %d of 20 queries matched any rows", nonEmpty)
	}
}
