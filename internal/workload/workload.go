// Package workload generates the random query workloads of §5.2.3:
// select-project-join queries with group-bys and COUNT/SUM aggregations over
// a star schema. Grouping columns are drawn uniformly at random from the
// database's columns (excluding near-unique columns such as row ids),
// selection predicates restrict a random column to a random subset of its
// distinct values sized between 5% and 30% of them, and SUM queries aggregate
// a randomly chosen measure column.
//
// Generation draws from a caller-supplied seeded generator and must stay on
// one goroutine for reproducibility; the produced engine.Query values are
// immutable afterwards and may be executed concurrently (the engine's scan
// kernels only read them).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// Config parameterises query generation.
type Config struct {
	// GroupingColumns is the number of group-by columns per query (the paper
	// varies 1-4).
	GroupingColumns int
	// Predicates is the number of conjunctive selection predicates (1 or 2).
	Predicates int
	// PredFracLo and PredFracHi bound each predicate's size. With
	// MassSelectivity false (the paper's literal construction) they bound
	// the fraction of the column's distinct values kept. With
	// MassSelectivity true they bound the query's total effective
	// selectivity: values are accumulated until the predicate covers the
	// target fraction of the rows. Zeros mean the paper's 0.05 and 0.3.
	PredFracLo, PredFracHi float64
	// MassSelectivity calibrates predicates by row mass instead of by
	// distinct-value count. On heavily skewed data a uniformly chosen value
	// subset carries far less mass than its size suggests, so at reduced
	// data scale the literal construction starves every group; calibrating
	// by mass preserves the paper's effective query selectivity (see the
	// Figure 5 selectivity range). The target is split evenly (in the
	// geometric sense) across the query's predicates.
	MassSelectivity bool
	// Aggregate selects COUNT or SUM queries.
	Aggregate engine.AggKind
	// Measures lists the columns SUM may aggregate; required for SUM.
	Measures []string
	// MaxDistinct excludes columns with more distinct values from grouping
	// and predicates ("columns where almost every value was unique ... were
	// excluded"); zero means 1000.
	MaxDistinct int
	// Columns restricts the candidate column pool; nil means all view columns.
	Columns []string
	// Seed drives generation.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PredFracLo == 0 {
		c.PredFracLo = 0.05
	}
	if c.PredFracHi == 0 {
		c.PredFracHi = 0.3
	}
	if c.MaxDistinct == 0 {
		c.MaxDistinct = 1000
	}
	return c
}

// Generator produces random queries over one database. Construction scans
// the candidate columns once to learn their distinct values.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	cols []colInfo
}

type colInfo struct {
	name   string
	values []engine.Value // distinct values, most frequent first
	counts []int64        // occurrence counts, aligned with values
	total  int64
}

// NewGenerator builds a generator for db.
func NewGenerator(db *engine.Database, cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.GroupingColumns < 0 {
		return nil, fmt.Errorf("workload: negative grouping columns")
	}
	if cfg.Aggregate == engine.Sum && len(cfg.Measures) == 0 {
		return nil, fmt.Errorf("workload: SUM workload needs measure columns")
	}
	if cfg.PredFracLo > cfg.PredFracHi {
		return nil, fmt.Errorf("workload: predicate fraction bounds inverted")
	}
	candidates := cfg.Columns
	if candidates == nil {
		candidates = db.Columns()
	}
	measureSet := make(map[string]bool, len(cfg.Measures))
	for _, m := range cfg.Measures {
		if !db.HasColumn(m) {
			return nil, fmt.Errorf("workload: unknown measure column %q", m)
		}
		measureSet[m] = true
	}
	g := &Generator{cfg: cfg, rng: randx.New(cfg.Seed)}
	for _, name := range candidates {
		if measureSet[name] {
			continue // measures are aggregated, not grouped or filtered
		}
		vcs, err := db.DistinctValues(name)
		if err != nil {
			return nil, err
		}
		if len(vcs) > cfg.MaxDistinct || len(vcs) < 2 {
			continue
		}
		values := make([]engine.Value, len(vcs))
		counts := make([]int64, len(vcs))
		var total int64
		for i, vc := range vcs {
			values[i] = vc.Value
			counts[i] = vc.Count
			total += vc.Count
		}
		g.cols = append(g.cols, colInfo{name: name, values: values, counts: counts, total: total})
	}
	if len(g.cols) < cfg.GroupingColumns {
		return nil, fmt.Errorf("workload: only %d eligible columns for %d grouping columns", len(g.cols), cfg.GroupingColumns)
	}
	if len(g.cols) == 0 && cfg.Predicates > 0 {
		return nil, fmt.Errorf("workload: no eligible predicate columns")
	}
	return g, nil
}

// EligibleColumns returns the names of the columns queries may reference.
func (g *Generator) EligibleColumns() []string {
	out := make([]string, len(g.cols))
	for i, c := range g.cols {
		out[i] = c.name
	}
	return out
}

// Query generates one random query.
func (g *Generator) Query() *engine.Query {
	q := &engine.Query{}

	// Grouping columns: distinct columns chosen uniformly at random.
	perm := g.rng.Perm(len(g.cols))
	for _, ix := range perm[:g.cfg.GroupingColumns] {
		q.GroupBy = append(q.GroupBy, g.cols[ix].name)
	}

	// Aggregate.
	switch g.cfg.Aggregate {
	case engine.Count:
		q.Aggs = []engine.Aggregate{{Kind: engine.Count}}
	case engine.Sum:
		m := g.cfg.Measures[g.rng.Intn(len(g.cfg.Measures))]
		q.Aggs = []engine.Aggregate{{Kind: engine.Sum, Col: m}}
	}

	// Predicates: random column, random value subset.
	if g.cfg.MassSelectivity && g.cfg.Predicates > 0 {
		total := g.cfg.PredFracLo + g.rng.Float64()*(g.cfg.PredFracHi-g.cfg.PredFracLo)
		perPred := math.Pow(total, 1/float64(g.cfg.Predicates))
		for p := 0; p < g.cfg.Predicates; p++ {
			ci := g.cols[g.rng.Intn(len(g.cols))]
			q.Where = append(q.Where, g.massPredicate(ci, perPred))
		}
		return q
	}
	for p := 0; p < g.cfg.Predicates; p++ {
		ci := g.cols[g.rng.Intn(len(g.cols))]
		frac := g.cfg.PredFracLo + g.rng.Float64()*(g.cfg.PredFracHi-g.cfg.PredFracLo)
		k := int(frac * float64(len(ci.values)))
		if k < 1 {
			k = 1
		}
		picked := randx.SampleWithoutReplacement(g.rng, len(ci.values), k)
		vals := make([]engine.Value, len(picked))
		for i, ix := range picked {
			vals[i] = ci.values[ix]
		}
		q.Where = append(q.Where, engine.NewIn(ci.name, vals...))
	}
	return q
}

// massPredicate picks random values of the column until they cover at least
// the target fraction of the rows.
func (g *Generator) massPredicate(ci colInfo, target float64) engine.Predicate {
	perm := g.rng.Perm(len(ci.values))
	var vals []engine.Value
	var mass int64
	need := int64(target * float64(ci.total))
	for _, ix := range perm {
		vals = append(vals, ci.values[ix])
		mass += ci.counts[ix]
		if mass >= need {
			break
		}
	}
	return engine.NewIn(ci.name, vals...)
}

// Queries generates n random queries.
func (g *Generator) Queries(n int) []*engine.Query {
	out := make([]*engine.Query, n)
	for i := range out {
		out[i] = g.Query()
	}
	return out
}
