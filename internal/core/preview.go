package core

import (
	"fmt"
	"sort"

	"dynsample/internal/engine"
	"dynsample/internal/stats"
)

// PlanPreviewer is implemented by Prepared states that can enumerate their
// candidate plans — with §4.4 error predictions and calibrated latency
// predictions — without executing anything. The scenario harness uses it to
// compare what the planner *promised* for a query against the error it
// actually achieved, which is the measurement behind the correlated-columns
// accuracy study in EXPERIMENTS.md.
type PlanPreviewer interface {
	// PreviewPlans returns every candidate the planner would consider for q
	// under b (cheapest first), with Feasible set per the bounds, plus the
	// prediction caveats for the full plan.
	PreviewPlans(q *engine.Query, b Bounds) ([]PlanCandidate, []string, error)
}

// PreviewPlans enumerates the candidate plans for q exactly as AnswerBounds
// would, but performs no execution. Confidence resolves like a bounded query:
// the request level, then the configured level, then the default.
func (p *smallGroupPrepared) PreviewPlans(q *engine.Query, b Bounds) ([]PlanCandidate, []string, error) {
	conf := b.Confidence
	if conf == 0 {
		conf = p.cfg.ConfidenceLevel
	}
	if conf == 0 {
		conf = DefaultConfidenceLevel
	}
	z := stats.NormalQuantile(0.5 + conf/2)
	choices, caveats := p.enumerate(q, z, true, true)
	cands := make([]PlanCandidate, len(choices))
	for i, c := range choices {
		c.cand.Feasible = (b.ErrorBound == 0 || c.cand.PredictedError <= b.ErrorBound) &&
			(b.TimeBound == 0 || c.cand.PredictedLatency <= b.TimeBound)
		cands[i] = c.cand
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Rows < cands[j].Rows })
	return cands, caveats, nil
}

// PreviewPlans exposes the named strategy's plan enumeration without running
// anything: every candidate with its predicted error and latency, feasibility
// judged against b. Strategies whose runtime state does not implement
// PlanPreviewer return an error.
func (s *System) PreviewPlans(strategy string, q *engine.Query, b Bounds) ([]PlanCandidate, []string, error) {
	p, ok := s.set.Load().prepared[strategy]
	if !ok {
		return nil, nil, fmt.Errorf("core: strategy %q not registered", strategy)
	}
	pv, ok := p.(PlanPreviewer)
	if !ok {
		return nil, nil, fmt.Errorf("core: strategy %q does not support plan preview", strategy)
	}
	if err := q.Validate(s.DB()); err != nil {
		return nil, nil, err
	}
	return pv.PreviewPlans(q, b)
}
