package core

import (
	"bufio"
	"fmt"
	"io"

	"dynsample/internal/catalog"
)

// Checksummed snapshot persistence: SaveSmallGroup's raw stream wrapped in
// the catalog container (magic header, per-chunk CRC32, checksummed
// trailer), so truncation and bit rot are detected with a precise error
// instead of being decoded into garbage sample tables. This is the format
// aqpcli -save writes and the sample catalog stores; LoadSmallGroupAny
// still accepts the legacy raw format for files written by older builds.

// SaveSmallGroupSnapshot writes p in the checksummed snapshot container.
func SaveSmallGroupSnapshot(w io.Writer, p Prepared) error {
	return catalog.WriteSnapshot(w, func(pw io.Writer) error {
		return SaveSmallGroup(pw, p)
	})
}

// LoadSmallGroupSnapshot reads state written by SaveSmallGroupSnapshot,
// verifying every checksum (including unread tail sections) before the
// result is trusted.
func LoadSmallGroupSnapshot(r io.Reader) (Prepared, error) {
	var p Prepared
	err := catalog.ReadSnapshot(r, func(pr io.Reader) error {
		var derr error
		p, derr = LoadSmallGroup(pr)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// LoadSmallGroupAny sniffs the stream's magic and loads either a
// checksummed snapshot (SaveSmallGroupSnapshot) or a legacy raw store
// (SaveSmallGroup). Legacy files carry no integrity protection; loading
// them still works but re-saving through the snapshot writer is
// recommended.
func LoadSmallGroupAny(r io.Reader) (Prepared, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("core: reading store header: %w", err)
	}
	switch string(head) {
	case "DSSN": // catalog snapshot container ("DSSNAP01")
		return LoadSmallGroupSnapshot(br)
	case storeMagic:
		return LoadSmallGroup(br)
	default:
		return nil, fmt.Errorf("core: unrecognised sample store magic %q", head)
	}
}
