package core

import (
	"fmt"
	"sort"

	"dynsample/internal/engine"
	"dynsample/internal/stats"
)

// This file implements per-shard summary statistics for the scatter-gather
// cluster tier, following "Approximate Partition Selection using Summary
// Statistics" (see PAPERS.md): each shard registers a compact summary of its
// partition when it joins the cluster, and the coordinator uses the
// summaries for three things — deriving per-shard deadlines from scan
// rates, pruning shards whose value sets provably exclude a query's
// predicate, and quantifying what a missing shard costs so a partial answer
// can carry an honest widened error bound instead of a silent hole.

// shardColumnValueCap bounds how many distinct values one column summary
// records. Columns past the cap are marked Truncated and can no longer prove
// absence, so the coordinator must treat them as "may contain anything".
const shardColumnValueCap = 256

// ShardColumnStats summarises one string column of a shard's partition.
type ShardColumnStats struct {
	// Values is the column's distinct values on this shard, sorted, capped
	// at shardColumnValueCap entries.
	Values []string `json:"values,omitempty"`
	// Truncated is set when the column had more distinct values than the
	// cap; Values is then a subset and absence proves nothing.
	Truncated bool `json:"truncated,omitempty"`
}

// ShardStats is the summary one shard registers with the coordinator at
// join time. All fields are conservative: the coordinator uses them to
// widen error bounds and prune work, so a stale summary can make answers
// looser or fan-out wider, never wrong.
type ShardStats struct {
	// ShardID and Shards identify the shard's slot in the partition scheme.
	ShardID int `json:"shard_id"`
	Shards  int `json:"shards"`
	// Rows is the shard's partition size (fact rows).
	Rows int64 `json:"rows"`
	// SampleRows is the total rows across the shard's sample tables — the
	// work a full-fraction plan scans, used for deadline derivation.
	SampleRows int64 `json:"sample_rows"`
	// RareMass is the fraction of the shard's rows living in small group
	// tables (rare rows / base rows, worst column). A missing shard with
	// high rare mass can hide entire exact groups, so the coordinator
	// reports group-level completeness more cautiously.
	RareMass float64 `json:"rare_mass"`
	// Generation is the shard's data generation at summary time.
	Generation uint64 `json:"generation"`
	// ScanRowsPerSecond is the shard's calibrated scan throughput, for
	// per-shard deadline derivation from a request's time bound.
	ScanRowsPerSecond float64 `json:"scan_rows_per_second"`
	// Columns summarises the shard's string columns by value set, enabling
	// shard pruning (a query filtering on region='east' skips shards whose
	// region set excludes 'east') and per-group completeness of partials.
	Columns map[string]ShardColumnStats `json:"columns,omitempty"`
}

// scanRater is the unexported surface prepared states expose for throughput
// estimates; smallGroupPrepared implements it via its planner statistics.
type scanRater interface{ scanRate() float64 }

// ScanRateOf returns a Prepared's calibrated scan throughput in rows per
// second, falling back to the conservative default for states that do not
// track one.
func ScanRateOf(p Prepared) float64 {
	if sr, ok := p.(scanRater); ok {
		return sr.scanRate()
	}
	return DefaultScanRowsPerSecond
}

// metaHolder is implemented by prepared states that expose their catalog.
type metaHolder interface{ Meta() *Metadata }

// ComputeShardStats builds the join summary for this process's partition:
// row counts and sample sizes from the named strategy's prepared state, the
// rare-row mass from its catalog, and per-column value sets from the base
// view (string columns only; high-cardinality columns are truncated and
// marked as such).
func ComputeShardStats(sys *System, strategy string, shardID, shards int) (*ShardStats, error) {
	p, ok := sys.Prepared(strategy)
	if !ok {
		return nil, fmt.Errorf("core: strategy %q not registered", strategy)
	}
	db, gen := sys.Data()
	st := &ShardStats{
		ShardID:           shardID,
		Shards:            shards,
		Rows:              int64(db.NumRows()),
		SampleRows:        p.SampleRows(),
		Generation:        gen,
		ScanRowsPerSecond: ScanRateOf(p),
		Columns:           make(map[string]ShardColumnStats),
	}
	if mh, ok := p.(metaHolder); ok {
		meta := mh.Meta()
		if meta.BaseRows > 0 {
			for _, cm := range meta.Columns() {
				if mass := float64(cm.RareRows) / float64(meta.BaseRows); mass > st.RareMass {
					st.RareMass = mass
				}
			}
		}
	}
	for _, name := range db.Columns() {
		t, err := db.ColumnType(name)
		if err != nil || t != engine.String {
			continue
		}
		vcs, err := db.DistinctValues(name)
		if err != nil {
			return nil, err
		}
		cs := ShardColumnStats{}
		if len(vcs) > shardColumnValueCap {
			cs.Truncated = true
			vcs = vcs[:shardColumnValueCap]
		}
		for _, vc := range vcs {
			cs.Values = append(cs.Values, vc.Value.S)
		}
		sort.Strings(cs.Values)
		st.Columns[name] = cs
	}
	return st, nil
}

// MayContain reports whether the shard's partition may hold rows with the
// given value in the named column. It errs toward true: only a complete
// (untruncated) value set that excludes the value proves absence. The
// coordinator uses this both to prune fan-out for equality/IN predicates
// and to decide whether a missing shard could have contributed to a group.
func (s *ShardStats) MayContain(column, value string) bool {
	if s == nil || s.Columns == nil {
		return true
	}
	cs, ok := s.Columns[column]
	if !ok || cs.Truncated {
		return true
	}
	for _, v := range cs.Values {
		if v == value {
			return true
		}
	}
	return false
}

// WidenError widens a relative error estimate e to account for a missing
// fraction f of the data (0 ≤ f < 1). A group's estimate from the surviving
// shards can understate the truth by up to f/(1−f) relative to what was
// seen (the missing shards could hold up to f of the group's mass), so that
// ratio is added to the sampling error. f ≥ 1 (nothing survived) saturates
// at 1, the planner's "no better than a guess" ceiling.
func WidenError(e, f float64) float64 {
	if f <= 0 {
		return e
	}
	if f >= 1 {
		return 1
	}
	w := e + f/(1-f)
	if w > 1 {
		return 1
	}
	return w
}

// AchievedError is the exported form of the planner's cheap online error
// estimate (mean per-group relative half-width; see docs/ACCURACY.md), so
// the cluster coordinator can recompute it over a merged partial result.
func AchievedError(res *engine.Result, ivs map[engine.GroupKey][]stats.Interval) float64 {
	return achievedError(res, ivs)
}
