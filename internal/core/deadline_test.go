package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dynsample/internal/engine"
	"dynsample/internal/faults"
)

func deadlineQuery() *engine.Query {
	return &engine.Query{
		GroupBy: []string{"a"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}},
	}
}

// TestAnswerCtxNoDeadlineUnchanged: without a deadline, AnswerCtx is exactly
// Answer — same plan, no degradation, bit-identical values.
func TestAnswerCtxNoDeadlineUnchanged(t *testing.T) {
	db := skewedDB(t, 20000)
	// ScanRowsPerSecond=1 would degrade any deadline-bearing query; with no
	// deadline it must have no effect at all.
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, ScanRowsPerSecond: 1})
	q := deadlineQuery()
	want, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.AnswerCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("degraded without a deadline")
	}
	if len(got.Rewrite.Steps) != len(want.Rewrite.Steps) {
		t.Fatalf("plan steps %d != %d", len(got.Rewrite.Steps), len(want.Rewrite.Steps))
	}
	for _, k := range want.Result.Keys() {
		wg, gg := want.Result.Group(k), got.Result.Group(k)
		if gg == nil || wg.Vals[0] != gg.Vals[0] || wg.Vals[1] != gg.Vals[1] {
			t.Fatalf("group %q differs: %v vs %v", k, wg, gg)
		}
	}
}

// TestAnswerCtxDegradesUnderDeadlinePressure: a throughput estimate of one
// row per second makes any realistic deadline too small for the full plan,
// so AnswerCtx must fall back to the overall-sample-only plan, flag the
// answer Degraded, and still finish well within the (generous) deadline.
func TestAnswerCtxDegradesUnderDeadlinePressure(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, ScanRowsPerSecond: 1})
	q := deadlineQuery()

	full, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rewrite.Steps) < 2 {
		t.Fatalf("fixture too small: full plan has %d steps, need >= 2", len(full.Rewrite.Steps))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := p.AnswerCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Fatal("answer not degraded despite impossible row budget")
	}
	if len(got.Rewrite.Steps) != 1 {
		t.Fatalf("degraded plan has %d steps, want 1 (overall sample only)", len(got.Rewrite.Steps))
	}
	if name := got.Rewrite.Steps[0].Name; !strings.Contains(name, "overall") {
		t.Fatalf("degraded plan reads %q, want the overall sample", name)
	}
	if got.RowsRead >= full.RowsRead {
		t.Fatalf("degraded plan read %d rows, full plan %d — degradation must be cheaper", got.RowsRead, full.RowsRead)
	}
	// The degraded estimates are plain uniform-sample estimates: they must
	// match executing the overall-sample-only plan directly.
	want, _, err := ExecutePlan(&RewritePlan{Query: q, Steps: []RewriteStep{{
		Source: p.overall.src, Name: p.overall.name, Scale: p.overallScale,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range want.Keys() {
		wg, gg := want.Group(k), got.Result.Group(k)
		if gg == nil || wg.Vals[0] != gg.Vals[0] {
			t.Fatalf("degraded group %q = %v, want uniform estimate %v", k, gg, wg)
		}
		if gg.Exact {
			t.Fatalf("degraded group %q marked exact", k)
		}
	}
}

// TestAnswerCtxAmpleBudgetNotDegraded: with a huge throughput estimate the
// same deadline leaves the full plan untouched.
func TestAnswerCtxAmpleBudgetNotDegraded(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, ScanRowsPerSecond: 1e12})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := p.AnswerCtx(ctx, deadlineQuery())
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("degraded despite ample row budget")
	}
	if len(got.Rewrite.Steps) < 2 {
		t.Fatalf("full plan lost steps: %d", len(got.Rewrite.Steps))
	}
}

// TestExecutePlanCtxCancelled: a dead context aborts the plan.
func TestExecutePlanCtxCancelled(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ExecutePlanCtx(ctx, p.Plan(deadlineQuery())); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecutePlanCtxPanickingStepContained: a fault-injected panic inside a
// rewrite step, running on pool goroutines, surfaces as an error — not a
// process crash.
func TestExecutePlanCtxPanickingStepContained(t *testing.T) {
	t.Cleanup(faults.Reset)
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, Workers: 4})
	faults.Set(faults.PointPlanStep, faults.PanicHook("step exploded"))
	_, _, err := ExecutePlanCtx(context.Background(), p.Plan(deadlineQuery()))
	if err == nil || !strings.Contains(err.Error(), "step exploded") {
		t.Fatalf("err = %v, want contained panic", err)
	}
}

// TestAnswerCtxStuckShardTimesOut: a stuck scan worker (blocking fault hook)
// plus a deadline produces DeadlineExceeded promptly instead of hanging the
// query forever — the end-to-end cancellation contract of the middleware.
func TestAnswerCtxStuckShardTimesOut(t *testing.T) {
	t.Cleanup(faults.Reset)
	db := skewedDB(t, 20000)
	// Huge throughput estimate: degradation must not rescue the query; the
	// stuck shard has to hit the deadline.
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, Workers: 2, ScanRowsPerSecond: 1e12})
	release := make(chan struct{})
	defer close(release)
	faults.Set(faults.PointScanShard, faults.BlockHook(release))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.AnswerCtx(ctx, deadlineQuery())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stuck shard held the query for %v", elapsed)
	}
}
