package core

import (
	"bytes"
	"math"
	"testing"

	"dynsample/internal/engine"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := skewedDB(t, 10000)
	orig := prep(t, db, SmallGroupConfig{
		BaseRate: 0.02, DistinctLimit: 100, Seed: 1, MaxTablesPerQuery: 3, ConfidenceLevel: 0.9,
	})

	var buf bytes.Buffer
	if err := SaveSmallGroup(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSmallGroup(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// The restored state must answer queries identically, with no access to
	// the base database.
	queries := []*engine.Query{
		{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}},
		{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}},
			Where: []engine.Predicate{engine.NewIn("b", engine.StringVal("B0"), engine.StringVal("B1"))}},
	}
	for qi, q := range queries {
		a1, err := orig.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := loaded.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if a1.Result.NumGroups() != a2.Result.NumGroups() {
			t.Fatalf("query %d: groups %d vs %d", qi, a1.Result.NumGroups(), a2.Result.NumGroups())
		}
		for _, k := range a1.Result.Keys() {
			g1, g2 := a1.Result.Group(k), a2.Result.Group(k)
			if g2 == nil {
				t.Fatalf("query %d: group %v missing after reload", qi, g1.Key)
			}
			if g1.Exact != g2.Exact {
				t.Errorf("query %d group %v: exactness differs", qi, g1.Key)
			}
			for i := range g1.Vals {
				if math.Abs(g1.Vals[i]-g2.Vals[i]) > 1e-9 {
					t.Errorf("query %d group %v agg %d: %g vs %g", qi, g1.Key, i, g1.Vals[i], g2.Vals[i])
				}
				iv1, iv2 := a1.Interval(k, i), a2.Interval(k, i)
				if math.Abs(iv1.Width()-iv2.Width()) > 1e-9 {
					t.Errorf("query %d group %v agg %d: CI widths %g vs %g", qi, g1.Key, i, iv1.Width(), iv2.Width())
				}
			}
		}
	}
	if orig.SampleRows() != loaded.SampleRows() {
		t.Errorf("sample rows %d vs %d", orig.SampleRows(), loaded.SampleRows())
	}
}

func TestSaveLoadWithPairsAndLevels(t *testing.T) {
	db := pairDB(t, 8000)
	orig := prep(t, db, SmallGroupConfig{
		BaseRate:           0.05,
		SmallGroupFraction: 0.02,
		Seed:               2,
		Pairs:              [][2]string{{"a", "b"}},
		Levels: []HierarchyLevel{
			{MaxFraction: 0.01, Rate: 1},
			{MaxFraction: 0.02, Rate: 0.5},
		},
	})
	var buf bytes.Buffer
	if err := SaveSmallGroup(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSmallGroup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lm := loaded.(*smallGroupPrepared).Meta()
	if len(lm.Pairs()) != len(orig.Meta().Pairs()) {
		t.Fatalf("pairs %d vs %d", len(lm.Pairs()), len(orig.Meta().Pairs()))
	}
	q := &engine.Query{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	a1, _ := orig.Answer(q)
	a2, err := loaded.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range a1.Result.Keys() {
		if math.Abs(a1.Result.Group(k).Vals[0]-a2.Result.Group(k).Vals[0]) > 1e-9 {
			t.Errorf("group %v differs after reload", engine.DecodeKey(k))
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("DSSGxxxxxxxxxxxxxxxx"),
	}
	for i, b := range cases {
		if _, err := LoadSmallGroup(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestSaveRejectsForeignPrepared(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSmallGroup(&buf, fakePrepared{}); err == nil {
		t.Error("foreign Prepared accepted")
	}
}

type fakePrepared struct{}

func (fakePrepared) Answer(*engine.Query) (*Answer, error) { return nil, nil }
func (fakePrepared) SampleBytes() int64                    { return 0 }
func (fakePrepared) SampleRows() int64                     { return 0 }

func TestTruncatedStreamRejected(t *testing.T) {
	db := skewedDB(t, 3000)
	orig := prep(t, db, SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 100, Seed: 3})
	var buf bytes.Buffer
	if err := SaveSmallGroup(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 3, len(full) - 5} {
		if _, err := LoadSmallGroup(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
