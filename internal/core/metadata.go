package core

import (
	"fmt"
	"sort"
	"strings"

	"dynsample/internal/engine"
)

// ColumnMeta describes one small-group column: its table index (the bit
// position in row bitmasks), its set of common values L(C), and how many base
// rows fall outside L(C) (the rows stored in its small group table).
type ColumnMeta struct {
	Column string
	Index  int
	// Common is L(C): the minimum set of values whose frequencies sum to at
	// least N(1−t). Rows with values outside this set belong to the column's
	// small group table.
	Common map[engine.Value]struct{}
	// Exact holds the values stored at a 100% rate. Nil means the default
	// two-level hierarchy, where every value outside Common is exact; under
	// the multi-level extension (§4.2.3) medium-band values are in the table
	// but subsampled, so they appear in neither Common nor Exact.
	Exact map[engine.Value]struct{}
	// RareRows is the number of base rows outside L(C); always ≤ N·t under
	// the default two-level hierarchy.
	RareRows int64
	// Distinct is the column's distinct-value count observed in pass 1.
	Distinct int
}

// PairMeta describes a column-pair small group table (the §4.2.3 variation
// "generate small group tables based on selected group-by queries over pairs
// of columns"): it stores the rows whose *combination* of values is rare
// even though each value is individually common.
type PairMeta struct {
	Cols  [2]string
	Index int
	// Rare holds the encoded (v1,v2) tuples stored (completely) in the pair
	// table. Tuples involving a value that is rare in either single column
	// are excluded — those rows already live in the single-column tables.
	Rare map[engine.GroupKey]struct{}
	// RareRows is the number of base rows stored.
	RareRows int64
}

// Metadata is the catalog the pre-processing phase produces (§3.1): it "lists
// the members of S and assigns a numeric index to each one", and it records
// each column's common-value set so the runtime phase can decide which groups
// are answered exactly.
type Metadata struct {
	columns []ColumnMeta
	pairs   []PairMeta
	byName  map[string]int
	// BaseRows is N, the number of rows in the database view.
	BaseRows int64
}

// NewMetadata builds the catalog from per-column descriptions. Indices are
// assigned in the given order, 0..|S|−1.
func NewMetadata(baseRows int64, cols []ColumnMeta) *Metadata {
	m := &Metadata{byName: make(map[string]int, len(cols)), BaseRows: baseRows}
	for i := range cols {
		cols[i].Index = i
		m.byName[cols[i].Column] = i
		m.columns = append(m.columns, cols[i])
	}
	return m
}

// AddPair registers a column-pair table, assigning it the next index after
// all single-column tables. Must be called before the bitmask width is used.
func (m *Metadata) AddPair(p PairMeta) int {
	p.Index = len(m.columns) + len(m.pairs)
	m.pairs = append(m.pairs, p)
	return p.Index
}

// Pairs returns the pair-table entries in index order.
func (m *Metadata) Pairs() []PairMeta { return m.pairs }

// Width returns |S|, the number of small group tables (and the bitmask
// width), counting both single-column and pair tables.
func (m *Metadata) Width() int { return len(m.columns) + len(m.pairs) }

// Columns returns the catalog entries in index order.
func (m *Metadata) Columns() []ColumnMeta { return m.columns }

// Index returns the small-group-table index for a column, if it has one.
func (m *Metadata) Index(col string) (int, bool) {
	i, ok := m.byName[col]
	return i, ok
}

// Column returns the catalog entry for a column, if present.
func (m *Metadata) Column(col string) (ColumnMeta, bool) {
	if i, ok := m.byName[col]; ok {
		return m.columns[i], true
	}
	return ColumnMeta{}, false
}

// IsCommon reports whether v is in L(col). Columns outside S report every
// value as common (they have no small group table).
func (m *Metadata) IsCommon(col string, v engine.Value) bool {
	i, ok := m.byName[col]
	if !ok {
		return true
	}
	_, common := m.columns[i].Common[v]
	return common
}

// IsExactValue reports whether rows with value v in col are stored at a 100%
// rate in col's small group table. A nil ColumnMeta.Exact means the default
// two-level hierarchy: every non-common value is exact.
func (m *Metadata) IsExactValue(col string, v engine.Value) bool {
	i, ok := m.byName[col]
	if !ok {
		return false
	}
	cm := m.columns[i]
	if cm.Exact == nil {
		_, common := cm.Common[v]
		return !common
	}
	_, exact := cm.Exact[v]
	return exact
}

// TableRef identifies one small group table chosen for a query.
type TableRef struct {
	Index    int
	Columns  []string
	RareRows int64
}

// RelevantTables returns the tables applicable to the query's grouping
// columns, in index order — the runtime sample selection rule of §4.2.2:
// "for each column C ∈ S in the query's group-by list, the query is executed
// against that column's small group table". Pair tables apply when both of
// their columns are grouped.
func (m *Metadata) RelevantTables(groupBy []string) []TableRef {
	grouped := make(map[string]bool, len(groupBy))
	for _, g := range groupBy {
		grouped[g] = true
	}
	var out []TableRef
	for _, g := range groupBy {
		if i, ok := m.byName[g]; ok {
			cm := m.columns[i]
			out = append(out, TableRef{Index: cm.Index, Columns: []string{cm.Column}, RareRows: cm.RareRows})
		}
	}
	for _, p := range m.pairs {
		if grouped[p.Cols[0]] && grouped[p.Cols[1]] {
			out = append(out, TableRef{Index: p.Index, Columns: p.Cols[:], RareRows: p.RareRows})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// GroupIsExact reports whether a group with the given key values for the
// given grouping columns is fully covered by the used small group tables:
// true when at least one used single-column table stores the group's value
// for that column at 100%, or a used pair table stores the group's value
// combination. Such groups' rows are all present undownsampled, so the
// answer is exact (footnote 1: smallness is monotonic).
func (m *Metadata) GroupIsExact(groupBy []string, key []engine.Value, used map[int]bool) bool {
	pos := make(map[string]int, len(groupBy))
	for i, col := range groupBy {
		pos[col] = i
	}
	for i, col := range groupBy {
		if ix, ok := m.byName[col]; ok && used[m.columns[ix].Index] {
			if m.IsExactValue(col, key[i]) {
				return true
			}
		}
	}
	for _, p := range m.pairs {
		if !used[p.Index] {
			continue
		}
		i0, ok0 := pos[p.Cols[0]]
		i1, ok1 := pos[p.Cols[1]]
		if !ok0 || !ok1 {
			continue
		}
		tuple := engine.EncodeKey([]engine.Value{key[i0], key[i1]})
		if _, rare := p.Rare[tuple]; rare {
			return true
		}
	}
	return false
}

// String renders the catalog as the metadata table of §4.2.1.
func (m *Metadata) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "metadata: N=%d, |S|=%d\n", m.BaseRows, m.Width())
	for _, c := range m.columns {
		fmt.Fprintf(&sb, "  [%d] %-24s distinct=%-6d common=%-6d rareRows=%d\n",
			c.Index, c.Column, c.Distinct, len(c.Common), c.RareRows)
	}
	for _, p := range m.pairs {
		fmt.Fprintf(&sb, "  [%d] (%s,%s)%-12s rareTuples=%-6d rareRows=%d\n",
			p.Index, p.Cols[0], p.Cols[1], "", len(p.Rare), p.RareRows)
	}
	return sb.String()
}
