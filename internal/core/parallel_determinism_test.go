package core

import (
	"bytes"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// determinismDB is big enough that the partitioned scan kernel actually
// shards it (> engine.ScanShardRows rows).
func determinismDB(t *testing.T) *engine.Database {
	t.Helper()
	g := engine.NewColumn("g", engine.String)
	h := engine.NewColumn("h", engine.String)
	m := engine.NewColumn("m", engine.Float)
	fact := engine.NewTable("fact", g, h, m)
	rng := randx.New(17)
	zg := randx.NewZipf(1.8, 120)
	zh := randx.NewZipf(1.2, 40)
	for i := 0; i < 2*engine.ScanShardRows+999; i++ {
		g.AppendString("g" + itoa(zg.Draw(rng)))
		h.AppendString("h" + itoa(zh.Draw(rng)))
		m.AppendFloat(rng.NormFloat64() * 50)
		fact.EndRow()
	}
	return engine.MustNewDatabase("det", fact)
}

func prepare(t *testing.T, db *engine.Database, workers int) *smallGroupPrepared {
	t.Helper()
	p, err := NewSmallGroup(SmallGroupConfig{BaseRate: 0.02, Seed: 5, Workers: workers}).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*smallGroupPrepared)
}

func tableBytes(t *testing.T, tbl *engine.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := engine.WriteBinary(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Pre-processing must build byte-identical sample sets for any worker count:
// the parallel paths (per-column counters, per-table materialisation) only
// partition work whose outputs never depend on completion order, and all
// randomness stays in the single-threaded second scan.
func TestPreprocessWorkerCountDeterminism(t *testing.T) {
	db := determinismDB(t)
	serial := prepare(t, db, 0)
	for _, workers := range []int{1, 4, 16} {
		par := prepare(t, db, workers)
		if got, want := par.meta.String(), serial.meta.String(); got != want {
			t.Fatalf("workers=%d: metadata diverged:\n%s\nvs\n%s", workers, got, want)
		}
		if len(par.tables) != len(serial.tables) {
			t.Fatalf("workers=%d: table count %d vs %d", workers, len(par.tables), len(serial.tables))
		}
		for i := range serial.tables {
			if !bytes.Equal(tableBytes(t, par.Tables()[i]), tableBytes(t, serial.Tables()[i])) {
				t.Fatalf("workers=%d: small group table %d differs", workers, i)
			}
		}
		if !bytes.Equal(tableBytes(t, par.Overall()), tableBytes(t, serial.Overall())) {
			t.Fatalf("workers=%d: overall sample differs", workers)
		}
	}
}

// Runtime answers must be bit-identical between workers=1 and workers=N for
// a fixed seed: same groups, same float accumulators, same intervals, same
// exactness flags.
func TestAnswerWorkerCountDeterminism(t *testing.T) {
	db := determinismDB(t)
	p1 := prepare(t, db, 1)
	queries := []*engine.Query{
		{GroupBy: []string{"g"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}},
		{GroupBy: []string{"g", "h"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}},
		{GroupBy: []string{"h"}, Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "m"}},
			Where: []engine.Predicate{engine.NewIn("g", engine.StringVal("g1"), engine.StringVal("g2"), engine.StringVal("g40"))}},
	}
	for _, workers := range []int{2, 8, 32} {
		pn := prepare(t, db, workers)
		for qi, q := range queries {
			a1, err := p1.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			an, err := pn.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			r1, rn := a1.Result, an.Result
			if r1.NumGroups() != rn.NumGroups() || r1.RowsScanned != rn.RowsScanned {
				t.Fatalf("query %d workers=%d: shape diverged", qi, workers)
			}
			for _, k := range r1.Keys() {
				g1, gn := r1.Group(k), rn.Group(k)
				if gn == nil {
					t.Fatalf("query %d workers=%d: group %q missing", qi, workers, k)
				}
				if g1.Exact != gn.Exact {
					t.Fatalf("query %d workers=%d group %q: exactness diverged", qi, workers, k)
				}
				for i := range g1.Vals {
					if g1.Vals[i] != gn.Vals[i] || g1.VarAcc[i] != gn.VarAcc[i] {
						t.Fatalf("query %d workers=%d group %q agg %d: not bit-identical (%v vs %v)",
							qi, workers, k, i, g1.Vals[i], gn.Vals[i])
					}
				}
				iv1, ivn := a1.Interval(k, 0), an.Interval(k, 0)
				if iv1 != ivn {
					t.Fatalf("query %d workers=%d group %q: interval diverged", qi, workers, k)
				}
			}
		}
	}
}
