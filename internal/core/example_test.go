package core_test

import (
	"fmt"

	"dynsample/internal/core"
	"dynsample/internal/engine"
)

// ExampleSmallGroup runs the full dynamic sample selection pipeline on the
// paper's Example 3.1 database, scaled up: a product column where "TV" is a
// rare value. The TV group is answered exactly from its small group table;
// the dominant Stereo group is estimated from the overall sample.
func ExampleSmallGroup() {
	product := engine.NewColumn("product", engine.String)
	fact := engine.NewTable("sales", product)
	for i := 0; i < 10000; i++ {
		if i%100 == 0 {
			product.AppendString("TV") // 1% of rows
		} else {
			product.AppendString("Stereo")
		}
		fact.EndRow()
	}
	db := engine.MustNewDatabase("example31", fact)

	strategy := core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate:           0.10, // 10% overall sample, as in Example 3.1
		SmallGroupFraction: 0.05,
		Seed:               1,
	})
	prepared, err := strategy.Preprocess(db)
	if err != nil {
		panic(err)
	}

	q := &engine.Query{
		GroupBy: []string{"product"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
	}
	ans, err := prepared.Answer(q)
	if err != nil {
		panic(err)
	}
	tv := ans.Result.Group(engine.EncodeKey([]engine.Value{engine.StringVal("TV")}))
	fmt.Printf("TV count=%v exact=%v\n", tv.Vals[0], tv.Exact)
	fmt.Println(ans.Rewrite.SQL())
	// Output:
	// TV count=100 exact=true
	// SELECT product, COUNT(*) AS agg0 FROM sg_product GROUP BY product
	// UNION ALL
	// SELECT product, COUNT(*) * 10 AS agg0 FROM sg_overall WHERE bitmask & 1 = 0 GROUP BY product
}
