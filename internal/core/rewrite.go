package core

import (
	"fmt"
	"math/big"
	"strings"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
)

// RewriteStep is one branch of a rewritten query: an execution of the
// original query shape against a single sample source — a flat join-synopsis
// table, or a renormalized sample star schema (§5.2.2) — with an optional
// bitmask anti-double-counting filter and aggregate scale factor.
type RewriteStep struct {
	Source engine.Source
	// Name labels the source in the rendered SQL.
	Name string
	// Exclude drops rows whose membership bitmask intersects it ("WHERE
	// bitmask & m = 0"). A zero-width mask means no filter.
	Exclude bitmask.Mask
	// Scale multiplies aggregate values (the inverse sampling rate); 1 for
	// small group tables, which are not downsampled.
	Scale float64
	// MarkExact tags produced groups as exact.
	MarkExact bool
	// MaxRows, when > 0, caps the scan at the source's first MaxRows rows —
	// the planner's sampling-fraction knob over the (exchangeable) reservoir
	// overall sample. Scale is expected to carry the compensating factor.
	MaxRows int
}

// StepFor builds an unfiltered step over a flat sample table.
func StepFor(t *engine.Table, scale float64) RewriteStep {
	return RewriteStep{Source: t, Name: t.Name, Scale: scale}
}

// RewritePlan is the rewritten form of a query under dynamic sample
// selection: the UNION ALL of its steps (§4.2.2).
//
// The steps are independent by construction: each reads a different sample
// source, and the bitmask anti-double-counting filters are per-step WHERE
// clauses baked in at plan time, not an execution-order dependency. They can
// therefore run concurrently; only the final combination (merging partial
// results in step order) is sequential.
type RewritePlan struct {
	Query *engine.Query
	Steps []RewriteStep
	// Workers is the worker budget for executing the plan. 0 preserves the
	// fully serial path (steps in order, serial scans). Any value >= 1 runs
	// the steps as parallel tasks, each with a partitioned scan
	// (engine.ExecOptions.Workers), and merges the per-step results in step
	// order — so answers are bit-identical for every worker count >= 1.
	Workers int
}

// SQL renders the plan as the UNION ALL query of §4.2.2, e.g.
//
//	SELECT A, C, COUNT(*) AS agg0 FROM sg_A GROUP BY A, C
//	UNION ALL SELECT A, C, COUNT(*) AS agg0 FROM sg_C WHERE bitmask & 1 = 0 GROUP BY A, C
//	UNION ALL SELECT A, C, COUNT(*) * 100 AS agg0 FROM sg_overall WHERE bitmask & 5 = 0 GROUP BY A, C
//
// Bitmask literals wider than 64 bits are rendered as arbitrary-precision
// decimals.
func (p *RewritePlan) SQL() string {
	var sb strings.Builder
	for i, st := range p.Steps {
		if i > 0 {
			sb.WriteString("\nUNION ALL\n")
		}
		sb.WriteString("SELECT ")
		for _, g := range p.Query.GroupBy {
			sb.WriteString(g)
			sb.WriteString(", ")
		}
		for j, a := range p.Query.Aggs {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
			if st.Scale != 1 {
				fmt.Fprintf(&sb, " * %g", st.Scale)
			}
			fmt.Fprintf(&sb, " AS agg%d", j)
		}
		sb.WriteString(" FROM ")
		sb.WriteString(st.Name)
		if st.MaxRows > 0 {
			fmt.Fprintf(&sb, "[:%d]", st.MaxRows)
		}
		where := make([]string, 0, len(p.Query.Where)+1)
		for _, pr := range p.Query.Where {
			where = append(where, pr.String())
		}
		if !st.Exclude.IsZero() {
			where = append(where, fmt.Sprintf("bitmask & %s = 0", maskDecimal(st.Exclude)))
		}
		if len(where) > 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(strings.Join(where, " AND "))
		}
		if len(p.Query.GroupBy) > 0 {
			sb.WriteString(" GROUP BY ")
			sb.WriteString(strings.Join(p.Query.GroupBy, ", "))
		}
	}
	return sb.String()
}

func maskDecimal(m bitmask.Mask) string {
	v := new(big.Int)
	for _, b := range m.Bits() {
		v.SetBit(v, b, 1)
	}
	return v.String()
}
