package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

func countQuery(cols ...string) *engine.Query {
	return &engine.Query{GroupBy: cols, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
}

// plannerDB builds a distribution with a clean planner separation: four
// well-sampled common regions (40/30/20/9.5% of mass) plus ten genuinely
// rare ones sharing the remaining 0.5%. A moderately sized overall sample
// then predicts a mean error between 0.01 and 0.10 for the full sample
// plan, so nearby bounds select different plans.
func plannerDB(t testing.TB, n int) *engine.Database {
	t.Helper()
	region := engine.NewColumn("region", engine.String)
	amount := engine.NewColumn("amount", engine.Float)
	fact := engine.NewTable("fact", region, amount)
	rng := randx.New(99)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.40:
			region.AppendString("R0")
		case r < 0.70:
			region.AppendString("R1")
		case r < 0.90:
			region.AppendString("R2")
		case r < 0.995:
			region.AppendString("R3")
		default:
			region.AppendString("X" + string(rune('0'+rng.Intn(10))))
		}
		amount.AppendFloat(rng.Float64() * 100)
		fact.EndRow()
	}
	return engine.MustNewDatabase("plannerdb", fact)
}

func TestCostRateEWMA(t *testing.T) {
	var c costRate
	if _, ok := c.estimate(); ok {
		t.Fatal("estimate available before any observation")
	}
	c.observe(1000, time.Second)
	r, ok := c.estimate()
	if !ok || math.Abs(r-1000) > 1e-6 {
		t.Fatalf("first observation: rate %g ok=%v, want 1000", r, ok)
	}
	c.observe(3000, time.Second)
	r, _ = c.estimate()
	if math.Abs(r-1600) > 1e-6 { // 0.7*1000 + 0.3*3000
		t.Fatalf("EWMA after second observation: %g, want 1600", r)
	}
	c.observe(0, time.Second)
	c.observe(100, 0)
	if r2, _ := c.estimate(); r2 != r {
		t.Fatalf("degenerate observations moved the rate: %g -> %g", r, r2)
	}
}

func TestPredictErrorShrinksWithSampleAndTables(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, Seed: 1})
	ps := p.stats()
	q := countQuery("a")
	const z = 1.96

	small, _ := ps.predictError(q, nil, 100, z)
	large, _ := ps.predictError(q, nil, 2000, z)
	if !(large < small) {
		t.Fatalf("more sample rows did not shrink predicted error: %g -> %g", small, large)
	}
	withTable, _ := ps.predictError(q, map[string]bool{"a": true}, 100, z)
	if !(withTable < small) {
		t.Fatalf("using a's small group table did not shrink predicted error: %g -> %g", small, withTable)
	}
	if small > 1 || withTable < 0 {
		t.Fatalf("predictions out of range: %g, %g", small, withTable)
	}
}

func TestPredictErrorCaveats(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, Seed: 1})
	ps := p.stats()

	q := countQuery("a")
	q.Where = []engine.Predicate{engine.NewCmp("b", engine.Eq, engine.StringVal("B0"))}
	_, caveats := ps.predictError(q, nil, 500, 1.96)
	if len(caveats) == 0 {
		t.Fatal("predicate query produced no caveat")
	}
	// u is outside S (too many distinct values): prediction must say so.
	_, caveats = ps.predictError(countQuery("u"), nil, 500, 1.96)
	if len(caveats) == 0 {
		t.Fatal("grouping by a column outside S produced no caveat")
	}
}

func TestAnswerBoundsSelectsDifferentPlans(t *testing.T) {
	db := plannerDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.2, SmallGroupFraction: 0.05, ScanRowsPerSecond: 25e6, Seed: 1})
	q := countQuery("region")
	ctx := context.Background()

	loose, err := p.AnswerBounds(ctx, q, Bounds{ErrorBound: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := p.AnswerBounds(ctx, q, Bounds{ErrorBound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Plan == nil || tight.Plan == nil {
		t.Fatal("bounded answers missing plan decisions")
	}
	if loose.Plan.Chosen.Name == tight.Plan.Chosen.Name {
		t.Fatalf("bounds 0.10 and 0.01 selected the same plan %q", loose.Plan.Chosen.Name)
	}
	if loose.RowsRead >= tight.RowsRead {
		t.Fatalf("looser bound read more rows: %d vs %d", loose.RowsRead, tight.RowsRead)
	}
	for _, ans := range []*Answer{loose, tight} {
		d := ans.Plan
		if d.Chosen.PredictedError > d.Bounds.ErrorBound {
			t.Fatalf("chosen plan %q predicted %g above bound %g",
				d.Chosen.Name, d.Chosen.PredictedError, d.Bounds.ErrorBound)
		}
		if d.AchievedError < 0 || d.AchievedError > 1 {
			t.Fatalf("achieved error %g out of range", d.AchievedError)
		}
		if len(d.Candidates) < 2 {
			t.Fatalf("only %d candidates considered", len(d.Candidates))
		}
	}
}

func TestAnswerBoundsTimeOnlyPrefersAccuracy(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, ScanRowsPerSecond: 25e6, Seed: 1})
	ans, err := p.AnswerBounds(context.Background(), countQuery("a"), Bounds{TimeBound: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// A generous time budget admits the exact fallback, which any accuracy
	// preference must select.
	if !ans.Plan.Chosen.Exact {
		t.Fatalf("generous time bound chose %q, want the exact plan", ans.Plan.Chosen.Name)
	}
	if ans.Plan.AchievedError != 0 || ans.Plan.Chosen.PredictedError != 0 {
		t.Fatalf("exact plan reported nonzero error: predicted %g achieved %g",
			ans.Plan.Chosen.PredictedError, ans.Plan.AchievedError)
	}
	for _, g := range ans.Result.Groups() {
		if !g.Exact {
			t.Fatal("exact plan produced inexact group")
		}
	}
}

func TestAnswerBoundsUnsatisfiable(t *testing.T) {
	db := skewedDB(t, 20000)
	// Pin an implausibly slow scan rate so even the cheapest plan busts a
	// millisecond time bound, while the error bound demands the exact plan.
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, ScanRowsPerSecond: 1000, Seed: 1})
	_, err := p.AnswerBounds(context.Background(), countQuery("a"),
		Bounds{ErrorBound: 1e-9, TimeBound: time.Millisecond})
	var unsat *UnsatisfiableBoundsError
	if !errors.As(err, &unsat) {
		t.Fatalf("error %v, want UnsatisfiableBoundsError", err)
	}
	if unsat.BestLatency < time.Second {
		t.Fatalf("best latency %v implausibly small for a 20000-row exact scan at 1000 rows/s", unsat.BestLatency)
	}
	if unsat.Bounds.ErrorBound != 1e-9 || unsat.Bounds.TimeBound != time.Millisecond {
		t.Fatalf("error does not echo the requested bounds: %+v", unsat.Bounds)
	}
	if unsat.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestAnswerBoundsZeroMatchesAnswerCtx(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, Seed: 1})
	q := countQuery("a", "b")
	plain, err := p.AnswerCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := p.AnswerBounds(context.Background(), q, Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Plan != nil {
		t.Fatal("zero bounds produced a plan decision")
	}
	if plain.RowsRead != bounded.RowsRead {
		t.Fatalf("rows read differ: %d vs %d", plain.RowsRead, bounded.RowsRead)
	}
	for _, k := range plain.Result.Keys() {
		g1, g2 := plain.Result.Group(k), bounded.Result.Group(k)
		if g2 == nil || g1.Vals[0] != g2.Vals[0] {
			t.Fatalf("group %v values differ between AnswerCtx and zero-bounds AnswerBounds", g1.Key)
		}
	}
}

func TestFractionalOverallStepScalesBack(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, ScanRowsPerSecond: 25e6, Seed: 1})
	choices, _ := p.enumerate(countQuery("a"), 1.96, true, true)
	var frac *planChoice
	for _, c := range choices {
		if c.cand.OverallFraction > 0 && c.cand.OverallFraction < 1 {
			frac = c
			break
		}
	}
	if frac == nil {
		t.Fatal("no fractional candidate enumerated over a uniform overall sample")
	}
	last := frac.plan.Steps[len(frac.plan.Steps)-1]
	if last.MaxRows <= 0 || last.MaxRows >= p.overall.src.NumRows() {
		t.Fatalf("fractional overall step MaxRows %d not a strict prefix of %d", last.MaxRows, p.overall.src.NumRows())
	}
	// The trimmed prefix must be scaled up so estimates stay unbiased:
	// scale * maxRows == overallScale * overallRows.
	want := p.overallScale * float64(p.overall.src.NumRows())
	got := last.Scale * float64(last.MaxRows)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("fraction scale does not compensate: scale*rows %g, want %g", got, want)
	}
	// Executing the fractional plan still yields estimates near the full
	// plan's for the dominant group (sanity of the rescaling).
	res, _, err := ExecutePlanCtx(context.Background(), frac.plan)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, g := range res.Groups() {
		total += g.Vals[0]
	}
	if total < 10000 || total > 40000 {
		t.Fatalf("fractional plan total count %g wildly off base 20000", total)
	}
}
