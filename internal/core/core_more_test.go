package core

import (
	"strings"
	"testing"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
	"dynsample/internal/stats"
)

func TestRewriteSQLNoGroupByWideMask(t *testing.T) {
	tbl := engine.NewTable("s_wide", engine.NewColumn("x", engine.Int))
	q := &engine.Query{Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "x"}}}
	plan := &RewritePlan{
		Query: q,
		Steps: []RewriteStep{
			{Source: tbl, Name: tbl.Name, Exclude: bitmask.FromBits(100, 64), Scale: 50},
		},
	}
	sql := plan.SQL()
	// Bit 64 = 2^64 = 18446744073709551616, beyond uint64: rendered as a
	// big-integer decimal.
	for _, want := range []string{"SUM(x) * 50 AS agg0", "bitmask & 18446744073709551616 = 0", "FROM s_wide"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	if strings.Contains(sql, "GROUP BY") {
		t.Errorf("SQL has GROUP BY for ungrouped query:\n%s", sql)
	}
}

func TestRewriteSQLPreservesPredicates(t *testing.T) {
	tbl := engine.NewTable("s", engine.NewColumn("a", engine.String))
	q := &engine.Query{
		GroupBy: []string{"a"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
		Where:   []engine.Predicate{engine.NewCmp("a", engine.Eq, engine.StringVal("v"))},
	}
	plan := &RewritePlan{Query: q, Steps: []RewriteStep{{Source: tbl, Name: tbl.Name, Scale: 1}}}
	sql := plan.SQL()
	if !strings.Contains(sql, "WHERE a = 'v'") {
		t.Errorf("predicate missing: %s", sql)
	}
	if strings.Contains(sql, "bitmask") {
		t.Errorf("zero mask should not render a bitmask filter: %s", sql)
	}
}

func TestConfidenceIntervalsLevelDefault(t *testing.T) {
	res := engine.NewResult(nil, []engine.Aggregate{{Kind: engine.Count}})
	g := res.Upsert(engine.EncodeKey(nil), func() []engine.Value { return nil })
	g.Vals[0] = 100
	g.VarAcc[0] = 25 // sd 5
	ivs := ConfidenceIntervals(res, 0)
	iv := ivs[engine.EncodeKey(nil)][0]
	if iv.Level != DefaultConfidenceLevel {
		t.Errorf("level = %g", iv.Level)
	}
	if iv.Width() < 18 || iv.Width() > 21 { // 2*1.96*5 ≈ 19.6
		t.Errorf("width = %g, want ~19.6", iv.Width())
	}
	// Negative VarAcc (float drift) must not produce NaN.
	g.VarAcc[0] = -1e-12
	ivs = ConfidenceIntervals(res, 0.9)
	if iv := ivs[engine.EncodeKey(nil)][0]; iv.Width() != 0 {
		t.Errorf("drifted variance produced width %g", iv.Width())
	}
}

func TestAnswerIntervalMissingKey(t *testing.T) {
	ans := &Answer{Intervals: map[engine.GroupKey][]stats.Interval{}}
	if iv := ans.Interval(engine.EncodeKey([]engine.Value{engine.IntVal(1)}), 0); iv.Width() != 0 {
		t.Errorf("missing key interval = %+v", iv)
	}
}

func TestMetadataStringIncludesPairs(t *testing.T) {
	m := NewMetadata(100, []ColumnMeta{{Column: "a", Common: map[engine.Value]struct{}{}}})
	m.AddPair(PairMeta{Cols: [2]string{"a", "b"}, Rare: map[engine.GroupKey]struct{}{"k": {}}, RareRows: 5})
	s := m.String()
	for _, want := range []string{"|S|=2", "(a,b)", "rareTuples=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("metadata string missing %q:\n%s", want, s)
		}
	}
}

func TestRelevantTablesOrderAndPairs(t *testing.T) {
	m := NewMetadata(100, []ColumnMeta{
		{Column: "x", Common: map[engine.Value]struct{}{}, RareRows: 10},
		{Column: "y", Common: map[engine.Value]struct{}{}, RareRows: 20},
	})
	m.AddPair(PairMeta{Cols: [2]string{"x", "y"}, Rare: map[engine.GroupKey]struct{}{"k": {}}, RareRows: 5})

	refs := m.RelevantTables([]string{"y", "x"})
	if len(refs) != 3 {
		t.Fatalf("refs = %d", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i].Index <= refs[i-1].Index {
			t.Errorf("refs not in index order: %+v", refs)
		}
	}
	// Pair requires both columns.
	refs = m.RelevantTables([]string{"x"})
	if len(refs) != 1 || refs[0].Columns[0] != "x" {
		t.Errorf("single-column refs = %+v", refs)
	}
}

func TestIsExactValueOutsideS(t *testing.T) {
	m := NewMetadata(10, nil)
	if m.IsExactValue("zzz", engine.IntVal(1)) {
		t.Error("column outside S cannot be exact")
	}
}

func TestExecutePlanErrorPropagation(t *testing.T) {
	tbl := engine.NewTable("s", engine.NewColumn("a", engine.Int))
	q := &engine.Query{GroupBy: []string{"missing"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	plan := &RewritePlan{Query: q, Steps: []RewriteStep{{Source: tbl, Name: tbl.Name, Scale: 1}}}
	if _, _, err := ExecutePlan(plan); err == nil {
		t.Error("bad column not propagated")
	}
}

func TestSmallGroupName(t *testing.T) {
	if NewSmallGroup(SmallGroupConfig{}).Name() != "smallgroup" {
		t.Error("Name wrong")
	}
}

func TestPreprocessEmptyDatabase(t *testing.T) {
	db := engine.MustNewDatabase("empty", engine.NewTable("f", engine.NewColumn("a", engine.Int)))
	if _, err := NewSmallGroup(SmallGroupConfig{BaseRate: 0.1}).Preprocess(db); err == nil {
		t.Error("empty database not rejected")
	}
}
