package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"dynsample/internal/engine"
)

// TestSwapPreparedConcurrentQueries hammers ApproxCtx from many goroutines
// while the registered state is swapped between two generations. Under
// -race this proves the hot-swap path has no data races; the assertions
// prove every query ran entirely against one generation (its answer matches
// one of the two states bit-for-bit, never a blend) and that zero queries
// failed across the swaps.
func TestSwapPreparedConcurrentQueries(t *testing.T) {
	db := skewedDB(t, 8000)
	p1 := prep(t, db, SmallGroupConfig{BaseRate: 0.02, DistinctLimit: 100, Seed: 1, Workers: 2})
	p2 := prep(t, db, SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 100, Seed: 9, Workers: 2})

	sys := NewSystem(db)
	sys.AddPrepared("smallgroup", p1)

	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}}
	want1, err := p1.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := p2.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if sameAnswer(want1, want2) {
		t.Fatal("fixture states answer identically; swap would be unobservable")
	}

	const queriers = 8
	var failures, gen1Hits, gen2Hits atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := sys.ApproxCtx(context.Background(), "smallgroup", q)
				if err != nil {
					failures.Add(1)
					t.Error(err)
					return
				}
				switch {
				case sameAnswer(ans, want1):
					gen1Hits.Add(1)
				case sameAnswer(ans, want2):
					gen2Hits.Add(1)
				default:
					failures.Add(1)
					t.Error("answer matches neither generation: torn swap")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			sys.SwapPrepared("smallgroup", p2)
		} else {
			sys.SwapPrepared("smallgroup", p1)
		}
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failed queries during swaps", failures.Load())
	}
	if gen1Hits.Load() == 0 || gen2Hits.Load() == 0 {
		t.Logf("generation coverage: %d/%d hits (timing-dependent)", gen1Hits.Load(), gen2Hits.Load())
	}
	if prev := sys.SwapPrepared("smallgroup", p2); prev != p1 {
		t.Fatalf("SwapPrepared returned %v, want the previous state", prev)
	}
}

// sameAnswer reports whether two answers are bit-identical over groups,
// values and exactness.
func sameAnswer(a, b *Answer) bool {
	if a.Result.NumGroups() != b.Result.NumGroups() {
		return false
	}
	for _, k := range a.Result.Keys() {
		ga, gb := a.Result.Group(k), b.Result.Group(k)
		if gb == nil || ga.Exact != gb.Exact || len(ga.Vals) != len(gb.Vals) {
			return false
		}
		for i := range ga.Vals {
			if ga.Vals[i] != gb.Vals[i] {
				return false
			}
		}
	}
	return true
}

// TestSwapPreparedRegistration covers the copy-on-write bookkeeping:
// strategies/prepared views reflect swaps, and PreprocessTime survives
// unrelated updates.
func TestSwapPreparedRegistration(t *testing.T) {
	db := skewedDB(t, 2000)
	sys := NewSystem(db)
	if prev := sys.SwapPrepared("smallgroup", prep(t, db, SmallGroupConfig{BaseRate: 0.05, Seed: 1})); prev != nil {
		t.Fatalf("first swap returned %v, want nil", prev)
	}
	if names := sys.Strategies(); len(names) != 1 || names[0] != "smallgroup" {
		t.Fatalf("strategies = %v", names)
	}
	if err := sys.AddStrategy(NewSmallGroup(SmallGroupConfig{BaseRate: 0.02, Seed: 2})); err != nil {
		t.Fatal(err)
	}
	if d := sys.PreprocessTime("smallgroup"); d <= 0 {
		t.Fatalf("PreprocessTime = %v after AddStrategy", d)
	}
	p, ok := sys.Prepared("smallgroup")
	if !ok || p == nil {
		t.Fatal("Prepared lookup failed after swaps")
	}
}
