package core

import (
	"context"
	"math"
	"sort"
	"time"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/obs"
	"dynsample/internal/parallel"
	"dynsample/internal/stats"
)

// sampleSource is one stored sample: a flat join-synopsis table or a
// renormalized star schema.
type sampleSource struct {
	src  engine.Source
	name string
}

func (s sampleSource) rows() int64 { return int64(s.src.NumRows()) }

func (s sampleSource) bytes() int64 {
	switch v := s.src.(type) {
	case *engine.Table:
		return v.ApproxBytes()
	case *engine.Database:
		return v.Fact.ApproxBytes() // shared reduced dimensions counted once, separately
	default:
		return 0
	}
}

// smallGroupPrepared is the runtime state of small group sampling: the
// small group tables (one per column of S), the overall sample, and the
// metadata catalog used for sample selection.
type smallGroupPrepared struct {
	db           *engine.Database
	meta         *Metadata
	cfg          SmallGroupConfig
	tables       []sampleSource // indexed by ColumnMeta.Index
	overall      sampleSource
	overallScale float64 // 1 when the overall sample carries per-row weights
	// dataGen is the ingest data generation the samples reflect: the number
	// of ingest batches whose rows are represented in the sample family.
	// Zero for freshly pre-processed or pre-ingest state.
	dataGen uint64
	// sharedDims holds the renormalized storage's shared reduced dimension
	// tables (nil for flat join synopses).
	sharedDims []*engine.Table
	// pstats holds the lazily built planner statistics (per-column marginal
	// distributions, calibrated scan rate). It is shared by pointer across
	// the copy-on-write clones the online ingest path publishes, so the scan
	// calibration survives sample maintenance.
	pstats *plannerStats
}

// Meta exposes the metadata catalog (used by experiments and the CLI).
func (p *smallGroupPrepared) Meta() *Metadata { return p.meta }

// DataGeneration returns the ingest data generation baked into the samples.
func (p *smallGroupPrepared) DataGeneration() uint64 { return p.dataGen }

// SetWorkers implements WorkerConfigurable: it sets the runtime worker
// budget used by every subsequent Answer call (see SmallGroupConfig.Workers).
// Call it before serving queries; it is not synchronised with concurrent
// Answer calls.
func (p *smallGroupPrepared) SetWorkers(n int) { p.cfg.Workers = n }

// Tables exposes the flat small group tables in index order. It panics for
// renormalized storage; use Sources then.
func (p *smallGroupPrepared) Tables() []*engine.Table {
	out := make([]*engine.Table, len(p.tables))
	for i, s := range p.tables {
		out[i] = s.src.(*engine.Table)
	}
	return out
}

// Overall exposes the overall sample table (flat storage only).
func (p *smallGroupPrepared) Overall() *engine.Table { return p.overall.src.(*engine.Table) }

// Plan builds the rewritten query: one step per relevant small group table
// (chained bitmask filters avoid double counting) plus the scaled overall
// sample step (§4.2.2).
func (p *smallGroupPrepared) Plan(q *engine.Query) *RewritePlan {
	relevant := p.meta.RelevantTables(q.GroupBy)
	if max := p.cfg.MaxTablesPerQuery; max > 0 && len(relevant) > max {
		// Runtime heuristic from §4.2.3: prefer the tables covering the most
		// rows (largest rare mass), then restore index order for chaining.
		sort.Slice(relevant, func(i, j int) bool { return relevant[i].RareRows > relevant[j].RareRows })
		relevant = relevant[:max]
		sort.Slice(relevant, func(i, j int) bool { return relevant[i].Index < relevant[j].Index })
	}

	plan := &RewritePlan{Query: q, Workers: p.cfg.Workers}
	used := bitmask.New(p.meta.Width())
	for _, ref := range relevant {
		plan.Steps = append(plan.Steps, RewriteStep{
			Source:  p.tables[ref.Index].src,
			Name:    p.tables[ref.Index].name,
			Exclude: used.Clone(),
			Scale:   1,
		})
		used.Set(ref.Index)
	}
	plan.Steps = append(plan.Steps, RewriteStep{
		Source:  p.overall.src,
		Name:    p.overall.name,
		Exclude: used,
		Scale:   p.overallScale,
	})
	return plan
}

// usedTables reports which small group table indices a plan reads.
func (p *smallGroupPrepared) usedTables(plan *RewritePlan) map[int]bool {
	used := make(map[int]bool, len(plan.Steps))
	for _, st := range plan.Steps[:len(plan.Steps)-1] {
		for i, s := range p.tables {
			if s.src == st.Source {
				used[i] = true
			}
		}
	}
	return used
}

// Answer implements Prepared. It is AnswerCtx with a background context.
func (p *smallGroupPrepared) Answer(q *engine.Query) (*Answer, error) {
	return p.AnswerCtx(context.Background(), q)
}

// AnswerCtx implements ContextAnswerer. Cancellation propagates into every
// step's sharded scan; when ctx also carries a deadline, the planner picks
// the most accurate plan predicted to fit the remaining budget (falling
// back to the cheapest plan, flagged Answer.Degraded, when nothing fits).
func (p *smallGroupPrepared) AnswerCtx(ctx context.Context, q *engine.Query) (*Answer, error) {
	return p.answer(ctx, q, Bounds{})
}

// AnswerBounds implements BoundedAnswerer: it plans toward the requested
// error/time bounds (see planner.go), executes the chosen plan, and reports
// the decision — predicted vs achieved error, every candidate considered —
// in Answer.Plan. When no candidate satisfies the bounds it returns an
// *UnsatisfiableBoundsError without executing anything.
func (p *smallGroupPrepared) AnswerBounds(ctx context.Context, q *engine.Query, b Bounds) (*Answer, error) {
	return p.answer(ctx, q, b)
}

// answer is the shared runtime path: select a plan (three regimes: explicit
// bounds, implicit request deadline, or the full default rewrite), execute
// it, mark exactness, and attach intervals.
func (p *smallGroupPrepared) answer(ctx context.Context, q *engine.Query, b Bounds) (*Answer, error) {
	start := time.Now()
	tr := obs.TraceFrom(ctx)
	var endStage func()
	if tr != nil {
		endStage = tr.StartStage("select")
	}
	conf := b.Confidence
	if conf == 0 {
		conf = p.cfg.ConfidenceLevel
	}
	if conf == 0 {
		conf = DefaultConfidenceLevel
	}

	var plan *RewritePlan
	var decision *PlanDecision
	var chosenExact, degraded bool
	deadline, hasDeadline := ctx.Deadline()

	switch {
	case !b.IsZero():
		// Explicit bounds: full candidate space (table subsets × overall
		// fractions × exact fallback), strict selection.
		z := stats.NormalQuantile(0.5 + conf/2)
		choices, caveats := p.enumerate(q, z, true, true)
		obsPlannerCandidates.Observe(float64(len(choices)))
		var soft time.Duration
		if hasDeadline {
			soft = time.Until(deadline)
		}
		chosen, err := selectBounded(choices, b, soft)
		if err != nil {
			obsPlannerUnsat.Inc()
			if tr != nil {
				endStage()
			}
			return nil, err
		}
		plan = chosen.plan
		chosenExact = chosen.cand.Exact
		cands := make([]PlanCandidate, len(choices))
		for i, c := range choices {
			cands[i] = c.cand
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Rows < cands[j].Rows })
		decision = &PlanDecision{
			Bounds:     Bounds{ErrorBound: b.ErrorBound, TimeBound: b.TimeBound, Confidence: conf},
			Chosen:     chosen.cand,
			Candidates: cands,
			Caveats:    caveats,
		}
	case hasDeadline:
		// Implicit deadline, no stated bounds: the degradation path, now
		// planner-chosen — most accurate table subset fitting the budget
		// (fractions and the exact fallback stay opt-in via Bounds).
		z := stats.NormalQuantile(0.5 + conf/2)
		choices, _ := p.enumerate(q, z, false, false)
		var chosen *planChoice
		chosen, degraded = selectForDeadline(choices, time.Until(deadline))
		plan = chosen.plan
	default:
		plan = p.Plan(q)
	}

	obsPlanSteps.Observe(float64(len(plan.Steps)))
	if degraded {
		obsDegraded.Inc()
	}
	if tr != nil {
		endStage()
		tr.SetDegraded(degraded)
		// States restored from disk have no base data attached (p.db nil);
		// they report rows read but no sampling fraction.
		if p.db != nil {
			if n := p.db.NumRows(); n > 0 {
				tr.SetSamplingFraction(float64(planRows(plan)) / float64(n))
			}
		}
	}
	execStart := time.Now()
	combined, rowsRead, err := ExecutePlanCtx(ctx, plan)
	if err != nil {
		return nil, err
	}
	// Feed the scan-throughput calibration from every executed plan, so
	// latency predictions track the machine the server actually runs on.
	if p.pstats != nil {
		p.pstats.rate.observe(planRows(plan), time.Since(execStart))
	}
	if tr != nil {
		endStage = tr.StartStage("finalize")
	}
	if !chosenExact {
		// Mark exactness from the metadata: a group is exact when one of the
		// used tables stores all of its rows undownsampled (§4.2.2: "answers
		// for groups that result from querying small group tables are marked
		// as being exact"). Under the multi-level extension, medium-band
		// groups are estimated from their subsampled rows and stay inexact.
		// The exact-fallback plan skips this: the engine already marked every
		// group exact.
		used := p.usedTables(plan)
		for _, g := range combined.Groups() {
			g.Exact = p.meta.GroupIsExact(q.GroupBy, g.Key, used)
		}
	}
	ivs := ConfidenceIntervals(combined, conf)
	ans := &Answer{
		Result:    combined,
		Intervals: ivs,
		RowsRead:  rowsRead,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
		Degraded:  degraded,
		Plan:      decision,
	}
	if decision != nil {
		decision.AchievedError = achievedError(combined, ivs)
		obsPlannerGap.Observe(math.Abs(decision.AchievedError - decision.Chosen.PredictedError))
		if b.ErrorBound > 0 && decision.AchievedError > b.ErrorBound {
			obsPlannerBoundMiss.Inc()
		}
		if tr != nil {
			tr.SetPlanner(plannerTrace(decision))
		}
	}
	if tr != nil {
		endStage()
		tr.SetRowsRead(rowsRead)
	}
	return ans, nil
}

// plannerTrace converts a PlanDecision into its explain-trace form.
func plannerTrace(d *PlanDecision) *obs.PlannerData {
	pd := &obs.PlannerData{
		ErrorBound:      d.Bounds.ErrorBound,
		TimeBoundMicros: d.Bounds.TimeBound.Microseconds(),
		Confidence:      d.Bounds.Confidence,
		Chosen:          d.Chosen.Name,
		PredictedError:  d.Chosen.PredictedError,
		AchievedError:   d.AchievedError,
		Caveats:         d.Caveats,
	}
	for _, c := range d.Candidates {
		pd.Candidates = append(pd.Candidates, obs.PlannerCandidate{
			Plan:                   c.Name,
			Rows:                   c.Rows,
			PredictedError:         c.PredictedError,
			PredictedLatencyMicros: c.PredictedLatencyMicros,
			Exact:                  c.Exact,
			Feasible:               c.Feasible,
		})
	}
	return pd
}

// planRows is the total number of sample rows a plan scans, before
// predicate or bitmask filtering (the quantity latency predictions budget
// against), honouring per-step MaxRows caps.
func planRows(plan *RewritePlan) int64 {
	var n int64
	for _, st := range plan.Steps {
		n += stepRows(st)
	}
	return n
}

// stepRows is the number of rows one step scans (its source size, capped by
// MaxRows).
func stepRows(st RewriteStep) int64 {
	n := int64(st.Source.NumRows())
	if st.MaxRows > 0 && int64(st.MaxRows) < n {
		n = int64(st.MaxRows)
	}
	return n
}

// SampleRows implements Prepared.
func (p *smallGroupPrepared) SampleRows() int64 {
	n := p.overall.rows()
	for _, t := range p.tables {
		n += t.rows()
	}
	return n
}

// SampleBytes implements Prepared. For renormalized storage the shared
// reduced dimension tables are counted once.
func (p *smallGroupPrepared) SampleBytes() int64 {
	b := p.overall.bytes()
	for _, t := range p.tables {
		b += t.bytes()
	}
	for _, d := range p.sharedDims {
		b += d.ApproxBytes()
	}
	return b
}

// ExecutePlan runs every step of a rewrite plan and merges the partial
// results, returning the combined result and total sample rows scanned. It
// is ExecutePlanCtx with a background context.
func ExecutePlan(plan *RewritePlan) (*engine.Result, int64, error) {
	return ExecutePlanCtx(context.Background(), plan)
}

// ExecutePlanCtx runs a rewrite plan under a context.
//
// With plan.Workers >= 1 the steps — the branches of the rewritten UNION ALL
// — execute as parallel tasks, each itself a partitioned scan, and the
// per-step results are merged in step order on the calling goroutine. The
// bitmask anti-double-counting semantics are unaffected: each step's Exclude
// mask was fixed at plan time, so no step depends on another's output.
//
// Cancellation propagates to every step's sharded scan: once ctx is done,
// no new shard starts and ExecutePlanCtx returns ctx.Err(). A panic inside
// a step (only ever seen with fault injection) is contained by the worker
// pool and surfaces as an error, not a process crash.
func ExecutePlanCtx(ctx context.Context, plan *RewritePlan) (*engine.Result, int64, error) {
	tr := obs.TraceFrom(ctx)
	var endStage func()
	var stepObs []obs.SampleExec
	if tr != nil {
		endStage = tr.StartStage("execute")
		// Each step writes its own slot, so the concurrent fan-out records
		// without sharing; the slots are appended to the trace afterwards.
		stepObs = make([]obs.SampleExec, len(plan.Steps))
	}
	partials := make([]*engine.Result, len(plan.Steps))
	err := parallel.ForEachCtx(ctx, planTaskWorkers(plan), len(plan.Steps), func(i int) error {
		faults.Fire(ctx, faults.PointPlanStep, i)
		st := plan.Steps[i]
		stepStart := time.Now()
		res, err := engine.ExecuteCtx(ctx, st.Source, plan.Query, engine.ExecOptions{
			Scale:       st.Scale,
			ExcludeMask: st.Exclude,
			MarkExact:   st.MarkExact,
			MaxRows:     st.MaxRows,
			Workers:     plan.Workers,
		})
		if err != nil {
			return err
		}
		if tr != nil {
			stepObs[i] = obs.SampleExec{
				Table:  st.Name,
				Rows:   res.RowsScanned,
				Shards: engine.ShardsFor(int(stepRows(st))),
				Scale:  st.Scale,
				Micros: time.Since(stepStart).Microseconds(),
			}
		}
		partials[i] = res
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if tr != nil {
		endStage()
		for _, s := range stepObs {
			tr.AddSample(s)
		}
		endStage = tr.StartStage("combine")
	}
	combined := engine.NewResult(plan.Query.GroupBy, plan.Query.Aggs)
	var rowsRead int64
	for _, res := range partials {
		rowsRead += res.RowsScanned
		if err := combined.Merge(res); err != nil {
			return nil, 0, err
		}
	}
	if tr != nil {
		endStage()
	}
	return combined, rowsRead, nil
}

// planTaskWorkers maps the plan's worker budget onto its steps: 0 keeps the
// legacy inline loop (ForEach runs inline at 1), and >= 1 lets up to Workers
// steps run concurrently on top of their own sharded scans. Goroutines are
// cheap and blocked shards release workers quickly, so mild oversubscription
// (steps × scan workers) is preferable to partitioning the budget.
func planTaskWorkers(plan *RewritePlan) int {
	if plan.Workers <= 0 {
		return 1
	}
	return plan.Workers
}

// ConfidenceIntervals derives per-group, per-aggregate intervals from the
// Horvitz-Thompson variance accumulators. Exact groups get zero-width
// intervals; COUNT intervals are clamped at zero. This is the simple
// single-stratum computation the paper highlights (§4.2.2): "confidence
// interval calculation is very simple when using small group sampling
// because the source of inaccuracy can be restricted to a single stratum".
func ConfidenceIntervals(res *engine.Result, level float64) map[engine.GroupKey][]stats.Interval {
	if level == 0 {
		level = DefaultConfidenceLevel
	}
	z := stats.NormalQuantile(0.5 + level/2)
	out := make(map[engine.GroupKey][]stats.Interval, res.NumGroups())
	for _, k := range res.Keys() {
		g := res.Group(k)
		ivs := make([]stats.Interval, len(res.Aggs))
		for i := range res.Aggs {
			if g.Exact {
				ivs[i] = stats.Exact(g.Vals[i])
				continue
			}
			sd := math.Sqrt(math.Max(g.VarAcc[i], 0))
			lo, hi := g.Vals[i]-z*sd, g.Vals[i]+z*sd
			if res.Aggs[i].Kind == engine.Count && lo < 0 {
				lo = 0
			}
			ivs[i] = stats.Interval{Lo: lo, Hi: hi, Level: level}
		}
		out[k] = ivs
	}
	return out
}
