package core

import (
	"context"
	"math"
	"sort"
	"time"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/obs"
	"dynsample/internal/parallel"
	"dynsample/internal/stats"
)

// sampleSource is one stored sample: a flat join-synopsis table or a
// renormalized star schema.
type sampleSource struct {
	src  engine.Source
	name string
}

func (s sampleSource) rows() int64 { return int64(s.src.NumRows()) }

func (s sampleSource) bytes() int64 {
	switch v := s.src.(type) {
	case *engine.Table:
		return v.ApproxBytes()
	case *engine.Database:
		return v.Fact.ApproxBytes() // shared reduced dimensions counted once, separately
	default:
		return 0
	}
}

// smallGroupPrepared is the runtime state of small group sampling: the
// small group tables (one per column of S), the overall sample, and the
// metadata catalog used for sample selection.
type smallGroupPrepared struct {
	db           *engine.Database
	meta         *Metadata
	cfg          SmallGroupConfig
	tables       []sampleSource // indexed by ColumnMeta.Index
	overall      sampleSource
	overallScale float64 // 1 when the overall sample carries per-row weights
	// dataGen is the ingest data generation the samples reflect: the number
	// of ingest batches whose rows are represented in the sample family.
	// Zero for freshly pre-processed or pre-ingest state.
	dataGen uint64
	// sharedDims holds the renormalized storage's shared reduced dimension
	// tables (nil for flat join synopses).
	sharedDims []*engine.Table
}

// Meta exposes the metadata catalog (used by experiments and the CLI).
func (p *smallGroupPrepared) Meta() *Metadata { return p.meta }

// DataGeneration returns the ingest data generation baked into the samples.
func (p *smallGroupPrepared) DataGeneration() uint64 { return p.dataGen }

// SetWorkers implements WorkerConfigurable: it sets the runtime worker
// budget used by every subsequent Answer call (see SmallGroupConfig.Workers).
// Call it before serving queries; it is not synchronised with concurrent
// Answer calls.
func (p *smallGroupPrepared) SetWorkers(n int) { p.cfg.Workers = n }

// Tables exposes the flat small group tables in index order. It panics for
// renormalized storage; use Sources then.
func (p *smallGroupPrepared) Tables() []*engine.Table {
	out := make([]*engine.Table, len(p.tables))
	for i, s := range p.tables {
		out[i] = s.src.(*engine.Table)
	}
	return out
}

// Overall exposes the overall sample table (flat storage only).
func (p *smallGroupPrepared) Overall() *engine.Table { return p.overall.src.(*engine.Table) }

// Plan builds the rewritten query: one step per relevant small group table
// (chained bitmask filters avoid double counting) plus the scaled overall
// sample step (§4.2.2).
func (p *smallGroupPrepared) Plan(q *engine.Query) *RewritePlan {
	relevant := p.meta.RelevantTables(q.GroupBy)
	if max := p.cfg.MaxTablesPerQuery; max > 0 && len(relevant) > max {
		// Runtime heuristic from §4.2.3: prefer the tables covering the most
		// rows (largest rare mass), then restore index order for chaining.
		sort.Slice(relevant, func(i, j int) bool { return relevant[i].RareRows > relevant[j].RareRows })
		relevant = relevant[:max]
		sort.Slice(relevant, func(i, j int) bool { return relevant[i].Index < relevant[j].Index })
	}

	plan := &RewritePlan{Query: q, Workers: p.cfg.Workers}
	used := bitmask.New(p.meta.Width())
	for _, ref := range relevant {
		plan.Steps = append(plan.Steps, RewriteStep{
			Source:  p.tables[ref.Index].src,
			Name:    p.tables[ref.Index].name,
			Exclude: used.Clone(),
			Scale:   1,
		})
		used.Set(ref.Index)
	}
	plan.Steps = append(plan.Steps, RewriteStep{
		Source:  p.overall.src,
		Name:    p.overall.name,
		Exclude: used,
		Scale:   p.overallScale,
	})
	return plan
}

// usedTables reports which small group table indices a plan reads.
func (p *smallGroupPrepared) usedTables(plan *RewritePlan) map[int]bool {
	used := make(map[int]bool, len(plan.Steps))
	for _, st := range plan.Steps[:len(plan.Steps)-1] {
		for i, s := range p.tables {
			if s.src == st.Source {
				used[i] = true
			}
		}
	}
	return used
}

// Answer implements Prepared. It is AnswerCtx with a background context.
func (p *smallGroupPrepared) Answer(q *engine.Query) (*Answer, error) {
	return p.AnswerCtx(context.Background(), q)
}

// AnswerCtx implements ContextAnswerer. Cancellation propagates into every
// step's sharded scan; when ctx also carries a deadline, the plan is first
// checked against the remaining budget (see degradeForDeadline) and may be
// swapped for the cheaper overall-sample-only plan, flagged Answer.Degraded.
func (p *smallGroupPrepared) AnswerCtx(ctx context.Context, q *engine.Query) (*Answer, error) {
	start := time.Now()
	tr := obs.TraceFrom(ctx)
	var endStage func()
	if tr != nil {
		endStage = tr.StartStage("select")
	}
	plan := p.Plan(q)
	plan, degraded := p.degradeForDeadline(ctx, q, plan)
	obsPlanSteps.Observe(float64(len(plan.Steps)))
	if degraded {
		obsDegraded.Inc()
	}
	if tr != nil {
		endStage()
		tr.SetDegraded(degraded)
		// States restored from disk have no base data attached (p.db nil);
		// they report rows read but no sampling fraction.
		if p.db != nil {
			if n := p.db.NumRows(); n > 0 {
				tr.SetSamplingFraction(float64(planRows(plan)) / float64(n))
			}
		}
	}
	combined, rowsRead, err := ExecutePlanCtx(ctx, plan)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		endStage = tr.StartStage("finalize")
	}
	// Mark exactness from the metadata: a group is exact when one of the
	// used tables stores all of its rows undownsampled (§4.2.2: "answers for
	// groups that result from querying small group tables are marked as
	// being exact"). Under the multi-level extension, medium-band groups are
	// estimated from their subsampled rows and stay inexact.
	used := p.usedTables(plan)
	for _, g := range combined.Groups() {
		g.Exact = p.meta.GroupIsExact(q.GroupBy, g.Key, used)
	}
	ans := &Answer{
		Result:    combined,
		Intervals: ConfidenceIntervals(combined, p.cfg.ConfidenceLevel),
		RowsRead:  rowsRead,
		Elapsed:   time.Since(start),
		Rewrite:   plan,
		Degraded:  degraded,
	}
	if tr != nil {
		endStage()
		tr.SetRowsRead(rowsRead)
	}
	return ans, nil
}

// degradeForDeadline applies graceful degradation under deadline pressure:
// when ctx carries a deadline and the plan's total sample-table rows —
// known exactly from the metadata, no scanning needed — would take longer
// to scan than the remaining budget (at the configured ScanRowsPerSecond
// estimate), it returns the overall-sample-only plan instead. That plan
// reads the fewest rows any estimate can (it is plain uniform sampling,
// §4.1's first baseline), so it is the best answer producible in the time
// left; groups lose small-group exactness but keep unbiased estimates and
// confidence intervals. This is dynamic sample selection applied to
// latency: the per-query choice of sample tables shrinks as the budget
// does. Without a deadline the plan is returned unchanged.
func (p *smallGroupPrepared) degradeForDeadline(ctx context.Context, q *engine.Query, plan *RewritePlan) (*RewritePlan, bool) {
	dl, ok := ctx.Deadline()
	if !ok || len(plan.Steps) <= 1 {
		return plan, false
	}
	rate := p.cfg.ScanRowsPerSecond
	if rate <= 0 {
		rate = DefaultScanRowsPerSecond
	}
	budgetRows := time.Until(dl).Seconds() * rate
	if float64(planRows(plan)) <= budgetRows {
		return plan, false
	}
	return &RewritePlan{
		Query:   q,
		Workers: plan.Workers,
		Steps: []RewriteStep{{
			Source: p.overall.src,
			Name:   p.overall.name,
			Scale:  p.overallScale,
		}},
	}, true
}

// planRows is the total number of sample rows a plan scans, before
// predicate or bitmask filtering (the upper bound the degradation rule
// budgets against).
func planRows(plan *RewritePlan) int64 {
	var n int64
	for _, st := range plan.Steps {
		n += int64(st.Source.NumRows())
	}
	return n
}

// SampleRows implements Prepared.
func (p *smallGroupPrepared) SampleRows() int64 {
	n := p.overall.rows()
	for _, t := range p.tables {
		n += t.rows()
	}
	return n
}

// SampleBytes implements Prepared. For renormalized storage the shared
// reduced dimension tables are counted once.
func (p *smallGroupPrepared) SampleBytes() int64 {
	b := p.overall.bytes()
	for _, t := range p.tables {
		b += t.bytes()
	}
	for _, d := range p.sharedDims {
		b += d.ApproxBytes()
	}
	return b
}

// ExecutePlan runs every step of a rewrite plan and merges the partial
// results, returning the combined result and total sample rows scanned. It
// is ExecutePlanCtx with a background context.
func ExecutePlan(plan *RewritePlan) (*engine.Result, int64, error) {
	return ExecutePlanCtx(context.Background(), plan)
}

// ExecutePlanCtx runs a rewrite plan under a context.
//
// With plan.Workers >= 1 the steps — the branches of the rewritten UNION ALL
// — execute as parallel tasks, each itself a partitioned scan, and the
// per-step results are merged in step order on the calling goroutine. The
// bitmask anti-double-counting semantics are unaffected: each step's Exclude
// mask was fixed at plan time, so no step depends on another's output.
//
// Cancellation propagates to every step's sharded scan: once ctx is done,
// no new shard starts and ExecutePlanCtx returns ctx.Err(). A panic inside
// a step (only ever seen with fault injection) is contained by the worker
// pool and surfaces as an error, not a process crash.
func ExecutePlanCtx(ctx context.Context, plan *RewritePlan) (*engine.Result, int64, error) {
	tr := obs.TraceFrom(ctx)
	var endStage func()
	var stepObs []obs.SampleExec
	if tr != nil {
		endStage = tr.StartStage("execute")
		// Each step writes its own slot, so the concurrent fan-out records
		// without sharing; the slots are appended to the trace afterwards.
		stepObs = make([]obs.SampleExec, len(plan.Steps))
	}
	partials := make([]*engine.Result, len(plan.Steps))
	err := parallel.ForEachCtx(ctx, planTaskWorkers(plan), len(plan.Steps), func(i int) error {
		faults.Fire(ctx, faults.PointPlanStep, i)
		st := plan.Steps[i]
		stepStart := time.Now()
		res, err := engine.ExecuteCtx(ctx, st.Source, plan.Query, engine.ExecOptions{
			Scale:       st.Scale,
			ExcludeMask: st.Exclude,
			MarkExact:   st.MarkExact,
			Workers:     plan.Workers,
		})
		if err != nil {
			return err
		}
		if tr != nil {
			stepObs[i] = obs.SampleExec{
				Table:  st.Name,
				Rows:   res.RowsScanned,
				Shards: engine.ShardsFor(st.Source.NumRows()),
				Scale:  st.Scale,
				Micros: time.Since(stepStart).Microseconds(),
			}
		}
		partials[i] = res
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if tr != nil {
		endStage()
		for _, s := range stepObs {
			tr.AddSample(s)
		}
		endStage = tr.StartStage("combine")
	}
	combined := engine.NewResult(plan.Query.GroupBy, plan.Query.Aggs)
	var rowsRead int64
	for _, res := range partials {
		rowsRead += res.RowsScanned
		if err := combined.Merge(res); err != nil {
			return nil, 0, err
		}
	}
	if tr != nil {
		endStage()
	}
	return combined, rowsRead, nil
}

// planTaskWorkers maps the plan's worker budget onto its steps: 0 keeps the
// legacy inline loop (ForEach runs inline at 1), and >= 1 lets up to Workers
// steps run concurrently on top of their own sharded scans. Goroutines are
// cheap and blocked shards release workers quickly, so mild oversubscription
// (steps × scan workers) is preferable to partitioning the budget.
func planTaskWorkers(plan *RewritePlan) int {
	if plan.Workers <= 0 {
		return 1
	}
	return plan.Workers
}

// ConfidenceIntervals derives per-group, per-aggregate intervals from the
// Horvitz-Thompson variance accumulators. Exact groups get zero-width
// intervals; COUNT intervals are clamped at zero. This is the simple
// single-stratum computation the paper highlights (§4.2.2): "confidence
// interval calculation is very simple when using small group sampling
// because the source of inaccuracy can be restricted to a single stratum".
func ConfidenceIntervals(res *engine.Result, level float64) map[engine.GroupKey][]stats.Interval {
	if level == 0 {
		level = DefaultConfidenceLevel
	}
	z := stats.NormalQuantile(0.5 + level/2)
	out := make(map[engine.GroupKey][]stats.Interval, res.NumGroups())
	for _, k := range res.Keys() {
		g := res.Group(k)
		ivs := make([]stats.Interval, len(res.Aggs))
		for i := range res.Aggs {
			if g.Exact {
				ivs[i] = stats.Exact(g.Vals[i])
				continue
			}
			sd := math.Sqrt(math.Max(g.VarAcc[i], 0))
			lo, hi := g.Vals[i]-z*sd, g.Vals[i]+z*sd
			if res.Aggs[i].Kind == engine.Count && lo < 0 {
				lo = 0
			}
			ivs[i] = stats.Interval{Lo: lo, Hi: hi, Level: level}
		}
		out[k] = ivs
	}
	return out
}
