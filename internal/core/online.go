package core

import (
	"fmt"
	"math"
	"math/rand"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
	"dynsample/internal/parallel"
	"dynsample/internal/randx"
)

// Online sample maintenance: the ingest subsystem's bridge into small group
// sampling. The paper builds its sample family in an offline pre-processing
// phase and leaves maintenance under updates open; Online closes that gap by
// keeping the family statistically valid as rows stream in, WITHOUT touching
// the frozen pre-processing decisions:
//
//   - The uniform overall sample continues as a reservoir (Vitter's
//     Algorithm R) of fixed capacity k over the growing stream: each new row
//     replaces a random slot with probability k/N, so after any number of
//     appends the overall sample is still a uniform k-of-N sample, and the
//     runtime scale factor N/k is updated per batch.
//   - A new row whose value in column C lies outside the frozen common set
//     L(C) is appended, completely, to C's small group table with the
//     correct membership bitmask, so rare groups keep their exact answers.
//     Values never seen before are outside L(C) by definition and therefore
//     captured exactly from their first occurrence.
//   - Per-column frequency counts over the values outside L(C) detect
//     common-set drift: when some rare value's total count approaches the
//     t·N small-group threshold, the frozen decision "this value is rare" is
//     about to become wrong-side-of-the-split, and the drift gauge
//     (count / t·N for the heaviest rare value) crosses 1. Answers remain
//     correct either way — estimates stay unbiased and small groups stay
//     exact, the family is merely no longer the one pre-processing would
//     build — so the policy is to serve slightly-stale-but-correct answers
//     until drift exceeds a configured bound, then rebuild in the
//     background (see ingest.Coordinator).
//
// Every mutation is copy-on-write over the published state (engine
// CloneForAppend / CopyForUpdate plus a fresh smallGroupPrepared per batch),
// so concurrent queries keep scanning the version they pinned; Online itself
// is a single-writer object whose calls the caller must serialise.
type Online struct {
	sys      *System
	strategy string

	app *engine.Appender
	p   *smallGroupPrepared

	// seed is the configured reservoir seed; rng is re-derived from it (and
	// the batch sequence number) at the start of every applied batch, so the
	// draws for batch k depend only on (seed, k, seen-before-batch, cap) —
	// never on how many earlier batches this process replayed. That makes
	// Apply idempotent across a checkpoint: a restart that recovers batches
	// 1..k from a snapshot (without replaying them) still burns exactly the
	// draws for batch k+1 that an uninterrupted run would.
	seed int64
	rng  *rand.Rand

	// Reservoir continuation state for the overall sample.
	cap  int   // reservoir capacity = overall sample rows (fixed until rebuild)
	seen int64 // stream length offered so far (= base rows)

	gen       uint64 // data generation: ingest batches applied to the base db
	sampleGen uint64 // batches whose rows are represented in the sample family

	t          float64 // small-group fraction (the t in the t·N threshold)
	maxTracked int     // per-column cap on tracked rare values

	colPos  []int    // per meta column: position in the view column order
	pairPos [][2]int // per pair: view positions of both columns
	// pairColCommon tests, per pair side, whether a value is common in that
	// column (a pair column outside S has every value common).
	pairColCommon [][2]func(engine.Value) bool

	// freqs counts, per meta column, total occurrences of each value outside
	// the frozen L(C); maxRareCount is the running maximum over all of them.
	freqs        []map[engine.Value]int64
	saturated    []bool
	maxRareCount int64

	// Columns pre-processing removed from S for having NO small groups
	// (§4.2.1: every value common) are tracked by value set: a brand-new
	// value in one of them IS a small group, but no table exists to insert
	// it into, so the only correct response is a rebuild that re-admits the
	// column to S. missingNew counts batch rows carrying such a value;
	// any makes Drift report at least 1. τ-excluded columns (distinct count
	// beyond DistinctLimit) are not tracked — a rebuild would drop them too.
	missingPos  []int
	missingVals []map[engine.Value]struct{}
	missingNew  int64
}

// OnlineConfig parameterises online maintenance.
type OnlineConfig struct {
	// SmallGroupFraction is t for the drift threshold t·N. Zero falls back
	// to the prepared state's configured fraction; states restored from disk
	// do not carry it, so the caller must supply it then.
	SmallGroupFraction float64
	// Seed drives the continued reservoir. Each batch's draws are derived
	// from (Seed, batch sequence), so replaying any suffix of the batch
	// sequence with the same seed — a full replay from birth or a
	// checkpointed replay of the tail — reproduces the sample family
	// bit-identically.
	Seed int64
	// MaxTrackedPerColumn caps each column's rare-value frequency map. When
	// a column exceeds it (a flood of brand-new distinct values), tracking
	// saturates and Drift reports +Inf: the right response is a rebuild,
	// whose scan-1 either re-splits the column or drops it from S via the
	// τ cutoff. Zero means 4·DefaultDistinctLimit.
	MaxTrackedPerColumn int
}

// BatchStats reports what one applied batch changed.
type BatchStats struct {
	// Rows is the number of rows appended to the base data.
	Rows int
	// ReservoirSwaps counts overall-sample slots replaced by batch rows.
	ReservoirSwaps int
	// SmallGroupInserts counts rows added to small group (and pair) tables.
	SmallGroupInserts int
	// Drift is the drift gauge after the batch (see Online.Drift).
	Drift float64
	// DataGeneration is the published data generation after the batch.
	DataGeneration uint64
}

// TailBatch is a batch ingested while a rebuild was running, to be re-applied
// onto the freshly built state (see Rebase).
type TailBatch struct {
	Seq  uint64
	Rows [][]engine.Value
}

// NewOnline attaches online maintenance to the prepared state registered
// under strategy. The system's current database must be the base data the
// samples were built from (for snapshot-restored states: the regenerated
// base, with the WAL replayed on top via Apply). Construction scans the base
// once to seed the rare-value frequency counts and the value sets of the
// columns pre-processing removed from S for having no small groups.
//
// Online maintenance supports the paper's default configuration: flat join
// synopses, the two-level hierarchy, and the uniform reservoir overall
// sample. Renormalized storage, multi-level bands and weighted overall
// builders must use full rebuilds instead.
func NewOnline(sys *System, strategy string, cfg OnlineConfig) (*Online, error) {
	prep, ok := sys.Prepared(strategy)
	if !ok {
		return nil, fmt.Errorf("core: strategy %q not registered", strategy)
	}
	sgp, ok := prep.(*smallGroupPrepared)
	if !ok {
		return nil, fmt.Errorf("core: online maintenance needs small group sampling state, got %T", prep)
	}
	if len(sgp.sharedDims) > 0 {
		return nil, fmt.Errorf("core: online maintenance does not support renormalized sample storage")
	}
	if len(sgp.cfg.Levels) > 1 {
		return nil, fmt.Errorf("core: online maintenance does not support the multi-level hierarchy")
	}
	for _, s := range sgp.tables {
		tbl, ok := s.src.(*engine.Table)
		if !ok {
			return nil, fmt.Errorf("core: online maintenance does not support renormalized sample storage")
		}
		if tbl.Weights != nil {
			return nil, fmt.Errorf("core: online maintenance does not support weighted small group table %q", s.name)
		}
	}
	otbl, ok := sgp.overall.src.(*engine.Table)
	if !ok {
		return nil, fmt.Errorf("core: online maintenance does not support renormalized sample storage")
	}
	if otbl.Weights != nil {
		return nil, fmt.Errorf("core: online maintenance does not support a weighted overall sample")
	}
	if otbl.NumRows() == 0 {
		return nil, fmt.Errorf("core: empty overall sample")
	}
	t := cfg.SmallGroupFraction
	if t <= 0 {
		t = sgp.cfg.SmallGroupFraction
	}
	if t <= 0 || t > 1 {
		return nil, fmt.Errorf("core: online maintenance needs a small group fraction in (0,1], got %g", t)
	}
	maxTracked := cfg.MaxTrackedPerColumn
	if maxTracked <= 0 {
		maxTracked = 4 * DefaultDistinctLimit
	}

	db, gen := sys.Data()
	app, err := engine.NewAppender(db)
	if err != nil {
		return nil, err
	}
	o := &Online{
		sys:        sys,
		strategy:   strategy,
		app:        app,
		p:          sgp,
		seed:       cfg.Seed,
		rng:        randx.New(cfg.Seed),
		cap:        otbl.NumRows(),
		seen:       int64(db.NumRows()),
		gen:        gen,
		sampleGen:  sgp.dataGen,
		t:          t,
		maxTracked: maxTracked,
	}
	if err := o.bindMeta(sgp.meta, db); err != nil {
		return nil, err
	}
	if err := o.seedFrequencies(sgp.meta, db); err != nil {
		return nil, err
	}
	if err := o.seedMissing(sgp.meta, db); err != nil {
		return nil, err
	}
	return o, nil
}

// bindMeta resolves the metadata's columns against the view column order.
func (o *Online) bindMeta(meta *Metadata, db *engine.Database) error {
	view := db.Columns()
	pos := make(map[string]int, len(view))
	for i, n := range view {
		pos[n] = i
	}
	o.colPos = o.colPos[:0]
	for _, cm := range meta.Columns() {
		p, ok := pos[cm.Column]
		if !ok {
			return fmt.Errorf("core: metadata column %q missing from database view", cm.Column)
		}
		o.colPos = append(o.colPos, p)
	}
	o.pairPos = o.pairPos[:0]
	o.pairColCommon = o.pairColCommon[:0]
	for _, pm := range meta.Pairs() {
		var pp [2]int
		var commons [2]func(engine.Value) bool
		for side, col := range pm.Cols {
			p, ok := pos[col]
			if !ok {
				return fmt.Errorf("core: pair column %q missing from database view", col)
			}
			pp[side] = p
			if cm, inS := meta.Column(col); inS {
				common := cm.Common
				commons[side] = func(v engine.Value) bool { _, ok := common[v]; return ok }
			} else {
				commons[side] = func(engine.Value) bool { return true }
			}
		}
		o.pairPos = append(o.pairPos, pp)
		o.pairColCommon = append(o.pairColCommon, commons)
	}
	return nil
}

// seedFrequencies scans the database once, counting per column the
// occurrences of every value outside the frozen L(C). Columns are
// independent, so the scan fans out one column per worker.
func (o *Online) seedFrequencies(meta *Metadata, db *engine.Database) error {
	cols := meta.Columns()
	o.freqs = make([]map[engine.Value]int64, len(cols))
	o.saturated = make([]bool, len(cols))
	accs := make([]engine.ColumnAccessor, len(cols))
	for i, cm := range cols {
		acc, err := db.Accessor(cm.Column)
		if err != nil {
			return err
		}
		accs[i] = acc
	}
	n := db.NumRows()
	parallel.ForEach(o.p.cfg.Workers, len(cols), func(i int) {
		freq := make(map[engine.Value]int64)
		common := cols[i].Common
		for row := 0; row < n; row++ {
			v := accs[i].Value(row)
			if _, ok := common[v]; ok {
				continue
			}
			freq[v]++
			if len(freq) > o.maxTracked {
				o.saturated[i] = true
				freq = nil
				break
			}
		}
		o.freqs[i] = freq
	})
	o.maxRareCount = 0
	for _, freq := range o.freqs {
		for _, c := range freq {
			if c > o.maxRareCount {
				o.maxRareCount = c
			}
		}
	}
	return nil
}

// seedMissing builds, for every view column outside S whose distinct count
// is within the τ cutoff, the set of values present in db. These are the
// columns pre-processing removed from S for having no small groups; a value
// never seen in one of them is a small group the frozen family cannot
// represent (there is no table to insert into), so trackMissing floors the
// drift gauge at 1 the moment one arrives.
func (o *Online) seedMissing(meta *Metadata, db *engine.Database) error {
	lim := o.p.cfg.DistinctLimit
	if lim <= 0 {
		lim = DefaultDistinctLimit
	}
	var pos []int
	var accs []engine.ColumnAccessor
	for i, name := range db.Columns() {
		if _, inS := meta.Column(name); inS {
			continue
		}
		acc, err := db.Accessor(name)
		if err != nil {
			return err
		}
		pos = append(pos, i)
		accs = append(accs, acc)
	}
	vals := make([]map[engine.Value]struct{}, len(pos))
	n := db.NumRows()
	parallel.ForEach(o.p.cfg.Workers, len(pos), func(i int) {
		set := make(map[engine.Value]struct{})
		for row := 0; row < n; row++ {
			set[accs[i].Value(row)] = struct{}{}
			if len(set) > lim {
				set = nil // τ-excluded: a rebuild would drop this column too
				break
			}
		}
		vals[i] = set
	})
	o.missingPos = o.missingPos[:0]
	o.missingVals = o.missingVals[:0]
	for i, set := range vals {
		if set == nil {
			continue
		}
		o.missingPos = append(o.missingPos, pos[i])
		o.missingVals = append(o.missingVals, set)
	}
	o.missingNew = 0
	return nil
}

// trackMissing counts batch rows whose value in a tracked no-small-groups
// column was never seen at pre-processing time.
func (o *Online) trackMissing(rows [][]engine.Value) {
	for i, p := range o.missingPos {
		set := o.missingVals[i]
		for _, row := range rows {
			if _, ok := set[row[p]]; !ok {
				o.missingNew++
			}
		}
	}
}

// DataGenerationOf returns the ingest data generation recorded in a prepared
// state (SaveSmallGroup persists it), or 0 when the state doesn't track one.
func DataGenerationOf(p Prepared) uint64 {
	if g, ok := p.(interface{ DataGeneration() uint64 }); ok {
		return g.DataGeneration()
	}
	return 0
}

// DataGeneration returns the data generation of the newest applied batch.
func (o *Online) DataGeneration() uint64 { return o.gen }

// SampleGeneration returns the generation baked into the sample family.
func (o *Online) SampleGeneration() uint64 { return o.sampleGen }

// DB returns the newest database version.
func (o *Online) DB() *engine.Database { return o.app.DB() }

// Prepared returns the newest maintained sample state.
func (o *Online) Prepared() Prepared { return o.p }

// Validate checks a batch against the view schema without applying it. The
// ingest coordinator calls it before a batch is acknowledged to the WAL.
func (o *Online) Validate(rows [][]engine.Value) error { return o.app.Validate(rows) }

// Drift returns the drift gauge: the heaviest rare value's total count as a
// fraction of the t·N small-group threshold. Crossing 1 means some value the
// frozen metadata files under "rare" now carries enough mass that
// pre-processing would declare it common — time to rebuild. The gauge also
// floors at 1 once a brand-new value arrives in a column pre-processing
// removed from S for having no small groups: that group cannot be captured
// without a rebuild re-admitting the column. +Inf when value tracking
// saturated (see OnlineConfig.MaxTrackedPerColumn).
func (o *Online) Drift() float64 {
	for _, s := range o.saturated {
		if s {
			return math.Inf(1)
		}
	}
	var d float64
	if n := o.app.DB().NumRows(); n > 0 && o.maxRareCount > 0 {
		d = float64(o.maxRareCount) / (o.t * float64(n))
	}
	if o.missingNew > 0 && d < 1 {
		d = 1
	}
	return d
}

// Apply appends one ingest batch (rows in view column order) as data
// generation seq, which must be exactly DataGeneration()+1. The base data
// always grows; the sample family is updated only when seq exceeds
// SampleGeneration() — batches at or below it are already baked into a
// snapshot-restored family, so replay re-applies them to the regenerated
// base only, while still burning the same reservoir draws and frequency
// counts to stay bit-identical with a never-restored run. The new database
// and sample versions are published to the System before Apply returns.
func (o *Online) Apply(seq uint64, rows [][]engine.Value) (BatchStats, error) {
	var st BatchStats
	if seq != o.gen+1 {
		return st, fmt.Errorf("core: online apply out of order: batch %d after generation %d", seq, o.gen)
	}
	updateSamples := seq > o.sampleGen
	newDB, err := o.app.Append(rows)
	if err != nil {
		return st, err
	}

	o.rng = randx.New(batchSeed(o.seed, seq))
	masks, perTable, victims := o.classify(rows)

	np := *o.p
	np.db = newDB
	if updateSamples {
		o.applySampleUpdates(&np, rows, masks, perTable, victims, &st)
		np.overallScale = float64(newDB.NumRows()) / float64(o.cap)
		o.sampleGen = seq
	}
	o.gen = seq
	np.dataGen = o.sampleGen
	o.p = &np
	// Prepared state first, data generation second: handleQuery reads the
	// generation before answering and promises the answer covers at least
	// every batch up to it, so the state that answers must never lag the
	// generation a concurrent reader can observe.
	o.sys.SwapPrepared(o.strategy, &np)
	o.sys.SwapData(newDB, o.gen)

	st.Rows = len(rows)
	st.Drift = o.Drift()
	st.DataGeneration = o.gen
	return st, nil
}

// batchSeed derives the per-batch reservoir seed from the configured seed
// and the batch sequence number (a splitmix64 finalizer over a golden-ratio
// stride, so consecutive sequences land on uncorrelated streams). It is part
// of the WAL's durability contract: changing it changes which rows the
// reservoir keeps when a checkpointed restart replays a log tail.
func batchSeed(seed int64, seq uint64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*seq
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// reservoirHit records one accepted reservoir replacement: batch row ri
// replaces overall-sample slot.
type reservoirHit struct {
	slot int
	ri   int
}

// classify computes each batch row's membership bitmask, bumps the
// rare-value frequency counts, and draws the reservoir decisions. It
// mutates only tracking state (freqs, seen, rng), never sample tables.
func (o *Online) classify(rows [][]engine.Value) ([]bitmask.Mask, map[int][]int, []reservoirHit) {
	meta := o.p.meta
	width := meta.Width()
	cols := meta.Columns()
	masks := make([]bitmask.Mask, len(rows))
	perTable := make(map[int][]int)
	var victims []reservoirHit
	o.trackMissing(rows)
	for ri, row := range rows {
		m := bitmask.New(width)
		for ci, cm := range cols {
			v := row[o.colPos[ci]]
			if _, common := cm.Common[v]; common {
				continue
			}
			o.bumpFreq(ci, v)
			m.Set(cm.Index)
			perTable[cm.Index] = append(perTable[cm.Index], ri)
		}
		for pi, pm := range meta.Pairs() {
			v0 := row[o.pairPos[pi][0]]
			v1 := row[o.pairPos[pi][1]]
			if !o.pairColCommon[pi][0](v0) || !o.pairColCommon[pi][1](v1) {
				continue
			}
			tuple := engine.EncodeKey([]engine.Value{v0, v1})
			if _, rare := pm.Rare[tuple]; rare {
				m.Set(pm.Index)
				perTable[pm.Index] = append(perTable[pm.Index], ri)
			}
		}
		masks[ri] = m
		// Continued Algorithm R: replace slot j with probability cap/seen.
		o.seen++
		if j := o.rng.Int63n(o.seen); j < int64(o.cap) {
			victims = append(victims, reservoirHit{slot: int(j), ri: ri})
		}
	}
	return masks, perTable, victims
}

func (o *Online) bumpFreq(ci int, v engine.Value) {
	if o.saturated[ci] {
		return
	}
	freq := o.freqs[ci]
	c := freq[v] + 1
	if c == 1 && len(freq) >= o.maxTracked {
		o.saturated[ci] = true
		o.freqs[ci] = nil
		return
	}
	freq[v] = c
	if c > o.maxRareCount {
		o.maxRareCount = c
	}
}

// applySampleUpdates materialises the classified batch into copy-on-write
// versions of the affected sample tables.
func (o *Online) applySampleUpdates(np *smallGroupPrepared, rows [][]engine.Value, masks []bitmask.Mask, perTable map[int][]int, victims []reservoirHit, st *BatchStats) {
	if len(perTable) > 0 {
		np.tables = append([]sampleSource(nil), o.p.tables...)
		for ix, list := range perTable {
			tbl := np.tables[ix].src.(*engine.Table).CloneForAppend()
			for _, ri := range list {
				tbl.AppendRow(rows[ri]...)
				tbl.Masks = append(tbl.Masks, masks[ri])
				st.SmallGroupInserts++
			}
			np.tables[ix] = sampleSource{src: tbl, name: np.tables[ix].name}
		}
	}
	if len(victims) > 0 {
		ot := o.p.overall.src.(*engine.Table).CopyForUpdate()
		for _, v := range victims {
			// A slot replaced twice in one batch keeps the later row, exactly
			// as sequential per-row reservoir updates would.
			ot.SetRow(v.slot, rows[v.ri]...)
			ot.Masks[v.slot] = masks[v.ri]
			st.ReservoirSwaps++
		}
		np.overall = sampleSource{src: ot, name: o.p.overall.name}
	}
}

// Rebase installs freshly rebuilt sample state p (pre-processed from the
// pinned database version at data generation rebuiltAt) and re-applies the
// sample-side updates of every batch ingested while the rebuild ran (the
// tail, seq ascending from rebuiltAt+1 through DataGeneration()). Tail rows
// are already in the base data — Apply ran live during the rebuild — so only
// their reservoir offers and small-group inserts are replayed, against the
// new metadata. Frequency tracking is re-seeded from the current database
// with the new common sets, which resets the drift gauge. The rebased state
// is published before Rebase returns.
func (o *Online) Rebase(p Prepared, rebuiltAt uint64, tail []TailBatch) error {
	sgp, ok := p.(*smallGroupPrepared)
	if !ok {
		return fmt.Errorf("core: online rebase needs small group sampling state, got %T", p)
	}
	// Snapshot every field the rebase mutates so a failure at any point
	// rolls back to a state consistent with the still-published family.
	// bindMeta and seedMissing truncate-and-append over the existing slices,
	// so they must start from nil here — otherwise they would scribble over
	// the snapshotted backing arrays and make the restore a no-op.
	prev := o.p
	prevCap, prevSeen, prevSampleGen := o.cap, o.seen, o.sampleGen
	prevColPos, prevPairPos, prevPairColCommon := o.colPos, o.pairPos, o.pairColCommon
	prevFreqs, prevSaturated, prevMaxRareCount := o.freqs, o.saturated, o.maxRareCount
	prevMissingPos, prevMissingVals, prevMissingNew := o.missingPos, o.missingVals, o.missingNew
	restore := func() {
		o.p = prev
		o.cap, o.seen, o.sampleGen = prevCap, prevSeen, prevSampleGen
		o.colPos, o.pairPos, o.pairColCommon = prevColPos, prevPairPos, prevPairColCommon
		o.freqs, o.saturated, o.maxRareCount = prevFreqs, prevSaturated, prevMaxRareCount
		o.missingPos, o.missingVals, o.missingNew = prevMissingPos, prevMissingVals, prevMissingNew
	}
	o.colPos, o.pairPos, o.pairColCommon = nil, nil, nil

	otbl, ok := sgp.overall.src.(*engine.Table)
	if !ok || otbl.Weights != nil || otbl.NumRows() == 0 || len(sgp.sharedDims) > 0 {
		return fmt.Errorf("core: online rebase needs a flat uniform-overall sample family")
	}
	np := *sgp
	np.db = o.app.DB()
	o.p = &np
	o.cap = otbl.NumRows()
	if sgp.db == nil {
		restore()
		return fmt.Errorf("core: online rebase needs state pre-processed from live data")
	}
	o.seen = int64(sgp.db.NumRows())
	o.sampleGen = rebuiltAt
	if err := o.bindMeta(np.meta, np.db); err != nil {
		restore()
		return err
	}
	if err := o.seedFrequencies(np.meta, np.db); err != nil {
		restore()
		return err
	}
	// Missing-column value sets, unlike the frequency counts, are seeded
	// from the pinned rebuild database: a new value a tail row introduces
	// into a still-dropped column must keep the drift gauge floored, and
	// classifyForRebase bumps it during the tail replay below.
	o.missingPos, o.missingVals = nil, nil
	if err := o.seedMissing(np.meta, sgp.db); err != nil {
		restore()
		return err
	}
	for _, b := range tail {
		if b.Seq != o.sampleGen+1 {
			restore()
			return fmt.Errorf("core: rebase tail out of order: batch %d after sample generation %d", b.Seq, o.sampleGen)
		}
		if b.Seq > o.gen {
			restore()
			return fmt.Errorf("core: rebase tail batch %d beyond data generation %d", b.Seq, o.gen)
		}
		o.rng = randx.New(batchSeed(o.seed, b.Seq))
		masks, perTable, victims := o.classifyForRebase(b.Rows)
		var st BatchStats
		o.applySampleUpdates(&np, b.Rows, masks, perTable, victims, &st)
		o.sampleGen = b.Seq
	}
	if o.sampleGen != o.gen {
		restore()
		return fmt.Errorf("core: rebase tail ends at batch %d, data generation is %d", o.sampleGen, o.gen)
	}
	np.overallScale = float64(np.db.NumRows()) / float64(o.cap)
	np.dataGen = o.sampleGen
	o.sys.SwapPrepared(o.strategy, &np)
	return nil
}

// classifyForRebase is classify without frequency bumps: rebased frequency
// counts were seeded from the full current database, tail rows included.
// Missing-column tracking DOES run here — its value sets come from the
// pinned rebuild database, which excludes the tail.
func (o *Online) classifyForRebase(rows [][]engine.Value) ([]bitmask.Mask, map[int][]int, []reservoirHit) {
	meta := o.p.meta
	width := meta.Width()
	cols := meta.Columns()
	masks := make([]bitmask.Mask, len(rows))
	perTable := make(map[int][]int)
	var victims []reservoirHit
	o.trackMissing(rows)
	for ri, row := range rows {
		m := bitmask.New(width)
		for ci, cm := range cols {
			if _, common := cm.Common[row[o.colPos[ci]]]; !common {
				m.Set(cm.Index)
				perTable[cm.Index] = append(perTable[cm.Index], ri)
			}
		}
		for pi, pm := range meta.Pairs() {
			v0 := row[o.pairPos[pi][0]]
			v1 := row[o.pairPos[pi][1]]
			if !o.pairColCommon[pi][0](v0) || !o.pairColCommon[pi][1](v1) {
				continue
			}
			if _, rare := pm.Rare[engine.EncodeKey([]engine.Value{v0, v1})]; rare {
				m.Set(pm.Index)
				perTable[pm.Index] = append(perTable[pm.Index], ri)
			}
		}
		masks[ri] = m
		o.seen++
		if j := o.rng.Int63n(o.seen); j < int64(o.cap) {
			victims = append(victims, reservoirHit{slot: int(j), ri: ri})
		}
	}
	return masks, perTable, victims
}
