// Package core implements the dynamic sample selection architecture of §3
// and its flagship instantiation, small group sampling (§4).
//
// The architecture splits approximate query processing into two phases. In
// the pre-processing phase a Strategy examines the data distribution, selects
// strata, and builds a family of sample tables plus metadata describing them
// (Figure 1). In the runtime phase, each incoming query is compared against
// the metadata to choose the appropriate sample tables, rewritten to run
// against them, and the partial results are combined into a single
// approximate answer with per-group confidence intervals (Figure 2).
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynsample/internal/engine"
	"dynsample/internal/stats"
)

// Strategy builds sample structures for a database during the pre-processing
// phase. Implementations include small group sampling (this package) and the
// baselines: uniform sampling, basic congress, and outlier indexing.
type Strategy interface {
	// Name identifies the strategy in reports and the CLI.
	Name() string
	// Preprocess scans the database and returns the runtime query answerer.
	Preprocess(db *engine.Database) (Prepared, error)
}

// Prepared answers queries approximately using the sample tables built by a
// Strategy's pre-processing phase.
//
// Implementations must be safe for concurrent Answer calls: all state built
// by pre-processing (sample tables, metadata) is immutable afterwards, and
// Answer keeps every per-query allocation (plan, partial results, buffers)
// on its own stack. The HTTP server relies on this to serve /query requests
// in parallel from one shared Prepared.
type Prepared interface {
	// Answer runs the query against the strategy's sample tables.
	Answer(q *engine.Query) (*Answer, error)
	// SampleBytes estimates the storage consumed by the sample tables, for
	// the space-overhead experiment (§5.4.2).
	SampleBytes() int64
	// SampleRows returns the total number of rows across all sample tables.
	SampleRows() int64
}

// ContextAnswerer is implemented by Prepared states whose Answer honours a
// context: cancellation or a passed deadline aborts in-flight shard scans at
// the next shard boundary and returns ctx.Err(). Implementations may also
// degrade gracefully under deadline pressure (see Answer.Degraded). The
// System routes context-carrying queries through this interface when
// available; strategies that only implement Prepared still work but run to
// completion regardless of the context.
type ContextAnswerer interface {
	AnswerCtx(ctx context.Context, q *engine.Query) (*Answer, error)
}

// BoundedAnswerer is implemented by Prepared states that can plan toward
// per-request accuracy/latency bounds (see Bounds): given an error bound
// and/or a time bound, the implementation chooses the cheapest sample plan
// predicted to satisfy them and reports the prediction and the realized
// error in Answer.Plan. When no plan can satisfy the bounds the error is an
// *UnsatisfiableBoundsError carrying the best achievable figures.
type BoundedAnswerer interface {
	AnswerBounds(ctx context.Context, q *engine.Query, b Bounds) (*Answer, error)
}

// WorkerConfigurable is implemented by Prepared states whose runtime worker
// budget can be adjusted after construction — in particular sample sets
// loaded from disk, whose serialised form does not store the (machine-local)
// worker count. Call SetWorkers before serving queries.
type WorkerConfigurable interface {
	SetWorkers(n int)
}

// Answer is an approximate query answer: estimated (or exact) per-group
// aggregate values plus confidence intervals.
type Answer struct {
	// Result holds the combined groups. Groups answered entirely from small
	// group tables have Exact set.
	Result *engine.Result
	// Intervals maps each group to one confidence interval per aggregate.
	Intervals map[engine.GroupKey][]stats.Interval
	// RowsRead is the number of sample-table rows scanned to produce the
	// answer (the runtime cost the paper holds constant across methods).
	RowsRead int64
	// Elapsed is the wall-clock execution time of the runtime phase.
	Elapsed time.Duration
	// Rewrite, when non-nil, is the rewritten query plan that produced the
	// answer, printable as the UNION ALL SQL of §4.2.2.
	Rewrite *RewritePlan
	// Degraded is set when deadline pressure forced the strategy to fall
	// back to a cheaper plan (the uniform overall sample) instead of its
	// full rewrite — dynamic sample selection applied to latency. The
	// estimates are still unbiased but lose the small-group exactness and
	// tightness guarantees.
	Degraded bool
	// Plan, set on bounded queries (AnswerBounds with non-zero Bounds),
	// records the planner's decision: candidates considered, the chosen
	// plan's predicted error and latency, and the achieved error estimate.
	Plan *PlanDecision
}

// Interval returns the confidence interval for a group's aggregate, or a
// zero-width interval if the group is unknown.
func (a *Answer) Interval(key engine.GroupKey, agg int) stats.Interval {
	if ivs, ok := a.Intervals[key]; ok && agg < len(ivs) {
		return ivs[agg]
	}
	return stats.Interval{}
}

// System is the AQP middleware: it owns the base database, runs strategy
// pre-processing, routes runtime queries to a chosen strategy, and can
// always fall back to exact execution.
//
// The registered Prepared set lives behind an atomic pointer to an
// immutable snapshot, so strategies can be hot-swapped (SwapPrepared) while
// queries are being served: a query loads the snapshot once and keeps
// answering from the generation it started with, and registration never
// blocks or tears a concurrent Answer. Writers (AddStrategy, AddPrepared,
// SwapPrepared) copy-on-write under an internal mutex and may be called
// from any goroutine.
// The base database itself is also behind an atomic pointer, together with a
// monotone data generation counter, so the live ingestion path can publish
// grown copy-on-write database versions (SwapData) while queries keep
// scanning the version they pinned.
type System struct {
	data atomic.Pointer[dataState]
	mu   sync.Mutex // serialises writers; readers go through the pointers
	set  atomic.Pointer[preparedSet]
}

// dataState is one immutable published version of the base data: the
// database and the number of ingest batches applied to reach it.
type dataState struct {
	db  *engine.Database
	gen uint64
}

// preparedSet is one immutable generation of the registered strategies.
// Swapping installs a fresh preparedSet; published maps are never mutated.
type preparedSet struct {
	prepared map[string]Prepared
	prepTime map[string]time.Duration
}

// NewSystem returns a middleware instance over db.
func NewSystem(db *engine.Database) *System {
	s := &System{}
	s.data.Store(&dataState{db: db})
	s.set.Store(&preparedSet{
		prepared: map[string]Prepared{},
		prepTime: map[string]time.Duration{},
	})
	return s
}

// DB returns the current version of the underlying database.
func (s *System) DB() *engine.Database { return s.data.Load().db }

// Data returns the current database version together with its data
// generation, loaded atomically (one published pair, never a torn mix).
func (s *System) Data() (*engine.Database, uint64) {
	d := s.data.Load()
	return d.db, d.gen
}

// DataGeneration returns the number of ingest batches applied to the current
// database version. Query responses report it so clients can detect
// staleness across ingest.
func (s *System) DataGeneration() uint64 { return s.data.Load().gen }

// SwapData atomically publishes a new database version at generation gen.
// In-flight queries that already loaded the previous version finish on it;
// the ingestion layer is the only caller and serialises its swaps.
func (s *System) SwapData(db *engine.Database, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Store(&dataState{db: db, gen: gen})
}

// update installs a copy-on-write modification of the prepared set.
func (s *System) update(mutate func(*preparedSet)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.set.Load()
	next := &preparedSet{
		prepared: make(map[string]Prepared, len(old.prepared)+1),
		prepTime: make(map[string]time.Duration, len(old.prepTime)+1),
	}
	for k, v := range old.prepared {
		next.prepared[k] = v
	}
	for k, v := range old.prepTime {
		next.prepTime[k] = v
	}
	mutate(next)
	s.set.Store(next)
}

// AddStrategy runs a strategy's pre-processing phase and registers the
// result under the strategy's name. Pre-processing runs outside the swap:
// queries keep being answered from the current generation until the new
// state is installed atomically.
func (s *System) AddStrategy(st Strategy) error {
	start := time.Now()
	p, err := st.Preprocess(s.DB())
	if err != nil {
		return fmt.Errorf("preprocess %s: %w", st.Name(), err)
	}
	elapsed := time.Since(start)
	s.update(func(set *preparedSet) {
		set.prepared[st.Name()] = p
		set.prepTime[st.Name()] = elapsed
	})
	return nil
}

// AddPrepared registers already-built runtime state (e.g. loaded from disk
// via LoadSmallGroup) under a name, skipping pre-processing.
func (s *System) AddPrepared(name string, p Prepared) {
	s.update(func(set *preparedSet) { set.prepared[name] = p })
}

// SwapPrepared atomically replaces the runtime state registered under name
// and returns the previous state (nil if none). In-flight queries that
// already resolved the old state finish on it; queries arriving after the
// swap see only the new state. This is the zero-downtime rebuild primitive:
// build the new generation in the background, then SwapPrepared.
func (s *System) SwapPrepared(name string, p Prepared) (prev Prepared) {
	s.update(func(set *preparedSet) {
		prev = set.prepared[name]
		set.prepared[name] = p
	})
	return prev
}

// Strategies lists the registered strategy names, sorted.
func (s *System) Strategies() []string {
	set := s.set.Load()
	names := make([]string, 0, len(set.prepared))
	for n := range set.prepared {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Prepared returns the registered runtime state for a strategy.
func (s *System) Prepared(name string) (Prepared, bool) {
	p, ok := s.set.Load().prepared[name]
	return p, ok
}

// PreprocessTime returns how long a strategy's pre-processing took.
func (s *System) PreprocessTime(name string) time.Duration {
	return s.set.Load().prepTime[name]
}

// Approx answers the query with the named strategy. It is ApproxCtx with a
// background context — it cannot be cancelled.
func (s *System) Approx(strategy string, q *engine.Query) (*Answer, error) {
	return s.ApproxCtx(context.Background(), strategy, q)
}

// ApproxCtx answers the query with the named strategy under a context. If
// the strategy's runtime state implements ContextAnswerer, cancellation and
// deadlines propagate into its shard scans; otherwise the query runs to
// completion and the context is ignored.
func (s *System) ApproxCtx(ctx context.Context, strategy string, q *engine.Query) (*Answer, error) {
	// One atomic load pins this query to the current generation; a
	// concurrent SwapPrepared cannot change the state p points to.
	p, ok := s.set.Load().prepared[strategy]
	if !ok {
		return nil, fmt.Errorf("core: strategy %q not registered", strategy)
	}
	if err := q.Validate(s.DB()); err != nil {
		return nil, err
	}
	var ans *Answer
	var err error
	if ca, ok := p.(ContextAnswerer); ok {
		ans, err = ca.AnswerCtx(ctx, q)
	} else {
		ans, err = p.Answer(q)
	}
	if err == nil {
		obsAnswers.With(strategy).Inc()
		obsSampleRows.Add(uint64(max(ans.RowsRead, 0)))
	}
	return ans, err
}

// ApproxBoundsCtx answers the query with the named strategy under
// per-request accuracy/latency bounds. The strategy's runtime state must
// implement BoundedAnswerer; strategies that cannot plan toward bounds
// return an error rather than silently ignoring them. With zero Bounds it
// behaves exactly like ApproxCtx.
func (s *System) ApproxBoundsCtx(ctx context.Context, strategy string, q *engine.Query, b Bounds) (*Answer, error) {
	if b.IsZero() {
		return s.ApproxCtx(ctx, strategy, q)
	}
	p, ok := s.set.Load().prepared[strategy]
	if !ok {
		return nil, fmt.Errorf("core: strategy %q not registered", strategy)
	}
	ba, ok := p.(BoundedAnswerer)
	if !ok {
		return nil, fmt.Errorf("core: strategy %q does not support error/time bounds", strategy)
	}
	if err := q.Validate(s.DB()); err != nil {
		return nil, err
	}
	ans, err := ba.AnswerBounds(ctx, q, b)
	if err == nil {
		obsAnswers.With(strategy).Inc()
		obsSampleRows.Add(uint64(max(ans.RowsRead, 0)))
	}
	return ans, err
}

// Exact computes the exact answer by scanning the base data. It is ExactCtx
// with a background context.
func (s *System) Exact(q *engine.Query) (*engine.Result, time.Duration, error) {
	return s.ExactCtx(context.Background(), q)
}

// ExactCtx computes the exact answer under a context; the base-table scan
// observes cancellation at shard boundaries. The returned duration covers
// only the engine execution, so /exact and /query latencies are comparable.
func (s *System) ExactCtx(ctx context.Context, q *engine.Query) (*engine.Result, time.Duration, error) {
	start := time.Now()
	res, err := engine.ExecuteExactCtx(ctx, s.DB(), q)
	return res, time.Since(start), err
}
