package core

import (
	"math"
	"strings"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// skewedDB builds a single-table database with a controlled distribution:
//
//	a: 80% "A0", 15% "A1", 5% spread evenly over "A2".."A11" (rare values)
//	b: uniform over "B0".."B3"
//	m: measure, deterministic value (row % 97) + 1
//	u: unique per row (forces the τ cutoff when τ is small)
func skewedDB(t testing.TB, n int) *engine.Database {
	t.Helper()
	a := engine.NewColumn("a", engine.String)
	b := engine.NewColumn("b", engine.String)
	m := engine.NewColumn("m", engine.Int)
	u := engine.NewColumn("u", engine.Int)
	fact := engine.NewTable("fact", a, b, m, u)
	rng := randx.New(1234)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.80:
			a.AppendString("A0")
		case r < 0.95:
			a.AppendString("A1")
		default:
			a.AppendString("A" + string(rune('2'+rng.Intn(10))))
		}
		b.AppendString("B" + string(rune('0'+rng.Intn(4))))
		m.AppendInt(int64(i%97) + 1)
		u.AppendInt(int64(i))
		fact.EndRow()
	}
	return engine.MustNewDatabase("skewed", fact)
}

func prep(t testing.TB, db *engine.Database, cfg SmallGroupConfig) *smallGroupPrepared {
	t.Helper()
	p, err := NewSmallGroup(cfg).Preprocess(db)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*smallGroupPrepared)
}

func TestPreprocessMetadata(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 1})
	meta := p.Meta()

	// u has 20000 distinct values > τ=100: dropped.
	if _, ok := meta.Index("u"); ok {
		t.Error("high-cardinality column u not dropped from S")
	}
	// b is uniform over 4 values of 25% each; with t=0.08 the common set needs
	// >= 92% of mass, so all 4 values are common and b has no small groups.
	if _, ok := meta.Index("b"); ok {
		t.Error("column b with no small groups not dropped from S")
	}
	// a has rare values (~5% mass): it must be in S.
	cm, ok := meta.Column("a")
	if !ok {
		t.Fatal("column a missing from S")
	}
	// L(a) should be exactly {A0, A1}: A0 (80%) alone is < 92%, A0+A1 (95%) >= 92%.
	if len(cm.Common) != 2 {
		t.Fatalf("|L(a)| = %d, want 2", len(cm.Common))
	}
	for _, v := range []string{"A0", "A1"} {
		if !meta.IsCommon("a", engine.StringVal(v)) {
			t.Errorf("%s should be common", v)
		}
	}
	if meta.IsCommon("a", engine.StringVal("A5")) {
		t.Error("A5 should be rare")
	}
	// Columns outside S treat everything as common.
	if !meta.IsCommon("b", engine.StringVal("B0")) || !meta.IsCommon("zzz", engine.IntVal(1)) {
		t.Error("columns outside S must report values as common")
	}
}

func TestSmallGroupTableSizeBound(t *testing.T) {
	db := skewedDB(t, 20000)
	const frac = 0.08
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, SmallGroupFraction: frac, DistinctLimit: 100, Seed: 1})
	bound := int(frac * float64(db.NumRows()))
	for i, tbl := range p.Tables() {
		if tbl.NumRows() > bound {
			t.Errorf("small group table %d has %d rows > bound %d", i, tbl.NumRows(), bound)
		}
		if tbl.NumRows() == 0 {
			t.Errorf("small group table %d is empty", i)
		}
		cm := p.Meta().Columns()[i]
		if int64(tbl.NumRows()) != cm.RareRows {
			t.Errorf("table %d rows %d != metadata RareRows %d", i, tbl.NumRows(), cm.RareRows)
		}
	}
}

func TestSmallGroupTableContents(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 1})
	meta := p.Meta()
	ix, ok := meta.Index("a")
	if !ok {
		t.Fatal("a not in S")
	}
	tbl := p.Tables()[ix]
	col := tbl.MustColumn("a")
	for r := 0; r < tbl.NumRows(); r++ {
		v := col.Value(r)
		if meta.IsCommon("a", v) {
			t.Fatalf("row %d of a's small group table has common value %v", r, v)
		}
		mask, hasMask := tbl.RowMask(r)
		if !hasMask || !mask.Bit(ix) {
			t.Fatalf("row %d mask %v missing bit %d", r, mask, ix)
		}
	}
	// Conversely, every rare-a base row must be in the table.
	var rareBase int64
	acc, _ := db.Accessor("a")
	for r := 0; r < db.NumRows(); r++ {
		if !meta.IsCommon("a", acc.Value(r)) {
			rareBase++
		}
	}
	if rareBase != int64(tbl.NumRows()) {
		t.Errorf("rare base rows %d != table rows %d", rareBase, tbl.NumRows())
	}
}

func TestOverallSampleSizeAndScale(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, SmallGroupFraction: 0.01, DistinctLimit: 100, Seed: 1})
	want := int(0.02 * 20000)
	if p.Overall().NumRows() != want {
		t.Errorf("overall rows = %d, want %d", p.Overall().NumRows(), want)
	}
	if math.Abs(p.overallScale-50) > 1e-9 {
		t.Errorf("overall scale = %g, want 50", p.overallScale)
	}
}

func TestRareGroupsAnsweredExactly(t *testing.T) {
	db := skewedDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.01, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 2})
	q := &engine.Query{
		GroupBy: []string{"a"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}},
	}
	exact, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	meta := p.Meta()
	for _, k := range exact.Keys() {
		eg := exact.Group(k)
		ag := ans.Result.Group(k)
		rare := !meta.IsCommon("a", eg.Key[0])
		if !rare {
			continue
		}
		if ag == nil {
			t.Fatalf("rare group %v missing from answer", eg.Key)
		}
		if !ag.Exact {
			t.Errorf("rare group %v not marked exact", eg.Key)
		}
		for i := range eg.Vals {
			if math.Abs(eg.Vals[i]-ag.Vals[i]) > 1e-9 {
				t.Errorf("rare group %v agg %d: exact %g approx %g", eg.Key, i, eg.Vals[i], ag.Vals[i])
			}
			iv := ans.Interval(k, i)
			if iv.Width() != 0 {
				t.Errorf("rare group %v agg %d: CI width %g, want 0", eg.Key, i, iv.Width())
			}
		}
	}
}

func TestRateOneReproducesExactAnswer(t *testing.T) {
	// At r = 1 the overall sample is the whole table (scale 1) and the
	// bitmask chaining must produce exactly the base answer — the key
	// no-double-counting invariant.
	db := skewedDB(t, 3000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 1.0, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 3})
	queries := []*engine.Query{
		{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}},
		{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}},
		{GroupBy: []string{"b"}, Aggs: []engine.Aggregate{{Kind: engine.Sum, Col: "m"}},
			Where: []engine.Predicate{engine.NewIn("a", engine.StringVal("A0"), engine.StringVal("A3"))}},
		{Aggs: []engine.Aggregate{{Kind: engine.Count}}},
	}
	for qi, q := range queries {
		exact, err := engine.ExecuteExact(db, q)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if exact.NumGroups() != ans.Result.NumGroups() {
			t.Fatalf("query %d: %d exact groups vs %d approx", qi, exact.NumGroups(), ans.Result.NumGroups())
		}
		for _, k := range exact.Keys() {
			eg, ag := exact.Group(k), ans.Result.Group(k)
			if ag == nil {
				t.Fatalf("query %d: group %v missing", qi, eg.Key)
			}
			for i := range eg.Vals {
				if math.Abs(eg.Vals[i]-ag.Vals[i]) > 1e-6*(1+math.Abs(eg.Vals[i])) {
					t.Errorf("query %d group %v agg %d: exact %g approx %g", qi, eg.Key, i, eg.Vals[i], ag.Vals[i])
				}
			}
		}
	}
}

func TestEstimatesUnbiased(t *testing.T) {
	// Average the COUNT estimate of the biggest (common) group over many
	// seeds; it should be close to the truth.
	db := skewedDB(t, 5000)
	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	key := engine.EncodeKey([]engine.Value{engine.StringVal("A0")})
	truth := exact.Group(key).Vals[0]
	var sum float64
	const trials = 60
	for seed := int64(0); seed < trials; seed++ {
		p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, SmallGroupFraction: 0.025, DistinctLimit: 100, Seed: seed})
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := ans.Result.Group(key); g != nil {
			sum += g.Vals[0]
		}
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.05 {
		t.Errorf("mean estimate %g deviates from truth %g by more than 5%%", mean, truth)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	db := skewedDB(t, 5000)
	q := &engine.Query{GroupBy: []string{"b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 80
	covered, total := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, SmallGroupFraction: 0.025, DistinctLimit: 100, Seed: seed})
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range exact.Keys() {
			if ans.Result.Group(k) == nil {
				continue
			}
			total++
			if ans.Interval(k, 0).Contains(exact.Group(k).Vals[0]) {
				covered++
			}
		}
	}
	cov := float64(covered) / float64(total)
	if cov < 0.88 {
		t.Errorf("CI coverage %.3f below nominal 0.95 (allowing slack to 0.88)", cov)
	}
}

func TestRewriteSQL(t *testing.T) {
	// Reconstruct the §4.2.2 example: small group tables for columns A and C
	// with indexes 0 and 2 (column B sits at index 1), base rate 1%, query
	// GROUP BY A, C. The overall-sample filter mask must be 5 = 2^0 + 2^2 and
	// the scale factor 100.
	const n = 10000
	mk := func(name string) *engine.Column {
		c := engine.NewColumn(name, engine.String)
		for i := 0; i < n; i++ {
			if i%100 < 2 {
				c.AppendString(name + "_rare" + string(rune('0'+i%2)))
			} else {
				c.AppendString(name + "_common")
			}
		}
		return c
	}
	fact := engine.NewTable("T", mk("A"), mk("B"), mk("C"))
	db := engine.MustNewDatabase("paper", fact)
	if db.NumRows() != n {
		t.Fatalf("db rows = %d", db.NumRows())
	}
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.01, SmallGroupFraction: 0.05, Seed: 4})
	meta := p.Meta()
	for want, col := range []string{"A", "B", "C"} {
		if ix, ok := meta.Index(col); !ok || ix != want {
			t.Fatalf("column %s index = %d,%v, want %d", col, ix, ok, want)
		}
	}
	q := &engine.Query{GroupBy: []string{"A", "C"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	sql := p.Plan(q).SQL()
	for _, frag := range []string{
		"FROM sg_A GROUP BY A, C",
		"FROM sg_C WHERE bitmask & 1 = 0",
		"COUNT(*) * 100 AS agg0",
		"FROM sg_overall WHERE bitmask & 5 = 0",
		"UNION ALL",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("rewritten SQL missing %q:\n%s", frag, sql)
		}
	}
}

func TestMaxTablesPerQueryHeuristic(t *testing.T) {
	db := skewedDB(t, 10000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.02, SmallGroupFraction: 0.3, DistinctLimit: 100, Seed: 5, MaxTablesPerQuery: 1})
	// With t=0.30, both a and b have small groups.
	if p.Meta().Width() < 2 {
		t.Skip("need at least 2 small group columns for this test")
	}
	q := &engine.Query{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	plan := p.Plan(q)
	// 1 small group step + 1 overall step.
	if len(plan.Steps) != 2 {
		t.Errorf("plan has %d steps, want 2", len(plan.Steps))
	}
}

func TestPreprocessConfigValidation(t *testing.T) {
	db := skewedDB(t, 100)
	for _, cfg := range []SmallGroupConfig{
		{BaseRate: 0},
		{BaseRate: -0.1},
		{BaseRate: 1.5},
		{BaseRate: 0.1, SmallGroupFraction: -1},
		{BaseRate: 0.1, SmallGroupFraction: 2},
	} {
		if _, err := NewSmallGroup(cfg).Preprocess(db); err == nil {
			t.Errorf("config %+v not rejected", cfg)
		}
	}
}

func TestPreprocessUnknownColumn(t *testing.T) {
	db := skewedDB(t, 100)
	_, err := NewSmallGroup(SmallGroupConfig{BaseRate: 0.1, Columns: []string{"nope"}}).Preprocess(db)
	if err == nil {
		t.Error("unknown candidate column not rejected")
	}
}

func TestGroupIsExact(t *testing.T) {
	meta := NewMetadata(100, []ColumnMeta{
		{Column: "x", Common: map[engine.Value]struct{}{engine.IntVal(1): {}}},
		{Column: "y", Common: map[engine.Value]struct{}{engine.IntVal(1): {}}},
	})
	used := map[int]bool{0: true}
	// x rare -> exact.
	if !meta.GroupIsExact([]string{"x", "y"}, []engine.Value{engine.IntVal(2), engine.IntVal(1)}, used) {
		t.Error("rare used column should be exact")
	}
	// x common, y rare but unused -> not exact.
	if meta.GroupIsExact([]string{"x", "y"}, []engine.Value{engine.IntVal(1), engine.IntVal(2)}, used) {
		t.Error("rare value in unused table must not count as exact")
	}
	// all common -> not exact.
	if meta.GroupIsExact([]string{"x", "y"}, []engine.Value{engine.IntVal(1), engine.IntVal(1)}, map[int]bool{0: true, 1: true}) {
		t.Error("common group marked exact")
	}
}

func TestSystem(t *testing.T) {
	db := skewedDB(t, 5000)
	sys := NewSystem(db)
	if err := sys.AddStrategy(NewSmallGroup(SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 100, Seed: 6})); err != nil {
		t.Fatal(err)
	}
	if got := sys.Strategies(); len(got) != 1 || got[0] != "smallgroup" {
		t.Fatalf("Strategies = %v", got)
	}
	if sys.PreprocessTime("smallgroup") <= 0 {
		t.Error("preprocess time not recorded")
	}
	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	ans, err := sys.Approx("smallgroup", q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Result.NumGroups() == 0 {
		t.Error("no groups in answer")
	}
	if ans.RowsRead <= 0 || ans.Elapsed <= 0 {
		t.Errorf("answer stats: rows=%d elapsed=%v", ans.RowsRead, ans.Elapsed)
	}
	if _, err := sys.Approx("nope", q); err == nil {
		t.Error("unknown strategy not rejected")
	}
	bad := &engine.Query{GroupBy: []string{"zzz"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	if _, err := sys.Approx("smallgroup", bad); err == nil {
		t.Error("invalid query not rejected")
	}
	exact, d, err := sys.Exact(q)
	if err != nil || exact.NumGroups() == 0 || d <= 0 {
		t.Errorf("Exact: %v groups=%d d=%v", err, exact.NumGroups(), d)
	}
}

func TestSampleAccounting(t *testing.T) {
	db := skewedDB(t, 10000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.01, SmallGroupFraction: 0.005, DistinctLimit: 100, Seed: 7})
	var want int64 = int64(p.Overall().NumRows())
	for _, tbl := range p.Tables() {
		want += int64(tbl.NumRows())
	}
	if p.SampleRows() != want {
		t.Errorf("SampleRows = %d, want %d", p.SampleRows(), want)
	}
	if p.SampleBytes() <= 0 {
		t.Error("SampleBytes not positive")
	}
}
