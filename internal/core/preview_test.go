package core

import (
	"strings"
	"testing"
	"time"
)

func TestPreviewPlansMatchesEnumeration(t *testing.T) {
	db := plannerDB(t, 20000)
	sys := NewSystem(db)
	if err := sys.AddStrategy(NewSmallGroup(SmallGroupConfig{BaseRate: 0.05, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	q := countQuery("region")
	b := Bounds{ErrorBound: 0.08, Confidence: 0.95}
	cands, _, err := sys.PreviewPlans("smallgroup", q, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("preview returned %d candidates, want several", len(cands))
	}
	var sawExact, sawFeasible bool
	for i, c := range cands {
		if i > 0 && c.Rows < cands[i-1].Rows {
			t.Fatalf("candidates not sorted cheapest first: %v", cands)
		}
		if c.Exact {
			sawExact = true
			if c.PredictedError != 0 {
				t.Fatalf("exact plan predicted error %g, want 0", c.PredictedError)
			}
		}
		if c.Feasible {
			sawFeasible = true
			if c.PredictedError > b.ErrorBound {
				t.Fatalf("candidate %s marked feasible with error %g > bound %g", c.Name, c.PredictedError, b.ErrorBound)
			}
		}
	}
	if !sawExact {
		t.Fatal("preview omitted the exact fallback")
	}
	if !sawFeasible {
		t.Fatal("no candidate marked feasible under a satisfiable bound")
	}

	// The preview must agree with what AnswerBounds actually chooses: the
	// chosen plan is one of the previewed candidates, with the same prediction.
	ans, err := sys.ApproxBoundsCtx(t.Context(), "smallgroup", q, b)
	if err != nil {
		t.Fatal(err)
	}
	var matched bool
	for _, c := range cands {
		if c.Name == ans.Plan.Chosen.Name && c.PredictedError == ans.Plan.Chosen.PredictedError {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("chosen plan %q (pred %g) not among previewed candidates", ans.Plan.Chosen.Name, ans.Plan.Chosen.PredictedError)
	}
}

func TestPreviewPlansTimeBoundFeasibility(t *testing.T) {
	db := plannerDB(t, 20000)
	sys := NewSystem(db)
	if err := sys.AddStrategy(NewSmallGroup(SmallGroupConfig{BaseRate: 0.05, Seed: 1, ScanRowsPerSecond: 1e6})); err != nil {
		t.Fatal(err)
	}
	cands, _, err := sys.PreviewPlans("smallgroup", countQuery("region"), Bounds{TimeBound: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		want := c.PredictedLatency <= time.Millisecond
		if c.Feasible != want {
			t.Fatalf("candidate %s latency %v feasible=%v, want %v", c.Name, c.PredictedLatency, c.Feasible, want)
		}
	}
}

func TestPreviewPlansErrors(t *testing.T) {
	db := plannerDB(t, 2000)
	sys := NewSystem(db)
	if _, _, err := sys.PreviewPlans("nope", countQuery("region"), Bounds{}); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unknown strategy error = %v", err)
	}
	if err := sys.AddStrategy(NewSmallGroup(SmallGroupConfig{BaseRate: 0.05, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.PreviewPlans("smallgroup", countQuery("ghost"), Bounds{}); err == nil {
		t.Fatal("invalid query previewed without error")
	}
}
