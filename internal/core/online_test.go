package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// onlineRows generates ingest rows in the skewedDB view order (a, b, m, u)
// with the same value distribution, with unique u continuing from start.
func onlineRows(rng *rand.Rand, start, count int) [][]engine.Value {
	rows := make([][]engine.Value, count)
	for i := range rows {
		var a string
		switch r := rng.Float64(); {
		case r < 0.80:
			a = "A0"
		case r < 0.95:
			a = "A1"
		default:
			a = "A" + string(rune('2'+rng.Intn(10)))
		}
		rows[i] = []engine.Value{
			engine.StringVal(a),
			engine.StringVal("B" + string(rune('0'+rng.Intn(4)))),
			engine.IntVal(int64((start+i)%97) + 1),
			engine.IntVal(int64(start + i)),
		}
	}
	return rows
}

// onlineSystem builds a system over skewedDB(n), preprocesses it, and
// attaches online maintenance.
func onlineSystem(t testing.TB, n int, cfg SmallGroupConfig, seed int64) (*System, *Online) {
	t.Helper()
	db := skewedDB(t, n)
	sys := NewSystem(db)
	if err := sys.AddStrategy(NewSmallGroup(cfg)); err != nil {
		t.Fatal(err)
	}
	o, err := NewOnline(sys, "smallgroup", OnlineConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sys, o
}

// TestOnlineReservoirUniform checks that the maintained overall sample is a
// uniform fixed-size sample of the grown data: across many independent
// seeds, inclusion counts bucketed by row position (first half = original
// rows, second half = ingested rows) must be uniform. A strong positional
// bias — e.g. ingested rows over- or under-represented — would concentrate
// mass in some deciles and blow up the chi-square statistic.
func TestOnlineReservoirUniform(t *testing.T) {
	const (
		n0      = 2000
		ingest  = 2000
		trials  = 30
		buckets = 10
	)
	counts := make([]int64, buckets)
	var k int
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		_, o := onlineSystem(t, n0, SmallGroupConfig{
			BaseRate: 0.05, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: seed,
		}, seed*7+1)
		rng := randx.New(seed * 13)
		seq := uint64(0)
		for off := 0; off < ingest; off += 100 {
			seq++
			if _, err := o.Apply(seq, onlineRows(rng, n0+off, 100)); err != nil {
				t.Fatal(err)
			}
		}
		total := n0 + ingest
		ot := o.Prepared().(*smallGroupPrepared).Overall()
		k = ot.NumRows()
		u := ot.MustColumn("u")
		for r := 0; r < ot.NumRows(); r++ {
			pos := int(u.Int(r))
			counts[pos*buckets/total]++
		}
	}
	expected := float64(trials*k) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom, p=0.001 critical value.
	if chi2 > 27.877 {
		t.Fatalf("reservoir inclusion not uniform: chi-square=%.2f (buckets %v, expected %.1f each)", chi2, counts, expected)
	}
}

// expectedMask recomputes a row's membership bitmask from the metadata.
func expectedMask(meta *Metadata, colPos map[string]int, row []engine.Value) []bool {
	bits := make([]bool, meta.Width())
	for _, cm := range meta.Columns() {
		if _, common := cm.Common[row[colPos[cm.Column]]]; !common {
			bits[cm.Index] = true
		}
	}
	for _, pm := range meta.Pairs() {
		v0, v1 := row[colPos[pm.Cols[0]]], row[colPos[pm.Cols[1]]]
		if _, rare := pm.Rare[engine.EncodeKey([]engine.Value{v0, v1})]; rare {
			bits[pm.Index] = true
		}
	}
	return bits
}

// TestOnlineSmallGroupMembership checks the exactness invariant after
// ingest: every base row whose value lies outside L(C) is present in C's
// small group table (same multiplicity), and every sample row's bitmask
// matches the metadata's membership rule.
func TestOnlineSmallGroupMembership(t *testing.T) {
	const n0, ingest = 5000, 3000
	_, o := onlineSystem(t, n0, SmallGroupConfig{
		BaseRate: 0.02, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 5,
	}, 99)
	rng := randx.New(42)
	seq := uint64(0)
	for off := 0; off < ingest; off += 500 {
		seq++
		if _, err := o.Apply(seq, onlineRows(rng, n0+off, 500)); err != nil {
			t.Fatal(err)
		}
	}
	p := o.Prepared().(*smallGroupPrepared)
	meta := p.Meta()
	db := o.DB()
	view := db.Columns()
	colPos := make(map[string]int, len(view))
	for i, n := range view {
		colPos[n] = i
	}

	cmA, ok := meta.Column("a")
	if !ok {
		t.Fatal("column a not in S")
	}
	// Multiset of rare-a base rows, keyed by the full row tuple.
	wantRare := map[engine.GroupKey]int{}
	var wantTotal int
	accs := make([]engine.ColumnAccessor, len(view))
	for i, cn := range view {
		acc, err := db.Accessor(cn)
		if err != nil {
			t.Fatal(err)
		}
		accs[i] = acc
	}
	aPos := colPos["a"]
	row := make([]engine.Value, len(view))
	for r := 0; r < db.NumRows(); r++ {
		for i := range accs {
			row[i] = accs[i].Value(r)
		}
		if _, common := cmA.Common[row[aPos]]; common {
			continue
		}
		wantRare[engine.EncodeKey(row)]++
		wantTotal++
	}

	sg := p.Tables()[cmA.Index]
	if sg.NumRows() != wantTotal {
		t.Fatalf("sg_a has %d rows, want %d (every rare row, exactly once)", sg.NumRows(), wantTotal)
	}
	gotRare := map[engine.GroupKey]int{}
	for r := 0; r < sg.NumRows(); r++ {
		vals := sg.RowValues(r)
		gotRare[engine.EncodeKey(vals)]++
		bits := expectedMask(meta, colPos, vals)
		mask, okm := sg.RowMask(r)
		if !okm {
			t.Fatalf("sg_a row %d has no mask", r)
		}
		for b, want := range bits {
			if mask.Bit(b) != want {
				t.Fatalf("sg_a row %d bit %d = %v, want %v (row %v)", r, b, mask.Bit(b), want, vals)
			}
		}
	}
	for k, want := range wantRare {
		if gotRare[k] != want {
			t.Fatalf("rare row multiplicity mismatch: got %d, want %d", gotRare[k], want)
		}
	}

	// Overall sample masks must match the membership rule too.
	ot := p.Overall()
	for r := 0; r < ot.NumRows(); r++ {
		vals := ot.RowValues(r)
		bits := expectedMask(meta, colPos, vals)
		mask, okm := ot.RowMask(r)
		if !okm {
			t.Fatalf("overall row %d has no mask", r)
		}
		for b, want := range bits {
			if mask.Bit(b) != want {
				t.Fatalf("overall row %d bit %d = %v, want %v", r, b, mask.Bit(b), want)
			}
		}
	}
}

// TestOnlineAnswers checks answer quality after ingest: rare groups are
// answered exactly (and marked exact), and common-group estimates stay
// unbiased within a loose tolerance.
func TestOnlineAnswers(t *testing.T) {
	const n0, ingest = 8000, 4000
	sys, o := onlineSystem(t, n0, SmallGroupConfig{
		BaseRate: 0.05, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 7,
	}, 123)
	rng := randx.New(77)
	seq := uint64(0)
	for off := 0; off < ingest; off += 400 {
		seq++
		if _, err := o.Apply(seq, onlineRows(rng, n0+off, 400)); err != nil {
			t.Fatal(err)
		}
	}
	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}}
	exact, err := engine.ExecuteExact(o.DB(), q)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Approx("smallgroup", q)
	if err != nil {
		t.Fatal(err)
	}
	meta := o.Prepared().(*smallGroupPrepared).Meta()
	for _, key := range exact.Keys() {
		eg := exact.Group(key)
		ag := ans.Result.Group(key)
		if ag == nil {
			t.Fatalf("group %v missing from approximate answer", eg.Key)
		}
		if _, common := meta.Columns()[0].Common[eg.Key[0]]; !common {
			// Rare group: must be exact.
			if !ag.Exact {
				t.Errorf("rare group %v not marked exact", eg.Key)
			}
			for i := range eg.Vals {
				if math.Abs(ag.Vals[i]-eg.Vals[i]) > 1e-6 {
					t.Errorf("rare group %v agg %d = %g, want exact %g", eg.Key, i, ag.Vals[i], eg.Vals[i])
				}
			}
			continue
		}
		for i := range eg.Vals {
			rel := math.Abs(ag.Vals[i]-eg.Vals[i]) / eg.Vals[i]
			if rel > 0.25 {
				t.Errorf("common group %v agg %d rel error %.3f too large (%g vs %g)", eg.Key, i, rel, ag.Vals[i], eg.Vals[i])
			}
		}
	}
}

// TestOnlineDriftGauge streams a brand-new value until its mass crosses the
// t·N threshold and checks the gauge crosses 1 exactly then.
func TestOnlineDriftGauge(t *testing.T) {
	const n0 = 4000
	_, o := onlineSystem(t, n0, SmallGroupConfig{
		BaseRate: 0.05, SmallGroupFraction: 0.05, DistinctLimit: 100, Seed: 3,
	}, 11)
	if d := o.Drift(); d >= 1 {
		t.Fatalf("initial drift %g >= 1", d)
	}
	// Each batch is 100 rows of the new value "HOT" in column a. After k
	// batches: count = 100k, N = n0 + 100k, threshold t·N.
	seq := uint64(0)
	hot := func(count int) [][]engine.Value {
		rows := make([][]engine.Value, count)
		for i := range rows {
			rows[i] = []engine.Value{
				engine.StringVal("HOT"),
				engine.StringVal("B0"),
				engine.IntVal(1),
				engine.IntVal(int64(n0) + int64(seq)*100 + int64(i)),
			}
		}
		return rows
	}
	crossed := false
	for batch := 0; batch < 40; batch++ {
		seq++
		st, err := o.Apply(seq, hot(100))
		if err != nil {
			t.Fatal(err)
		}
		count := float64((batch + 1) * 100)
		n := float64(n0 + (batch+1)*100)
		want := count / (0.05 * n)
		if math.Abs(st.Drift-want) > 1e-9 {
			t.Fatalf("batch %d: drift %g, want %g", batch, st.Drift, want)
		}
		if st.Drift >= 1 {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Fatal("drift never crossed 1")
	}
}

// tableBytes serialises every sample table of a prepared state; used to
// compare two states bit-for-bit.
func preparedBytes(t *testing.T, p Prepared) []byte {
	t.Helper()
	sgp := p.(*smallGroupPrepared)
	var buf bytes.Buffer
	for _, tbl := range sgp.Tables() {
		if err := engine.WriteBinary(tbl, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.WriteBinary(sgp.Overall(), &buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "scale=%v gen=%d", sgp.overallScale, sgp.dataGen)
	return buf.Bytes()
}

// TestOnlineReplayDeterminism checks the crash-recovery contract at the core
// layer: restoring a snapshot taken mid-stream and replaying the same batch
// sequence (early batches base-only, later ones live) converges on sample
// tables bit-identical to the uninterrupted run.
func TestOnlineReplayDeterminism(t *testing.T) {
	const n0 = 3000
	cfg := SmallGroupConfig{BaseRate: 0.04, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 21}
	mkBatches := func() [][][]engine.Value {
		rng := randx.New(314)
		var out [][][]engine.Value
		for b := 0; b < 4; b++ {
			out = append(out, onlineRows(rng, n0+b*250, 250))
		}
		return out
	}

	// Uninterrupted run: apply all four batches.
	_, o1 := onlineSystem(t, n0, cfg, 55)
	for i, b := range mkBatches() {
		if _, err := o1.Apply(uint64(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	want := preparedBytes(t, o1.Prepared())

	// Interrupted run: apply two batches, snapshot, then "restart": reload
	// the snapshot over a fresh base and replay all four batches.
	_, o2 := onlineSystem(t, n0, cfg, 55)
	batches := mkBatches()
	for i := 0; i < 2; i++ {
		if _, err := o2.Apply(uint64(i+1), batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := SaveSmallGroup(&snap, o2.Prepared()); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSmallGroup(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if DataGenerationOf(restored) != 2 {
		t.Fatalf("snapshot generation = %d, want 2", DataGenerationOf(restored))
	}
	sys3 := NewSystem(skewedDB(t, n0))
	sys3.AddPrepared("smallgroup", restored)
	o3, err := NewOnline(sys3, "smallgroup", OnlineConfig{Seed: 55, SmallGroupFraction: cfg.SmallGroupFraction})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range mkBatches() {
		st, err := o3.Apply(uint64(i+1), b)
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && st.SmallGroupInserts+st.ReservoirSwaps != 0 {
			t.Fatalf("covered batch %d touched samples (%d inserts, %d swaps)", i+1, st.SmallGroupInserts, st.ReservoirSwaps)
		}
	}
	got := preparedBytes(t, o3.Prepared())
	if !bytes.Equal(got, want) {
		t.Fatal("replayed sample family differs from uninterrupted run")
	}
	if g := o3.DataGeneration(); g != 4 {
		t.Fatalf("data generation = %d, want 4", g)
	}
}

// TestOnlineRebase simulates the rebuild handshake: pin the database
// mid-stream, preprocess it, keep ingesting, then rebase with the tail.
func TestOnlineRebase(t *testing.T) {
	const n0 = 3000
	cfg := SmallGroupConfig{BaseRate: 0.04, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 9}
	sys, o := onlineSystem(t, n0, cfg, 31)
	rng := randx.New(404)
	if _, err := o.Apply(1, onlineRows(rng, n0, 300)); err != nil {
		t.Fatal(err)
	}
	pinned, pinnedGen := sys.Data()
	var tail []TailBatch
	for i := 0; i < 2; i++ {
		rows := onlineRows(rng, n0+300+i*300, 300)
		if _, err := o.Apply(uint64(i+2), rows); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, TailBatch{Seq: uint64(i + 2), Rows: rows})
	}
	rebuilt, err := NewSmallGroup(cfg).Preprocess(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Rebase(rebuilt, pinnedGen, tail); err != nil {
		t.Fatal(err)
	}
	if g := DataGenerationOf(o.Prepared()); g != 3 {
		t.Fatalf("rebased generation = %d, want 3", g)
	}
	// The rebased family must still answer rare groups exactly.
	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, err := engine.ExecuteExact(o.DB(), q)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Approx("smallgroup", q)
	if err != nil {
		t.Fatal(err)
	}
	meta := o.Prepared().(*smallGroupPrepared).Meta()
	cmA, _ := meta.Column("a")
	for _, key := range exact.Keys() {
		eg := exact.Group(key)
		if _, common := cmA.Common[eg.Key[0]]; common {
			continue
		}
		ag := ans.Result.Group(key)
		if ag == nil || !ag.Exact || math.Abs(ag.Vals[0]-eg.Vals[0]) > 1e-6 {
			t.Fatalf("rare group %v not exact after rebase", eg.Key)
		}
	}
	// Out-of-order or incomplete tails must be rejected.
	if err := o.Rebase(rebuilt, pinnedGen, nil); err == nil {
		t.Fatal("rebase with missing tail should fail")
	}
}

// TestOnlineRebaseFailureRestoresTracking: Rebase binds the new metadata and
// re-seeds the frequency counts before it can know the tail will replay, so a
// failure after that point must roll all of it back — otherwise subsequent
// applies would classify rows for the old (still published) family using the
// new family's common sets and counts. A run that survives a failed rebase
// must stay bit-identical to one that never attempted it.
func TestOnlineRebaseFailureRestoresTracking(t *testing.T) {
	const n0 = 3000
	cfg := SmallGroupConfig{BaseRate: 0.04, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 9}
	// Each batch carries 400 rows of a brand-new heavy value on top of the
	// background distribution: heavy enough that pre-processing the grown
	// data declares HOT common, so the rebuilt metadata's common sets (and
	// the frequency counts seeded from them) genuinely differ.
	mkBatch := func(start int) [][]engine.Value {
		rows := onlineRows(randx.New(int64(start)), start, 200)
		for i := 0; i < 400; i++ {
			rows = append(rows, []engine.Value{
				engine.StringVal("HOT"),
				engine.StringVal("B0"),
				engine.IntVal(1),
				engine.IntVal(int64(start + 200 + i)),
			})
		}
		return rows
	}

	_, ref := onlineSystem(t, n0, cfg, 77)
	if _, err := ref.Apply(1, mkBatch(n0)); err != nil {
		t.Fatal(err)
	}
	refDrift1 := ref.Drift()
	if _, err := ref.Apply(2, mkBatch(n0+600)); err != nil {
		t.Fatal(err)
	}
	wantBytes := preparedBytes(t, ref.Prepared())
	wantDrift := ref.Drift()

	_, o := onlineSystem(t, n0, cfg, 77)
	if _, err := o.Apply(1, mkBatch(n0)); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := NewSmallGroup(cfg).Preprocess(o.DB())
	if err != nil {
		t.Fatal(err)
	}
	// A stale pin with an empty tail cannot reach the data generation, so
	// the rebase fails — but only after bindMeta and seedFrequencies have
	// already run against the rebuilt metadata.
	if err := o.Rebase(rebuilt, 0, nil); err == nil {
		t.Fatal("rebase with a stale pin and no tail should fail")
	}
	if d := o.Drift(); d != refDrift1 {
		t.Fatalf("drift after failed rebase = %g, want %g (tracking not restored)", d, refDrift1)
	}
	if _, err := o.Apply(2, mkBatch(n0+600)); err != nil {
		t.Fatal(err)
	}
	if got := preparedBytes(t, o.Prepared()); !bytes.Equal(got, wantBytes) {
		t.Error("sample family after failed rebase differs from a run that never attempted it")
	}
	if d := o.Drift(); d != wantDrift {
		t.Fatalf("drift after failed rebase + apply = %g, want %g", d, wantDrift)
	}
}

// TestOnlineNewValueInDroppedColumn covers the §4.2.1 corner pre-processing
// leaves behind: a column whose values are all common is removed from S, so
// a brand-new value arriving there is a small group with no table to land
// in. The drift gauge must floor at 1 — forcing the rebuild that re-admits
// the column — while new values in τ-excluded columns stay ignored, since a
// rebuild would drop those columns again anyway.
func TestOnlineNewValueInDroppedColumn(t *testing.T) {
	const n0 = 3000
	cfg := SmallGroupConfig{BaseRate: 0.04, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 9}
	sys, o := onlineSystem(t, n0, cfg, 31)
	meta := o.Prepared().(*smallGroupPrepared).Meta()
	if _, inS := meta.Column("b"); inS {
		t.Fatal("fixture drift: b should have been dropped from S (no small groups)")
	}
	rng := randx.New(77)
	// onlineRows emits only known a/b values but an always-new unique u:
	// new values in the τ-excluded u must not move the gauge.
	if _, err := o.Apply(1, onlineRows(rng, n0, 200)); err != nil {
		t.Fatal(err)
	}
	if d := o.Drift(); d >= 1 {
		t.Fatalf("drift = %v after known-value batch, want < 1", d)
	}
	// One row with a brand-new value in the dropped column b.
	if _, err := o.Apply(2, [][]engine.Value{{
		engine.StringVal("A0"), engine.StringVal("B9"),
		engine.IntVal(1), engine.IntVal(int64(n0 + 200)),
	}}); err != nil {
		t.Fatal(err)
	}
	if d := o.Drift(); d < 1 {
		t.Fatalf("drift = %v after new value in dropped column, want >= 1", d)
	}
	// The rebuild the gauge demands re-admits b to S and clears the floor.
	pinned, pinnedGen := sys.Data()
	rebuilt, err := NewSmallGroup(cfg).Preprocess(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Rebase(rebuilt, pinnedGen, nil); err != nil {
		t.Fatal(err)
	}
	meta = o.Prepared().(*smallGroupPrepared).Meta()
	if _, inS := meta.Column("b"); !inS {
		t.Fatal("rebuild did not re-admit b to S")
	}
	if d := o.Drift(); d >= 1 {
		t.Fatalf("drift = %v after rebuild, want < 1", d)
	}
	// The new group now answers exactly.
	ans, err := sys.Approx("smallgroup", &engine.Query{
		GroupBy: []string{"b"},
		Aggs:    []engine.Aggregate{{Kind: engine.Count}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := ans.Result.Group(engine.EncodeKey([]engine.Value{engine.StringVal("B9")}))
	if g == nil || !g.Exact || g.Vals[0] != 1 {
		t.Fatalf("B9 group after rebuild = %+v, want exact count 1", g)
	}
}
