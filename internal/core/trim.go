package core

import (
	"sort"

	"dynsample/internal/engine"
)

// TrimColumns implements the workload-based candidate-set trimming suggested
// in §4.2.3 ("query workload information could also be used to trim the set
// of columns for which small group tables are built by identifying
// rarely-queried columns"): it returns the columns that appear as grouping
// columns in at least minCount of the workload's queries, sorted by
// decreasing reference count (ties broken by name). Pass the result as
// SmallGroupConfig.Columns.
func TrimColumns(workload []*engine.Query, minCount int) []string {
	if minCount < 1 {
		minCount = 1
	}
	counts := make(map[string]int)
	for _, q := range workload {
		for _, g := range q.GroupBy {
			counts[g]++
		}
	}
	var cols []string
	for c, n := range counts {
		if n >= minCount {
			cols = append(cols, c)
		}
	}
	sort.Slice(cols, func(i, j int) bool {
		if counts[cols[i]] != counts[cols[j]] {
			return counts[cols[i]] > counts[cols[j]]
		}
		return cols[i] < cols[j]
	})
	return cols
}
