package core

import (
	"bytes"
	"testing"
)

// FuzzLoadSmallGroup proves the store loader never panics (and never
// over-allocates its way to an OOM kill) on arbitrary bytes. Seeds include
// a fully valid snapshot and targeted mutants, so the fuzzer starts deep
// inside the format instead of bouncing off the magic check.
func FuzzLoadSmallGroup(f *testing.F) {
	db := skewedDB(f, 2000)
	p := prep(f, db, SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 50, Seed: 7})
	var buf bytes.Buffer
	if err := SaveSmallGroup(&buf, p); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	f.Add(valid[:37])           // dies inside the metadata header
	for _, off := range []int{5, 17, 36, len(valid) / 3, len(valid) - 8} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 1 << (off % 8) // bit-flipped mutants
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("DSSG"))
	f.Add([]byte("DSSG\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are the expected outcome for junk.
		p, err := LoadSmallGroup(bytes.NewReader(data))
		if err == nil && p == nil {
			t.Fatal("nil Prepared with nil error")
		}
		// The sniffing wrapper shares the guarantee.
		if p2, err2 := LoadSmallGroupAny(bytes.NewReader(data)); err2 == nil && p2 == nil {
			t.Fatal("LoadSmallGroupAny: nil Prepared with nil error")
		}
	})
}
